(* Lock-free Treiber stack with node reuse: the ABA corruption, and three
   ways to prevent it.

   Part 1 replays the classic corrupting interleaving deterministically in
   the simulator: one process's pop stalls between reading the head and its
   CAS, the other recycles the head node, and the stale CAS succeeds —
   popping a value twice.  The linearizability checker convicts the naive
   stack; the tagged and LL/SC-protected stacks survive the same schedule.

   Part 2 hammers the runtime (Atomic-based) stack from several domains
   and audits the multiset of pushed/popped values.

   Run with: dune exec examples/treiber_reuse.exe *)

open Aba_core
module Check = Aba_spec.Lin_check.Make (Aba_spec.Stack_spec)

let directed_schedule protection label =
  let sim = Aba_sim.Sim.create ~n:2 in
  let module M = (val Aba_sim.Sim_mem.make sim) in
  let module S = Aba_apps.Treiber_stack.Make (M) in
  let initial = [ 1; 2 ] in
  let stack = S.create ~protection ~capacity:2 ~n:2 ~initial in
  let apply p op () =
    match op with
    | Aba_spec.Stack_spec.Push v ->
        ignore (S.push stack ~pid:p v);
        Aba_spec.Stack_spec.Push_done
    | Aba_spec.Stack_spec.Pop -> Aba_spec.Stack_spec.Popped (S.pop stack ~pid:p)
  in
  let d = Aba_sim.Driver.create ~sim ~apply in
  (* p0 starts popping: it reads head = node0 (value 1) and next = node1,
     then stalls. *)
  Aba_sim.Driver.invoke d 0 Aba_spec.Stack_spec.Pop;
  Aba_sim.Driver.step d 0;
  Aba_sim.Driver.step d 0;
  (* p1 drains the stack and pushes 9; the new node recycles node0. *)
  List.iter
    (fun op ->
      Aba_sim.Driver.invoke d 1 op;
      Aba_sim.Driver.finish d 1)
    [
      Aba_spec.Stack_spec.Pop;
      Aba_spec.Stack_spec.Pop;
      Aba_spec.Stack_spec.Push 9;
    ];
  (* p0 resumes: its CAS(head, node0, node1) is the ABA moment — the
     recycled node0 is head again, so the stale CAS succeeds. *)
  Aba_sim.Driver.finish d 0;
  (* One more pop re-delivers a long-popped value through the freed node1. *)
  Aba_sim.Driver.invoke d 1 Aba_spec.Stack_spec.Pop;
  Aba_sim.Driver.finish d 1;
  let prefill =
    List.concat_map
      (fun v ->
        [
          Aba_primitives.Event.Invoke (0, Aba_spec.Stack_spec.Push v);
          Aba_primitives.Event.Response (0, Aba_spec.Stack_spec.Push_done);
        ])
      (List.rev initial)
  in
  let h = Aba_sim.Driver.history d in
  let ok = Check.check_ok ~n:2 (prefill @ h) in
  Printf.printf "  %-18s %s\n" label
    (if ok then "survives (history linearizable)"
     else "CORRUPTED (non-linearizable: a value pops twice)");
  if not ok then begin
    Printf.printf "  the convicting history:\n";
    List.iter
      (fun line -> Printf.printf "    %s\n" line)
      (String.split_on_char '\n' (Format.asprintf "%a" Check.pp_history h))
  end

let runtime_hammer protection label ~domains ~ops =
  let stack = Aba_runtime.Rt_treiber.create ~protection ~capacity:8 ~n:domains () in
  let results =
    Aba_runtime.Harness.run_domains ~n:domains (fun d ->
        let pushed = ref [] and popped = ref [] in
        for i = 1 to ops do
          let v = (d * ops * 2) + i in
          if Aba_runtime.Rt_treiber.push stack ~pid:d v then
            pushed := v :: !pushed;
          match Aba_runtime.Rt_treiber.pop stack ~pid:d with
          | Some v -> popped := v :: !popped
          | None -> ()
        done;
        (!pushed, !popped))
  in
  let pushed = List.concat_map fst (Array.to_list results) in
  let popped = List.concat_map snd (Array.to_list results) in
  let remaining = ref [] in
  let rec drain () =
    match Aba_runtime.Rt_treiber.pop stack ~pid:0 with
    | Some v ->
        remaining := v :: !remaining;
        drain ()
    | None -> ()
  in
  drain ();
  match
    Aba_runtime.Rt_treiber.check_multiset ~pushed ~popped
      ~remaining:!remaining
  with
  | Result.Ok () ->
      Printf.printf "  %-18s OK    (%d ops audited)\n" label
        (List.length pushed + List.length popped)
  | Result.Error msg -> Printf.printf "  %-18s CORRUPTED: %s\n" label msg

let () =
  print_endline "Part 1: the deterministic ABA schedule (simulator)";
  directed_schedule Aba_apps.Treiber_stack.Naive "naive CAS";
  directed_schedule (Aba_apps.Treiber_stack.Tagged 1) "tag mod 1";
  directed_schedule Aba_apps.Treiber_stack.Tagged_unbounded "tag unbounded";
  directed_schedule
    (Aba_apps.Treiber_stack.Llsc Instances.llsc_fig3)
    "LL/SC (figure 3)";
  directed_schedule
    (Aba_apps.Treiber_stack.Llsc Instances.llsc_jp)
    "LL/SC (JP)";
  directed_schedule Aba_apps.Treiber_stack.Hazard "hazard pointers";
  print_endline
    "\nPart 2: multicore hammering with a multiset audit (corruption on a\n\
     1-core box is rare - the deterministic schedule above is the proof)";
  let domains = 4 and ops = 50_000 in
  runtime_hammer (Aba_runtime.Rt_treiber.Tag_bits 0) "naive CAS" ~domains ~ops;
  runtime_hammer (Aba_runtime.Rt_treiber.Tag_bits 16) "tag 16 bits" ~domains
    ~ops;
  runtime_hammer Aba_runtime.Rt_treiber.Llsc "LL/SC (figure 3)" ~domains ~ops
