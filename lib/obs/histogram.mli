(** Allocation-free log2-bucketed latency histograms.

    Each pid owns a flat row of {!buckets} int cells; {!record} is an
    owner-only array increment, so instrumenting a hot path costs no
    allocation and no shared-memory traffic.  Percentiles are extracted
    post hoc from the merged rows: a reported percentile is the upper
    bound of the bucket holding the rank-th smallest sample, hence exact
    to within the 2x bucket resolution and monotone in [q] by
    construction (p50 <= p90 <= p99 <= p999 always holds). *)

type t

val buckets : int
(** 63: bucket 0 for values [<= 0], bucket [i >= 1] for
    [2^(i-1) .. 2^i - 1] — enough for any native int. *)

val bucket_of : int -> int
val bucket_lo : int -> int
val bucket_hi : int -> int
(** Bucket index of a value and the inclusive bounds of a bucket:
    [bucket_lo (bucket_of v) <= v <= bucket_hi (bucket_of v)] for all
    [v >= 0], including [v = max_int], whose bucket's upper bound is
    explicitly [max_int] (not a signed-shift wraparound). *)

val create : n:int -> unit -> t
(** One row per pid in [0, n).  Raises [Invalid_argument] if [n < 1]. *)

val record : t -> pid:int -> int -> unit
(** Count one sample.  Owner-only: each pid must write only its row. *)

val merged : t -> int array
(** Per-bucket counts summed over all pids ({!buckets} cells). *)

val merge : t list -> t
(** Bucket-wise cross-instance merge into a fresh (single-row) histogram.
    Because bucket bounds depend only on the bucket index, the result is
    exactly what recording every constituent sample into one histogram
    would have produced: counts, percentiles and {!fraction_le} all agree.
    This is how end-to-end service percentiles are computed from per-shard
    histograms without re-recording.  [merge []] is an empty histogram. *)

val fraction_le : t -> int -> float
(** [fraction_le t budget] is the fraction of recorded samples whose
    bucket lies entirely at or below [budget] — the SLO-attainment metric.
    Conservative under the 2x bucket resolution: a sample is counted as
    in-budget only when its whole bucket is.  1.0 on an empty histogram
    (no op violated the budget). *)

val count : t -> int
(** Total samples recorded. *)

val percentile : t -> float -> int
(** [percentile t q] for [q] in [[0, 1]]: upper bound of the bucket of
    the [ceil (q * count)]-th smallest sample (0 on an empty histogram).
    Raises [Invalid_argument] outside [[0, 1]]. *)

type summary = { count : int; p50 : int; p90 : int; p99 : int; p999 : int }

val summarize : t -> summary
