(** Monotonic time for benchmark timing and latency stamps.

    [Unix.gettimeofday] is a wall clock: NTP slew (or an operator setting
    the date) can make measured durations wrong or even negative, which
    silently corrupts ns/op numbers.  This module reads CLOCK_MONOTONIC
    through bechamel's C stub and guards it with a startup probe, falling
    back to the wall clock only when the stub is unusable. *)

val ns_of_unix_time : float -> int
(** Integer nanoseconds for a [Unix.gettimeofday]-style epoch-seconds
    float.  The naive [int_of_float (t *. 1e9)] loses the low ~8 bits of
    an epoch timestamp to the 53-bit double mantissa; this splits whole
    seconds from the fractional microseconds so both convert exactly. *)

val monotonic : bool
(** Whether the monotonic source passed the startup probe; when [false],
    {!now_ns} reads the wall clock. *)

val now_ns : unit -> int
(** Nanoseconds from an arbitrary fixed origin.  Comparable only within
    one process run. *)

val elapsed_ns : int -> int
(** [elapsed_ns start] is [now_ns () - start]. *)

val elapsed_s : int -> float
(** [elapsed_s start] is the seconds elapsed since [start = now_ns ()]. *)
