(** Per-domain counter cells with a merge-on-read total.

    Each pid increments its own cache-line-padded atomic cell, so the hot
    path is an uncontended RMW on a line nobody else writes; the
    cross-domain cost is paid only by {!total}, which folds the cells at
    read time.  This replaces the scattered per-module stat records
    (elimination, combining, limbo) with one interface. *)

type t

val create : ?padded:bool -> n:int -> unit -> t
(** One cell per pid in [0, n).  [padded] (default [true]) gives each
    cell its own cache line.  Raises [Invalid_argument] if [n < 1]. *)

val domains : t -> int
val incr : t -> pid:int -> unit
val add : t -> pid:int -> int -> unit
val get : t -> pid:int -> int

val total : t -> int
(** Fold of all cells.  Safe to call while domains are still counting;
    the result is then a momentary lower bound, exact once they join. *)
