(** Minimal JSON construction for benchmark result files.

    No parsing, no streaming — build a {!t} and {!to_string} it.  The
    point over hand-rolled [Printf] assembly is correctness of the
    output: strings are escaped per RFC 8259 and non-finite floats are
    mapped to [null] instead of producing an unparseable file. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** NaN and infinities serialise as [null] *)
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val escape_string : string -> string
(** [escape_string s] is the body of the JSON string literal for [s]
    (without the surrounding quotes): quotes, backslashes and control
    characters are escaped. *)

val to_string : t -> string
(** Serialise with two-space indentation and a trailing newline. *)
