(* The unified handle: one [t] aggregates per-kind op/retry counters,
   per-kind latency histograms and the event trace, so an instrumented
   structure threads a single optional value.  The [noop] instance is the
   inert default — [record] on it is one immutable-field load and a
   branch, no clock read, no stores, no allocation — which keeps
   uninstrumented hot paths at 0 words/op and byte-identical transcripts. *)

type kind =
  | Push
  | Pop
  | Enqueue
  | Dequeue
  | Ll
  | Sc
  | Dread
  | Dwrite
  | Exchange
  | Combine
  | Retire
  | Wait_full
  | Wait_empty
  | Steal
  | Scan
  | Crash
  | Recover

let kind_index = function
  | Push -> 0
  | Pop -> 1
  | Enqueue -> 2
  | Dequeue -> 3
  | Ll -> 4
  | Sc -> 5
  | Dread -> 6
  | Dwrite -> 7
  | Exchange -> 8
  | Combine -> 9
  | Retire -> 10
  | Wait_full -> 11
  | Wait_empty -> 12
  | Steal -> 13
  | Scan -> 14
  | Crash -> 15
  | Recover -> 16

let kind_count = 17

let all_kinds =
  [ Push; Pop; Enqueue; Dequeue; Ll; Sc; Dread; Dwrite; Exchange; Combine;
    Retire; Wait_full; Wait_empty; Steal; Scan; Crash; Recover ]

let kind_name = function
  | Push -> "push"
  | Pop -> "pop"
  | Enqueue -> "enqueue"
  | Dequeue -> "dequeue"
  | Ll -> "ll"
  | Sc -> "sc"
  | Dread -> "dread"
  | Dwrite -> "dwrite"
  | Exchange -> "exchange"
  | Combine -> "combine"
  | Retire -> "retire"
  | Wait_full -> "wait-full"
  | Wait_empty -> "wait-empty"
  | Steal -> "steal"
  | Scan -> "scan"
  | Crash -> "crash"
  | Recover -> "recover"

type outcome =
  | Ok
  | Fail
  | Empty
  | Eliminated
  | Combined
  | Fallback
  | Collision
  | Timeout

let outcome_index = function
  | Ok -> 0
  | Fail -> 1
  | Empty -> 2
  | Eliminated -> 3
  | Combined -> 4
  | Fallback -> 5
  | Collision -> 6
  | Timeout -> 7

let all_outcomes =
  [ Ok; Fail; Empty; Eliminated; Combined; Fallback; Collision; Timeout ]

let outcome_name = function
  | Ok -> "ok"
  | Fail -> "fail"
  | Empty -> "empty"
  | Eliminated -> "eliminated"
  | Combined -> "combined"
  | Fallback -> "fallback"
  | Collision -> "collision"
  | Timeout -> "timeout"

let kind_of_index = Array.of_list all_kinds
let outcome_of_index = Array.of_list all_outcomes

type t = {
  enabled : bool;
  origin : int;  (** trace timestamps are ns since this instant *)
  ops : Counter.t array;  (** [kind_count] counters *)
  retries : Counter.t array;
  hists : Histogram.t array;  (** [kind_count], or [[||]] when off *)
  trace : Trace.t;
}

let noop =
  {
    enabled = false;
    origin = 0;
    ops = [||];
    retries = [||];
    hists = [||];
    trace = Trace.noop;
  }

let create ?(padded = true) ?(hist = true) ?(trace = 1024) ~n () =
  if n < 1 then invalid_arg "Obs.create: n must be positive";
  {
    enabled = true;
    origin = Clock.now_ns ();
    ops = Array.init kind_count (fun _ -> Counter.create ~padded ~n ());
    retries = Array.init kind_count (fun _ -> Counter.create ~padded ~n ());
    hists =
      (if hist then Array.init kind_count (fun _ -> Histogram.create ~n ())
       else [||]);
    trace = Trace.create ~padded ~capacity:trace ~n ();
  }

let enabled t = t.enabled
let start t = if t.enabled then Clock.now_ns () else 0

let record t ~pid ~kind ~outcome ~retries start =
  if t.enabled then begin
    let k = kind_index kind in
    Counter.incr t.ops.(k) ~pid;
    if retries > 0 then Counter.add t.retries.(k) ~pid retries;
    let now = Clock.now_ns () in
    if Array.length t.hists > 0 then
      Histogram.record t.hists.(k) ~pid (now - start);
    Trace.record t.trace ~pid
      (Trace.Event.pack ~ts:(now - t.origin) ~kind:k
         ~outcome:(outcome_index outcome) ~pid ~retries)
  end

let op_count t kind = if t.enabled then Counter.total t.ops.(kind_index kind) else 0

let retry_count t kind =
  if t.enabled then Counter.total t.retries.(kind_index kind) else 0

let histogram t kind =
  if t.enabled && Array.length t.hists > 0 then Some t.hists.(kind_index kind)
  else None

let trace_recorded t = if t.enabled then Trace.recorded t.trace else 0
let trace_retained t = if t.enabled then Trace.retained t.trace else 0

type event = {
  at_ns : int;
  kind : kind;
  outcome : outcome;
  pid : int;
  retries : int;
}

let timeline t =
  if not t.enabled then []
  else
    List.map
      (fun (e : Trace.Event.t) ->
        {
          at_ns = e.ts;
          kind = kind_of_index.(e.kind);
          outcome = outcome_of_index.(e.outcome);
          pid = e.pid;
          retries = e.retries;
        })
      (Trace.merged t.trace)

(* Re-export the component modules so clients that alias
   [module Obs = Aba_obs.Obs] can say [Obs.Counter], [Obs.Histogram],
   [Obs.Trace], [Obs.Clock] as the design doc does. *)
module Clock = Clock
module Counter = Counter
module Histogram = Histogram
module Trace = Trace
