(* CLOCK_MONOTONIC via bechamel's noalloc C stub — the only monotonic
   source in the image (OCaml's Unix has no [clock_gettime]).  The probe
   runs once at module initialisation; if the stub misbehaves on this
   platform (returns zero or goes backwards across two immediate calls)
   every caller falls back to the wall clock, which is at least usable
   even though NTP slew can distort it. *)
let raw_ns () = Int64.to_int (Monotonic_clock.now ())
let wall_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let monotonic =
  let a = raw_ns () in
  a > 0 && raw_ns () >= a

let now_ns () = if monotonic then raw_ns () else wall_ns ()
let elapsed_ns start = now_ns () - start
let elapsed_s start = float_of_int (now_ns () - start) /. 1e9
