(* CLOCK_MONOTONIC via bechamel's noalloc C stub — the only monotonic
   source in the image (OCaml's Unix has no [clock_gettime]).  The probe
   runs once at module initialisation; if the stub misbehaves on this
   platform (returns zero or goes backwards across two immediate calls)
   every caller falls back to the wall clock, which is at least usable
   even though NTP slew can distort it. *)
let raw_ns () = Int64.to_int (Monotonic_clock.now ())

(* Epoch nanoseconds (~2^60.6) exceed the 53-bit double mantissa, so
   [int_of_float (t *. 1e9)] quantizes to ~256 ns and adjacent stamps can
   tie or regress.  Split the float first: whole seconds are exact in a
   double, and the fractional part carries full microsecond resolution
   (gettimeofday's native granularity), so each piece converts to int
   losslessly before the widening multiply. *)
let ns_of_unix_time t =
  let secs = floor t in
  let frac_us = Float.round ((t -. secs) *. 1e6) in
  (int_of_float secs * 1_000_000_000) + (int_of_float frac_us * 1_000)

let wall_ns () = ns_of_unix_time (Unix.gettimeofday ())

let monotonic =
  let a = raw_ns () in
  a > 0 && raw_ns () >= a

let now_ns () = if monotonic then raw_ns () else wall_ns ()
let elapsed_ns start = now_ns () - start
let elapsed_s start = float_of_int (now_ns () - start) /. 1e9
