(* JSON emission for {!Obs} handles, kept separate so the hot-path
   modules never touch the (allocating) JSON builder. *)

let histogram_fields (h : Histogram.t) =
  let s = Histogram.summarize h in
  [
    ("count", Json.Int s.count);
    ("p50_ns", Json.Int s.p50);
    ("p90_ns", Json.Int s.p90);
    ("p99_ns", Json.Int s.p99);
    ("p999_ns", Json.Int s.p999);
  ]

let kind_json obs kind =
  let base =
    [
      ("kind", Json.Str (Obs.kind_name kind));
      ("ops", Json.Int (Obs.op_count obs kind));
      ("retries", Json.Int (Obs.retry_count obs kind));
    ]
  in
  match Obs.histogram obs kind with
  | None -> Json.Obj base
  | Some h -> Json.Obj (base @ histogram_fields h)

let summary obs =
  let kinds =
    List.filter (fun k -> Obs.op_count obs k > 0) Obs.all_kinds
  in
  Json.Obj
    [
      ("enabled", Json.Bool (Obs.enabled obs));
      ("kinds", Json.Arr (List.map (kind_json obs) kinds));
      ( "trace",
        Json.Obj
          [
            ("recorded", Json.Int (Obs.trace_recorded obs));
            ("retained", Json.Int (Obs.trace_retained obs));
          ] );
    ]

let event_json (e : Obs.event) =
  Json.Obj
    [
      ("t_ns", Json.Int e.at_ns);
      ("kind", Json.Str (Obs.kind_name e.kind));
      ("outcome", Json.Str (Obs.outcome_name e.outcome));
      ("pid", Json.Int e.pid);
      ("retries", Json.Int e.retries);
    ]

let timeline obs = Json.Arr (List.map event_json (Obs.timeline obs))
