open Aba_primitives

module Event = struct
  type t = { ts : int; kind : int; outcome : int; pid : int; retries : int }

  let kind_bits = 5
  let outcome_bits = 3
  let pid_bits = 8
  let retries_bits = 9
  let ts_bits = 37
  let max_kind = (1 lsl kind_bits) - 1
  let max_outcome = (1 lsl outcome_bits) - 1
  let max_pid = (1 lsl pid_bits) - 1
  let max_retries = (1 lsl retries_bits) - 1
  let max_ts = (1 lsl ts_bits) - 1

  (* Field layout, low to high: kind | outcome | pid | retries | ts.
     62 bits total, so a packed event is always an immediate int.  The
     timestamp occupies the top bits on purpose: comparing two packed
     words as plain ints orders events by time, which is what the merge
     sorts on.  pid and retries saturate (a trace is diagnostic data;
     clamping beats widening the word), ts wraps at 2^37 ns ~ 137 s. *)
  let sat v m = if v < 0 then 0 else if v > m then m else v

  let pack ~ts ~kind ~outcome ~pid ~retries =
    ((ts land max_ts) lsl (kind_bits + outcome_bits + pid_bits + retries_bits))
    lor (sat retries max_retries lsl (kind_bits + outcome_bits + pid_bits))
    lor (sat pid max_pid lsl (kind_bits + outcome_bits))
    lor (sat outcome max_outcome lsl kind_bits)
    lor sat kind max_kind

  let unpack w =
    {
      kind = w land max_kind;
      outcome = (w lsr kind_bits) land max_outcome;
      pid = (w lsr (kind_bits + outcome_bits)) land max_pid;
      retries = (w lsr (kind_bits + outcome_bits + pid_bits)) land max_retries;
      ts =
        (w lsr (kind_bits + outcome_bits + pid_bits + retries_bits))
        land max_ts;
    }
end

(* Owner-only write cursor; padded so neighbouring pids' cursors do not
   share a cache line with each other or with the rings. *)
type cursor = { mutable pos : int; mutable count : int }

type t = {
  capacity : int;  (** events retained per pid; 0 = inert *)
  rings : int array array;  (** [n][capacity] packed event words *)
  cursors : cursor array;
}

let noop = { capacity = 0; rings = [||]; cursors = [||] }

let create ?(padded = true) ~capacity ~n () =
  if capacity < 0 then
    invalid_arg "Obs.Trace.create: capacity must be non-negative";
  if n < 1 then invalid_arg "Obs.Trace.create: n must be positive";
  if capacity = 0 then noop
  else
    {
      capacity;
      rings = Array.init n (fun _ -> Array.make capacity 0);
      cursors =
        Array.init n (fun _ ->
            let c = { pos = 0; count = 0 } in
            if padded then Padded.copy c else c);
    }

let enabled t = t.capacity > 0
let capacity t = t.capacity

let record t ~pid w =
  if t.capacity > 0 then begin
    let c = t.cursors.(pid) in
    t.rings.(pid).(c.pos) <- w;
    let p = c.pos + 1 in
    c.pos <- (if p = t.capacity then 0 else p);
    c.count <- c.count + 1
  end

let recorded t =
  Array.fold_left (fun acc c -> acc + c.count) 0 t.cursors

let retained t =
  Array.fold_left (fun acc c -> acc + min c.count t.capacity) 0 t.cursors

(* Merge after the writers have joined: collect each pid's retained
   window (oldest first) and sort the packed words — the timestamp lives
   in the top bits, so plain int order is time order. *)
let merged t =
  let words = ref [] in
  Array.iteri
    (fun pid c ->
      let ring = t.rings.(pid) in
      let kept = min c.count t.capacity in
      let first = if c.count <= t.capacity then 0 else c.pos in
      for k = 0 to kept - 1 do
        words := ring.((first + k) mod t.capacity) :: !words
      done)
    t.cursors;
  List.map Event.unpack (List.sort compare !words)
