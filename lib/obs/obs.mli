(** The unified observability handle.

    One [t] bundles per-kind operation/retry counters ({!Counter}),
    per-kind log2 latency histograms ({!Histogram}) and a packed event
    trace ({!Trace}).  Instrumented code threads a single optional
    handle:

    {[
      let t0 = Obs.start obs in
      (* ... the operation ... *)
      Obs.record obs ~pid ~kind:Obs.Push ~outcome:Obs.Ok ~retries t0
    ]}

    The inert {!noop} instance is the universal default: on it {!start}
    and {!record} reduce to a load of an immutable field and a branch —
    no clock read, no stores, no allocation — so structures instrumented
    with a [?obs] parameter keep byte-identical transcripts and
    0 words/op hot paths when observability is off. *)

(** What an instrumented operation was. *)
type kind =
  | Push
  | Pop
  | Enqueue
  | Dequeue
  | Ll
  | Sc
  | Dread
  | Dwrite
  | Exchange  (** an elimination-exchanger visit *)
  | Combine  (** a combining-cache read *)
  | Retire  (** handing a node to the reclaimer *)
  | Wait_full  (** a blocking enqueue's wait for queue space *)
  | Wait_empty  (** a blocking dequeue's wait for an element *)
  | Steal  (** a service-tier bulk steal from a hot shard *)
  | Scan
      (** an announced-tags crossing scan: the tag window is exhausted and
          the writer scans the announcement slots before reusing tags *)
  | Crash  (** a worker's in-flight operation was killed mid-run *)
  | Recover
      (** a post-crash detectable recovery resolved the killed operation *)

(** How it ended. *)
type outcome =
  | Ok
  | Fail
  | Empty
  | Eliminated  (** push/pop matched in the exchanger, off the head *)
  | Combined  (** adopted a scanner's published snapshot *)
  | Fallback  (** combining window expired; ran the precise read *)
  | Collision  (** exchanger slot contended; no exchange *)
  | Timeout  (** exchanger wait window expired *)

val kind_index : kind -> int
val kind_count : int
val all_kinds : kind list
val kind_name : kind -> string
val outcome_index : outcome -> int
val all_outcomes : outcome list
val outcome_name : outcome -> string

type t

val noop : t
(** The inert handle: {!enabled} is [false], {!start}/{!record} do
    nothing, all accessors report zero/empty. *)

val create : ?padded:bool -> ?hist:bool -> ?trace:int -> n:int -> unit -> t
(** A live handle for pids [0, n).  [padded] (default [true]) pads the
    counter cells and trace cursors; [hist] (default [true]) allocates
    the latency histograms ([false] drops the per-op clock cost down to
    the trace stamp); [trace] (default 1024) is the per-pid ring
    capacity, 0 for no trace.  Raises [Invalid_argument] if [n < 1]. *)

val enabled : t -> bool

val start : t -> int
(** Timestamp for a {!record} later in the same operation; 0 (no clock
    read) on a disabled handle. *)

val record :
  t -> pid:int -> kind:kind -> outcome:outcome -> retries:int -> int -> unit
(** [record t ~pid ~kind ~outcome ~retries t0] counts one operation,
    adds [retries] to the kind's retry counter, records the latency
    since [t0 = start t] and appends a packed trace event.  No-op on a
    disabled handle.  Allocation-free either way. *)

val op_count : t -> kind -> int
val retry_count : t -> kind -> int
(** Merge-on-read totals over all pids (0 on a disabled handle). *)

val histogram : t -> kind -> Histogram.t option
(** The kind's latency histogram ([None] when disabled or created with
    [~hist:false]). *)

val trace_recorded : t -> int
val trace_retained : t -> int

(** A decoded trace event; [at_ns] is ns since the handle's creation. *)
type event = {
  at_ns : int;
  kind : kind;
  outcome : outcome;
  pid : int;
  retries : int;
}

val timeline : t -> event list
(** All retained events of all pids merged into time order.  Call after
    the instrumented domains have joined. *)

(** The component modules, re-exported for [Obs.Counter]-style access. *)
module Clock = Clock

module Counter = Counter
module Histogram = Histogram
module Trace = Trace
