(** JSON emission for {!Obs} handles (via {!Json}, the builder the
    benchmark result files already use). *)

val summary : Obs.t -> Json.t
(** Per-kind ops/retries plus latency percentiles (kinds with zero ops
    are omitted; percentile fields are omitted without histograms) and
    the trace recorded/retained counts. *)

val timeline : Obs.t -> Json.t
(** The merged trace as an array of
    [{t_ns, kind, outcome, pid, retries}] objects. *)
