(** Minimal JSON construction — just enough for the benchmark result
    files, with correct string escaping (the image has no JSON library,
    and hand-rolled [Printf] assembly silently produced invalid output
    for strings containing quotes or control characters). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON has no NaN or infinity literals; map them to null rather than
   emitting an unparseable file. *)
let float_literal f =
  match Float.classify_float f with
  | FP_nan | FP_infinite -> "null"
  | FP_zero | FP_subnormal | FP_normal -> Printf.sprintf "%.12g" f

let rec write buf ~indent v =
  let pad n = String.make n ' ' in
  match v with
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_literal f)
  | Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape_string s);
      Buffer.add_char buf '"'
  | Arr [] -> Buffer.add_string buf "[]"
  | Arr items ->
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          write buf ~indent:(indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf ']'
  | Obj [] -> Buffer.add_string buf "{}"
  | Obj fields ->
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf (pad (indent + 2));
          Buffer.add_char buf '"';
          Buffer.add_string buf (escape_string k);
          Buffer.add_string buf "\": ";
          write buf ~indent:(indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (pad indent);
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 4096 in
  write buf ~indent:0 v;
  Buffer.add_char buf '\n';
  Buffer.contents buf
