(** Fixed-size per-domain rings of packed int event words.

    Each pid appends to its own preallocated ring — an owner-only array
    store plus a cursor bump, no allocation, no shared writes — and the
    rings are merged into one time-ordered timeline after the run.  An
    event packs (kind, outcome, pid, retry count, timestamp) into one
    immediate int; see {!Event} for the exact layout and saturation
    rules. *)

module Event : sig
  type t = { ts : int; kind : int; outcome : int; pid : int; retries : int }

  val kind_bits : int
  val outcome_bits : int
  val pid_bits : int
  val retries_bits : int
  val ts_bits : int

  val max_kind : int
  val max_outcome : int
  val max_pid : int
  val max_retries : int
  val max_ts : int

  val pack :
    ts:int -> kind:int -> outcome:int -> pid:int -> retries:int -> int
  (** Pack into a 62-bit word.  [kind] and [outcome] must fit their
      fields (the callers use small enums); [pid] and [retries] saturate
      at {!max_pid} / {!max_retries}; [ts] wraps at [2^37] ns (~137 s).
      Words compare as ints in timestamp order. *)

  val unpack : int -> t
  (** Inverse of {!pack} on in-range fields. *)
end

type t

val noop : t
(** The inert trace: {!record} is a no-op, {!merged} is empty. *)

val create : ?padded:bool -> capacity:int -> n:int -> unit -> t
(** [capacity] events retained per pid (a capacity of 0 returns {!noop});
    [padded] (default [true]) pads the per-pid write cursors.  Raises
    [Invalid_argument] if [capacity < 0] or [n < 1]. *)

val enabled : t -> bool
val capacity : t -> int

val record : t -> pid:int -> int -> unit
(** Append a packed word to [pid]'s ring, overwriting the oldest event
    once the ring is full.  Owner-only: one writer per pid. *)

val recorded : t -> int
(** Events ever recorded (including overwritten ones). *)

val retained : t -> int
(** Events currently held across all rings ([<= n * capacity]). *)

val merged : t -> Event.t list
(** The retained events of all pids, oldest-window-first per pid, sorted
    by timestamp.  Call after the writing domains have joined. *)
