open Aba_primitives

type t = { cells : int Atomic.t array }

let create ?(padded = true) ~n () =
  if n < 1 then invalid_arg "Obs.Counter.create: n must be positive";
  {
    cells =
      (if padded then Padded.atomic_array n 0
       else Array.init n (fun _ -> Atomic.make 0));
  }

let domains t = Array.length t.cells
let incr t ~pid = Atomic.incr t.cells.(pid)
let add t ~pid d = ignore (Atomic.fetch_and_add t.cells.(pid) d)
let get t ~pid = Atomic.get t.cells.(pid)
let total t = Array.fold_left (fun acc c -> acc + Atomic.get c) 0 t.cells
