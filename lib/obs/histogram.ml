(* One flat int row per pid: [record] is two array reads and one write on
   owner-only memory — no atomics, no allocation.  Rows are merged only at
   extraction time, after the domains have joined. *)

type t = { rows : int array array }

let buckets = 63
let top_bucket = buckets - 1

(* Number of significant bits of [v]: bucket [b >= 1] covers
   [2^(b-1), 2^b - 1]; bucket 0 absorbs zero and negative values (a
   non-monotonic clock is the only way to produce the latter, and the
   fallback in {!Clock} makes even that benign).  A positive int has at
   most 62 significant bits, but the cap keeps [record] in-bounds even if
   [buckets] ever shrinks. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec bits acc v = if v = 0 then acc else bits (acc + 1) (v lsr 1) in
    min (bits 0 v) top_bucket
  end

let bucket_lo = function 0 -> 0 | i -> 1 lsl (i - 1)

(* The top bucket's bound is [max_int] by definition, not via
   [(1 lsl 62) - 1] — that expression only equals [max_int] by wrapping
   through [min_int - 1], an accident of signed-shift overflow. *)
let bucket_hi i =
  if i <= 0 then 0 else if i >= top_bucket then max_int else (1 lsl i) - 1

let create ~n () =
  if n < 1 then invalid_arg "Obs.Histogram.create: n must be positive";
  { rows = Array.make_matrix n buckets 0 }

let record t ~pid v =
  let row = t.rows.(pid) in
  let b = bucket_of v in
  row.(b) <- row.(b) + 1

let merged t =
  let m = Array.make buckets 0 in
  Array.iter (fun row -> Array.iteri (fun i c -> m.(i) <- m.(i) + c) row) t.rows;
  m

(* Cross-instance merge: because a bucket's bounds depend only on its
   index (never on the recording instance), summing bucket-wise is exactly
   equivalent to having recorded every sample into one histogram — the
   property the service tier relies on to get end-to-end percentiles from
   per-shard histograms without re-recording. *)
let merge ts =
  let m = { rows = Array.make_matrix 1 buckets 0 } in
  let row = m.rows.(0) in
  List.iter
    (fun t ->
      Array.iter
        (fun r -> Array.iteri (fun i c -> row.(i) <- row.(i) + c) r)
        t.rows)
    ts;
  m

let count t = Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 t.rows

let percentile t q =
  if not (q >= 0. && q <= 1.) then
    invalid_arg "Obs.Histogram.percentile: q outside [0, 1]";
  let m = merged t in
  let total = Array.fold_left ( + ) 0 m in
  if total = 0 then 0
  else begin
    (* The rank-th smallest sample lives in the first bucket whose
       cumulative count reaches [rank]; report that bucket's upper bound,
       so percentiles are monotone in [q] by construction. *)
    let rank = max 1 (int_of_float (Float.ceil (q *. float_of_int total))) in
    let rec walk b cum =
      let cum = cum + m.(b) in
      if cum >= rank then bucket_hi b else walk (b + 1) cum
    in
    walk 0 0
  end

(* SLO attainment: the fraction of samples whose bucket lies entirely at
   or below [budget].  The straddling bucket counts only when the budget
   covers its upper bound, so the estimate is conservative (never reports
   a sample as in-budget that might not be) and agrees with [percentile]:
   [fraction_le t (percentile t q) >= q]. *)
let fraction_le t budget =
  let m = merged t in
  let total = Array.fold_left ( + ) 0 m in
  if total = 0 then 1.
  else begin
    let within = ref 0 in
    Array.iteri (fun b c -> if bucket_hi b <= budget then within := !within + c) m;
    float_of_int !within /. float_of_int total
  end

type summary = { count : int; p50 : int; p90 : int; p99 : int; p999 : int }

let summarize t =
  {
    count = count t;
    p50 = percentile t 0.5;
    p90 = percentile t 0.9;
    p99 = percentile t 0.99;
    p999 = percentile t 0.999;
  }
