(** Runtime (multicore) ABA-detecting registers over OCaml 5 [Atomic].

    - {!Stamped} — the trivial construction from one "unbounded" register:
      each write installs a fresh stamp record and readers compare stamps
      physically (allocation is the unbounded tag; the GC keeps held stamps
      unique).  One atomic operation per call.  Hand-written; kept as the
      native baseline.
    - {!Fig4} — Figure 4: [n + 1] bounded registers, plain loads and stores
      only (no CAS anywhere), four loads/stores per [DRead], two per
      [DWrite].  Since PR 2 this is {e not} a hand-written port: it
      instantiates {!Aba_core.Aba_from_registers.Make} — the functor
      verified under the seq/sim backends — over
      {!Aba_primitives.Rt_mem}.  With [combining] its [dread] additionally
      goes through an {!Aba_core.Combining} cache: under read contention
      one reader scans and publishes, concurrent readers adopt the
      snapshot instead of re-walking the shared registers.
    - {!From_llsc} — Figure 5 over {!Rt_llsc.Fig3}: the Theorem 2 register
      from a single bounded CAS word, again the verified core functors end
      to end. *)

module Stamped : sig
  type 'a t

  val create : n:int -> 'a -> 'a t
  val dwrite : 'a t -> pid:int -> 'a -> unit
  val dread : 'a t -> pid:int -> 'a * bool
end

module Fig4 : sig
  type t

  val create : ?padded:bool -> ?combining:bool -> ?window:int ->
    ?obs:Aba_obs.Obs.t -> n:int -> int -> t
  (** [padded] (default [false]) spreads [X] and the [n] announce registers
      over distinct cache lines.  [combining] (default [false]: opt-in)
      routes [dread] through an {!Aba_core.Combining} cache with adoption
      window [window] (default {!Aba_core.Combining.default_window}) —
      adopted reads return a conservatively-[true] detection flag, see
      {!Aba_core.Combining}.  [obs] (default {!Aba_obs.Obs.noop}) records
      [Dread]/[Dwrite] events and is shared with the combining cache,
      whose [Combine] events land in the same handle. *)

  val dwrite : t -> pid:int -> int -> unit
  val dread : t -> pid:int -> int * bool

  val combining_stats : t -> Aba_core.Combining.stats option
  (** Scan/adopt/fallback counters ([None] without [combining]). *)
end

module From_llsc : sig
  type t

  val create :
    ?padded:bool -> ?backoff:Aba_primitives.Backoff.spec ->
    ?obs:Aba_obs.Obs.t -> n:int -> init:int -> unit -> t
  (** Requires [1 <= n <= 40]; values are integers in [0 .. 2^(62-n)).
      Contention and observability options as in
      {!Rt_llsc.Packed_fig3.create} ([obs] records [Dread]/[Dwrite]). *)

  val dwrite : t -> pid:int -> int -> unit
  val dread : t -> pid:int -> int * bool
end
