(** Lock-free free list of node indices: a per-pid single-index cache in
    front of the reclamation subsystem ({!Rt_reclaim}).

    The shared pool is a reclaimer, by default the {!Rt_reclaim.Guarded}
    scheme, whose shared stack is driven through the paper's Figure-3
    LL/SC word — bounded and ABA-immune on index reuse by Theorem 2
    rather than by leaning on the garbage collector.  In front of it sits
    one padded atomic slot per pid holding at most one free index: a
    balanced workload (each pop's node feeds the same domain's next push)
    never touches the shared pool at all, so the steady-state [take]/[put]
    pair is one atomic exchange plus one load-and-store — no allocation,
    no shared-stack traffic.  The slot protocol needs no tags: only the
    owner ever stores an index into its slot, everyone else only swaps it
    to empty.

    Capacity stays exact: when the shared pool runs dry, [take] sweeps
    the other pids' cache slots, so an index parked in a cache is still
    allocatable and a structure reports full only when every index is
    really inside it.

    Two disciplines coexist:
    - [put]/[take] recycle indices immediately, for clients whose own
      head word carries the ABA protection (tagged, LL/SC or
      announcement-guarded structures);
    - [retire]/[protect]/[acquire]/[release]/[flush] defer reuse behind
      the reclaimer's grace period, for clients with unprotected words
      (see {!Rt_treiber} and {!Rt_ms_queue}'s [Reclaimed] variants). *)

type t

val create :
  ?scheme:Rt_reclaim.scheme ->
  ?slots:int ->
  ?obs:Aba_obs.Obs.t ->
  n:int ->
  capacity:int ->
  unit ->
  t
(** All indices in [0, capacity) start free; [n] is the number of
    domains (pids).  Default scheme: {!Rt_reclaim.Guarded}.  [obs]
    (default {!Aba_obs.Obs.noop}) is passed to the reclaimer, which
    records each [retire] as a [Retire] event. *)

val reclaimer : t -> Rt_reclaim.t
(** The shared pool, for clients that drive the deferred-reclamation
    protocol directly or report its {!Rt_reclaim.stats}. *)

val take : t -> pid:int -> int option
(** Boxing wrapper over {!take_idx} for callers off the hot path. *)

val take_idx : t -> pid:int -> int
(** A free index, or [-1] when none is left anywhere (cache slots
    included).  Allocation-free: the cache hit is one exchange on the
    caller's own padded slot. *)

val put : t -> pid:int -> int -> unit
(** Return an index for immediate reuse.  Parks it in the caller's cache
    slot when empty (allocation-free), else recycles into the shared
    pool. *)

val retire : t -> pid:int -> int -> unit
val protect : t -> pid:int -> slot:int -> int -> unit
val acquire : t -> pid:int -> slot:int -> read:(unit -> int) -> int
val release : t -> pid:int -> unit
val flush : t -> pid:int -> unit
val stats : t -> Rt_reclaim.stats
val capacity : t -> int
