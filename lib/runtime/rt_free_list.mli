(** Lock-free free list of node indices, rebuilt on the reclamation
    subsystem ({!Rt_reclaim}).

    The old implementation was a GC-dependent stack of boxed cons cells
    with unbounded recursive retry loops; this one is a facade over a
    reclaimer, by default the {!Rt_reclaim.Guarded} scheme, whose
    shared stack is driven through the paper's Figure-3 LL/SC word —
    bounded, allocation-free in the hot path, and ABA-immune on index
    reuse by Theorem 2 rather than by leaning on the garbage collector.
    All retry loops live in [Aba_reclaim] and are flat [while] loops.

    Two disciplines coexist:
    - [put]/[take] recycle indices immediately, for clients whose own
      head word carries the ABA protection (tagged or LL/SC structures);
    - [retire]/[protect]/[acquire]/[release]/[flush] defer reuse behind
      the reclaimer's grace period, for clients with unprotected words
      (see {!Rt_treiber} and {!Rt_ms_queue}'s [Reclaimed] variants). *)

type t = Rt_reclaim.t

val create :
  ?scheme:Rt_reclaim.scheme ->
  ?slots:int ->
  ?obs:Aba_obs.Obs.t ->
  n:int ->
  capacity:int ->
  unit ->
  t
(** All indices in [0, capacity) start free; [n] is the number of
    domains (pids).  Default scheme: {!Rt_reclaim.Guarded}.  [obs]
    (default {!Aba_obs.Obs.noop}) is passed to the reclaimer, which
    records each [retire] as a [Retire] event. *)

val take : t -> pid:int -> int option
val put : t -> pid:int -> int -> unit

val retire : t -> pid:int -> int -> unit
val protect : t -> pid:int -> slot:int -> int -> unit
val acquire : t -> pid:int -> slot:int -> read:(unit -> int) -> int
val release : t -> pid:int -> unit
val flush : t -> pid:int -> unit
val stats : t -> Rt_reclaim.stats
val capacity : t -> int
