module Stamped = struct
  (* The stamp record is freshly allocated on every write; holding the
     previously seen stamp pins it, so physical inequality is exactly
     "somebody wrote since then".  Hand-written; kept as the native
     unbounded-tag baseline the unified stack is benchmarked against. *)
  type 'a stamp = { value : 'a }

  type 'a t = { x : 'a stamp Atomic.t; last : 'a stamp array }

  let create ~n init =
    let first = { value = init } in
    { x = Atomic.make first; last = Array.make n first }

  let dwrite t ~pid:_ v = Atomic.set t.x { value = v }

  let dread t ~pid =
    let s = Atomic.get t.x in
    let changed = s != t.last.(pid) in
    t.last.(pid) <- s;
    (s.value, changed)
end

(* Figure 4 instantiated over the multicore memory: the exact functor body
   that is model-checked under Seq_mem/Sim_mem, running on OCaml 5 Atomic.
   The algorithm uses plain loads and stores only, on registers holding
   immutable records — no CAS, so no codec is needed; Rt_mem registers are
   single Atomic cells and every shared step of the functor is one atomic
   load or store. *)
module Fig4_impl =
  Aba_core.Aba_from_registers.Make
    (Aba_primitives.Rt_mem.Make (struct
      let n = 64 (* Fig4 uses no LL/SC base object, so this is inert. *)
    end))

module Fig4 = struct
  module Obs = Aba_obs.Obs

  type t = {
    base : Fig4_impl.t;
    combine : Aba_core.Combining.t option;
        (** read-combining cache over [base]'s [dread]; [None] = every
            read runs the full announce protocol *)
    obs : Obs.t;
  }

  (* Figure 4's registers are bounded in their (writer, seq) components;
     the value component is whatever the client stores, so admit the full
     native int domain.  The runtime register is int-only (every existing
     use site stores ints); generic payloads stay with {!Stamped}. *)
  let int63 =
    Aba_primitives.Bounded.make ~describe:"int63" (fun (_ : int) -> true)

  let create ?(padded = false) ?(combining = false) ?window
      ?(obs = Obs.noop) ~n init =
    let base = Fig4_impl.create ~value_bound:int63 ~init ~padded ~n () in
    let combine =
      if combining then
        Some
          (Aba_core.Combining.create ~padded ?window ~obs ~n
             ~scan:(fun ~pid -> Fig4_impl.dread base ~pid)
             ())
      else None
    in
    { base; combine; obs }

  let dwrite t ~pid v =
    let t0 = Obs.start t.obs in
    Fig4_impl.dwrite t.base ~pid v;
    Obs.record t.obs ~pid ~kind:Obs.Dwrite ~outcome:Obs.Ok ~retries:0 t0

  let dread t ~pid =
    let t0 = Obs.start t.obs in
    let r =
      match t.combine with
      | None -> Fig4_impl.dread t.base ~pid
      | Some c -> Aba_core.Combining.dread c ~pid
    in
    Obs.record t.obs ~pid ~kind:Obs.Dread ~outcome:Obs.Ok ~retries:0 t0;
    r

  let combining_stats t = Option.map Aba_core.Combining.stats t.combine
end

module From_llsc = struct
  (* Figure 5 over the unified Figure 3 instantiation: Theorem 2's register
     from a single bounded CAS word, same functor chain as
     Instances.aba_thm2 under the seq/sim backends. *)
  module I = Aba_core.Aba_from_llsc.Make (Rt_llsc.Fig3)
  module Obs = Aba_obs.Obs

  type t = { base : I.t; obs : Obs.t }

  let create ?(padded = false) ?(backoff = Aba_primitives.Backoff.Noop)
      ?(obs = Obs.noop) ~n ~init () =
    if n < 1 || n > 40 then
      invalid_arg "Rt_aba.From_llsc.create: n must be 1..40";
    {
      base =
        I.create
          ~value_bound:
            (Aba_primitives.Bounded.int_range ~lo:0 ~hi:((1 lsl (62 - n)) - 1))
          ~init ~padded ~backoff ~n ();
      obs;
    }

  let dwrite t ~pid v =
    let t0 = Obs.start t.obs in
    I.dwrite t.base ~pid v;
    Obs.record t.obs ~pid ~kind:Obs.Dwrite ~outcome:Obs.Ok ~retries:0 t0

  let dread t ~pid =
    let t0 = Obs.start t.obs in
    let r = I.dread t.base ~pid in
    Obs.record t.obs ~pid ~kind:Obs.Dread ~outcome:Obs.Ok ~retries:0 t0;
    r
end
