(* A single-index per-pid cache in front of the shared reclaimer pool.
   The balanced hot path (every pop feeds the next push of the same
   domain) runs entirely on the owner's padded atomic slot — one
   exchange to take, one load-and-store to put, no allocation — while
   the shared pool only sees the cold start, imbalance spills and the
   cross-domain steals that keep capacity exact. *)
type t = {
  shared : Rt_reclaim.t;
  cache : int Atomic.t array;  (** one cached free index per pid, -1 = none *)
}

let create ?(scheme = Rt_reclaim.Guarded) ?slots ?obs ~n ~capacity () =
  {
    shared = Rt_reclaim.create ?slots ?obs ~n ~capacity scheme;
    cache = Aba_primitives.Padded.atomic_array n (-1);
  }

(* Only the owner ever stores an index into its slot; everyone else only
   exchanges the slot to empty.  So a take is one exchange (it either
   wins the cached index or finds the slot empty), and a put can use a
   plain load-then-store: between the owner's load of -1 and its store,
   no other domain can have written a value there. *)

let rec sweep cache p =
  if p < 0 then -1
  else
    let v = Atomic.exchange cache.(p) (-1) in
    if v >= 0 then v else sweep cache (p - 1)

let take_idx t ~pid =
  let v = Atomic.exchange t.cache.(pid) (-1) in
  if v >= 0 then v
  else
    match Rt_reclaim.alloc t.shared ~pid with
    | Some i -> i
    | None ->
        (* The shared pool is dry, but indices parked in other pids'
           caches are still free: steal one so a full structure is
           reported full only when every index is really in it. *)
        sweep t.cache (Array.length t.cache - 1)

let take t ~pid =
  let i = take_idx t ~pid in
  if i < 0 then None else Some i

let put t ~pid i =
  let c = t.cache.(pid) in
  if Atomic.get c = -1 then Atomic.set c i
  else Rt_reclaim.recycle t.shared ~pid i

let reclaimer t = t.shared
let retire t = Rt_reclaim.retire t.shared
let protect t = Rt_reclaim.protect t.shared
let acquire t = Rt_reclaim.acquire t.shared
let release t = Rt_reclaim.release t.shared
let flush t = Rt_reclaim.flush t.shared
let stats t = Rt_reclaim.stats t.shared
let capacity t = Rt_reclaim.capacity t.shared
