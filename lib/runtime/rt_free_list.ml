type t = Rt_reclaim.t

let create ?(scheme = Rt_reclaim.Guarded) ?slots ?obs ~n ~capacity () =
  Rt_reclaim.create ?slots ?obs ~n ~capacity scheme

let take t ~pid = Rt_reclaim.alloc t ~pid
let put t ~pid i = Rt_reclaim.recycle t ~pid i
let retire = Rt_reclaim.retire
let protect = Rt_reclaim.protect
let acquire = Rt_reclaim.acquire
let release = Rt_reclaim.release
let flush = Rt_reclaim.flush
let stats = Rt_reclaim.stats
let capacity = Rt_reclaim.capacity
