(** Elimination layer: scale a stack past its single ABA-protected word.

    Every production structure in this library funnels all [n] processes
    through one protected word — the Figure-3 CAS object or a tagged head
    index — so beyond a few domains throughput is bounded by coherence
    traffic on that line, however well padding and backoff behave.  The
    classic fix is to let {e colliding pairs cancel off the hot word}: a
    concurrent push/pop pair is linearizable with the push immediately
    followed by the pop, and that composite is a no-op on the stack — the
    pair can simply hand the value over in a side array and never touch
    the head.  The head word (tagged, LL/SC or reclaimer-protected) stays
    the correctness backbone; elimination only removes traffic from it.

    The exchanger is an array of cache-line-padded single-word slots, each
    running a four-state protocol driven purely by
    [Atomic.compare_and_set] on an immediate int (no allocation on any
    path):

    {v
    EMPTY --push--> WAITING_PUSH(v) --pop---> EXCHANGED(v) --push--> EMPTY
    EMPTY --pop---> WAITING_POP     --push--> EXCHANGED(v) --pop---> EMPTY
    v}

    A waiter parks, polls its slot for a bounded window (paced by
    {!Aba_primitives.Backoff}), and withdraws on timeout; the counterparty
    moves a WAITING slot to EXCHANGED and only the original waiter resets
    EXCHANGED to EMPTY.  Keeping the slot locked on the waiter until the
    waiter itself releases it makes the exchanger immune to its own ABA
    hazard (a withdrawn offer reposted with the same value) with no tag
    counter — see the state-machine notes in the implementation.

    Each process adapts how much of the array it uses from collision
    feedback: collisions double its search range (spread out), timeouts
    halve it (concentrate where partners look).  The pure transition is
    exposed as {!adapt} and the slot codec as {!Slot} so the tests can
    drive both exhaustively.

    The {!spec} mirrors {!Aba_primitives.Backoff.spec}: [Noop] yields an
    inert instance whose [exchange_*] return immediately without touching
    memory, so sequential and differential runs are byte-identical with
    the knob on or off. *)

open Aba_primitives

(** The slot state machine as data — the specification of the protocol.
    The hot path manipulates the encoded words directly (decoding would
    allocate); tests check both against each other. *)
module Slot : sig
  type state = Empty | Waiting_push of int | Waiting_pop | Exchanged of int

  val encode : state -> int
  (** Low two bits are the tag, the rest the payload (arithmetic shift:
      negative values round-trip).  [encode Empty = 0]. *)

  val decode : int -> state
end

val adapt :
  slots:int -> range:int -> [ `Collision | `Timeout | `Exchange ] -> int
(** The adaptive-range transition: collisions double [range] (clamped to
    [slots]), timeouts halve it (floor 1), exchanges keep it. *)

type spec =
  | Noop  (** inert: no slots, every exchange attempt fails immediately *)
  | Exchanger of { slots : int; window : int; backoff : Backoff.spec }
      (** [slots] exchanger slots; a waiter polls its slot [window] times,
          each poll paced by one [Backoff.once] of [backoff]. *)

val default_spec : spec
(** [Exchanger { slots = 8; window = 32; backoff = Exp {1, 64} }]. *)

type t

val create :
  ?padded:bool -> ?obs:Aba_obs.Obs.t -> spec:spec -> n:int -> unit -> t
(** An exchanger for [n] processes.  [padded] (default [true]) gives every
    slot its own cache line.  Values passed through the exchanger must fit
    in 60 signed bits (they share the slot word with the 2-bit tag).
    [obs] (default {!Aba_obs.Obs.noop}) records every exchange attempt as
    an [Exchange] event — outcome [Eliminated]/[Collision]/[Timeout],
    with the wait-window poll count as retries.  Raises
    [Invalid_argument] on a non-positive [slots], [window] or [n] of an
    [Exchanger] spec. *)

val exchange_push : t -> pid:Pid.t -> int -> bool
(** Offer a value to a concurrent pop.  [true] means some pop took it —
    the pair has linearized off the stack and the caller must {e not}
    also publish the value.  [false] (immediately under [Noop], after a
    bounded window otherwise) means the caller falls back to the head
    word.  Allocation-free. *)

val exchange_pop : t -> pid:Pid.t -> int option
(** Try to take a value from a concurrent push; [None] means fall back.
    Allocation-free except the final [Some]. *)

val enabled : t -> bool
(** [false] exactly for instances built from [Noop]. *)

val slot_count : t -> int

val range : t -> pid:Pid.t -> int
(** Current adaptive search range of [pid] (0 when disabled); for tests
    and diagnostics. *)

val peek : t -> int -> Slot.state
(** Decode slot [i]'s current state; for tests — racy under concurrency. *)

type stats = {
  attempts : int;  (** exchange attempts (both sides) *)
  exchanges : int;  (** operations completed by elimination (both sides of
                        a pair count one each) *)
  collisions : int;  (** lost CASes / occupied slots — crowding feedback *)
  timeouts : int;  (** windows that expired partnerless *)
}

val stats : t -> stats
(** Summed over per-process counters; exact once domains are joined. *)
