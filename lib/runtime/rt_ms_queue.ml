open Aba_primitives
module Obs = Aba_obs.Obs

type protection =
  | Tag_bits of int
  | Reclaimed of Rt_reclaim.scheme
  | Announced of int

type tagged = {
  tag_bits : int;
  t_head : int Atomic.t;
  t_tail : int Atomic.t;
  t_nexts : int Atomic.t array;  (** packed (index, tag) *)
}

type reclaimed = {
  r_head : int Atomic.t;  (** plain node index: the current dummy *)
  r_tail : int Atomic.t;
  r_nexts : int Atomic.t array;  (** plain successor index, -1 = none *)
}

(* Counted pointers with announcement-guarded head and tail tags (the
   queue twin of {!Rt_treiber}'s [Announced] head): operations announce
   the head/tail tag they rely on in per-pid padded slots and revalidate;
   installs on those words that cross a half of the tag space scan the
   matching slot array and skip announced tags.  The per-node link words
   keep the plain counted-tag discipline of the [Tagged] variant: a link
   tag wraps only after [2^k] operations funnel through that single node
   inside one stalled operation's window, a far stronger adversary than
   the [2^k] total operations that wrap the global head/tail words. *)
type announced_q = {
  an_tag_bits : int;
  an_total : int;
  an_half : int;
  an_head : int Atomic.t;
  an_tail : int Atomic.t;
  an_nexts : int Atomic.t array;  (** packed (index, tag), plain counted *)
  an_head_slots : int Atomic.t array;  (** announced head tag per pid *)
  an_tail_slots : int Atomic.t array;  (** announced tail tag per pid *)
  an_n : int;
}

type impl =
  | Tagged of tagged
  | Via_reclaim of reclaimed
  | Via_announced of announced_q

type t = {
  impl : impl;
  values : int array;
  free : Rt_free_list.t;
  bo : Backoff.t array;  (** per-pid retry backoff, {!Backoff.noop} when
                             backoff is disabled *)
  obs : Obs.t;  (** records [Enqueue]/[Dequeue] with failed-CAS retry
                    counts; shared with the reclaimer under [Reclaimed],
                    inert under {!Obs.noop} *)
}

(* Pointer layout: index + 1 (so null = -1 maps to 0) shifted past the
   tag bits; the tag wraps at [2^tag_bits]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

(* Head, tail and the per-node link words are all CAS targets hit by every
   domain; padded they each own a line, and the link array is padded
   element-wise (the array itself only holds pointers). *)
let atomics ~padded n v =
  if padded then Padded.atomic_array n v
  else Array.init n (fun _ -> Atomic.make v)

let create ?(padded = true) ?(backoff = true) ?(obs = Obs.noop) ~protection
    ~capacity ~n () =
  let slots = capacity + 1 in
  let pad_cell c = if padded then Padded.copy c else c in
  let spec = if backoff then Backoff.default_spec else Backoff.Noop in
  let bo = Array.init n (fun _ -> Padded.copy (Backoff.make spec)) in
  match protection with
  | Tag_bits tag_bits ->
      if tag_bits < 0 || tag_bits > 40 then
        invalid_arg "Rt_ms_queue.create: bad tag_bits";
      let free = Rt_free_list.create ~n ~capacity:slots () in
      (* Any free index serves as the initial dummy. *)
      let dummy = Option.get (Rt_free_list.take free ~pid:0) in
      {
        impl =
          Tagged
            {
              tag_bits;
              t_head = pad_cell (Atomic.make (pack ~tag_bits dummy 0));
              t_tail = pad_cell (Atomic.make (pack ~tag_bits dummy 0));
              t_nexts = atomics ~padded slots (pack ~tag_bits (-1) 0);
            };
        values = Array.make slots 0;
        free;
        bo;
        obs;
      }
  | Reclaimed scheme ->
      (* The reclaimer shares the queue's handle so its [Retire] events
         land in the same timeline as the dequeues that caused them. *)
      let free =
        Rt_free_list.create ~scheme ~slots:2 ~obs ~n ~capacity:slots ()
      in
      let dummy = Option.get (Rt_free_list.take free ~pid:0) in
      {
        impl =
          Via_reclaim
            {
              r_head = pad_cell (Atomic.make dummy);
              r_tail = pad_cell (Atomic.make dummy);
              r_nexts = atomics ~padded slots (-1);
            };
        values = Array.make slots 0;
        free;
        bo;
        obs;
      }
  | Announced k ->
      if k < 2 || k > 40 then
        invalid_arg "Rt_ms_queue.create: Announced needs tag_bits in 2..40";
      let free = Rt_free_list.create ~n ~capacity:slots () in
      let dummy = Option.get (Rt_free_list.take free ~pid:0) in
      {
        impl =
          Via_announced
            {
              an_tag_bits = k;
              an_total = 1 lsl k;
              an_half = 1 lsl (k - 1);
              an_head = pad_cell (Atomic.make (pack ~tag_bits:k dummy 0));
              an_tail = pad_cell (Atomic.make (pack ~tag_bits:k dummy 0));
              an_nexts = atomics ~padded slots (pack ~tag_bits:k (-1) 0);
              an_head_slots = atomics ~padded n (-1);
              an_tail_slots = atomics ~padded n (-1);
              an_n = n;
            };
        values = Array.make slots 0;
        free;
        bo;
        obs;
      }

let reclaimer t =
  match t.impl with
  | Via_reclaim _ -> Some (Rt_free_list.reclaimer t.free)
  | Tagged _ | Via_announced _ -> None

let reclaim_stats t = Option.map Rt_reclaim.stats (reclaimer t)

(* ----- Tagged (counted-pointer) variant: Michael & Scott's original ----- *)

(* Returns the failed-link-CAS count, reported to [obs] by [enqueue];
   tail-helping rounds are not counted — they are progress, not failure. *)
let enqueue_tagged q bo i =
  let tag_bits = q.tag_bits in
  (* Reset the link, bumping its counter so CASes armed against the
     node's previous life fail. *)
  let _, old_tag = unpack ~tag_bits (Atomic.get q.t_nexts.(i)) in
  Atomic.set q.t_nexts.(i) (pack ~tag_bits (-1) (old_tag + 1));
  let rec attempt retries =
    let tail_seen = Atomic.get q.t_tail in
    let t_idx, t_tag = unpack ~tag_bits tail_seen in
    let next_seen = Atomic.get q.t_nexts.(t_idx) in
    let n_idx, n_tag = unpack ~tag_bits next_seen in
    if n_idx = -1 then
      if
        Atomic.compare_and_set q.t_nexts.(t_idx) next_seen
          (pack ~tag_bits i (n_tag + 1))
      then begin
        ignore
          (Atomic.compare_and_set q.t_tail tail_seen
             (pack ~tag_bits i (t_tag + 1)));
        retries
      end
      else begin
        Backoff.once bo;
        attempt (retries + 1)
      end
    else begin
      (* Help the lagging tail forward. *)
      ignore
        (Atomic.compare_and_set q.t_tail tail_seen
           (pack ~tag_bits n_idx (t_tag + 1)));
      attempt retries
    end
  in
  attempt 0

let dequeue_tagged t q ~pid t0 =
  let tag_bits = q.tag_bits in
  let bo = t.bo.(pid) in
  let rec attempt retries =
    let head_seen = Atomic.get q.t_head in
    let h_idx, h_tag = unpack ~tag_bits head_seen in
    let tail_seen = Atomic.get q.t_tail in
    let t_idx, t_tag = unpack ~tag_bits tail_seen in
    let n_idx, _ = unpack ~tag_bits (Atomic.get q.t_nexts.(h_idx)) in
    if h_idx = t_idx then
      if n_idx = -1 then begin
        Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries
          t0;
        None
      end
      else begin
        ignore
          (Atomic.compare_and_set q.t_tail tail_seen
             (pack ~tag_bits n_idx (t_tag + 1)));
        attempt retries
      end
    else if n_idx = -1 then
      (* Stale snapshot: the observed dummy was recycled (its link reset)
         between our reads.  Retry with a fresh head. *)
      attempt retries
    else begin
      (* Read the value before the CAS: afterwards the new dummy may be
         dequeued and recycled by others. *)
      let v = t.values.(n_idx) in
      if
        Atomic.compare_and_set q.t_head head_seen
          (pack ~tag_bits n_idx (h_tag + 1))
      then begin
        Rt_free_list.put t.free ~pid h_idx;
        Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
        Some v
      end
      else begin
        Backoff.once bo;
        attempt (retries + 1)
      end
    end
  in
  attempt 0

(* ----- Reclaimed variant: Michael's hazard-pointer protocol -----

   Plain index words everywhere; safety comes from the reclaimer alone:
   the observed dummy (slot 0) and its successor (slot 1) are protected
   and re-validated against the head before any dereference, so neither
   can be recycled mid-operation. *)

(* Returns the failed-link-CAS count, as in {!enqueue_tagged}. *)
let enqueue_reclaimed q rc bo ~pid i =
  Atomic.set q.r_nexts.(i) (-1);
  let rec attempt retries =
    let tl =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get q.r_tail)
    in
    let nxt = Atomic.get q.r_nexts.(tl) in
    if Atomic.get q.r_tail <> tl then attempt retries
    else if nxt <> -1 then begin
      (* Help the lagging tail forward. *)
      ignore (Atomic.compare_and_set q.r_tail tl nxt);
      attempt retries
    end
    else if Atomic.compare_and_set q.r_nexts.(tl) (-1) i then begin
      ignore (Atomic.compare_and_set q.r_tail tl i);
      retries
    end
    else begin
      Backoff.once bo;
      attempt (retries + 1)
    end
  in
  let retries = attempt 0 in
  Rt_reclaim.release rc ~pid;
  retries

let dequeue_reclaimed t q rc ~pid t0 =
  let bo = t.bo.(pid) in
  let rec attempt retries =
    let h =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get q.r_head)
    in
    let tl = Atomic.get q.r_tail in
    let nxt = Atomic.get q.r_nexts.(h) in
    if Atomic.get q.r_head <> h then attempt retries
    else if nxt = -1 then begin
      Rt_reclaim.release rc ~pid;
      Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries t0;
      None
    end
    else if h = tl then begin
      ignore (Atomic.compare_and_set q.r_tail tl nxt);
      attempt retries
    end
    else begin
      Rt_reclaim.protect rc ~pid ~slot:1 nxt;
      if Atomic.get q.r_head <> h then attempt retries
      else begin
        (* [nxt] is protected and still the successor of the live dummy,
           so its value slot cannot be recycled under us. *)
        let v = t.values.(nxt) in
        if Atomic.compare_and_set q.r_head h nxt then begin
          Rt_reclaim.release rc ~pid;
          Rt_reclaim.retire rc ~pid h;
          Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
          Some v
        end
        else begin
          Backoff.once bo;
          attempt (retries + 1)
        end
      end
    end
  in
  attempt 0

(* ----- Announced variant: counted pointers, wraparound-safe -----

   The same structure as [Tagged], with the head and tail words driven
   through the announce/validate/scan tag discipline.  A successful CAS on
   an announced-validated witness proves the word never moved since
   validation — the dereferences in between (the dummy's link, the new
   dummy's value) are therefore of live nodes, with no reclaimer and no
   per-operation scan. *)

(* Announce-and-revalidate on one of the two guarded words.  The loop is
   top-level so it carries no closure environment — the announced paths
   below are the structure's 0-words/op hot paths, and every local
   function or tuple they would close over costs a per-call block. *)
let rec q_revalidate word slot mask packed =
  Atomic.set slot (packed land mask);
  let packed' = Atomic.get word in
  if packed' = packed then packed else q_revalidate word slot mask packed'

let q_protect q slots word ~pid =
  q_revalidate word slots.(pid) (q.an_total - 1) (Atomic.get word)

(* Install [(update, succ tag)] on a guarded word; scans [slots] at half
   crossings and enters above every announced tag.  [false] = lost race or
   blocked crossing; callers retry (or, for optional tail swings, simply
   move on).  The [Scan] event's [retries] counts skipped tags. *)
let q_install t q ~pid slots word ~witness ~update =
  let mask = q.an_total - 1 in
  let next = ((witness land mask) + 1) land mask in
  if next mod q.an_half <> 0 then
    Atomic.compare_and_set word witness
      (pack ~tag_bits:q.an_tag_bits update next)
  else begin
    let t0 = Obs.start t.obs in
    let entry = ref 0 in
    for p = 0 to q.an_n - 1 do
      let s = Atomic.get slots.(p) in
      if s >= next && s < next + q.an_half && s - next + 1 > !entry then
        entry := s - next + 1
    done;
    if !entry >= q.an_half then begin
      Obs.record t.obs ~pid ~kind:Obs.Scan ~outcome:Obs.Fail ~retries:!entry
        t0;
      false
    end
    else begin
      Obs.record t.obs ~pid ~kind:Obs.Scan ~outcome:Obs.Ok ~retries:!entry t0;
      Atomic.compare_and_set word witness
        (pack ~tag_bits:q.an_tag_bits update (next + !entry))
    end
  end

(* Returns the failed-link-CAS count, as in {!enqueue_tagged}.  The link
   words keep the plain counted discipline; only the tail word (the one a
   stalled enqueuer can hold a stale witness of across the whole queue's
   traffic) goes through the guard. *)
let rec enqueue_announced_loop t q ~pid i retries =
  let tag_bits = q.an_tag_bits in
  let tail_seen = q_protect q q.an_tail_slots q.an_tail ~pid in
  let t_idx = (tail_seen lsr tag_bits) - 1 in
  let next_seen = Atomic.get q.an_nexts.(t_idx) in
  let n_idx = (next_seen lsr tag_bits) - 1 in
  if n_idx = -1 then
    if
      Atomic.compare_and_set q.an_nexts.(t_idx) next_seen
        (pack ~tag_bits i ((next_seen land (q.an_total - 1)) + 1))
    then begin
      (* The swing is best-effort: a lost race or a blocked crossing
         leaves it to the next operation's helping step. *)
      ignore
        (q_install t q ~pid q.an_tail_slots q.an_tail ~witness:tail_seen
           ~update:i);
      retries
    end
    else begin
      if retries = 0 then Backoff.reset t.bo.(pid);
      Backoff.once t.bo.(pid);
      enqueue_announced_loop t q ~pid i (retries + 1)
    end
  else begin
    ignore
      (q_install t q ~pid q.an_tail_slots q.an_tail ~witness:tail_seen
         ~update:n_idx);
    enqueue_announced_loop t q ~pid i retries
  end

let enqueue_announced t q ~pid i =
  let tag_bits = q.an_tag_bits in
  (* Reset the link, bumping its counter so CASes armed against the
     node's previous life fail. *)
  let old = Atomic.get q.an_nexts.(i) in
  Atomic.set q.an_nexts.(i)
    (pack ~tag_bits (-1) ((old land (q.an_total - 1)) + 1));
  let retries = enqueue_announced_loop t q ~pid i 0 in
  Atomic.set q.an_tail_slots.(pid) (-1);
  retries

let rec dequeue_announced t q ~pid t0 retries =
  let tag_bits = q.an_tag_bits in
  let head_seen = q_protect q q.an_head_slots q.an_head ~pid in
  let h_idx = (head_seen lsr tag_bits) - 1 in
  let t_idx = (Atomic.get q.an_tail lsr tag_bits) - 1 in
  let n_idx = (Atomic.get q.an_nexts.(h_idx) lsr tag_bits) - 1 in
  if h_idx = t_idx then
    if n_idx = -1 then begin
      Atomic.set q.an_head_slots.(pid) (-1);
      Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries t0;
      None
    end
    else begin
      (* Help the lagging tail forward — through the guard, with a
         witness validated under our own announcement, so a wrapped
         stale tail can never be installed. *)
      let tail_seen = q_protect q q.an_tail_slots q.an_tail ~pid in
      if (tail_seen lsr tag_bits) - 1 = h_idx then
        ignore
          (q_install t q ~pid q.an_tail_slots q.an_tail ~witness:tail_seen
             ~update:n_idx);
      Atomic.set q.an_tail_slots.(pid) (-1);
      dequeue_announced t q ~pid t0 retries
    end
  else if n_idx = -1 then
    (* Stale snapshot: the observed dummy was recycled (its link reset)
       between our reads; the head CAS below would fail anyway. *)
    dequeue_announced t q ~pid t0 retries
  else begin
    (* Read the value before the CAS; CAS success proves the head never
       moved since validation, so [n_idx] was never dequeued — let alone
       recycled — before the read. *)
    let v = t.values.(n_idx) in
    if
      q_install t q ~pid q.an_head_slots q.an_head ~witness:head_seen
        ~update:n_idx
    then begin
      Atomic.set q.an_head_slots.(pid) (-1);
      Rt_free_list.put t.free ~pid h_idx;
      Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
      Some v
    end
    else begin
      if retries = 0 then Backoff.reset t.bo.(pid);
      Backoff.once t.bo.(pid);
      dequeue_announced t q ~pid t0 (retries + 1)
    end
  end

(* [dequeue_announced] minus the option cell, for the allocation-free
   round trip. *)
let rec dequeue_or_announced t q ~pid ~default t0 retries =
  let tag_bits = q.an_tag_bits in
  let head_seen = q_protect q q.an_head_slots q.an_head ~pid in
  let h_idx = (head_seen lsr tag_bits) - 1 in
  let t_idx = (Atomic.get q.an_tail lsr tag_bits) - 1 in
  let n_idx = (Atomic.get q.an_nexts.(h_idx) lsr tag_bits) - 1 in
  if h_idx = t_idx then
    if n_idx = -1 then begin
      Atomic.set q.an_head_slots.(pid) (-1);
      Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries t0;
      default
    end
    else begin
      let tail_seen = q_protect q q.an_tail_slots q.an_tail ~pid in
      if (tail_seen lsr tag_bits) - 1 = h_idx then
        ignore
          (q_install t q ~pid q.an_tail_slots q.an_tail ~witness:tail_seen
             ~update:n_idx);
      Atomic.set q.an_tail_slots.(pid) (-1);
      dequeue_or_announced t q ~pid ~default t0 retries
    end
  else if n_idx = -1 then dequeue_or_announced t q ~pid ~default t0 retries
  else begin
    let v = t.values.(n_idx) in
    if
      q_install t q ~pid q.an_head_slots q.an_head ~witness:head_seen
        ~update:n_idx
    then begin
      Atomic.set q.an_head_slots.(pid) (-1);
      Rt_free_list.put t.free ~pid h_idx;
      Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
      v
    end
    else begin
      if retries = 0 then Backoff.reset t.bo.(pid);
      Backoff.once t.bo.(pid);
      dequeue_or_announced t q ~pid ~default t0 (retries + 1)
    end
  end

let enqueue_pooled t ~pid v =
  let t0 = Obs.start t.obs in
  match Rt_free_list.take t.free ~pid with
  | None ->
      Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Fail ~retries:0 t0;
      false
  | Some i ->
      t.values.(i) <- v;
      Backoff.reset t.bo.(pid);
      let retries =
        match t.impl with
        | Tagged q -> enqueue_tagged q t.bo.(pid) i
        | Via_reclaim q ->
            enqueue_reclaimed q (Rt_free_list.reclaimer t.free) t.bo.(pid)
              ~pid i
        | Via_announced _ -> assert false (* specialized in [enqueue] *)
      in
      Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Ok ~retries t0;
      true

let enqueue t ~pid v =
  match t.impl with
  | Via_announced q ->
      let t0 = Obs.start t.obs in
      let i = Rt_free_list.take_idx t.free ~pid in
      if i < 0 then begin
        Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Fail ~retries:0
          t0;
        false
      end
      else begin
        t.values.(i) <- v;
        let retries = enqueue_announced t q ~pid i in
        Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Ok ~retries t0;
        true
      end
  | Tagged _ | Via_reclaim _ -> enqueue_pooled t ~pid v

let dequeue t ~pid =
  let t0 = Obs.start t.obs in
  match t.impl with
  | Tagged q ->
      Backoff.reset t.bo.(pid);
      dequeue_tagged t q ~pid t0
  | Via_reclaim q ->
      Backoff.reset t.bo.(pid);
      dequeue_reclaimed t q (Rt_free_list.reclaimer t.free) ~pid t0
  | Via_announced q -> dequeue_announced t q ~pid t0 0

let dequeue_or t ~pid ~default =
  match t.impl with
  | Via_announced q ->
      let t0 = Obs.start t.obs in
      dequeue_or_announced t q ~pid ~default t0 0
  | Tagged _ | Via_reclaim _ -> (
      match dequeue t ~pid with Some v -> v | None -> default)
