open Aba_primitives
module Obs = Aba_obs.Obs

type protection = Tag_bits of int | Reclaimed of Rt_reclaim.scheme

type tagged = {
  tag_bits : int;
  t_head : int Atomic.t;
  t_tail : int Atomic.t;
  t_nexts : int Atomic.t array;  (** packed (index, tag) *)
}

type reclaimed = {
  r_head : int Atomic.t;  (** plain node index: the current dummy *)
  r_tail : int Atomic.t;
  r_nexts : int Atomic.t array;  (** plain successor index, -1 = none *)
}

type impl = Tagged of tagged | Via_reclaim of reclaimed

type t = {
  impl : impl;
  values : int array;
  free : Rt_free_list.t;
  bo : Backoff.t array;  (** per-pid retry backoff, {!Backoff.noop} when
                             backoff is disabled *)
  obs : Obs.t;  (** records [Enqueue]/[Dequeue] with failed-CAS retry
                    counts; shared with the reclaimer under [Reclaimed],
                    inert under {!Obs.noop} *)
}

(* Pointer layout: index + 1 (so null = -1 maps to 0) shifted past the
   tag bits; the tag wraps at [2^tag_bits]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

(* Head, tail and the per-node link words are all CAS targets hit by every
   domain; padded they each own a line, and the link array is padded
   element-wise (the array itself only holds pointers). *)
let atomics ~padded n v =
  if padded then Padded.atomic_array n v
  else Array.init n (fun _ -> Atomic.make v)

let create ?(padded = true) ?(backoff = true) ?(obs = Obs.noop) ~protection
    ~capacity ~n () =
  let slots = capacity + 1 in
  let pad_cell c = if padded then Padded.copy c else c in
  let spec = if backoff then Backoff.default_spec else Backoff.Noop in
  let bo = Array.init n (fun _ -> Padded.copy (Backoff.make spec)) in
  match protection with
  | Tag_bits tag_bits ->
      if tag_bits < 0 || tag_bits > 40 then
        invalid_arg "Rt_ms_queue.create: bad tag_bits";
      let free = Rt_free_list.create ~n ~capacity:slots () in
      (* Any free index serves as the initial dummy. *)
      let dummy = Option.get (Rt_free_list.take free ~pid:0) in
      {
        impl =
          Tagged
            {
              tag_bits;
              t_head = pad_cell (Atomic.make (pack ~tag_bits dummy 0));
              t_tail = pad_cell (Atomic.make (pack ~tag_bits dummy 0));
              t_nexts = atomics ~padded slots (pack ~tag_bits (-1) 0);
            };
        values = Array.make slots 0;
        free;
        bo;
        obs;
      }
  | Reclaimed scheme ->
      (* The reclaimer shares the queue's handle so its [Retire] events
         land in the same timeline as the dequeues that caused them. *)
      let free =
        Rt_free_list.create ~scheme ~slots:2 ~obs ~n ~capacity:slots ()
      in
      let dummy = Option.get (Rt_free_list.take free ~pid:0) in
      {
        impl =
          Via_reclaim
            {
              r_head = pad_cell (Atomic.make dummy);
              r_tail = pad_cell (Atomic.make dummy);
              r_nexts = atomics ~padded slots (-1);
            };
        values = Array.make slots 0;
        free;
        bo;
        obs;
      }

let reclaimer t =
  match t.impl with
  | Via_reclaim _ -> Some (t.free : Rt_reclaim.t)
  | Tagged _ -> None

let reclaim_stats t = Option.map Rt_reclaim.stats (reclaimer t)

(* ----- Tagged (counted-pointer) variant: Michael & Scott's original ----- *)

(* Returns the failed-link-CAS count, reported to [obs] by [enqueue];
   tail-helping rounds are not counted — they are progress, not failure. *)
let enqueue_tagged q bo i =
  let tag_bits = q.tag_bits in
  (* Reset the link, bumping its counter so CASes armed against the
     node's previous life fail. *)
  let _, old_tag = unpack ~tag_bits (Atomic.get q.t_nexts.(i)) in
  Atomic.set q.t_nexts.(i) (pack ~tag_bits (-1) (old_tag + 1));
  let rec attempt retries =
    let tail_seen = Atomic.get q.t_tail in
    let t_idx, t_tag = unpack ~tag_bits tail_seen in
    let next_seen = Atomic.get q.t_nexts.(t_idx) in
    let n_idx, n_tag = unpack ~tag_bits next_seen in
    if n_idx = -1 then
      if
        Atomic.compare_and_set q.t_nexts.(t_idx) next_seen
          (pack ~tag_bits i (n_tag + 1))
      then begin
        ignore
          (Atomic.compare_and_set q.t_tail tail_seen
             (pack ~tag_bits i (t_tag + 1)));
        retries
      end
      else begin
        Backoff.once bo;
        attempt (retries + 1)
      end
    else begin
      (* Help the lagging tail forward. *)
      ignore
        (Atomic.compare_and_set q.t_tail tail_seen
           (pack ~tag_bits n_idx (t_tag + 1)));
      attempt retries
    end
  in
  attempt 0

let dequeue_tagged t q ~pid t0 =
  let tag_bits = q.tag_bits in
  let bo = t.bo.(pid) in
  let rec attempt retries =
    let head_seen = Atomic.get q.t_head in
    let h_idx, h_tag = unpack ~tag_bits head_seen in
    let tail_seen = Atomic.get q.t_tail in
    let t_idx, t_tag = unpack ~tag_bits tail_seen in
    let n_idx, _ = unpack ~tag_bits (Atomic.get q.t_nexts.(h_idx)) in
    if h_idx = t_idx then
      if n_idx = -1 then begin
        Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries
          t0;
        None
      end
      else begin
        ignore
          (Atomic.compare_and_set q.t_tail tail_seen
             (pack ~tag_bits n_idx (t_tag + 1)));
        attempt retries
      end
    else if n_idx = -1 then
      (* Stale snapshot: the observed dummy was recycled (its link reset)
         between our reads.  Retry with a fresh head. *)
      attempt retries
    else begin
      (* Read the value before the CAS: afterwards the new dummy may be
         dequeued and recycled by others. *)
      let v = t.values.(n_idx) in
      if
        Atomic.compare_and_set q.t_head head_seen
          (pack ~tag_bits n_idx (h_tag + 1))
      then begin
        Rt_free_list.put t.free ~pid h_idx;
        Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
        Some v
      end
      else begin
        Backoff.once bo;
        attempt (retries + 1)
      end
    end
  in
  attempt 0

(* ----- Reclaimed variant: Michael's hazard-pointer protocol -----

   Plain index words everywhere; safety comes from the reclaimer alone:
   the observed dummy (slot 0) and its successor (slot 1) are protected
   and re-validated against the head before any dereference, so neither
   can be recycled mid-operation. *)

(* Returns the failed-link-CAS count, as in {!enqueue_tagged}. *)
let enqueue_reclaimed q rc bo ~pid i =
  Atomic.set q.r_nexts.(i) (-1);
  let rec attempt retries =
    let tl =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get q.r_tail)
    in
    let nxt = Atomic.get q.r_nexts.(tl) in
    if Atomic.get q.r_tail <> tl then attempt retries
    else if nxt <> -1 then begin
      (* Help the lagging tail forward. *)
      ignore (Atomic.compare_and_set q.r_tail tl nxt);
      attempt retries
    end
    else if Atomic.compare_and_set q.r_nexts.(tl) (-1) i then begin
      ignore (Atomic.compare_and_set q.r_tail tl i);
      retries
    end
    else begin
      Backoff.once bo;
      attempt (retries + 1)
    end
  in
  let retries = attempt 0 in
  Rt_reclaim.release rc ~pid;
  retries

let dequeue_reclaimed t q rc ~pid t0 =
  let bo = t.bo.(pid) in
  let rec attempt retries =
    let h =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get q.r_head)
    in
    let tl = Atomic.get q.r_tail in
    let nxt = Atomic.get q.r_nexts.(h) in
    if Atomic.get q.r_head <> h then attempt retries
    else if nxt = -1 then begin
      Rt_reclaim.release rc ~pid;
      Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries t0;
      None
    end
    else if h = tl then begin
      ignore (Atomic.compare_and_set q.r_tail tl nxt);
      attempt retries
    end
    else begin
      Rt_reclaim.protect rc ~pid ~slot:1 nxt;
      if Atomic.get q.r_head <> h then attempt retries
      else begin
        (* [nxt] is protected and still the successor of the live dummy,
           so its value slot cannot be recycled under us. *)
        let v = t.values.(nxt) in
        if Atomic.compare_and_set q.r_head h nxt then begin
          Rt_reclaim.release rc ~pid;
          Rt_reclaim.retire rc ~pid h;
          Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
          Some v
        end
        else begin
          Backoff.once bo;
          attempt (retries + 1)
        end
      end
    end
  in
  attempt 0

let enqueue t ~pid v =
  let t0 = Obs.start t.obs in
  match Rt_free_list.take t.free ~pid with
  | None ->
      Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Fail ~retries:0 t0;
      false
  | Some i ->
      t.values.(i) <- v;
      Backoff.reset t.bo.(pid);
      let retries =
        match t.impl with
        | Tagged q -> enqueue_tagged q t.bo.(pid) i
        | Via_reclaim q ->
            enqueue_reclaimed q (t.free : Rt_reclaim.t) t.bo.(pid) ~pid i
      in
      Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Ok ~retries t0;
      true

let dequeue t ~pid =
  let t0 = Obs.start t.obs in
  Backoff.reset t.bo.(pid);
  match t.impl with
  | Tagged q -> dequeue_tagged t q ~pid t0
  | Via_reclaim q -> dequeue_reclaimed t q (t.free : Rt_reclaim.t) ~pid t0
