open Aba_primitives

(* ----- Slot protocol ----- *)

(* A slot is one int atomic; the low two bits are the state tag, the rest
   the payload (arithmetic shift, so negative values round-trip):

     EMPTY ──push──> WAITING_PUSH(v) ──pop───> EXCHANGED(v) ──push──> EMPTY
     EMPTY ──pop───> WAITING_POP     ──push──> EXCHANGED(v) ──pop───> EMPTY

   The crucial shape: the counterparty's CAS moves a WAITING slot to
   EXCHANGED, and only the original waiter resets EXCHANGED to EMPTY.
   Because the slot stays locked on the waiter until the waiter itself
   releases it, the waiter can never confuse a stranger's identical word
   with its own live offer — the elimination layer's own ABA hazard (a
   withdrawn offer reposted by another process with the same value) is
   structurally impossible, with no tag counter needed.  An ABA-prevention
   library ought not to reintroduce the bug in its fast path. *)

module Slot = struct
  type state = Empty | Waiting_push of int | Waiting_pop | Exchanged of int

  let encode = function
    | Empty -> 0
    | Waiting_push v -> (v lsl 2) lor 1
    | Waiting_pop -> 2
    | Exchanged v -> (v lsl 2) lor 3

  let decode w =
    match w land 3 with
    | 1 -> Waiting_push (w asr 2)
    | 2 -> Waiting_pop
    | 3 -> Exchanged (w asr 2)
    | _ -> Empty
end

(* Tag tests on the raw word — the hot path never builds a [Slot.state]
   (that would allocate); [Slot] is the specification the tests exercise. *)
let empty_w = 0
let waiting_pop_w = 2
let is_waiting_push w = w land 3 = 1
let exchanged_of w = (w land lnot 3) lor 3
let payload w = w asr 2

(* ----- Adaptive range ----- *)

(* Collisions (a CAS lost, or a slot occupied by a same-side waiter) mean
   the array is crowded: double the range so offers spread out.  A timeout
   means nobody found us: halve the range so future offers concentrate
   where partners look first.  Successful exchanges keep the range — the
   current size is evidently matching traffic. *)
let adapt ~slots ~range = function
  | `Collision -> min slots (range * 2)
  | `Timeout -> max 1 (range / 2)
  | `Exchange -> range

type spec =
  | Noop
  | Exchanger of { slots : int; window : int; backoff : Backoff.spec }

let default_spec =
  Exchanger
    {
      slots = 8;
      window = 32;
      backoff = Backoff.Exp { min_spins = 1; max_spins = 64 };
    }

(* Per-process scratch, one padded record per pid: the slot-picking PRNG,
   the adaptive range, the wait-window pacing and the counters all mutate
   on every attempt and must not share lines across processes. *)
type local = {
  mutable seed : int;
  mutable range : int;
  bo : Backoff.t;
  mutable attempts : int;
  mutable exchanges : int;
  mutable collisions : int;
  mutable timeouts : int;
}

type t = {
  slots : int Atomic.t array;  (** each on its own cache line when padded *)
  nslots : int;  (** 0 for the inert [Noop] instance *)
  window : int;
  locals : local array;
  obs : Aba_obs.Obs.t;
}

let noop =
  { slots = [||]; nslots = 0; window = 0; locals = [||]; obs = Aba_obs.Obs.noop }

let create ?(padded = true) ?(obs = Aba_obs.Obs.noop) ~spec ~n () =
  match spec with
  | Noop -> noop
  | Exchanger { slots; window; backoff } ->
      if slots < 1 then
        invalid_arg "Elimination.create: slots must be positive";
      if window < 1 then
        invalid_arg "Elimination.create: window must be positive";
      if n < 1 then invalid_arg "Elimination.create: n must be positive";
      {
        slots =
          (if padded then Padded.atomic_array slots empty_w
           else Array.init slots (fun _ -> Atomic.make empty_w));
        nslots = slots;
        window;
        obs;
        locals =
          Array.init n (fun i ->
              Padded.copy
                {
                  seed = Rand.seed_of_pid i;
                  range = 1;
                  bo = Backoff.make backoff;
                  attempts = 0;
                  exchanges = 0;
                  collisions = 0;
                  timeouts = 0;
                })
      }

let enabled t = t.nslots > 0
let slot_count t = t.nslots
let range t ~pid = if t.nslots = 0 then 0 else t.locals.(pid).range
let peek t i = Slot.decode (Atomic.get t.slots.(i))

(* The slot pick is one {!Rand} draw; the seed lives inline in [local]
   (rather than as a boxed [Rand.t]) so the per-pid scratch stays one
   padded record. *)
let next_slot l =
  let s = Rand.xorshift_step l.seed in
  l.seed <- s;
  (s land max_int) mod l.range

let collision t l ~pid t0 =
  l.collisions <- l.collisions + 1;
  l.range <- adapt ~slots:t.nslots ~range:l.range `Collision;
  Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Exchange
    ~outcome:Aba_obs.Obs.Collision ~retries:0 t0

let timeout t l ~pid ~polls t0 =
  l.timeouts <- l.timeouts + 1;
  l.range <- adapt ~slots:t.nslots ~range:l.range `Timeout;
  Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Exchange
    ~outcome:Aba_obs.Obs.Timeout ~retries:polls t0

let exchange t l ~pid ~polls t0 =
  l.exchanges <- l.exchanges + 1;
  l.range <- adapt ~slots:t.nslots ~range:l.range `Exchange;
  Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Exchange
    ~outcome:Aba_obs.Obs.Eliminated ~retries:polls t0

(* The pusher parked [w = WAITING_PUSH(v)] in [s] and polls it for at most
   [window] backoff-paced rounds.  The only transition another process can
   apply to [w] is a popper's CAS to [EXCHANGED], so [get s <> w] means the
   value was taken. *)
let rec wait_push t l ~pid s w i t0 =
  if i >= t.window then
    if Atomic.compare_and_set s w empty_w then begin
      timeout t l ~pid ~polls:i t0;
      false
    end
    else begin
      (* The withdraw lost: a popper took the value between our last poll
         and the CAS.  The slot is EXCHANGED and locked on us; release. *)
      Atomic.set s empty_w;
      exchange t l ~pid ~polls:i t0;
      true
    end
  else if Atomic.get s <> w then begin
    Atomic.set s empty_w;
    exchange t l ~pid ~polls:i t0;
    true
  end
  else begin
    Backoff.once l.bo;
    wait_push t l ~pid s w (i + 1) t0
  end

let exchange_push t ~pid v =
  t.nslots > 0
  && begin
       let t0 = Aba_obs.Obs.start t.obs in
       let l = t.locals.(pid) in
       l.attempts <- l.attempts + 1;
       let s = t.slots.(next_slot l) in
       let c = Atomic.get s in
       if c = waiting_pop_w then
         (* A popper is parked here: hand the value over directly. *)
         if Atomic.compare_and_set s c ((v lsl 2) lor 3) then begin
           exchange t l ~pid ~polls:0 t0;
           true
         end
         else begin
           collision t l ~pid t0;
           false
         end
       else if c = empty_w then
         if Atomic.compare_and_set s c ((v lsl 2) lor 1) then begin
           Backoff.reset l.bo;
           wait_push t l ~pid s ((v lsl 2) lor 1) 0 t0
         end
         else begin
           collision t l ~pid t0;
           false
         end
       else begin
         collision t l ~pid t0;
         false
       end
     end

(* Symmetric wait for a parked popper; fulfillment moves WAITING_POP to
   EXCHANGED(v), and again only we reset the slot. *)
let rec wait_pop t l ~pid s i t0 =
  if i >= t.window then
    if Atomic.compare_and_set s waiting_pop_w empty_w then begin
      timeout t l ~pid ~polls:i t0;
      None
    end
    else begin
      let c = Atomic.get s in
      Atomic.set s empty_w;
      exchange t l ~pid ~polls:i t0;
      Some (payload c)
    end
  else begin
    let c = Atomic.get s in
    if c <> waiting_pop_w then begin
      Atomic.set s empty_w;
      exchange t l ~pid ~polls:i t0;
      Some (payload c)
    end
    else begin
      Backoff.once l.bo;
      wait_pop t l ~pid s (i + 1) t0
    end
  end

let exchange_pop t ~pid =
  if t.nslots = 0 then None
  else begin
    let t0 = Aba_obs.Obs.start t.obs in
    let l = t.locals.(pid) in
    l.attempts <- l.attempts + 1;
    let s = t.slots.(next_slot l) in
    let c = Atomic.get s in
    if is_waiting_push c then
      if Atomic.compare_and_set s c (exchanged_of c) then begin
        exchange t l ~pid ~polls:0 t0;
        Some (payload c)
      end
      else begin
        collision t l ~pid t0;
        None
      end
    else if c = empty_w then
      if Atomic.compare_and_set s c waiting_pop_w then begin
        Backoff.reset l.bo;
        wait_pop t l ~pid s 0 t0
      end
      else begin
        collision t l ~pid t0;
        None
      end
    else begin
      collision t l ~pid t0;
      None
    end
  end

(* Declared after the hot-path functions so the [local] labels above
   resolve unambiguously. *)
type stats = {
  attempts : int;
  exchanges : int;
  collisions : int;
  timeouts : int;
}

let stats t =
  Array.fold_left
    (fun acc (l : local) ->
      {
        attempts = acc.attempts + l.attempts;
        exchanges = acc.exchanges + l.exchanges;
        collisions = acc.collisions + l.collisions;
        timeouts = acc.timeouts + l.timeouts;
      })
    { attempts = 0; exchanges = 0; collisions = 0; timeouts = 0 }
    t.locals
