(** Multicore test/benchmark harness: spawn one domain per simulated
    process, synchronize their start so contention actually overlaps, and
    join their results. *)

(** A reusable generation-based (sense-reversing) barrier: waiters spin on
    a cache-line-padded generation word with bounded exponential backoff,
    so [parties] domains arriving together do not degenerate into a
    thundering herd on one line, and the same barrier can synchronize any
    number of successive rounds. *)
module Barrier : sig
  type t

  val create : parties:int -> t
  (** Raises [Invalid_argument] if [parties < 1]. *)

  val wait : t -> unit
  (** Record arrival and block (spinning with backoff) until all [parties]
      have arrived for the current round.  Reusable: the last arriver
      opens the next generation, so the same [parties] threads may [wait]
      again to synchronize round after round. *)
end

val run_domains : n:int -> (int -> 'a) -> 'a array
(** [run_domains ~n body] spawns [n] domains; domain [i] runs [body i]
    after all domains have reached a common start barrier.  Returns their
    results indexed by domain. *)

val available_parallelism : unit -> int

val check_multiset :
  pushed:int list ->
  popped:int list ->
  remaining:int list ->
  (unit, string) result
(** Audit an execution of any container with unique pushed values:
    [popped @ remaining] must be a sub-multiset of [pushed], otherwise
    some value was duplicated or invented — the signature of an ABA
    corruption. *)

type churn_report = {
  attempted : int;  (** push attempts = n * ops *)
  pushed : int;  (** pushes that found a free node *)
  popped : int;  (** pops by the racing domains *)
  remaining : int;  (** values drained after the run *)
  by_domain : (int * int) array;
      (** per-domain (successful pushes, successful pops), indexed by
          domain — the aggregate [pushed]/[popped] split out so a sharded
          workload can detect imbalance (one domain doing all the work
          sums to the same aggregate as an even spread) *)
  outcome : (unit, string) result;  (** the {!check_multiset} verdict *)
}

(** Operation mix of {!churn}.  [Push_heavy] (the default) pushes more
    than it pops, driving the structure to its capacity ceiling — the
    node-recycling regime where ABA bites.  [Paired] pops right after
    every push, keeping the structure near empty so concurrent pushers
    and poppers collide on the head — the regime where an elimination
    layer actually fires.  [Bounded] drives a capacity-limited container:
    on a failed (full) push the domain reacts with backpressure — it
    drains one element and retries the value once — and pops every fourth
    round, so the structure hovers at its ceiling with both full-side
    drops and empty-side misses exercised; values dropped after the retry
    are exactly the slack the multiset audit tolerates. *)
type mix = Push_heavy | Paired | Bounded

val churn :
  ?mix:mix ->
  ?obs:Aba_obs.Obs.t ->
  n:int ->
  ops:int ->
  push:(pid:int -> int -> bool) ->
  pop:(pid:int -> int option) ->
  ?finish:(pid:int -> unit) ->
  unit ->
  churn_report
(** Contended churn workload with forced node reuse: [n] domains push
    unique values and pop according to [mix], by default slightly less
    often than they push, so the structure runs at its capacity ceiling
    and every operation recycles nodes across domains.  [finish ~pid]
    runs in each domain after its loop and once more per pid after the
    final drain — reclaimer-backed structures pass their
    release-and-flush here so limbo empties before the caller reads
    {!Rt_reclaim.stats}.

    [obs] (default {!Aba_obs.Obs.noop}) records the harness's view of
    every racing [push]/[pop] callback as [Push]/[Pop] events —
    whole-callback latency, outcome [Ok]/[Fail]/[Empty], retries unknown
    at this level (0).  Structures instrumented with their own [?obs]
    record the same operations with retry counts; give [churn] a
    different handle to avoid double counting. *)
