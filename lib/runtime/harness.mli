(** Multicore test/benchmark harness: spawn one domain per simulated
    process, synchronize their start so contention actually overlaps, and
    join their results. *)

(** A reusable generation-based (sense-reversing) barrier: waiters spin on
    a cache-line-padded generation word with bounded exponential backoff,
    so [parties] domains arriving together do not degenerate into a
    thundering herd on one line, and the same barrier can synchronize any
    number of successive rounds. *)
module Barrier : sig
  type t

  val create : parties:int -> t
  (** Raises [Invalid_argument] if [parties < 1]. *)

  val wait : t -> unit
  (** Record arrival and block (spinning with backoff) until all [parties]
      have arrived for the current round.  Reusable: the last arriver
      opens the next generation, so the same [parties] threads may [wait]
      again to synchronize round after round. *)
end

val run_domains : n:int -> (int -> 'a) -> 'a array
(** [run_domains ~n body] spawns [n] domains; domain [i] runs [body i]
    after all domains have reached a common start barrier.  Returns their
    results indexed by domain. *)

val available_parallelism : unit -> int

val check_multiset :
  pushed:int list ->
  popped:int list ->
  remaining:int list ->
  (unit, string) result
(** Audit an execution of any container with unique pushed values:
    [popped @ remaining] must be a sub-multiset of [pushed], otherwise
    some value was duplicated or invented — the signature of an ABA
    corruption. *)

val check_multiset_exact :
  pushed:int list ->
  popped:int list ->
  remaining:int list ->
  (unit, string) result
(** As {!check_multiset}, but in both directions: [popped @ remaining]
    must {e equal} [pushed] as a multiset.  The exactly-once audit for
    crash-recovery runs — a duplicate marks a re-run of an operation
    that had already landed, a missing value a landed operation reported
    as lost.  Only sound for structures whose successful pushes never
    drop values (no capacity slack). *)

(** {1 Crash injection} *)

exception Injected_crash
(** Raised out of a structure operation by a burning {!Fuse} — the
    harness-side crash model: the operation dies at a randomized
    shared-memory access with its program state (the OCaml stack)
    discarded, while the structure's cells survive for recovery to read,
    mirroring {!Aba_sim.Sim.crash}. *)

(** A per-pid countdown wired into a structure's [on_step] hook (see
    {!Aba_core.Detectable.Make.Counter.create}): once armed with a
    step budget, the shared access that exhausts it raises
    {!Injected_crash}.  Each slot is only ever touched by its owning
    domain. *)
module Fuse : sig
  type t

  val create : n:int -> t
  (** One disarmed slot per pid.  Raises [Invalid_argument] if [n < 1]. *)

  val arm : t -> pid:int -> steps:int -> unit
  (** The [steps]-th subsequent hook call of [pid] raises.  Raises
      [Invalid_argument] if [steps < 1]. *)

  val disarm : t -> pid:int -> unit

  val on_step : t -> Aba_primitives.Pid.t -> unit
  (** The hook to pass as the structure's [?on_step].  Disarms itself
      before raising, so the recovery protocol's own shared accesses run
      crash-free. *)
end

(** What a {!crash_plan}'s recovery resolved: [completed] is true iff an
    interrupted operation was in flight and is now finished exactly
    once; [r_pushed]/[r_popped] are the values the resolution
    contributes to the audit's pushed/popped lists. *)
type recovery = {
  completed : bool;
  r_pushed : int list;
  r_popped : int list;
}

(** Crash-churn configuration for {!churn}: every [crash_every]-th round
    of each domain arms [fuse] with [fuse_steps] shared accesses (see
    {!default_fuse_steps}), catches the resulting {!Injected_crash}, and
    calls [recover] — the structure's detectable recovery — whose
    verdict replaces the interrupted round's bookkeeping. *)
type crash_plan = {
  fuse : Fuse.t;
  crash_every : int;
  fuse_steps : pid:int -> round:int -> int;
  recover : pid:int -> recovery;
}

val default_fuse_steps : pid:int -> round:int -> int
(** Deterministic spread over [1..13] varying with both pid and round,
    so crash points cover invocation, mid-protocol, and post-
    linearization accesses without a PRNG. *)

type churn_report = {
  attempted : int;  (** push attempts = n * ops *)
  pushed : int;  (** pushes that found a free node *)
  popped : int;  (** pops by the racing domains *)
  remaining : int;  (** values drained after the run *)
  crashed : int;  (** crashes injected (0 without a crash plan) *)
  recovered : int;
      (** recoveries that resolved an in-flight operation (the rest
          found nothing in flight or popped empty) *)
  by_domain : (int * int) array;
      (** per-domain (successful pushes, successful pops), indexed by
          domain — the aggregate [pushed]/[popped] split out so a sharded
          workload can detect imbalance (one domain doing all the work
          sums to the same aggregate as an even spread) *)
  outcome : (unit, string) result;  (** the {!check_multiset} verdict *)
}

(** Operation mix of {!churn}.  [Push_heavy] (the default) pushes more
    than it pops, driving the structure to its capacity ceiling — the
    node-recycling regime where ABA bites.  [Paired] pops right after
    every push, keeping the structure near empty so concurrent pushers
    and poppers collide on the head — the regime where an elimination
    layer actually fires.  [Bounded] drives a capacity-limited container:
    on a failed (full) push the domain reacts with backpressure — it
    drains one element and retries the value once — and pops every fourth
    round, so the structure hovers at its ceiling with both full-side
    drops and empty-side misses exercised; values dropped after the retry
    are exactly the slack the multiset audit tolerates. *)
type mix = Push_heavy | Paired | Bounded

val churn :
  ?mix:mix ->
  ?obs:Aba_obs.Obs.t ->
  ?crashes:crash_plan ->
  n:int ->
  ops:int ->
  push:(pid:int -> int -> bool) ->
  pop:(pid:int -> int option) ->
  ?finish:(pid:int -> unit) ->
  unit ->
  churn_report
(** Contended churn workload with forced node reuse: [n] domains push
    unique values and pop according to [mix], by default slightly less
    often than they push, so the structure runs at its capacity ceiling
    and every operation recycles nodes across domains.  [finish ~pid]
    runs in each domain after its loop and once more per pid after the
    final drain — reclaimer-backed structures pass their
    release-and-flush here so limbo empties before the caller reads
    {!Rt_reclaim.stats}.

    [obs] (default {!Aba_obs.Obs.noop}) records the harness's view of
    every racing [push]/[pop] callback as [Push]/[Pop] events —
    whole-callback latency, outcome [Ok]/[Fail]/[Empty], retries unknown
    at this level (0).  Structures instrumented with their own [?obs]
    record the same operations with retry counts; give [churn] a
    different handle to avoid double counting.

    [crashes] switches the run into crash-churn mode: every
    [crash_every]-th round per domain is killed mid-operation by the
    plan's fuse and resolved by its [recover]; each crash/recovery pair
    is recorded as [Crash]/[Recover] events on [obs] (the [Recover]
    outcome is [Ok] when an in-flight operation was resolved, [Empty]
    otherwise), and the final audit tightens from sub-multiset to the
    exactly-once {!check_multiset_exact}. *)
