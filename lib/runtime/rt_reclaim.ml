(** The canonical reclaimer instance: [Aba_reclaim] wired to the
    runtime ports of the paper's constructions.

    {!Aba_reclaim.Guarded.Make} is parametric in its base objects; here
    it gets {!Rt_llsc.Packed_fig3} (Figure 3: one bounded CAS word) for
    the shared free stack and {!Rt_aba.Fig4} (Figure 4: n+1 bounded
    registers) for the protection announcements, so the [Guarded]
    scheme of this module runs the actual theorem constructions on
    hardware atomics.  [Hazard] and [Epoch] are the plain-[Atomic]
    baselines they compete against. *)

(* The [Reclaim_intf] base-object signatures fix [create ~n ~init], so the
   contention options are baked in here: the reclaimer is a production
   surface, and its Figure-3 word (the shared free-stack head) and
   Figure-4 announcements are exactly the contended words the padding and
   backoff layer exists for. *)
module Fig3_contended = struct
  type t = Rt_llsc.Packed_fig3.t

  let create ~n ~init =
    Rt_llsc.Packed_fig3.create ~padded:true
      ~backoff:Aba_primitives.Backoff.default_spec ~n ~init ()

  let ll = Rt_llsc.Packed_fig3.ll
  let sc = Rt_llsc.Packed_fig3.sc
end

module Fig4_int = struct
  type t = Rt_aba.Fig4.t

  let create ~n ~init = Rt_aba.Fig4.create ~padded:true ~n init
  let dwrite = Rt_aba.Fig4.dwrite
  let dread = Rt_aba.Fig4.dread
end

include Aba_reclaim.Reclaim.Make (Fig3_contended) (Fig4_int)

type stats = Aba_reclaim.Reclaim.stats = {
  retired : int;
  reclaimed : int;
  in_limbo : int;
  peak_in_limbo : int;
}

type scheme = Aba_reclaim.Reclaim.scheme = Hazard | Epoch | Guarded

let scheme_name = Aba_reclaim.Reclaim.scheme_name
let all_schemes = Aba_reclaim.Reclaim.all_schemes
