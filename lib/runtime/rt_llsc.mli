(** Runtime (multicore) LL/SC/VL implementations over OCaml 5 [Atomic].

    Two constructions, mirroring the two sides of the paper's boundedness
    divide:

    - {!Boxed} — Moir-style [26]: the CAS object holds a freshly allocated
      (value, generation) record and [compare_and_set] compares physically.
      Because the expected record is held live by the process, the GC cannot
      recycle its address, so physical comparison cannot suffer an ABA: the
      allocator plays the role of the unbounded tag.  One atomic operation
      per LL/SC/VL.  Hand-written; kept as the native baseline.
    - {!Packed_fig3} — the genuinely {e bounded} construction: Figure 3
      with its single CAS object packed into one [int Atomic.t] (low [n]
      bits the process mask, remaining bits the value) and the [O(n)]
      retry loops of Theorem 2.  Since PR 2 this is {e not} a hand-written
      port: it instantiates {!Aba_core.Llsc_from_cas.Make} — the functor
      verified under the seq/sim backends — over {!Aba_primitives.Rt_mem},
      whose packed-CAS representation makes every CAS of the algorithm a
      hardware compare-and-set on an immediate int.

    Both are linearizable for up to [n] concurrent users with distinct
    process ids. *)

module Boxed : sig
  type t

  val create : n:int -> init:int -> t

  val ll : t -> pid:int -> int
  val sc : t -> pid:int -> int -> bool
  val vl : t -> pid:int -> bool
end

(** The unified Figure-3 instantiation itself, exposed so the rest of the
    runtime (Figure 5, the reclaimers) can build on the same module. *)
module Fig3 : Aba_core.Llsc_intf.S

module Packed_fig3 : sig
  type t

  val create :
    ?padded:bool -> ?backoff:Aba_primitives.Backoff.spec ->
    ?obs:Aba_obs.Obs.t -> n:int -> init:int -> unit -> t
  (** Requires [1 <= n <= 40] and [0 <= init < 2^(62-n)]; raises
      [Invalid_argument] otherwise.  [padded] (default [false]) puts the
      packed CAS word on its own cache line; [backoff] (default [Noop])
      adds exponential backoff to the O(n) retry loops; [obs] (default
      {!Aba_obs.Obs.noop}) records each [ll]/[sc] as an [Ll]/[Sc] event
      ([sc] outcome [Ok]/[Fail]). *)

  val ll : t -> pid:int -> int
  val sc : t -> pid:int -> int -> bool
  val vl : t -> pid:int -> bool
end
