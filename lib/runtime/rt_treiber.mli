(** Runtime (multicore) index-based Treiber stack with node recycling.

    Same hazard as {!Aba_apps.Treiber_stack}, on real hardware words: the
    head is a single [int Atomic.t] and the nodes live in flat arrays,
    recycled through the reclamation subsystem ({!Rt_reclaim}).

    - [Tag_bits 0] — the unprotected stack: pure index CAS, ABA-prone;
    - [Tag_bits k] — folklore tagging: safe until [2^k] operations race
      past a stalled pop;
    - {!Llsc} — head driven through {!Rt_llsc.Packed_fig3}: the paper's
      LL/SC methodology, bounded and ABA-immune;
    - [Reclaimed scheme] — an untagged head made safe by deferred
      reclamation: pops announce the observed head through the given
      reclaimer ({!Rt_reclaim.Hazard}, {!Rt_reclaim.Epoch} or the
      paper-built {!Rt_reclaim.Guarded}) and retire nodes instead of
      recycling them immediately, so a node can re-enter the stack only
      after every stale reference to it is gone;
    - [Announced k] — folklore tagging made wraparound-safe (the runtime
      twin of {!Aba_core.Announced_tags}): pops announce the [k]-bit tag
      they rely on in a per-process padded slot and revalidate, and
      installs that cross a half of the tag space scan the slots and skip
      announced tags.  Uncontended push/pop cost 0 extra words and no
      per-op retire or scan — scans happen only every [2^(k-1)] installs
      (recorded as [Obs.Scan] events) — yet a stalled pop's witness stays
      safe across arbitrarily many intervening operations, which [Tag_bits
      k] cannot guarantee.  For progress under adversarial stalls keep
      [2^(k-1)] above [n].

    The tagged, LL/SC and announced variants recycle through the free
    list immediately (their head word is the protection); the [Reclaimed]
    variants are where retirement and grace periods actually run.

    With [elimination] a push and a pop that collide on the head can also
    cancel {e off} it: after a failed head CAS each side visits an
    {!Elimination} exchanger, and a matched pair hands the value over in a
    side slot without ever touching the protected word — the pair
    linearizes as push immediately followed by pop, a stack no-op.  The
    head word (any of the three protections) remains the correctness
    backbone; elimination only removes coherence traffic from it.

    Use [check_multiset] to audit an execution: with unique pushed values,
    any duplicate pop or pop of a never-pushed value is an ABA corruption. *)

type t

type protection =
  | Tag_bits of int
  | Llsc
  | Reclaimed of Rt_reclaim.scheme
  | Announced of int

val create :
  ?padded:bool -> ?backoff:bool -> ?elimination:Elimination.spec ->
  ?obs:Aba_obs.Obs.t ->
  protection:protection -> capacity:int -> n:int -> unit -> t
(** [padded] (default [true]) puts the head word on its own cache line;
    [backoff] (default [true]) adds bounded exponential backoff to the
    push/pop retry loops.  Both default on — this is the production
    surface; the benchmark sweep turns them off to measure their cost.
    [elimination] (default {!Elimination.Noop}: opt-in) adds the push/pop
    exchanger, consulted only after a failed head CAS, so the uncontended
    paths are unchanged.  [obs] (default {!Aba_obs.Obs.noop}) records each
    operation as a [Push]/[Pop] event with its failed-head-CAS count as
    [retries] ([Ok]/[Empty]/[Eliminated]/[Fail] = pool exhausted); the
    handle is shared with the elimination layer and, under [Reclaimed],
    the reclaimer, so their [Exchange]/[Retire] events land in the same
    timeline. *)

val push : t -> pid:int -> int -> bool
(** [false] when the pool is exhausted. *)

val pop : t -> pid:int -> int option

val pop_or : t -> pid:int -> default:int -> int
(** [pop_or t ~pid ~default] is [pop] returning [default] when the stack
    is empty.  Under [Announced] this path is allocation-free — no option
    box — which is what the [announced-hotpath] bench group measures; the
    other protections route through {!pop}. *)

val reclaimer : t -> Rt_reclaim.t option
(** The backing reclaimer of a [Reclaimed] stack ([None] otherwise). *)

val reclaim_stats : t -> Rt_reclaim.stats option
(** Retired/reclaimed/peak-limbo counters of a [Reclaimed] stack. *)

val elimination_stats : t -> Elimination.stats option
(** Exchange/collision/timeout counters of the elimination layer ([None]
    when the stack was created without one). *)

val check_multiset :
  pushed:int list -> popped:int list -> remaining:int list ->
  (unit, string) result
(** Alias of {!Harness.check_multiset}. *)
