module Boxed = struct
  (* Each successful SC installs a freshly allocated record; LL remembers
     the record itself.  compare_and_set's physical equality then means
     "no successful SC since my LL" — the held pointer keeps the record
     alive, so the GC cannot make two distinct generations physically
     equal.  Kept as the hand-written native baseline the unified stack is
     benchmarked against. *)
  type cell = { value : int }

  type t = {
    x : cell Atomic.t;
    invalid : cell;  (** sentinel never stored in [x] *)
    link : cell array;
  }

  let create ~n ~init =
    let first = { value = init } in
    (* Every process starts linked to the first cell, which realizes the
       Appendix A convention: SC/VL by a process that never performed LL
       behave as if it had linked at the initial state. *)
    { x = Atomic.make first; invalid = { value = min_int }; link = Array.make n first }

  let ll t ~pid =
    let c = Atomic.get t.x in
    t.link.(pid) <- c;
    c.value

  let sc t ~pid v =
    let c = t.link.(pid) in
    (* Consume the link: a process's own successful SC must invalidate it,
       and [invalid] is never in [x], so a repeated SC fails. *)
    t.link.(pid) <- t.invalid;
    c != t.invalid && Atomic.compare_and_set t.x c { value = v }

  let vl t ~pid = Atomic.get t.x == t.link.(pid)
end

(* The Figure-3 functor instantiated over the multicore memory: the exact
   code that is model-checked under Seq_mem/Sim_mem, running on OCaml 5
   Atomic.  The (value, mask) pair travels through Llsc_from_cas.codec as
   one immediate int, so every CAS of the algorithm is a hardware
   compare-and-set on an int word — exact value comparison, ABAs included,
   no allocation.  All Fig3 objects share one memory instance; it only
   collects space-accounting entries (the per-instance accounting used by
   the experiments goes through Instances.llsc_rt instead). *)
module Fig3 =
  Aba_core.Llsc_from_cas.Make
    (Aba_primitives.Rt_mem.Make (struct
      let n = 64 (* Fig3 uses no LL/SC base object, so this is inert. *)
    end))

module Packed_fig3 = struct
  module Obs = Aba_obs.Obs

  type t = { base : Fig3.t; obs : Obs.t }

  (* [n <= 40] keeps at least 22 value bits, the historical contract of
     this port; the value domain is everything the packing can hold. *)
  let create ?(padded = false) ?(backoff = Aba_primitives.Backoff.Noop)
      ?(obs = Obs.noop) ~n ~init () =
    if n < 1 || n > 40 then
      invalid_arg "Rt_llsc.Packed_fig3.create: n must be 1..40";
    {
      base =
        Fig3.create
          ~value_bound:
            (Aba_primitives.Bounded.int_range ~lo:0 ~hi:((1 lsl (62 - n)) - 1))
          ~init ~padded ~backoff ~n ();
      obs;
    }

  let ll t ~pid =
    let t0 = Obs.start t.obs in
    let v = Fig3.ll t.base ~pid in
    Obs.record t.obs ~pid ~kind:Obs.Ll ~outcome:Obs.Ok ~retries:0 t0;
    v

  let sc t ~pid v =
    let t0 = Obs.start t.obs in
    let ok = Fig3.sc t.base ~pid v in
    Obs.record t.obs ~pid ~kind:Obs.Sc
      ~outcome:(if ok then Obs.Ok else Obs.Fail)
      ~retries:0 t0;
    ok

  let vl t ~pid = Fig3.vl t.base ~pid
end
