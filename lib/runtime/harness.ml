open Aba_primitives

module Barrier = struct
  (* Generation-based (sense-reversing): waiters spin on the generation
     word, not the arrival counter, and the last arriver of each round
     resets the counter before bumping the generation.  The old
     counter-only barrier silently misbehaved on a second [wait] — the
     count never reset, so round 2 sailed through without waiting. *)
  type t = {
    arrived : int Atomic.t;
    generation : int Atomic.t;
    parties : int;
  }

  let create ~parties =
    if parties < 1 then invalid_arg "Harness.Barrier.create: parties < 1";
    (* Both words own their cache lines: every participant RMWs
       [arrived] on arrival, and an unpadded cell would share a line with
       whatever the caller allocated next — typically the very state the
       domains are about to contend on. *)
    { arrived = Padded.atomic 0; generation = Padded.atomic 0; parties }

  let wait t =
    let gen = Atomic.get t.generation in
    if 1 + Atomic.fetch_and_add t.arrived 1 = t.parties then begin
      (* Reset strictly before the generation bump: a party re-enters
         [wait] only after observing the bump, so it cannot race the
         reset. *)
      Atomic.set t.arrived 0;
      Atomic.incr t.generation
    end
    else begin
      (* Spin with exponential backoff rather than bare [cpu_relax]: with
         [parties] > cores the arriving domains would otherwise hammer
         the line in lockstep and starve the domains still being spawned
         (thundering herd), which on small machines delays the very
         arrival everyone is waiting for. *)
      let bo = Backoff.create ~min:1 ~max:64 () in
      while Atomic.get t.generation = gen do
        Backoff.once bo
      done
    end
end

let run_domains ~n body =
  let barrier = Barrier.create ~parties:n in
  let spawn i =
    Domain.spawn (fun () ->
        (* Start barrier: wait until everyone is up, so the workload
           actually overlaps even on few cores. *)
        Barrier.wait barrier;
        body i)
  in
  let domains = List.init n spawn in
  Array.of_list (List.map Domain.join domains)

let available_parallelism () = Domain.recommended_domain_count ()

let check_multiset ~pushed ~popped ~remaining =
  let module Counts = Map.Make (Int) in
  let count l =
    List.fold_left
      (fun m v ->
        Counts.update v (fun c -> Some (1 + Option.value ~default:0 c)) m)
      Counts.empty l
  in
  let available = count pushed in
  let consumed = count (popped @ remaining) in
  let bad =
    Counts.fold
      (fun v c acc ->
        let have = Option.value ~default:0 (Counts.find_opt v available) in
        if c > have then
          Printf.sprintf "value %d consumed %d times but pushed %d times" v c
            have
          :: acc
        else acc)
      consumed []
  in
  match bad with
  | [] -> Result.Ok ()
  | msgs -> Result.Error (String.concat "; " msgs)

type churn_report = {
  attempted : int;
  pushed : int;
  popped : int;
  remaining : int;
  by_domain : (int * int) array;
  outcome : (unit, string) result;
}

type mix = Push_heavy | Paired | Bounded

let churn ?(mix = Push_heavy) ?(obs = Aba_obs.Obs.noop) ~n ~ops ~push ~pop
    ?(finish = fun ~pid:_ -> ()) () =
  let results =
    run_domains ~n (fun d ->
        let pushed = ref [] and popped = ref [] in
        let record_pop () =
          let t0 = Aba_obs.Obs.start obs in
          match pop ~pid:d with
          | Some v ->
              Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Pop
                ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
              popped := v :: !popped
          | None ->
              Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Pop
                ~outcome:Aba_obs.Obs.Empty ~retries:0 t0
        in
        let attempt_push v =
          let t0 = Aba_obs.Obs.start obs in
          if push ~pid:d v then begin
            Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Push
              ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
            pushed := v :: !pushed;
            true
          end
          else begin
            Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Push
              ~outcome:Aba_obs.Obs.Fail ~retries:0 t0;
            false
          end
        in
        for i = 1 to ops do
          (* Unique values per domain, so any re-delivered or invented
             value is caught by the audit. *)
          let v = (d * ops) + i in
          let ok = attempt_push v in
          match mix with
          | Push_heavy ->
              (* Pop slightly less than we push: the structure fills to its
                 capacity, pushes start failing, and every subsequent
                 operation recycles a node through the reclaimer — the
                 regime where ABA actually bites. *)
              if i land 1 = 0 then record_pop ();
              if i mod 5 = 0 then record_pop ()
          | Paired ->
              (* Pop right after every push: the structure hovers near
                 empty, so concurrent pushers and poppers constantly meet
                 on the head — the regime where elimination actually
                 fires. *)
              record_pop ()
          | Bounded ->
              (* Capacity-limited flow: a failed push means the bound was
                 hit — react with backpressure (drain one element, retry
                 the value once), and pop every fourth round so the queue
                 hovers at its ceiling with both full-side drops and
                 empty-side misses exercised.  The audit counts a value as
                 pushed only if some attempt succeeded, so dropped values
                 are exactly the audit's slack. *)
              if not ok then begin
                record_pop ();
                ignore (attempt_push v : bool)
              end;
              if i land 3 = 0 then record_pop ()
        done;
        finish ~pid:d;
        (!pushed, !popped))
  in
  let pushed = List.concat_map fst (Array.to_list results) in
  let popped = List.concat_map snd (Array.to_list results) in
  let remaining = ref [] in
  let draining = ref true in
  while !draining do
    match pop ~pid:0 with
    | Some v -> remaining := v :: !remaining
    | None -> draining := false
  done;
  (* All domains are joined: flushing every pid from here is safe and
     lets reclaimers drain their limbo lists completely. *)
  for p = 0 to n - 1 do
    finish ~pid:p
  done;
  {
    attempted = n * ops;
    pushed = List.length pushed;
    popped = List.length popped;
    remaining = List.length !remaining;
    by_domain =
      Array.map (fun (p, q) -> (List.length p, List.length q)) results;
    outcome = check_multiset ~pushed ~popped ~remaining:!remaining;
  }
