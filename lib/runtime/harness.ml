open Aba_primitives

module Barrier = struct
  (* Generation-based (sense-reversing): waiters spin on the generation
     word, not the arrival counter, and the last arriver of each round
     resets the counter before bumping the generation.  The old
     counter-only barrier silently misbehaved on a second [wait] — the
     count never reset, so round 2 sailed through without waiting. *)
  type t = {
    arrived : int Atomic.t;
    generation : int Atomic.t;
    parties : int;
  }

  let create ~parties =
    if parties < 1 then invalid_arg "Harness.Barrier.create: parties < 1";
    (* Both words own their cache lines: every participant RMWs
       [arrived] on arrival, and an unpadded cell would share a line with
       whatever the caller allocated next — typically the very state the
       domains are about to contend on. *)
    { arrived = Padded.atomic 0; generation = Padded.atomic 0; parties }

  let wait t =
    let gen = Atomic.get t.generation in
    if 1 + Atomic.fetch_and_add t.arrived 1 = t.parties then begin
      (* Reset strictly before the generation bump: a party re-enters
         [wait] only after observing the bump, so it cannot race the
         reset. *)
      Atomic.set t.arrived 0;
      Atomic.incr t.generation
    end
    else begin
      (* Spin with exponential backoff rather than bare [cpu_relax]: with
         [parties] > cores the arriving domains would otherwise hammer
         the line in lockstep and starve the domains still being spawned
         (thundering herd), which on small machines delays the very
         arrival everyone is waiting for. *)
      let bo = Backoff.create ~min:1 ~max:64 () in
      while Atomic.get t.generation = gen do
        Backoff.once bo
      done
    end
end

let run_domains ~n body =
  let barrier = Barrier.create ~parties:n in
  let spawn i =
    Domain.spawn (fun () ->
        (* Start barrier: wait until everyone is up, so the workload
           actually overlaps even on few cores. *)
        Barrier.wait barrier;
        body i)
  in
  let domains = List.init n spawn in
  Array.of_list (List.map Domain.join domains)

let available_parallelism () = Domain.recommended_domain_count ()

module Counts = Map.Make (Int)

let count_multiset l =
  List.fold_left
    (fun m v ->
      Counts.update v (fun c -> Some (1 + Option.value ~default:0 c)) m)
    Counts.empty l

let multiset_excess ~over ~under =
  (* Elements of [over] appearing more often than in [under]. *)
  Counts.fold
    (fun v c acc ->
      let have = Option.value ~default:0 (Counts.find_opt v under) in
      if c > have then (v, c, have) :: acc else acc)
    over []

let check_multiset ~pushed ~popped ~remaining =
  let available = count_multiset pushed in
  let consumed = count_multiset (popped @ remaining) in
  let bad =
    List.map
      (fun (v, c, have) ->
        Printf.sprintf "value %d consumed %d times but pushed %d times" v c
          have)
      (multiset_excess ~over:consumed ~under:available)
  in
  match bad with
  | [] -> Result.Ok ()
  | msgs -> Result.Error (String.concat "; " msgs)

let check_multiset_exact ~pushed ~popped ~remaining =
  let available = count_multiset pushed in
  let consumed = count_multiset (popped @ remaining) in
  let dup =
    List.map
      (fun (v, c, have) ->
        Printf.sprintf "value %d consumed %d times but pushed %d times" v c
          have)
      (multiset_excess ~over:consumed ~under:available)
  in
  let lost =
    List.map
      (fun (v, c, have) ->
        Printf.sprintf "value %d pushed %d times but consumed %d times" v c
          have)
      (multiset_excess ~over:available ~under:consumed)
  in
  match dup @ lost with
  | [] -> Result.Ok ()
  | msgs -> Result.Error (String.concat "; " msgs)

(* {2 Crash injection}

   A fuse is a per-pid countdown over the structure's [on_step] hook:
   [arm] loads it with a number of shared-memory accesses to survive,
   and the access that burns it down raises {!Injected_crash} out of the
   structure's own operation — mid-protocol, at a point chosen in
   shared-access granularity, which is exactly the crash model of the
   simulator's crash moves.  Each slot is touched only by its owning
   domain, so plain ints suffice. *)

exception Injected_crash

module Fuse = struct
  type t = int array

  let disarmed = max_int

  let create ~n =
    if n < 1 then invalid_arg "Harness.Fuse.create: n < 1";
    Array.make n disarmed

  let arm t ~pid ~steps =
    if steps < 1 then invalid_arg "Harness.Fuse.arm: steps < 1";
    t.(pid) <- steps

  let disarm t ~pid = t.(pid) <- disarmed

  let on_step t pid =
    let c = t.(pid) in
    if c <> disarmed then
      if c <= 1 then begin
        (* Disarm before raising so the recovery protocol's own shared
           accesses run the hook without re-crashing. *)
        t.(pid) <- disarmed;
        raise Injected_crash
      end
      else t.(pid) <- c - 1
end

type recovery = {
  completed : bool;
  r_pushed : int list;
  r_popped : int list;
}

type crash_plan = {
  fuse : Fuse.t;
  crash_every : int;
  fuse_steps : pid:int -> round:int -> int;
  recover : pid:int -> recovery;
}

let default_fuse_steps ~pid ~round = 1 + (((round * 7) + (pid * 3)) mod 13)

type churn_report = {
  attempted : int;
  pushed : int;
  popped : int;
  remaining : int;
  crashed : int;
  recovered : int;
  by_domain : (int * int) array;
  outcome : (unit, string) result;
}

type mix = Push_heavy | Paired | Bounded

let churn ?(mix = Push_heavy) ?(obs = Aba_obs.Obs.noop) ?crashes ~n ~ops
    ~push ~pop ?(finish = fun ~pid:_ -> ()) () =
  let results =
    run_domains ~n (fun d ->
        let pushed = ref [] and popped = ref [] in
        let crashed = ref 0 and recovered = ref 0 in
        let record_pop () =
          let t0 = Aba_obs.Obs.start obs in
          match pop ~pid:d with
          | Some v ->
              Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Pop
                ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
              popped := v :: !popped
          | None ->
              Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Pop
                ~outcome:Aba_obs.Obs.Empty ~retries:0 t0
        in
        let attempt_push v =
          let t0 = Aba_obs.Obs.start obs in
          if push ~pid:d v then begin
            Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Push
              ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
            pushed := v :: !pushed;
            true
          end
          else begin
            Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Push
              ~outcome:Aba_obs.Obs.Fail ~retries:0 t0;
            false
          end
        in
        let round i v =
          let ok = attempt_push v in
          match mix with
          | Push_heavy ->
              (* Pop slightly less than we push: the structure fills to its
                 capacity, pushes start failing, and every subsequent
                 operation recycles a node through the reclaimer — the
                 regime where ABA actually bites. *)
              if i land 1 = 0 then record_pop ();
              if i mod 5 = 0 then record_pop ()
          | Paired ->
              (* Pop right after every push: the structure hovers near
                 empty, so concurrent pushers and poppers constantly meet
                 on the head — the regime where elimination actually
                 fires. *)
              record_pop ()
          | Bounded ->
              (* Capacity-limited flow: a failed push means the bound was
                 hit — react with backpressure (drain one element, retry
                 the value once), and pop every fourth round so the queue
                 hovers at its ceiling with both full-side drops and
                 empty-side misses exercised.  The audit counts a value as
                 pushed only if some attempt succeeded, so dropped values
                 are exactly the audit's slack. *)
              if not ok then begin
                record_pop ();
                ignore (attempt_push v : bool)
              end;
              if i land 3 = 0 then record_pop ()
        in
        for i = 1 to ops do
          (* Unique values per domain, so any re-delivered or invented
             value is caught by the audit. *)
          let v = (d * ops) + i in
          match crashes with
          | Some c when i mod c.crash_every = 0 ->
              (* Arm the fuse and let whichever operation of this round
                 burns it down die mid-protocol; the plan's recovery then
                 resolves the interrupted operation exactly once, and its
                 verdict — not the harness's interrupted bookkeeping — is
                 what enters the audit lists. *)
              Fuse.arm c.fuse ~pid:d ~steps:(c.fuse_steps ~pid:d ~round:i);
              (try
                 round i v;
                 Fuse.disarm c.fuse ~pid:d
               with Injected_crash ->
                 incr crashed;
                 let t0 = Aba_obs.Obs.start obs in
                 Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Crash
                   ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
                 let t1 = Aba_obs.Obs.start obs in
                 let r = c.recover ~pid:d in
                 Aba_obs.Obs.record obs ~pid:d ~kind:Aba_obs.Obs.Recover
                   ~outcome:
                     (if r.completed then Aba_obs.Obs.Ok
                      else Aba_obs.Obs.Empty)
                   ~retries:0 t1;
                 if r.completed then incr recovered;
                 pushed := r.r_pushed @ !pushed;
                 popped := r.r_popped @ !popped)
          | _ -> round i v
        done;
        finish ~pid:d;
        (!pushed, !popped, !crashed, !recovered))
  in
  let results =
    Array.map (fun (p, q, c, r) -> ((p, q), (c, r))) results
  in
  let pushed = List.concat_map (fun ((p, _), _) -> p) (Array.to_list results) in
  let popped = List.concat_map (fun ((_, q), _) -> q) (Array.to_list results) in
  let remaining = ref [] in
  let draining = ref true in
  while !draining do
    match pop ~pid:0 with
    | Some v -> remaining := v :: !remaining
    | None -> draining := false
  done;
  (* All domains are joined: flushing every pid from here is safe and
     lets reclaimers drain their limbo lists completely. *)
  for p = 0 to n - 1 do
    finish ~pid:p
  done;
  {
    attempted = n * ops;
    pushed = List.length pushed;
    popped = List.length popped;
    remaining = List.length !remaining;
    crashed =
      Array.fold_left (fun acc (_, (c, _)) -> acc + c) 0 results;
    recovered =
      Array.fold_left (fun acc (_, (_, r)) -> acc + r) 0 results;
    by_domain =
      Array.map (fun ((p, q), _) -> (List.length p, List.length q)) results;
    outcome =
      (* With crash injection the audit tightens to exact equality:
         recovery claims an exact resolution for every interrupted
         operation, so a value may neither appear twice (duplicated
         re-run) nor vanish (landed push reported as not landed).  The
         exact check presumes the structure never drops a successful
         push, which holds for the detectable structures this mode is
         for. *)
      (match crashes with
      | Some _ -> check_multiset_exact ~pushed ~popped ~remaining:!remaining
      | None -> check_multiset ~pushed ~popped ~remaining:!remaining);
  }
