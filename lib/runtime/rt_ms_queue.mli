(** Runtime (multicore) index-based Michael–Scott queue with node reuse.

    The runtime counterpart of {!Aba_apps.Ms_queue}, with two protection
    regimes:

    - [Tag_bits k] — Michael and Scott's counted pointers: head, tail
      and every [next] link pack (node index, [k]-bit counter); [k = 0]
      is the unprotected queue, and any positive [k] wraps after [2^k]
      fast updates race past a stalled dequeuer.  Nodes recycle through
      the free list immediately.
    - [Reclaimed scheme] — plain index words made safe by Michael's
      hazard protocol over the reclamation subsystem: dequeuers protect
      the observed dummy and its successor through the given
      {!Rt_reclaim.scheme}, and retired dummies wait out a grace period
      before reuse.
    - [Announced k] — counted pointers made wraparound-safe on the head
      and tail words (the queue twin of {!Rt_treiber}'s [Announced] and
      of {!Aba_core.Announced_tags}): operations announce the [k]-bit tag
      they rely on in per-pid padded slots and revalidate, and installs
      that cross a half of the tag space scan the slots and skip announced
      tags ([Obs.Scan] events, one per [2^(k-1)] installs — no per-op
      retire or scan).  Nodes recycle immediately.  The per-node link
      words keep plain counted tags: wrapping one requires [2^k]
      operations through a {e single} node inside one stalled operation's
      window, a far stronger adversary than the [2^k] total queue
      operations that break [Tag_bits].  For progress under stalls keep
      [2^(k-1)] above [n].

    Audit executions with {!Harness.check_multiset}. *)

type t

type protection =
  | Tag_bits of int
  | Reclaimed of Rt_reclaim.scheme
  | Announced of int

val create :
  ?padded:bool -> ?backoff:bool -> ?obs:Aba_obs.Obs.t ->
  protection:protection -> capacity:int -> n:int -> unit -> t
(** [capacity] payload nodes plus one internal dummy; [n] domains.
    [padded] (default [true]) puts head, tail and each link word on their
    own cache lines; [backoff] (default [true]) adds bounded exponential
    backoff to the enqueue/dequeue retry loops.  [obs] (default
    {!Aba_obs.Obs.noop}) records each operation as an [Enqueue]/[Dequeue]
    event with its failed-CAS count as [retries] ([Ok]/[Empty]/[Fail] =
    pool exhausted); under [Reclaimed] the handle is shared with the
    reclaimer, whose [Retire] events land in the same timeline. *)

val enqueue : t -> pid:int -> int -> bool
(** [false] when the pool is exhausted. *)

val dequeue : t -> pid:int -> int option

val dequeue_or : t -> pid:int -> default:int -> int
(** [dequeue] without the option cell: [default] when empty.  Under
    [Announced] the whole uncontended round trip is allocation-free; the
    other variants fall back to boxing internally. *)

val reclaimer : t -> Rt_reclaim.t option
val reclaim_stats : t -> Rt_reclaim.stats option
