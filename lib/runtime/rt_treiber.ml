open Aba_primitives

type protection = Tag_bits of int | Llsc | Reclaimed of Rt_reclaim.scheme

type head_impl =
  | Packed of { cell : int Atomic.t; tag_bits : int }
  | Via_llsc of Rt_llsc.Packed_fig3.t
  | Via_reclaim of int Atomic.t  (** plain node index, -1 = empty *)

type t = {
  head : head_impl;
  values : int array;
  nexts : int array;
  free : Rt_free_list.t;
  bo : Backoff.t array;  (** per-pid retry backoff, {!Backoff.noop} when
                             backoff is disabled *)
}

(* Packed head layout: low [tag_bits] bits are the tag, the rest the node
   index shifted by one so that index [-1] (empty) maps to [0]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

(* Contention management defaults ON here: this is the production surface,
   and unlike the primitive layer there is no checking backend running the
   same code that a layout or timing change could perturb. *)
let create ?(padded = true) ?(backoff = true) ~protection ~capacity ~n () =
  let pad_cell c = if padded then Padded.copy c else c in
  let spec =
    if backoff then Backoff.default_spec else Backoff.Noop
  in
  let head, free =
    match protection with
    | Tag_bits k ->
        if k < 0 || k > 40 then invalid_arg "Rt_treiber.create: bad tag_bits";
        ( Packed
            { cell = pad_cell (Atomic.make (pack ~tag_bits:k (-1) 0));
              tag_bits = k },
          Rt_free_list.create ~n ~capacity () )
    | Llsc ->
        (* The LL/SC object stores index + 1 so the empty stack is 0. *)
        ( Via_llsc
            (Rt_llsc.Packed_fig3.create ~padded ~backoff:spec ~n ~init:0 ()),
          Rt_free_list.create ~n ~capacity () )
    | Reclaimed scheme ->
        ( Via_reclaim (pad_cell (Atomic.make (-1))),
          Rt_free_list.create ~scheme ~slots:1 ~n ~capacity () )
  in
  {
    head;
    values = Array.make capacity 0;
    nexts = Array.make capacity (-1);
    free;
    bo = Array.init n (fun _ -> Padded.copy (Backoff.make spec));
  }

let reclaimer t =
  match t.head with
  | Via_reclaim _ -> Some (t.free : Rt_reclaim.t)
  | Packed _ | Via_llsc _ -> None

let reclaim_stats t = Option.map Rt_reclaim.stats (reclaimer t)

let read_head t ~pid =
  match t.head with
  | Packed { cell; tag_bits } ->
      let packed = Atomic.get cell in
      let index, _ = unpack ~tag_bits packed in
      (index, packed)
  | Via_llsc obj -> (Rt_llsc.Packed_fig3.ll obj ~pid - 1, 0)
  | Via_reclaim cell -> (Atomic.get cell, 0)

let cas_head t ~pid ~witness ~update =
  match t.head with
  | Packed { cell; tag_bits } ->
      let _, tag = unpack ~tag_bits witness in
      Atomic.compare_and_set cell witness (pack ~tag_bits update (tag + 1))
  | Via_llsc obj -> Rt_llsc.Packed_fig3.sc obj ~pid (update + 1)
  | Via_reclaim _ -> assert false (* reclaimed pops go through pop_reclaimed *)

(* Pooled variants recycle immediately: their own head word (tag or
   LL/SC) is the ABA protection, exactly as before the reclaim layer. *)
let push t ~pid v =
  match Rt_free_list.take t.free ~pid with
  | None -> false
  | Some i ->
      t.values.(i) <- v;
      Backoff.reset t.bo.(pid);
      (match t.head with
      | Packed _ | Via_llsc _ ->
          let rec attempt () =
            let h, witness = read_head t ~pid in
            t.nexts.(i) <- h;
            if cas_head t ~pid ~witness ~update:i then true
            else begin
              Backoff.once t.bo.(pid);
              attempt ()
            end
          in
          ignore (attempt ())
      | Via_reclaim cell ->
          (* A push CAS cannot ABA: success only requires the head to
             equal the observed value at linearization. *)
          let pushed = ref false in
          while not !pushed do
            let h = Atomic.get cell in
            t.nexts.(i) <- h;
            pushed := Atomic.compare_and_set cell h i;
            if not !pushed then Backoff.once t.bo.(pid)
          done);
      true

(* The reclaimed pop is the hazard-pointer protocol: announce the head
   node, re-validate, and only then read its successor — the reclaimer
   guarantees a protected node is never handed back to [alloc], so the
   CAS can never see a recycled index. *)
let pop_reclaimed t rc cell ~pid =
  let rec attempt () =
    let h =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get cell)
    in
    if h = -1 then begin
      Rt_reclaim.release rc ~pid;
      None
    end
    else begin
      let nxt = t.nexts.(h) in
      if Atomic.compare_and_set cell h nxt then begin
        let v = t.values.(h) in
        Rt_reclaim.release rc ~pid;
        Rt_reclaim.retire rc ~pid h;
        Some v
      end
      else begin
        Backoff.once t.bo.(pid);
        attempt ()
      end
    end
  in
  attempt ()

let pop t ~pid =
  Backoff.reset t.bo.(pid);
  match t.head with
  | Via_reclaim cell -> pop_reclaimed t (t.free : Rt_reclaim.t) cell ~pid
  | Packed _ | Via_llsc _ ->
      let rec attempt () =
        let h, witness = read_head t ~pid in
        if h = -1 then None
        else begin
          let nxt = t.nexts.(h) in
          if cas_head t ~pid ~witness ~update:nxt then begin
            let v = t.values.(h) in
            Rt_free_list.put t.free ~pid h;
            Some v
          end
          else begin
            Backoff.once t.bo.(pid);
            attempt ()
          end
        end
      in
      attempt ()

let check_multiset = Harness.check_multiset
