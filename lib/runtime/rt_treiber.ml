open Aba_primitives
module Obs = Aba_obs.Obs

type protection = Tag_bits of int | Llsc | Reclaimed of Rt_reclaim.scheme

type head_impl =
  | Packed of { cell : int Atomic.t; tag_bits : int }
  | Via_llsc of Rt_llsc.Packed_fig3.t
  | Via_reclaim of int Atomic.t  (** plain node index, -1 = empty *)

type t = {
  head : head_impl;
  values : int array;
  nexts : int array;
  free : Rt_free_list.t;
  bo : Backoff.t array;  (** per-pid retry backoff, {!Backoff.noop} when
                             backoff is disabled *)
  elim : Elimination.t;  (** push/pop pair exchanger, consulted only after
                             a failed head CAS; inert under
                             {!Elimination.Noop} *)
  obs : Obs.t;  (** records [Push]/[Pop] with head-CAS retry counts; the
                    same handle is threaded into the elimination layer and
                    the reclaimer, inert under {!Obs.noop} *)
}

(* Packed head layout: low [tag_bits] bits are the tag, the rest the node
   index shifted by one so that index [-1] (empty) maps to [0]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

(* Contention management defaults ON here: this is the production surface,
   and unlike the primitive layer there is no checking backend running the
   same code that a layout or timing change could perturb. *)
let create ?(padded = true) ?(backoff = true) ?(elimination = Elimination.Noop)
    ?(obs = Obs.noop) ~protection ~capacity ~n () =
  let pad_cell c = if padded then Padded.copy c else c in
  let spec =
    if backoff then Backoff.default_spec else Backoff.Noop
  in
  let head, free =
    match protection with
    | Tag_bits k ->
        if k < 0 || k > 40 then invalid_arg "Rt_treiber.create: bad tag_bits";
        ( Packed
            { cell = pad_cell (Atomic.make (pack ~tag_bits:k (-1) 0));
              tag_bits = k },
          Rt_free_list.create ~n ~capacity () )
    | Llsc ->
        (* The LL/SC object stores index + 1 so the empty stack is 0. *)
        ( Via_llsc
            (Rt_llsc.Packed_fig3.create ~padded ~backoff:spec ~n ~init:0 ()),
          Rt_free_list.create ~n ~capacity () )
    | Reclaimed scheme ->
        (* The reclaimer shares the stack's handle so its [Retire] events
           land in the same timeline as the pops that caused them. *)
        ( Via_reclaim (pad_cell (Atomic.make (-1))),
          Rt_free_list.create ~scheme ~slots:1 ~obs ~n ~capacity () )
  in
  {
    head;
    values = Array.make capacity 0;
    nexts = Array.make capacity (-1);
    free;
    bo = Array.init n (fun _ -> Padded.copy (Backoff.make spec));
    elim = Elimination.create ~padded ~obs ~spec:elimination ~n ();
    obs;
  }

let reclaimer t =
  match t.head with
  | Via_reclaim _ -> Some (t.free : Rt_reclaim.t)
  | Packed _ | Via_llsc _ -> None

let reclaim_stats t = Option.map Rt_reclaim.stats (reclaimer t)

let elimination_stats t =
  if Elimination.enabled t.elim then Some (Elimination.stats t.elim) else None

let read_head t ~pid =
  match t.head with
  | Packed { cell; tag_bits } ->
      let packed = Atomic.get cell in
      let index, _ = unpack ~tag_bits packed in
      (index, packed)
  | Via_llsc obj -> (Rt_llsc.Packed_fig3.ll obj ~pid - 1, 0)
  | Via_reclaim cell -> (Atomic.get cell, 0)

let cas_head t ~pid ~witness ~update =
  match t.head with
  | Packed { cell; tag_bits } ->
      let _, tag = unpack ~tag_bits witness in
      Atomic.compare_and_set cell witness (pack ~tag_bits update (tag + 1))
  | Via_llsc obj -> Rt_llsc.Packed_fig3.sc obj ~pid (update + 1)
  | Via_reclaim _ -> assert false (* reclaimed pops go through pop_reclaimed *)

(* After a failed head CAS the push first visits the exchanger: a
   concurrent pop that takes the value there linearizes the pair off the
   head entirely — the composite push-then-pop is a stack no-op, so the
   head word never learns the pair existed.  The backoff reset is lazy
   ([retries = 0]): an uncontended operation does zero backoff stores. *)

(* Pooled variants recycle immediately: their own head word (tag or
   LL/SC) is the ABA protection, exactly as before the reclaim layer. *)
let push t ~pid v =
  let t0 = Obs.start t.obs in
  match Rt_free_list.take t.free ~pid with
  | None ->
      Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Fail ~retries:0 t0;
      false
  | Some i ->
      t.values.(i) <- v;
      (* [retries] counts failed head CASes; [record] runs at the outcome
         point so the latency covers the whole retry span. *)
      let outcome =
        match t.head with
        | Packed _ | Via_llsc _ ->
            let rec attempt retries =
              let h, witness = read_head t ~pid in
              t.nexts.(i) <- h;
              if cas_head t ~pid ~witness ~update:i then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Ok ~retries
                  t0;
                `Pushed
              end
              else if Elimination.exchange_push t.elim ~pid v then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Eliminated
                  ~retries t0;
                `Eliminated
              end
              else begin
                if retries = 0 then Backoff.reset t.bo.(pid);
                Backoff.once t.bo.(pid);
                attempt (retries + 1)
              end
            in
            attempt 0
        | Via_reclaim cell ->
            (* A push CAS cannot ABA: success only requires the head to
               equal the observed value at linearization. *)
            let rec attempt retries =
              let h = Atomic.get cell in
              t.nexts.(i) <- h;
              if Atomic.compare_and_set cell h i then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Ok ~retries
                  t0;
                `Pushed
              end
              else if Elimination.exchange_push t.elim ~pid v then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Eliminated
                  ~retries t0;
                `Eliminated
              end
              else begin
                if retries = 0 then Backoff.reset t.bo.(pid);
                Backoff.once t.bo.(pid);
                attempt (retries + 1)
              end
            in
            attempt 0
      in
      (match outcome with
      | `Pushed -> ()
      | `Eliminated ->
          (* The value went straight to a pop; the node was never
             published, so no stale reference to it can exist and it is
             safe to recycle immediately even under the reclaimed
             disciplines. *)
          Rt_free_list.put t.free ~pid i);
      true

(* The reclaimed pop is the hazard-pointer protocol: announce the head
   node, re-validate, and only then read its successor — the reclaimer
   guarantees a protected node is never handed back to [alloc], so the
   CAS can never see a recycled index. *)
let pop_reclaimed t rc cell ~pid t0 =
  let rec attempt retries =
    let h =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get cell)
    in
    if h = -1 then begin
      Rt_reclaim.release rc ~pid;
      Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Empty ~retries t0;
      None
    end
    else begin
      let nxt = t.nexts.(h) in
      if Atomic.compare_and_set cell h nxt then begin
        let v = t.values.(h) in
        Rt_reclaim.release rc ~pid;
        Rt_reclaim.retire rc ~pid h;
        Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Ok ~retries t0;
        Some v
      end
      else begin
        match Elimination.exchange_pop t.elim ~pid with
        | Some _ as eliminated ->
            Rt_reclaim.release rc ~pid;
            Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Eliminated
              ~retries t0;
            eliminated
        | None ->
            if retries = 0 then Backoff.reset t.bo.(pid);
            Backoff.once t.bo.(pid);
            attempt (retries + 1)
      end
    end
  in
  attempt 0

let pop t ~pid =
  let t0 = Obs.start t.obs in
  match t.head with
  | Via_reclaim cell -> pop_reclaimed t (t.free : Rt_reclaim.t) cell ~pid t0
  | Packed _ | Via_llsc _ ->
      let rec attempt retries =
        let h, witness = read_head t ~pid in
        if h = -1 then begin
          Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Empty ~retries t0;
          None
        end
        else begin
          let nxt = t.nexts.(h) in
          if cas_head t ~pid ~witness ~update:nxt then begin
            let v = t.values.(h) in
            Rt_free_list.put t.free ~pid h;
            Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Ok ~retries t0;
            Some v
          end
          else begin
            match Elimination.exchange_pop t.elim ~pid with
            | Some _ as eliminated ->
                Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Eliminated
                  ~retries t0;
                eliminated
            | None ->
                if retries = 0 then Backoff.reset t.bo.(pid);
                Backoff.once t.bo.(pid);
                attempt (retries + 1)
          end
        end
      in
      attempt 0

let check_multiset = Harness.check_multiset
