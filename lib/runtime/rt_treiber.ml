open Aba_primitives
module Obs = Aba_obs.Obs

type protection =
  | Tag_bits of int
  | Llsc
  | Reclaimed of Rt_reclaim.scheme
  | Announced of int

(* Announcement-guarded tagged head (the runtime-specialized twin of
   {!Aba_core.Announced_tags}): a packed (index, tag) word plus per-pid
   padded announcement slots.  Pops announce the tag they rely on and
   revalidate; installs that cross a half of the tag space scan the slots
   and enter above every announced tag, so a stale witness can never match
   again while its holder's announcement stands — bounded tags made
   wraparound-safe with no retire lists and no per-op scans. *)
type announced = {
  a_cell : int Atomic.t;
  a_tag_bits : int;
  a_total : int;
  a_half : int;
  a_slots : int Atomic.t array;  (** announced tag per pid, -1 = none *)
  a_n : int;
}

type head_impl =
  | Packed of { cell : int Atomic.t; tag_bits : int }
  | Via_llsc of Rt_llsc.Packed_fig3.t
  | Via_reclaim of int Atomic.t  (** plain node index, -1 = empty *)
  | Via_announced of announced

type t = {
  head : head_impl;
  values : int array;
  nexts : int array;
  free : Rt_free_list.t;
  bo : Backoff.t array;  (** per-pid retry backoff, {!Backoff.noop} when
                             backoff is disabled *)
  elim : Elimination.t;  (** push/pop pair exchanger, consulted only after
                             a failed head CAS; inert under
                             {!Elimination.Noop} *)
  obs : Obs.t;  (** records [Push]/[Pop] with head-CAS retry counts; the
                    same handle is threaded into the elimination layer and
                    the reclaimer, inert under {!Obs.noop} *)
}

(* Packed head layout: low [tag_bits] bits are the tag, the rest the node
   index shifted by one so that index [-1] (empty) maps to [0]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

(* Contention management defaults ON here: this is the production surface,
   and unlike the primitive layer there is no checking backend running the
   same code that a layout or timing change could perturb. *)
let create ?(padded = true) ?(backoff = true) ?(elimination = Elimination.Noop)
    ?(obs = Obs.noop) ~protection ~capacity ~n () =
  let pad_cell c = if padded then Padded.copy c else c in
  let spec =
    if backoff then Backoff.default_spec else Backoff.Noop
  in
  let head, free =
    match protection with
    | Tag_bits k ->
        if k < 0 || k > 40 then invalid_arg "Rt_treiber.create: bad tag_bits";
        ( Packed
            { cell = pad_cell (Atomic.make (pack ~tag_bits:k (-1) 0));
              tag_bits = k },
          Rt_free_list.create ~n ~capacity () )
    | Llsc ->
        (* The LL/SC object stores index + 1 so the empty stack is 0. *)
        ( Via_llsc
            (Rt_llsc.Packed_fig3.create ~padded ~backoff:spec ~n ~init:0 ()),
          Rt_free_list.create ~n ~capacity () )
    | Reclaimed scheme ->
        (* The reclaimer shares the stack's handle so its [Retire] events
           land in the same timeline as the pops that caused them. *)
        ( Via_reclaim (pad_cell (Atomic.make (-1))),
          Rt_free_list.create ~scheme ~slots:1 ~obs ~n ~capacity () )
    | Announced k ->
        (* Each half needs room to enter above announced tags, and progress
           under stalls wants a half larger than the process count. *)
        if k < 2 || k > 40 then
          invalid_arg "Rt_treiber.create: Announced needs tag_bits in 2..40";
        ( Via_announced
            {
              a_cell = pad_cell (Atomic.make (pack ~tag_bits:k (-1) 0));
              a_tag_bits = k;
              a_total = 1 lsl k;
              a_half = 1 lsl (k - 1);
              a_slots =
                (if padded then Padded.atomic_array n (-1)
                 else Array.init n (fun _ -> Atomic.make (-1)));
              a_n = n;
            },
          Rt_free_list.create ~n ~capacity () )
  in
  {
    head;
    values = Array.make capacity 0;
    nexts = Array.make capacity (-1);
    free;
    bo = Array.init n (fun _ -> Padded.copy (Backoff.make spec));
    elim = Elimination.create ~padded ~obs ~spec:elimination ~n ();
    obs;
  }

let reclaimer t =
  match t.head with
  | Via_reclaim _ -> Some (Rt_free_list.reclaimer t.free)
  | Packed _ | Via_llsc _ | Via_announced _ -> None

let reclaim_stats t = Option.map Rt_reclaim.stats (reclaimer t)

let elimination_stats t =
  if Elimination.enabled t.elim then Some (Elimination.stats t.elim) else None

let read_head t ~pid =
  match t.head with
  | Packed { cell; tag_bits } ->
      let packed = Atomic.get cell in
      let index, _ = unpack ~tag_bits packed in
      (index, packed)
  | Via_llsc obj -> (Rt_llsc.Packed_fig3.ll obj ~pid - 1, 0)
  | Via_reclaim cell -> (Atomic.get cell, 0)
  | Via_announced _ -> assert false (* announced ops are specialized below *)

let cas_head t ~pid ~witness ~update =
  match t.head with
  | Packed { cell; tag_bits } ->
      let _, tag = unpack ~tag_bits witness in
      Atomic.compare_and_set cell witness (pack ~tag_bits update (tag + 1))
  | Via_llsc obj -> Rt_llsc.Packed_fig3.sc obj ~pid (update + 1)
  | Via_reclaim _ -> assert false (* reclaimed pops go through pop_reclaimed *)
  | Via_announced _ -> assert false (* announced ops are specialized below *)

(* Install [(update, succ tag)] on the announced head if it still matches
   [witness].  Inside a half this is one packed CAS — the tag-discipline
   cost of the uncontended hot path is zero extra words and zero extra
   shared accesses.  At a half crossing (tag 0 or 2^(k-1)) the slots are
   scanned and the new half entered above every announced tag in it, so a
   tag continuously announced since it was last live is never reinstated.
   [false] covers both a lost race and a blocked crossing (a reader parked
   on the last tag of the target half); the caller backs off and retries
   either way.  The [Scan] event's [retries] field counts skipped tags. *)
let announced_install t a ~pid ~witness ~update =
  let mask = a.a_total - 1 in
  let next = ((witness land mask) + 1) land mask in
  if next mod a.a_half <> 0 then
    Atomic.compare_and_set a.a_cell witness
      (pack ~tag_bits:a.a_tag_bits update next)
  else begin
    let t0 = Obs.start t.obs in
    let entry = ref 0 in
    for p = 0 to a.a_n - 1 do
      let s = Atomic.get a.a_slots.(p) in
      if s >= next && s < next + a.a_half && s - next + 1 > !entry then
        entry := s - next + 1
    done;
    if !entry >= a.a_half then begin
      Obs.record t.obs ~pid ~kind:Obs.Scan ~outcome:Obs.Fail ~retries:!entry
        t0;
      false
    end
    else begin
      Obs.record t.obs ~pid ~kind:Obs.Scan ~outcome:Obs.Ok ~retries:!entry t0;
      Atomic.compare_and_set a.a_cell witness
        (pack ~tag_bits:a.a_tag_bits update (next + !entry))
    end
  end

(* Announce-and-revalidate: loop until a read of the head matches the tag
   we just announced.  From that point the returned witness cannot be
   displaced and reinstated while the announcement stands, so a successful
   CAS on it proves the head never moved since validation — which makes
   the successor read below safe without any reclaimer.  Top-level so the
   loop carries no closure environment: one slot store plus one head read
   per iteration, no allocation. *)
let rec announced_revalidate a slot mask packed =
  Atomic.set slot (packed land mask);
  let packed' = Atomic.get a.a_cell in
  if packed' = packed then packed else announced_revalidate a slot mask packed'

let announced_protect a ~pid =
  announced_revalidate a a.a_slots.(pid) (a.a_total - 1)
    (Atomic.get a.a_cell)

(* After a failed head CAS the push first visits the exchanger: a
   concurrent pop that takes the value there linearizes the pair off the
   head entirely — the composite push-then-pop is a stack no-op, so the
   head word never learns the pair existed.  The backoff reset is lazy
   ([retries = 0]): an uncontended operation does zero backoff stores. *)

(* The announced hot paths are top-level loops taking all their state as
   arguments: no local-closure environment, no tuple, no option — an
   uncontended operation allocates nothing at all.  (The local [rec
   attempt] style used by the other variants allocates its closure's
   environment once per call in classic-mode native compilation.) *)

(* A push needs no announcement: its CAS compares the head index, and
   [nexts.(i)] is re-read on every attempt, so success never publishes a
   stale successor.  It does go through [announced_install] so every tag
   it burns respects the crossing discipline the poppers rely on. *)
let rec announced_push_loop t a ~pid v i t0 retries =
  let packed = Atomic.get a.a_cell in
  t.nexts.(i) <- (packed lsr a.a_tag_bits) - 1;
  if announced_install t a ~pid ~witness:packed ~update:i then
    Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Ok ~retries t0
  else if Elimination.exchange_push t.elim ~pid v then begin
    Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Eliminated ~retries t0;
    (* The value went straight to a pop; the node was never published, so
       no stale reference to it can exist and it recycles immediately. *)
    Rt_free_list.put t.free ~pid i
  end
  else begin
    if retries = 0 then Backoff.reset t.bo.(pid);
    Backoff.once t.bo.(pid);
    announced_push_loop t a ~pid v i t0 (retries + 1)
  end

(* Pooled variants recycle immediately: their own head word (tag or
   LL/SC) is the ABA protection, exactly as before the reclaim layer. *)
let push_pooled t ~pid v =
  let t0 = Obs.start t.obs in
  match Rt_free_list.take t.free ~pid with
  | None ->
      Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Fail ~retries:0 t0;
      false
  | Some i ->
      t.values.(i) <- v;
      (* [retries] counts failed head CASes; [record] runs at the outcome
         point so the latency covers the whole retry span. *)
      let outcome =
        match t.head with
        | Packed _ | Via_llsc _ ->
            let rec attempt retries =
              let h, witness = read_head t ~pid in
              t.nexts.(i) <- h;
              if cas_head t ~pid ~witness ~update:i then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Ok ~retries
                  t0;
                `Pushed
              end
              else if Elimination.exchange_push t.elim ~pid v then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Eliminated
                  ~retries t0;
                `Eliminated
              end
              else begin
                if retries = 0 then Backoff.reset t.bo.(pid);
                Backoff.once t.bo.(pid);
                attempt (retries + 1)
              end
            in
            attempt 0
        | Via_reclaim cell ->
            (* A push CAS cannot ABA: success only requires the head to
               equal the observed value at linearization. *)
            let rec attempt retries =
              let h = Atomic.get cell in
              t.nexts.(i) <- h;
              if Atomic.compare_and_set cell h i then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Ok ~retries
                  t0;
                `Pushed
              end
              else if Elimination.exchange_push t.elim ~pid v then begin
                Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Eliminated
                  ~retries t0;
                `Eliminated
              end
              else begin
                if retries = 0 then Backoff.reset t.bo.(pid);
                Backoff.once t.bo.(pid);
                attempt (retries + 1)
              end
            in
            attempt 0
        | Via_announced _ -> assert false (* specialized in [push] below *)
      in
      (match outcome with
      | `Pushed -> ()
      | `Eliminated ->
          (* The value went straight to a pop; the node was never
             published, so no stale reference to it can exist and it is
             safe to recycle immediately even under the reclaimed
             disciplines. *)
          Rt_free_list.put t.free ~pid i);
      true

let push t ~pid v =
  match t.head with
  | Via_announced a ->
      let t0 = Obs.start t.obs in
      let i = Rt_free_list.take_idx t.free ~pid in
      if i < 0 then begin
        Obs.record t.obs ~pid ~kind:Obs.Push ~outcome:Obs.Fail ~retries:0 t0;
        false
      end
      else begin
        t.values.(i) <- v;
        announced_push_loop t a ~pid v i t0 0;
        true
      end
  | Packed _ | Via_llsc _ | Via_reclaim _ -> push_pooled t ~pid v

(* The reclaimed pop is the hazard-pointer protocol: announce the head
   node, re-validate, and only then read its successor — the reclaimer
   guarantees a protected node is never handed back to [alloc], so the
   CAS can never see a recycled index. *)
let pop_reclaimed t rc cell ~pid t0 =
  let rec attempt retries =
    let h =
      Rt_reclaim.acquire rc ~pid ~slot:0 ~read:(fun () -> Atomic.get cell)
    in
    if h = -1 then begin
      Rt_reclaim.release rc ~pid;
      Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Empty ~retries t0;
      None
    end
    else begin
      let nxt = t.nexts.(h) in
      if Atomic.compare_and_set cell h nxt then begin
        let v = t.values.(h) in
        Rt_reclaim.release rc ~pid;
        Rt_reclaim.retire rc ~pid h;
        Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Ok ~retries t0;
        Some v
      end
      else begin
        match Elimination.exchange_pop t.elim ~pid with
        | Some _ as eliminated ->
            Rt_reclaim.release rc ~pid;
            Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Eliminated
              ~retries t0;
            eliminated
        | None ->
            if retries = 0 then Backoff.reset t.bo.(pid);
            Backoff.once t.bo.(pid);
            attempt (retries + 1)
      end
    end
  in
  attempt 0

(* The announced pop is the hazard-pointer protocol applied to the tag:
   announce, revalidate, and only then read the successor.  Unlike
   [pop_reclaimed] there is no retire and no per-op scan — the node goes
   straight back to the free list, and the announcement is one padded
   store.  [pop_announced] pays exactly the option cell for its result;
   [pop_or_announced] is the allocation-free twin returning [default]
   when empty. *)
let rec pop_announced t a ~pid t0 retries =
  let packed = announced_protect a ~pid in
  let h = (packed lsr a.a_tag_bits) - 1 in
  if h = -1 then begin
    Atomic.set a.a_slots.(pid) (-1);
    Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Empty ~retries t0;
    None
  end
  else begin
    let nxt = t.nexts.(h) in
    if announced_install t a ~pid ~witness:packed ~update:nxt then begin
      let v = t.values.(h) in
      Atomic.set a.a_slots.(pid) (-1);
      Rt_free_list.put t.free ~pid h;
      Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Ok ~retries t0;
      Some v
    end
    else
      match Elimination.exchange_pop t.elim ~pid with
      | Some _ as eliminated ->
          Atomic.set a.a_slots.(pid) (-1);
          Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Eliminated ~retries
            t0;
          eliminated
      | None ->
          if retries = 0 then Backoff.reset t.bo.(pid);
          Backoff.once t.bo.(pid);
          pop_announced t a ~pid t0 (retries + 1)
  end

let rec pop_or_announced t a ~pid ~default t0 retries =
  let packed = announced_protect a ~pid in
  let h = (packed lsr a.a_tag_bits) - 1 in
  if h = -1 then begin
    Atomic.set a.a_slots.(pid) (-1);
    Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Empty ~retries t0;
    default
  end
  else begin
    let nxt = t.nexts.(h) in
    if announced_install t a ~pid ~witness:packed ~update:nxt then begin
      let v = t.values.(h) in
      Atomic.set a.a_slots.(pid) (-1);
      Rt_free_list.put t.free ~pid h;
      Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Ok ~retries t0;
      v
    end
    else
      match Elimination.exchange_pop t.elim ~pid with
      | Some v ->
          Atomic.set a.a_slots.(pid) (-1);
          Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Eliminated ~retries
            t0;
          v
      | None ->
          if retries = 0 then Backoff.reset t.bo.(pid);
          Backoff.once t.bo.(pid);
          pop_or_announced t a ~pid ~default t0 (retries + 1)
  end

let pop t ~pid =
  let t0 = Obs.start t.obs in
  match t.head with
  | Via_reclaim cell ->
      pop_reclaimed t (Rt_free_list.reclaimer t.free) cell ~pid t0
  | Via_announced a -> pop_announced t a ~pid t0 0
  | Packed _ | Via_llsc _ ->
      let rec attempt retries =
        let h, witness = read_head t ~pid in
        if h = -1 then begin
          Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Empty ~retries t0;
          None
        end
        else begin
          let nxt = t.nexts.(h) in
          if cas_head t ~pid ~witness ~update:nxt then begin
            let v = t.values.(h) in
            Rt_free_list.put t.free ~pid h;
            Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Ok ~retries t0;
            Some v
          end
          else begin
            match Elimination.exchange_pop t.elim ~pid with
            | Some _ as eliminated ->
                Obs.record t.obs ~pid ~kind:Obs.Pop ~outcome:Obs.Eliminated
                  ~retries t0;
                eliminated
            | None ->
                if retries = 0 then Backoff.reset t.bo.(pid);
                Backoff.once t.bo.(pid);
                attempt (retries + 1)
          end
        end
      in
      attempt 0

let pop_or t ~pid ~default =
  match t.head with
  | Via_announced a ->
      let t0 = Obs.start t.obs in
      pop_or_announced t a ~pid ~default t0 0
  | Packed _ | Via_llsc _ | Via_reclaim _ -> (
      match pop t ~pid with Some v -> v | None -> default)

let check_multiset = Harness.check_multiset
