(** Hazard-pointer reclamation (Michael 2004) on plain [Atomic] words.

    Each domain owns [slots] single-writer announcement words; a scan
    collects every announcement and returns only unannounced limbo
    nodes to the free pool.  Protection is O(1), scans are
    O(n·slots + |limbo|) and amortised by a retire threshold.

    This is the plain-hardware baseline the paper's constructions are
    benchmarked against: same interface, no bounded-register story. *)

open Aba_primitives

type t = {
  n : int;
  slots : int;
  capacity : int;
  hazards : int Atomic.t array;  (** [n * slots], -1 = empty; each word on
                                     its own cache line — adjacent slots
                                     belong to different domains *)
  pool : Boxed_pool.t;
  limbo : int list ref array;  (** per-pid, owner-only *)
  limbo_size : int array;
  threshold : int;
  bo : Backoff.t array;  (** per-pid backoff for the acquire loop *)
  stats : Limbo_stats.t;
  obs : Aba_obs.Obs.t;
}

let create ?(slots = 2) ?(obs = Aba_obs.Obs.noop) ~n ~capacity () =
  if n <= 0 then invalid_arg "Hazard.create: n must be positive";
  if slots <= 0 then invalid_arg "Hazard.create: slots must be positive";
  if capacity <= 0 then invalid_arg "Hazard.create: capacity must be positive";
  let pool = Boxed_pool.create () in
  for i = capacity - 1 downto 0 do
    Boxed_pool.put pool i
  done;
  {
    n;
    slots;
    capacity;
    hazards = Padded.atomic_array (n * slots) (-1);
    pool;
    limbo = Array.init n (fun _ -> ref []);
    limbo_size = Array.make n 0;
    threshold = max 2 (2 * n * slots);
    bo = Array.init n (fun _ -> Padded.copy (Backoff.make Backoff.default_spec));
    stats = Limbo_stats.create ();
    obs;
  }

let capacity t = t.capacity

let protect t ~pid ~slot i =
  if slot < 0 || slot >= t.slots then invalid_arg "Hazard.protect: bad slot";
  Atomic.set t.hazards.((pid * t.slots) + slot) (if i < 0 then -1 else i)

let release t ~pid =
  for s = 0 to t.slots - 1 do
    Atomic.set t.hazards.((pid * t.slots) + s) (-1)
  done

let acquire t ~pid ~slot ~read =
  let bo = t.bo.(pid) in
  Backoff.reset bo;
  let rec loop () =
    let i = read () in
    if i < 0 then i
    else begin
      protect t ~pid ~slot i;
      if read () = i then i
      else begin
        (* The source moved under us: somebody is updating it, so pause
           before re-validating instead of hammering the line. *)
        Backoff.once bo;
        loop ()
      end
    end
  in
  loop ()

(* Reclaim every limbo node of [pid] not currently announced by anyone.
   Announcements published after the node was retired are harmless: the
   retiree was already unlinked, so such an announcement can never pass
   its validation read. *)
let scan t ~pid =
  let announced = Array.make t.capacity false in
  Array.iter
    (fun h ->
      let i = Atomic.get h in
      if i >= 0 && i < t.capacity then announced.(i) <- true)
    t.hazards;
  let keep =
    List.filter
      (fun i ->
        if announced.(i) then true
        else begin
          Boxed_pool.put t.pool i;
          Limbo_stats.on_reclaim t.stats;
          false
        end)
      !(t.limbo.(pid))
  in
  t.limbo.(pid) := keep;
  t.limbo_size.(pid) <- List.length keep

let flush t ~pid = scan t ~pid

let retire t ~pid i =
  let t0 = Aba_obs.Obs.start t.obs in
  t.limbo.(pid) := i :: !(t.limbo.(pid));
  t.limbo_size.(pid) <- t.limbo_size.(pid) + 1;
  Limbo_stats.on_retire t.stats;
  if t.limbo_size.(pid) >= t.threshold then scan t ~pid;
  (* The latency captures the amortisation spike: most retires are a cons,
     the threshold-crossing one pays a full O(n*slots + |limbo|) scan. *)
  Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Retire
    ~outcome:Aba_obs.Obs.Ok ~retries:0 t0

let recycle t ~pid:_ i = Boxed_pool.put t.pool i

let alloc t ~pid =
  match Boxed_pool.take t.pool with
  | Some i -> Some i
  | None ->
      scan t ~pid;
      Boxed_pool.take t.pool

let stats t = Limbo_stats.snapshot t.stats
