(** Reclamation guarded by the paper's constructions, made load-bearing.

    The scheme is hazard-pointer-shaped, but every shared word it relies
    on is one of the paper's objects rather than a raw hardware word:

    - each protection slot is a single-writer {e ABA-detecting register}
      (Figure 4 / Theorem 3): the owner announces the node it is about
      to dereference with [DWrite], and scans read the announcements
      with [DRead].  The register's bounded sequence-number machinery —
      not an unbounded stamp — is what makes the announcement word safe
      to reuse forever;
    - the shared free stack of node names is driven through the
      {e Figure 3} LL/SC word built from one bounded CAS (Theorem 2):
      [put]/[take] are LL/SC retry loops, so the stack head cannot ABA
      even though node names repeat by design.

    The result sits exactly on the paper's time–space tradeoff: each
    protection costs a Figure-4 [DWrite] (O(n) sequence bookkeeping,
    n+1 registers) and each pool operation an LL/SC pass over the
    Figure-3 word (O(n) under interference, one word) — measurably
    slower than {!Hazard}'s raw stores, in exchange for running
    entirely on bounded base objects. *)

module Make (L : Reclaim_intf.LLSC) (D : Reclaim_intf.DETECT) = struct
  open Aba_primitives

  type t = {
    n : int;
    slots : int;
    capacity : int;
    announce : D.t array;  (** [n * slots] Figure-4 registers, -1 = empty *)
    head : L.t;  (** free-stack top as (index + 1), 0 = empty *)
    nexts : int array;  (** successor as (index + 1), owner: stack push *)
    limbo : int list ref array;
    limbo_size : int array;
    threshold : int;
    bo : Backoff.t array;  (** per-pid backoff for the LL/SC retry loops *)
    stats : Limbo_stats.t;
    obs : Aba_obs.Obs.t;
  }

  let create ?(slots = 2) ?(obs = Aba_obs.Obs.noop) ~n ~capacity () =
    if n <= 0 then invalid_arg "Guarded.create: n must be positive";
    if slots <= 0 then invalid_arg "Guarded.create: slots must be positive";
    if capacity <= 0 then invalid_arg "Guarded.create: capacity must be positive";
    if n < 62 && capacity + 1 >= 1 lsl (62 - n) then
      invalid_arg "Guarded.create: capacity exceeds the figure-3 value range";
    let t =
      {
        n;
        slots;
        capacity;
        announce = Array.init (n * slots) (fun _ -> D.create ~n ~init:(-1));
        head = L.create ~n ~init:0;
        nexts = Array.make capacity 0;
        limbo = Array.init n (fun _ -> ref []);
        limbo_size = Array.make n 0;
        threshold = max 2 (2 * n * slots);
        bo =
          Array.init n (fun _ ->
              Padded.copy (Backoff.make Backoff.default_spec));
        stats = Limbo_stats.create ();
        obs;
      }
    in
    (* Seed the free stack single-handedly: pid 0's LL/SC cannot fail
       with no interference. *)
    for i = capacity - 1 downto 0 do
      let pushed = ref false in
      while not !pushed do
        let h = L.ll t.head ~pid:0 in
        t.nexts.(i) <- h;
        pushed := L.sc t.head ~pid:0 (i + 1)
      done
    done;
    t

  let capacity t = t.capacity

  let pool_put t ~pid i =
    let bo = t.bo.(pid) in
    Backoff.reset bo;
    let pushed = ref false in
    while not !pushed do
      let h = L.ll t.head ~pid in
      t.nexts.(i) <- h;
      pushed := L.sc t.head ~pid (i + 1);
      if not !pushed then Backoff.once bo
    done

  (* LL/SC makes the pop immune to reuse of [h]: any interfering SC —
     push or pop — invalidates the link, so a stale [nexts] read can
     never be installed.  This is the paper's cure for exactly the
     free-list ABA the old [Rt_free_list] was susceptible to. *)
  let pool_take t ~pid =
    let bo = t.bo.(pid) in
    Backoff.reset bo;
    let result = ref None in
    let done_ = ref false in
    while not !done_ do
      let h = L.ll t.head ~pid in
      if h = 0 then done_ := true
      else begin
        let nxt = t.nexts.(h - 1) in
        if L.sc t.head ~pid nxt then begin
          result := Some (h - 1);
          done_ := true
        end
        else Backoff.once bo
      end
    done;
    !result

  let protect t ~pid ~slot i =
    if slot < 0 || slot >= t.slots then invalid_arg "Guarded.protect: bad slot";
    D.dwrite t.announce.((pid * t.slots) + slot) ~pid (if i < 0 then -1 else i)

  let release t ~pid =
    for s = 0 to t.slots - 1 do
      D.dwrite t.announce.((pid * t.slots) + s) ~pid (-1)
    done

  let acquire t ~pid ~slot ~read =
    let bo = t.bo.(pid) in
    Backoff.reset bo;
    let rec loop () =
      let i = read () in
      if i < 0 then i
      else begin
        protect t ~pid ~slot i;
        if read () = i then i
        else begin
          Backoff.once bo;
          loop ()
        end
      end
    in
    loop ()

  let scan t ~pid =
    let announced = Array.make t.capacity false in
    Array.iter
      (fun reg ->
        let i, _changed = D.dread reg ~pid in
        if i >= 0 && i < t.capacity then announced.(i) <- true)
      t.announce;
    let keep =
      List.filter
        (fun i ->
          if announced.(i) then true
          else begin
            pool_put t ~pid i;
            Limbo_stats.on_reclaim t.stats;
            false
          end)
        !(t.limbo.(pid))
    in
    t.limbo.(pid) := keep;
    t.limbo_size.(pid) <- List.length keep

  let flush t ~pid = scan t ~pid

  let retire t ~pid i =
    let t0 = Aba_obs.Obs.start t.obs in
    t.limbo.(pid) := i :: !(t.limbo.(pid));
    t.limbo_size.(pid) <- t.limbo_size.(pid) + 1;
    Limbo_stats.on_retire t.stats;
    if t.limbo_size.(pid) >= t.threshold then scan t ~pid;
    (* Under this scheme the threshold-crossing retire pays a scan of
       n*slots Figure-4 [DRead]s plus Figure-3 LL/SC pool pushes — the
       paper's O(n) step complexity, visible as the latency tail. *)
    Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Retire
      ~outcome:Aba_obs.Obs.Ok ~retries:0 t0

  let recycle t ~pid i = pool_put t ~pid i

  let alloc t ~pid =
    match pool_take t ~pid with
    | Some i -> Some i
    | None ->
        scan t ~pid;
        pool_take t ~pid

  let stats t = Limbo_stats.snapshot t.stats
end
