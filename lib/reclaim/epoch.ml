(** Epoch-based reclamation (Fraser-style, three limbo generations).

    A domain pins the global epoch for the span of one operation; nodes
    retired in epoch [e] are reclaimable once the global epoch reaches
    [e + 2], because both intervening advances required every pinned
    domain to re-pin in between — so no reference from before the
    retirement can survive.  Protection is a single epoch pin per
    operation (the per-node [protect] calls after the first are no-ops),
    which is why epochs win on throughput and lose on space: one stalled
    pinned domain freezes reclamation for everybody. *)

open Aba_primitives

type bag = { mutable epoch : int; mutable nodes : int list }

type t = {
  n : int;
  capacity : int;
  global : int Atomic.t;  (** on its own cache line: read by every pin *)
  local : int Atomic.t array;
      (** announced epoch, -1 = quiescent; one word per line — slot [p] is
          stored by domain [p] and scanned by advancing domains *)
  bags : bag array array;  (** [n][3], owner-only, indexed by epoch mod 3 *)
  limbo_size : int array;
  pool : Boxed_pool.t;
  threshold : int;
  bo : Backoff.t array;  (** per-pid backoff for the acquire loop *)
  stats : Limbo_stats.t;
  obs : Aba_obs.Obs.t;
}

let create ?(slots = 2) ?(obs = Aba_obs.Obs.noop) ~n ~capacity () =
  ignore slots;
  if n <= 0 then invalid_arg "Epoch.create: n must be positive";
  if capacity <= 0 then invalid_arg "Epoch.create: capacity must be positive";
  let pool = Boxed_pool.create () in
  for i = capacity - 1 downto 0 do
    Boxed_pool.put pool i
  done;
  {
    n;
    capacity;
    global = Padded.atomic 0;
    local = Padded.atomic_array n (-1);
    bags =
      Array.init n (fun _ ->
          Array.init 3 (fun _ -> { epoch = -1; nodes = [] }));
    limbo_size = Array.make n 0;
    pool;
    threshold = max 2 n;
    bo = Array.init n (fun _ -> Padded.copy (Backoff.make Backoff.default_spec));
    stats = Limbo_stats.create ();
    obs;
  }

let capacity t = t.capacity

let protect t ~pid ~slot:_ i =
  if i >= 0 && Atomic.get t.local.(pid) = -1 then
    Atomic.set t.local.(pid) (Atomic.get t.global)

let release t ~pid = Atomic.set t.local.(pid) (-1)

let acquire t ~pid ~slot ~read =
  let bo = t.bo.(pid) in
  Backoff.reset bo;
  let rec loop () =
    let i = read () in
    if i < 0 then i
    else begin
      protect t ~pid ~slot i;
      if read () = i then i
      else begin
        Backoff.once bo;
        loop ()
      end
    end
  in
  loop ()

(* Advance the global epoch iff every pinned domain has observed the
   current one; a CAS failure means someone else advanced for us. *)
let try_advance t =
  let e = Atomic.get t.global in
  let blocked = ref false in
  for p = 0 to t.n - 1 do
    let l = Atomic.get t.local.(p) in
    if l <> -1 && l <> e then blocked := true
  done;
  if not !blocked then ignore (Atomic.compare_and_set t.global e (e + 1))

let reclaim_bag t ~pid b =
  List.iter
    (fun i ->
      Boxed_pool.put t.pool i;
      Limbo_stats.on_reclaim t.stats;
      t.limbo_size.(pid) <- t.limbo_size.(pid) - 1)
    b.nodes;
  b.nodes <- [];
  b.epoch <- -1

let reclaim_own t ~pid =
  let e = Atomic.get t.global in
  Array.iter
    (fun b -> if b.epoch >= 0 && b.epoch <= e - 2 then reclaim_bag t ~pid b)
    t.bags.(pid)

let flush t ~pid =
  (* Two successful advances empty every quiescent bag; a pinned domain
     elsewhere legitimately stalls this. *)
  for _ = 1 to 2 do
    try_advance t;
    reclaim_own t ~pid
  done

let retire t ~pid i =
  let t0 = Aba_obs.Obs.start t.obs in
  let e = Atomic.get t.global in
  let b = t.bags.(pid).(e mod 3) in
  (* The slot last held epoch e-3 (or older): always past its grace
     period by the time the epoch wraps back onto it. *)
  if b.epoch <> e && b.epoch >= 0 then reclaim_bag t ~pid b;
  b.epoch <- e;
  b.nodes <- i :: b.nodes;
  t.limbo_size.(pid) <- t.limbo_size.(pid) + 1;
  Limbo_stats.on_retire t.stats;
  if t.limbo_size.(pid) >= t.threshold then begin
    try_advance t;
    reclaim_own t ~pid
  end;
  Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Retire
    ~outcome:Aba_obs.Obs.Ok ~retries:0 t0

let recycle t ~pid:_ i = Boxed_pool.put t.pool i

let alloc t ~pid =
  match Boxed_pool.take t.pool with
  | Some i -> Some i
  | None ->
      flush t ~pid;
      Boxed_pool.take t.pool

let stats t = Limbo_stats.snapshot t.stats
