(** Unified dispatcher over the three reclamation schemes.

    The {!Guarded} scheme needs the paper's runtime constructions
    (Figure-3 LL/SC word, Figure-4 ABA-detecting register), which live
    one layer up in [Aba_runtime]; taking them as functor arguments
    keeps this library dependency-free and lets the simulator provide
    step-model instantiations later.  [Aba_runtime.Rt_reclaim] is the
    canonical instance. *)

type stats = Reclaim_intf.stats = {
  retired : int;
  reclaimed : int;
  in_limbo : int;
  peak_in_limbo : int;
}

type scheme = Reclaim_intf.scheme = Hazard | Epoch | Guarded

let scheme_name = Reclaim_intf.scheme_name

let all_schemes = Reclaim_intf.all_schemes

module Make (L : Reclaim_intf.LLSC) (D : Reclaim_intf.DETECT) : sig
  type t

  val create :
    ?slots:int -> ?obs:Aba_obs.Obs.t -> n:int -> capacity:int -> scheme -> t
  val scheme : t -> scheme
  val capacity : t -> int
  val alloc : t -> pid:int -> int option
  val retire : t -> pid:int -> int -> unit
  val recycle : t -> pid:int -> int -> unit
  val protect : t -> pid:int -> slot:int -> int -> unit
  val acquire : t -> pid:int -> slot:int -> read:(unit -> int) -> int
  val release : t -> pid:int -> unit
  val flush : t -> pid:int -> unit
  val stats : t -> stats
end = struct
  module G = Guarded.Make (L) (D)

  type t = H of Hazard.t | E of Epoch.t | G of G.t

  let create ?slots ?obs ~n ~capacity = function
    | Hazard -> H (Hazard.create ?slots ?obs ~n ~capacity ())
    | Epoch -> E (Epoch.create ?slots ?obs ~n ~capacity ())
    | Guarded -> G (G.create ?slots ?obs ~n ~capacity ())

  let scheme = function H _ -> Hazard | E _ -> Epoch | G _ -> Guarded

  let capacity = function
    | H h -> Hazard.capacity h
    | E e -> Epoch.capacity e
    | G g -> G.capacity g

  let alloc t ~pid =
    match t with
    | H h -> Hazard.alloc h ~pid
    | E e -> Epoch.alloc e ~pid
    | G g -> G.alloc g ~pid

  let retire t ~pid i =
    match t with
    | H h -> Hazard.retire h ~pid i
    | E e -> Epoch.retire e ~pid i
    | G g -> G.retire g ~pid i

  let recycle t ~pid i =
    match t with
    | H h -> Hazard.recycle h ~pid i
    | E e -> Epoch.recycle e ~pid i
    | G g -> G.recycle g ~pid i

  let protect t ~pid ~slot i =
    match t with
    | H h -> Hazard.protect h ~pid ~slot i
    | E e -> Epoch.protect e ~pid ~slot i
    | G g -> G.protect g ~pid ~slot i

  let acquire t ~pid ~slot ~read =
    match t with
    | H h -> Hazard.acquire h ~pid ~slot ~read
    | E e -> Epoch.acquire e ~pid ~slot ~read
    | G g -> G.acquire g ~pid ~slot ~read

  let release t ~pid =
    match t with
    | H h -> Hazard.release h ~pid
    | E e -> Epoch.release e ~pid
    | G g -> G.release g ~pid

  let flush t ~pid =
    match t with
    | H h -> Hazard.flush h ~pid
    | E e -> Epoch.flush e ~pid
    | G g -> G.flush g ~pid

  let stats = function
    | H h -> Hazard.stats h
    | E e -> Epoch.stats e
    | G g -> G.stats g
end
