(** Shared lifetime counters for the reclaimers (internal).

    [in_limbo] is its own counter rather than [retired - reclaimed]
    computed from two loads: the two loads are not atomic together, so
    a domain preempted between them would see a wildly inflated
    difference and record it as the peak.  [fetch_and_add] gives each
    retire the exact post-increment population to feed the CAS-max
    loop. *)

type t = {
  retired : int Atomic.t;
  reclaimed : int Atomic.t;
  in_limbo : int Atomic.t;
  peak : int Atomic.t;
}

let create () =
  {
    retired = Atomic.make 0;
    reclaimed = Atomic.make 0;
    in_limbo = Atomic.make 0;
    peak = Atomic.make 0;
  }

let on_retire t =
  Atomic.incr t.retired;
  let limbo = 1 + Atomic.fetch_and_add t.in_limbo 1 in
  let rec bump () =
    let p = Atomic.get t.peak in
    if limbo > p && not (Atomic.compare_and_set t.peak p limbo) then bump ()
  in
  bump ()

let on_reclaim t =
  Atomic.incr t.reclaimed;
  Atomic.decr t.in_limbo

let snapshot t : Reclaim_intf.stats =
  {
    Reclaim_intf.retired = Atomic.get t.retired;
    reclaimed = Atomic.get t.reclaimed;
    in_limbo = Atomic.get t.in_limbo;
    peak_in_limbo = Atomic.get t.peak;
  }
