(** The common safe-memory-reclamation interface ([RECLAIMER]).

    The paper locates the ABA problem in memory reuse: a CAS-based
    structure corrupts only when a node is retired, reclaimed and
    re-enters the structure while a slow operation still holds its
    (stale) address.  A reclaimer is therefore both the allocator and
    the guard of the runtime index-based structures: nodes are handed
    out by {!S.alloc}, announced before dereference with {!S.protect}
    (or the validated read {!S.acquire}), given back with {!S.retire},
    and only returned to the free pool once no announcement can still
    refer to them.

    Three implementations live behind this signature:
    - {!Hazard} — classic hazard pointers (Michael 2004) on plain
      [Atomic] words: O(1) protection, O(n·slots) scans;
    - {!Epoch} — epoch-based reclamation: protection amortised to a
      single epoch pin per operation, space unbounded while any domain
      stays pinned;
    - {!Guarded.Make} — the paper made load-bearing: protection slots
      are Figure-4 ABA-detecting registers (Theorem 3) and the shared
      free stack is driven through the Figure-3 LL/SC word (Theorem 2),
      so every reclamation decision goes through the constructions the
      paper proves correct.

    All node names are small integers in [0, capacity): the runtime
    structures are index-based, so the reclaimer never touches the
    payload arrays, only the names. *)

(** Lifetime counters, updated with sequentially consistent atomics so
    they can be read while a workload is still running. *)
type stats = {
  retired : int;  (** nodes handed to [retire] so far *)
  reclaimed : int;  (** retired nodes returned to the free pool *)
  in_limbo : int;  (** retired but not yet reclaimed (= retired - reclaimed) *)
  peak_in_limbo : int;
      (** high-water mark of [in_limbo]: the scheme's space overhead *)
}

(** The three reclamation schemes, used by the unified dispatcher and
    by the runtime structures' [protection] variants. *)
type scheme = Hazard | Epoch | Guarded

let scheme_name = function
  | Hazard -> "hazard"
  | Epoch -> "epoch"
  | Guarded -> "guarded"

let all_schemes = [ Hazard; Epoch; Guarded ]

module type S = sig
  type t

  val create :
    ?slots:int -> ?obs:Aba_obs.Obs.t -> n:int -> capacity:int -> unit -> t
  (** [create ~n ~capacity ()] prepares [capacity] node names for [n]
      domains (pids [0, n)).  [slots] (default 2) is the number of
      simultaneous per-domain protections; the Treiber stack needs 1,
      the Michael–Scott queue 2.  [obs] (default {!Aba_obs.Obs.noop})
      records each {!retire} as a [Retire] event whose latency includes
      any reclamation scan the retire triggered. *)

  val capacity : t -> int

  val alloc : t -> pid:int -> int option
  (** Take a free node name, or [None] when every node is live or in
      limbo.  Exhaustion triggers a reclamation attempt first. *)

  val retire : t -> pid:int -> int -> unit
  (** The node left the structure; hand it back once no protection can
      still refer to it.  Must be called at most once per removal, by
      the domain that unlinked it. *)

  val recycle : t -> pid:int -> int -> unit
  (** Immediate reuse, skipping the grace period: the caller asserts no
      other domain can hold a stale reference (because the structure
      protects itself with tags or LL/SC).  This is what the classic
      free-list clients use. *)

  val protect : t -> pid:int -> slot:int -> int -> unit
  (** Announce that [pid] is about to dereference a node.  The caller
      must re-validate its source pointer afterwards ({!acquire} does
      both).  Negative indices clear the slot. *)

  val acquire : t -> pid:int -> slot:int -> read:(unit -> int) -> int
  (** The validated-read loop: read a node name, protect it, and re-read
      until the source is stable.  Returns a protected name, or a
      negative sentinel (unprotected) if [read] produced one. *)

  val release : t -> pid:int -> unit
  (** Drop every protection held by [pid] (all slots / the epoch pin). *)

  val flush : t -> pid:int -> unit
  (** Force a reclamation pass over [pid]'s limbo nodes.  After every
      domain has released and flushed, all retired nodes are reclaimed. *)

  val stats : t -> stats
end

(** What {!Guarded.Make} needs from the paper's Figure 3: a single
    bounded LL/SC word ([Rt_llsc.Packed_fig3] in the runtime). *)
module type LLSC = sig
  type t

  val create : n:int -> init:int -> t
  val ll : t -> pid:int -> int
  val sc : t -> pid:int -> int -> bool
end

(** What {!Guarded.Make} needs from the paper's Figure 4: a bounded
    single-writer ABA-detecting register over [int] ([Rt_aba.Fig4]). *)
module type DETECT = sig
  type t

  val create : n:int -> init:int -> t
  val dwrite : t -> pid:int -> int -> unit
  val dread : t -> pid:int -> int * bool
end
