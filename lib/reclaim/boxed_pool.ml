(** GC-safe lock-free pool of node names (internal substrate).

    A Treiber stack of freshly allocated cons cells CASed by physical
    equality: holding the expected cell keeps it alive, so the GC can
    never re-issue its address and physical CAS on live pointers cannot
    ABA.  This is the free pool of the {!Hazard} and {!Epoch}
    reclaimers, whose own grace periods make a bounded pool
    unnecessary; the {!Guarded} scheme instead uses an allocation-free
    stack guarded by the paper's Figure-3 word.

    Both loops are flat [while] retries — no stack growth no matter how
    contended the head is. *)

type cell = Nil | Cons of { index : int; rest : cell }

type t = cell Atomic.t

let create () = Atomic.make Nil

let put t index =
  let done_ = ref false in
  while not !done_ do
    let old = Atomic.get t in
    done_ := Atomic.compare_and_set t old (Cons { index; rest = old })
  done

let take t =
  let result = ref None in
  let done_ = ref false in
  while not !done_ do
    match Atomic.get t with
    | Nil -> done_ := true
    | Cons { index; rest } as old ->
        if Atomic.compare_and_set t old rest then begin
          result := Some index;
          done_ := true
        end
  done;
  !result
