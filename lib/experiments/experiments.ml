(** Experiment runners (E1..E8 from DESIGN.md).

    Each [run_*] prints one paper-derived table to stdout; they are invoked
    by both the [aba-lab] CLI and the benchmark executable, so
    [dune exec bench/main.exe] regenerates every table in one go. *)

open Aba_core
open Aba_lowerbound

let hr () = print_endline (String.make 72 '-')

let section title =
  hr ();
  Printf.printf "%s\n" title;
  hr ()

(* ----- E3 / Theorem 3: space table ----- *)

let run_space ns =
  section "E3/E5 - Space usage (number of base objects, m) vs n";
  Printf.printf "%-12s" "impl";
  List.iter (fun n -> Printf.printf "%8s" (Printf.sprintf "n=%d" n)) ns;
  Printf.printf "%10s\n" "bounded?";
  let row label space_of =
    Printf.printf "%-12s" label;
    let bounded = ref true in
    List.iter
      (fun n ->
        let objs = space_of n in
        if List.exists (fun (_, d) -> d = "unbounded") objs then
          bounded := false;
        Printf.printf "%8d" (List.length objs))
      ns;
    Printf.printf "%10s\n" (if !bounded then "yes" else "NO")
  in
  print_endline "ABA-detecting registers:";
  List.iter
    (fun (label, builder) ->
      row label (fun n ->
          let sim = Aba_sim.Sim.create ~n in
          (Instances.aba_in_sim builder sim ~n).Instances.aba_space ()))
    (Instances.all_aba ());
  print_endline "LL/SC/VL objects:";
  List.iter
    (fun (label, builder) ->
      row label (fun n ->
          let sim = Aba_sim.Sim.create ~n in
          (Instances.llsc_in_sim builder sim ~n).Instances.llsc_space ()))
    (List.filter (fun (l, _) -> l <> "native") (Instances.all_llsc ()));
  print_endline
    "Paper: fig4 = n+1 registers (Thm 3); thm2/fig3 = 1 CAS (Thm 2);\n\
     jp = 1 CAS + n registers [2,15]; unbounded/moir = 1 unbounded object."

(* ----- E1 / Theorem 1(a): covering adversary ----- *)

let run_covering ns =
  section "E1 - Lemma 1 covering adversary (Theorem 1(a))";
  let impls =
    [
      ("fig4", Instances.aba_fig4);
      ("tag-mod-3", Instances.aba_bounded_tag ~tag_bound:3);
      ("tag-mod-8", Instances.aba_bounded_tag ~tag_bound:8);
      ("unbounded", Instances.aba_unbounded);
      ("thm2(CAS)", Instances.aba_thm2);
    ]
  in
  List.iter
    (fun n ->
      Printf.printf "n = %d (target covering: %d registers)\n" n (n - 1);
      List.iter
        (fun (label, builder) ->
          let outcome, stats =
            Covering.run ~max_iterations_per_level:4000 builder ~n
          in
          Printf.printf "  %-11s %s\n" label
            (Format.asprintf "%a" Covering.pp_outcome outcome);
          Printf.printf "  %-11s   (%d steps, %d iterations, %d replays)\n" ""
            stats.Covering.total_steps stats.Covering.total_iterations
            stats.Covering.replays)
        impls)
    ns;
  print_endline
    "Paper: any solo-terminating implementation from bounded registers\n\
     admits an (n-1)-register covering; fewer registers force a\n\
     clean/dirty confusion (wrong WeakRead flag)."

(* ----- E6: wraparound ----- *)

let run_wraparound () =
  section "E6 - Bounded-tag wraparound (Introduction / boundedness)";
  Printf.printf "%-14s %-26s %-22s\n" "impl" "directed (min misses)"
    "randomized (50 seeds)";
  let impls =
    List.map
      (fun t ->
        ( Printf.sprintf "tag-mod-%d" t,
          Instances.aba_bounded_tag ~tag_bound:t ))
      [ 2; 4; 8; 16 ]
    @ Instances.all_aba ()
  in
  List.iter
    (fun (label, builder) ->
      let directed =
        match Wraparound.directed_search builder ~n:2 ~max_writes:40 with
        | Wraparound.Missed_after k ->
            Printf.sprintf "MISSED after %d writes" k
        | Wraparound.Detected_up_to k ->
            Printf.sprintf "detected all (<=%d)" k
      in
      let randomized =
        match
          Wraparound.randomized_search builder ~n:3 ~ops_per_pid:8 ~seeds:50
        with
        | { Wraparound.violation_seed = Some s; _ } ->
            Printf.sprintf "VIOLATION at seed %d" s
        | { Wraparound.violation_seed = None; histories_checked } ->
            Printf.sprintf "clean (%d histories)" histories_checked
      in
      Printf.printf "%-14s %-26s %-22s\n" label directed randomized)
    impls;
  print_endline
    "Paper: a tag modulo T misses an ABA after exactly T writes; only\n\
     unbounded tags or real detection algorithms are safe.";
  Printf.printf "\nStale-tag adversary vs announced tags (E18, tag_bits = 2):\n";
  Printf.printf "%-18s %-12s %-18s %s\n" "variant" "stale CAS" "duplicate pops"
    "scans";
  List.iter
    (fun (label, guard) ->
      let r = Wraparound.stale_tag_adversary ~guard () in
      Printf.printf "%-18s %-12s %-18s %d\n" label
        (if r.Wraparound.stale_cas_won then "WON" else "defeated")
        (if r.Wraparound.duplicate_pops = [] then "none"
         else
           String.concat ";"
             (List.map string_of_int r.Wraparound.duplicate_pops))
        r.Wraparound.crossing_scans)
    [ ("guard disabled", false); ("guard enabled", true) ];
  print_endline
    "Same schedule both times: announcing the tag and scanning on each\n\
     half-space crossing is exactly what turns the wraparound miss into\n\
     a failed CAS (DESIGN E18)."

(* ----- E2/E5: steps and tradeoff ----- *)

let run_tradeoff ns =
  section "E2/E5 - Worst-case steps t, space m, and the product m*t";
  Printf.printf "LL/SC/VL implementations (Corollary 1: m*t >= ceil((n-1)/2) \
                 when bounded):\n";
  Printf.printf "%-8s %-4s %6s %6s %6s %6s %6s %8s %9s\n" "impl" "n" "m"
    "LL" "SC" "VL" "t" "m*t" "bounded";
  List.iter
    (fun n ->
      List.iter
        (fun (label, builder) ->
          let m = Tradeoff.measure_llsc ~label builder ~n in
          Printf.printf "%-8s %-4d %6d %6d %6d %6d %6d %8d %9s\n" label n
            m.Tradeoff.space m.Tradeoff.worst_ll m.Tradeoff.worst_sc
            m.Tradeoff.worst_vl m.Tradeoff.worst_op m.Tradeoff.product
            (if m.Tradeoff.bounded then "yes" else "NO"))
        [
          ("fig3", Instances.llsc_fig3);
          ("jp", Instances.llsc_jp);
          ("moir", Instances.llsc_moir);
        ])
    ns;
  Printf.printf
    "\nABA-detecting registers (Theorem 1(b,c)):\n%-10s %-4s %6s %7s %7s %6s \
     %8s %9s\n"
    "impl" "n" "m" "DRead" "DWrite" "t" "m*t" "bounded";
  List.iter
    (fun n ->
      List.iter
        (fun (label, builder) ->
          let m = Tradeoff.measure_aba ~label builder ~n in
          Printf.printf "%-10s %-4d %6d %7d %7d %6d %8d %9s\n" label n
            m.Tradeoff.a_space m.Tradeoff.worst_dread m.Tradeoff.worst_dwrite
            m.Tradeoff.a_worst_op m.Tradeoff.a_product
            (if m.Tradeoff.a_bounded then "yes" else "NO"))
        [
          ("fig4", Instances.aba_fig4);
          ("thm2", Instances.aba_thm2);
          ("fig5", Instances.aba_fig5);
          ("fig5-jp", Instances.aba_fig5_jp);
          ("unbounded", Instances.aba_unbounded);
        ])
    ns;
  print_endline
    "Paper: fig3/thm2 sit at (m=1, t=Theta(n)); jp/fig4 at (m=n+1, t=O(1));\n\
     both products are Theta(n), matching the lower bound. moir/unbounded\n\
     beat the bound only because their base objects are unbounded."

(* ----- E2: step growth series (the O(n) 'figure') ----- *)

let run_steps ns =
  section "E2 - Worst-case step complexity vs n (series)";
  Printf.printf "%-6s %10s %10s %10s %10s\n" "n" "fig3.LL" "fig3.SC"
    "thm2.DRead" "fig4.DRead";
  List.iter
    (fun n ->
      let fig3 = Tradeoff.measure_llsc ~label:"fig3" Instances.llsc_fig3 ~n in
      let thm2 = Tradeoff.measure_aba ~label:"thm2" Instances.aba_thm2 ~n in
      let fig4 = Tradeoff.measure_aba ~label:"fig4" Instances.aba_fig4 ~n in
      Printf.printf "%-6d %10d %10d %10d %10d\n" n fig3.Tradeoff.worst_ll
        fig3.Tradeoff.worst_sc thm2.Tradeoff.worst_dread
        fig4.Tradeoff.worst_dread)
    ns;
  print_endline
    "Paper: fig3 LL worst case is 2n+1 steps, SC is O(n); fig4 DRead is\n\
     exactly 4 steps at every n (Theorem 3 vs Theorem 2)."

(* ----- E7: the stack corruption experiment ----- *)

let run_stack ~domains ~ops () =
  section "E7 - Index-based Treiber stack under node reuse (runtime)";
  let capacity = 8 in
  let variants =
    [
      ("naive (no tag)", Aba_runtime.Rt_treiber.Tag_bits 0);
      ("tag 1 bit", Aba_runtime.Rt_treiber.Tag_bits 1);
      ("tag 8 bits", Aba_runtime.Rt_treiber.Tag_bits 8);
      ("tag 40 bits", Aba_runtime.Rt_treiber.Tag_bits 40);
      ("llsc (fig3)", Aba_runtime.Rt_treiber.Llsc);
    ]
  in
  Printf.printf "domains=%d ops/domain=%d pool=%d (1 core machines rarely \
                 interleave:\nthe deterministic simulator demo below always \
                 exhibits the ABA)\n"
    domains ops capacity;
  List.iter
    (fun (label, protection) ->
      let stack =
        Aba_runtime.Rt_treiber.create ~protection ~capacity ~n:domains ()
      in
      let results =
        Aba_runtime.Harness.run_domains ~n:domains (fun d ->
            let pushed = ref [] and popped = ref [] in
            for i = 1 to ops do
              let v = (d * ops * 2) + i in
              if Aba_runtime.Rt_treiber.push stack ~pid:d v then
                pushed := v :: !pushed;
              match Aba_runtime.Rt_treiber.pop stack ~pid:d with
              | Some v -> popped := v :: !popped
              | None -> ()
            done;
            (!pushed, !popped))
      in
      let pushed = List.concat_map fst (Array.to_list results) in
      let popped = List.concat_map snd (Array.to_list results) in
      let remaining = ref [] in
      let rec drain () =
        match Aba_runtime.Rt_treiber.pop stack ~pid:0 with
        | Some v ->
            remaining := v :: !remaining;
            drain ()
        | None -> ()
      in
      drain ();
      match
        Aba_runtime.Rt_treiber.check_multiset ~pushed ~popped
          ~remaining:!remaining
      with
      | Result.Ok () ->
          Printf.printf "  %-16s OK (%d pushed, %d popped)\n" label
            (List.length pushed) (List.length popped)
      | Result.Error msg -> Printf.printf "  %-16s CORRUPTED: %s\n" label msg)
    variants;
  (* Deterministic demonstration in the simulator. *)
  print_endline "Simulator (deterministic directed ABA schedule):";
  let demo protection label =
    let sim = Aba_sim.Sim.create ~n:2 in
    let module M = (val Aba_sim.Sim_mem.make sim) in
    let module S = Aba_apps.Treiber_stack.Make (M) in
    let module Check = Aba_spec.Lin_check.Make (Aba_spec.Stack_spec) in
    let stack = S.create ~protection ~capacity:2 ~n:2 ~initial:[ 1; 2 ] in
    let apply p op () =
      match op with
      | Aba_spec.Stack_spec.Push v ->
          ignore (S.push stack ~pid:p v);
          Aba_spec.Stack_spec.Push_done
      | Aba_spec.Stack_spec.Pop ->
          Aba_spec.Stack_spec.Popped (S.pop stack ~pid:p)
    in
    let d = Aba_sim.Driver.create ~sim ~apply in
    Aba_sim.Driver.invoke d 0 Aba_spec.Stack_spec.Pop;
    Aba_sim.Driver.step d 0;
    Aba_sim.Driver.step d 0;
    List.iter
      (fun op ->
        Aba_sim.Driver.invoke d 1 op;
        Aba_sim.Driver.finish d 1)
      [
        Aba_spec.Stack_spec.Pop;
        Aba_spec.Stack_spec.Pop;
        Aba_spec.Stack_spec.Push 9;
      ];
    (* The stale CAS fires while the recycled node is head again; the final
       pop then re-delivers a long-popped value. *)
    Aba_sim.Driver.finish d 0;
    Aba_sim.Driver.invoke d 1 Aba_spec.Stack_spec.Pop;
    Aba_sim.Driver.finish d 1;
    let prefix =
      [
        Aba_primitives.Event.Invoke (0, Aba_spec.Stack_spec.Push 2);
        Aba_primitives.Event.Response (0, Aba_spec.Stack_spec.Push_done);
        Aba_primitives.Event.Invoke (0, Aba_spec.Stack_spec.Push 1);
        Aba_primitives.Event.Response (0, Aba_spec.Stack_spec.Push_done);
      ]
    in
    let ok = Check.check_ok ~n:2 (prefix @ Aba_sim.Driver.history d) in
    Printf.printf "  %-16s %s\n" label
      (if ok then "linearizable" else "CORRUPTED (non-linearizable history)")
  in
  demo Aba_apps.Treiber_stack.Naive "naive";
  demo Aba_apps.Treiber_stack.Tagged_unbounded "tagged-unbounded";
  demo (Aba_apps.Treiber_stack.Llsc Instances.llsc_fig3) "llsc (fig3)";
  print_endline
    "Paper (introduction): CAS-based structures with memory reuse corrupt\n\
     on ABA; LL/SC or unbounded tagging prevents it."


(* ----- E11: safe memory reclamation under churn ----- *)

type reclaim_row = {
  structure : string;
  scheme : string;
  domains : int;
  ops : int;
  capacity : int;
  throughput : float;  (** completed push+pop per second *)
  retired : int;
  reclaimed : int;
  peak_in_limbo : int;
  ok : bool;
}

(* The churn workload runs every structure at its capacity ceiling, so
   each scheme's grace period is what bounds how many nodes sit retired
   but unreusable: the paper's time-space tradeoff, measured as
   throughput vs peak limbo occupancy. *)
let reclaim_rows ~domains ~ops ~capacity () =
  let schemes = Aba_runtime.Rt_reclaim.all_schemes in
  let measure structure ~push ~pop ~finish ~stats_of =
    List.map
      (fun scheme ->
        let t, churn_of = stats_of scheme in
        (* Monotonic: NTP slew on the wall clock corrupts throughput. *)
        let t0 = Aba_obs.Clock.now_ns () in
        let report =
          Aba_runtime.Harness.churn ~n:domains ~ops ~push:(push t)
            ~pop:(pop t) ~finish:(finish t) ()
        in
        let dt = Aba_obs.Clock.elapsed_s t0 in
        let stats : Aba_runtime.Rt_reclaim.stats = churn_of t in
        {
          structure;
          scheme = Aba_runtime.Rt_reclaim.scheme_name scheme;
          domains;
          ops;
          capacity;
          throughput =
            float_of_int
              (report.Aba_runtime.Harness.pushed
             + report.Aba_runtime.Harness.popped)
            /. dt;
          retired = stats.Aba_runtime.Rt_reclaim.retired;
          reclaimed = stats.Aba_runtime.Rt_reclaim.reclaimed;
          peak_in_limbo = stats.Aba_runtime.Rt_reclaim.peak_in_limbo;
          ok = Result.is_ok report.Aba_runtime.Harness.outcome;
        })
      schemes
  in
  let release_and_flush rc ~pid =
    Aba_runtime.Rt_reclaim.release rc ~pid;
    Aba_runtime.Rt_reclaim.flush rc ~pid
  in
  let treiber_rows =
    measure "treiber"
      ~push:(fun s ~pid v -> Aba_runtime.Rt_treiber.push s ~pid v)
      ~pop:(fun s ~pid -> Aba_runtime.Rt_treiber.pop s ~pid)
      ~finish:(fun s ~pid ->
        match Aba_runtime.Rt_treiber.reclaimer s with
        | Some rc -> release_and_flush rc ~pid
        | None -> ())
      ~stats_of:(fun scheme ->
        let s =
          Aba_runtime.Rt_treiber.create
            ~protection:(Aba_runtime.Rt_treiber.Reclaimed scheme)
            ~capacity ~n:domains ()
        in
        (s, fun s -> Option.get (Aba_runtime.Rt_treiber.reclaim_stats s)))
  in
  let msqueue_rows =
    measure "ms-queue"
      ~push:(fun q ~pid v -> Aba_runtime.Rt_ms_queue.enqueue q ~pid v)
      ~pop:(fun q ~pid -> Aba_runtime.Rt_ms_queue.dequeue q ~pid)
      ~finish:(fun q ~pid ->
        match Aba_runtime.Rt_ms_queue.reclaimer q with
        | Some rc -> release_and_flush rc ~pid
        | None -> ())
      ~stats_of:(fun scheme ->
        let q =
          Aba_runtime.Rt_ms_queue.create
            ~protection:(Aba_runtime.Rt_ms_queue.Reclaimed scheme)
            ~capacity ~n:domains ()
        in
        (q, fun q -> Option.get (Aba_runtime.Rt_ms_queue.reclaim_stats q)))
  in
  treiber_rows @ msqueue_rows

let run_reclaim ?(capacity = 32) ~domains ~ops () =
  section "E11 - Safe memory reclamation: time vs space under churn";
  Printf.printf
    "domains=%d ops/domain=%d capacity=%d (structures run at their\n\
     capacity ceiling, so every operation recycles nodes)\n"
    domains ops capacity;
  Printf.printf "%-10s %-8s %12s %9s %10s %11s %7s\n" "structure" "scheme"
    "ops/s" "retired" "reclaimed" "peak-limbo" "audit";
  let rows = reclaim_rows ~domains ~ops ~capacity () in
  List.iter
    (fun r ->
      Printf.printf "%-10s %-8s %12.0f %9d %10d %11d %7s\n" r.structure
        r.scheme r.throughput r.retired r.reclaimed r.peak_in_limbo
        (if r.ok then "OK" else "CORRUPT"))
    rows;
  print_endline
    "Paper: hazard = plain-word baseline; epoch = cheap pins, space held\n\
     hostage by stragglers; guarded = protection through figure-4\n\
     registers and a figure-3 LL/SC free stack (Theorems 2+3) - bounded\n\
     base objects bought with extra steps per protection.";
  rows

(* ----- E9: exhaustive exploration summary ----- *)

module Aba_check = Aba_spec.Lin_check.Make (Aba_spec.Aba_register_spec)
module Llsc_check = Aba_spec.Lin_check.Make (Aba_spec.Llsc_spec)

let explore_outcome_to_string = function
  | Aba_sim.Explore.Ok k -> Printf.sprintf "verified (%d schedules)" k
  | Aba_sim.Explore.Violation (sched, _) ->
      Printf.sprintf "VIOLATION under schedule %s"
        (String.concat "," (List.map string_of_int sched))
  | Aba_sim.Explore.Budget_exhausted k ->
      Printf.sprintf "budget exhausted after %d schedules" k

let run_explore () =
  section "E9 - Exhaustive schedule exploration (all interleavings)";
  let aba_workloads =
    [
      ( "w/r same-value",
        [|
          [ Aba_spec.Aba_register_spec.DWrite 1;
            Aba_spec.Aba_register_spec.DWrite 1 ];
          [ Aba_spec.Aba_register_spec.DRead; Aba_spec.Aba_register_spec.DRead ];
        |] );
      ( "two writers",
        [|
          [ Aba_spec.Aba_register_spec.DWrite 1 ];
          [ Aba_spec.Aba_register_spec.DRead; Aba_spec.Aba_register_spec.DRead ];
          [ Aba_spec.Aba_register_spec.DWrite 1 ];
        |] );
    ]
  in
  print_endline "ABA-detecting registers:";
  List.iter
    (fun (label, builder) ->
      List.iter
        (fun (wname, scripts) ->
          let n = Array.length scripts in
          let outcome =
            Aba_sim.Explore.exhaustive
              ~make:(Workloads.aba_explore_instance builder ~n)
              ~scripts
              ~check:(Aba_check.check_ok ~n)
              ~max_schedules:2_000_000 ()
          in
          Printf.printf "  %-11s %-16s %s\n" label wname
            (explore_outcome_to_string outcome))
        aba_workloads)
    (Aba_core.Instances.all_aba ()
    @ [ ("tag-mod-2", Aba_core.Instances.aba_bounded_tag ~tag_bound:2) ]);
  (* Tag wraparound needs enough same-value writes to cycle the tag; keep
     this workload to the step-cheap implementations. *)
  let wrap_scripts =
    [|
      [
        Aba_spec.Aba_register_spec.DWrite 1;
        Aba_spec.Aba_register_spec.DWrite 1;
        Aba_spec.Aba_register_spec.DWrite 1;
      ];
      [ Aba_spec.Aba_register_spec.DRead; Aba_spec.Aba_register_spec.DRead ];
    |]
  in
  List.iter
    (fun (label, builder) ->
      let outcome =
        Aba_sim.Explore.exhaustive
          ~make:(Workloads.aba_explore_instance builder ~n:2)
          ~scripts:wrap_scripts
          ~check:(Aba_check.check_ok ~n:2)
          ~max_schedules:2_000_000 ()
      in
      Printf.printf "  %-11s %-16s %s\n" label "wraparound"
        (explore_outcome_to_string outcome))
    [
      ("unbounded", Aba_core.Instances.aba_unbounded);
      ("fig4", Aba_core.Instances.aba_fig4);
      ("fig5", Aba_core.Instances.aba_fig5);
      ("tag-mod-2", Aba_core.Instances.aba_bounded_tag ~tag_bound:2);
      ("tag-mod-3", Aba_core.Instances.aba_bounded_tag ~tag_bound:3);
    ];
  let llsc_workloads =
    [
      ( "contention",
        [|
          [ Aba_spec.Llsc_spec.Ll; Aba_spec.Llsc_spec.Sc 1 ];
          [ Aba_spec.Llsc_spec.Ll; Aba_spec.Llsc_spec.Sc 2;
            Aba_spec.Llsc_spec.Vl ];
        |] );
    ]
  in
  print_endline "LL/SC/VL objects:";
  List.iter
    (fun (label, builder) ->
      List.iter
        (fun (wname, scripts) ->
          let n = Array.length scripts in
          let outcome =
            Aba_sim.Explore.exhaustive
              ~make:(Workloads.llsc_explore_instance builder ~n)
              ~scripts
              ~check:(Llsc_check.check_ok ~n)
              ~max_schedules:2_000_000 ()
          in
          Printf.printf "  %-11s %-16s %s\n" label wname
            (explore_outcome_to_string outcome))
        llsc_workloads)
    (Aba_core.Instances.all_llsc ());
  print_endline
    "Paper: correctness is claimed for all schedules; at these sizes the\n\
     claim is machine-verified, and the flawed tag register is refuted."

(* ----- Ablations: the design choices the proofs rely on ----- *)

let run_ablation () =
  section "Ablation - figure 3's retry bound (Claim 6 needs n)";
  let scripts =
    [|
      [ Aba_spec.Llsc_spec.Ll; Aba_spec.Llsc_spec.Sc 1 ];
      [ Aba_spec.Llsc_spec.Ll; Aba_spec.Llsc_spec.Sc 1 ];
      [ Aba_spec.Llsc_spec.Sc 2 ];
    |]
  in
  let n = Array.length scripts in
  List.iter
    (fun r ->
      let builder =
        if r = n then Aba_core.Instances.llsc_fig3
        else Aba_core.Instances.llsc_fig3_retries ~retries:(fun ~n:_ -> r)
      in
      let outcome =
        Aba_sim.Explore.exhaustive
          ~make:(Workloads.llsc_explore_instance builder ~n)
          ~scripts
          ~check:(Llsc_check.check_ok ~n)
          ~max_schedules:2_000_000 ()
      in
      Printf.printf "  retries=%d (paper: %d): %s\n" r n
        (explore_outcome_to_string outcome))
    [ n; n - 1; 1; 0 ];
  section "Ablation - figure 4's sequence domain ({0..2n+1} is needed)";
  let n = 3 in
  List.iter
    (fun slack ->
      let builder =
        if slack = 0 then Aba_core.Instances.aba_fig4
        else Aba_core.Instances.aba_fig4_shrunk ~slack
      in
      let outcome =
        (* A long same-value write/read run cycles the GetSeq pool; with a
           shrunk domain it must eventually exhaust or miss a write. *)
        try
          let inst = Aba_core.Instances.aba_seq builder ~n in
          let verdict = ref "clean (200 rounds)" in
          (try
             for round = 1 to 200 do
               inst.Aba_core.Instances.dwrite 0 1;
               let _, f1 = inst.Aba_core.Instances.dread 1 in
               if not f1 then begin
                 verdict := Printf.sprintf "MISSED WRITE at round %d" round;
                 raise Exit
               end;
               let _, f2 = inst.Aba_core.Instances.dread 1 in
               if f2 then begin
                 verdict := Printf.sprintf "SPURIOUS FLAG at round %d" round;
                 raise Exit
               end
             done
           with Exit -> ());
          !verdict
        with Aba_core.Seq_pool.Exhausted -> "POOL EXHAUSTED"
      in
      Printf.printf "  seq ceiling = 2n+1-%d: %s\n" slack outcome)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
