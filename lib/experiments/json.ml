(** Re-export: the JSON builder lives in {!Aba_obs.Json} since the
    observability layer (which sits below this library) emits JSON too;
    existing [Aba_experiments.Json] users are unaffected. *)
include Aba_obs.Json
