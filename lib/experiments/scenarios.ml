open Aba_primitives
open Aba_core
module Aba_op = Aba_spec.Aba_register_spec
module Llsc_op = Aba_spec.Llsc_spec
module Explore = Aba_sim.Explore
module Slot = Aba_runtime.Elimination.Slot

module Aba_check = Aba_spec.Lin_check.Make (Aba_spec.Aba_register_spec)
module Llsc_check = Aba_spec.Lin_check.Make (Aba_spec.Llsc_spec)

(* The ring scenario's queue has capacity 2; the capacity is part of the
   object's identity, so the spec is instantiated once, at that size. *)
module Ring2_spec = Aba_spec.Ring_spec.Make (struct
  let capacity = 2
end)

module Ring2_check = Aba_spec.Lin_check.Make (Ring2_spec)

type report = {
  name : string;
  description : string;
  n : int;
  expect_violation : bool;
  verdict : string;
  passed : bool;
  schedules : int;
  violation_schedule : int list option;
  stats : Explore.dpor_stats;
}

type t = {
  id : string;
  about : string;
  n_procs : int;
  expects_violation : bool;
  heavy : bool;
  run : ?max_schedules:int -> ?preemption_bound:int -> unit -> report;
}

let run_dpor ~name ~description ~n ~expect_violation ?(crash_bound = 0)
    ?on_crash ~make ~scripts ~check ?(max_schedules = 500_000)
    ?preemption_bound () =
  let { Explore.verdict; stats } =
    Explore.dpor ~make ~scripts ~check ~max_schedules ?preemption_bound
      ~crash_bound ?on_crash ()
  in
  let verdict_s, schedules, violation_schedule =
    match verdict with
    | Explore.Ok k -> ("ok", k, None)
    | Explore.Violation (sched, _) ->
        ("violation", stats.Explore.explored, Some sched)
    | Explore.Budget_exhausted k -> ("budget-exhausted", k, None)
  in
  let passed =
    if expect_violation then verdict_s = "violation"
    else verdict_s <> "violation"
  in
  {
    name;
    description;
    n;
    expect_violation;
    verdict = verdict_s;
    passed;
    schedules;
    violation_schedule;
    stats;
  }

(* ----- register / LL/SC scenarios ----- *)

let aba_scenario ~id ~about ?(heavy = false) ?(expects_violation = false)
    ?(combining = false) builder scripts =
  let n = Array.length scripts in
  let make () =
    let sim = Aba_sim.Sim.create ~n in
    let inst = Instances.aba_in_sim ~combining builder sim ~n in
    {
      Explore.driver =
        Aba_sim.Driver.create ~sim ~apply:(Workloads.apply_aba inst);
    }
  in
  {
    id;
    about;
    n_procs = n;
    expects_violation;
    heavy;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n
          ~expect_violation:expects_violation ~make ~scripts
          ~check:(Aba_check.check_ok ~n) ?max_schedules ?preemption_bound ());
  }

let llsc_scenario ~id ~about ?(heavy = false) builder scripts =
  let n = Array.length scripts in
  {
    id;
    about;
    n_procs = n;
    expects_violation = false;
    heavy;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n ~expect_violation:false
          ~make:(Workloads.llsc_explore_instance builder ~n)
          ~scripts
          ~check:(Llsc_check.check_ok ~n)
          ?max_schedules ?preemption_bound ());
  }

(* ----- elimination slot scenario -----

   A single exchanger slot running the {!Aba_runtime.Elimination} protocol
   ({!Slot} codec, bounded poll window, withdraw-by-CAS, waiter-only
   reset), rebuilt over simulator memory so every transition is a
   schedulable step.  The production exchanger runs the same state machine
   on raw atomics; this is its step-model twin. *)

type xop = X_push of int | X_pop
type xres = X_pushed of bool | X_popped of int option

let exchanger_instance ~window ~n () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module M = (val m : Mem_intf.S) in
  let slot =
    M.make_cas ~writable:true ~name:"x.slot" ~show:string_of_int
      (Slot.encode Slot.Empty)
  in
  let enc = Slot.encode in
  (* The waiter owns EXCHANGED exclusively, so its reset is a plain
     write, exactly as in the production exchanger. *)
  let push v =
    let s0 = M.cas_read slot in
    match Slot.decode s0 with
    | Slot.Waiting_pop ->
        M.cas slot ~expect:s0 ~update:(enc (Slot.Exchanged v))
    | Slot.Empty ->
        if M.cas slot ~expect:s0 ~update:(enc (Slot.Waiting_push v)) then begin
          let taken = ref false and gone = ref false and polls = ref 0 in
          while not (!taken || !gone) do
            match Slot.decode (M.cas_read slot) with
            | Slot.Exchanged _ ->
                M.cas_write slot (enc Slot.Empty);
                taken := true
            | _ ->
                incr polls;
                if !polls >= window then
                  if
                    M.cas slot
                      ~expect:(enc (Slot.Waiting_push v))
                      ~update:(enc Slot.Empty)
                  then gone := true
                  else begin
                    (* the withdraw lost: a pop moved us to EXCHANGED *)
                    M.cas_write slot (enc Slot.Empty);
                    taken := true
                  end
          done;
          !taken
        end
        else false
    | Slot.Waiting_push _ | Slot.Exchanged _ -> false
  in
  let pop () =
    let s0 = M.cas_read slot in
    match Slot.decode s0 with
    | Slot.Waiting_push v ->
        if M.cas slot ~expect:s0 ~update:(enc (Slot.Exchanged v)) then Some v
        else None
    | Slot.Empty ->
        if M.cas slot ~expect:s0 ~update:(enc Slot.Waiting_pop) then begin
          let res = ref None and gone = ref false and polls = ref 0 in
          while not (Option.is_some !res || !gone) do
            match Slot.decode (M.cas_read slot) with
            | Slot.Exchanged v ->
                M.cas_write slot (enc Slot.Empty);
                res := Some v
            | _ ->
                incr polls;
                if !polls >= window then
                  if
                    M.cas slot ~expect:(enc Slot.Waiting_pop)
                      ~update:(enc Slot.Empty)
                  then gone := true
          done;
          !res
        end
        else None
    | Slot.Waiting_pop | Slot.Exchanged _ -> None
  in
  let apply _pid op () =
    match op with
    | X_push v -> X_pushed (push v)
    | X_pop -> X_popped (pop ())
  in
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

(* Pairing invariant, invariant across equivalent schedules: the multiset
   of values taken by pops equals the multiset of values whose push
   reported "handed over".  A value can never be both withdrawn and
   consumed, or consumed twice. *)
let exchange_check h =
  let given = ref [] and taken = ref [] in
  List.iter
    (fun (_, op, res) ->
      match (op, res) with
      | X_push v, Some (X_pushed true) -> given := v :: !given
      | X_pop, Some (X_popped (Some v)) -> taken := v :: !taken
      | _ -> ())
    (Event.ops_of h);
  List.sort compare !given = List.sort compare !taken

let exchanger_scenario ~id ~about ~window scripts =
  let n = Array.length scripts in
  {
    id;
    about;
    n_procs = n;
    expects_violation = false;
    heavy = false;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n ~expect_violation:false
          ~make:(exchanger_instance ~window ~n)
          ~scripts ~check:exchange_check ?max_schedules ?preemption_bound ());
  }

(* ----- reclamation scenarios -----

   {!Aba_reclaim.Reclaim.Make} instantiated over simulator-backed paper
   objects: the free-stack LL/SC word and the Figure-4 announcement
   registers execute as schedulable steps.  Hazard and Epoch keep their
   internals on raw atomics, so for them the explorer certifies the
   operation-order interleavings only; Guarded is the step-level one. *)

type rop = R_alloc | R_retire | R_flush
type rres = R_node of int option | R_retired of int option | R_flushed

let reclaim_instance ~scheme ~llsc_builder ~capacity ~n () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module L = struct
    type t = Instances.llsc

    let create ~n ~init = Instances.llsc_with_mem ~init llsc_builder m ~n
    let ll (t : t) ~pid = t.Instances.ll pid
    let sc (t : t) ~pid v = t.Instances.sc pid v
  end in
  let module D = struct
    (* The register builders fix the initial value at 0; shifting the
       domain by [init] makes the fresh register read back [init] (-1,
       the empty announcement) and keeps stored values non-negative. *)
    type t = { a : Instances.aba; off : int }

    let create ~n ~init =
      { a = Instances.aba_with_mem Instances.aba_fig4 m ~n; off = init }

    let dwrite t ~pid v = t.a.Instances.dwrite pid (v - t.off)

    let dread t ~pid =
      let x, flag = t.a.Instances.dread pid in
      (x + t.off, flag)
  end in
  let module R = Aba_reclaim.Reclaim.Make (L) (D) in
  (* Guarded seeds its free stack through LL/SC — simulator steps, which
     only exist under a handler: run the construction as a solo op. *)
  let pr =
    Aba_sim.Sim.invoke sim 0 (fun () -> R.create ~slots:1 ~n ~capacity scheme)
  in
  Aba_sim.Sim.run_solo sim 0;
  let r = Option.get (Aba_sim.Sim.result pr) in
  let held = Array.make n [] in
  let apply pid op () =
    match op with
    | R_alloc -> (
        match R.alloc r ~pid with
        | Some i ->
            held.(pid) <- i :: held.(pid);
            R_node (Some i)
        | None -> R_node None)
    | R_retire -> (
        match held.(pid) with
        | [] -> R_retired None
        | i :: rest ->
            held.(pid) <- rest;
            R.retire r ~pid i;
            R_retired (Some i))
    | R_flush ->
        R.flush r ~pid;
        R_flushed
  in
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

let rec remove_first x = function
  | [] -> []
  | y :: rest -> if x = y then rest else y :: remove_first x rest

(* Hold exclusivity: in response order, a node is never handed out while
   some process still holds it un-retired, and names stay in range. *)
let reclaim_check capacity h =
  let live = ref [] in
  let ok = ref true in
  List.iter
    (function
      | Event.Response (_, R_node (Some i)) ->
          if i < 0 || i >= capacity || List.mem i !live then ok := false
          else live := i :: !live
      | Event.Response (_, R_retired (Some i)) -> live := remove_first i !live
      | _ -> ())
    h;
  !ok

let reclaim_scenario ~id ~about ?(heavy = false) ~scheme ~llsc_builder
    ~capacity scripts =
  let n = Array.length scripts in
  {
    id;
    about;
    n_procs = n;
    expects_violation = false;
    heavy;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n ~expect_violation:false
          ~make:(reclaim_instance ~scheme ~llsc_builder ~capacity ~n)
          ~scripts
          ~check:(reclaim_check capacity)
          ?max_schedules ?preemption_bound ());
  }

(* ----- ring queue scenario ----- *)

let ring_instance ~seq_bits ~capacity ~n () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module RQ = Aba_queue.Ring_queue.Make ((val m : Mem_intf.S)) in
  let q = RQ.create ~seq_bits ~capacity ~n () in
  let apply pid op () =
    match op with
    | Ring2_spec.Enqueue v -> Ring2_spec.Enqueued (RQ.try_enqueue q ~pid v)
    | Ring2_spec.Dequeue -> Ring2_spec.Dequeued (RQ.try_dequeue q ~pid)
  in
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

let ring_scenario ~id ~about ?(heavy = false) ~seq_bits ~capacity scripts =
  let n = Array.length scripts in
  if capacity <> 2 then invalid_arg "ring_scenario: spec is capacity-2";
  {
    id;
    about;
    n_procs = n;
    expects_violation = false;
    heavy;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n ~expect_violation:false
          ~make:(ring_instance ~seq_bits ~capacity ~n)
          ~scripts
          ~check:(Ring2_check.check_ok ~n)
          ?max_schedules ?preemption_bound ());
  }

(* ----- sharded service scenario -----

   The real {!Aba_apps.Service.Shard_router} functor over shards whose
   memory is simulator-backed: every head CAS and node read of every
   shard is a schedulable step, so the explorer drives genuine
   cross-shard interleavings through the router's steal path.  The
   router's own bookkeeping (depth estimates, steal counters) lives on
   plain OCaml state, so — like the hazard/epoch reclaim scenarios —
   this certifies the shard-step interleavings, not interleavings inside
   the bookkeeping itself. *)

type sop = S_push of int * int | S_pop of int  (* payloads carry the key *)
type sres = S_pushed of bool | S_popped of int option

(* A key routed to shard [s]: searched, not assumed — the splitmix64 hash
   is opaque here. *)
let service_key ~nshards s =
  let rec find k =
    if Aba_apps.Service.hash_key k mod nshards = s then k else find (k + 1)
  in
  find 0

let service_instance ~nshards ~capacity ~n () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module TS = Aba_apps.Treiber_stack.Make ((val m : Mem_intf.S)) in
  let module R = Aba_apps.Service.Shard_router (struct
    type t = TS.t

    let push = TS.push
    let pop = TS.pop
  end) in
  let shards =
    Array.init nshards (fun _ ->
        TS.create ~protection:(Aba_apps.Treiber_stack.Tagged 4) ~capacity ~n
          ~initial:[])
  in
  let r = R.create ~steal:true ~steal_batch:2 ~shards ~n () in
  let apply pid op () =
    match op with
    | S_push (key, v) -> S_pushed (R.push r ~pid ~key v)
    | S_pop key -> S_popped (R.pop r ~pid ~key)
  in
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

(* The steal audit, schedule by schedule: values taken by pops must be a
   sub-multiset of values whose push succeeded — a steal relocates items
   between shards, it must never duplicate or invent one. *)
let service_check h =
  let pushed = ref [] and popped = ref [] in
  List.iter
    (fun (_, op, res) ->
      match (op, res) with
      | S_push (_, v), Some (S_pushed true) -> pushed := v :: !pushed
      | S_pop _, Some (S_popped (Some v)) -> popped := v :: !popped
      | _ -> ())
    (Event.ops_of h);
  let remaining =
    List.fold_left (fun acc v -> remove_first v acc) !pushed !popped
  in
  List.length remaining = List.length !pushed - List.length !popped

let service_scenario ~id ~about ?(heavy = false) ~nshards ~capacity scripts =
  let n = Array.length scripts in
  {
    id;
    about;
    n_procs = n;
    expects_violation = false;
    heavy;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n ~expect_violation:false
          ~make:(service_instance ~nshards ~capacity ~n)
          ~scripts ~check:service_check ?max_schedules ?preemption_bound ());
  }

(* ----- announced-tags scenarios -----

   {!Aba_core.Announced_tags} over simulator memory at tag width 2 — the
   smallest width where the wraparound adversary fits in a handful of
   operations.  A three-node Treiber stack (0 -> 1 -> 2) hangs off the
   double-word head; a reader splits its pop into a protect step and a
   resume step so the explorer can park it on a stale witness while the
   writer drains the stack, pushes the old top back (wrapping the tag
   space), and drains again.  Every operation is single-attempt, so no
   interleaving can loop: a [Blocked] or [Contended] outcome is just a
   failed op.  The plain variant ([guard:false], folklore mod-4 tags)
   must exhibit a duplicate pop on some schedule; the guarded variant
   must survive every schedule of the same scripts. *)

type top = T_pop | T_push of int | T_protect | T_resume

type tres =
  | T_popped of int option
  | T_pushed of bool
  | T_witness of int * int
  | T_resumed of int option

let announced_instance ~guard ~n () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module M = (val m : Mem_intf.S) in
  let module G = Announced_tags.Make (M) in
  let head = G.create ~guard ~tag_bits:2 ~name:"ann" ~n ~init:0 () in
  let next = [| 1; 2; -1 |] in
  (* The reader's stalled witness: value, tag and successor captured at
     protect time, consumed by the resume step. *)
  let witness = ref (-1, 0, -1) in
  let pop pid =
    let v, g = G.protect head ~pid in
    if v = -1 then begin
      G.clear head ~pid;
      None
    end
    else begin
      let r =
        match
          G.guarded_cas head ~expect:v ~expect_tag:g ~update:next.(v)
        with
        | Announced_tags.Installed -> Some v
        | Announced_tags.Contended | Announced_tags.Blocked -> None
      in
      G.clear head ~pid;
      r
    end
  in
  let push v =
    let h, g = G.peek head in
    next.(v) <- h;
    G.guarded_cas head ~expect:h ~expect_tag:g ~update:v
    = Announced_tags.Installed
  in
  let apply pid op () =
    match op with
    | T_pop -> T_popped (pop pid)
    | T_push v -> T_pushed (push v)
    | T_protect ->
        let v, g = G.protect head ~pid in
        witness := (v, g, if v >= 0 then next.(v) else -1);
        T_witness (v, g)
    | T_resume ->
        let v, g, s = !witness in
        let r =
          if v = -1 then None
          else
            match G.guarded_cas head ~expect:v ~expect_tag:g ~update:s with
            | Announced_tags.Installed -> Some v
            | Announced_tags.Contended | Announced_tags.Blocked -> None
        in
        G.clear head ~pid;
        T_resumed r
  in
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

(* Multiset audit: no value may be popped more often than it was pushed
   (three initial nodes plus the successful script pushes).  A duplicate
   pop is exactly the ABA corruption the tag protocol must prevent. *)
let announced_check h =
  let pushed = ref [ 0; 1; 2 ] and popped = ref [] in
  List.iter
    (fun (_, op, res) ->
      match (op, res) with
      | T_push v, Some (T_pushed true) -> pushed := v :: !pushed
      | T_pop, Some (T_popped (Some v)) -> popped := v :: !popped
      | T_resume, Some (T_resumed (Some v)) -> popped := v :: !popped
      | _ -> ())
    (Event.ops_of h);
  let count x l = List.length (List.filter (Int.equal x) l) in
  List.for_all (fun v -> count v !popped <= count v !pushed) !popped

let announced_scenario ~id ~about ~guard ~expects_violation scripts =
  let n = Array.length scripts in
  {
    id;
    about;
    n_procs = n;
    expects_violation;
    heavy = false;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n
          ~expect_violation:expects_violation
          ~make:(announced_instance ~guard ~n)
          ~scripts ~check:announced_check ?max_schedules ?preemption_bound ());
  }

(* Writer: drain the stack, push the old top back (the fourth install —
   one full lap of the 2-bit tag space), drain again; the trailing pops
   are what surface a corrupt head as duplicate values. *)
let announced_scripts =
  [|
    [ T_pop; T_pop; T_pop; T_push 0; T_pop; T_pop ];
    [ T_protect; T_resume ];
  |]

(* ----- crash-recovery scenarios -----

   {!Aba_core.Detectable} under the explorer's crash moves: at every
   node any in-flight operation may be killed ({!Aba_sim.Sim.crash}
   erases its program state, every cell survives) and the process comes
   back running its recovery program.  The check needs the object's
   final state, which no surviving response carries, so [make] parks a
   solo reader closure in a ref and the leaf check invokes it as a
   zero-contention operation of pid 0 — sound because every process is
   idle at a leaf and the explorer rebuilds the instance from scratch
   before its next advance, discarding the probe's execution. *)

type cop = C_inc | C_recover
type cres = C_got of int | C_recovered of int option

let counter_instance ~naive ~n final () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module M = (val m : Mem_intf.S) in
  let module D = Detectable.Make (M) in
  let inc, recover, read =
    if naive then
      let c = D.Naive_counter.create ~name:"nctr" ~n () in
      ( (fun pid -> D.Naive_counter.inc c ~pid),
        (fun pid -> D.Naive_counter.recover c ~pid),
        fun () -> D.Naive_counter.read c )
    else
      let c = D.Counter.create ~name:"ctr" ~n () in
      ( (fun pid -> D.Counter.inc c ~pid),
        (fun pid -> D.Counter.recover c ~pid),
        fun () -> D.Counter.read c )
  in
  let apply pid op () =
    match op with
    | C_inc -> C_got (inc pid)
    | C_recover -> C_recovered (recover pid)
  in
  final :=
    (fun () ->
      let pr = Aba_sim.Sim.invoke sim 0 read in
      Aba_sim.Sim.run_solo sim 0;
      Option.get (Aba_sim.Sim.result pr));
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

(* Exactly-once, leaf by leaf: the final counter value must equal the
   number of increments that took effect — completed [C_inc]s plus
   recoveries that resolved an in-flight one (the crashed [C_inc]'s own
   invoke stays unmatched, so the pair counts its effect exactly once).
   The naive mutant re-runs an increment that had already landed on some
   crash placement, overshooting by one. *)
let counter_check final h =
  let effective = ref 0 in
  List.iter
    (fun (_, op, res) ->
      match (op, res) with
      | C_inc, Some (C_got _) -> incr effective
      | C_recover, Some (C_recovered (Some _)) -> incr effective
      | _ -> ())
    (Event.ops_of h);
  !final () = !effective

let counter_crash_scenario ~id ~about ~naive ~expects_violation scripts =
  let n = Array.length scripts in
  let final = ref (fun () -> -1) in
  {
    id;
    about;
    n_procs = n;
    expects_violation;
    heavy = false;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n
          ~expect_violation:expects_violation ~crash_bound:1
          ~on_crash:(fun _ -> [ C_recover ])
          ~make:(counter_instance ~naive ~n final)
          ~scripts
          ~check:(counter_check final)
          ?max_schedules ?preemption_bound ());
  }

type kop = K_push of int | K_pop | K_recover

type kres =
  | K_done
  | K_popped of int option
  | K_recovered of Detectable.stack_recovery

let stack_instance ~n final () =
  let sim = Aba_sim.Sim.create ~n in
  let m = Aba_sim.Sim_mem.make sim in
  let module M = (val m : Mem_intf.S) in
  let module D = Detectable.Make (M) in
  (* Tag_bits head: the cheapest protection in steps, keeping the crash
     interleaving space explorable; capacity covers the scripts, one
     recovery re-run, and the leaf probe's drain. *)
  let st =
    D.Stack.create ~protection:Detectable.Tag_bits ~name:"dstk" ~n
      ~capacity:8 ()
  in
  let apply pid op () =
    match op with
    | K_push v ->
        D.Stack.push st ~pid v;
        K_done
    | K_pop -> K_popped (D.Stack.pop st ~pid)
    | K_recover -> K_recovered (D.Stack.recover st ~pid)
  in
  final :=
    (fun () ->
      let drain () =
        let acc = ref [] in
        let rec go () =
          match D.Stack.pop st ~pid:0 with
          | Some v ->
              acc := v :: !acc;
              go ()
          | None -> !acc
        in
        go ()
      in
      let pr = Aba_sim.Sim.invoke sim 0 drain in
      Aba_sim.Sim.run_solo sim 0;
      Option.get (Aba_sim.Sim.result pr));
  { Explore.driver = Aba_sim.Driver.create ~sim ~apply }

(* Exactly-once over the whole stack: values popped by operations or
   recoveries plus values still in the stack at the leaf must equal, as
   a multiset, the values pushed by completed or recovered pushes. *)
let stack_check final h =
  let pushed = ref [] and popped = ref [] in
  List.iter
    (fun (_, op, res) ->
      match (op, res) with
      | K_push v, Some K_done -> pushed := v :: !pushed
      | K_pop, Some (K_popped (Some v)) -> popped := v :: !popped
      | K_recover, Some (K_recovered r) -> (
          match r with
          | Detectable.R_pushed v -> pushed := v :: !pushed
          | Detectable.R_popped (Some v) -> popped := v :: !popped
          | Detectable.R_popped None | Detectable.R_none -> ())
      | _ -> ())
    (Event.ops_of h);
  let remaining = !final () in
  List.sort compare (remaining @ !popped) = List.sort compare !pushed

let stack_crash_scenario ~id ~about scripts =
  let n = Array.length scripts in
  let final = ref (fun () -> []) in
  {
    id;
    about;
    n_procs = n;
    expects_violation = false;
    heavy = false;
    run =
      (fun ?max_schedules ?preemption_bound () ->
        run_dpor ~name:id ~description:about ~n ~expect_violation:false
          ~crash_bound:1
          ~on_crash:(fun _ -> [ K_recover ])
          ~make:(stack_instance ~n final)
          ~scripts
          ~check:(stack_check final)
          ?max_schedules ?preemption_bound ());
  }

(* ----- the suite ----- *)

let all () =
  [
    aba_scenario ~id:"fig4-wr"
      ~about:"Figure 4 register, writer vs reader, same-value writes"
      Instances.aba_fig4
      [| [ Aba_op.DWrite 1; Aba_op.DWrite 1 ]; [ Aba_op.DRead; Aba_op.DRead ] |];
    aba_scenario ~id:"fig4-3proc"
      ~about:"Figure 4 register, two writers and a reader (3 processes)"
      Instances.aba_fig4
      [| [ Aba_op.DWrite 1 ]; [ Aba_op.DRead; Aba_op.DRead ]; [ Aba_op.DWrite 1 ] |];
    aba_scenario ~id:"fig4-rand-seed42"
      ~about:"Figure 4 register, random workload from seed 42"
      Instances.aba_fig4
      (Workloads.random_aba_scripts
         (Random.State.make [| 42 |])
         ~n:2 ~ops_per_pid:2);
    aba_scenario ~id:"aba-unsafe-tag2"
      ~about:
        "mutation: mod-2 tag wraps under three same-value writes — must \
         still be caught after reduction" ~expects_violation:true
      (Instances.aba_bounded_tag ~tag_bound:2)
      [|
        [ Aba_op.DWrite 1; Aba_op.DWrite 1; Aba_op.DWrite 1 ];
        [ Aba_op.DRead; Aba_op.DRead ];
      |];
    llsc_scenario ~id:"fig3-llsc"
      ~about:"Figure 3 LL/SC from one bounded CAS, two contending processes"
      Instances.llsc_fig3
      [| [ Llsc_op.Ll; Llsc_op.Sc 1 ]; [ Llsc_op.Ll; Llsc_op.Sc 2; Llsc_op.Vl ] |];
    llsc_scenario ~id:"llsc-jp-3proc"
      ~about:"Jayanti–Petrovic LL/SC, three-way contention" ~heavy:true
      Instances.llsc_jp
      [|
        [ Llsc_op.Ll; Llsc_op.Sc 1 ];
        [ Llsc_op.Ll; Llsc_op.Sc 1 ];
        [ Llsc_op.Sc 2 ];
      |];
    aba_scenario ~id:"combining-fig4"
      ~about:"Figure 4 register behind the combining read cache"
      ~combining:true Instances.aba_fig4
      [| [ Aba_op.DWrite 1; Aba_op.DWrite 1 ]; [ Aba_op.DRead; Aba_op.DRead ] |];
    exchanger_scenario ~id:"elimination-slot"
      ~about:
        "one elimination slot (Slot codec protocol) under a push pair vs a \
         pop pair" ~window:2
      [| [ X_push 1; X_push 2 ]; [ X_pop; X_pop ] |];
    reclaim_scenario ~id:"hazard-reclaim"
      ~about:"hazard-pointer reclaimer, alloc/retire interleavings"
      ~scheme:Aba_reclaim.Reclaim.Hazard ~llsc_builder:Instances.llsc_native
      ~capacity:2
      [| [ R_alloc; R_retire; R_alloc ]; [ R_alloc; R_flush ] |];
    reclaim_scenario ~id:"epoch-reclaim"
      ~about:"epoch-based reclaimer, alloc/retire interleavings"
      ~scheme:Aba_reclaim.Reclaim.Epoch ~llsc_builder:Instances.llsc_native
      ~capacity:2
      [| [ R_alloc; R_retire; R_alloc ]; [ R_alloc; R_flush ] |];
    reclaim_scenario ~id:"guarded-reclaim"
      ~about:
        "guarded reclaimer: free stack through a simulated LL/SC word, \
         announcements through Figure-4 registers" ~heavy:true
      ~scheme:Aba_reclaim.Reclaim.Guarded ~llsc_builder:Instances.llsc_native
      ~capacity:1
      [| [ R_alloc; R_retire ]; [ R_alloc ] |];
    (let nshards = 2 in
     let k0 = service_key ~nshards 0 and k1 = service_key ~nshards 1 in
     service_scenario ~id:"service-2shard-steal"
       ~about:
         "2-shard stack router over simulated shards: a pusher keeps one \
          shard hot while a popper on the other shard's key forces the \
          bulk-steal path; stolen values must never duplicate"
       ~nshards ~capacity:3
       [| [ S_push (k0, 1); S_push (k0, 2) ]; [ S_pop k1; S_pop k1 ] |]);
    announced_scenario ~id:"announced-plain-wrap"
      ~about:
        "mutation: plain 2-bit tags on the double-word head — a stalled \
         pop's witness wraps around and some schedule double-pops"
      ~guard:false ~expects_violation:true announced_scripts;
    announced_scenario ~id:"announced-guarded-wrap"
      ~about:
        "announcement-guarded 2-bit tags survive every schedule of the \
         same wraparound scripts: crossings scan the slots and skip \
         announced tags" ~guard:true ~expects_violation:false
      announced_scripts;
    counter_crash_scenario ~id:"detectable-counter-crash"
      ~about:
        "detectable fetch-and-increment under one crash move per \
         schedule: recovery resolves the interrupted increment exactly \
         once at every crash placement" ~naive:false
      ~expects_violation:false
      [| [ C_inc ]; [ C_inc ] |];
    counter_crash_scenario ~id:"naive-counter-crash"
      ~about:
        "mutation: counter without provenance or ack handover — recovery \
         re-runs an increment that already landed when the crash falls \
         between its CAS and its Done write" ~naive:true
      ~expects_violation:true
      [| [ C_inc ]; [ C_inc ] |];
    stack_crash_scenario ~id:"detectable-stack-crash"
      ~about:
        "detectable Treiber stack (tagged head, per-(pid,seq) arena) \
         under one crash move per schedule: pushes and pops resolve \
         exactly once across every crash placement"
      [| [ K_push 1 ]; [ K_push 2; K_pop ] |];
    ring_scenario ~id:"ring-4bit"
      ~about:
        "bounded MPMC ring with 4-bit slot sequence tags, capacity 2, \
         enqueue pair vs dequeue pair" ~heavy:true ~seq_bits:4 ~capacity:2
      [|
        [ Ring2_spec.Enqueue 1; Ring2_spec.Enqueue 2 ];
        [ Ring2_spec.Dequeue; Ring2_spec.Dequeue ];
      |];
  ]

let names () = List.map (fun s -> s.id) (all ())
let find id = List.find_opt (fun s -> s.id = id) (all ())

let run_suite ?(smoke = false) ?max_schedules ?preemption_bound () =
  let scenarios =
    List.filter (fun s -> (not smoke) || not s.heavy) (all ())
  in
  List.map (fun s -> s.run ?max_schedules ?preemption_bound ()) scenarios

(* ----- JSON export ----- *)

let stats_to_json (s : Explore.dpor_stats) =
  let reduction_factor =
    match s.Explore.schedule_bound with
    | Some b when s.Explore.explored > 0 ->
        Json.Float (float_of_int b /. float_of_int s.Explore.explored)
    | _ -> Json.Null
  in
  Json.Obj
    [
      ("explored", Json.Int s.Explore.explored);
      ( "schedule_bound",
        match s.Explore.schedule_bound with
        | None -> Json.Null
        | Some b -> Json.Int b );
      ("reduction_factor", reduction_factor);
      ("sleep_set_prunes", Json.Int s.Explore.sleep_set_prunes);
      ("preemption_prunes", Json.Int s.Explore.preemption_prunes);
      ("races_detected", Json.Int s.Explore.races_detected);
      ("crashes_injected", Json.Int s.Explore.crashes_injected);
      ("max_depth_reached", Json.Int s.Explore.max_depth_reached);
      ("rebuilds", Json.Int s.Explore.rebuilds);
      ("actions_executed", Json.Int s.Explore.actions_executed);
      ("actions_replayed", Json.Int s.Explore.actions_replayed);
    ]

let report_to_json r =
  Json.Obj
    [
      ("name", Json.Str r.name);
      ("description", Json.Str r.description);
      ("n", Json.Int r.n);
      ("expect_violation", Json.Bool r.expect_violation);
      ("verdict", Json.Str r.verdict);
      ("passed", Json.Bool r.passed);
      ("schedules", Json.Int r.schedules);
      ( "violation_schedule",
        match r.violation_schedule with
        | None -> Json.Null
        | Some s -> Json.Arr (List.map (fun p -> Json.Int p) s) );
      ("stats", stats_to_json r.stats);
    ]

let suite_to_json reports =
  Json.Obj
    [
      ("suite", Json.Str "model-check");
      ("all_passed", Json.Bool (List.for_all (fun r -> r.passed) reports));
      ("scenarios", Json.Arr (List.map report_to_json reports));
    ]
