(** Open-loop benchmark of the sharded service tier.

    Each cell drives {!Aba_apps.Service} with a Poisson arrival process:
    inter-arrival gaps are exponential draws from the per-pid
    deterministic stream ({!Aba_primitives.Rand}), an op waits until its
    intended arrival instant but is {e never} delayed by the service
    being slow — so when the service falls behind, the backlog shows up
    as queueing delay in the end-to-end latency, exactly as a saturated
    production service would experience it.  Latency is measured from
    the intended arrival, not the actual start.

    Every cell yields one "e2e" row (client-observed percentiles, exact
    SLO attainment), one "shards" row (all shard-operation service
    times, merged across shards via {!Aba_obs.Histogram.merge}) and one
    "shard<i>" row per shard (per-shard imbalance made visible).  The
    sweep crosses shard count x domain count x steal x combining, with
    the 1-shard steal-off cells as the single-instance baseline, and
    appends skewed-key ("hot") cells at the largest shard count — the
    steal on/off pair whose p999 gap is the work-stealing claim. *)

type row = {
  sv_structure : string;  (** stack | queue *)
  sv_scope : string;  (** e2e | shards | shard<i> *)
  sv_shards : int;
  sv_domains : int;
  sv_steal : bool;
  sv_combining : bool;
  sv_skew : string;  (** uniform | hot *)
  sv_ops : int;  (** per-domain operation count *)
  sv_count : int;  (** samples behind this row's percentiles *)
  sv_throughput : float;  (** whole-cell ops per second *)
  sv_p50 : int;
  sv_p90 : int;
  sv_p99 : int;
  sv_p999 : int;
  sv_slo_ns : int;
  sv_slo : float;
      (** fraction of ops within [slo_ns]: exact on e2e rows,
          bucket-conservative ({!Aba_obs.Histogram.fraction_le}) on the
          histogram-derived rows *)
  sv_steals : int;
  sv_stolen : int;
  sv_spills : int;
  sv_batched : int;  (** flat-combining ops served in others' rounds *)
}

val cell :
  ?quiet:bool ->
  structure:string ->
  shards:int ->
  domains:int ->
  steal:bool ->
  combining:bool ->
  skew:string ->
  ops:int ->
  slo_ns:int ->
  arrival_ns:int ->
  unit ->
  row list
(** One configuration, printed and returned as its scope rows. *)

val sweep :
  ?quiet:bool ->
  ?slo_ns:int ->
  ?arrival_ns:int ->
  structures:string list ->
  shards:int list ->
  domains:int list ->
  ops:int ->
  unit ->
  row list
(** The full grid (see above).  [slo_ns] defaults to 10000 (10 us),
    [arrival_ns] (mean inter-arrival per domain) to 1000; [quiet]
    suppresses the human-readable table (pure-JSON callers). *)

val row_to_json : row -> Json.t
