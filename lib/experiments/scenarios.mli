(** Named model-check scenarios: every concurrent structure in the
    library pointed at the DPOR engine at a small, fixed configuration.

    Each scenario packages a deterministic instance builder, a fixed
    (seeded where random) per-process script, and a correctness check —
    linearizability against the matching sequential spec, or a
    trace-invariant structural invariant (exchange pairing, reclamation
    hold-exclusivity).  {!Explore.dpor} then certifies the workload over
    a representative schedule set and reports the reduction statistics.

    Coverage note: scenarios whose shared state lives entirely in
    simulator cells (the Figure 3/4 objects, the guarded reclaimer's
    LL/SC word and announcement registers, the ring queue, the
    elimination slot) are explored at shared-memory-step granularity.
    Structures with raw-atomic internals (hazard/epoch reclaimers, the
    combining claim word) complete those accesses inside one action, so
    for them the explorer certifies operation-order interleavings. *)

module Explore = Aba_sim.Explore

type report = {
  name : string;
  description : string;
  n : int;  (** number of processes *)
  expect_violation : bool;
  verdict : string;  (** ["ok"], ["violation"] or ["budget-exhausted"] *)
  passed : bool;
      (** the verdict matched the expectation; [budget-exhausted] counts
          as passing a no-violation scenario (bounded certification) *)
  schedules : int;
  violation_schedule : int list option;
  stats : Explore.dpor_stats;
}

type t = {
  id : string;
  about : string;
  n_procs : int;
  expects_violation : bool;
  heavy : bool;  (** skipped by smoke runs *)
  run : ?max_schedules:int -> ?preemption_bound:int -> unit -> report;
}

val all : unit -> t list
val names : unit -> string list
val find : string -> t option

val run_suite :
  ?smoke:bool ->
  ?max_schedules:int ->
  ?preemption_bound:int ->
  unit ->
  report list
(** Run every scenario ([smoke] skips the heavy ones) and collect the
    reports in suite order. *)

val report_to_json : report -> Json.t
val suite_to_json : report list -> Json.t
