open Aba_primitives
module Sv = Aba_apps.Service
module Obs = Aba_obs.Obs
module Histogram = Aba_obs.Histogram
module Clock = Aba_obs.Clock

(* One row of the service sweep.  [scope] distinguishes the measurement
   surface: "e2e" is the client-observed open-loop latency (completion
   minus {e intended} arrival, so queueing delay counts), "shards" is
   every shard operation's service time merged across shards through
   {!Histogram.merge}, and "shard<i>" is one shard alone.  [slo] is the
   fraction of ops within [slo_ns] — exact on the e2e row (counted
   sample by sample), bucket-conservative on the histogram-derived
   rows. *)
type row = {
  sv_structure : string;  (** stack | queue *)
  sv_scope : string;
  sv_shards : int;
  sv_domains : int;
  sv_steal : bool;
  sv_combining : bool;
  sv_skew : string;  (** uniform | hot *)
  sv_ops : int;  (** per-domain operation count *)
  sv_count : int;  (** samples behind this row's percentiles *)
  sv_throughput : float;
  sv_p50 : int;
  sv_p90 : int;
  sv_p99 : int;
  sv_p999 : int;
  sv_slo_ns : int;
  sv_slo : float;
  sv_steals : int;
  sv_stolen : int;
  sv_spills : int;
  sv_batched : int;
}

(* The two concrete services reduced to the closures the workload
   drives; stats come back as a plain tuple because the two routers'
   stats records are distinct nominal types. *)
type svc = {
  s_push : pid:int -> key:int -> int -> bool;
  s_pop : pid:int -> key:int -> int option;
  s_stats : unit -> int * int * int;  (** steals, stolen, spills *)
  s_batched : unit -> int;
}

let make_service structure ~shards ~capacity ~n ~steal ~combining ~shard_obs =
  match structure with
  | "stack" ->
      let t =
        Sv.Stack_service.create ~steal ~combining ~shard_obs ~shards ~capacity
          ~n ()
      in
      {
        s_push = (fun ~pid ~key v -> Sv.Stack_service.push t ~pid ~key v);
        s_pop = (fun ~pid ~key -> Sv.Stack_service.pop t ~pid ~key);
        s_stats =
          (fun () ->
            let s = Sv.Stack_service.stats t in
            Sv.Stack_router.(s.steals, s.stolen, s.spills));
        s_batched =
          (fun () ->
            match Sv.Stack_service.combining_stats t with
            | None -> 0
            | Some c -> c.Aba_core.Combining.batched);
      }
  | "queue" ->
      let t =
        Sv.Queue_service.create ~steal ~combining ~shard_obs ~shards ~capacity
          ~n ()
      in
      {
        s_push = (fun ~pid ~key v -> Sv.Queue_service.push t ~pid ~key v);
        s_pop = (fun ~pid ~key -> Sv.Queue_service.pop t ~pid ~key);
        s_stats =
          (fun () ->
            let s = Sv.Queue_service.stats t in
            Sv.Queue_router.(s.steals, s.stolen, s.spills));
        s_batched =
          (fun () ->
            match Sv.Queue_service.combining_stats t with
            | None -> 0
            | Some c -> c.Aba_core.Combining.batched);
      }
  | s -> invalid_arg ("Service_bench: unknown structure " ^ s)

let key_space = 4096

(* Deterministic exponential inter-arrival: the quantile transform over
   the per-pid xorshift stream, so a cell replays the same arrival
   process run to run and the Poisson process is the same whatever the
   service does with it — the defining property of an open loop. *)
let exp_draw rand ~mean_ns =
  let u = float_of_int (1 + Rand.next_int rand 1_000_000) /. 1_000_000. in
  -.mean_ns *. Float.log u

let print_header () =
  Printf.printf "  %-6s %-8s %3s %2s %-5s %-5s %-8s %9s %12s %8s %8s %8s %6s %7s %7s\n"
    "struct" "scope" "sh" "d" "steal" "comb" "skew" "count" "ops/s" "p50"
    "p99" "p999" "slo" "steals" "spills"

let print_row r =
  Printf.printf
    "  %-6s %-8s %3d %2d %-5b %-5b %-8s %9d %12.0f %8d %8d %8d %6.3f %7d %7d\n"
    r.sv_structure r.sv_scope r.sv_shards r.sv_domains r.sv_steal
    r.sv_combining r.sv_skew r.sv_count r.sv_throughput r.sv_p50 r.sv_p99
    r.sv_p999 r.sv_slo r.sv_steals r.sv_spills

(* One cell: run the open-loop workload, then cut the three row scopes
   out of the same execution. *)
let cell ?(quiet = false) ~structure ~shards ~domains ~steal ~combining ~skew
    ~ops ~slo_ns ~arrival_ns () =
  let shard_obs = Array.init shards (fun _ -> Obs.create ~trace:0 ~n:domains ()) in
  let svc =
    make_service structure ~shards ~capacity:4096 ~n:domains ~steal ~combining
      ~shard_obs:(fun s -> shard_obs.(s))
  in
  let e2e = Histogram.create ~n:domains () in
  let slo_hits = Array.make domains 0 in
  let hot_key = 0 in
  let mean_ns = float_of_int arrival_ns in
  let t0 = Clock.now_ns () in
  let _ =
    Aba_runtime.Harness.run_domains ~n:domains (fun pid ->
        let rand = Rand.create ~pid in
        let start = Clock.now_ns () in
        let intended = ref (float_of_int start) in
        let hits = ref 0 in
        for i = 1 to ops do
          (* Draw the next intended arrival; wait if we are early, never
             if we are late — the backlog is the point of an open loop. *)
          intended := !intended +. exp_draw rand ~mean_ns;
          let due = int_of_float !intended in
          while Clock.now_ns () < due do
            Domain.cpu_relax ()
          done;
          let key =
            match skew with
            | "hot" ->
                (* 7 in 8 ops hit one key: one shard saturates while its
                   neighbours idle — the workload stealing exists for. *)
                if Rand.next_int rand 8 < 7 then hot_key
                else Rand.next_int rand key_space
            | _ -> Rand.next_int rand key_space
          in
          (if i land 1 = 1 then ignore (svc.s_push ~pid ~key i : bool)
           else ignore (svc.s_pop ~pid ~key : int option));
          let lat = Clock.now_ns () - due in
          Histogram.record e2e ~pid lat;
          if lat <= slo_ns then incr hits
        done;
        slo_hits.(pid) <- !hits)
  in
  let dt = Clock.elapsed_s t0 in
  let total = domains * ops in
  let steals, stolen, spills = svc.s_stats () in
  let batched = svc.s_batched () in
  let base ~scope ~count ~slo (s : Histogram.summary) =
    {
      sv_structure = structure;
      sv_scope = scope;
      sv_shards = shards;
      sv_domains = domains;
      sv_steal = steal;
      sv_combining = combining;
      sv_skew = skew;
      sv_ops = ops;
      sv_count = count;
      sv_throughput = float_of_int total /. dt;
      sv_p50 = s.Histogram.p50;
      sv_p90 = s.Histogram.p90;
      sv_p99 = s.Histogram.p99;
      sv_p999 = s.Histogram.p999;
      sv_slo_ns = slo_ns;
      sv_slo = slo;
      sv_steals = steals;
      sv_stolen = stolen;
      sv_spills = spills;
      sv_batched = batched;
    }
  in
  (* The e2e row: exact SLO attainment from the per-sample counters. *)
  let e2e_row =
    base ~scope:"e2e" ~count:(Histogram.count e2e)
      ~slo:
        (float_of_int (Array.fold_left ( + ) 0 slo_hits)
        /. float_of_int total)
      (Histogram.summarize e2e)
  in
  (* Shard service times: each shard's per-kind histograms, merged
     bucket-wise — first per shard, then across all shards. *)
  let shard_hists s =
    List.filter_map (fun k -> Obs.histogram shard_obs.(s) k) Obs.all_kinds
  in
  let shard_row s =
    let h = Histogram.merge (shard_hists s) in
    base
      ~scope:(Printf.sprintf "shard%d" s)
      ~count:(Histogram.count h)
      ~slo:(Histogram.fraction_le h slo_ns)
      (Histogram.summarize h)
  in
  let merged =
    Histogram.merge (List.concat_map shard_hists (List.init shards Fun.id))
  in
  let merged_row =
    base ~scope:"shards" ~count:(Histogram.count merged)
      ~slo:(Histogram.fraction_le merged slo_ns)
      (Histogram.summarize merged)
  in
  let rows = e2e_row :: merged_row :: List.init shards shard_row in
  if not quiet then List.iter print_row rows;
  rows

let sweep ?(quiet = false) ?(slo_ns = 10_000) ?(arrival_ns = 1_000)
    ~structures ~shards ~domains ~ops () =
  if not quiet then begin
    Printf.printf
      "\nService sweep (open loop, mean inter-arrival %d ns, SLO %d ns, %d \
       ops/domain):\n"
      arrival_ns slo_ns ops;
    print_header ()
  end;
  let cells = ref [] in
  let add c = cells := c :: !cells in
  List.iter
    (fun structure ->
      List.iter
        (fun d ->
          List.iter
            (fun s ->
              (* shards = 1 is the single-instance baseline: there is
                 nobody to steal from, so only the steal-off ends run. *)
              let steals = if s = 1 then [ false ] else [ false; true ] in
              List.iter
                (fun steal ->
                  List.iter
                    (fun combining ->
                      add
                        (cell ~quiet ~structure ~shards:s ~domains:d ~steal
                           ~combining ~skew:"uniform" ~ops ~slo_ns ~arrival_ns
                           ()))
                    [ false; true ])
                steals)
            shards;
          (* The skewed-key cells: the steal on/off pair whose p999 gap
             is the work-stealing claim. *)
          let s_max = List.fold_left max 1 shards in
          if s_max > 1 then
            List.iter
              (fun steal ->
                add
                  (cell ~quiet ~structure ~shards:s_max ~domains:d ~steal
                     ~combining:false ~skew:"hot" ~ops ~slo_ns ~arrival_ns ()))
              [ false; true ])
        domains)
    structures;
  List.concat (List.rev !cells)

let row_to_json r =
  Json.Obj
    [
      ("structure", Json.Str r.sv_structure);
      ("scope", Json.Str r.sv_scope);
      ("shards", Json.Int r.sv_shards);
      ("domains", Json.Int r.sv_domains);
      ("steal", Json.Bool r.sv_steal);
      ("combining", Json.Bool r.sv_combining);
      ("skew", Json.Str r.sv_skew);
      ("ops", Json.Int r.sv_ops);
      ("count", Json.Int r.sv_count);
      ("ops_per_sec", Json.Float r.sv_throughput);
      ("p50_ns", Json.Int r.sv_p50);
      ("p90_ns", Json.Int r.sv_p90);
      ("p99_ns", Json.Int r.sv_p99);
      ("p999_ns", Json.Int r.sv_p999);
      ("slo_ns", Json.Int r.sv_slo_ns);
      ("slo", Json.Float r.sv_slo);
      ("steals", Json.Int r.sv_steals);
      ("stolen", Json.Int r.sv_stolen);
      ("spills", Json.Int r.sv_spills);
      ("batched", Json.Int r.sv_batched);
    ]
