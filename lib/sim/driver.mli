(** History-recording driver.

    A driver connects an implementation under test to the simulator: it
    invokes operations on processes, steps them, and records the resulting
    invocation/response history in the format consumed by the
    linearizability checker.

    Responses are recorded immediately after an operation's final step and
    invocations when [invoke] is called, so drivers that invoke lazily (as
    {!Explore} does) produce the tightest sound real-time order. *)

open Aba_primitives

type ('op, 'res) t

val create :
  sim:Sim.t -> apply:(Pid.t -> 'op -> unit -> 'res) -> ('op, 'res) t
(** [apply p op] is the thunk that executes [op] as process [p] against the
    implementation under test. *)

val sim : ('op, 'res) t -> Sim.t

val invoke : ('op, 'res) t -> Pid.t -> 'op -> unit
(** Begin [op] on idle process [p], recording the invocation event.  If the
    operation completes without any shared-memory step its response is
    recorded immediately.  Raises [Invalid_argument] if [p] has a pending
    operation. *)

val step : ('op, 'res) t -> Pid.t -> unit
(** One shared-memory step of [p]'s pending operation; records the response
    event if this step completed the operation. *)

val crash : ('op, 'res) t -> Pid.t -> unit
(** Kill [p]'s pending operation: {!Sim.crash} erases the program state
    while every cell survives, and the operation's Invoke event stays
    unmatched in the history (it neither returned nor certainly took
    effect).  Raises [Invalid_argument] if [p] has no pending
    operation. *)

val finish : ('op, 'res) t -> Pid.t -> unit
(** Step [p] until its pending operation (if any) completes. *)

val pending : ('op, 'res) t -> Pid.t -> bool

val last_result : ('op, 'res) t -> Pid.t -> 'res option
(** Result of [p]'s most recently completed operation. *)

val last_steps : ('op, 'res) t -> Pid.t -> int
(** Shared-memory step count of [p]'s most recently completed operation —
    the measured step complexity. *)

val max_op_steps : ('op, 'res) t -> int
(** Largest step count over all completed operations so far (worst-case
    step complexity observed). *)

val history : ('op, 'res) t -> ('op, 'res) Event.history

(** {1 Incremental execution}

    Stateful exploration support: a single live instance advanced one
    {e action} at a time, rewound to a prefix by rebuilding and replaying
    exactly that prefix.  An action of process [p] lazily invokes [p]'s
    next scripted operation if [p] is idle, then executes one
    shared-memory step (operations that complete at invocation with zero
    steps consume the whole action).  This replaces the naive explorer's
    full re-execution per DFS node: the cost of a backtrack is one rebuild
    plus a replay of the deepest common prefix. *)

module Incremental : sig
  type ('op, 'res) u

  val create :
    ?on_crash:(Pid.t -> 'op list) ->
    make:(unit -> ('op, 'res) t) ->
    scripts:'op list array ->
    unit ->
    ('op, 'res) u
  (** [make ()] must build a fresh driver over a fresh simulator/instance;
      [scripts.(p)] is process [p]'s operation list.  Determinism of
      [make] is what makes replay sound.  [on_crash p] is the recovery
      program queued ahead of [p]'s remaining script when {!crash} kills
      its in-flight operation (default: none — the operation is simply
      lost). *)

  val crash_move : Pid.t -> Pid.t
  val is_crash_move : Pid.t -> bool
  val pid_of_move : Pid.t -> Pid.t
  (** Path entries are {e moves}: process [p]'s ordinary action is the
      value [p] itself, a crash of [p] the negative code [-(p + 1)]. *)

  val driver : ('op, 'res) u -> ('op, 'res) t
  (** The current live driver (changes across {!rewind}). *)

  val depth : _ u -> int
  (** Number of actions executed on the current path. *)

  val path : _ u -> Pid.t list
  (** The executed moves, oldest first ({!pid_of_move} decodes crash
      entries). *)

  val enabled : _ u -> Pid.t list
  (** Processes that can take an action: pending mid-operation, or idle
      with scripted operations remaining. *)

  val next_footprint : _ u -> Pid.t -> Step.footprint option
  (** Footprint of the step [p] would execute next, without executing it.
      [None] if [p] is idle (its next action would start with an
      invocation whose first step is not yet known). *)

  val advance : ('op, 'res) u -> Pid.t -> Step.footprint option
  (** Execute one action of [p]; returns the footprint of the executed
      step, or [None] for a zero-step operation.  Raises
      [Invalid_argument] if [p] is not enabled. *)

  val crash : ('op, 'res) u -> Pid.t -> unit
  (** The crash move: {!Driver.crash} [p]'s pending operation, queue
      [on_crash p] ahead of its remaining script, and record the
      [crash_move p] path entry.  Counts as one executed action. *)

  val rewind : ('op, 'res) u -> depth:int -> unit
  (** Truncate the path to its first [depth] moves by rebuilding a
      fresh instance and replaying that prefix (crash moves included).
      No-op when [depth] is the current depth. *)

  type stats = {
    rebuilds : int;  (** fresh instances built by {!rewind} *)
    actions_executed : int;  (** forward actions via {!advance} *)
    actions_replayed : int;  (** prefix actions re-executed by {!rewind} *)
  }

  val stats : _ u -> stats
  (** Cumulative re-execution cost over the instance's lifetime. *)
end

(** {1 Randomized runs} *)

val run_random :
  ('op, 'res) t ->
  scripts:'op list array ->
  seed:int ->
  ?max_actions:int ->
  unit ->
  unit
(** Run every operation of [scripts] (array indexed by pid) to completion
    under a uniformly random schedule drawn from [seed].  Invocations are
    lazy: an idle process's next operation is invoked only when the random
    schedule picks that process. *)
