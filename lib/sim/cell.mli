(** Simulated atomic base objects.

    A cell is one base object of the simulated system: a read/write
    register, a (writable) CAS object, or an LL/SC/VL object.  Cell contents
    are universal values ({!Aba_primitives.Univ}); each typed wrapper in
    {!Sim_mem} owns the embedding.

    Cells render their value to a string ([show]); rendered values are what
    register configurations ([reg(C)] in Lemma 1) and signatures (Lemma 3)
    are built from, so they are stable across runs and replays. *)

open Aba_primitives

type kind = Register | Cas_obj | Writable_cas | Llsc_obj

type t = {
  id : int;  (** Unique within one simulation instance. *)
  name : string;
  kind : kind;
  mutable value : Univ.t;
  show : Univ.t -> string;
  check_domain : Univ.t -> unit;
  domain_desc : string;
  mutable llsc_seq : int;  (** Successful-SC count, for LL/SC semantics. *)
  llsc_link : (Pid.t, int) Hashtbl.t;
}

val make :
  id:int ->
  name:string ->
  kind:kind ->
  show:(Univ.t -> string) ->
  check_domain:(Univ.t -> unit) ->
  domain_desc:string ->
  init:Univ.t ->
  t

val is_register : t -> bool
(** True for plain read/write registers (the objects counted by
    Theorem 1(a)). *)

val same : t -> t -> bool
(** Identity of base objects — [id] equality.  Ids are unique within one
    simulation instance, so two steps of the same execution operate on the
    same base object iff their cells are [same].  This is the cell-identity
    half of the dependence relation {!Step.conflicts}. *)

val rendered_value : t -> string

val kind_name : kind -> string
