(** The deterministic shared-memory simulator.

    This module realizes the execution model of the paper's Preliminaries
    section.  A simulation holds [n] processes and a set of base objects
    (cells).  Each process is either {e idle} (no pending method call) or
    suspended {e poised} at its next shared-memory step.  The driver:

    - [invoke]s a method call on an idle process — the call's local
      computation runs immediately up to (but excluding) its first
      shared-memory step, since only shared-memory operations count as
      steps;
    - [step]s a poised process — exactly one atomic base-object operation
      executes, then local computation continues to the next step or to the
      method's return.

    A {e schedule} is thus a sequence of invocations and process IDs, and
    [Exec(C, sigma)] / [Conf(C, sigma)] from the paper correspond to calling
    [step] in the order given by [sigma].  Configurations are inspectable:
    poised steps (for covering sets), register configurations [reg(C)]
    (Lemma 1) and signatures (Lemma 3) are all exposed.

    Method calls are arbitrary OCaml thunks whose shared-memory accesses go
    through {!Sim_mem}; suspension uses OCaml effect handlers, so algorithms
    are written in direct style, exactly as the paper's pseudo-code. *)

open Aba_primitives

type t

exception Process_crashed of Pid.t * exn
(** Raised by [step] when the process's method call raised; the original
    exception is preserved. *)

val create : n:int -> t
(** A simulation with processes [0 .. n-1], all idle, and no cells. *)

val n : t -> int

(** {1 Driving processes} *)

type 'a promise
(** The eventual result of an invoked method call. *)

val invoke : t -> Pid.t -> (unit -> 'a) -> 'a promise
(** [invoke sim p call] begins method call [call] on idle process [p],
    running it up to its first shared-memory step.  Raises
    [Invalid_argument] if [p] is not idle.  If [call] performs no
    shared-memory step at all it completes immediately. *)

val step : t -> Pid.t -> unit
(** Execute the poised step of [p], then run [p]'s local computation to its
    next step or return.  Raises [Invalid_argument] if [p] is idle. *)

val crash : t -> Pid.t -> unit
(** Erase [p]'s program state: the poised step and suspended continuation
    are dropped and [p] returns to idle, while all cells survive — the
    crash-recovery model of detectable objects (shared memory persists,
    private state is lost).  The in-flight call's promise is never
    fulfilled; whether its last shared step took effect is exactly what a
    detectable recovery must determine.  Raises [Invalid_argument] if [p]
    is idle (there is nothing to crash). *)

val run_schedule : t -> Pid.t list -> unit
(** [run_schedule sim sigma] steps processes in the order of [sigma]. *)

val result : 'a promise -> 'a option
(** [Some r] once the call has returned. *)

val steps_of : 'a promise -> int
(** Shared-memory steps the call has executed so far (its step
    complexity once completed). *)

(** {1 Inspecting configurations} *)

val is_idle : t -> Pid.t -> bool

val quiescent : t -> bool
(** All processes idle (the paper's quiescence). *)

val poised : t -> Pid.t -> Step.t option
(** The step [p] is poised to execute, or [None] if idle. *)

val run_solo : ?max_steps:int -> t -> Pid.t -> unit
(** Step [p] repeatedly until it is idle — the [p]-only schedules of
    nondeterministic solo-termination.  Raises [Failure] if the call does
    not finish within [max_steps] (default 100_000) steps. *)

val cells : t -> Cell.t list
(** All base objects, in creation order. *)

val registers : t -> Cell.t list
(** The cells that are plain read/write registers. *)

val reg_config : t -> string list
(** [reg(C)]: the rendered values of all cells in creation order. *)

val signature : t -> string
(** The Lemma 3 signature of the current configuration: every cell's value
    plus every process's poised step (or idleness), rendered stably. *)

val total_steps : t -> int
(** Shared-memory steps executed since creation. *)

val steps_by : t -> Pid.t -> int

(** {1 Tracing} *)

type trace_entry = { index : int; pid : Pid.t; descr : string }

val set_recording : t -> bool -> unit
(** Off by default.  When on, every executed step appends a {!trace_entry}. *)

val trace : t -> trace_entry list
(** Recorded steps, oldest first. *)

val clear_trace : t -> unit

(** {1 Internal — used by Sim_mem} *)

val perform_step : Step.t -> Step.outcome
(** Performs the step effect; must be called from within an invoked method
    call.  The scheduler suspends the process poised at this step and
    executes it when the process is next scheduled. *)

val register_cell :
  t ->
  name:string ->
  kind:Cell.kind ->
  show:(Univ.t -> string) ->
  check_domain:(Univ.t -> unit) ->
  domain_desc:string ->
  init:Univ.t ->
  Cell.t
