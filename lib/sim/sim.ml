open Aba_primitives

type _ Effect.t += Do_step : Step.t -> Step.outcome Effect.t

type proc_state =
  | Idle
  | Poised of Step.t * (Step.outcome, unit) Effect.Deep.continuation
  | Crashed of exn

type proc = {
  pid : Pid.t;
  mutable state : proc_state;
  mutable steps : int;  (** total steps by this process *)
  mutable call_steps : int ref;  (** counter of the current call's promise *)
}

type trace_entry = { index : int; pid : Pid.t; descr : string }

type t = {
  n : int;
  procs : proc array;
  mutable cell_list : Cell.t list;  (** reversed creation order *)
  mutable next_cell_id : int;
  mutable total_steps : int;
  mutable current : Pid.t;  (** pid whose code is currently running *)
  mutable recording : bool;
  mutable trace_rev : trace_entry list;
}

exception Process_crashed of Pid.t * exn

type 'a promise = { mutable value : 'a option; counter : int ref }

let create ~n =
  if n <= 0 then invalid_arg "Sim.create: n must be positive";
  {
    n;
    procs =
      Array.init n (fun pid ->
          { pid; state = Idle; steps = 0; call_steps = ref 0 });
    cell_list = [];
    next_cell_id = 0;
    total_steps = 0;
    current = -1;
    recording = false;
    trace_rev = [];
  }

let n sim = sim.n

let proc sim p =
  Pid.check ~n:sim.n p;
  sim.procs.(p)

(* Run a thunk of process [p] under the step handler.  The thunk is either a
   fresh method call or the continuation of a poised one; it executes local
   computation until the next shared-memory effect, the method's return, or
   an exception. *)
let run_as sim p (f : unit -> unit) =
  let pr = sim.procs.(p) in
  let saved = sim.current in
  sim.current <- p;
  let handler : (unit, unit) Effect.Deep.handler =
    {
      retc = Fun.id;
      exnc = (fun e -> pr.state <- Crashed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Do_step s ->
              Some
                (fun (k : (a, unit) Effect.Deep.continuation) ->
                  pr.state <- Poised (s, k))
          | _ -> None);
    }
  in
  Effect.Deep.match_with f () handler;
  sim.current <- saved

let invoke sim p (call : unit -> 'a) : 'a promise =
  let pr = proc sim p in
  (match pr.state with
  | Idle -> ()
  | Poised _ ->
      invalid_arg (Printf.sprintf "Sim.invoke: process %d is not idle" p)
  | Crashed e -> raise (Process_crashed (p, e)));
  let promise = { value = None; counter = ref 0 } in
  pr.call_steps <- promise.counter;
  run_as sim p (fun () -> promise.value <- Some (call ()));
  (match pr.state with Crashed e -> raise (Process_crashed (p, e)) | _ -> ());
  promise

let step sim p =
  let pr = proc sim p in
  match pr.state with
  | Idle -> invalid_arg (Printf.sprintf "Sim.step: process %d is idle" p)
  | Crashed e -> raise (Process_crashed (p, e))
  | Poised (s, k) ->
      let outcome =
        (* An illegal step (wrong object kind, out-of-domain value) crashes
           the process rather than the scheduler. *)
        match Step.execute ~pid:p s with
        | outcome -> outcome
        | exception e ->
            pr.state <- Crashed e;
            raise (Process_crashed (p, e))
      in
      pr.steps <- pr.steps + 1;
      incr pr.call_steps;
      sim.total_steps <- sim.total_steps + 1;
      if sim.recording then
        sim.trace_rev <-
          { index = sim.total_steps; pid = p; descr = Step.describe s }
          :: sim.trace_rev;
      pr.state <- Idle;
      (* overwritten if the continuation suspends again *)
      run_as sim p (fun () -> Effect.Deep.continue k outcome);
      (match pr.state with
      | Crashed e -> raise (Process_crashed (p, e))
      | Idle | Poised _ -> ())

(* A crash erases the process's program state — the poised step and the
   suspended continuation are simply dropped (an unresumed one-shot
   continuation is GC'd; discontinuing it would run the method's exception
   handlers, which a crashed process never gets to do) — while every cell
   registered with the simulator survives untouched.  The pending call's
   promise is never fulfilled: the operation neither returned nor, as far
   as the crashed process can tell, certainly took effect.  That is the
   crash-recovery model of detectable objects (shared memory persists,
   private state is lost). *)
let crash sim p =
  let pr = proc sim p in
  match pr.state with
  | Idle -> invalid_arg (Printf.sprintf "Sim.crash: process %d is idle" p)
  | Crashed e -> raise (Process_crashed (p, e))
  | Poised (_, _) ->
      pr.state <- Idle;
      pr.call_steps <- ref 0;
      if sim.recording then
        sim.trace_rev <-
          { index = sim.total_steps; pid = p; descr = "crash" }
          :: sim.trace_rev

let run_schedule sim sigma = List.iter (step sim) sigma
let result promise = promise.value
let steps_of promise = !(promise.counter)

let is_idle sim p =
  match (proc sim p).state with
  | Idle -> true
  | Poised _ | Crashed _ -> false

let quiescent sim = Array.for_all (fun pr -> pr.state = Idle) sim.procs

let poised sim p =
  match (proc sim p).state with
  | Idle -> None
  | Poised (s, _) -> Some s
  | Crashed e -> raise (Process_crashed (p, e))

let run_solo ?(max_steps = 100_000) sim p =
  let rec go budget =
    if is_idle sim p then ()
    else if budget = 0 then
      failwith
        (Printf.sprintf "Sim.run_solo: process %d did not finish within %d steps"
           p max_steps)
    else begin
      step sim p;
      go (budget - 1)
    end
  in
  go max_steps

let cells sim = List.rev sim.cell_list
let registers sim = List.filter Cell.is_register (cells sim)
let reg_config sim = List.map Cell.rendered_value (cells sim)

let signature sim =
  let buf = Buffer.create 128 in
  List.iter
    (fun c ->
      Buffer.add_string buf c.Cell.name;
      Buffer.add_char buf '=';
      Buffer.add_string buf (Cell.rendered_value c);
      Buffer.add_char buf ';')
    (cells sim);
  Array.iter
    (fun pr ->
      Buffer.add_string buf
        (match pr.state with
        | Idle -> "idle"
        | Poised (s, _) -> Step.describe s
        | Crashed _ -> "crashed");
      Buffer.add_char buf '|')
    sim.procs;
  Buffer.contents buf

let total_steps sim = sim.total_steps
let steps_by sim p = (proc sim p).steps
let set_recording sim b = sim.recording <- b
let trace sim = List.rev sim.trace_rev
let clear_trace sim = sim.trace_rev <- []

let register_cell sim ~name ~kind ~show ~check_domain ~domain_desc ~init =
  let id = sim.next_cell_id in
  sim.next_cell_id <- id + 1;
  let c = Cell.make ~id ~name ~kind ~show ~check_domain ~domain_desc ~init in
  sim.cell_list <- c :: sim.cell_list;
  c

(* Exposed to Sim_mem through a separate module below; the effect itself is
   the only channel between algorithm code and the scheduler. *)
let perform_step (s : Step.t) : Step.outcome = Effect.perform (Do_step s)
