(** Bounded schedule exploration (stateless model checking).

    Because the algorithms are deterministic and the simulator replayable, a
    schedule prefix — a sequence of process IDs — determines a configuration
    exactly.  Two explorers enumerate the schedules of a fixed workload:

    - {!exhaustive}, the naive oracle: depth-first over {e all}
      interleavings, rebuilding each node's configuration by replaying its
      prefix against a fresh instance;
    - {!dpor}, dynamic partial-order reduction (Flanagan–Godefroid 2005):
      depth-first over a {e representative subset} — per-step footprints
      ({!Step.footprint}) decide which reorderings can matter, reversible
      races schedule backtrack points, sleep sets prune schedules whose
      difference from an explored one is a commutation.  It runs on a
      single incrementally re-executed instance ({!Driver.Incremental})
      instead of replaying the whole prefix per node.

    An action of process [p] means: if [p] is idle, lazily invoke its next
    scripted operation and run to its first shared-memory step; then execute
    one step.  Operations that take zero shared-memory steps complete within
    the action.  Histories are built with invoke-at-first-step and
    respond-at-last-step, the tightest sound real-time order, so a workload
    that passes [check] on every leaf is correct under {e every} schedule of
    that workload (at this size).

    This realizes, in the small, the quantification over all schedules used
    throughout Section 2. *)

open Aba_primitives

type ('op, 'res) instance = { driver : ('op, 'res) Driver.t }

type ('op, 'res) outcome =
  | Ok of int  (** number of complete schedules explored *)
  | Violation of Pid.t list * ('op, 'res) Event.history
      (** offending schedule and its history *)
  | Budget_exhausted of int  (** schedules explored before giving up *)

val exhaustive :
  make:(unit -> ('op, 'res) instance) ->
  scripts:'op list array ->
  check:(('op, 'res) Event.history -> bool) ->
  ?max_schedules:int ->
  ?max_depth:int ->
  unit ->
  ('op, 'res) outcome
(** [exhaustive ~make ~scripts ~check ()] replays every interleaving of the
    scripted operations.  [make] must build a fresh, deterministic instance
    (same initial configuration every time).  [check] is applied to the
    complete history at every leaf; the first failing leaf aborts the search
    with its schedule.  [max_schedules] (default [2_000_000]) bounds the
    number of leaves visited; a branch longer than [max_depth] (default
    [10_000]) actions raises [Failure] — it indicates a livelocked
    implementation. *)

(** {1 Dynamic partial-order reduction} *)

type dpor_stats = {
  explored : int;  (** complete schedules visited *)
  schedule_bound : int option;
      (** multinomial bound from a solo reference run; [None] on overflow.
          Exact for workloads whose per-process action counts are
          schedule-independent (no retry loops); a reference otherwise. *)
  sleep_set_prunes : int;
      (** nodes cut because every enabled process was sleeping *)
  preemption_prunes : int;  (** children cut by the preemption bound *)
  races_detected : int;  (** reversible races that scheduled a backtrack *)
  crashes_injected : int;
      (** crash moves executed across the whole search (0 without
          [crash_bound]) *)
  max_depth_reached : int;
  rebuilds : int;  (** fresh instances built on backtrack *)
  actions_executed : int;  (** forward actions *)
  actions_replayed : int;  (** prefix actions re-executed on backtrack *)
}

type ('op, 'res) dpor_result = {
  verdict : ('op, 'res) outcome;
  stats : dpor_stats;
}

val dpor :
  make:(unit -> ('op, 'res) instance) ->
  scripts:'op list array ->
  check:(('op, 'res) Event.history -> bool) ->
  ?max_schedules:int ->
  ?max_depth:int ->
  ?preemption_bound:int ->
  ?crash_bound:int ->
  ?on_crash:(Pid.t -> 'op list) ->
  unit ->
  ('op, 'res) dpor_result
(** [dpor ~make ~scripts ~check ()] explores a reduced but sufficient set
    of schedules: for every maximal schedule of the workload it visits one
    member of its Mazurkiewicz trace (schedules equal up to commuting
    independent steps), so any [check] that is invariant across a trace —
    in particular the outcome-based flaw detectors used by the scenario
    suite — fails here iff it fails somewhere under {!exhaustive}.

    After each executed step the engine scans the path backwards under the
    happens-before clocks: an earlier conflicting step not already ordered
    before the new one is a reversible race, and its reversal is scheduled
    by inserting a backtrack point before the earlier step.  Sleep sets
    carry fully-explored moves into sibling subtrees and wake them only on
    a conflicting footprint, pruning commuted duplicates.

    [preemption_bound] limits involuntary context switches per schedule
    (a process switched while still enabled); it makes the search a
    bounded heuristic — [Ok] then certifies only the bounded schedule
    space.  Other parameters are as in {!exhaustive}.  [Found]/[Stop]
    never escape; verdicts are returned in [verdict] together with the
    per-run reduction statistics.

    [crash_bound] (default 0) additionally explores {e crash moves}: at
    every node, each process with an in-flight operation may crash —
    {!Sim.crash} erases its program state, shared cells survive, and
    [on_crash p] (default none) queues its recovery program — up to
    [crash_bound] crashes per schedule.  Crash children are explored
    unconditionally (they never enter backtrack or sleep sets — a sound
    over-approximation), so [Ok] certifies the workload under every
    explored crash placement; in a violating schedule the crash moves
    appear as negative path entries
    ({!Driver.Incremental.pid_of_move}).  With a positive [crash_bound]
    the crash-free multinomial no longer bounds the search, so
    [schedule_bound] is reported as [None]. *)

(** {1 Schedule counting} *)

val count_schedules : n_actions:int array -> int
(** Number of interleavings of the given per-process action counts
    (multinomial coefficient) — useful to size workloads before exploring.
    Saturates at [max_int] when the true count overflows. *)

val count_schedules_opt : n_actions:int array -> int option
(** As {!count_schedules}, but [None] instead of saturation on overflow —
    use when the caller must distinguish "huge" from [max_int]. *)
