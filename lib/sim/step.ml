open Aba_primitives

type t =
  | Read of Cell.t
  | Write of Cell.t * Univ.t
  | Cas of Cell.t * Univ.t * Univ.t
  | Ll of Cell.t
  | Sc of Cell.t * Univ.t
  | Vl of Cell.t

type outcome = Value of Univ.t | Bool of bool | Unit

let cell = function
  | Read c | Write (c, _) | Cas (c, _, _) | Ll c | Sc (c, _) | Vl c -> c

let is_write = function Write _ -> true | _ -> false
let is_cas = function Cas _ -> true | _ -> false

type access = Load | Store | Rmw

type footprint = { on : Cell.t; access : access }

(* [Ll] and [Vl] touch only the cell's value/sequence as readers: the
   per-pid link entry they maintain is private to the linking process, so
   no other process's outcome can depend on it.  Classifying them as
   [Load] is what lets two concurrent [Ll]s commute. *)
let footprint step =
  let access =
    match step with
    | Read _ | Ll _ | Vl _ -> Load
    | Write _ -> Store
    | Cas _ | Sc _ -> Rmw
  in
  { on = cell step; access }

let mutates step =
  match (footprint step).access with Load -> false | Store | Rmw -> true

(* The dependence relation of the DPOR engine: two steps of different
   processes commute unless they touch the same base object and at least
   one of them (potentially) mutates it.  A failed CAS/SC is a read at
   execution time, but whether it fails can depend on the order, so [Rmw]
   conservatively counts as mutating. *)
let conflicts a b =
  Cell.same a.on b.on && not (a.access = Load && b.access = Load)

let bad_kind step_name (c : Cell.t) =
  invalid_arg
    (Printf.sprintf "Step.execute: %s on %s %s" step_name
       (Cell.kind_name c.kind) c.name)

let link_valid (c : Cell.t) pid =
  match Hashtbl.find_opt c.llsc_link pid with
  | Some s -> s = c.llsc_seq
  | None -> c.llsc_seq = 0

let would_succeed ~pid step =
  match step with
  | Cas (c, expect, _) -> Some (Univ.equal c.Cell.value expect)
  | Sc (c, _) -> Some (link_valid c pid)
  | Read _ | Write _ | Ll _ | Vl _ -> None

let execute ~pid step =
  match step with
  | Read c -> (
      match c.Cell.kind with
      | Cell.Register | Cell.Cas_obj | Cell.Writable_cas -> Value c.value
      | Cell.Llsc_obj -> bad_kind "Read" c)
  | Write (c, v) -> (
      match c.Cell.kind with
      | Cell.Register | Cell.Writable_cas ->
          c.check_domain v;
          c.value <- v;
          Unit
      | Cell.Cas_obj | Cell.Llsc_obj -> bad_kind "Write" c)
  | Cas (c, expect, update) -> (
      match c.Cell.kind with
      | Cell.Cas_obj | Cell.Writable_cas ->
          if Univ.equal c.value expect then begin
            c.check_domain update;
            c.value <- update;
            Bool true
          end
          else Bool false
      | Cell.Register | Cell.Llsc_obj -> bad_kind "CAS" c)
  | Ll c -> (
      match c.Cell.kind with
      | Cell.Llsc_obj ->
          Hashtbl.replace c.llsc_link pid c.llsc_seq;
          Value c.value
      | Cell.Register | Cell.Cas_obj | Cell.Writable_cas -> bad_kind "LL" c)
  | Sc (c, v) -> (
      match c.Cell.kind with
      | Cell.Llsc_obj ->
          if link_valid c pid then begin
            c.check_domain v;
            c.value <- v;
            c.llsc_seq <- c.llsc_seq + 1;
            Bool true
          end
          else Bool false
      | Cell.Register | Cell.Cas_obj | Cell.Writable_cas -> bad_kind "SC" c)
  | Vl c -> (
      match c.Cell.kind with
      | Cell.Llsc_obj -> Bool (link_valid c pid)
      | Cell.Register | Cell.Cas_obj | Cell.Writable_cas -> bad_kind "VL" c)

let describe step =
  let name c = c.Cell.name in
  match step with
  | Read c -> Printf.sprintf "read %s" (name c)
  | Write (c, v) -> Printf.sprintf "write %s := %s" (name c) (c.Cell.show v)
  | Cas (c, e, u) ->
      Printf.sprintf "cas %s (%s -> %s)" (name c) (c.Cell.show e)
        (c.Cell.show u)
  | Ll c -> Printf.sprintf "ll %s" (name c)
  | Sc (c, v) -> Printf.sprintf "sc %s := %s" (name c) (c.Cell.show v)
  | Vl c -> Printf.sprintf "vl %s" (name c)
