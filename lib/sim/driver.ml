open Aba_primitives

type ('op, 'res) pending_call = { promise : 'res Sim.promise }

type ('op, 'res) t = {
  sim : Sim.t;
  apply : Pid.t -> 'op -> unit -> 'res;
  pending : ('op, 'res) pending_call option array;
  last_result : 'res option array;
  last_steps : int array;
  mutable max_op_steps : int;
  mutable events_rev : ('op, 'res) Event.t list;
}

let create ~sim ~apply =
  let n = Sim.n sim in
  {
    sim;
    apply;
    pending = Array.make n None;
    last_result = Array.make n None;
    last_steps = Array.make n 0;
    max_op_steps = 0;
    events_rev = [];
  }

let sim d = d.sim

let record d e = d.events_rev <- e :: d.events_rev

let complete d p (c : ('op, 'res) pending_call) =
  match Sim.result c.promise with
  | None -> ()
  | Some r ->
      d.pending.(p) <- None;
      d.last_result.(p) <- Some r;
      let steps = Sim.steps_of c.promise in
      d.last_steps.(p) <- steps;
      if steps > d.max_op_steps then d.max_op_steps <- steps;
      record d (Event.Response (p, r))

let invoke d p op =
  (match d.pending.(p) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Driver.invoke: process %d has a pending operation" p)
  | None -> ());
  record d (Event.Invoke (p, op));
  let promise = Sim.invoke d.sim p (d.apply p op) in
  let call = { promise } in
  d.pending.(p) <- Some call;
  complete d p call

let step d p =
  match d.pending.(p) with
  | None ->
      invalid_arg
        (Printf.sprintf "Driver.step: process %d has no pending operation" p)
  | Some call ->
      Sim.step d.sim p;
      complete d p call

(* A crash drops the pending call: the simulator erases [p]'s program
   state, and the call's Invoke event stays unmatched in the history — the
   standard representation of an operation that neither returned nor can
   be assumed to have taken effect.  Checkers for crash workloads decide
   from the final shared state whether the unmatched operation landed. *)
let crash d p =
  match d.pending.(p) with
  | None ->
      invalid_arg
        (Printf.sprintf "Driver.crash: process %d has no pending operation" p)
  | Some _ ->
      Sim.crash d.sim p;
      d.pending.(p) <- None

let finish d p =
  let rec go () =
    match d.pending.(p) with
    | None -> ()
    | Some _ ->
        step d p;
        go ()
  in
  go ()

let pending d p = Option.is_some d.pending.(p)
let last_result d p = d.last_result.(p)
let last_steps d p = d.last_steps.(p)
let max_op_steps d = d.max_op_steps
let history d = List.rev d.events_rev

module Incremental = struct
  (* One action of process [p]: lazily invoke its next scripted operation
     if it is idle, then execute one shared-memory step (unless the
     invocation completed with zero steps).  This is the unit of
     scheduling of both explorers; the executed step's footprint is
     returned so the DPOR engine can compute dependences.

     A path entry is a {e move}: process [p]'s ordinary action is recorded
     as [p] itself, a crash of [p] as the negative code [-(p + 1)].  Both
     replay deterministically, so a rewind reproduces crash-containing
     prefixes exactly. *)
  type ('op, 'res) u = {
    make : unit -> ('op, 'res) t;
    scripts : 'op list array;
    on_crash : Pid.t -> 'op list;
    mutable driver : ('op, 'res) t;
    mutable remaining : 'op list array;
    mutable path_rev : Pid.t list;  (** executed moves, newest first *)
    mutable depth : int;
    mutable rebuilds : int;
    mutable actions_executed : int;
    mutable actions_replayed : int;
  }

  let crash_move p = -(p + 1)
  let is_crash_move m = m < 0
  let pid_of_move m = if m >= 0 then m else -m - 1

  let act u p =
    let d = u.driver in
    if pending d p then begin
      let fp = Option.map Step.footprint (Sim.poised (sim d) p) in
      step d p;
      fp
    end
    else
      match u.remaining.(p) with
      | [] -> invalid_arg "Driver.Incremental: process has no work"
      | op :: rest ->
          u.remaining.(p) <- rest;
          invoke d p op;
          if pending d p then begin
            let fp = Option.map Step.footprint (Sim.poised (sim d) p) in
            step d p;
            fp
          end
          else None (* zero-step operation: empty footprint *)

  (* The crash half of a move: kill the pending operation and queue the
     recovery program (possibly empty) ahead of the pid's remaining
     script.  Deterministic, hence replayable. *)
  let crash_act u p =
    crash u.driver p;
    match u.on_crash p with
    | [] -> ()
    | recovery -> u.remaining.(p) <- recovery @ u.remaining.(p)

  let do_move u m =
    let p = pid_of_move m in
    if is_crash_move m then begin
      crash_act u p;
      None
    end
    else act u p

  let create ?(on_crash = fun _ -> []) ~make ~scripts () =
    {
      make;
      scripts;
      on_crash;
      driver = make ();
      remaining = Array.copy scripts;
      path_rev = [];
      depth = 0;
      rebuilds = 0;
      actions_executed = 0;
      actions_replayed = 0;
    }

  let driver u = u.driver
  let depth u = u.depth
  let path u = List.rev u.path_rev

  let enabled u =
    let d = u.driver in
    List.filter
      (fun p -> pending d p || u.remaining.(p) <> [])
      (Pid.all ~n:(Sim.n (sim d)))

  let next_footprint u p =
    Option.map Step.footprint (Sim.poised (sim u.driver) p)

  let advance u p =
    let fp = act u p in
    u.path_rev <- p :: u.path_rev;
    u.depth <- u.depth + 1;
    u.actions_executed <- u.actions_executed + 1;
    fp

  let crash u p =
    crash_act u p;
    u.path_rev <- crash_move p :: u.path_rev;
    u.depth <- u.depth + 1;
    u.actions_executed <- u.actions_executed + 1

  (* Checkpointed re-execution: the retained path is the checkpoint.  A
     rewind to depth [d] rebuilds a fresh instance and replays exactly the
     deepest common prefix (the first [d] actions) — once per backtrack,
     not once per node as the naive explorer does. *)
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []

  let rewind u ~depth:d =
    if d < 0 || d > u.depth then invalid_arg "Driver.Incremental.rewind";
    if d <> u.depth then begin
      let prefix = take d (List.rev u.path_rev) in
      u.driver <- u.make ();
      u.remaining <- Array.copy u.scripts;
      u.path_rev <- [];
      u.depth <- 0;
      u.rebuilds <- u.rebuilds + 1;
      List.iter
        (fun m ->
          ignore (do_move u m);
          u.path_rev <- m :: u.path_rev;
          u.depth <- u.depth + 1;
          u.actions_replayed <- u.actions_replayed + 1)
        prefix
    end

  type stats = {
    rebuilds : int;
    actions_executed : int;
    actions_replayed : int;
  }

  let stats (u : _ u) =
    {
      rebuilds = u.rebuilds;
      actions_executed = u.actions_executed;
      actions_replayed = u.actions_replayed;
    }
end

let run_random d ~scripts ~seed ?(max_actions = 1_000_000) () =
  let n = Sim.n d.sim in
  if Array.length scripts <> n then
    invalid_arg "Driver.run_random: scripts array must have length n";
  let remaining = Array.map (fun l -> ref l) scripts in
  let rng = Random.State.make [| seed |] in
  let has_work p = pending d p || !(remaining.(p)) <> [] in
  let act p =
    if pending d p then step d p
    else
      match !(remaining.(p)) with
      | [] -> assert false
      | op :: rest ->
          remaining.(p) := rest;
          invoke d p op
  in
  let rec go budget =
    let workers = List.filter has_work (Pid.all ~n) in
    match workers with
    | [] -> ()
    | _ ->
        if budget = 0 then
          failwith "Driver.run_random: exceeded action budget"
        else begin
          let k = Random.State.int rng (List.length workers) in
          act (List.nth workers k);
          go (budget - 1)
        end
  in
  go max_actions
