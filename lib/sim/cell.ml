open Aba_primitives

type kind = Register | Cas_obj | Writable_cas | Llsc_obj

type t = {
  id : int;
  name : string;
  kind : kind;
  mutable value : Univ.t;
  show : Univ.t -> string;
  check_domain : Univ.t -> unit;
  domain_desc : string;
  mutable llsc_seq : int;
  llsc_link : (Pid.t, int) Hashtbl.t;
}

let make ~id ~name ~kind ~show ~check_domain ~domain_desc ~init =
  check_domain init;
  {
    id;
    name;
    kind;
    value = init;
    show;
    check_domain;
    domain_desc;
    llsc_seq = 0;
    llsc_link = Hashtbl.create 8;
  }

let is_register c = c.kind = Register
let same a b = a.id = b.id
let rendered_value c = c.show c.value

let kind_name = function
  | Register -> "register"
  | Cas_obj -> "CAS"
  | Writable_cas -> "writable CAS"
  | Llsc_obj -> "LL/SC/VL"
