open Aba_primitives

type ('op, 'res) instance = { driver : ('op, 'res) Driver.t }

type ('op, 'res) outcome =
  | Ok of int
  | Violation of Pid.t list * ('op, 'res) Event.history
  | Budget_exhausted of int

exception Stop of int
exception Found of Pid.t list

(* One action of process [p]: lazily invoke its next scripted operation if
   it is idle, then execute one shared-memory step (unless the invocation
   completed with zero steps). *)
let act driver remaining p =
  if Driver.pending driver p then Driver.step driver p
  else
    match remaining.(p) with
    | [] -> invalid_arg "Explore.act: process has no work"
    | op :: rest ->
        remaining.(p) <- rest;
        Driver.invoke driver p op;
        if Driver.pending driver p then Driver.step driver p

let replay make scripts rev_path =
  let ({ driver } : _ instance) = make () in
  let remaining = Array.copy scripts in
  List.iter (act driver remaining) (List.rev rev_path);
  (driver, remaining)

let exhaustive ~make ~scripts ~check ?(max_schedules = 2_000_000)
    ?(max_depth = 10_000) () =
  let n = Array.length scripts in
  let leaves = ref 0 in
  let rec dfs rev_path depth =
    (* A branch exceeding [max_depth] actions indicates a livelocked
       implementation (e.g. a retry loop that can never succeed): better a
       loud failure than a silent hang. *)
    if depth > max_depth then
      failwith "Explore.exhaustive: branch exceeded max_depth";
    let driver, remaining = replay make scripts rev_path in
    let enabled =
      List.filter
        (fun p -> Driver.pending driver p || remaining.(p) <> [])
        (Pid.all ~n)
    in
    match enabled with
    | [] ->
        incr leaves;
        if not (check (Driver.history driver)) then
          raise (Found (List.rev rev_path));
        if !leaves >= max_schedules then raise (Stop !leaves)
    | _ -> List.iter (fun p -> dfs (p :: rev_path) (depth + 1)) enabled
  in
  match dfs [] 0 with
  | () -> Ok !leaves
  | exception Stop k -> Budget_exhausted k
  | exception Found path ->
      let driver, remaining = replay make scripts (List.rev path) in
      ignore remaining;
      Violation (path, Driver.history driver)

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let count_schedules_opt ~n_actions =
  (* Multinomial coefficient, built binomial by binomial.  Each binomial
     C(rem, k) is taken through its smaller side (C(rem, min k (rem-k)))
     so the running value only climbs, and each inner step reduces
     numerator and denominator by their gcd before the overflow-checked
     multiplication — together these make the computation exact whenever
     the result fits in [int], and [None] exactly when it does not. *)
  let total = Array.fold_left ( + ) 0 n_actions in
  let result = ref (Some 1) in
  let remaining = ref total in
  Array.iter
    (fun k ->
      let kk = min k (!remaining - k) in
      for i = 1 to kk do
        match !result with
        | None -> ()
        | Some r ->
            let num = !remaining - kk + i in
            let g = gcd num i in
            let num = num / g and i = i / g in
            (* i is now coprime to num, so it divides r exactly. *)
            let r = r / i in
            if num > 0 && r > max_int / num then result := None
            else result := Some (r * num)
      done;
      remaining := !remaining - k)
    n_actions;
  !result

let count_schedules ~n_actions =
  match count_schedules_opt ~n_actions with Some c -> c | None -> max_int

(* {1 Dynamic partial-order reduction} *)

type dpor_stats = {
  explored : int;
  schedule_bound : int option;
  sleep_set_prunes : int;
  preemption_prunes : int;
  races_detected : int;
  crashes_injected : int;
  max_depth_reached : int;
  rebuilds : int;
  actions_executed : int;
  actions_replayed : int;
}

type ('op, 'res) dpor_result = {
  verdict : ('op, 'res) outcome;
  stats : dpor_stats;
}

module Pid_set = Set.Make (Int)

(* One DFS node.  [f_enabled] is the enabled set {e before} the node's
   action; [f_chosen]/[f_fp]/[f_clock] describe the action most recently
   taken from the node (the event at this depth on the current path). *)
type frame = {
  f_enabled : Pid.t list;
  mutable f_backtrack : Pid_set.t;
  mutable f_done : Pid_set.t;
  mutable f_done_moves : (Pid.t * Step.footprint option) list;
  f_sleep : (Pid.t * Step.footprint option) list;
  mutable f_chosen : Pid.t;
  mutable f_fp : Step.footprint option;
  mutable f_clock : int array;
}

(* Independence of whole actions: an action with no footprint performed no
   shared-memory step, so it commutes with everything. *)
let independent fpa fpb =
  match (fpa, fpb) with
  | Some a, Some b -> not (Step.conflicts a b)
  | None, _ | _, None -> true

let dpor ~make ~scripts ~check ?(max_schedules = 2_000_000)
    ?(max_depth = 10_000) ?preemption_bound ?(crash_bound = 0)
    ?(on_crash = fun _ -> []) () =
  let n = Array.length scripts in
  let make_driver () = (make () : _ instance).driver in
  (* Reference solo run: per-process action counts under the sequential
     schedule p0..p(n-1), sizing the multinomial bound that the reduction
     factor is measured against.  Retry loops can make counts schedule-
     dependent, so for such workloads the bound is a reference point, not
     a certified maximum. *)
  let ref_counts =
    let u = Driver.Incremental.create ~make:make_driver ~scripts () in
    let counts = Array.make (max n 1) 0 in
    for p = 0 to n - 1 do
      while List.mem p (Driver.Incremental.enabled u) do
        ignore (Driver.Incremental.advance u p);
        counts.(p) <- counts.(p) + 1
      done
    done;
    if n = 0 then [||] else counts
  in
  (* Crash moves add schedules outside the crash-free interleaving count,
     so the multinomial is not an upper bound for a crash-augmented
     search; report no bound rather than a misleading one. *)
  let schedule_bound =
    if crash_bound > 0 then None else count_schedules_opt ~n_actions:ref_counts
  in
  let u = Driver.Incremental.create ~on_crash ~make:make_driver ~scripts () in
  let frames : frame option array = Array.make (max_depth + 1) None in
  let explored = ref 0 in
  let sleep_set_prunes = ref 0 in
  let preemption_prunes = ref 0 in
  let races_detected = ref 0 in
  let crashes_injected = ref 0 in
  let deepest = ref 0 in
  let violation = ref None in
  let frame_at j =
    match frames.(j) with Some f -> f | None -> assert false
  in
  (* Schedule the race reversal at [pre(event j)]: run the later event's
     process there if it was enabled, otherwise conservatively everything
     that was (Flanagan–Godefroid's backtrack-insertion rule). *)
  let insert_backtrack fj p =
    if not (Pid_set.mem p fj.f_done || Pid_set.mem p fj.f_backtrack) then
      if List.mem p fj.f_enabled then
        fj.f_backtrack <- Pid_set.add p fj.f_backtrack
      else
        fj.f_backtrack <-
          List.fold_left
            (fun s q -> Pid_set.add q s)
            fj.f_backtrack fj.f_enabled
  in
  (* Compute the happens-before clock of the event just executed at depth
     [d] by [p] and detect reversible races against earlier events on the
     path.  [cv] starts from [p]'s program-order predecessor and absorbs,
     scanning backwards, the clock of every earlier conflicting event; an
     earlier event [j] by [q] races iff it conflicts and is not already
     ordered before this one (j+1 > cv.(q) at scan time). *)
  let update_clock_and_races d p fp fr =
    let cv = Array.make n 0 in
    let rec find_po j =
      if j >= 0 then
        let fj = frame_at j in
        if fj.f_chosen = p then Array.blit fj.f_clock 0 cv 0 n
        else find_po (j - 1)
    in
    find_po (d - 1);
    (match fp with
    | None -> ()
    | Some fpi ->
        for j = d - 1 downto 0 do
          let fj = frame_at j in
          let q = fj.f_chosen in
          if q <> p then
            match fj.f_fp with
            | Some fpj when Step.conflicts fpj fpi ->
                if j + 1 > cv.(q) then begin
                  incr races_detected;
                  insert_backtrack fj p
                end;
                for r = 0 to n - 1 do
                  if fj.f_clock.(r) > cv.(r) then cv.(r) <- fj.f_clock.(r)
                done
            | _ -> ()
        done);
    cv.(p) <- d + 1;
    fr.f_clock <- cv
  in
  let rec node depth sleep preemptions crashes =
    if depth > max_depth then
      failwith "Explore.dpor: branch exceeded max_depth";
    if depth > !deepest then deepest := depth;
    let enabled = Driver.Incremental.enabled u in
    match enabled with
    | [] ->
        incr explored;
        let history = Driver.history (Driver.Incremental.driver u) in
        if not (check history) then begin
          let path = Driver.Incremental.path u in
          violation := Some (path, history);
          raise (Found path)
        end;
        if !explored >= max_schedules then raise (Stop !explored)
    | _ ->
        let sleeping p = List.exists (fun (q, _) -> q = p) sleep in
        let awake = List.filter (fun p -> not (sleeping p)) enabled in
        (* Crash moves are extra children, explored unconditionally for
           every process with an in-flight operation (the budget aside):
           they never enter backtrack, done or sleep sets, a sound
           over-approximation — a crash is a distinct move of the same
           process, so a sleeping process's step move must not suppress
           it.  The configuration at this node is determined by the
           prefix, so the crashable set is computed on entry, while [u]
           still sits at [depth]. *)
        let crashable =
          if crashes >= crash_bound then []
          else
            List.filter
              (fun p -> Driver.pending (Driver.Incremental.driver u) p)
              enabled
        in
        if awake = [] && crashable = [] then incr sleep_set_prunes
        else begin
          let prev =
            if depth = 0 then -1 else (frame_at (depth - 1)).f_chosen
          in
          (* Prefer continuing the previous process: keeps the schedule
             preemption-free by default, so a preemption bound prunes
             only genuine context switches. *)
          let first =
            match awake with
            | [] -> None
            | _ ->
                Some
                  (if prev >= 0 && List.mem prev awake then prev
                   else List.hd awake)
          in
          let fr =
            {
              f_enabled = enabled;
              f_backtrack =
                (match first with
                | None -> Pid_set.empty
                | Some p -> Pid_set.singleton p);
              f_done = Pid_set.empty;
              f_done_moves = [];
              f_sleep = sleep;
              f_chosen = -1;
              f_fp = None;
              f_clock = [||];
            }
          in
          frames.(depth) <- Some fr;
          let rec loop () =
            let todo =
              Pid_set.filter
                (fun p -> not (sleeping p))
                (Pid_set.diff fr.f_backtrack fr.f_done)
            in
            match Pid_set.min_elt_opt todo with
            | None -> ()
            | Some p ->
                fr.f_done <- Pid_set.add p fr.f_done;
                let preemptions' =
                  if prev >= 0 && p <> prev && List.mem prev enabled then
                    preemptions + 1
                  else preemptions
                in
                (match preemption_bound with
                | Some b when preemptions' > b -> incr preemption_prunes
                | _ ->
                    if Driver.Incremental.depth u <> depth then
                      Driver.Incremental.rewind u ~depth;
                    let fp = Driver.Incremental.advance u p in
                    fr.f_chosen <- p;
                    fr.f_fp <- fp;
                    update_clock_and_races depth p fp fr;
                    let child_sleep =
                      List.filter
                        (fun (_, fpq) -> independent fpq fp)
                        (fr.f_sleep @ fr.f_done_moves)
                    in
                    node (depth + 1) child_sleep preemptions' crashes;
                    fr.f_done_moves <- (p, fp) :: fr.f_done_moves);
                loop ()
          in
          (match awake with [] -> incr sleep_set_prunes | _ -> loop ());
          (* The crash children.  A crash touches no shared memory (its
             footprint is empty), so it commutes with every other
             process's moves: the inherited sleep entries stay valid —
             except the crashed process's own, which is a different move
             of the same process and must wake. *)
          List.iter
            (fun p ->
              if Driver.Incremental.depth u <> depth then
                Driver.Incremental.rewind u ~depth;
              Driver.Incremental.crash u p;
              incr crashes_injected;
              fr.f_chosen <- p;
              fr.f_fp <- None;
              update_clock_and_races depth p None fr;
              let child_sleep =
                List.filter
                  (fun (q, _) -> q <> p)
                  (fr.f_sleep @ fr.f_done_moves)
              in
              node (depth + 1) child_sleep preemptions (crashes + 1))
            crashable
        end
  in
  let verdict =
    match node 0 [] 0 0 with
    | () -> Ok !explored
    | exception Stop k -> Budget_exhausted k
    | exception Found _ -> (
        match !violation with
        | Some (path, history) -> Violation (path, history)
        | None -> assert false)
  in
  let istats = Driver.Incremental.stats u in
  {
    verdict;
    stats =
      {
        explored = !explored;
        schedule_bound;
        sleep_set_prunes = !sleep_set_prunes;
        preemption_prunes = !preemption_prunes;
        races_detected = !races_detected;
        crashes_injected = !crashes_injected;
        max_depth_reached = !deepest;
        rebuilds = istats.Driver.Incremental.rebuilds;
        actions_executed = istats.Driver.Incremental.actions_executed;
        actions_replayed = istats.Driver.Incremental.actions_replayed;
      };
  }
