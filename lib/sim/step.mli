(** Shared-memory steps.

    A step is one atomic operation on one base object — the unit of
    scheduling in the paper's model.  A suspended process is {e poised} at
    exactly one step; the lower-bound adversaries inspect poised steps to
    decide covering sets ([WCov], [CCov]) and block-writes. *)

open Aba_primitives

type t =
  | Read of Cell.t
  | Write of Cell.t * Univ.t
  | Cas of Cell.t * Univ.t * Univ.t  (** expected, update *)
  | Ll of Cell.t
  | Sc of Cell.t * Univ.t
  | Vl of Cell.t

type outcome = Value of Univ.t | Bool of bool | Unit

val cell : t -> Cell.t
(** The base object the step operates on. *)

val is_write : t -> bool
(** True for [Write] steps — membership in [WCov] (Section 2.2). *)

val is_cas : t -> bool
(** True for [Cas] steps — membership in [CCov] (Section 2.2). *)

(** {1 Footprints and dependence}

    The DPOR engine ({!Explore.dpor}) decides which schedule reorderings
    can matter from per-step footprints: the base object a step touches
    plus how it touches it. *)

type access =
  | Load  (** [Read], [Ll], [Vl] — never changes what others observe *)
  | Store  (** [Write] — unconditional mutation *)
  | Rmw  (** [Cas], [Sc] — mutation conditional on the current contents *)

type footprint = { on : Cell.t; access : access }

val footprint : t -> footprint
(** The cell identity and access kind of the step.  [Ll]'s per-process
    link entry is private to the linking process and therefore not part of
    the footprint. *)

val mutates : t -> bool
(** True for [Store] and [Rmw] footprints. *)

val conflicts : footprint -> footprint -> bool
(** The dependence relation: two steps conflict iff they touch the {e
    same} cell and at least one of them mutates it.  Steps of different
    processes whose footprints do not conflict commute: executing them in
    either order yields the same configuration and the same outcomes.
    Conditional mutations ([Rmw]) count as mutating even when they would
    fail, because success itself is order-dependent. *)

val would_succeed : pid:Pid.t -> t -> bool option
(** Whether the step's {e conditional} mutation would succeed if executed
    by [pid] in the current configuration: [Some] for [Cas] (expected
    value is current) and [Sc] ([pid]'s link is valid), [None] for the
    unconditional steps ([Read]/[Write]/[Ll]/[Vl]), which cannot fail.
    Used to build [P]-successful schedules (Lemma 2/3); the explicit
    [None] keeps call sites from conflating "unconditional" with "would
    fail". *)

val execute : pid:Pid.t -> t -> outcome
(** Atomically apply the step to its cell.  Raises [Invalid_argument] if the
    step is ill-kinded for the cell (e.g. [Write] on a non-writable CAS
    object) or the written value is outside the cell's domain. *)

val describe : t -> string
(** Stable rendering (used in signatures and traces), e.g.
    ["write X := (1,p0,3)"]. *)
