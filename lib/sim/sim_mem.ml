open Aba_primitives

module Make (A : sig
  val sim : Sim.t
end) : Mem_intf.S = struct
  let mem_name = "sim"

  (* Each typed object couples a cell with the embedding of its value type
     into the universal store.  Projection failures cannot happen as long as
     each cell is only accessed through its own wrapper, which the type of
     the wrapper guarantees.  [codec] is present on packed CAS objects only;
     the simulator's CAS is already structural, so packed accessors decode
     and delegate — still one scheduler step each, with the decoded values
     visible to domain checks and traces. *)
  type 'a typed = {
    cell : Cell.t;
    embed : 'a Univ.embed;
    codec : 'a Mem_intf.codec option;
  }

  (* Objects created through this instance, newest first.  Several instances
     may share one simulation (e.g. an algorithm plus the harness around
     it); [space] reports only this instance's objects so Theorem 1's "m" is
     measured per implementation. *)
  let created : Cell.t list ref = ref []

  type 'a register = 'a typed
  type 'a cas = 'a typed
  type 'a llsc = 'a typed

  let project (o : 'a typed) (u : Univ.t) : 'a =
    match o.embed.prj u with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Sim_mem: foreign value in cell %s" o.cell.Cell.name)

  let make_typed ?bound ?codec ~name ~show ~kind init : 'a typed =
    let embed = Univ.create () in
    let show_u u =
      match embed.Univ.prj u with Some v -> show v | None -> "<foreign>"
    in
    let check_domain u =
      match bound with
      | None -> ()
      | Some b -> (
          match embed.Univ.prj u with
          | Some v -> Bounded.check ~what:name b v
          | None ->
              invalid_arg
                (Printf.sprintf "Sim_mem: foreign value written to %s" name))
    in
    let domain_desc =
      match bound with None -> "unbounded" | Some b -> Bounded.describe b
    in
    let cell =
      Sim.register_cell A.sim ~name ~kind ~show:show_u ~check_domain
        ~domain_desc ~init:(embed.Univ.inj init)
    in
    created := cell :: !created;
    { cell; embed; codec }

  let value_outcome o = function
    | Step.Value u -> project o u
    | Step.Bool _ | Step.Unit ->
        invalid_arg "Sim_mem: step returned a non-value outcome"

  let bool_outcome = function
    | Step.Bool b -> b
    | Step.Value _ | Step.Unit ->
        invalid_arg "Sim_mem: step returned a non-bool outcome"

  let make_register ?bound ?padded:_ ~name ~show init =
    make_typed ?bound ~name ~show ~kind:Cell.Register init

  let read (r : 'a register) : 'a =
    value_outcome r (Sim.perform_step (Step.Read r.cell))

  let write (r : 'a register) (v : 'a) =
    match Sim.perform_step (Step.Write (r.cell, r.embed.Univ.inj v)) with
    | Step.Unit -> ()
    | Step.Value _ | Step.Bool _ ->
        invalid_arg "Sim_mem: write returned a non-unit outcome"

  let make_cas ?bound ?(writable = false) ?padded:_ ~name ~show init =
    let kind = if writable then Cell.Writable_cas else Cell.Cas_obj in
    make_typed ?bound ~name ~show ~kind init

  let make_cas_packed ?bound ?(writable = false) ?padded:_ ~name ~show ~codec
      init =
    let kind = if writable then Cell.Writable_cas else Cell.Cas_obj in
    make_typed ?bound ~codec ~name ~show ~kind init

  let cas_read (c : 'a cas) : 'a =
    value_outcome c (Sim.perform_step (Step.Read c.cell))

  let cas (c : 'a cas) ~expect ~update =
    bool_outcome
      (Sim.perform_step
         (Step.Cas (c.cell, c.embed.Univ.inj expect, c.embed.Univ.inj update)))

  let codec_of (c : 'a cas) =
    match c.codec with
    | Some k -> k
    | None ->
        invalid_arg
          (Printf.sprintf "Sim_mem: %s is not a packed CAS object"
             c.cell.Cell.name)

  let cas_read_packed (c : 'a cas) = (codec_of c).Mem_intf.encode (cas_read c)

  let cas_packed (c : 'a cas) ~expect ~update =
    let k = codec_of c in
    cas c ~expect:(k.Mem_intf.decode expect) ~update:(k.Mem_intf.decode update)

  let cas_write (c : 'a cas) (v : 'a) =
    match Sim.perform_step (Step.Write (c.cell, c.embed.Univ.inj v)) with
    | Step.Unit -> ()
    | Step.Value _ | Step.Bool _ ->
        invalid_arg "Sim_mem: write returned a non-unit outcome"

  let make_llsc ?bound ?padded:_ ~name ~show init =
    make_typed ?bound ~name ~show ~kind:Cell.Llsc_obj init

  let ll (o : 'a llsc) ~pid:_ : 'a =
    value_outcome o (Sim.perform_step (Step.Ll o.cell))

  let sc (o : 'a llsc) ~pid:_ (v : 'a) =
    bool_outcome (Sim.perform_step (Step.Sc (o.cell, o.embed.Univ.inj v)))

  let vl (o : 'a llsc) ~pid:_ =
    bool_outcome (Sim.perform_step (Step.Vl o.cell))

  let space () =
    List.rev_map
      (fun (c : Cell.t) -> (c.Cell.name, c.Cell.domain_desc))
      !created
end

let make sim : (module Mem_intf.S) =
  (module Make (struct
    let sim = sim
  end))
