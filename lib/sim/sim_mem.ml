open Aba_primitives

module Make (A : sig
  val sim : Sim.t
end) : Mem_intf.S = struct
  let mem_name = "sim"

  (* Each typed object couples a cell with the embedding of its value type
     into the universal store.  Projection failures cannot happen as long as
     each cell is only accessed through its own wrapper, which the type of
     the wrapper guarantees.  [codec] is present on packed CAS objects only;
     the simulator's CAS is already structural, so packed accessors decode
     and delegate — still one scheduler step each, with the decoded values
     visible to domain checks and traces. *)
  type 'a typed = {
    cell : Cell.t;
    embed : 'a Univ.embed;
    codec : 'a Mem_intf.codec option;
  }

  (* Objects created through this instance, newest first.  Several instances
     may share one simulation (e.g. an algorithm plus the harness around
     it); [space] reports only this instance's objects so Theorem 1's "m" is
     measured per implementation. *)
  let created : Cell.t list ref = ref []

  type 'a register = 'a typed
  type 'a cas = 'a typed
  type 'a llsc = 'a typed

  (* A double-word CAS object is one cell holding the (value, tag) pair:
     [cas2] is a single [Step.Cas] on that cell, so its DPOR footprint is
     the same Rmw footprint as any CAS and explored schedules stay
     certifiable without new step kinds. *)
  type 'a cas2 = { p2 : ('a * int) typed; p2_tag_bits : int }

  let project (o : 'a typed) (u : Univ.t) : 'a =
    match o.embed.prj u with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Sim_mem: foreign value in cell %s" o.cell.Cell.name)

  let make_typed ?bound ?codec ~name ~show ~kind init : 'a typed =
    let embed = Univ.create () in
    let show_u u =
      match embed.Univ.prj u with Some v -> show v | None -> "<foreign>"
    in
    let check_domain u =
      match bound with
      | None -> ()
      | Some b -> (
          match embed.Univ.prj u with
          | Some v -> Bounded.check ~what:name b v
          | None ->
              invalid_arg
                (Printf.sprintf "Sim_mem: foreign value written to %s" name))
    in
    let domain_desc =
      match bound with None -> "unbounded" | Some b -> Bounded.describe b
    in
    let cell =
      Sim.register_cell A.sim ~name ~kind ~show:show_u ~check_domain
        ~domain_desc ~init:(embed.Univ.inj init)
    in
    created := cell :: !created;
    { cell; embed; codec }

  let value_outcome o = function
    | Step.Value u -> project o u
    | Step.Bool _ | Step.Unit ->
        invalid_arg "Sim_mem: step returned a non-value outcome"

  let bool_outcome = function
    | Step.Bool b -> b
    | Step.Value _ | Step.Unit ->
        invalid_arg "Sim_mem: step returned a non-bool outcome"

  let make_register ?bound ?padded:_ ~name ~show init =
    make_typed ?bound ~name ~show ~kind:Cell.Register init

  let read (r : 'a register) : 'a =
    value_outcome r (Sim.perform_step (Step.Read r.cell))

  let write (r : 'a register) (v : 'a) =
    match Sim.perform_step (Step.Write (r.cell, r.embed.Univ.inj v)) with
    | Step.Unit -> ()
    | Step.Value _ | Step.Bool _ ->
        invalid_arg "Sim_mem: write returned a non-unit outcome"

  let make_cas ?bound ?(writable = false) ?padded:_ ~name ~show init =
    let kind = if writable then Cell.Writable_cas else Cell.Cas_obj in
    make_typed ?bound ~name ~show ~kind init

  let make_cas_packed ?bound ?(writable = false) ?padded:_ ~name ~show ~codec
      init =
    let kind = if writable then Cell.Writable_cas else Cell.Cas_obj in
    make_typed ?bound ~codec ~name ~show ~kind init

  let cas_read (c : 'a cas) : 'a =
    value_outcome c (Sim.perform_step (Step.Read c.cell))

  let cas (c : 'a cas) ~expect ~update =
    bool_outcome
      (Sim.perform_step
         (Step.Cas (c.cell, c.embed.Univ.inj expect, c.embed.Univ.inj update)))

  let codec_of (c : 'a cas) =
    match c.codec with
    | Some k -> k
    | None ->
        invalid_arg
          (Printf.sprintf "Sim_mem: %s is not a packed CAS object"
             c.cell.Cell.name)

  let cas_read_packed (c : 'a cas) = (codec_of c).Mem_intf.encode (cas_read c)

  let cas_packed (c : 'a cas) ~expect ~update =
    let k = codec_of c in
    cas c ~expect:(k.Mem_intf.decode expect) ~update:(k.Mem_intf.decode update)

  let cas_write (c : 'a cas) (v : 'a) =
    match Sim.perform_step (Step.Write (c.cell, c.embed.Univ.inj v)) with
    | Step.Unit -> ()
    | Step.Value _ | Step.Bool _ ->
        invalid_arg "Sim_mem: write returned a non-unit outcome"

  let make_cas2 ?bound ?padded:_ ?codec ~tag_bits ~name ~show init itag =
    Mem_intf.check_tag_bits ~what:"Sim_mem.make_cas2" tag_bits;
    let mask = (1 lsl tag_bits) - 1 in
    let tag_bound = Bounded.bits ~width:tag_bits in
    let pair_bound =
      match bound with
      | Some b -> Bounded.pair b tag_bound
      | None -> Bounded.pair (Bounded.unbounded ~describe:"any value") tag_bound
    in
    let pair_codec =
      Option.map
        (fun (k : 'a Mem_intf.codec) ->
          {
            Mem_intf.encode =
              (fun (v, t) -> Mem_intf.pack2 ~tag_bits (k.Mem_intf.encode v) t);
            decode =
              (fun w ->
                ( k.Mem_intf.decode (Mem_intf.unpack2_value ~tag_bits w),
                  Mem_intf.unpack2_tag ~tag_bits w ));
          })
        codec
    in
    let show_pair (v, t) = Printf.sprintf "(%s, t%d)" (show v) t in
    {
      p2 =
        make_typed ~bound:pair_bound ?codec:pair_codec ~name ~show:show_pair
          ~kind:Cell.Cas_obj
          (init, itag land mask);
      p2_tag_bits = tag_bits;
    }

  let cas2_read w = cas_read w.p2

  let cas2 w ~expect ~expect_tag ~update ~update_tag =
    let mask = (1 lsl w.p2_tag_bits) - 1 in
    cas w.p2
      ~expect:(expect, expect_tag land mask)
      ~update:(update, update_tag land mask)

  let cas2_pack w v t =
    (codec_of w.p2).Mem_intf.encode (v, t land ((1 lsl w.p2_tag_bits) - 1))

  let cas2_read_packed w = cas_read_packed w.p2
  let cas2_packed w ~expect ~update = cas_packed w.p2 ~expect ~update

  let make_llsc ?bound ?padded:_ ~name ~show init =
    make_typed ?bound ~name ~show ~kind:Cell.Llsc_obj init

  let ll (o : 'a llsc) ~pid:_ : 'a =
    value_outcome o (Sim.perform_step (Step.Ll o.cell))

  let sc (o : 'a llsc) ~pid:_ (v : 'a) =
    bool_outcome (Sim.perform_step (Step.Sc (o.cell, o.embed.Univ.inj v)))

  let vl (o : 'a llsc) ~pid:_ =
    bool_outcome (Sim.perform_step (Step.Vl o.cell))

  let space () =
    List.rev_map
      (fun (c : Cell.t) -> (c.Cell.name, c.Cell.domain_desc))
      !created
end

let make sim : (module Mem_intf.S) =
  (module Make (struct
    let sim = sim
  end))
