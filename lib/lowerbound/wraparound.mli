(** Bounded-tag wraparound experiments (experiment E6).

    The introduction discusses the folklore tagging technique and why
    bounded tags do not solve the ABA problem: tag values wrap around.
    This module quantifies that:

    - [directed_search] finds, for a given implementation, the smallest
      number of same-value writes between two reads of one process that
      goes undetected.  For the mod-[T] tagging scheme the answer is
      exactly [T]; for the correct implementations there is none.
    - [randomized_search] drives random concurrent schedules through the
      simulator and checks every history against the weak condition and
      the linearizability checker, reporting the first violating seed.

    Together with the exhaustive exploration of the test suite this gives
    the empirical side of "bounded tags fail, detection needs real space"
    (Theorem 1 vs. the unbounded escape hatch). *)

type directed_result =
  | Missed_after of int
      (** smallest number of writes between two reads that went undetected *)
  | Detected_up_to of int  (** all probed counts were detected *)

val directed_search :
  Aba_core.Instances.aba_builder -> n:int -> max_writes:int -> directed_result

type randomized_result = {
  histories_checked : int;
  violation_seed : int option;
      (** seed of the first history that failed the checks, if any *)
}

type stale_tag_result = {
  stale_cas_won : bool;
      (** did the stalled pop's CAS succeed on its wrapped-around witness? *)
  duplicate_pops : int list;
      (** values popped more often than they were pushed (ABA corruption) *)
  crossing_scans : int;
      (** announcement-slot scans performed by half-space crossings *)
}

val stale_tag_adversary : guard:bool -> unit -> stale_tag_result
(** The Treiber-stack wraparound schedule behind the [Announced]
    protection's regression pair, replayed deterministically over
    {!Aba_core.Announced_tags} with [tag_bits = 2]: a reader protects the
    head and stalls on its witness while a writer pops the whole stack
    and pushes the old top back, landing the head on the reader's tag
    again after [2^tag_bits] installs.  With [~guard:false] (plain
    mod-[2^k] tags) the stale CAS wins and the drain double-pops nodes
    that left the stack long ago; with [~guard:true] the push's crossing
    scan sees the announced tag, installs past it, and the stale CAS
    fails — same schedule, [duplicate_pops = []]. *)

val randomized_search :
  Aba_core.Instances.aba_builder ->
  n:int ->
  ops_per_pid:int ->
  seeds:int ->
  randomized_result
