open Aba_primitives

type violation = { at_level : int; flag : bool; writes_missed : int }

type outcome =
  | Covered of (Pid.t * string) list
  | Violation of violation
  | Escaped of { at_level : int }
  | No_repetition of { at_level : int; iterations : int }

type stats = { total_steps : int; total_iterations : int; replays : int }

exception Found_violation of violation
exception Found_escape of int
exception Found_no_repetition of int * int

(* The context carries the current runner; the repetition step replaces it
   with a replayed copy, and every recursion level goes through the context
   so the swap is transparent to the callers up the stack. *)
type ctx = {
  mutable runner : Weak_runner.t;
  mutable iterations : int;
  mutable replays : int;
  mutable steps_retired : int;
      (** steps of runners discarded by replays, so stats count all work *)
  max_iter : int;
}

type covering = (Pid.t * Aba_sim.Cell.t) list

let covered_cell_ids (cov : covering) =
  List.map (fun (_, (c : Aba_sim.Cell.t)) -> c.Aba_sim.Cell.id) cov

(* Execute the block-write: each coverer takes exactly its poised write
   step, in pid order.  The invariant is stated on footprints: the poised
   step must be an unconditional store ([Store], i.e. [would_succeed]
   returns [None] — a write cannot fail) on the covered cell. *)
let block_write ctx (cov : covering) =
  List.iter
    (fun (p, (cell : Aba_sim.Cell.t)) ->
      (match Weak_runner.poised ctx.runner p with
      | Some s
        when (let fp = Aba_sim.Step.footprint s in
              fp.Aba_sim.Step.access = Aba_sim.Step.Store
              && Aba_sim.Cell.same fp.Aba_sim.Step.on cell)
             && Aba_sim.Step.would_succeed ~pid:p s = None ->
          ()
      | _ ->
          failwith
            (Printf.sprintf
               "covering invariant broken: p%d not poised to write %s" p
               cell.Aba_sim.Cell.name));
      Weak_runner.step ctx.runner p)
    cov

(* Run [newcomer] solo from the current configuration until it is poised to
   write outside [covered] (returning the fresh cell) or finishes its
   WeakRead (returning [None]). *)
let solo_until_fresh_write ctx covered newcomer =
  Weak_runner.invoke_read ctx.runner newcomer;
  let covered_ids = covered_cell_ids covered in
  let rec go budget =
    if budget = 0 then failwith "solo_until_fresh_write: no termination";
    match Weak_runner.poised ctx.runner newcomer with
    | None -> None
    | Some (Aba_sim.Step.Write (cell, _))
      when not (List.mem cell.Aba_sim.Cell.id covered_ids) ->
        Some cell
    | Some _ ->
        Weak_runner.step ctx.runner newcomer;
        go (budget - 1)
  in
  go 1_000_000

let count_writes sigma =
  List.length
    (List.filter
       (function Weak_runner.Invoke_write _ -> true | _ -> false)
       sigma)

(* [cover ctx k] drives the system from its current quiescent configuration
   to one where pids 1..k are poised to write to k distinct registers and
   process 0 is idle; returns the covering. *)
let rec cover ctx k : covering =
  if k = 0 then []
  else begin
    let newcomer = k in
    (* reg-config after the block-write -> (mark of C, mark of D, covering
       cell ids at C) of the first occurrence *)
    let seen : (string, int * int * covering) Hashtbl.t = Hashtbl.create 64 in
    let rec iterate i =
      if i > ctx.max_iter then raise (Found_no_repetition (k, i - 1));
      ctx.iterations <- ctx.iterations + 1;
      let cov = cover ctx (k - 1) in
      let mark_c = Weak_runner.mark ctx.runner in
      block_write ctx cov;
      let mark_d = Weak_runner.mark ctx.runner in
      let rc = Weak_runner.reg_config ctx.runner in
      match Hashtbl.find_opt seen rc with
      | Some (mark_c0, mark_d0, cov0) -> begin
          (* Repetition: jump back to the first occurrence's C and run the
             newcomer solo there. *)
          let sigma =
            Weak_runner.log_slice ctx.runner ~from:mark_d0 ~upto:mark_d
          in
          ctx.replays <- ctx.replays + 1;
          ctx.steps_retired <-
            ctx.steps_retired + Weak_runner.total_steps ctx.runner;
          ctx.runner <- Weak_runner.replay_prefix ctx.runner ~upto:mark_c0;
          match solo_until_fresh_write ctx cov0 newcomer with
          | Some fresh_cell -> cov0 @ [ (newcomer, fresh_cell) ]
          | None -> begin
              (* The newcomer finished its WeakRead writing only inside the
                 covered set: re-execute the proof's sigma and observe the
                 confusion. *)
              block_write ctx cov0;
              match
                List.iter (Weak_runner.apply ctx.runner) sigma;
                Weak_runner.complete_read ctx.runner newcomer
              with
              | flag ->
                  if flag then raise (Found_escape k)
                  else
                    raise
                      (Found_violation
                         {
                           at_level = k;
                           flag;
                           writes_missed = count_writes sigma;
                         })
              | exception (Invalid_argument _ | Failure _) ->
                  (* The replayed processes diverged from the recorded
                     actions: the implementation distinguished D'_i from
                     D_i, which bounded registers cannot do — conditional
                     primitives escape Theorem 1(a). *)
                  raise (Found_escape k)
            end
        end
      | None ->
          Hashtbl.add seen rc (mark_c, mark_d, cov);
          (* gamma: finish the readers, then one complete WeakWrite. *)
          List.iter (fun (p, _) -> Weak_runner.run_solo ctx.runner p) cov;
          Weak_runner.complete_write ctx.runner 0;
          iterate (i + 1)
    in
    iterate 1
  end

let run ?(max_iterations_per_level = 2000) builder ~n =
  if n < 2 then invalid_arg "Covering.run: need n >= 2";
  let ctx =
    {
      runner = Weak_runner.create builder ~n;
      iterations = 0;
      replays = 0;
      steps_retired = 0;
      max_iter = max_iterations_per_level;
    }
  in
  let outcome =
    match cover ctx (n - 1) with
    | cov ->
        Covered
          (List.map
             (fun (p, (c : Aba_sim.Cell.t)) -> (p, c.Aba_sim.Cell.name))
             cov)
    | exception Found_violation v -> Violation v
    | exception Found_escape k -> Escaped { at_level = k }
    | exception Found_no_repetition (k, iters) ->
        No_repetition { at_level = k; iterations = iters }
  in
  let stats =
    {
      total_steps = ctx.steps_retired + Weak_runner.total_steps ctx.runner;
      total_iterations = ctx.iterations;
      replays = ctx.replays;
    }
  in
  (outcome, stats)

let pp_outcome ppf = function
  | Covered cov ->
      Format.fprintf ppf "covered %d distinct registers: %s" (List.length cov)
        (String.concat ", "
           (List.map
              (fun (p, name) -> Printf.sprintf "p%d->%s" p name)
              cov))
  | Violation { at_level; flag; writes_missed } ->
      Format.fprintf ppf
        "VIOLATION at level %d: dirty WeakRead returned %b despite %d \
         complete WeakWrite(s) since the previous read"
        at_level flag writes_missed
  | Escaped { at_level } ->
      Format.fprintf ppf
        "escaped at level %d (conditional primitives detected the \
         adversary; outside Theorem 1(a)'s register-only hypothesis)"
        at_level
  | No_repetition { at_level; iterations } ->
      Format.fprintf ppf
        "no repeated register configuration at level %d after %d \
         iterations (unbounded base objects)"
        at_level iterations
