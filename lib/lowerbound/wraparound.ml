open Aba_core

type directed_result = Missed_after of int | Detected_up_to of int

(* Write once and read (arming the reader's stamp), then perform [k] writes
   of the same value and read again: the second read must report the
   intervening writes.  Sequential schedules suffice — wraparound is not a
   concurrency bug. *)
let directed_search builder ~n ~max_writes =
  let reader = 1 in
  let writer = 0 in
  let miss k =
    let inst = Instances.aba_seq builder ~n in
    inst.Instances.dwrite writer 1;
    let _, _ = inst.Instances.dread reader in
    for _ = 1 to k do
      inst.Instances.dwrite writer 1
    done;
    let _, flag = inst.Instances.dread reader in
    not flag
  in
  let rec probe k =
    if k > max_writes then Detected_up_to max_writes
    else if miss k then Missed_after k
    else probe (k + 1)
  in
  probe 1

type randomized_result = {
  histories_checked : int;
  violation_seed : int option;
}

(* --- Stale-tag adversary over the announcement guard --- *)

type stale_tag_result = {
  stale_cas_won : bool;
  duplicate_pops : int list;
  crossing_scans : int;
}

(* The classic Treiber wraparound schedule, replayed against the same
   head word with the announcement guard off (plain mod-2^k tags) and on.
   Three nodes A=0, B=1, C=2 start stacked A->B->C; a reader protects the
   head and reads A's successor, then stalls while the writer pops all
   three and pushes A back.  With [tag_bits = 2] the fourth install wants
   tag 0 again — exactly the reader's witness — so the unguarded run lets
   the stale CAS through (installing the long-gone B as head), while the
   guarded run's crossing scan sees the announced tag and skips it. *)
let stale_tag_adversary ~guard () =
  let module Seq = (val Aba_primitives.Seq_mem.make ()) in
  let module Guarded = Announced_tags.Make (Seq) in
  let tag_bits = 2 in
  let reader = 1 in
  let next = [| 1; 2; -1 |] in
  let head =
    Guarded.create ~guard ~tag_bits ~name:"stale" ~n:2 ~init:0 ()
  in
  (* Straight-line pop/push loops, fueled: the only process that runs
     one is alone in the schedule, so a handful of attempts suffices. *)
  let pop ~pid =
    let rec go fuel =
      if fuel = 0 then failwith "stale_tag_adversary: pop did not settle";
      let v, g = Guarded.protect head ~pid in
      if v = -1 then begin
        Guarded.clear head ~pid;
        None
      end
      else
        match
          Guarded.guarded_cas head ~expect:v ~expect_tag:g ~update:next.(v)
        with
        | Announced_tags.Installed ->
            Guarded.clear head ~pid;
            Some v
        | Announced_tags.Contended | Announced_tags.Blocked -> go (fuel - 1)
    in
    go 8
  in
  let push v =
    let rec go fuel =
      if fuel = 0 then failwith "stale_tag_adversary: push did not settle";
      let h, g = Guarded.peek head in
      next.(v) <- h;
      match Guarded.guarded_cas head ~expect:h ~expect_tag:g ~update:v with
      | Announced_tags.Installed -> ()
      | Announced_tags.Contended | Announced_tags.Blocked -> go (fuel - 1)
    in
    go 8
  in
  (* Reader: protect the head (announcing its tag when guarded), read the
     successor, stall. *)
  let hv, hg = Guarded.protect head ~pid:reader in
  let succ = next.(hv) in
  (* Writer: pop A, B, C; push A.  2^tag_bits = 4 installs, so the push
     lands back on the reader's witness tag modulo the guard. *)
  let writer_pops =
    List.filter_map (fun () -> pop ~pid:0) [ (); (); () ]
  in
  push 0;
  (* Reader resumes with its stale witness. *)
  let stale_outcome =
    Guarded.guarded_cas head ~expect:hv ~expect_tag:hg ~update:succ
  in
  let stale_cas_won = stale_outcome = Announced_tags.Installed in
  let reader_pops =
    if stale_cas_won then begin
      Guarded.clear head ~pid:reader;
      [ hv ]
    end
    else
      match pop ~pid:reader with Some v -> [ v ] | None -> []
  in
  let rec drain acc =
    match pop ~pid:0 with Some v -> drain (v :: acc) | None -> List.rev acc
  in
  let popped = writer_pops @ reader_pops @ drain [] in
  let pushed = [ 0; 1; 2; 0 ] in
  let count x = List.length (List.filter (Int.equal x) popped) in
  let budget x = List.length (List.filter (Int.equal x) pushed) in
  let duplicate_pops =
    List.sort_uniq compare (List.filter (fun v -> count v > budget v) popped)
  in
  { stale_cas_won; duplicate_pops; crossing_scans = Guarded.scans head }

module Check = Aba_spec.Lin_check.Make (Aba_spec.Aba_register_spec)

(* Forget the values: a DRead/DWrite history is a WeakRead/WeakWrite
   history, so the Section 2 weak condition applies as a second, cheaper
   validator alongside full linearizability. *)
let weak_view h =
  List.map
    (fun e ->
      match e with
      | Aba_primitives.Event.Invoke (p, Aba_spec.Aba_register_spec.DRead) ->
          Aba_primitives.Event.Invoke (p, Aba_spec.Weak_cond.Weak_read)
      | Aba_primitives.Event.Invoke (p, Aba_spec.Aba_register_spec.DWrite _)
        ->
          Aba_primitives.Event.Invoke (p, Aba_spec.Weak_cond.Weak_write)
      | Aba_primitives.Event.Response
          (p, Aba_spec.Aba_register_spec.Read_result (_, flag)) ->
          Aba_primitives.Event.Response (p, Aba_spec.Weak_cond.Flag flag)
      | Aba_primitives.Event.Response
          (p, Aba_spec.Aba_register_spec.Write_done) ->
          Aba_primitives.Event.Response (p, Aba_spec.Weak_cond.Write_done))
    h

let passes_weak_condition h =
  match Aba_spec.Weak_cond.check (weak_view h) with
  | Result.Ok () -> true
  | Result.Error _ -> false

let randomized_search builder ~n ~ops_per_pid ~seeds =
  (* Workloads biased towards same-value writes, the ABA-prone case. *)
  let scripts rng =
    Array.init n (fun p ->
        List.init ops_per_pid (fun _ ->
            if p = 0 || Random.State.int rng 3 = 0 then
              Aba_spec.Aba_register_spec.DWrite 1
            else Aba_spec.Aba_register_spec.DRead))
  in
  let run_one seed =
    let rng = Random.State.make [| seed |] in
    let sim = Aba_sim.Sim.create ~n in
    let inst = Instances.aba_in_sim builder sim ~n in
    let driver =
      Aba_sim.Driver.create ~sim ~apply:(fun p op () ->
          match op with
          | Aba_spec.Aba_register_spec.DRead ->
              let v, f = inst.Instances.dread p in
              Aba_spec.Aba_register_spec.Read_result (v, f)
          | Aba_spec.Aba_register_spec.DWrite x ->
              inst.Instances.dwrite p x;
              Aba_spec.Aba_register_spec.Write_done)
    in
    Aba_sim.Driver.run_random driver ~scripts:(scripts rng) ~seed ();
    let h = Aba_sim.Driver.history driver in
    Check.check_ok ~n h && passes_weak_condition h
  in
  let rec go seed checked =
    if seed > seeds then { histories_checked = checked; violation_seed = None }
    else if run_one seed then go (seed + 1) (checked + 1)
    else { histories_checked = checked + 1; violation_seed = Some seed }
  in
  go 1 0
