(** A {e deliberately flawed} ABA-detecting register: one bounded register
    with tags taken modulo [T].

    This is the folklore "tagging" technique (Introduction, [14, 24, 25,
    28, 29]) restricted to a bounded tag space.  Once a writer performs [T]
    writes between two reads of the same process, the tag wraps around and
    the reader misses the intervening writes — an undetected ABA.

    The implementation exists to be {e broken} by the experiments: the
    wraparound finder (E6) exhibits a concrete violating execution for
    every [T], and the covering adversary (E1) derives a clean/dirty
    confusion from it, illustrating why Theorem 1's bound cannot be beaten
    by clever tag encodings. *)

open Aba_primitives

module Make_with_bound (B : sig
  val tag_bound : int
end)
(M : Mem_intf.S) : Aba_register_intf.S = struct
  let tag_bound =
    if B.tag_bound < 1 then invalid_arg "tag_bound must be >= 1"
    else B.tag_bound

  let algorithm_name =
    Printf.sprintf "bounded-tag-%d (1 bounded register, FLAWED)" tag_bound

  let initial_value = -1

  type stamped = { value : int; writer : Pid.t; tag : int }

  type local = {
    mutable counter : int;
    mutable last : (Pid.t * int) option;
  }

  type t = { x : stamped option M.register; locals : local array; init : int }

  let show = function
    | None -> "_"
    | Some { value; writer; tag } ->
        Printf.sprintf "(%d,p%d,%d)" value writer tag

  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ?(padded = false) ?backoff:_ ~n () =
    let bound =
      Bounded.make ~describe:
        (Printf.sprintf "(%s * pid<%d * tag<%d) option"
           (Bounded.describe value_bound) n tag_bound)
        (function
          | None -> true
          | Some { value; writer; tag } ->
              Bounded.mem value_bound value
              && Pid.is_valid ~n writer
              && 0 <= tag && tag < tag_bound)
    in
    {
      x = M.make_register ~bound ~padded ~name:"X" ~show None;
      locals = Array.init n (fun _ -> { counter = 0; last = None });
      init;
    }

  let dwrite t ~pid x =
    let l = t.locals.(pid) in
    let tag = l.counter in
    l.counter <- (tag + 1) mod tag_bound;
    M.write t.x (Some { value = x; writer = pid; tag })

  let dread t ~pid =
    let l = t.locals.(pid) in
    match M.read t.x with
    | None -> (t.init, false)
    | Some { value; writer; tag } ->
        let stamp = Some (writer, tag) in
        let changed = stamp <> l.last in
        l.last <- stamp;
        (value, changed)

  let space _ = M.space ()
end

(** Default bound used by the experiments. *)
module Make (M : Mem_intf.S) : Aba_register_intf.S =
  Make_with_bound
    (struct
      let tag_bound = 4
    end)
    (M)
