(** Figure 3: LL/SC/VL from a {e single} bounded CAS object, with [O(n)]
    step complexity (Theorem 2).

    The CAS object [X] stores a pair [(x, a)] where [x] is the value of the
    implemented object and [a] is an [n]-bit mask; bit [p] of [a] set means
    "a successful SC may have linearized since [p]'s last LL".  A successful
    [SC] writes [(y, 2^n - 1)], setting every process's bit; an [LL] by [p]
    tries to clear its own bit with a CAS.

    The key counting argument (Claim 6): if [p]'s CAS fails [n] times in a
    row, [X] changed [n] times, and at most [n - 1] of those changes can be
    bit-clearing CAS's of LL operations (each clears a distinct bit from 1
    to 0 and only [SC] sets bits back) — so at least one change was a
    successful [SC], which justifies giving up: [LL] sets the local flag
    [b], which forces the next [SC]/[VL] of [p] to report an invalid link.

    Step complexity: [LL] at most [2n + 1] steps, [SC] at most [2n] steps,
    [VL] one step — all [O(n)], matching Corollary 1's lower bound
    [m >= (n-1)/t] at [m = 1].

    The pair is held by [X] through the {!codec} below: bits [0, n) are the
    mask, the remaining bits the value, so the whole pair is one immediate
    int.  The algorithm drives [X] through the packed accessors of
    {!Mem_intf.S}; under the seq/sim backends these decode to the
    structural pair (one step each, domain-checked), while under [Rt_mem]
    they are plain [Atomic] operations on the encoded word — a genuine
    bounded hardware CAS, ABAs included, with no allocation. *)

open Aba_primitives

(** The Figure-3 CAS-object value: the implemented object's value and the
    [n]-bit process mask. *)
type xval = { value : int; mask : int }

(** The packing: value bits above [n] mask bits.  [decode] uses an
    arithmetic shift, so negative values (the default domain includes
    [-1]) round-trip as long as [value] fits in [62 - n] signed bits. *)
let codec ~n : xval Mem_intf.codec =
  let mask_bits = (1 lsl n) - 1 in
  {
    Mem_intf.encode = (fun { value; mask } -> (value lsl n) lor mask);
    decode = (fun p -> { value = p asr n; mask = p land mask_bits });
  }

(** The CAS retry loops run [Retries.retries ~n] times; Figure 3 uses [n],
    which Claim 6's counting argument needs — after [n] failures a
    successful SC must have linearized.  The ablation experiments lower the
    bound to watch LL give up too early (a VL/SC failing with no
    intervening SC: a linearizability violation). *)
module Make_with_retries (Retries : sig
  val retries : n:int -> int
end)
(M : Mem_intf.S) : Llsc_intf.S = struct
  let algorithm_name = "figure-3 (1 bounded CAS, O(n) steps)"
  let initial_value = 0

  type t = {
    n : int;
    retries : int;
    x : xval M.cas;
    b : bool array;  (** local flag of each process *)
    bo : Backoff.t array;  (** per-process retry backoff, {!Backoff.noop}
                               unless the creator asked for contention
                               management *)
  }

  let show { value; mask } = Printf.sprintf "(%d,%#x)" value mask

  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ?(padded = false) ?(backoff = Backoff.Noop) ~n
      () =
    if n > 61 then invalid_arg "Llsc_from_cas: n must be at most 61";
    let bound =
      Bounded.make
        ~describe:
          (Printf.sprintf "(%s * %d-bit mask)" (Bounded.describe value_bound)
             n)
        (fun { value; mask } ->
          Bounded.mem value_bound value && 0 <= mask && mask < 1 lsl n)
    in
    {
      n;
      retries = Retries.retries ~n;
      x =
        M.make_cas_packed ~bound ~padded ~name:"X" ~show ~codec:(codec ~n)
          { value = init; mask = 0 };
      b = Array.make n false;
      (* Each process's backoff record on its own line: slot [p] is mutated
         on every one of [p]'s failed CAS's. *)
      bo = Array.init n (fun _ -> Padded.copy (Backoff.make backoff));
    }

  (* Bit fiddling on the encoded pair, mirroring {!codec}. *)
  let mask_of t packed = packed land ((1 lsl t.n) - 1)
  let value_of t packed = packed asr t.n
  let bit_set t packed p = (mask_of t packed lsr p) land 1 = 1
  let all_set t = (1 lsl t.n) - 1

  (* The retry loops are module-level recursive functions rather than local
     closures: a local [let rec attempt] capturing [t] and [p] would be a
     fresh closure allocation on every LL/SC, and the whole point of the
     packed representation is an allocation-free hot path on [Rt_mem].

     [Backoff.reset] is lazy — performed on the first failed CAS, right
     before the first [once] — so an operation whose first CAS succeeds
     (or that needs no CAS at all) does zero backoff stores.  The spin
     sequence under contention is unchanged: the first [once] still spins
     [min_spins]. *)

  (* Lines 14–25. *)
  let rec ll_attempt t p packed i =
    if i > t.retries then begin
      (* n failed CAS's: a successful SC linearized during this LL
         (Claim 6); linearize at the initial read and poison the link. *)
      t.b.(p) <- true;
      value_of t packed
    end
    else begin
      let seen = M.cas_read_packed t.x in
      (* Only p clears its own bit, so it is still set here. *)
      assert (bit_set t seen p);
      (* Clearing bit p of the mask leaves the value untouched. *)
      if M.cas_packed t.x ~expect:seen ~update:(seen - (1 lsl p)) then begin
        t.b.(p) <- false;
        value_of t seen
      end
      else begin
        if i = 1 then Backoff.reset t.bo.(p);
        Backoff.once t.bo.(p);
        ll_attempt t p packed (i + 1)
      end
    end

  let ll t ~pid:p =
    let packed = M.cas_read_packed t.x in
    if not (bit_set t packed p) then begin
      t.b.(p) <- false;
      value_of t packed
    end
    else ll_attempt t p packed 1

  (* Lines 1–8. *)
  let rec sc_attempt t p y i =
    if i > t.retries then false
    else begin
      let seen = M.cas_read_packed t.x in
      if bit_set t seen p then false
      else if M.cas_packed t.x ~expect:seen ~update:((y lsl t.n) lor all_set t)
      then true
      else begin
        if i = 1 then Backoff.reset t.bo.(p);
        Backoff.once t.bo.(p);
        sc_attempt t p y (i + 1)
      end
    end

  let sc t ~pid:p y =
    if t.b.(p) then false else sc_attempt t p y 1

  (* Lines 9–13. *)
  let vl t ~pid:p =
    let packed = M.cas_read_packed t.x in
    (not (bit_set t packed p)) && not t.b.(p)

  let space _ = M.space ()
end

(** Figure 3 as published. *)
module Make (M : Mem_intf.S) : Llsc_intf.S =
  Make_with_retries
    (struct
      let retries ~n = n
    end)
    (M)
