(** Interface of LL/SC/VL implementations.

    [ll] returns the object's value and links the calling process; [sc x]
    succeeds — writing [x] — iff no successful [sc] occurred since the
    caller's last [ll]; [vl] reports link validity without changing state.
    A process that never performed [ll] holds a valid link until the first
    successful [sc] (Appendix A convention). *)

open Aba_primitives

module type S = sig
  val algorithm_name : string

  type t

  val create :
    ?value_bound:int Bounded.t -> ?init:int -> ?padded:bool ->
    ?backoff:Backoff.spec -> n:int -> unit -> t
  (** [init] defaults to {!initial_value}.  [padded] (default [false]) asks
      the backend to put contended base objects on their own cache lines;
      [backoff] (default {!Backoff.Noop}) inserts bounded exponential
      backoff into CAS retry loops.  Both are contention-management hints:
      wait-free implementations and checking backends ignore what does not
      apply, and [Noop] keeps seq/sim transcripts deterministic. *)

  val ll : t -> pid:Pid.t -> int

  val sc : t -> pid:Pid.t -> int -> bool

  val vl : t -> pid:Pid.t -> bool

  val space : t -> (string * string) list
  (** Base objects used, as [(name, domain)] pairs. *)

  val initial_value : int
end

module type MAKER = functor (M : Mem_intf.S) -> S
