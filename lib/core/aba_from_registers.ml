(** Figure 4: a multi-writer ABA-detecting register from [n + 1] bounded
    registers with constant step complexity (Theorem 3).

    Shared state:
    - register [X] holding a triple [(x, p, s)] — the stored value, the
      writing process, and a sequence number [s] in [{0 .. 2n+1}];
    - an announce array [A[0 .. n-1]] where only process [q] writes [A[q]];
      [A[q]] holds the pair [(p, s)] that [q] last observed in [X].

    To [DWrite x], process [p] picks a sequence number with [GetSeq] (one
    shared read of an announce entry) and writes [(x, p, s)] to [X] — two
    shared steps.  [GetSeq] guarantees the key freshness property (Claim 3):
    if at some point [X = (., p, s)] and [A[q] = (p, s)], then [p] does not
    use [s] again until [A[q]] changes.  It does so by scanning one announce
    entry per call (cursor [c]), remembering in [na] which of its own
    sequence numbers are currently announced, and cycling candidates through
    a queue [usedQ] of length [n + 1] so a number is never reused within [n]
    consecutive writes.  The pool [{0 .. 2n+1}] always contains a free
    number since [|na| <= n] and [|usedQ| = n + 1].

    To [DRead], process [q] reads [X], saves its previous announcement,
    announces the pair just read, and reads [X] again — four shared steps.
    The flag logic is exactly lines 42–49 of the paper; the local Boolean
    [b] carries "a DWrite linearized after my previous DRead's linearization
    point" into the next DRead. *)

open Aba_primitives

(** The sequence-number domain is [{0 .. Ceiling.seq_ceiling ~n}]; Figure 4
    uses [2n + 1], which the GetSeq counting argument needs.  The ablation
    experiments instantiate smaller ceilings to watch the algorithm break
    (pool exhaustion or an undetected write). *)
module Make_with_ceiling (Ceiling : sig
  val seq_ceiling : n:int -> int
end)
(M : Mem_intf.S) : Aba_register_intf.S = struct
  let algorithm_name = "figure-4 (n+1 bounded registers, O(1) steps)"
  let initial_value = -1

  type xval = { value : int; writer : Pid.t; seq : int }

  (* [A[q]] holds the (writer, seq) pair of an [X] triple, or bottom. *)
  type announcement = (Pid.t * int) option

  type local = { mutable b : bool; pool : Seq_pool.t }

  type t = {
    n : int;
    seq_ceiling : int;  (** sequence numbers live in [0 .. seq_ceiling] *)
    x : xval option M.register;
    announce : announcement M.register array;
    read_announce : int -> announcement;
        (** [fun c -> M.read announce.(c)], allocated once at creation so
            the DWrite hot path does not build a closure per call *)
    locals : local array;
    init : int;  (** the value a DRead reports while [X] is still bottom *)
  }

  let show_x = function
    | None -> "_"
    | Some { value; writer; seq } ->
        Printf.sprintf "(%d,p%d,%d)" value writer seq

  let show_a = function
    | None -> "_"
    | Some (p, s) -> Printf.sprintf "(p%d,%d)" p s

  (* The construction is wait-free — no retry loop anywhere — so [backoff]
     is accepted (for interface uniformity) and ignored.  [padded] spreads
     the [n + 1] registers over distinct cache lines: [X] and each [A[q]]
     are written by different processes, and unpadded they sit on adjacent
     lines, so every DWrite invalidates every reader's announce entry. *)
  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ?(padded = false) ?backoff:_ ~n () =
    let seq_ceiling = Ceiling.seq_ceiling ~n in
    let x_bound =
      Bounded.make
        ~describe:
          (Printf.sprintf "(%s * pid<%d * seq<=%d) option"
             (Bounded.describe value_bound) n seq_ceiling)
        (function
          | None -> true
          | Some { value; writer; seq } ->
              Bounded.mem value_bound value
              && Pid.is_valid ~n writer
              && 0 <= seq && seq <= seq_ceiling)
    in
    let a_bound =
      Bounded.make
        ~describe:(Printf.sprintf "(pid<%d * seq<=%d) option" n seq_ceiling)
        (function
          | None -> true
          | Some (p, s) -> Pid.is_valid ~n p && 0 <= s && s <= seq_ceiling)
    in
    let make_local _ =
      let l = { b = false; pool = Seq_pool.create ~ceiling:seq_ceiling ~n () } in
      if padded then Padded.copy l else l
    in
    let announce =
      Array.init n (fun q ->
          M.make_register ~bound:a_bound ~padded
            ~name:(Printf.sprintf "A[%d]" q)
            ~show:show_a None)
    in
    {
      n;
      seq_ceiling;
      x = M.make_register ~bound:x_bound ~padded ~name:"X" ~show:show_x None;
      announce;
      read_announce = (fun c -> M.read announce.(c));
      locals = Array.init n make_local;
      init;
    }

  (* Lines 26–27: two shared steps in total (GetSeq's single announce-entry
     read, then the write of [X]). *)
  let dwrite t ~pid x =
    let l = t.locals.(pid) in
    let s = Seq_pool.next l.pool ~me:pid ~read_announce:t.read_announce in
    M.write t.x (Some { value = x; writer = pid; seq = s })

  let key = function
    | None -> None
    | Some { writer; seq; _ } -> Some (writer, seq)

  let value_of t = function None -> t.init | Some { value; _ } -> value

  (* Lines 38–50: four shared steps. *)
  let dread t ~pid:q =
    let l = t.locals.(q) in
    let xv = M.read t.x in
    let old_announcement = M.read t.announce.(q) in
    M.write t.announce.(q) (key xv);
    let xv' = M.read t.x in
    let flag = if key xv = old_announcement then l.b else true in
    l.b <- xv <> xv';
    (value_of t xv, flag)

  let space _ = M.space ()
end

(** Figure 4 as published. *)
module Make (M : Mem_intf.S) : Aba_register_intf.S =
  Make_with_ceiling
    (struct
      let seq_ceiling ~n = (2 * n) + 1
    end)
    (M)
