(** Detectable (crash-recoverable) operations — experiment E19.

    A {e detectable} object (Ben-Baruch, Hendler, Rusanovsky: "Upper and
    Lower Bounds on the Space Complexity of Detectable Objects") survives
    process crashes that erase program state while shared memory
    persists: after a crash, the process can {e detect} whether its
    interrupted operation took effect, learn its result if it did, and
    complete it exactly once if it did not.

    Both constructions here follow the announcement-array discipline of
    {!Announced_tags} and the paper's ABA-detecting register: each
    process owns a single-writer {e descriptor} slot announcing its
    in-flight operation (the DWrite), and recovery is a read protocol
    over shared state that decides, exactly, whether the announced
    operation landed (the DRead).  All shared accesses go through
    {!Aba_primitives.Mem_intf.S}, so the same functor body is
    model-checked under the simulator (with {!Aba_sim.Explore.dpor}'s
    crash moves) and run on multicore via the runtime backend.

    The [on_step] hook passed at creation is called with the acting
    process id before every shared-memory access of every operation; the
    crash-churn harness uses it to kill operations at randomized
    shared-access points ({!Aba_runtime.Harness.Injected_crash}).  Shared state is consistent
    at every hook point — that is the whole claim being tested. *)

open Aba_primitives

(** Head-pointer ABA protection for the detectable stack.  Nodes are
    never reused, so all three are {e safe}; they differ in cost, which
    is what the recovery bench sweeps. *)
type protection =
  | Tag_bits  (** bounded tag via double-word CAS ({!Mem_intf.S.make_cas2}) *)
  | Llsc  (** LL/SC head *)
  | Announced  (** announcement-guarded wraparound-safe tags ({!Announced_tags}) *)

(** Result of {!Make.Stack.recover}. *)
type stack_recovery =
  | R_none  (** no operation was in flight; the crash had no effect *)
  | R_pushed of int
      (** the interrupted push is now complete (it had landed pre-crash,
          or recovery finished it); exactly one copy of the value is in
          the stack *)
  | R_popped of int option
      (** the interrupted pop is now complete; [None] popped empty *)

module Make (M : Mem_intf.S) : sig
  (** Detectable fetch-and-increment.  The counter word carries
      (value, owner, seq) provenance and overwriters raise the previous
      owner's ack cell {e before} replacing its install, giving the exact
      recovery rule: operation (p, s) landed iff the word still reads
      (_, p, s) or ack[p].seq >= s. *)
  module Counter : sig
    type t

    val create :
      ?padded:bool -> ?on_step:(Pid.t -> unit) -> name:string -> n:int ->
      unit -> t

    val inc : t -> pid:Pid.t -> int
    (** Detectable fetch-and-increment; returns the incremented value. *)

    val read : t -> int
    (** Current value, one shared step. *)

    val recover : t -> pid:Pid.t -> int option
    (** After a crash of [pid]: [None] if no operation was in flight (the
        crashed call had executed no shared step, so it had no effect);
        otherwise completes the interrupted increment exactly once and
        returns [Some result] — the pre-crash result if it had landed,
        the result of the single re-run if it provably had not. *)

    val completed : t -> pid:Pid.t -> int
    (** Number of increments by [pid] completed (descriptor sequence). *)

    val space : t -> (string * string) list
  end

  (** The deliberate non-detectable mutant: no provenance, no ack
      handover.  Its [recover] cannot distinguish "CAS landed, crashed
      before the Done write" from "CAS never landed" and re-runs — a
      crash in that window duplicates the increment.  Exists to be
      flagged by the DPOR crash search and the exactly-once audits. *)
  module Naive_counter : sig
    type t

    val create :
      ?padded:bool -> ?on_step:(Pid.t -> unit) -> name:string -> n:int ->
      unit -> t

    val inc : t -> pid:Pid.t -> int
    val read : t -> int

    val recover : t -> pid:Pid.t -> int option
    (** Guesses {e not landed} for any in-flight descriptor and re-runs;
        returns [Some result] of the re-run (which may be a duplicate). *)

    val space : t -> (string * string) list
  end

  (** Detectable Treiber stack over a per-(pid, seq) node arena (nodes
      are never reused).  Push detection: the node is at the head or was
      marked [In] by the help rule before it could be buried or removed.
      Pop detection: the node named by the [Popping] descriptor carries
      this operation's claim in its owner cell (claimed at most once,
      never reset — the pop's linearization point). *)
  module Stack : sig
    type t

    val create :
      ?protection:protection ->
      ?tag_bits:int ->
      ?padded:bool ->
      ?on_step:(Pid.t -> unit) ->
      name:string ->
      n:int ->
      capacity:int ->
      unit ->
      t
    (** [capacity] bounds the operations per pid (it sizes the arena);
        [tag_bits] (default 4) applies to the [Tag_bits] and [Announced]
        protections.  Raises [Invalid_argument] if [n < 1] or
        [capacity < 1]. *)

    val push : t -> pid:Pid.t -> int -> unit
    val pop : t -> pid:Pid.t -> int option

    val recover : t -> pid:Pid.t -> stack_recovery
    (** After a crash of [pid]: clears any stale announcement, reads the
        descriptor, and resolves the interrupted operation exactly once
        (completing it if it provably had not landed). *)

    val top : t -> pid:Pid.t -> int
    (** Current head node index (-1 when empty); one shared step. *)

    val value_of : t -> int -> int
    (** Value stored in a node index returned by {!top}. *)

    val scans : t -> int
    (** Announcement-crossing scans ([Announced] protection only). *)

    val space : t -> (string * string) list
  end
end
