(** Jayanti–Petrovic / Anderson–Moir-style LL/SC/VL from one bounded CAS
    object plus [n] bounded registers, with {e constant} step complexity
    ([2], [15]).

    This is the other optimal point on Corollary 1's tradeoff curve:
    Figure 3 spends 1 object and [O(n)] steps, this construction spends
    [n + 1] objects and [O(1)] steps — both have time–space product
    [Theta(n)], which the corollary proves unavoidable.

    The machinery is the one the paper says Figure 4 borrows from [15]:
    the CAS object [X] holds a triple [(x, p, s)] tagged with the writer and
    a sequence number from {!Seq_pool}; each process announces in [A[q]] the
    [(p, s)] pair of the triple its link refers to.  The announcement blocks
    [p] from reusing [s], so a triple observed equal to the link certifies
    that no successful [SC] intervened — CAS on [X] cannot suffer an ABA.

    - [ll]: read [X]; announce; re-read [X].  If the two reads agree the
      link is armed; otherwise some [SC] linearized during the [ll], and the
      local flag [b] poisons the link (the [ll] linearizes at its first
      read).  3 steps.
    - [sc y]: fail if [b]; else pick a fresh tag (one announce read) and
      attempt [CAS(link, (y, self, tag))].  2 steps.
    - [vl]: fail if [b]; else one read of [X] compared against the link.
      1 step. *)

open Aba_primitives

module Make (M : Mem_intf.S) : Llsc_intf.S = struct
  let algorithm_name = "jayanti-petrovic (1 CAS + n registers, O(1) steps)"
  let initial_value = 0

  type xval = { value : int; writer : Pid.t; seq : int }
  type announcement = (Pid.t * int) option

  type local = {
    mutable b : bool;
    mutable link : xval option;
    pool : Seq_pool.t;
  }

  type t = {
    init : int;
    x : xval option M.cas;
    announce : announcement M.register array;
    locals : local array;
  }

  let show_x = function
    | None -> "_"
    | Some { value; writer; seq } ->
        Printf.sprintf "(%d,p%d,%d)" value writer seq

  let show_a = function
    | None -> "_"
    | Some (p, s) -> Printf.sprintf "(p%d,%d)" p s

  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ?(padded = false) ?backoff:_ ~n () =
    let seq_ceiling = (2 * n) + 1 in
    let x_bound =
      Bounded.make
        ~describe:
          (Printf.sprintf "(%s * pid<%d * seq<=%d) option"
             (Bounded.describe value_bound) n seq_ceiling)
        (function
          | None -> true
          | Some { value; writer; seq } ->
              Bounded.mem value_bound value
              && Pid.is_valid ~n writer
              && 0 <= seq && seq <= seq_ceiling)
    in
    let a_bound =
      Bounded.make
        ~describe:(Printf.sprintf "(pid<%d * seq<=%d) option" n seq_ceiling)
        (function
          | None -> true
          | Some (p, s) -> Pid.is_valid ~n p && 0 <= s && s <= seq_ceiling)
    in
    {
      init;
      x = M.make_cas ~bound:x_bound ~padded ~name:"X" ~show:show_x None;
      announce =
        Array.init n (fun q ->
            M.make_register ~bound:a_bound ~padded
              ~name:(Printf.sprintf "A[%d]" q)
              ~show:show_a None);
      locals =
        Array.init n (fun _ ->
            { b = false; link = None; pool = Seq_pool.create ~n () });
    }

  let key = function
    | None -> None
    | Some { writer; seq; _ } -> Some (writer, seq)

  let value_of t = function None -> t.init | Some { value; _ } -> value

  let ll t ~pid:q =
    let l = t.locals.(q) in
    let xv = M.cas_read t.x in
    M.write t.announce.(q) (key xv);
    let xv' = M.cas_read t.x in
    l.link <- xv;
    (* If [X] changed between the two reads, a successful SC linearized
       after this LL's linearization point (the first read): poison the
       link so the next SC/VL correctly fails. *)
    l.b <- xv <> xv';
    value_of t xv

  let sc t ~pid:q y =
    let l = t.locals.(q) in
    if l.b then false
    else begin
      let s =
        Seq_pool.next l.pool ~me:q ~read_announce:(fun c ->
            M.read t.announce.(c))
      in
      M.cas t.x ~expect:l.link ~update:(Some { value = y; writer = q; seq = s })
    end

  let vl t ~pid:q =
    let l = t.locals.(q) in
    if l.b then false else M.cas_read t.x = l.link

  let space _ = M.space ()
end
