open Aba_primitives

type protection = Tag_bits | Llsc | Announced

type stack_recovery = R_none | R_pushed of int | R_popped of int option

module Make (M : Mem_intf.S) = struct
  module AT = Announced_tags.Make (M)

  let nop (_ : Pid.t) = ()

  (* {2 Detectable fetch-and-increment}

     The word holds the last install as a (value, owner, seq) triple, and
     every process owns two announcement-style slots: a single-writer
     descriptor recording its in-flight operation, and an ack cell that
     {e overwriters} raise before replacing the owner's install.  The
     resulting exactness invariant is what recovery decides on:

       operation (p, s) landed
         iff  word = (_, p, s)  or  ack[p].seq >= s

     Forward direction: a successful install leaves (p, s) in the word;
     whoever replaces it first CAS-maxes ack[p] to (s, value) {e before}
     its own install, so by the time (p, s) is gone the ack is up.
     Backward: helpers only ack pairs they read from the word, so an ack
     at [s] proves (p, s) was installed.  Either way the fetched value
     rides along, so recovery returns the exact result of the interrupted
     increment — or proves it never happened and re-runs it under the
     same sequence number.  This is the ABA-detecting register's
     DWrite/DRead discipline turned into a crash-recovery protocol: the
     descriptor write is the announcement, the recovery read reveals
     whether the announced operation took effect. *)
  module Counter = struct
    type word = { cv : int; cowner : int; cseq : int }
    type phase = Trying | Done of int
    type desc = { dseq : int; dphase : phase }
    type ack = { aseq : int; aval : int }

    type t = {
      word : word M.cas;
      descs : desc M.register array;
      acks : ack M.cas array;
      next_seq : int array;
          (* per-pid mirror of the last used sequence number; program
             state, re-derived from the descriptor by [recover] *)
      on_step : Pid.t -> unit;
    }

    let show_word w = Printf.sprintf "(%d,p%d,#%d)" w.cv w.cowner w.cseq

    let show_desc d =
      match d.dphase with
      | Trying -> Printf.sprintf "try#%d" d.dseq
      | Done v -> Printf.sprintf "done#%d=%d" d.dseq v

    let show_ack a = Printf.sprintf "(#%d=%d)" a.aseq a.aval

    let create ?(padded = false) ?(on_step = nop) ~name ~n () =
      if n < 1 then invalid_arg "Detectable.Counter.create: n must be positive";
      {
        word =
          M.make_cas ~padded ~name:(name ^ ".word") ~show:show_word
            { cv = 0; cowner = -1; cseq = 0 };
        descs =
          Array.init n (fun p ->
              M.make_register ~padded
                ~name:(Printf.sprintf "%s.desc[%d]" name p)
                ~show:show_desc
                { dseq = 0; dphase = Done 0 });
        acks =
          Array.init n (fun p ->
              M.make_cas ~padded
                ~name:(Printf.sprintf "%s.ack[%d]" name p)
                ~show:show_ack { aseq = 0; aval = 0 });
        next_seq = Array.make n 0;
        on_step;
      }

    (* Raise [owner]'s ack to at least (seq, v) — the handover that makes
       overwriting an install safe.  Monotone in seq, so stale helpers
       lose. *)
    let rec ack_max t ~pid owner ~seq ~v =
      if owner >= 0 then begin
        t.on_step pid;
        let a = M.cas_read t.acks.(owner) in
        if a.aseq < seq then begin
          t.on_step pid;
          if not (M.cas t.acks.(owner) ~expect:a ~update:{ aseq = seq; aval = v })
          then ack_max t ~pid owner ~seq ~v
        end
      end

    let rec install t ~pid ~seq =
      t.on_step pid;
      let w = M.cas_read t.word in
      ack_max t ~pid w.cowner ~seq:w.cseq ~v:w.cv;
      t.on_step pid;
      if
        M.cas t.word ~expect:w
          ~update:{ cv = w.cv + 1; cowner = pid; cseq = seq }
      then w.cv + 1
      else install t ~pid ~seq

    let finish t ~pid ~seq v =
      t.on_step pid;
      M.write t.descs.(pid) { dseq = seq; dphase = Done v };
      v

    let inc t ~pid =
      let s = t.next_seq.(pid) + 1 in
      t.next_seq.(pid) <- s;
      t.on_step pid;
      M.write t.descs.(pid) { dseq = s; dphase = Trying };
      finish t ~pid ~seq:s (install t ~pid ~seq:s)

    let read t = (M.cas_read t.word).cv

    let recover t ~pid =
      t.on_step pid;
      let d = M.read t.descs.(pid) in
      t.next_seq.(pid) <- d.dseq;
      match d.dphase with
      | Done _ -> None
      | Trying ->
          let s = d.dseq in
          t.on_step pid;
          let w = M.cas_read t.word in
          if w.cowner = pid && w.cseq = s then
            Some (finish t ~pid ~seq:s w.cv)
          else begin
            t.on_step pid;
            let a = M.cas_read t.acks.(pid) in
            if a.aseq >= s then Some (finish t ~pid ~seq:s a.aval)
            else Some (finish t ~pid ~seq:s (install t ~pid ~seq:s))
          end

    let completed t ~pid =
      let d = M.read t.descs.(pid) in
      match d.dphase with Done _ -> d.dseq | Trying -> d.dseq - 1

    let space _ = M.space ()
  end

  (* The deliberate mutant: same descriptor shape, but the word carries no
     provenance and there is no ack handover, so recovery of a [Trying]
     descriptor cannot tell "my CAS landed, I crashed before the Done
     write" from "my CAS never landed".  This version guesses {e not
     landed} and re-runs — a crash in the window between the successful
     CAS and the Done write duplicates the increment.  (Guessing
     {e landed} instead would lose increments; without detectability
     there is no correct guess.)  Kept as the adversarial scenario the
     DPOR crash search must flag. *)
  module Naive_counter = struct
    type phase = Trying | Done
    type desc = { dseq : int; dphase : phase }

    type t = {
      word : int M.cas;
      descs : desc M.register array;
      next_seq : int array;
      on_step : Pid.t -> unit;
    }

    let show_desc d =
      match d.dphase with
      | Trying -> Printf.sprintf "try#%d" d.dseq
      | Done -> Printf.sprintf "done#%d" d.dseq

    let create ?(padded = false) ?(on_step = nop) ~name ~n () =
      if n < 1 then
        invalid_arg "Detectable.Naive_counter.create: n must be positive";
      {
        word =
          M.make_cas ~padded ~name:(name ^ ".word") ~show:string_of_int 0;
        descs =
          Array.init n (fun p ->
              M.make_register ~padded
                ~name:(Printf.sprintf "%s.desc[%d]" name p)
                ~show:show_desc { dseq = 0; dphase = Done });
        next_seq = Array.make n 0;
        on_step;
      }

    let rec install t ~pid =
      t.on_step pid;
      let v = M.cas_read t.word in
      t.on_step pid;
      if M.cas t.word ~expect:v ~update:(v + 1) then v + 1
      else install t ~pid

    let finish t ~pid ~seq v =
      t.on_step pid;
      M.write t.descs.(pid) { dseq = seq; dphase = Done };
      v

    let inc t ~pid =
      let s = t.next_seq.(pid) + 1 in
      t.next_seq.(pid) <- s;
      t.on_step pid;
      M.write t.descs.(pid) { dseq = s; dphase = Trying };
      finish t ~pid ~seq:s (install t ~pid)

    let read t = M.cas_read t.word

    let recover t ~pid =
      t.on_step pid;
      let d = M.read t.descs.(pid) in
      t.next_seq.(pid) <- d.dseq;
      match d.dphase with
      | Done -> None
      | Trying -> Some (finish t ~pid ~seq:d.dseq (install t ~pid))

    let space _ = M.space ()
  end

  (* {2 Detectable Treiber stack}

     Nodes live in a per-(pid, seq) arena and are never reused, so the
     two facts recovery needs are stable:

     - {e push landed} iff the node is at the head {e or} its state cell
       reads [In].  Every process marks the node it sees at the head [In]
       before its own head CAS (the help rule), so a pushed node is
       marked before it can be buried or removed; a node whose install
       CAS never succeeded is unreachable and stays [Fresh] forever.
     - {e pop landed} iff the node named by the [Popping] descriptor
       carries this operation's (pid, seq) in its owner cell.  Claiming
       the owner CAS (-1 -> id, at most once per node, never reset) is
       the pop's linearization point; the head unlink afterwards is
       helped by any process whose own claim fails.

     The head pointer itself is protected by any of the three ABA
     defences (bounded tags via double-word CAS, LL/SC, or the
     announcement-guarded tags) — with never-reused nodes even a lossy
     tag is safe, so the protection choice is a cost axis, not a
     correctness one, exactly what the recovery bench sweeps. *)
  module Stack = struct
    type phase =
      | P_push of int  (** Trying_push v *)
      | P_pop  (** Trying_pop: no candidate node recorded yet *)
      | P_popping of int  (** candidate node index *)
      | P_done_push
      | P_done_pop of int  (** popped node index, -1 for empty *)

    type desc = { dseq : int; dphase : phase }

    type head =
      | H_tag of int M.cas2
      | H_llsc of int M.llsc
      | H_ann of AT.t

    type t = {
      cap : int;  (** operations per pid; sizes the node arena *)
      head : head;
      nvalue : int M.register array;
      nnext : int M.register array;
      nstate : int M.register array;  (** 0 = Fresh, 1 = In *)
      nowner : int M.cas array;  (** -1 = unclaimed, else pid * (cap+1) + seq *)
      descs : desc M.register array;
      next_seq : int array;
      on_step : Pid.t -> unit;
    }

    let show_desc d =
      match d.dphase with
      | P_push v -> Printf.sprintf "push#%d(%d)" d.dseq v
      | P_pop -> Printf.sprintf "pop#%d" d.dseq
      | P_popping h -> Printf.sprintf "popping#%d(n%d)" d.dseq h
      | P_done_push -> Printf.sprintf "pushed#%d" d.dseq
      | P_done_pop h -> Printf.sprintf "popped#%d(n%d)" d.dseq h

    (* Node indices with -1 as nil pack as [v + 1]. *)
    let node_codec =
      { Mem_intf.encode = (fun v -> v + 1); decode = (fun w -> w - 1) }

    let node_of ~cap pid seq = (pid * cap) + seq - 1
    let encode_owner t pid seq = (pid * (t.cap + 1)) + seq

    let create ?(protection = Tag_bits) ?(tag_bits = 4) ?(padded = false)
        ?(on_step = nop) ~name ~n ~capacity () =
      if n < 1 then invalid_arg "Detectable.Stack.create: n must be positive";
      if capacity < 1 then
        invalid_arg "Detectable.Stack.create: capacity must be positive";
      let slots = n * capacity in
      let node_bound = Bounded.int_range ~lo:(-1) ~hi:(slots - 1) in
      let head =
        match protection with
        | Tag_bits ->
            H_tag
              (M.make_cas2 ~bound:node_bound ~padded ~codec:node_codec
                 ~tag_bits ~name:(name ^ ".head") ~show:string_of_int (-1) 0)
        | Llsc ->
            H_llsc
              (M.make_llsc ~bound:node_bound ~padded ~name:(name ^ ".head")
                 ~show:string_of_int (-1))
        | Announced ->
            H_ann
              (AT.create ~guard:true ~padded ~value_bound:node_bound
                 ~tag_bits ~name:(name ^ ".head") ~n ~init:(-1) ())
      in
      {
        cap = capacity;
        head;
        nvalue =
          Array.init slots (fun i ->
              M.make_register ~padded
                ~name:(Printf.sprintf "%s.val[%d]" name i)
                ~show:string_of_int 0);
        nnext =
          Array.init slots (fun i ->
              M.make_register ~bound:node_bound ~padded
                ~name:(Printf.sprintf "%s.next[%d]" name i)
                ~show:string_of_int (-1));
        nstate =
          Array.init slots (fun i ->
              M.make_register
                ~bound:(Bounded.int_range ~lo:0 ~hi:1)
                ~padded
                ~name:(Printf.sprintf "%s.state[%d]" name i)
                ~show:string_of_int 0);
        nowner =
          Array.init slots (fun i ->
              M.make_cas ~padded
                ~name:(Printf.sprintf "%s.owner[%d]" name i)
                ~show:string_of_int (-1));
        descs =
          Array.init n (fun p ->
              M.make_register ~padded
                ~name:(Printf.sprintf "%s.desc[%d]" name p)
                ~show:show_desc
                { dseq = 0; dphase = P_done_push });
        next_seq = Array.make n 0;
        on_step;
      }

    (* The head abstraction: acquire returns a (value, tag) token the
       matching swing consumes; llsc carries its token in the link. *)
    let head_acquire t ~pid =
      t.on_step pid;
      match t.head with
      | H_tag c -> M.cas2_read c
      | H_llsc l -> (M.ll l ~pid, 0)
      | H_ann a -> AT.protect a ~pid

    let head_peek t ~pid =
      t.on_step pid;
      match t.head with
      | H_tag c -> fst (M.cas2_read c)
      | H_llsc l -> M.ll l ~pid
      | H_ann a -> fst (AT.peek a)

    let head_swing t ~pid ~expect:(h, tag) ~update =
      t.on_step pid;
      match t.head with
      | H_tag c -> M.cas2 c ~expect:h ~expect_tag:tag ~update ~update_tag:(tag + 1)
      | H_llsc l -> M.sc l ~pid update
      | H_ann a -> (
          match AT.guarded_cas a ~expect:h ~expect_tag:tag ~update with
          | Announced_tags.Installed -> true
          | Announced_tags.Contended | Announced_tags.Blocked -> false)

    let head_release t ~pid =
      match t.head with
      | H_ann a ->
          t.on_step pid;
          AT.clear a ~pid
      | H_tag _ | H_llsc _ -> ()

    (* The help rule: whoever observes [h] at the head marks it [In]
       before any head CAS of its own, so "buried or popped implies
       marked" holds at every configuration. *)
    let mark_in t ~pid h =
      if h >= 0 then begin
        t.on_step pid;
        M.write t.nstate.(h) 1
      end

    let try_unlink t ~pid h tok =
      t.on_step pid;
      let nx = M.read t.nnext.(h) in
      ignore (head_swing t ~pid ~expect:tok ~update:nx)

    let rec push_install t ~pid ~node =
      let (h, _) as tok = head_acquire t ~pid in
      mark_in t ~pid h;
      t.on_step pid;
      M.write t.nnext.(node) h;
      if head_swing t ~pid ~expect:tok ~update:node then ()
      else push_install t ~pid ~node

    let fresh_seq t ~pid ~what =
      let s = t.next_seq.(pid) + 1 in
      if s > t.cap then
        invalid_arg
          (Printf.sprintf "Detectable.Stack.%s: pid %d exhausted capacity %d"
             what pid t.cap);
      t.next_seq.(pid) <- s;
      s

    let push t ~pid v =
      let s = fresh_seq t ~pid ~what:"push" in
      t.on_step pid;
      M.write t.descs.(pid) { dseq = s; dphase = P_push v };
      let node = node_of ~cap:t.cap pid s in
      t.on_step pid;
      M.write t.nvalue.(node) v;
      push_install t ~pid ~node;
      head_release t ~pid;
      t.on_step pid;
      M.write t.descs.(pid) { dseq = s; dphase = P_done_push }

    let rec pop_install t ~pid ~seq =
      let (h, _) as tok = head_acquire t ~pid in
      if h < 0 then begin
        head_release t ~pid;
        t.on_step pid;
        M.write t.descs.(pid) { dseq = seq; dphase = P_done_pop (-1) };
        None
      end
      else begin
        mark_in t ~pid h;
        t.on_step pid;
        M.write t.descs.(pid) { dseq = seq; dphase = P_popping h };
        t.on_step pid;
        if M.cas t.nowner.(h) ~expect:(-1) ~update:(encode_owner t pid seq)
        then begin
          (* Claimed: the pop is linearized.  Unlink (or leave it to
             helpers — a claimed node at the head is unlinked by the next
             process whose own claim on it fails). *)
          try_unlink t ~pid h tok;
          head_release t ~pid;
          t.on_step pid;
          let v = M.read t.nvalue.(h) in
          t.on_step pid;
          M.write t.descs.(pid) { dseq = seq; dphase = P_done_pop h };
          Some v
        end
        else begin
          try_unlink t ~pid h tok;
          pop_install t ~pid ~seq
        end
      end

    let pop t ~pid =
      let s = fresh_seq t ~pid ~what:"pop" in
      t.on_step pid;
      M.write t.descs.(pid) { dseq = s; dphase = P_pop };
      pop_install t ~pid ~seq:s

    let top t ~pid = head_peek t ~pid

    let value_of t node =
      if node < 0 then invalid_arg "Detectable.Stack.value_of";
      M.read t.nvalue.(node)

    let recover t ~pid =
      (* A crash may have left this pid's announcement slot set; clear it
         first or a guarded writer could block on a dead reader. *)
      head_release t ~pid;
      t.on_step pid;
      let d = M.read t.descs.(pid) in
      t.next_seq.(pid) <- d.dseq;
      match d.dphase with
      | P_done_push | P_done_pop _ -> R_none
      | P_push v ->
          let s = d.dseq in
          let node = node_of ~cap:t.cap pid s in
          let landed =
            head_peek t ~pid = node
            || begin
                 t.on_step pid;
                 M.read t.nstate.(node) = 1
               end
          in
          if not landed then begin
            t.on_step pid;
            M.write t.nvalue.(node) v;
            push_install t ~pid ~node;
            head_release t ~pid
          end;
          t.on_step pid;
          M.write t.descs.(pid) { dseq = s; dphase = P_done_push };
          R_pushed v
      | P_pop ->
          (* No candidate was recorded, so no claim was possible: the pop
             had no effect yet.  Run it to completion under the same
             sequence number. *)
          R_popped (pop_install t ~pid ~seq:d.dseq)
      | P_popping h ->
          let s = d.dseq in
          t.on_step pid;
          if M.cas_read t.nowner.(h) = encode_owner t pid s then begin
            (* Our claim landed: the pop happened.  Help the unlink along
               if the node is still at the head, then report. *)
            let (h', _) as tok = head_acquire t ~pid in
            if h' = h then try_unlink t ~pid h tok;
            head_release t ~pid;
            t.on_step pid;
            let v = M.read t.nvalue.(h) in
            t.on_step pid;
            M.write t.descs.(pid) { dseq = s; dphase = P_done_pop h };
            R_popped (Some v)
          end
          else
            (* Owner cells are claimed at most once and never reset, so a
               foreign (or absent) owner proves our claim never landed. *)
            R_popped (pop_install t ~pid ~seq:s)

    let scans t = match t.head with H_ann a -> AT.scans a | _ -> 0
    let space _ = M.space ()
  end
end
