(** First-class instantiation of the paper's algorithms.

    Experiments, tests and benchmarks are parameterized over
    implementations.  This module packages each algorithm functor as a
    value, and instantiates it against a simulator (one fresh memory
    instance per object, so space accounting is exact) or against the
    direct sequential memory. *)

open Aba_primitives

(** {1 Instantiated objects} *)

type aba = {
  aba_name : string;
  dread : Pid.t -> int * bool;
  dwrite : Pid.t -> int -> unit;
  aba_space : unit -> (string * string) list;
  aba_initial : int;
}

type llsc = {
  llsc_name : string;
  ll : Pid.t -> int;
  sc : Pid.t -> int -> bool;
  vl : Pid.t -> bool;
  llsc_space : unit -> (string * string) list;
  llsc_initial : int;
}

(** {1 Builders} *)

module type ABA_BUILDER = sig
  module Make : Aba_register_intf.MAKER
end

module type LLSC_BUILDER = sig
  module Make : Llsc_intf.MAKER
end

type aba_builder = (module ABA_BUILDER)
type llsc_builder = (module LLSC_BUILDER)

val aba_unbounded : aba_builder
(** One unbounded register, O(1) steps (Introduction). *)

val aba_fig4 : aba_builder
(** Figure 4 / Theorem 3: [n+1] bounded registers, O(1) steps. *)

val aba_thm2 : aba_builder
(** Theorem 2: one bounded CAS, O(n) steps (Figure 5 over Figure 3). *)

val aba_fig5 : aba_builder
(** Figure 5 / Theorem 4 over a native LL/SC/VL base object, 2 steps. *)

val aba_fig5_jp : aba_builder
(** Figure 5 over the Jayanti–Petrovic LL/SC: 1 CAS + n registers, O(1)
    steps. *)

val aba_bounded_tag : tag_bound:int -> aba_builder
(** The deliberately flawed mod-[tag_bound] tagging scheme. *)

val aba_fig4_shrunk : slack:int -> aba_builder
(** Ablation: Figure 4 with its sequence-number ceiling lowered from
    [2n+1] to [2n+1-slack].  At [slack = 0] this is {!aba_fig4}; beyond
    that the GetSeq pool can exhaust or the freshness property can break —
    showing the [2n+2]-value domain is needed. *)

val llsc_fig3 : llsc_builder
(** Figure 3 / Theorem 2: one bounded CAS, O(n) steps. *)

val llsc_fig3_retries : retries:(n:int -> int) -> llsc_builder
(** Ablation: Figure 3 with its CAS retry bound replaced by
    [retries ~n] instead of [n].  Below [n], Claim 6's counting argument
    breaks and LL may poison its link without any intervening SC — a
    linearizability violation the explorer can find. *)

val llsc_moir : llsc_builder
(** One unbounded CAS, O(1) steps ([26]). *)

val llsc_jp : llsc_builder
(** One bounded CAS + n bounded registers, O(1) steps ([2], [15]). *)

val llsc_native : llsc_builder
(** A native LL/SC/VL base object (specification-level). *)

val llsc_bounded_tag : tag_bound:int -> llsc_builder
(** The deliberately flawed bounded-tag LL/SC — Corollary 1's naive
    counter-attempt, refuted by the tests once [tag_bound] SCs wrap the
    tag within one link window. *)

val all_aba : unit -> (string * aba_builder) list
(** The correct ABA-detecting register implementations with short labels. *)

val all_llsc : unit -> (string * llsc_builder) list

(** {1 Instantiation} *)

val aba_with_mem :
  ?value_bound:int Bounded.t ->
  ?padded:bool ->
  ?backoff:Backoff.spec ->
  ?combining:bool ->
  aba_builder ->
  (module Mem_intf.S) ->
  n:int ->
  aba
(** Instantiate against an explicit memory instance (used by code that is
    itself a functor over {!Mem_intf.S}, e.g. the application data
    structures).  [padded]/[backoff] are the contention-management hints of
    {!Llsc_intf.S.create}; they default off, and the checking backends
    ignore them.  [combining] (default [false]) routes [dread] through a
    {!Combining} cache; the wrapper sits above the builder, so it composes
    with every implementation and backend.  Driven sequentially (seq/sim)
    each read wins the claim and runs the underlying protocol, so
    transcripts are unchanged — the differential tests exploit this. *)

val llsc_with_mem :
  ?value_bound:int Bounded.t ->
  ?init:int ->
  ?padded:bool ->
  ?backoff:Backoff.spec ->
  llsc_builder ->
  (module Mem_intf.S) ->
  n:int ->
  llsc

val aba_in_sim :
  ?value_bound:int Bounded.t ->
  ?combining:bool ->
  aba_builder ->
  Aba_sim.Sim.t ->
  n:int ->
  aba
(** Every shared-memory access of the returned object is a simulator step
    of the process passed as [pid]. *)

val aba_seq :
  ?value_bound:int Bounded.t -> ?combining:bool -> aba_builder -> n:int -> aba
(** Direct semantics; operations execute immediately. *)

val aba_rt :
  ?value_bound:int Bounded.t ->
  ?padded:bool ->
  ?backoff:Backoff.spec ->
  ?combining:bool ->
  aba_builder ->
  n:int ->
  aba
(** The same functor over {!Aba_primitives.Rt_mem}: every shared-memory
    access is an OCaml 5 [Atomic] operation, safe for concurrent use by up
    to [n] domains with distinct pids.  This is the instantiation the
    runtime layer wraps and the benchmarks measure. *)

val llsc_in_sim :
  ?value_bound:int Bounded.t -> llsc_builder -> Aba_sim.Sim.t -> n:int -> llsc

val llsc_seq : ?value_bound:int Bounded.t -> llsc_builder -> n:int -> llsc

val llsc_rt :
  ?value_bound:int Bounded.t ->
  ?init:int ->
  ?padded:bool ->
  ?backoff:Backoff.spec ->
  llsc_builder ->
  n:int ->
  llsc
(** See {!aba_rt}. *)
