(** The trivial ABA-detecting register from a single {e unbounded} register
    (Introduction).

    The register holds the value together with a stamp [(writer, tag)]
    that never repeats: each writer maintains a private unbounded counter,
    so distinct [DWrite]s carry distinct stamps.  A reader detects writes by
    comparing the stamp with the one seen at its previous [DRead].  Both
    operations take a single shared-memory step.

    This is the construction that makes the boundedness hypothesis of
    Theorem 1 necessary: with one unbounded base object, one step suffices,
    whereas with bounded base objects, space [n - 1] is required. *)

open Aba_primitives

module Make (M : Mem_intf.S) : Aba_register_intf.S = struct
  let algorithm_name = "unbounded-tag (1 unbounded register, O(1) steps)"
  let initial_value = -1

  type stamped = { value : int; writer : Pid.t; tag : int }

  type local = {
    mutable counter : int;  (** next tag for this writer *)
    mutable last : (Pid.t * int) option;  (** stamp at previous DRead *)
  }

  type t = { x : stamped option M.register; locals : local array; init : int }

  let show = function
    | None -> "_"
    | Some { value; writer; tag } ->
        Printf.sprintf "(%d,p%d,%d)" value writer tag

  let create ?value_bound:_ ?(init = initial_value) ?(padded = false)
      ?backoff:_ ~n () =
    Pid.check ~n 0;
    {
      x = M.make_register ~padded ~name:"X" ~show None;
      locals = Array.init n (fun _ -> { counter = 0; last = None });
      init;
    }

  let dwrite t ~pid x =
    let l = t.locals.(pid) in
    let tag = l.counter in
    l.counter <- tag + 1;
    M.write t.x (Some { value = x; writer = pid; tag })

  let dread t ~pid =
    let l = t.locals.(pid) in
    match M.read t.x with
    | None ->
        (* No DWrite ever happened; [l.last] is necessarily [None] too. *)
        (t.init, false)
    | Some { value; writer; tag } ->
        let stamp = Some (writer, tag) in
        let changed = stamp <> l.last in
        l.last <- stamp;
        (value, changed)

  let space _ = M.space ()
end
