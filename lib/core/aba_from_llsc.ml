(** Figure 5 (Appendix A, Theorem 4): an ABA-detecting register from a
    single LL/SC/VL object, two shared-memory steps per operation.

    [DWrite x] is an [LL] followed by an [SC x]; the [SC] may fail, in which
    case the write linearizes immediately before the first successful [SC]
    that follows the [LL] — the value written is lost behind that later
    write, which is consistent.  [DRead] first verifies the link with [VL]:
    success means no [SC] (hence no [DWrite]) linearized since the previous
    [DRead], so the cached [old] value is current; failure means some
    [DWrite] linearized, so the [LL] refreshes both the cache and the link.

    Composed with Figure 3 this yields Theorem 2's multi-writer
    ABA-detecting register from a single bounded CAS object with [O(n)]
    steps; composed with a native LL/SC/VL base object it is the two-step
    construction of Theorem 4. *)

module Make (L : Llsc_intf.S) : Aba_register_intf.S = struct
  let algorithm_name =
    Printf.sprintf "figure-5 (ABA-detecting register over %s)"
      L.algorithm_name

  let initial_value = -1

  type t = { obj : L.t; old : int array }

  let create ?value_bound ?init ?padded ?backoff ~n () =
    let value_bound =
      match value_bound with
      | Some b -> Some b
      | None -> Some (Aba_primitives.Bounded.int_range ~lo:(-1) ~hi:255)
    in
    {
      (* When [init] is absent the source object keeps its own default
         initial value; only the cached [old] values start at
         {!initial_value}.  Contention hints go straight to the source
         object — this layer adds no shared state of its own. *)
      obj = L.create ?value_bound ?init ?padded ?backoff ~n ();
      old = Array.make n (Option.value init ~default:initial_value);
    }

  let dwrite t ~pid x =
    ignore (L.ll t.obj ~pid);
    ignore (L.sc t.obj ~pid x)

  let dread t ~pid =
    if L.vl t.obj ~pid then (t.old.(pid), false)
    else begin
      t.old.(pid) <- L.ll t.obj ~pid;
      (t.old.(pid), true)
    end

  let space t = L.space t.obj
end
