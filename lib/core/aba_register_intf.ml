(** Interface of ABA-detecting register implementations.

    An ABA-detecting register (the paper's central object) stores a value
    and supports [DWrite] and [DRead]; [DRead] by process [q] additionally
    reports whether any [DWrite] occurred since [q]'s previous [DRead]
    (since the start of the execution, for [q]'s first [DRead]).

    All implementations in this library are {e multi-writer} — any process
    may call [dwrite] — matching Theorems 2 and 3.  The lower bounds
    (Theorem 1) already hold for the weaker single-writer object, so they
    apply a fortiori. *)

open Aba_primitives

module type S = sig
  val algorithm_name : string

  type t

  val create :
    ?value_bound:int Bounded.t -> ?init:int -> ?padded:bool ->
    ?backoff:Backoff.spec -> n:int -> unit -> t
  (** A register for a system of [n] processes, initially holding [init]
      (default {!initial_value}).  [value_bound] (default [[-1..255]])
      bounds the stored values so that base objects are bounded, as
      Theorems 1 and 3 require; implementations that need unbounded base
      objects ignore it.  [padded]/[backoff] are contention-management
      hints as in {!Llsc_intf.S.create}; wait-free implementations take no
      backoff and ignore the spec. *)

  val dwrite : t -> pid:Pid.t -> int -> unit

  val dread : t -> pid:Pid.t -> int * bool

  val space : t -> (string * string) list
  (** Base objects used, as [(name, domain)] pairs — the measured [m]. *)

  val initial_value : int
end

(** Implementations are functors over the base-object memory, so the same
    code runs under the simulator and in direct sequential tests. *)
module type MAKER = functor (M : Mem_intf.S) -> S
