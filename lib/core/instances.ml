open Aba_primitives

type aba = {
  aba_name : string;
  dread : Pid.t -> int * bool;
  dwrite : Pid.t -> int -> unit;
  aba_space : unit -> (string * string) list;
  aba_initial : int;
}

type llsc = {
  llsc_name : string;
  ll : Pid.t -> int;
  sc : Pid.t -> int -> bool;
  vl : Pid.t -> bool;
  llsc_space : unit -> (string * string) list;
  llsc_initial : int;
}

module type ABA_BUILDER = sig
  module Make : Aba_register_intf.MAKER
end

module type LLSC_BUILDER = sig
  module Make : Llsc_intf.MAKER
end

type aba_builder = (module ABA_BUILDER)
type llsc_builder = (module LLSC_BUILDER)

let aba_unbounded : aba_builder =
  (module struct
    module Make = Aba_unbounded.Make
  end)

let aba_fig4 : aba_builder =
  (module struct
    module Make = Aba_from_registers.Make
  end)

let aba_thm2 : aba_builder =
  (module struct
    module Make = Aba_from_cas.Make
  end)

let aba_fig5 : aba_builder =
  (module struct
    module Make (M : Mem_intf.S) = Aba_from_llsc.Make (Llsc_native.Make (M))
  end)

let aba_fig5_jp : aba_builder =
  (module struct
    module Make (M : Mem_intf.S) = Aba_from_llsc.Make (Llsc_jp.Make (M))
  end)

let aba_fig4_shrunk ~slack : aba_builder =
  (module struct
    module Make =
      Aba_from_registers.Make_with_ceiling (struct
        let seq_ceiling ~n = max 0 ((2 * n) + 1 - slack)
      end)
  end)

let aba_bounded_tag ~tag_bound : aba_builder =
  (module struct
    module Make =
      Aba_bounded_tag.Make_with_bound (struct
        let tag_bound = tag_bound
      end)
  end)

let llsc_fig3 : llsc_builder =
  (module struct
    module Make = Llsc_from_cas.Make
  end)

let llsc_fig3_retries ~retries : llsc_builder =
  (module struct
    module Make =
      Llsc_from_cas.Make_with_retries (struct
        let retries = retries
      end)
  end)

let llsc_moir : llsc_builder =
  (module struct
    module Make = Llsc_unbounded.Make
  end)

let llsc_jp : llsc_builder =
  (module struct
    module Make = Llsc_jp.Make
  end)

let llsc_native : llsc_builder =
  (module struct
    module Make = Llsc_native.Make
  end)

let llsc_bounded_tag ~tag_bound : llsc_builder =
  (module struct
    module Make =
      Llsc_bounded_tag.Make_with_bound (struct
        let tag_bound = tag_bound
      end)
  end)

let all_aba () =
  [
    ("unbounded", aba_unbounded);
    ("fig4", aba_fig4);
    ("thm2", aba_thm2);
    ("fig5", aba_fig5);
    ("fig5-jp", aba_fig5_jp);
  ]

let all_llsc () =
  [
    ("fig3", llsc_fig3);
    ("moir", llsc_moir);
    ("jp", llsc_jp);
    ("native", llsc_native);
  ]

let aba_of_impl (type t) (module I : Aba_register_intf.S with type t = t)
    (obj : t) =
  {
    aba_name = I.algorithm_name;
    dread = (fun pid -> I.dread obj ~pid);
    dwrite = (fun pid x -> I.dwrite obj ~pid x);
    aba_space = (fun () -> I.space obj);
    aba_initial = I.initial_value;
  }

let llsc_of_impl (type t) (module I : Llsc_intf.S with type t = t) (obj : t) =
  {
    llsc_name = I.algorithm_name;
    ll = (fun pid -> I.ll obj ~pid);
    sc = (fun pid x -> I.sc obj ~pid x);
    vl = (fun pid -> I.vl obj ~pid);
    llsc_space = (fun () -> I.space obj);
    llsc_initial = I.initial_value;
  }

(* Read combining is a wrapper over the finished instance, not a functor
   option: it caches at the [dread] closure level, so it applies uniformly
   to every builder.  Driven sequentially each read wins the claim and
   runs the underlying protocol, so seq/sim transcripts are unchanged —
   which is why the knob can be threaded through all three backends. *)
let with_combining ?(combining = false) ?padded ~n inst =
  if not combining then inst
  else begin
    let c =
      Combining.create ?padded ~n ~scan:(fun ~pid -> inst.dread pid) ()
    in
    { inst with dread = (fun pid -> Combining.dread c ~pid) }
  end

let aba_with_mem ?value_bound ?padded ?backoff ?combining
    (module B : ABA_BUILDER) (mem : (module Mem_intf.S)) ~n =
  let module M = (val mem) in
  let module I = B.Make (M) in
  aba_of_impl (module I) (I.create ?value_bound ?padded ?backoff ~n ())
  |> with_combining ?combining ?padded ~n

let llsc_with_mem ?value_bound ?init ?padded ?backoff
    (module B : LLSC_BUILDER) (mem : (module Mem_intf.S)) ~n =
  let module M = (val mem) in
  let module I = B.Make (M) in
  llsc_of_impl (module I) (I.create ?value_bound ?init ?padded ?backoff ~n ())

let aba_in_sim ?value_bound ?combining b sim ~n =
  aba_with_mem ?value_bound ?combining b (Aba_sim.Sim_mem.make sim) ~n

let aba_seq ?value_bound ?combining b ~n =
  aba_with_mem ?value_bound ?combining b (Seq_mem.make ()) ~n

let aba_rt ?value_bound ?padded ?backoff ?combining b ~n =
  aba_with_mem ?value_bound ?padded ?backoff ?combining b (Rt_mem.make ~n ())
    ~n

let llsc_in_sim ?value_bound b sim ~n =
  llsc_with_mem ?value_bound b (Aba_sim.Sim_mem.make sim) ~n

let llsc_seq ?value_bound b ~n =
  llsc_with_mem ?value_bound b (Seq_mem.make ()) ~n

let llsc_rt ?value_bound ?init ?padded ?backoff b ~n =
  llsc_with_mem ?value_bound ?init ?padded ?backoff b (Rt_mem.make ~n ()) ~n
