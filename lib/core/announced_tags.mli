(** Announcement-guarded bounded tags: wraparound-safe tagging over a
    double-word CAS.

    The folklore bounded-tag technique ({!Aba_bounded_tag}, the [Tag_bits]
    protections in [lib/runtime]) attaches a [2^k]-valued counter to a CAS
    word; it is unsound across wraparound — [2^k] installs between a read
    and its dependent CAS reinstate the tag and the stale CAS succeeds
    (the E6 adversary).  This module makes the {e same} tag space safe with
    a hazard-pointer idea applied to tags instead of nodes (flock's
    [tagged.h]): readers {e announce} the tag they rely on in a per-process
    slot before using it, and writers {e scan} the slots before reusing
    tags, skipping announced ones.

    The tag space [0 .. 2^k - 1] is split into two halves.  Installs inside
    a half are plain [tag + 1] — no scan, no shared traffic beyond the CAS
    itself.  Only when an install would {e cross} into the other half
    (tag [0] or [2^(k-1)]) does the writer scan the announcement slots: it
    enters the target half just {e above} the highest announced tag in it,
    so a tag that has been continuously announced since it was last live is
    never reinstated.  A crossing is {!outcome.Blocked} when an
    announcement parks on the very last tag of the target half; the caller
    retries (with backoff at runtime) — the same bounded-interference
    caveat as a stalled hazard-pointer holder, except it costs progress,
    never safety.

    Soundness sketch.  [protect] announces and then {e revalidates}: it
    re-reads the word until a read matches the announcement it just wrote.
    From that point the witness pair [(v, g)] cannot be reinstated after
    being displaced while the announcement stands: tags advance by [+1]
    within a half, so reinstating [g] requires a later crossing into [g]'s
    half, whose scan happens after the announcement was visible and
    therefore enters above [g].  A successful CAS on the witness hence
    proves the word never changed since validation — exactly the guarantee
    a Treiber pop or an M&S dequeue needs, with zero per-operation retire
    or scan cost.

    [guard:false] turns both the announcements and the scans off, leaving
    the plain (unsound) modular tag discipline on the identical code path —
    the reference point the wraparound regression pair in
    [lib/lowerbound/wraparound.ml] is built on. *)

open Aba_primitives

(** Result of a {!Make.guarded_cas} attempt. *)
type outcome =
  | Installed  (** the CAS succeeded; the update is published *)
  | Contended  (** the word no longer matches the witness; re-read *)
  | Blocked
      (** crossing refused: an announcement parks on the last tag of the
          target half; retry after the holder advances *)

module Make (M : Mem_intf.S) : sig
  type t

  val create :
    ?guard:bool -> ?padded:bool -> ?value_bound:int Bounded.t ->
    tag_bits:int -> name:string -> n:int -> init:int -> unit -> t
  (** A guarded word for [n] processes holding [(init, 0)].  Values must
      lie in [value_bound] (default [[-1..255]]; [-1] conventionally means
      "nil") and be at least [-1] — they pack as [v + 1] next to the tag.
      [tag_bits] must be at least [2] (each half needs room to skip); for
      progress under adversarial stalls one half should exceed the number
      of concurrently parked readers: [2^(tag_bits-1) > n].  [guard]
      (default [true]): [false] disables announce/scan, leaving plain
      wrapping tags. *)

  val tag_bits : t -> int

  val peek : t -> int * int
  (** The current [(value, tag)] pair, unprotected — one step. *)

  val protect : t -> pid:Pid.t -> int * int
  (** Announce-and-revalidate: returns a [(value, tag)] witness that was
      current after [pid]'s announcement of its tag became visible.  The
      announcement stays set — the witness stays safe to dereference and
      CAS on — until {!clear} or the next [protect] by the same process. *)

  val clear : t -> pid:Pid.t -> unit
  (** Withdraw [pid]'s announcement. *)

  val guarded_cas : t -> expect:int -> expect_tag:int -> update:int -> outcome
  (** Install [(update, succ expect_tag)] if the word still holds the
      witness [(expect, expect_tag)], scanning announcements when the
      successor tag crosses into the other half (and entering above every
      announced tag there). *)

  val scans : t -> int
  (** Crossing scans performed so far.  Maintained without
      synchronization: exact in deterministic (seq/sim) executions, a
      lower-bound estimate under parallel runtime use. *)

  val space : t -> (string * string) list
end
