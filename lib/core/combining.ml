open Aba_primitives

(* Per-process scratch: the poll backoff plus the counters.  One padded
   record per pid — everything a reader mutates while waiting lives on its
   own cache line, so waiters do not interfere with each other. *)
type local = {
  bo : Backoff.t;
  mutable scans : int;
  mutable adopted : int;
  mutable fallbacks : int;
  mutable batched : int;
}

(* What the epoch owner combines.  [Read] is the original read-combining
   cache: the winner runs one scan and everyone adopts the snapshot — the
   degenerate case where all queued "mutations" are the same read.
   [Mutate] is full flat combining: each process queues an encoded
   mutation in its publication slot and the owner applies the batch.  The
   two are exclusive per instance because [Read]'s adoption rule (epoch
   advanced twice since my start) is only sound when every epoch bump
   published a fresh snapshot, which [Mutate] rounds do not. *)
type role =
  | Read of (pid:Pid.t -> int * bool)
  | Mutate of (pid:Pid.t -> int -> int)

type t = {
  epoch : int Atomic.t;
      (** Even: no combining round in flight.  Odd: an owner claimed the
          cache and is scanning ([Read]) or draining the publication array
          ([Mutate]).  Monotonically increasing. *)
  snapshot : int Atomic.t;
      (** [Read] only: the value published by the last completed scan;
          meaningful between the scanner's [set snapshot] and the next
          claim, which is exactly the window the adopter's epoch re-check
          validates. *)
  window : int;
  role : role;
  pub : int Atomic.t array;
      (** [Mutate] only: one padded publication slot per pid.  Low two
          bits are the state tag, the rest the payload (arithmetic shift,
          so negative payloads round-trip):

          {v EMPTY=0  PENDING(op)=op<<2|1  CLAIMED(op)=op<<2|3  DONE(r)=r<<2|2 v}

          Transitions: the owner posts PENDING (plain store — the slot is
          its own), withdraws by CAS PENDING->EMPTY; a combiner takes an
          op by CAS PENDING->CLAIMED (so a withdraw can never race a
          half-applied op), applies it, and publishes DONE with a plain
          store (it owns CLAIMED); only the posting process resets
          DONE->EMPTY.  The same waiter-owns-the-locked-state shape as
          the elimination slot: a stranger's identical word can never be
          confused for a live offer. *)
  locals : local array;
  obs : Aba_obs.Obs.t;
}

let default_window = 64

let create ?(padded = true) ?(window = default_window)
    ?(backoff = Backoff.Exp { min_spins = 1; max_spins = 32 })
    ?(obs = Aba_obs.Obs.noop) ?scan ?apply ~n () =
  if window < 1 then invalid_arg "Combining.create: window must be positive";
  if n < 1 then invalid_arg "Combining.create: n must be positive";
  let role =
    match (scan, apply) with
    | Some scan, None -> Read scan
    | None, Some apply -> Mutate apply
    | None, None ->
        invalid_arg "Combining.create: needs a scan or an apply function"
    | Some _, Some _ ->
        (* Mixing would let a [Mutate] round's epoch bump validate a stale
           [Read] snapshot (see {!role}); force the caller to pick one. *)
        invalid_arg "Combining.create: scan and apply are exclusive"
  in
  let cell v = if padded then Padded.atomic v else Atomic.make v in
  {
    epoch = cell 0;
    snapshot = cell 0;
    window;
    role;
    pub =
      (match role with
      | Read _ -> [||]
      | Mutate _ ->
          if padded then Padded.atomic_array n 0
          else Array.init n (fun _ -> Atomic.make 0));
    obs;
    locals =
      Array.init n (fun _ ->
          Padded.copy
            {
              bo = Backoff.make backoff;
              scans = 0;
              adopted = 0;
              fallbacks = 0;
              batched = 0;
            });
  }

(* ----- Read combining (the degenerate case) ----- *)

(* Adoption soundness.  The adopter read [e0] from [epoch] at the start of
   its own operation.  It may return the published snapshot only after
   observing an even [e >= e0 + 2]: the odd transition to [e - 1] then
   happened after the adopter read [e0], i.e. the publishing scan {e
   started} inside the adopter's interval, so the scan's linearization
   point is a legal linearization point for the adopter too.  An even
   [e = e0 + 1] (a scan that was already in flight when we arrived) is
   rejected — its read may have linearized before we started.

   The snapshot re-check ([epoch] unchanged around the [snapshot] load)
   rules out tearing: a later scanner stores its snapshot only after
   bumping [epoch] to odd, which the second load would see. *)
let rec adopt t scan l ~pid e0 i t0 =
  if i >= t.window then begin
    (* Nobody published in time: do the precise read ourselves (without
       claiming the cache — contending for the claim word again would just
       add traffic to the line we are trying to shed). *)
    l.fallbacks <- l.fallbacks + 1;
    let r = scan ~pid in
    Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
      ~outcome:Aba_obs.Obs.Fallback ~retries:i t0;
    r
  end
  else begin
    let e = Atomic.get t.epoch in
    if e land 1 = 0 && e >= e0 + 2 then begin
      let v = Atomic.get t.snapshot in
      if Atomic.get t.epoch = e then begin
        l.adopted <- l.adopted + 1;
        Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
          ~outcome:Aba_obs.Obs.Combined ~retries:i t0;
        (* The adopted flag is conservatively [true]: the adopter skipped
           its own announce-protocol read, so it cannot prove the value is
           unchanged since {e its} previous read.  A false positive makes a
           client retry; a false negative would be a missed ABA — never
           produced here. *)
        (v, true)
      end
      else adopt t scan l ~pid e0 (i + 1) t0
    end
    else begin
      Backoff.once l.bo;
      adopt t scan l ~pid e0 (i + 1) t0
    end
  end

let dread t ~pid =
  let scan =
    match t.role with
    | Read scan -> scan
    | Mutate _ -> invalid_arg "Combining.dread: a flat-combining instance"
  in
  let t0 = Aba_obs.Obs.start t.obs in
  let l = t.locals.(pid) in
  let e0 = Atomic.get t.epoch in
  if e0 land 1 = 0 && Atomic.compare_and_set t.epoch e0 (e0 + 1) then begin
    (* Scanner: run the real read, publish, release.  The scanner's own
       result is exact — it ran the full underlying protocol. *)
    let r = scan ~pid in
    Atomic.set t.snapshot (fst r);
    Atomic.set t.epoch (e0 + 2);
    l.scans <- l.scans + 1;
    Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
      ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
    r
  end
  else begin
    Backoff.reset l.bo;
    adopt t scan l ~pid e0 0 t0
  end

(* ----- Full flat combining ----- *)

(* Raw slot-word tests; the hot path never builds an intermediate
   variant (that would allocate). *)
let pending_of op = (op lsl 2) lor 1
let done_of r = (r lsl 2) lor 2
let claimed_of w = (w land lnot 3) lor 3
let payload w = w asr 2

(* Called with the claim held (epoch odd): serve every queued mutation.
   A slot can concurrently move PENDING->EMPTY (its owner withdrawing),
   so the claim CAS may fail — then the op is simply no longer queued.
   Once CLAIMED, the owner's withdraw is locked out and the plain DONE
   store is safe.  Returns the number of ops served. *)
let drain t apply ~pid =
  let served = ref 0 in
  for i = 0 to Array.length t.pub - 1 do
    let s = t.pub.(i) in
    let w = Atomic.get s in
    if w land 3 = 1 && Atomic.compare_and_set s w (claimed_of w) then begin
      Atomic.set s (done_of (apply ~pid (payload w)));
      incr served
    end
  done;
  !served

let submit t ~pid op =
  let apply =
    match t.role with
    | Mutate apply -> apply
    | Read _ -> invalid_arg "Combining.submit: a read-combining instance"
  in
  let t0 = Aba_obs.Obs.start t.obs in
  let l = t.locals.(pid) in
  let slot = t.pub.(pid) in
  let pending = pending_of op in
  (* The slot is EMPTY and owner-owned: a plain store posts the op. *)
  Atomic.set slot pending;
  Backoff.reset l.bo;
  let rec wait i =
    let w = Atomic.get slot in
    if w land 3 = 2 then begin
      (* A combiner served us: its batch application is our
         linearization point, which lies inside our interval because the
         op was posted before it was claimed. *)
      Atomic.set slot 0;
      l.adopted <- l.adopted + 1;
      Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
        ~outcome:Aba_obs.Obs.Combined ~retries:i t0;
      payload w
    end
    else if w land 3 = 3 then begin
      (* Claimed mid-application: the result is imminent (the combiner
         holds the claim and is running [apply]); don't burn window. *)
      Backoff.once l.bo;
      wait i
    end
    else begin
      (* Still pending: race for the claim and lead a round ourselves. *)
      let e0 = Atomic.get t.epoch in
      if e0 land 1 = 0 && Atomic.compare_and_set t.epoch e0 (e0 + 1) then begin
        let served = drain t apply ~pid in
        Atomic.set t.epoch (e0 + 2);
        (* Our own slot was PENDING and nobody else held the claim, so
           the drain necessarily served it. *)
        let r = Atomic.get slot in
        Atomic.set slot 0;
        l.scans <- l.scans + 1;
        l.batched <- l.batched + served - 1;
        Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
          ~outcome:Aba_obs.Obs.Ok ~retries:i t0;
        payload r
      end
      else if i >= t.window then
        if Atomic.compare_and_set slot pending 0 then begin
          (* Withdrawn: apply directly, uncombined.  Safe because the
             underlying structure is itself concurrency-safe — combining
             here is a traffic optimization, not a lock. *)
          l.fallbacks <- l.fallbacks + 1;
          Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
            ~outcome:Aba_obs.Obs.Fallback ~retries:i t0;
          apply ~pid op
        end
        else (* a combiner claimed the op just now; take its result *)
          wait i
      else begin
        Backoff.once l.bo;
        wait (i + 1)
      end
    end
  in
  wait 0

(* Declared after the hot-path functions so the [local] labels above
   resolve unambiguously. *)
type stats = {
  scans : int;
  adopted : int;
  fallbacks : int;
  batched : int;
}

let stats t =
  Array.fold_left
    (fun acc (l : local) ->
      {
        scans = acc.scans + l.scans;
        adopted = acc.adopted + l.adopted;
        fallbacks = acc.fallbacks + l.fallbacks;
        batched = acc.batched + l.batched;
      })
    { scans = 0; adopted = 0; fallbacks = 0; batched = 0 }
    t.locals
