open Aba_primitives

(* Per-process scratch: the poll backoff plus the counters.  One padded
   record per pid — everything a reader mutates while waiting lives on its
   own cache line, so waiters do not interfere with each other. *)
type local = {
  bo : Backoff.t;
  mutable scans : int;
  mutable adopted : int;
  mutable fallbacks : int;
}

type t = {
  epoch : int Atomic.t;
      (** Even: no scan in flight.  Odd: a scanner claimed the cache and is
          running the underlying read.  Monotonically increasing. *)
  snapshot : int Atomic.t;
      (** The value published by the last completed scan; only meaningful
          between the scanner's [set snapshot] and the next claim, which is
          exactly the window the adopter's epoch re-check validates. *)
  window : int;
  scan : pid:Pid.t -> int * bool;
  locals : local array;
  obs : Aba_obs.Obs.t;
}

let default_window = 64

let create ?(padded = true) ?(window = default_window)
    ?(backoff = Backoff.Exp { min_spins = 1; max_spins = 32 })
    ?(obs = Aba_obs.Obs.noop) ~n ~scan () =
  if window < 1 then invalid_arg "Combining.create: window must be positive";
  if n < 1 then invalid_arg "Combining.create: n must be positive";
  let cell v = if padded then Padded.atomic v else Atomic.make v in
  {
    epoch = cell 0;
    snapshot = cell 0;
    window;
    scan;
    obs;
    locals =
      Array.init n (fun _ ->
          Padded.copy
            {
              bo = Backoff.make backoff;
              scans = 0;
              adopted = 0;
              fallbacks = 0;
            });
  }

(* Adoption soundness.  The adopter read [e0] from [epoch] at the start of
   its own operation.  It may return the published snapshot only after
   observing an even [e >= e0 + 2]: the odd transition to [e - 1] then
   happened after the adopter read [e0], i.e. the publishing scan {e
   started} inside the adopter's interval, so the scan's linearization
   point is a legal linearization point for the adopter too.  An even
   [e = e0 + 1] (a scan that was already in flight when we arrived) is
   rejected — its read may have linearized before we started.

   The snapshot re-check ([epoch] unchanged around the [snapshot] load)
   rules out tearing: a later scanner stores its snapshot only after
   bumping [epoch] to odd, which the second load would see. *)
let rec adopt t l ~pid e0 i t0 =
  if i >= t.window then begin
    (* Nobody published in time: do the precise read ourselves (without
       claiming the cache — contending for the claim word again would just
       add traffic to the line we are trying to shed). *)
    l.fallbacks <- l.fallbacks + 1;
    let r = t.scan ~pid in
    Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
      ~outcome:Aba_obs.Obs.Fallback ~retries:i t0;
    r
  end
  else begin
    let e = Atomic.get t.epoch in
    if e land 1 = 0 && e >= e0 + 2 then begin
      let v = Atomic.get t.snapshot in
      if Atomic.get t.epoch = e then begin
        l.adopted <- l.adopted + 1;
        Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
          ~outcome:Aba_obs.Obs.Combined ~retries:i t0;
        (* The adopted flag is conservatively [true]: the adopter skipped
           its own announce-protocol read, so it cannot prove the value is
           unchanged since {e its} previous read.  A false positive makes a
           client retry; a false negative would be a missed ABA — never
           produced here. *)
        (v, true)
      end
      else adopt t l ~pid e0 (i + 1) t0
    end
    else begin
      Backoff.once l.bo;
      adopt t l ~pid e0 (i + 1) t0
    end
  end

let dread t ~pid =
  let t0 = Aba_obs.Obs.start t.obs in
  let l = t.locals.(pid) in
  let e0 = Atomic.get t.epoch in
  if e0 land 1 = 0 && Atomic.compare_and_set t.epoch e0 (e0 + 1) then begin
    (* Scanner: run the real read, publish, release.  The scanner's own
       result is exact — it ran the full underlying protocol. *)
    let r = t.scan ~pid in
    Atomic.set t.snapshot (fst r);
    Atomic.set t.epoch (e0 + 2);
    l.scans <- l.scans + 1;
    Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Combine
      ~outcome:Aba_obs.Obs.Ok ~retries:0 t0;
    r
  end
  else begin
    Backoff.reset l.bo;
    adopt t l ~pid e0 0 t0
  end

(* Declared after the hot-path functions so the [local] labels above
   resolve unambiguously. *)
type stats = { scans : int; adopted : int; fallbacks : int }

let stats t =
  Array.fold_left
    (fun acc (l : local) ->
      {
        scans = acc.scans + l.scans;
        adopted = acc.adopted + l.adopted;
        fallbacks = acc.fallbacks + l.fallbacks;
      })
    { scans = 0; adopted = 0; fallbacks = 0 }
    t.locals
