(** LL/SC/VL provided directly by a base object.

    The paper treats LL/SC/VL objects as possible {e base} objects (e.g.
    Figure 5 implements an ABA-detecting register {e from} one).  This
    module wraps such a base object in the {!Llsc_intf.S} interface so that
    Figure 5 can be instantiated either with a native object (Theorem 4) or
    with Figure 3's implementation (Theorem 2). *)

open Aba_primitives

module Make (M : Mem_intf.S) : Llsc_intf.S = struct
  let algorithm_name = "native LL/SC/VL base object"
  let initial_value = 0

  type t = int M.llsc

  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ?(padded = false) ?backoff:_ ~n:_ () =
    M.make_llsc ~bound:value_bound ~padded ~name:"L" ~show:string_of_int init

  let ll t ~pid = M.ll t ~pid
  let sc t ~pid v = M.sc t ~pid v
  let vl t ~pid = M.vl t ~pid
  let space _ = M.space ()
end
