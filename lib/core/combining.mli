(** Read combining for ABA-detecting registers.

    Under read contention every [DRead] of {!Aba_from_registers} (Figure 4)
    walks the same shared words: the register [X] plus the reader's
    announce slot.  With many concurrent readers the work is redundant —
    any one reader's snapshot would do for all of them, as long as each
    adopted snapshot linearizes inside the adopter's own interval.

    This cache makes that trade explicit.  Readers race a claim word
    ([epoch], a seqlock-style counter: odd while a scan is in flight); the
    winner runs the underlying read ([scan]) and publishes its value, the
    losers spin a bounded window ({!Aba_primitives.Backoff}-paced) and
    adopt the published snapshot — but only one whose scan provably
    {e started} after the adopter's own operation began (observed epoch
    [>= e0 + 2]), which makes the adoption linearizable.  A loser whose
    window expires falls back to the precise underlying read.

    The detection flag of an adopted read is conservatively [true]: the
    adopter skipped its own announce-protocol read, so it reports "may
    have changed".  False positives cost a client retry; false negatives
    (a missed ABA) are never introduced.  Driven sequentially every read
    wins the claim and runs the exact underlying protocol, so seq/sim
    transcripts are unchanged — the combining analogue of
    {!Aba_primitives.Backoff.Noop} inertness. *)

open Aba_primitives

type t

val create :
  ?padded:bool ->
  ?window:int ->
  ?backoff:Backoff.spec ->
  ?obs:Aba_obs.Obs.t ->
  n:int ->
  scan:(pid:Pid.t -> int * bool) ->
  unit ->
  t
(** [scan ~pid] is the precise underlying read (e.g. Figure 4's [DRead]);
    it is called by claim winners and by losers whose adoption window
    ([window] epoch polls, default 64, each paced by [backoff]) expires.
    [padded] (default [true]) puts the claim and snapshot words on their
    own cache lines.  [obs] (default {!Aba_obs.Obs.noop}) records each
    [dread] as a [Combine] event — outcome [Ok] for the scanner,
    [Combined] for an adopter, [Fallback] on window expiry, with the poll
    count as retries.  Raises [Invalid_argument] if [window] or [n] is
    not positive. *)

val dread : t -> pid:Pid.t -> int * bool
(** Combined read: scan-and-publish, adopt, or fall back (see above). *)

type stats = { scans : int; adopted : int; fallbacks : int }
(** [scans] + [adopted] + [fallbacks] = total [dread] calls.  [adopted]
    are reads served from a concurrent scanner's snapshot — the combining
    win.  Summed over per-process counters; exact once domains are
    joined. *)

val stats : t -> stats

val default_window : int
