(** Flat combining for ABA-protected structures.

    Two modes, one mechanism.  Both race the same claim word ([epoch], a
    seqlock-style counter: odd while a combining round is in flight); the
    winner does the shared-memory work on everyone's behalf, the losers
    wait a bounded window ({!Aba_primitives.Backoff}-paced) and take the
    winner's result.  A loser whose window expires falls back to running
    the precise underlying operation itself.

    {b Read combining} ([create ~scan]) is the original degenerate case:
    under read contention every [DRead] of {!Aba_from_registers}
    (Figure 4) walks the same shared words, so any one reader's snapshot
    serves all of them — as long as each adopted snapshot linearizes
    inside the adopter's own interval.  The claim winner runs [scan] and
    publishes its value; a loser adopts it only when the scan provably
    {e started} after the loser's own operation began (observed epoch
    [>= e0 + 2]).  The detection flag of an adopted read is
    conservatively [true]: false positives cost a client retry, false
    negatives (a missed ABA) are never introduced.

    {b Full flat combining} ([create ~apply]) generalizes this to
    mutations in the spirit of Hendler, Incze, Shavit and Tzafrir: each
    process posts an encoded operation (an immediate int — push/pop
    descriptors, say) into its own padded publication slot; the claim
    winner drains the whole publication array, applies the batch through
    [apply], and publishes each result back into the poster's slot.  One
    process does n operations' worth of shared-structure walking while
    the other n-1 wait on their own cache lines.  The two modes are
    exclusive per instance because read-combining's adoption rule is only
    sound when every epoch bump published a fresh snapshot, which
    mutation rounds do not.

    Driven sequentially every operation wins the claim and runs the exact
    underlying protocol (a combiner's own op is always in its batch), so
    seq/sim transcripts are unchanged — the combining analogue of
    {!Aba_primitives.Backoff.Noop} inertness.  Neither hot path
    allocates: publication slots hold immediate ints, state-tagged in the
    low two bits. *)

open Aba_primitives

type t

val create :
  ?padded:bool ->
  ?window:int ->
  ?backoff:Backoff.spec ->
  ?obs:Aba_obs.Obs.t ->
  ?scan:(pid:Pid.t -> int * bool) ->
  ?apply:(pid:Pid.t -> int -> int) ->
  n:int ->
  unit ->
  t
(** Exactly one of [scan] and [apply] must be given; [Invalid_argument]
    otherwise.  [scan ~pid] is the precise underlying read (e.g.
    Figure 4's [DRead]) of a read-combining instance — called by claim
    winners and by losers whose adoption window expires.  [apply ~pid op]
    applies one encoded mutation of a flat-combining instance and returns
    its encoded result; it is called by the claim winner for every queued
    op (with the {e winner's} pid — the underlying structure sees the
    combiner as the executing process) and by a poster whose window
    expires after it withdraws its op.  [window] (default 64) bounds the
    wait in epoch polls, each paced by [backoff].  [padded] (default
    [true]) puts the claim, snapshot and publication words on their own
    cache lines.  [obs] (default {!Aba_obs.Obs.noop}) records each
    operation as a [Combine] event — outcome [Ok] for the combiner,
    [Combined] for a served waiter, [Fallback] on window expiry, with the
    poll count as retries.  Raises [Invalid_argument] if [window] or [n]
    is not positive. *)

val dread : t -> pid:Pid.t -> int * bool
(** Combined read: scan-and-publish, adopt, or fall back (see above).
    Raises [Invalid_argument] on a flat-combining ([~apply]) instance. *)

val submit : t -> pid:Pid.t -> int -> int
(** [submit t ~pid op] posts the encoded mutation [op], waits for a
    combiner to serve it (or becomes the combiner and drains the whole
    publication array), and returns the encoded result.  The batch
    application is the linearization point of every served op; it lies
    inside each poster's interval because an op is posted before it is
    claimed.  On window expiry the poster withdraws the op (a CAS that
    can only fail to a combiner having claimed it, in which case its
    result is taken instead) and applies it directly — safe because the
    underlying structure is itself concurrency-safe; combining is a
    traffic optimization, not a lock.  Raises [Invalid_argument] on a
    read-combining ([~scan]) instance. *)

type stats = {
  scans : int;  (** claim wins: full scans (read) or led rounds (flat) *)
  adopted : int;  (** ops served by another process's round *)
  fallbacks : int;  (** window expiries: precise/direct executions *)
  batched : int;
      (** {e other} processes' ops applied inside led rounds — the flat
          combining win; 0 on a read-combining instance *)
}
(** [scans] + [adopted] + [fallbacks] = total [dread]/[submit] calls.
    Summed over per-process counters; exact once domains are joined. *)

val stats : t -> stats

val default_window : int
