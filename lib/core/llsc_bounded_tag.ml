(** A {e deliberately flawed} LL/SC/VL: Moir's tagged construction with the
    tag taken modulo [T] — i.e. on a bounded CAS object.

    Corollary 1 says a bounded, constant-time, single-object LL/SC cannot
    exist; this is what the naive attempt looks like: once [T] successful
    [SC]s occur between a process's [LL] and its [SC], the tag wraps, the
    CAS succeeds against a stale link, and {e two} SCs succeed in the same
    link window — exactly the behaviour the LL/SC specification forbids and
    the linearizability checker refutes (experiment E6's LL/SC face). *)

open Aba_primitives

module Make_with_bound (B : sig
  val tag_bound : int
end)
(M : Mem_intf.S) : Llsc_intf.S = struct
  let tag_bound =
    if B.tag_bound < 1 then invalid_arg "tag_bound must be >= 1"
    else B.tag_bound

  let algorithm_name =
    Printf.sprintf "moir-tag-mod-%d (1 bounded CAS, FLAWED)" tag_bound

  let initial_value = 0

  type tagged = { value : int; tag : int }

  type t = {
    init : int;
    x : tagged M.cas;
    link : tagged option array;
  }

  let show { value; tag } = Printf.sprintf "(%d,#%d)" value tag

  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ?(padded = false) ?backoff:_ ~n () =
    let bound =
      Bounded.make
        ~describe:
          (Printf.sprintf "(%s * tag<%d)" (Bounded.describe value_bound)
             tag_bound)
        (fun { value; tag } ->
          Bounded.mem value_bound value && 0 <= tag && tag < tag_bound)
    in
    {
      init;
      x = M.make_cas ~bound ~padded ~name:"X" ~show { value = init; tag = 0 };
      link = Array.make n None;
    }

  let ll t ~pid =
    let seen = M.cas_read t.x in
    t.link.(pid) <- Some seen;
    seen.value

  let link_of t pid =
    match t.link.(pid) with
    | Some l -> l
    | None -> { value = t.init; tag = 0 }

  let sc t ~pid y =
    let l = link_of t pid in
    M.cas t.x ~expect:l ~update:{ value = y; tag = (l.tag + 1) mod tag_bound }

  let vl t ~pid = M.cas_read t.x = link_of t pid

  let space _ = M.space ()
end

(** Default bound used by the experiments. *)
module Make (M : Mem_intf.S) : Llsc_intf.S =
  Make_with_bound
    (struct
      let tag_bound = 4
    end)
    (M)
