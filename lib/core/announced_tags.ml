open Aba_primitives

type outcome = Installed | Contended | Blocked

module Make (M : Mem_intf.S) = struct
  type t = {
    g_tag_bits : int;
    g_total : int;  (** [2^tag_bits] *)
    g_half : int;  (** [2^(tag_bits-1)]: crossings happen at 0 and here *)
    g_n : int;
    g_guard : bool;
    g_word : int M.cas2;
    g_slots : int M.register array;  (** announced tag per pid, -1 = none *)
    mutable g_scans : int;
  }

  (* Values are node indices with -1 as nil, so [v + 1] is a non-negative
     immediate encoding and the pair packs into one int on the runtime
     backend. *)
  let int_codec =
    { Mem_intf.encode = (fun v -> v + 1); decode = (fun w -> w - 1) }

  let create ?(guard = true) ?(padded = false)
      ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255) ~tag_bits ~name ~n
      ~init () =
    if tag_bits < 2 then
      invalid_arg "Announced_tags.create: tag_bits must be >= 2";
    let total = 1 lsl tag_bits in
    let word =
      M.make_cas2 ~bound:value_bound ~padded ~codec:int_codec ~tag_bits
        ~name:(name ^ ".word") ~show:string_of_int init 0
    in
    let slot_bound = Bounded.int_range ~lo:(-1) ~hi:(total - 1) in
    let slots =
      Array.init n (fun p ->
          M.make_register ~bound:slot_bound ~padded
            ~name:(Printf.sprintf "%s.ann[%d]" name p)
            ~show:string_of_int (-1))
    in
    {
      g_tag_bits = tag_bits;
      g_total = total;
      g_half = total / 2;
      g_n = n;
      g_guard = guard;
      g_word = word;
      g_slots = slots;
      g_scans = 0;
    }

  let tag_bits t = t.g_tag_bits
  let peek t = M.cas2_read t.g_word

  let protect t ~pid =
    let rec validate v g =
      if t.g_guard then M.write t.g_slots.(pid) g;
      let v', g' = M.cas2_read t.g_word in
      if v' = v && g' = g then (v, g) else validate v' g'
    in
    let v, g = M.cas2_read t.g_word in
    validate v g

  let clear t ~pid = if t.g_guard then M.write t.g_slots.(pid) (-1)

  let guarded_cas t ~expect ~expect_tag ~update =
    let next = (expect_tag + 1) land (t.g_total - 1) in
    if (not t.g_guard) || next mod t.g_half <> 0 then
      if
        M.cas2 t.g_word ~expect ~expect_tag ~update ~update_tag:next
      then Installed
      else Contended
    else begin
      (* Crossing into the half [next .. next + g_half - 1]: enter just
         above the highest announced tag in it.  The live tag [expect_tag]
         sits in the half we are leaving, so neither the caller's own
         announcement nor any freshly validated one can block us; only a
         reader parked on the last tag of the target half does. *)
      t.g_scans <- t.g_scans + 1;
      let entry = ref 0 in
      for p = 0 to t.g_n - 1 do
        let a = M.read t.g_slots.(p) in
        if a >= next && a < next + t.g_half && a - next + 1 > !entry then
          entry := a - next + 1
      done;
      if !entry >= t.g_half then Blocked
      else if
        M.cas2 t.g_word ~expect ~expect_tag ~update
          ~update_tag:(next + !entry)
      then Installed
      else Contended
    end

  let scans t = t.g_scans
  let space _ = M.space ()
end
