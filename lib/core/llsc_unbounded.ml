(** Moir-style LL/SC/VL from a single {e unbounded} CAS object ([26]),
    with constant step complexity.

    The CAS object stores the value together with an unbounded tag that
    increases with every successful [SC], so an [SC] by [p] succeeds exactly
    when the object still holds the (value, tag) pair [p] saw at its [LL] —
    tags never repeat, hence no ABA.  One shared step per operation.

    This is the construction that the boundedness hypothesis of Corollary 1
    rules out: with a bounded CAS object, [O(1)] steps would need
    [Omega(n)] objects. *)

open Aba_primitives

module Make (M : Mem_intf.S) : Llsc_intf.S = struct
  let algorithm_name = "moir (1 unbounded CAS, O(1) steps)"
  let initial_value = 0

  type tagged = { value : int; tag : int }

  type t = {
    init : int;
    x : tagged M.cas;
    link : tagged option array;  (** local: pair seen at last LL *)
  }

  let show { value; tag } = Printf.sprintf "(%d,#%d)" value tag

  let create ?value_bound:_ ?(init = initial_value) ?(padded = false)
      ?backoff:_ ~n () =
    {
      init;
      x = M.make_cas ~padded ~name:"X" ~show { value = init; tag = 0 };
      link = Array.make n None;
    }

  let ll t ~pid =
    let seen = M.cas_read t.x in
    t.link.(pid) <- Some seen;
    seen.value

  let link_of t pid =
    match t.link.(pid) with
    | Some l -> l
    | None ->
        (* Never linked: valid until the first successful SC, i.e. while
           the tag is still 0 (Appendix A convention). *)
        { value = t.init; tag = 0 }

  let sc t ~pid y =
    let l = link_of t pid in
    M.cas t.x ~expect:l ~update:{ value = y; tag = l.tag + 1 }

  let vl t ~pid =
    let l = link_of t pid in
    M.cas_read t.x = l

  let space _ = M.space ()
end
