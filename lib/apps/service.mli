(** The sharded service tier: many small protected instances composing
    one large logical container.

    The paper's protections (bounded tags, LL/SC, ABA-detecting
    registers) are all per-object; this layer is the horizontal
    composition that makes them serve a key-addressed workload.  A
    {!Shard_router} spreads operations over an array of independently
    protected shards by key hash ([splitmix64] over the key, reusing
    {!Aba_primitives.Rand.seed_of_pid}'s dispersion), so unrelated keys
    contend on unrelated head words and throughput scales with the shard
    count.

    Three mechanisms ride on top of plain routing:

    - {b Work stealing.}  Owner-only per-pid depth cells give each shard
      a racy-but-bounded depth estimate at zero hot-path cost.  A pop
      that finds its home shard empty picks the deepest victim, keeps
      the first item popped there, and rebalances up to [steal_batch - 1]
      more into the home shard.  Every moved item travels by ordinary
      pop-then-push under the victim's own protection scheme, so a steal
      is multiset-transparent: nothing is duplicated or dropped, and
      {!Aba_runtime.Harness.check_multiset} audits it unchanged.  A push
      that finds its home pool exhausted spills to the emptiest shard.
    - {b Flat combining} (opt-in): each shard's push/pop traffic is
      funneled through an {!Aba_core.Combining} instance in [~apply]
      mode — under contention one combiner walks the shard on behalf of
      a whole batch.  Steal/spill transfers bypass combining (the moved
      value is off every shard; the direct push is its own linearization
      point).
    - {b Observability}: a service-level [obs] records [Steal] events
      (items moved as retries); a [shard_obs] factory threads one handle
      per shard, whose histograms merge into end-to-end percentiles via
      {!Aba_obs.Obs.Histogram.merge}. *)

val hash_key : int -> int
(** The key hash (splitmix64 finalizer): non-negative, so
    [hash_key k mod nshards] is a valid shard index for any [k]. *)

(** What a router shards: any push/pop container on immediate ints.
    LIFO vs FIFO is the shard's business — the router preserves the
    discipline per shard, not across shards. *)
module type SHARD = sig
  type t

  val push : t -> pid:int -> int -> bool
  (** [false] when the shard's node pool is exhausted. *)

  val pop : t -> pid:int -> int option
end

module Shard_router (S : SHARD) : sig
  type t

  val create :
    ?steal:bool ->
    ?steal_batch:int ->
    ?combining:bool ->
    ?window:int ->
    ?obs:Aba_obs.Obs.t ->
    shards:S.t array ->
    n:int ->
    unit ->
    t
  (** Route over the given pre-built shards (the caller threads any
      per-shard observability into them) for pids [0, n).  [steal]
      (default [true]) enables pop-side stealing and push-side spilling;
      [steal_batch] (default 8) bounds the items one steal moves;
      [combining] (default [false]) funnels each shard through a flat
      combining instance with the given [window].  [obs] (default
      {!Aba_obs.Obs.noop}) records [Steal] events.  Raises
      [Invalid_argument] on an empty shard array or non-positive [n] or
      [steal_batch]. *)

  val shard_of_key : t -> int -> int
  val nshards : t -> int

  val push : t -> pid:int -> key:int -> int -> bool
  (** Push to the key's home shard; on a full pool with [steal] on,
      spill to the emptiest shard, then sweep the rest.  [false] only
      when every shard is full. *)

  val pop : t -> pid:int -> key:int -> int option
  (** Pop the key's home shard; on empty with [steal] on, bulk-steal
      from the deepest shard (see above).  [None] when home is empty and
      no victim has work. *)

  val depths : t -> int array
  (** Per-shard depth estimates.  Racy while domains run (bounded error:
      in-flight ops); exact after they join. *)

  type stats = {
    steals : int;  (** successful bulk steals *)
    stolen : int;  (** items moved by steals, incl. the returned ones *)
    spills : int;  (** pushes redirected off a full home shard *)
  }

  val stats : t -> stats
  (** Summed over per-pid counters; exact once domains are joined. *)

  val combining_stats : t -> Aba_core.Combining.stats option
  (** All shards' combining counters summed ([None] when created with
      [combining:false]). *)
end

module Stack_shard : SHARD with type t = Aba_runtime.Rt_treiber.t
module Queue_shard : SHARD with type t = Aba_runtime.Rt_ms_queue.t
module Stack_router : module type of Shard_router (Stack_shard)
module Queue_router : module type of Shard_router (Queue_shard)

(** {!Shard_router} over {!Aba_runtime.Rt_treiber} shards it builds
    itself: the packaged LIFO service. *)
module Stack_service : sig
  type t = Stack_router.t

  val create :
    ?protection:Aba_runtime.Rt_treiber.protection ->
    ?steal:bool ->
    ?steal_batch:int ->
    ?combining:bool ->
    ?window:int ->
    ?obs:Aba_obs.Obs.t ->
    ?shard_obs:(int -> Aba_obs.Obs.t) ->
    shards:int ->
    capacity:int ->
    n:int ->
    unit ->
    t
  (** [shards] Treiber stacks of [capacity] nodes each (protection
      default [Tag_bits 16]); [shard_obs s] (default [noop]) is shard
      [s]'s handle.  Other parameters as {!Shard_router.create}. *)

  val push : t -> pid:int -> key:int -> int -> bool
  val pop : t -> pid:int -> key:int -> int option
  val depths : t -> int array
  val nshards : t -> int
  val shard_of_key : t -> int -> int
  val stats : t -> Stack_router.stats
  val combining_stats : t -> Aba_core.Combining.stats option
end

(** {!Shard_router} over {!Aba_runtime.Rt_ms_queue} shards: the packaged
    FIFO service. *)
module Queue_service : sig
  type t = Queue_router.t

  val create :
    ?protection:Aba_runtime.Rt_ms_queue.protection ->
    ?steal:bool ->
    ?steal_batch:int ->
    ?combining:bool ->
    ?window:int ->
    ?obs:Aba_obs.Obs.t ->
    ?shard_obs:(int -> Aba_obs.Obs.t) ->
    shards:int ->
    capacity:int ->
    n:int ->
    unit ->
    t

  val push : t -> pid:int -> key:int -> int -> bool
  val pop : t -> pid:int -> key:int -> int option
  val depths : t -> int array
  val nshards : t -> int
  val shard_of_key : t -> int -> int
  val stats : t -> Queue_router.stats
  val combining_stats : t -> Aba_core.Combining.stats option
end
