open Aba_primitives

module type SHARD = sig
  type t

  val push : t -> pid:int -> int -> bool
  val pop : t -> pid:int -> int option
end

(* Key hashing.  [Rand.seed_of_pid] is a splitmix64 finalizer: nonzero,
   non-negative and dispersed across the word even for consecutive keys,
   so [mod nshards] spreads dense key ranges evenly — the same dispersion
   property the per-pid PRNG seeding relies on, reused instead of
   re-derived. *)
let hash_key k = Rand.seed_of_pid k

module Shard_router (S : SHARD) = struct
  (* Per-pid scratch: steal counters and the victim-probe cursor live on
     the owner's cache line; nothing here is read by other pids until the
     final [stats] fold. *)
  type local = {
    rand : Rand.t;
    mutable steals : int;
    mutable stolen : int;
    mutable spills : int;
  }

  type t = {
    shards : S.t array;
    nshards : int;
    steal : bool;
    steal_batch : int;
    (* Depth estimates: one strided per-pid row of plain int cells per
       shard.  A pid bumps only its own cell (owner-only, no atomics, no
       coherence traffic on the hot path); a reader sums the row and gets
       a racy but bounded-error estimate — exact once domains are joined,
       and always >= 0 in the sum even when individual cells go negative
       (a pid that pops from a shard it never pushed to). *)
    depth : int Padded.t array;
    comb : Aba_core.Combining.t array;  (** empty when combining is off *)
    locals : local array;
    obs : Aba_obs.Obs.t;
  }

  let depth_estimate t s =
    let row = t.depth.(s) in
    let d = ref 0 in
    for p = 0 to Padded.length row - 1 do
      d := !d + Padded.get row p
    done;
    !d

  let depths t = Array.init t.nshards (depth_estimate t)
  let nshards t = t.nshards
  let shard_of_key t key = hash_key key mod t.nshards

  (* The shard ops with depth accounting attached.  These are also the
     [apply] body of the combining layer, so a combiner's batch keeps the
     estimates current under the combiner's own pid — each pid executes
     at most one operation at a time, so every cell stays owner-only. *)
  let raw_push t s ~pid v =
    if S.push t.shards.(s) ~pid v then begin
      Padded.set t.depth.(s) pid (Padded.get t.depth.(s) pid + 1);
      true
    end
    else false

  let raw_pop t s ~pid =
    match S.pop t.shards.(s) ~pid with
    | Some _ as r ->
        Padded.set t.depth.(s) pid (Padded.get t.depth.(s) pid - 1);
        r
    | None -> None

  (* Combining codec: push v = v<<1|1, pop = 0; results: push success as
     0/1, pop as 0 for empty and v<<1|1 otherwise.  Shifts are arithmetic
     on decode so negative payloads survive; everything stays an
     immediate int — the combining hot path never allocates. *)
  let apply_op t s ~pid op =
    if op land 1 = 1 then if raw_push t s ~pid (op asr 1) then 1 else 0
    else match raw_pop t s ~pid with None -> 0 | Some v -> (v lsl 1) lor 1

  let create ?(steal = true) ?(steal_batch = 8) ?(combining = false) ?window
      ?(obs = Aba_obs.Obs.noop) ~shards ~n () =
    let nshards = Array.length shards in
    if nshards < 1 then
      invalid_arg "Service.Shard_router.create: needs at least one shard";
    if n < 1 then invalid_arg "Service.Shard_router.create: n must be positive";
    if steal_batch < 1 then
      invalid_arg "Service.Shard_router.create: steal_batch must be positive";
    let t =
      {
        shards;
        nshards;
        steal;
        steal_batch;
        depth = Array.init nshards (fun _ -> Padded.make_array n 0);
        comb = [||];
        locals =
          Array.init n (fun pid ->
              Padded.copy
                { rand = Rand.create ~pid; steals = 0; stolen = 0; spills = 0 });
        obs;
      }
    in
    if not combining then t
    else
      {
        t with
        comb =
          Array.init nshards (fun s ->
              Aba_core.Combining.create ?window ~n
                ~apply:(fun ~pid op -> apply_op t s ~pid op)
                ());
      }

  let combined t = Array.length t.comb > 0

  let shard_push t s ~pid v =
    if combined t then
      Aba_core.Combining.submit t.comb.(s) ~pid ((v lsl 1) lor 1) = 1
    else raw_push t s ~pid v

  let shard_pop t s ~pid =
    if combined t then
      match Aba_core.Combining.submit t.comb.(s) ~pid 0 with
      | 0 -> None
      | w -> Some (w asr 1)
    else raw_pop t s ~pid

  (* An in-flight stolen/spilled value must land somewhere: walk the
     shards from [home] with backoff until one accepts.  Termination in
     practice: the value's node was just freed in some shard's pool, so a
     full sweep can only keep failing while other pushers keep consuming
     exactly the slots this loop frees up — transient by construction.
     Reinsertion bypasses combining: the value is already off any shard,
     so the direct push is its own linearization point. *)
  let reinsert t ~pid ~home v =
    let bo = Backoff.create ~min:1 ~max:256 () in
    let rec sweep i =
      if raw_push t ((home + i) mod t.nshards) ~pid v then ()
      else if i + 1 < t.nshards then sweep (i + 1)
      else begin
        Backoff.once bo;
        sweep 0
      end
    in
    sweep 0

  (* Pick the victim with the largest depth estimate.  [exclude] is the
     (empty) home shard; ties and the scan order are deterministic, the
     racy cell reads are not — a stale estimate costs one wasted probe,
     never a lost value. *)
  let pick_victim t ~exclude =
    let best = ref (-1) and best_d = ref 0 in
    for s = 0 to t.nshards - 1 do
      if s <> exclude then begin
        let d = depth_estimate t s in
        if d > !best_d then begin
          best := s;
          best_d := d
        end
      end
    done;
    !best

  (* Bulk steal: the stealer keeps the first item popped from the victim
     as its own result and rebalances up to [steal_batch - 1] more into
     its (empty) home shard.  Every drained value is either returned or
     reinserted — the multiset audit sees a steal as a sequence of
     ordinary pops and pushes, which is exactly what it is: each item
     moves under the victim's own protection scheme. *)
  let steal_from t ~pid ~home =
    let l = t.locals.(pid) in
    let t0 = Aba_obs.Obs.start t.obs in
    match pick_victim t ~exclude:home with
    | -1 ->
        Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Steal
          ~outcome:Aba_obs.Obs.Empty ~retries:0 t0;
        None
    | victim -> (
        match raw_pop t victim ~pid with
        | None ->
            (* The estimate was stale or racing pops beat us. *)
            Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Steal
              ~outcome:Aba_obs.Obs.Empty ~retries:0 t0;
            None
        | Some _ as r ->
            let moved = ref 1 in
            let draining = ref true in
            while !moved < t.steal_batch && !draining do
              match raw_pop t victim ~pid with
              | Some v ->
                  reinsert t ~pid ~home v;
                  incr moved
              | None -> draining := false
            done;
            l.steals <- l.steals + 1;
            l.stolen <- l.stolen + !moved;
            Aba_obs.Obs.record t.obs ~pid ~kind:Aba_obs.Obs.Steal
              ~outcome:Aba_obs.Obs.Ok ~retries:!moved t0;
            r)

  let push t ~pid ~key v =
    let home = shard_of_key t key in
    if shard_push t home ~pid v then true
    else if not t.steal then false
    else begin
      (* Home pool exhausted: spill to the emptiest shard, then sweep the
         rest from a random start (so concurrent spillers don't convoy on
         one alternate).  All full -> honest [false]. *)
      let l = t.locals.(pid) in
      let least = ref home and least_d = ref max_int in
      for s = 0 to t.nshards - 1 do
        if s <> home then begin
          let d = depth_estimate t s in
          if d < !least_d then begin
            least := s;
            least_d := d
          end
        end
      done;
      let try_spill s = s <> home && raw_push t s ~pid v in
      if try_spill !least then begin
        l.spills <- l.spills + 1;
        true
      end
      else begin
        let start = Rand.next_int l.rand t.nshards in
        let rec sweep i =
          if i >= t.nshards then false
          else if try_spill ((start + i) mod t.nshards) then begin
            l.spills <- l.spills + 1;
            true
          end
          else sweep (i + 1)
        in
        sweep 0
      end
    end

  let pop t ~pid ~key =
    let home = shard_of_key t key in
    match shard_pop t home ~pid with
    | Some _ as r -> r
    | None ->
        if t.steal && t.nshards > 1 then steal_from t ~pid ~home else None

  type stats = { steals : int; stolen : int; spills : int }

  let stats t =
    Array.fold_left
      (fun acc (l : local) ->
        {
          steals = acc.steals + l.steals;
          stolen = acc.stolen + l.stolen;
          spills = acc.spills + l.spills;
        })
      { steals = 0; stolen = 0; spills = 0 }
      t.locals

  let combining_stats t =
    if combined t then
      Some
        (Array.fold_left
           (fun acc c ->
             let s = Aba_core.Combining.stats c in
             Aba_core.Combining.
               {
                 scans = acc.scans + s.scans;
                 adopted = acc.adopted + s.adopted;
                 fallbacks = acc.fallbacks + s.fallbacks;
                 batched = acc.batched + s.batched;
               })
           Aba_core.Combining.{ scans = 0; adopted = 0; fallbacks = 0; batched = 0 }
           t.comb)
    else None
end

(* ----- Concrete services ----- *)

module Stack_shard = struct
  type t = Aba_runtime.Rt_treiber.t

  let push = Aba_runtime.Rt_treiber.push
  let pop = Aba_runtime.Rt_treiber.pop
end

module Queue_shard = struct
  type t = Aba_runtime.Rt_ms_queue.t

  let push = Aba_runtime.Rt_ms_queue.enqueue
  let pop = Aba_runtime.Rt_ms_queue.dequeue
end

module Stack_router = Shard_router (Stack_shard)
module Queue_router = Shard_router (Queue_shard)

module Stack_service = struct
  type t = Stack_router.t

  let create ?(protection = Aba_runtime.Rt_treiber.Tag_bits 16) ?steal
      ?steal_batch ?combining ?window ?obs
      ?(shard_obs = fun _ -> Aba_obs.Obs.noop) ~shards ~capacity ~n () =
    if shards < 1 then
      invalid_arg "Service.Stack_service.create: shards must be positive";
    let arr =
      Array.init shards (fun s ->
          Aba_runtime.Rt_treiber.create ~protection ~capacity ~n
            ~obs:(shard_obs s) ())
    in
    Stack_router.create ?steal ?steal_batch ?combining ?window ?obs
      ~shards:arr ~n ()

  let push = Stack_router.push
  let pop = Stack_router.pop
  let depths = Stack_router.depths
  let nshards = Stack_router.nshards
  let shard_of_key = Stack_router.shard_of_key
  let stats = Stack_router.stats
  let combining_stats = Stack_router.combining_stats
end

module Queue_service = struct
  type t = Queue_router.t

  let create ?(protection = Aba_runtime.Rt_ms_queue.Tag_bits 16) ?steal
      ?steal_batch ?combining ?window ?obs
      ?(shard_obs = fun _ -> Aba_obs.Obs.noop) ~shards ~capacity ~n () =
    if shards < 1 then
      invalid_arg "Service.Queue_service.create: shards must be positive";
    let arr =
      Array.init shards (fun s ->
          Aba_runtime.Rt_ms_queue.create ~protection ~capacity ~n
            ~obs:(shard_obs s) ())
    in
    Queue_router.create ?steal ?steal_batch ?combining ?window ?obs
      ~shards:arr ~n ()

  let push = Queue_router.push
  let pop = Queue_router.pop
  let depths = Queue_router.depths
  let nshards = Queue_router.nshards
  let shard_of_key = Queue_router.shard_of_key
  let stats = Queue_router.stats
  let combining_stats = Queue_router.combining_stats
end
