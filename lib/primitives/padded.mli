(** Cache-line padding for contended atomics.

    OCaml's minor allocator packs consecutive small allocations next to each
    other, so two [Atomic.t] cells created back to back usually share a
    64-byte cache line: a CAS by one domain then invalidates the other
    domain's line even though they touch logically unrelated words (false
    sharing).  [copy] re-allocates a small block into a [line_words]-word
    block so each padded value owns its line(s); [t] is a strided array for
    per-process slot tables where neighbouring slots are hot on different
    domains. *)

val line_words : int
(** Words per padded value, including the header: 16 words = 128 bytes on
    64-bit, covering the common 64-byte line and 128-byte prefetch pair. *)

val copy : 'a -> 'a
(** [copy v] returns a value structurally identical to [v] whose heap block
    spans a full cache line.  Immediates, custom/no-scan blocks, and blocks
    already [>= line_words - 1] fields are returned unchanged. *)

val atomic : 'a -> 'a Atomic.t
(** [atomic v] is [Atomic.make v] padded to its own cache line. *)

val atomic_array : int -> 'a -> 'a Atomic.t array
(** [atomic_array n v] is an array of [n] fresh atomics, each padded to its
    own cache line (the array itself holds only the pointers). *)

(** A fixed-length array of ['a] slots laid out with a configurable stride:
    stride 1 is a compact [Array], stride [line_words] puts one slot per
    cache line.  Intended for immediate-valued per-process slots (flags,
    counters) where boxing each slot would cost an indirection. *)
type 'a t

val make_array : ?padded:bool -> int -> 'a -> 'a t
(** [make_array ?padded n init] is a length-[n] strided array, every slot
    [init].  [padded] (default [true]) selects stride [line_words] over 1.
    Raises [Invalid_argument] if [n < 0]. *)

val length : 'a t -> int
val stride : 'a t -> int

val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
(** Bounds-checked against [length] (not the backing array). *)
