(** Per-pid deterministic PRNG: a splitmix64-seeded xorshift64.

    The one pseudo-random stream shared by every runtime structure that
    picks slots, shuffles probes or paces jitter on its hot path: cheap
    (three shift-xors per draw), allocation-free, and deterministic per
    pid so contended runs are reproducible modulo scheduling.  The
    splitmix64 seeding guarantees that consecutive pids start from
    well-dispersed states — the dispersion property is tested once, here,
    instead of once per embedding. *)

val seed_of_pid : int -> int
(** The pid run through a splitmix64 finalizer: nonzero, non-negative,
    pairwise distinct for distinct pids, and dispersed across the full
    word even for consecutive pids. *)

val xorshift_step : int -> int
(** One step of the xorshift64 stream.  [xorshift_step (seed_of_pid i)]
    is pid [i]'s first draw; 0 is the absorbing state ({!seed_of_pid}
    never returns it). *)

type t = { mutable seed : int }
(** The stream state is exposed as a bare mutable record so embedders
    that pack it into their own padded per-pid scratch (e.g. the
    elimination exchanger's [local]) can inline the field instead of
    boxing a second object. *)

val create : pid:int -> t
(** A fresh stream seeded with [seed_of_pid pid]. *)

val next : t -> int
(** The next raw draw (may be negative; full 63-bit word). *)

val next_int : t -> int -> int
(** [next_int t bound] draws uniformly-ish from [0, bound).  Raises
    [Invalid_argument] if [bound <= 0].  Allocation-free. *)
