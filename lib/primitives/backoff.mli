(** Bounded, allocation-free exponential backoff for CAS retry loops.

    A [t] is per-process mutable state: call [once] after a failed CAS
    (spins [current t] times on [Domain.cpu_relax], then doubles the count
    up to the bound), [reset] at the start of a fresh operation.  Neither
    allocates.

    The [Noop] spec yields a shared singleton whose [once]/[reset] do
    nothing at all — the seq and sim backends use it so deterministic
    schedules and differential transcripts are unaffected by contention
    management. *)

type t

(** How much backoff an algorithm instance should use.  Passed to [create]
    functions as a value (rather than a [t]) because each process needs its
    own mutable state: implementations call {!make} once per process. *)
type spec = Noop | Exp of { min_spins : int; max_spins : int }

val default_spec : spec
(** [Exp { min_spins = 1; max_spins = 256 }]. *)

val noop : t
(** The shared do-nothing instance; [once] and [reset] on it are no-ops, so
    it is safe to share across domains. *)

val create : ?min:int -> ?max:int -> unit -> t
(** [create ?min ?max ()] is a fresh backoff starting at [min] (default 1)
    spins, doubling up to [max] (default 256).  Raises [Invalid_argument]
    unless [1 <= min <= max]. *)

val make : spec -> t
(** [make Noop] is {!noop}; [make (Exp _)] is a fresh {!create}. *)

val once : t -> unit
(** Spin [current t] times on [Domain.cpu_relax], then double the spin
    count, clamped to the max. *)

val reset : t -> unit
(** Restore the spin count to the minimum. *)

val current : t -> int
(** The number of spins the next [once] will perform (for tests). *)
