(** The multicore {!Mem_intf.S} instance over OCaml 5 [Atomic].

    This is the third backend of the single-source-of-truth stack: the
    paper's functors ({!Aba_core.Llsc_from_cas}, {!Aba_core.Aba_from_registers},
    ...) are verified under {!Seq_mem} and {!Aba_sim.Sim_mem} and then run
    on real domains through this instance, so the code that is benchmarked
    is the code that was model-checked.

    Semantics per object kind:

    - {e registers} are ['a Atomic.t]: [read]/[write] are single
      sequentially consistent loads and stores, exactly the paper's atomic
      read/write registers.
    - {e packed CAS objects} ({!Mem_intf.S.make_cas_packed}) store the
      codec encoding in an [int Atomic.t].  [Atomic.compare_and_set] on an
      immediate int is exact value comparison — a genuine bounded hardware
      CAS word, ABAs included — and the packed accessors
      ([cas_read_packed]/[cas_packed]) never allocate.
    - {e plain CAS objects} fall back to a freshly allocated box per
      update; the expected box is the one read by the caller, so physical
      comparison means "unchanged since my read".  This is ABA-free and
      hence {e conservative} with respect to the structural [cas] the
      interface specifies: it can fail where a structural CAS would
      succeed (when the value returned to [expect] through intermediate
      changes) but never the converse, and in sequential executions the
      two coincide.  Algorithms that are correct under real (ABA-prone)
      CAS remain correct under an ABA-free one; constructions that rely on
      the bounded-word semantics must use the packed interface.

    Domain ([Bounded.t]) checks happen at creation time only: the hot
    paths stay allocation- and branch-free, and every per-step check is
    performed by the seq/sim backends running the very same functor body.

    The functor takes [n], the number of processes, used only to size the
    per-process link tables of LL/SC base objects.  Per-process link slots
    are written and read only by their own process (a requirement the
    paper's model shares), so they are plain array cells. *)

module Make (N : sig
  val n : int
end) : Mem_intf.S = struct
  let mem_name = "rt"

  (* Creation is not a shared-memory step, but objects may still be created
     from several domains (e.g. per-domain helper structures), so the space
     list is kept with a CAS loop.  Creation order is preserved. *)
  let objects : (string * string) list Atomic.t = Atomic.make []

  let register_object ~name bound_desc =
    let rec add () =
      let seen = Atomic.get objects in
      if not (Atomic.compare_and_set objects seen (seen @ [ (name, bound_desc) ]))
      then add ()
    in
    add ()

  let desc_of = function
    | None -> "unbounded"
    | Some b -> Bounded.describe b

  let guard bound name v =
    match bound with
    | None -> ()
    | Some b -> Bounded.check ~what:name b v

  type 'a register = 'a Atomic.t

  let make_register ?bound ?(padded = false) ~name ~show:_ init =
    guard bound name init;
    register_object ~name (desc_of bound);
    if padded then Padded.atomic init else Atomic.make init

  let read = Atomic.get

  let write = Atomic.set

  (* A plain CAS object holds a box; a packed one holds the encoding. *)
  type 'a box = { v : 'a }

  type 'a repr =
    | Boxed of 'a box Atomic.t
    | Packed of { cell : int Atomic.t; codec : 'a Mem_intf.codec }

  type 'a cas = { c_name : string; c_writable : bool; c_repr : 'a repr }

  let make_cas ?bound ?(writable = false) ?(padded = false) ~name ~show:_
      init =
    guard bound name init;
    register_object ~name (desc_of bound);
    let cell = Atomic.make { v = init } in
    { c_name = name; c_writable = writable;
      c_repr = Boxed (if padded then Padded.copy cell else cell) }

  let make_cas_packed ?bound ?(writable = false) ?(padded = false) ~name
      ~show:_ ~codec init =
    guard bound name init;
    register_object ~name (desc_of bound);
    let cell = Atomic.make (codec.Mem_intf.encode init) in
    { c_name = name; c_writable = writable;
      c_repr =
        Packed { cell = (if padded then Padded.copy cell else cell); codec } }

  let cas_read c =
    match c.c_repr with
    | Boxed cell -> (Atomic.get cell).v
    | Packed { cell; codec } -> codec.Mem_intf.decode (Atomic.get cell)

  let cas c ~expect ~update =
    match c.c_repr with
    | Packed { cell; codec } ->
        (* Injectivity of [encode] makes int equality exact value equality:
           this is the structural CAS, on hardware. *)
        Atomic.compare_and_set cell
          (codec.Mem_intf.encode expect)
          (codec.Mem_intf.encode update)
    | Boxed cell ->
        (* ABA-free conservative fallback: succeed only if the current box
           holds [expect] AND nobody replaced the box since we read it. *)
        let seen = Atomic.get cell in
        seen.v = expect && Atomic.compare_and_set cell seen { v = update }

  let cas_write c v =
    if not c.c_writable then
      invalid_arg
        (Printf.sprintf "Rt_mem.cas_write: %s is not a writable CAS object"
           c.c_name);
    match c.c_repr with
    | Boxed cell -> Atomic.set cell { v }
    | Packed { cell; codec } -> Atomic.set cell (codec.Mem_intf.encode v)

  let packed_cell c =
    match c.c_repr with
    | Packed { cell; _ } -> cell
    | Boxed _ ->
        invalid_arg
          (Printf.sprintf "Rt_mem: %s is not a packed CAS object" c.c_name)

  let cas_read_packed c = Atomic.get (packed_cell c)

  let cas_packed c ~expect ~update =
    Atomic.compare_and_set (packed_cell c) expect update

  (* Double-word CAS.  With a codec the (encoded value, tag) pair lives in
     one [int Atomic.t] — hardware CAS on the packed word is exact pair
     comparison, ABAs included, with an allocation-free hot path.  Without
     a codec the pair is boxed and CAS'd physically: ABA-free and
     conservative, exactly like the plain [cas] fallback above. *)
  type 'a pair_box = { pv : 'a; pt : int }
  type 'a packed2 = { cell2 : int Atomic.t; codec2 : 'a Mem_intf.codec }

  type 'a repr2 =
    | Boxed2 of 'a pair_box Atomic.t
    | Packed2 of 'a packed2

  type 'a cas2 = { w_name : string; w_tag_bits : int; w_repr : 'a repr2 }

  let make_cas2 ?bound ?(padded = false) ?codec ~tag_bits ~name ~show:_ init
      itag =
    Mem_intf.check_tag_bits ~what:"Rt_mem.make_cas2" tag_bits;
    guard bound name init;
    register_object ~name (desc_of bound);
    let itag = itag land ((1 lsl tag_bits) - 1) in
    let repr =
      match codec with
      | Some k ->
          let cell =
            Atomic.make (Mem_intf.pack2 ~tag_bits (k.Mem_intf.encode init) itag)
          in
          Packed2
            { cell2 = (if padded then Padded.copy cell else cell); codec2 = k }
      | None ->
          let cell = Atomic.make { pv = init; pt = itag } in
          Boxed2 (if padded then Padded.copy cell else cell)
    in
    { w_name = name; w_tag_bits = tag_bits; w_repr = repr }

  let cas2_read w =
    match w.w_repr with
    | Boxed2 cell ->
        let b = Atomic.get cell in
        (b.pv, b.pt)
    | Packed2 { cell2; codec2 } ->
        let x = Atomic.get cell2 in
        ( codec2.Mem_intf.decode (Mem_intf.unpack2_value ~tag_bits:w.w_tag_bits x),
          Mem_intf.unpack2_tag ~tag_bits:w.w_tag_bits x )

  let cas2 w ~expect ~expect_tag ~update ~update_tag =
    match w.w_repr with
    | Packed2 { cell2; codec2 } ->
        Atomic.compare_and_set cell2
          (Mem_intf.pack2 ~tag_bits:w.w_tag_bits
             (codec2.Mem_intf.encode expect) expect_tag)
          (Mem_intf.pack2 ~tag_bits:w.w_tag_bits
             (codec2.Mem_intf.encode update) update_tag)
    | Boxed2 cell ->
        let mask = (1 lsl w.w_tag_bits) - 1 in
        let seen = Atomic.get cell in
        seen.pv = expect
        && seen.pt = expect_tag land mask
        && Atomic.compare_and_set cell seen
             { pv = update; pt = update_tag land mask }

  let packed2_of w =
    match w.w_repr with
    | Packed2 p -> p
    | Boxed2 _ ->
        invalid_arg
          (Printf.sprintf "Rt_mem: %s is not a packed cas2 object" w.w_name)

  let cas2_pack w v t =
    Mem_intf.pack2 ~tag_bits:w.w_tag_bits
      ((packed2_of w).codec2.Mem_intf.encode v)
      t

  let cas2_read_packed w = Atomic.get (packed2_of w).cell2

  let cas2_packed w ~expect ~update =
    Atomic.compare_and_set (packed2_of w).cell2 expect update

  (* Native LL/SC base object, Moir-style [26]: every successful SC installs
     a fresh box and each process remembers the box its link refers to.  The
     held box is kept alive by the link table, so the GC cannot make two
     generations physically equal — the allocator is the unbounded tag.
     [invalid] is a sentinel never stored in [x]; a process's own successful
     SC consumes its link by planting it. *)
  type 'a llsc = {
    x : 'a box Atomic.t;
    invalid : 'a box;
    link : 'a box Padded.t;  (** slot [p] touched only by process [p] *)
  }

  let make_llsc ?bound ?(padded = false) ~name ~show:_ init =
    guard bound name init;
    register_object ~name (desc_of bound);
    let first = { v = init } in
    (* Linking every process to the initial box realizes the Appendix A
       convention: SC/VL by a process that never performed LL behave as if
       it had linked at the initial configuration.  When padded, the link
       slots are strided so that neighbouring processes' link writes do not
       invalidate each other's line, and [x] owns its own line. *)
    let x = Atomic.make first in
    { x = (if padded then Padded.copy x else x);
      invalid = { v = init };
      link = Padded.make_array ~padded N.n first }

  let ll o ~pid =
    let c = Atomic.get o.x in
    Padded.set o.link pid c;
    c.v

  let sc o ~pid v =
    let c = Padded.get o.link pid in
    Padded.set o.link pid o.invalid;
    c != o.invalid && Atomic.compare_and_set o.x c { v }

  let vl o ~pid = Atomic.get o.x == Padded.get o.link pid

  let space () = Atomic.get objects
end

let make ~n () : (module Mem_intf.S) =
  (module Make (struct
    let n = n
  end))
