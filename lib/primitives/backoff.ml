type t = { min_spins : int; max_spins : int; mutable spins : int }

type spec = Noop | Exp of { min_spins : int; max_spins : int }

let default_spec = Exp { min_spins = 1; max_spins = 256 }

(* The shared no-op instance: [once]/[reset] never mutate a [t] whose
   [max_spins] is 0, so one singleton is safe to share across domains. *)
let noop = { min_spins = 0; max_spins = 0; spins = 0 }

let create ?(min = 1) ?(max = 256) () =
  if min < 1 then invalid_arg "Backoff.create: min must be at least 1";
  if max < min then invalid_arg "Backoff.create: max must be at least min";
  { min_spins = min; max_spins = max; spins = min }

let make = function
  | Noop -> noop
  | Exp { min_spins; max_spins } -> create ~min:min_spins ~max:max_spins ()

let once t =
  if t.max_spins > 0 then begin
    for _ = 1 to t.spins do
      Domain.cpu_relax ()
    done;
    let doubled = t.spins * 2 in
    t.spins <- (if doubled > t.max_spins then t.max_spins else doubled)
  end

let reset t = if t.max_spins > 0 then t.spins <- t.min_spins

let current t = t.spins
