(* See padded.mli for the contract.  The padding technique is the one of
   multicore-magic's [copy_as_padded]: re-allocate a small block into a
   block of [line_words] words so that consecutive allocations can never
   put two hot fields on the same cache line.  The extra fields are the
   unit-initialized filler [Obj.new_block] provides; nothing ever reads
   them, and the GC scans them as ordinary immediates. *)

let line_words = 16

let copy (type a) (x : a) : a =
  let r = Obj.repr x in
  if Obj.is_int r then x
  else
    let tag = Obj.tag r and size = Obj.size r in
    if tag >= Obj.no_scan_tag || size >= line_words then x
    else begin
      let b = Obj.new_block tag (line_words - 1) in
      for i = 0 to size - 1 do
        Obj.set_field b i (Obj.field r i)
      done;
      Obj.obj b
    end

let atomic v = copy (Atomic.make v)

let atomic_array n v = Array.init n (fun _ -> copy (Atomic.make v))

type 'a t = { data : 'a array; stride : int; length : int }

let make_array ?(padded = true) n init =
  if n < 0 then invalid_arg "Padded.make_array: negative length";
  let stride = if padded then line_words else 1 in
  { data = Array.make (max 1 (n * stride)) init; stride; length = n }

let length t = t.length

let stride t = t.stride

let get t i =
  if i < 0 || i >= t.length then invalid_arg "Padded.get: index out of bounds";
  Array.unsafe_get t.data (i * t.stride)

let set t i v =
  if i < 0 || i >= t.length then invalid_arg "Padded.set: index out of bounds";
  Array.unsafe_set t.data (i * t.stride) v
