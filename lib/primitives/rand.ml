(* One per-pid PRNG for every runtime structure that needs cheap,
   allocation-free, deterministic-per-pid randomness (elimination slot
   picks, harness workload shuffles, ...).  Previously each user carried
   its own copy of the same splitmix-seeded xorshift; keeping a single
   implementation means the dispersion properties are tested once and
   hold everywhere. *)

(* splitmix64 finalizer over the pid.  Seeding xorshift64 with a raw
   small value like [(i * 2) + 1] makes neighbouring pids' streams start
   from near-identical tiny states, so their early draws are strongly
   correlated — synchronized collisions exactly where callers (e.g. the
   elimination exchanger) rely on spreading out.  The finalizer's two
   multiply-xor rounds disperse consecutive pids across the full word.
   Int64 arithmetic because the constants exceed the native 63-bit int
   range; the result is truncated to a nonneg native int and guarded
   away from 0, xorshift's absorbing state. *)
let seed_of_pid i =
  let open Int64 in
  let z = add (of_int i) 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = logxor z (shift_right_logical z 31) in
  let s = to_int z land Stdlib.max_int in
  if s = 0 then 1 else s

(* xorshift64: three shift-xors, no allocation, full-period over the
   nonzero states.  Exposed raw so tests (and callers that keep their own
   mutable seed field for cache-layout reasons) can drive the stream
   without an extra box. *)
let xorshift_step s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  s lxor (s lsl 17)

type t = { mutable seed : int }

let create ~pid = { seed = seed_of_pid pid }

let next t =
  let s = xorshift_step t.seed in
  t.seed <- s;
  s

let next_int t bound =
  if bound <= 0 then invalid_arg "Rand.next_int: bound must be positive";
  next t land max_int mod bound
