module Make () : Mem_intf.S = struct
  let mem_name = "seq"
  let objects : (string * string) list ref = ref []

  let register_object ~name bound_desc =
    objects := !objects @ [ (name, bound_desc) ]

  let desc_of = function
    | None -> "unbounded"
    | Some b -> Bounded.describe b

  let guard bound name v =
    match bound with
    | None -> ()
    | Some b -> Bounded.check ~what:name b v

  type 'a register = {
    r_name : string;
    r_bound : 'a Bounded.t option;
    mutable r_value : 'a;
  }

  let make_register ?bound ?padded:_ ~name ~show:_ init =
    guard bound name init;
    register_object ~name (desc_of bound);
    { r_name = name; r_bound = bound; r_value = init }

  let read r = r.r_value

  let write r v =
    guard r.r_bound r.r_name v;
    r.r_value <- v

  type 'a cas = {
    c_name : string;
    c_bound : 'a Bounded.t option;
    c_writable : bool;
    c_codec : 'a Mem_intf.codec option;
    mutable c_value : 'a;
  }

  let make_cas ?bound ?(writable = false) ?padded:_ ~name ~show:_ init =
    guard bound name init;
    register_object ~name (desc_of bound);
    { c_name = name; c_bound = bound; c_writable = writable; c_codec = None;
      c_value = init }

  (* This backend's CAS is already structural, so the codec is only kept to
     serve the packed accessors. *)
  let make_cas_packed ?bound ?(writable = false) ?padded:_ ~name ~show:_ ~codec
      init =
    guard bound name init;
    register_object ~name (desc_of bound);
    { c_name = name; c_bound = bound; c_writable = writable;
      c_codec = Some codec; c_value = init }

  let cas_read c = c.c_value

  let cas c ~expect ~update =
    if c.c_value = expect then begin
      guard c.c_bound c.c_name update;
      c.c_value <- update;
      true
    end
    else false

  let cas_write c v =
    if not c.c_writable then
      invalid_arg
        (Printf.sprintf "Seq_mem.cas_write: %s is not a writable CAS object"
           c.c_name);
    guard c.c_bound c.c_name v;
    c.c_value <- v

  let codec_of c =
    match c.c_codec with
    | Some k -> k
    | None ->
        invalid_arg
          (Printf.sprintf "Seq_mem: %s is not a packed CAS object" c.c_name)

  let cas_read_packed c = (codec_of c).Mem_intf.encode c.c_value

  let cas_packed c ~expect ~update =
    let k = codec_of c in
    cas c ~expect:(k.Mem_intf.decode expect) ~update:(k.Mem_intf.decode update)

  type 'a cas2 = {
    w_name : string;
    w_bound : 'a Bounded.t option;
    w_codec : 'a Mem_intf.codec option;
    w_tag_bits : int;
    mutable w_value : 'a;
    mutable w_tag : int;
  }

  let make_cas2 ?bound ?padded:_ ?codec ~tag_bits ~name ~show:_ init itag =
    Mem_intf.check_tag_bits ~what:"Seq_mem.make_cas2" tag_bits;
    guard bound name init;
    register_object ~name (desc_of bound);
    { w_name = name; w_bound = bound; w_codec = codec; w_tag_bits = tag_bits;
      w_value = init; w_tag = itag land ((1 lsl tag_bits) - 1) }

  let cas2_read w = (w.w_value, w.w_tag)

  let cas2 w ~expect ~expect_tag ~update ~update_tag =
    let mask = (1 lsl w.w_tag_bits) - 1 in
    if w.w_value = expect && w.w_tag = expect_tag land mask then begin
      guard w.w_bound w.w_name update;
      w.w_value <- update;
      w.w_tag <- update_tag land mask;
      true
    end
    else false

  let codec2_of w =
    match w.w_codec with
    | Some k -> k
    | None ->
        invalid_arg
          (Printf.sprintf "Seq_mem: %s is not a packed cas2 object" w.w_name)

  let cas2_pack w v t =
    Mem_intf.pack2 ~tag_bits:w.w_tag_bits ((codec2_of w).Mem_intf.encode v) t

  let cas2_read_packed w = cas2_pack w w.w_value w.w_tag

  let cas2_packed w ~expect ~update =
    let k = codec2_of w in
    let tb = w.w_tag_bits in
    cas2 w
      ~expect:(k.Mem_intf.decode (Mem_intf.unpack2_value ~tag_bits:tb expect))
      ~expect_tag:(Mem_intf.unpack2_tag ~tag_bits:tb expect)
      ~update:(k.Mem_intf.decode (Mem_intf.unpack2_value ~tag_bits:tb update))
      ~update_tag:(Mem_intf.unpack2_tag ~tag_bits:tb update)

  type 'a llsc = {
    l_name : string;
    l_bound : 'a Bounded.t option;
    mutable l_value : 'a;
    mutable l_seq : int;
    l_link : (Pid.t, int) Hashtbl.t;
  }

  let make_llsc ?bound ?padded:_ ~name ~show:_ init =
    guard bound name init;
    register_object ~name (desc_of bound);
    { l_name = name; l_bound = bound; l_value = init; l_seq = 0;
      l_link = Hashtbl.create 8 }

  let ll o ~pid =
    Hashtbl.replace o.l_link pid o.l_seq;
    o.l_value

  let link_valid o pid =
    (* A process that never performed LL has a valid link as long as no
       successful SC occurred (Appendix A convention). *)
    match Hashtbl.find_opt o.l_link pid with
    | Some s -> s = o.l_seq
    | None -> o.l_seq = 0

  let sc o ~pid v =
    if link_valid o pid then begin
      guard o.l_bound o.l_name v;
      o.l_value <- v;
      o.l_seq <- o.l_seq + 1;
      true
    end
    else false

  let vl o ~pid = link_valid o pid

  let space () = !objects
end

let make () : (module Mem_intf.S) = (module Make ())
