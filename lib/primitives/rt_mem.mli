(** The multicore {!Mem_intf.S} instance over OCaml 5 [Atomic] — the third
    backend (with {!Seq_mem} and [Aba_sim.Sim_mem]) of the shared functor
    stack, so the algorithms that are model-checked are the ones that run
    on real domains.

    Packed CAS objects ({!Mem_intf.S.make_cas_packed}) live in a single
    [int Atomic.t]; [Atomic.compare_and_set] on an immediate int is exact
    value comparison, i.e. a genuine bounded hardware CAS word, ABAs
    included, with an allocation-free hot path.  Plain CAS objects fall
    back to a freshly boxed cell per update, which is ABA-free — {e
    conservative} with respect to the structural CAS semantics (it can
    only fail more often) and identical to it in sequential executions.

    Domains ([Bounded.t]) are checked at creation only; per-step checks
    are performed by the seq/sim backends running the same functor body.

    [n] bounds the process ids used with LL/SC base objects (it sizes
    their per-process link tables); registers and CAS objects ignore it. *)

module Make (N : sig
  val n : int
end) : Mem_intf.S

val make : n:int -> unit -> (module Mem_intf.S)
(** A fresh instance: its {!Mem_intf.S.space} accounts exactly the objects
    created through it. *)
