(** Shared-memory base-object interface.

    The paper's algorithms (Figures 3, 4 and 5) are expressed over three
    kinds of atomic base objects: read/write registers, (writable) CAS
    objects, and LL/SC/VL objects.  We write each algorithm once, as a
    functor over this signature, and instantiate it with:

    - {!Aba_sim.Sim_mem} — the deterministic simulator, where every operation
      is one scheduler step (used for linearizability checking, adversarial
      schedules and the lower-bound experiments);
    - {!Seq_mem} — a direct, single-threaded instance (used for fast
      sequential unit tests of algorithm-internal invariants);
    - {!Rt_mem} — the multicore instance over OCaml 5 [Atomic], so the code
      that is model-checked is also the code that runs on real domains.

    Creation functions are not shared-memory steps; they model the initial
    configuration.  Every object takes a [name] (used in traces, register
    configurations and space accounting), a [show] function rendering values,
    and an optional {!Bounded.t} domain.  Objects with a domain refuse values
    outside it — this is how the boundedness hypothesis of Theorem 1 is
    enforced at runtime.  ({!Rt_mem} checks the domain at creation only; the
    per-step checks are the job of the checking backends, which run the same
    functor body.)

    {2 Structural vs. physical CAS, and the packed representation}

    [cas] compares the {e value} of the object with [expect] — exact
    (structural) comparison, ABAs included, like a hardware CAS word.  The
    simulator and the sequential instance implement this directly.  On
    OCaml 5 [Atomic], however, [compare_and_set] on a boxed value compares
    {e addresses}, which is not the same object: two structurally equal
    records fail the comparison, and the semantics becomes "unchanged since
    I read it" rather than "currently equal to [expect]".

    The {e packed} CAS interface resolves this.  A CAS object created with
    {!S.make_cas_packed} carries a {!codec} injecting its values into
    immediate [int]s; backends with physical CAS store the encoding, so the
    hardware compares exact values — genuinely bounded, ABAs included, and
    allocation-free.  {!S.cas_read_packed} and {!S.cas_packed} let the hot
    path of an algorithm (Figure 3's retry loops) operate on the encoded
    word directly; backends with structural CAS decode and delegate, so
    under the simulator the same calls remain one step each, with the
    decoded values visible to domain checks and traces.  For values with no
    practical int encoding, plain [make_cas] remains: the runtime backend
    then falls back to a freshly boxed cell per update, which is ABA-free —
    conservative with respect to structural CAS (it can only fail more
    often), and indistinguishable from it in sequential executions.

    {2 Double-word CAS}

    Tagged-pointer schemes (the paper's bounded-tag constructions, flock's
    announcement-guarded tags, snmalloc's ABA protection) all CAS a
    {e (value, tag)} pair as one atomic unit — hardware DWCAS, or a single
    word when both halves fit.  {!S.make_cas2} exposes that capability:
    when the value has a codec and [encode v] fits in [63 - tag_bits] bits,
    the pair packs into one immediate int and backends with physical CAS
    ({!Rt_mem}) run it as a single allocation-free
    [Atomic.compare_and_set] — the packed-CAS machinery, widened by a tag
    field.  Without a codec the runtime backend falls back to a boxed
    emulation ([('a, tag)] pairs CAS'd physically), which is ABA-free and
    hence conservative, exactly like plain [make_cas].  Tags live in
    [0 .. 2^tag_bits - 1] and are reduced modulo [2^tag_bits] on every
    operation, so wraparound behaves identically across backends. *)

(** An injection of ['a] into immediate integers: [decode (encode v) = v]
    for every [v] in the object's domain, and [encode] is injective on it.
    Encodings must fit OCaml's 63-bit [int]. *)
type 'a codec = { encode : 'a -> int; decode : int -> 'a }

(** {2 Packed (value, tag) words}

    Helpers shared by backends and by hot paths that manipulate encoded
    double-words directly: the encoded value occupies the high bits, the
    tag the low [tag_bits] bits. *)

let pack2 ~tag_bits ev tag = (ev lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))
let unpack2_value ~tag_bits w = w lsr tag_bits
let unpack2_tag ~tag_bits w = w land ((1 lsl tag_bits) - 1)

let check_tag_bits ~what tag_bits =
  if tag_bits <= 0 || tag_bits >= 62 then
    invalid_arg
      (Printf.sprintf "%s: tag_bits must be in 1..61 (got %d)" what tag_bits)

module type S = sig
  val mem_name : string
  (** Identifies the instance in experiment output. *)

  (** {1 Read/write registers} *)

  type 'a register

  val make_register :
    ?bound:'a Bounded.t -> ?padded:bool -> name:string ->
    show:('a -> string) -> 'a -> 'a register
  (** [padded] (default [false]) asks the backend to place the object on its
      own cache line ({!Padded}); a layout hint only — checking backends,
      where there is no cache, ignore it. *)

  val read : 'a register -> 'a

  val write : 'a register -> 'a -> unit

  (** {1 CAS objects}

      A CAS object supports [Read()] and [CAS(x, y)].  A {e writable} CAS
      object additionally supports [Write()] — the paper states its
      Theorem 1(c) lower bound for this stronger primitive, which can
      simulate any conditional read-modify-write operation. *)

  type 'a cas

  val make_cas :
    ?bound:'a Bounded.t -> ?writable:bool -> ?padded:bool -> name:string ->
    show:('a -> string) -> 'a -> 'a cas
  (** [writable] defaults to [false]; [padded] as in {!make_register}. *)

  val cas_read : 'a cas -> 'a

  val cas : 'a cas -> expect:'a -> update:'a -> bool
  (** [cas o ~expect ~update] atomically replaces the value [v] of [o] by
      [update] and returns [true] if [v = expect] (structurally); otherwise
      leaves [o] unchanged and returns [false]. *)

  val cas_write : 'a cas -> 'a -> unit
  (** Unconditional write; raises [Invalid_argument] on a non-writable CAS
      object. *)

  val make_cas_packed :
    ?bound:'a Bounded.t -> ?writable:bool -> ?padded:bool -> name:string ->
    show:('a -> string) -> codec:'a codec -> 'a -> 'a cas
  (** A CAS object whose values are CAS'd through their [codec] encoding.
      Backends with structural CAS may ignore the codec; backends with
      physical CAS (e.g. {!Rt_mem}) store [codec.encode v] as an immediate
      int so that hardware CAS is exact value comparison.  The resulting
      object also supports the packed accessors below. *)

  val cas_read_packed : 'a cas -> int
  (** [cas_read_packed o = codec.encode (cas_read o)], in one step and
      without decoding.  Raises [Invalid_argument] on an object not created
      with {!make_cas_packed}. *)

  val cas_packed : 'a cas -> expect:int -> update:int -> bool
  (** [cas_packed o ~expect ~update] is
      [cas o ~expect:(decode expect) ~update:(decode update)] — one step,
      and on physical-CAS backends a single allocation-free
      [Atomic.compare_and_set] on the encoded word.  Raises
      [Invalid_argument] on an object not created with
      {!make_cas_packed}. *)

  (** {1 Double-word CAS objects}

      A [cas2] holds a [(value, tag)] pair and CASes both halves atomically.
      Tags are reduced modulo [2^tag_bits] by every operation, in every
      backend, so tag arithmetic wraps identically whether the pair lives in
      one packed int, a boxed cell, or a simulator cell. *)

  type 'a cas2

  val make_cas2 :
    ?bound:'a Bounded.t -> ?padded:bool -> ?codec:'a codec -> tag_bits:int ->
    name:string -> show:('a -> string) -> 'a -> int -> 'a cas2
  (** [make_cas2 ~tag_bits ~name ~show v t] is a double-word CAS object
      initially holding [(v, t land (2^tag_bits - 1))].  With [codec] the
      pair is CAS'd through its packed encoding
      ({!pack2}[ ~tag_bits (encode v) t]) — on physical-CAS backends a
      single [int Atomic.t], so the hot path is exact value comparison with
      zero allocation; [encode v] must fit in [63 - tag_bits] bits.
      Without [codec] the object still works everywhere, but backends with
      physical CAS emulate it over a boxed pair (ABA-free, conservative,
      like plain {!make_cas}), and the packed accessors below raise.
      Requires [0 < tag_bits < 62]. *)

  val cas2_read : 'a cas2 -> 'a * int
  (** The current pair, in one step.  (Allocates the result pair; hot paths
      that must not allocate use {!cas2_read_packed}.) *)

  val cas2 :
    'a cas2 -> expect:'a -> expect_tag:int -> update:'a -> update_tag:int ->
    bool
  (** [cas2 o ~expect ~expect_tag ~update ~update_tag] atomically replaces
      the pair by [(update, update_tag)] and returns [true] iff the current
      pair equals [(expect, expect_tag)] — both halves, structurally.  Tag
      arguments are reduced modulo [2^tag_bits]. *)

  val cas2_pack : 'a cas2 -> 'a -> int -> int
  (** [cas2_pack o v t] is the packed word for [(v, t)] — what
      {!cas2_read_packed} would return if the object held that pair.
      Raises [Invalid_argument] on an object created without a codec. *)

  val cas2_read_packed : 'a cas2 -> int
  (** The current pair as its packed word, in one step and without
      allocating.  Raises [Invalid_argument] on an object created without a
      codec. *)

  val cas2_packed : 'a cas2 -> expect:int -> update:int -> bool
  (** [cas2_packed o ~expect ~update] is {!cas2} on the decoded words — one
      step, and on physical-CAS backends a single allocation-free
      [Atomic.compare_and_set].  Raises [Invalid_argument] on an object
      created without a codec. *)

  (** {1 LL/SC/VL objects}

      Used as the {e source} object of Figure 5.  [sc ~pid o v] succeeds iff
      no successful [sc] on [o] occurred since [pid]'s last [ll]; [vl]
      reports whether [pid]'s link is still valid without changing state. *)

  type 'a llsc

  val make_llsc :
    ?bound:'a Bounded.t -> ?padded:bool -> name:string ->
    show:('a -> string) -> 'a -> 'a llsc

  val ll : 'a llsc -> pid:Pid.t -> 'a

  val sc : 'a llsc -> pid:Pid.t -> 'a -> bool

  val vl : 'a llsc -> pid:Pid.t -> bool
  (** Per the paper's Appendix A convention, [vl] by a process that has never
      performed [ll] returns [true] as long as no successful [sc] has been
      executed. *)

  (** {1 Space accounting} *)

  val space : unit -> (string * string) list
  (** All base objects created through this instance so far, as
      [(name, domain description)] pairs, in creation order.  This is the
      measured "m" of the theorems. *)
end
