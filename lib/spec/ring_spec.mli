(** Sequential specification of a {e bounded} FIFO queue.

    {!Queue_spec} models the unbounded object; the ring buffer refuses
    enqueues at [capacity], so its correctness condition needs the bound
    in the state machine — an [Enqueued false] response is legal exactly
    when the queue was full at the linearization point.  The capacity is
    a functor parameter because it is part of the object's identity, not
    of any particular history. *)

module Make (_ : sig
  val capacity : int
end) : sig
  type op = Enqueue of int | Dequeue
  type res = Enqueued of bool | Dequeued of int option

  include
    Seq_spec.S with type op := op and type res := res
end
