open Aba_primitives

module Make (C : sig
  val capacity : int
end) =
struct
  type op = Enqueue of int | Dequeue
  type res = Enqueued of bool | Dequeued of int option

  (* Front list, reversed back list, occupancy; the bound makes this a
     different object from {!Queue_spec}: a full queue refuses. *)
  type state = { front : int list; back : int list; len : int }

  let init ~n:_ = { front = []; back = []; len = 0 }

  let apply st (_ : Pid.t) = function
    | Enqueue x ->
        if st.len >= C.capacity then (st, Enqueued false)
        else
          ({ st with back = x :: st.back; len = st.len + 1 }, Enqueued true)
    | Dequeue -> (
        match st.front with
        | x :: front -> ({ st with front; len = st.len - 1 }, Dequeued (Some x))
        | [] -> (
            match List.rev st.back with
            | x :: front ->
                ({ front; back = []; len = st.len - 1 }, Dequeued (Some x))
            | [] -> (st, Dequeued None)))

  let equal_res (a : res) (b : res) = a = b

  let pp_op ppf = function
    | Enqueue x -> Format.fprintf ppf "Enq(%d)" x
    | Dequeue -> Format.pp_print_string ppf "Deq"

  let pp_res ppf = function
    | Enqueued true -> Format.pp_print_string ppf "ok"
    | Enqueued false -> Format.pp_print_string ppf "->full"
    | Dequeued None -> Format.pp_print_string ppf "->empty"
    | Dequeued (Some x) -> Format.fprintf ppf "->%d" x
end
