(* The ring functor instantiated over the multicore memory, with runtime
   defaults flipped on: padding (head, tail and every slot word on their
   own cache lines) and exponential backoff.  The head/tail tickets travel
   through the identity codec as immediate ints, so every CAS of the
   algorithm is a hardware compare-and-set on an int word — exact value
   comparison, no allocation.  All Rt_ring objects share one memory
   instance; it only collects space-accounting entries. *)
module M = Aba_primitives.Rt_mem.Make (struct
  let n = 64 (* the ring uses no LL/SC base object, so this is inert *)
end)

module Q = Ring_queue.Make (M)

type t = Q.t

let create ?value_bound ?seq_bits ?(padded = true)
    ?(backoff = Aba_primitives.Backoff.default_spec) ?obs ~capacity ~n () =
  Q.create ?value_bound ?seq_bits ~padded ~backoff ?obs ~capacity ~n ()

let capacity = Q.capacity
let seq_bits = Q.seq_bits
let length = Q.length
let try_enqueue = Q.try_enqueue
let try_dequeue = Q.try_dequeue
let dequeue_or = Q.dequeue_or
let space = Q.space
