open Aba_primitives
module Obs = Aba_obs.Obs

(* The baseline the ring is benchmarked against: a bounded circular buffer
   with one mutex per end (Michael–Scott's two-lock discipline applied to
   an array).  Enqueuers serialize on [enq_lock], dequeuers on [deq_lock];
   the two ends only communicate through the atomic position counters, so
   an enqueue and a dequeue can run concurrently — but two enqueues never
   can, which is exactly the scalability ceiling the capacity sweep
   measures.

   Memory ordering: the slot write precedes the [Atomic.set] of [head]
   (release), and a dequeuer reads the slot only after observing the
   advanced [head] via [Atomic.get] (acquire), so the plain [buf] accesses
   are race-free.  No ABA story here at all — that is the point of a lock
   baseline: mutual exclusion buys freedom from ABA with time instead of
   tag space. *)

type t = {
  buf : int array;
  capacity : int;
  head : int Atomic.t;  (** next enqueue position *)
  tail : int Atomic.t;  (** next dequeue position *)
  enq_lock : Mutex.t;
  deq_lock : Mutex.t;
  obs : Obs.t;
}

let create ?(padded = true) ?(obs = Obs.noop) ~capacity ~n () =
  if capacity < 1 then invalid_arg "Two_lock_queue.create: capacity < 1";
  if n < 1 then invalid_arg "Two_lock_queue.create: n < 1";
  let atomic v = if padded then Padded.atomic v else Atomic.make v in
  {
    buf = Array.make capacity 0;
    capacity;
    head = atomic 0;
    tail = atomic 0;
    enq_lock = Mutex.create ();
    deq_lock = Mutex.create ();
    obs;
  }

let capacity t = t.capacity

let length t =
  let h = Atomic.get t.head and l = Atomic.get t.tail in
  min t.capacity (max 0 (h - l))

let try_enqueue t ~pid v =
  let t0 = Obs.start t.obs in
  Mutex.lock t.enq_lock;
  let h = Atomic.get t.head in
  let full = h - Atomic.get t.tail >= t.capacity in
  if not full then begin
    t.buf.(h mod t.capacity) <- v;
    Atomic.set t.head (h + 1)
  end;
  Mutex.unlock t.enq_lock;
  Obs.record t.obs ~pid ~kind:Obs.Enqueue
    ~outcome:(if full then Obs.Fail else Obs.Ok)
    ~retries:0 t0;
  not full

let try_dequeue t ~pid =
  let t0 = Obs.start t.obs in
  Mutex.lock t.deq_lock;
  let l = Atomic.get t.tail in
  let empty = Atomic.get t.head - l <= 0 in
  let v = if empty then 0 else t.buf.(l mod t.capacity) in
  if not empty then Atomic.set t.tail (l + 1);
  Mutex.unlock t.deq_lock;
  Obs.record t.obs ~pid ~kind:Obs.Dequeue
    ~outcome:(if empty then Obs.Empty else Obs.Ok)
    ~retries:0 t0;
  if empty then None else Some v

let dequeue_or t ~pid ~default =
  match try_dequeue t ~pid with Some v -> v | None -> default
