(** Two-lock bounded queue baseline: a circular buffer with one mutex per
    end (enqueuers serialize on one, dequeuers on the other; the ends
    communicate only through atomic position counters).  Same operation
    contracts as {!Rt_ring} — the capacity sweep runs both over the same
    workload to measure what the lock-free ring buys. *)

type t

val create :
  ?padded:bool ->
  ?obs:Aba_obs.Obs.t ->
  capacity:int ->
  n:int ->
  unit ->
  t
(** [padded] (default [true]) pads the position counters.  [n] is
    accepted for interface symmetry (locks need no per-pid state) but
    must be positive. *)

val capacity : t -> int
val length : t -> int
val try_enqueue : t -> pid:Aba_primitives.Pid.t -> int -> bool
val try_dequeue : t -> pid:Aba_primitives.Pid.t -> int option
val dequeue_or : t -> pid:Aba_primitives.Pid.t -> default:int -> int
