(** {!Ring_queue} over the multicore memory ({!Aba_primitives.Rt_mem}),
    with the runtime defaults: [padded] and exponential [backoff] on.
    The uncontended [try_enqueue]/[dequeue_or] paths allocate nothing —
    head and tail are immediate-int hardware CAS words and the retry
    loops build no closures. *)

type t

val create :
  ?value_bound:int Aba_primitives.Bounded.t ->
  ?seq_bits:int ->
  ?padded:bool ->
  ?backoff:Aba_primitives.Backoff.spec ->
  ?obs:Aba_obs.Obs.t ->
  capacity:int ->
  n:int ->
  unit ->
  t
(** Defaults: [padded = true], [backoff = Backoff.default_spec],
    [seq_bits = 61].  See {!Ring_queue.S.create} for the argument
    contracts. *)

val capacity : t -> int
val seq_bits : t -> int
val length : t -> int
val try_enqueue : t -> pid:Aba_primitives.Pid.t -> int -> bool
val try_dequeue : t -> pid:Aba_primitives.Pid.t -> int option
val dequeue_or : t -> pid:Aba_primitives.Pid.t -> default:int -> int
val space : t -> (string * string) list
