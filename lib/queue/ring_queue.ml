(** Bounded MPMC ring queue with per-slot sequence numbers (Vyukov-style),
    written once as a functor over {!Mem_intf.S} so the same body runs
    under the sequential reference memory, the model-checking simulator
    and the multicore runtime.

    {2 The algorithm}

    [capacity] slots, two ticket counters: [head] (next enqueue position)
    and [tail] (next dequeue position).  Position [pos] maps to slot
    [pos mod capacity]; slot [s] carries a sequence word [seq] encoding
    which generation of traffic the slot is ready for:

    - [seq = pos] (mod [2^seq_bits]): the slot is free and waiting for the
      enqueue at position [pos];
    - [seq = pos + 1]: the enqueue at [pos] has published; the slot waits
      for the dequeue at position [pos];
    - after that dequeue, [seq = pos + capacity]: free again, one lap on.

    An enqueuer reads [head], checks the slot's [seq], and claims the
    ticket with a CAS on [head]; the winner writes the value and then
    publishes [seq + 1].  Dequeue is symmetric on [tail].  The CAS is on
    the {e ticket counter}, not the slot, so a winner has exclusive
    ownership of its slot between claim and publish — the value and
    sequence writes are plain register writes.

    {2 Why this is an ABA scheme}

    The per-slot sequence number is exactly the paper's bounded-tag
    discipline applied per array cell: the slot's word versions every
    reuse, so a CAS armed against one generation of the slot cannot land
    on a later one.  Like every bounded tag it wraps — at [2^seq_bits] —
    and the wraparound adversary of {!Aba_lowerbound.Wraparound} applies:
    if [2^seq_bits] positions pass through the queue within one
    operation's read-to-CAS window, a stale ticket becomes
    indistinguishable from a fresh one (the classic ABA).  The safety
    condition, stated and tested against a deliberately tiny [seq_bits]:
    the scheme is exact while fewer than [2^(seq_bits-1) - capacity]
    operations complete inside any single operation's window.  At the
    default [seq_bits = 61] that is ~1.15e18 operations — centuries at a
    nanosecond per op — which is the precise sense in which "unbounded"
    tags on a 62-bit word are safe, and the same argument the DESIGN note
    makes for the counted-pointer structures. *)

open Aba_primitives
module Obs = Aba_obs.Obs

module type S = sig
  type t

  val create :
    ?value_bound:int Bounded.t ->
    ?seq_bits:int ->
    ?padded:bool ->
    ?backoff:Backoff.spec ->
    ?obs:Obs.t ->
    capacity:int ->
    n:int ->
    unit ->
    t

  val capacity : t -> int
  val seq_bits : t -> int

  val length : t -> int
  (** Instantaneous occupancy estimate (exact when quiescent). *)

  val try_enqueue : t -> pid:Pid.t -> int -> bool
  (** [false] means the queue was full at linearization. *)

  val try_dequeue : t -> pid:Pid.t -> int option

  val dequeue_or : t -> pid:Pid.t -> default:int -> int
  (** [try_dequeue] without the [Some] box: returns [default] on empty.
      The allocation-free hot path ([try_dequeue] itself allocates only
      its result option). *)

  val space : t -> (string * string) list
end

module Make (M : Mem_intf.S) : S = struct
  (* Per-pid scratch: the retry backoff plus the out-of-band hit flag
     that lets the dequeue loop return a bare int.  One padded record
     per pid — both fields mutate on every contended operation. *)
  type scratch = { bo : Backoff.t; mutable hit : bool }

  type t = {
    capacity : int;
    bits : int;
    mask : int;  (** [2^bits - 1]: sequence words live in [0, mask] *)
    shift : int;  (** [63 - bits], for k-bit signed reinterpretation *)
    head : int M.cas;  (** next enqueue position (raw ticket) *)
    tail : int M.cas;  (** next dequeue position (raw ticket) *)
    seqs : int M.register array;
    values : int M.register array;
    locals : scratch array;
    obs : Obs.t;
  }

  (* Tickets travel through the packed accessors as themselves: on the
     runtime backend the counters are immediate-int [Atomic]s (hardware
     CAS, no allocation); on seq/sim each access is one checked step. *)
  let ticket_codec : int Mem_intf.codec =
    { Mem_intf.encode = Fun.id; decode = Fun.id }

  let show_int = string_of_int

  let create ?(value_bound = Bounded.unbounded ~describe:"int")
      ?(seq_bits = 61) ?(padded = false) ?(backoff = Backoff.Noop)
      ?(obs = Obs.noop) ~capacity ~n () =
    if capacity < 1 then invalid_arg "Ring_queue.create: capacity < 1";
    if n < 1 then invalid_arg "Ring_queue.create: n < 1";
    if seq_bits < 2 || seq_bits > 61 then
      invalid_arg "Ring_queue.create: seq_bits must be 2..61";
    (* Below this floor the k-bit signed window cannot even distinguish a
       full slot from a free one between two quiescent states, never mind
       tolerate concurrent staleness. *)
    if capacity >= 1 lsl (seq_bits - 1) then
      invalid_arg "Ring_queue.create: capacity must be < 2^(seq_bits-1)";
    let mask = (1 lsl seq_bits) - 1 in
    let seq_bound = Bounded.bits ~width:seq_bits in
    let ticket_bound = Bounded.int_range ~lo:0 ~hi:max_int in
    {
      capacity;
      bits = seq_bits;
      mask;
      shift = 63 - seq_bits;
      head =
        M.make_cas_packed ~bound:ticket_bound ~padded ~name:"ring.head"
          ~show:show_int ~codec:ticket_codec 0;
      tail =
        M.make_cas_packed ~bound:ticket_bound ~padded ~name:"ring.tail"
          ~show:show_int ~codec:ticket_codec 0;
      seqs =
        Array.init capacity (fun i ->
            M.make_register ~bound:seq_bound ~padded
              ~name:(Printf.sprintf "ring.seq[%d]" i)
              ~show:show_int (i land mask));
      values =
        Array.init capacity (fun i ->
            M.make_register ~bound:value_bound ~padded
              ~name:(Printf.sprintf "ring.val[%d]" i)
              ~show:show_int 0);
      locals = Array.init n (fun _ -> Padded.copy { bo = Backoff.make backoff; hit = false });
      obs;
    }

  let capacity t = t.capacity
  let seq_bits t = t.bits

  let length t =
    let h = M.cas_read_packed t.head in
    let l = M.cas_read_packed t.tail in
    min t.capacity (max 0 (h - l))

  (* Signed difference in [bits]-bit arithmetic: the lsl/asr pair
     reinterprets the low [bits] bits of [a - b] as a signed value, so
     the comparison is exact across sequence wraparound as long as the
     true distance stays within [±2^(bits-1)] — the safety condition in
     the header comment. *)
  (* The shifts are explicitly parenthesized: [lsl]/[asr] associate to the
     right in OCaml, so without them [x lsl shift asr shift] is
     [x lsl (shift asr shift)] = [x] — no window at all. *)
  let sdiff t a b = ((a - b) lsl t.shift) asr t.shift

  (* The retry loops are module-level recursive functions, not local
     closures: a closure capturing [t]/[pid] would allocate on every
     operation, and the structure's claim is 0 words/op uncontended.
     [Backoff.reset] is lazy (first failed CAS only), so the uncontended
     path does zero backoff stores. *)

  (* Returns [retries >= 0] on success, [-(retries + 1)] on full. *)
  let rec enq t l v retries =
    let pos = M.cas_read_packed t.head in
    let slot = pos mod t.capacity in
    let seq = M.read t.seqs.(slot) in
    let dif = sdiff t seq (pos land t.mask) in
    if dif = 0 then
      if M.cas_packed t.head ~expect:pos ~update:(pos + 1) then begin
        (* Ticket won: the slot is exclusively ours until we publish. *)
        M.write t.values.(slot) v;
        M.write t.seqs.(slot) ((pos + 1) land t.mask);
        retries
      end
      else begin
        if retries = 0 then Backoff.reset l.bo;
        Backoff.once l.bo;
        enq t l v (retries + 1)
      end
    else if dif < 0 then
      (* The slot is still a lap behind: full — unless our head read was
         stale, in which case chase the fresh head. *)
      if M.cas_read_packed t.head = pos then -retries - 1 else enq t l v retries
    else
      (* dif > 0: the enqueue at [pos] already published; our head read
         is stale.  No backoff — this is progress, not failure. *)
      enq t l v retries

  let try_enqueue t ~pid v =
    let t0 = Obs.start t.obs in
    let r = enq t t.locals.(pid) v 0 in
    if r >= 0 then begin
      Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Ok ~retries:r t0;
      true
    end
    else begin
      Obs.record t.obs ~pid ~kind:Obs.Enqueue ~outcome:Obs.Fail
        ~retries:(-r - 1) t0;
      false
    end

  (* Returns the dequeued value and sets [l.hit]; leaves [l.hit] false on
     empty (the caller translates to its own empty representation). *)
  let rec deq t l ~pid t0 retries =
    let pos = M.cas_read_packed t.tail in
    let slot = pos mod t.capacity in
    let seq = M.read t.seqs.(slot) in
    let dif = sdiff t seq ((pos + 1) land t.mask) in
    if dif = 0 then
      if M.cas_packed t.tail ~expect:pos ~update:(pos + 1) then begin
        let v = M.read t.values.(slot) in
        (* Free the slot for the enqueue one lap ahead. *)
        M.write t.seqs.(slot) ((pos + t.capacity) land t.mask);
        l.hit <- true;
        Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Ok ~retries t0;
        v
      end
      else begin
        if retries = 0 then Backoff.reset l.bo;
        Backoff.once l.bo;
        deq t l ~pid t0 (retries + 1)
      end
    else if dif < 0 then
      if M.cas_read_packed t.tail = pos then begin
        Obs.record t.obs ~pid ~kind:Obs.Dequeue ~outcome:Obs.Empty ~retries t0;
        0
      end
      else deq t l ~pid t0 retries
    else deq t l ~pid t0 retries

  let dequeue_or t ~pid ~default =
    let t0 = Obs.start t.obs in
    let l = t.locals.(pid) in
    l.hit <- false;
    let v = deq t l ~pid t0 0 in
    if l.hit then v else default

  let try_dequeue t ~pid =
    let t0 = Obs.start t.obs in
    let l = t.locals.(pid) in
    l.hit <- false;
    let v = deq t l ~pid t0 0 in
    if l.hit then Some v else None

  let space _ = M.space ()
end
