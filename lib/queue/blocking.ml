open Aba_primitives
module Obs = Aba_obs.Obs

(* Backpressure wrapper over {!Rt_ring}: a full enqueue (or empty dequeue)
   does not fail immediately but polls the ring for a bounded,
   backoff-paced window.  The wait phase gets its own observability —
   [Wait_full]/[Wait_empty] events with the poll count as retries — so a
   capacity sweep can separate "how long did the operation take" (the
   ring's own Enqueue/Dequeue histograms) from "how long did we stall
   against the bound" (this module's Wait histograms).

   The fast path is exactly the ring's: one try, and only on Full/Empty
   do we start a wait-phase clock, so an unsaturated blocking queue is
   observationally (and allocation-wise) identical to the raw ring. *)

type t = {
  q : Rt_ring.t;
  max_polls : int;
  waits : Backoff.t array;  (** per-pid wait pacing, distinct from the
                                ring's CAS-retry backoff *)
  obs : Obs.t;
}

let create ?value_bound ?seq_bits ?padded
    ?(backoff = Backoff.default_spec) ?(obs = Obs.noop)
    ?(max_polls = 1024) ~capacity ~n () =
  if max_polls < 1 then invalid_arg "Blocking.create: max_polls < 1";
  {
    q = Rt_ring.create ?value_bound ?seq_bits ?padded ~backoff ~obs ~capacity ~n ();
    max_polls;
    waits = Array.init n (fun _ -> Padded.copy (Backoff.make backoff));
    obs;
  }

let ring t = t.q
let capacity t = Rt_ring.capacity t.q
let length t = Rt_ring.length t.q
let wait_spins t ~pid = Backoff.current t.waits.(pid)

(* Reset discipline: the window is reset on wait-phase entry AND on both
   exits (success or timeout).  Entry reset alone already guarantees a
   fresh window per operation; the exit reset keeps the invariant "the
   stored window is at base between operations" observable, so a maxed
   window can never leak into a future operation even if the entry path
   is refactored. *)

let rec wait_enq t ~pid v t0 polls =
  if polls >= t.max_polls then begin
    Obs.record t.obs ~pid ~kind:Obs.Wait_full ~outcome:Obs.Timeout
      ~retries:polls t0;
    Backoff.reset t.waits.(pid);
    false
  end
  else begin
    Backoff.once t.waits.(pid);
    if Rt_ring.try_enqueue t.q ~pid v then begin
      Obs.record t.obs ~pid ~kind:Obs.Wait_full ~outcome:Obs.Ok
        ~retries:(polls + 1) t0;
      Backoff.reset t.waits.(pid);
      true
    end
    else wait_enq t ~pid v t0 (polls + 1)
  end

let enqueue t ~pid v =
  Rt_ring.try_enqueue t.q ~pid v
  || begin
       let t0 = Obs.start t.obs in
       Backoff.reset t.waits.(pid);
       wait_enq t ~pid v t0 0
     end

let rec wait_deq t ~pid t0 polls =
  if polls >= t.max_polls then begin
    Obs.record t.obs ~pid ~kind:Obs.Wait_empty ~outcome:Obs.Timeout
      ~retries:polls t0;
    Backoff.reset t.waits.(pid);
    None
  end
  else begin
    Backoff.once t.waits.(pid);
    match Rt_ring.try_dequeue t.q ~pid with
    | Some _ as r ->
        Obs.record t.obs ~pid ~kind:Obs.Wait_empty ~outcome:Obs.Ok
          ~retries:(polls + 1) t0;
        Backoff.reset t.waits.(pid);
        r
    | None -> wait_deq t ~pid t0 (polls + 1)
  end

let dequeue t ~pid =
  match Rt_ring.try_dequeue t.q ~pid with
  | Some _ as r -> r
  | None ->
      let t0 = Obs.start t.obs in
      Backoff.reset t.waits.(pid);
      wait_deq t ~pid t0 0
