(** Backpressure wrapper over {!Rt_ring}: bounded spin-then-backoff on
    full/empty.

    [enqueue] and [dequeue] first try the ring once (the unsaturated fast
    path is the ring's, unchanged); on Full/Empty they poll for at most
    [max_polls] backoff-paced rounds before giving up.  The wait phase is
    recorded on [obs] separately from the ring's own Enqueue/Dequeue
    events, as [Wait_full]/[Wait_empty] with outcome [Ok] (space/an
    element appeared, with the poll count as retries) or [Timeout] (the
    window expired against the bound). *)

type t

val create :
  ?value_bound:int Aba_primitives.Bounded.t ->
  ?seq_bits:int ->
  ?padded:bool ->
  ?backoff:Aba_primitives.Backoff.spec ->
  ?obs:Aba_obs.Obs.t ->
  ?max_polls:int ->
  capacity:int ->
  n:int ->
  unit ->
  t
(** [backoff] (default {!Aba_primitives.Backoff.default_spec}) paces both
    the ring's CAS retries and the wait-phase polls (each pid gets its own
    wait state).  [max_polls] defaults to 1024.  Raises
    [Invalid_argument] if [max_polls < 1]; other arguments as in
    {!Rt_ring.create}. *)

val ring : t -> Rt_ring.t
(** The underlying ring, for non-blocking access and space accounting. *)

val capacity : t -> int
val length : t -> int

val wait_spins : t -> pid:Aba_primitives.Pid.t -> int
(** The pid's current wait-phase pacing window, in spins.  Reset to the
    base window on wait-phase entry and on both exits (success and
    timeout), so between operations this always reads the base — a
    timed-out wait never inflates the next operation's pacing.  Exposed
    for tests auditing that discipline. *)

val enqueue : t -> pid:Aba_primitives.Pid.t -> int -> bool
(** [false] only after the full wait window expired with the queue full. *)

val dequeue : t -> pid:Aba_primitives.Pid.t -> int option
(** [None] only after the full wait window expired with the queue empty. *)
