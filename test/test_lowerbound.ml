(** Tests for the lower-bound machinery (experiments E1, E5, E6):
    the Lemma 1 covering adversary, the wraparound finder, and the
    time–space tradeoff measurements. *)

open Aba_core
open Aba_lowerbound

(* --- Covering adversary (Theorem 1(a)) --- *)

let covering_fig4 n () =
  match Covering.run Instances.aba_fig4 ~n with
  | Covering.Covered cov, _stats ->
      Alcotest.(check int) "covers n-1 distinct registers" (n - 1)
        (List.length cov);
      let names = List.map snd cov in
      Alcotest.(check int) "registers are distinct" (n - 1)
        (List.length (List.sort_uniq compare names))
  | outcome, _ ->
      Alcotest.failf "expected covering, got: %s"
        (Format.asprintf "%a" Covering.pp_outcome outcome)

let covering_bounded_tag () =
  (* The mod-T tag register has a single register, so the adversary must
     find the clean/dirty confusion instead of a covering. *)
  match Covering.run (Instances.aba_bounded_tag ~tag_bound:3) ~n:3 with
  | Covering.Violation v, _ ->
      Alcotest.(check bool) "dirty read returned false" false v.Covering.flag;
      Alcotest.(check bool) "at least one write was missed" true
        (v.Covering.writes_missed >= 1)
  | outcome, _ ->
      Alcotest.failf "expected violation, got: %s"
        (Format.asprintf "%a" Covering.pp_outcome outcome)

let covering_unbounded () =
  (* Unbounded tags: register configurations never repeat, which is exactly
     how the trivial construction escapes Theorem 1(a). *)
  match
    Covering.run ~max_iterations_per_level:50 Instances.aba_unbounded ~n:3
  with
  | Covering.No_repetition _, _ -> ()
  | outcome, _ ->
      Alcotest.failf "expected no-repetition, got: %s"
        (Format.asprintf "%a" Covering.pp_outcome outcome)

let covering_cas_escapes () =
  (* A CAS-based implementation is outside Theorem 1(a)'s hypothesis: the
     adversary must not produce a (bogus) violation against it. *)
  match Covering.run ~max_iterations_per_level:200 Instances.aba_thm2 ~n:3 with
  | Covering.Violation _, _ -> Alcotest.fail "bogus violation against CAS"
  | (Covering.Escaped _ | Covering.No_repetition _ | Covering.Covered _), _ ->
      ()

let covering_minimal_n () =
  (* n = 2: one reader, target covering of a single register. *)
  match Covering.run Instances.aba_fig4 ~n:2 with
  | Covering.Covered [ (1, _) ], _ -> ()
  | outcome, _ ->
      Alcotest.failf "expected single-register covering, got: %s"
        (Format.asprintf "%a" Covering.pp_outcome outcome)

let covering_jp_not_refuted () =
  (* Figure 5 over the JP construction mixes registers (the announce array,
     which readers write) with a CAS object; the adversary may cover the
     announce registers or be escaped by the CAS — but it must never derive
     a violation from a correct implementation. *)
  match
    Covering.run ~max_iterations_per_level:500 Instances.aba_fig5_jp ~n:3
  with
  | Covering.Violation _, _ ->
      Alcotest.fail "bogus violation against a correct implementation"
  | (Covering.Covered _ | Covering.Escaped _ | Covering.No_repetition _), _ ->
      ()

let weak_runner_replay_deterministic () =
  (* replay_prefix must reproduce the exact configuration: same register
     contents, same idleness. *)
  let r = Weak_runner.create Instances.aba_fig4 ~n:3 in
  ignore (Weak_runner.complete_write r 0);
  ignore (Weak_runner.complete_read r 1);
  Weak_runner.invoke_read r 2;
  Weak_runner.step r 2;
  Weak_runner.step r 2;
  ignore (Weak_runner.complete_write r 0);
  let r' = Weak_runner.replay_prefix r ~upto:(Weak_runner.mark r) in
  Alcotest.(check string) "register configurations agree"
    (Weak_runner.reg_config r) (Weak_runner.reg_config r');
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "idleness of p%d agrees" p)
        (Weak_runner.is_idle r p) (Weak_runner.is_idle r' p))
    [ 0; 1; 2 ];
  (* And the replayed run continues identically. *)
  let f1 = Weak_runner.complete_read r 1 in
  let f2 = Weak_runner.complete_read r' 1 in
  Alcotest.(check bool) "continuations agree" f1 f2

(* --- Wraparound (E6) --- *)

let wraparound_directed_flawed () =
  List.iter
    (fun t ->
      match
        Wraparound.directed_search
          (Instances.aba_bounded_tag ~tag_bound:t)
          ~n:2 ~max_writes:(t + 2)
      with
      | Wraparound.Missed_after k ->
          Alcotest.(check int)
            (Printf.sprintf "tag bound %d missed after exactly %d writes" t t)
            t k
      | Wraparound.Detected_up_to _ ->
          Alcotest.failf "tag bound %d never missed" t)
    [ 2; 4; 8 ]

let wraparound_directed_correct () =
  List.iter
    (fun (label, builder) ->
      match Wraparound.directed_search builder ~n:2 ~max_writes:64 with
      | Wraparound.Detected_up_to k ->
          Alcotest.(check int) (label ^ " detected all") 64 k
      | Wraparound.Missed_after k ->
          Alcotest.failf "%s missed a write after %d writes" label k)
    (Instances.all_aba ())

let wraparound_randomized () =
  (* Random concurrent schedules: the flawed register fails fast, the
     correct ones never do. *)
  (match
     Wraparound.randomized_search
       (Instances.aba_bounded_tag ~tag_bound:2)
       ~n:3 ~ops_per_pid:8 ~seeds:50
   with
  | { violation_seed = Some _; _ } -> ()
  | { violation_seed = None; _ } ->
      Alcotest.fail "flawed register survived randomized search");
  match
    Wraparound.randomized_search Instances.aba_fig4 ~n:3 ~ops_per_pid:6
      ~seeds:30
  with
  | { violation_seed = None; histories_checked } ->
      Alcotest.(check int) "all histories checked" 30 histories_checked
  | { violation_seed = Some seed; _ } ->
      Alcotest.failf "figure 4 violated at seed %d" seed

let wraparound_stale_tag_plain () =
  (* Regression: plain mod-2^k tags demonstrably fail the stale-tag
     schedule — the stalled pop's CAS wins on the wrapped witness and the
     drain double-pops long-gone nodes. *)
  let r = Wraparound.stale_tag_adversary ~guard:false () in
  Alcotest.(check bool) "stale CAS won on the wrapped tag" true
    r.Wraparound.stale_cas_won;
  Alcotest.(check (list int)) "B and C popped twice" [ 1; 2 ]
    r.Wraparound.duplicate_pops;
  Alcotest.(check int) "no crossing scans without the guard" 0
    r.Wraparound.crossing_scans

let wraparound_stale_tag_announced () =
  (* The same schedule with the announcement guard on: the push's
     crossing scan skips the announced tag, so the stale CAS fails and
     the audit is clean. *)
  let r = Wraparound.stale_tag_adversary ~guard:true () in
  Alcotest.(check bool) "stale CAS rejected" false r.Wraparound.stale_cas_won;
  Alcotest.(check (list int)) "no duplicate pops" []
    r.Wraparound.duplicate_pops;
  Alcotest.(check bool) "crossings scanned the slots" true
    (r.Wraparound.crossing_scans >= 1)

(* --- Tradeoff (E2/E3/E5) --- *)

let tradeoff_llsc () =
  let n = 8 in
  let fig3 = Tradeoff.measure_llsc ~label:"fig3" Instances.llsc_fig3 ~n in
  let jp = Tradeoff.measure_llsc ~label:"jp" Instances.llsc_jp ~n in
  let moir = Tradeoff.measure_llsc ~label:"moir" Instances.llsc_moir ~n in
  (* Figure 3: one object, linear worst-case LL (the adversary must drive
     the full retry loop: 1 + 2n steps). *)
  Alcotest.(check int) "fig3 space" 1 fig3.Tradeoff.space;
  Alcotest.(check int) "fig3 worst LL is 2n+1" ((2 * n) + 1)
    fig3.Tradeoff.worst_ll;
  Alcotest.(check bool) "fig3 SC is linear too" true
    (fig3.Tradeoff.worst_sc >= n - 1);
  Alcotest.(check bool) "fig3 bounded" true fig3.Tradeoff.bounded;
  (* JP: n+1 objects, constant worst-case ops. *)
  Alcotest.(check int) "jp space" (n + 1) jp.Tradeoff.space;
  Alcotest.(check bool) "jp constant time" true (jp.Tradeoff.worst_op <= 3);
  Alcotest.(check bool) "jp bounded" true jp.Tradeoff.bounded;
  (* Moir: beats the bounded tradeoff — because it is unbounded. *)
  Alcotest.(check int) "moir space" 1 moir.Tradeoff.space;
  Alcotest.(check bool) "moir constant time" true (moir.Tradeoff.worst_op <= 2);
  Alcotest.(check bool) "moir is NOT bounded" false moir.Tradeoff.bounded;
  Alcotest.(check bool) "moir beats the bounded threshold" true
    (moir.Tradeoff.product < moir.Tradeoff.bound);
  (* The bounded implementations respect the Theorem 1(c) threshold. *)
  List.iter
    (fun (m : Tradeoff.measurement) ->
      Alcotest.(check bool)
        (m.Tradeoff.label ^ " respects m*t >= ceil((n-1)/2)")
        true
        (m.Tradeoff.product >= m.Tradeoff.bound))
    [ fig3; jp ]

let tradeoff_aba () =
  let n = 8 in
  let fig4 = Tradeoff.measure_aba ~label:"fig4" Instances.aba_fig4 ~n in
  let thm2 = Tradeoff.measure_aba ~label:"thm2" Instances.aba_thm2 ~n in
  let unb =
    Tradeoff.measure_aba ~label:"unbounded" Instances.aba_unbounded ~n
  in
  Alcotest.(check int) "fig4 space is n+1" (n + 1) fig4.Tradeoff.a_space;
  Alcotest.(check int) "fig4 DRead is 4 steps" 4 fig4.Tradeoff.worst_dread;
  Alcotest.(check int) "fig4 DWrite is 2 steps" 2 fig4.Tradeoff.worst_dwrite;
  Alcotest.(check int) "thm2 space is 1" 1 thm2.Tradeoff.a_space;
  Alcotest.(check bool) "thm2 ops are linear in n" true
    (thm2.Tradeoff.a_worst_op >= n);
  Alcotest.(check int) "unbounded space is 1" 1 unb.Tradeoff.a_space;
  Alcotest.(check int) "unbounded ops are 1 step" 1 unb.Tradeoff.a_worst_op;
  List.iter
    (fun (m : Tradeoff.aba_measurement) ->
      Alcotest.(check bool)
        (m.Tradeoff.a_label ^ " respects the bounded threshold")
        true
        (m.Tradeoff.a_product >= m.Tradeoff.a_bound))
    [ fig4; thm2 ]

(* Step growth of Figure 3 across n — the O(n) shape of Theorem 2. *)
let fig3_steps_grow_linearly () =
  let worst n =
    (Tradeoff.measure_llsc ~label:"fig3" Instances.llsc_fig3 ~n).Tradeoff
      .worst_ll
  in
  List.iter
    (fun n -> Alcotest.(check int) (Printf.sprintf "worst LL at n=%d" n)
        ((2 * n) + 1) (worst n))
    [ 3; 5; 9; 13 ]

let suite =
  [
    Alcotest.test_case "covering: figure 4 covers n-1 registers (n=3)" `Quick
      (covering_fig4 3);
    Alcotest.test_case "covering: figure 4 covers n-1 registers (n=4)" `Quick
      (covering_fig4 4);
    Alcotest.test_case "covering: bounded-tag yields a violation" `Quick
      covering_bounded_tag;
    Alcotest.test_case "covering: unbounded tags never repeat" `Quick
      covering_unbounded;
    Alcotest.test_case "covering: CAS implementations escape" `Quick
      covering_cas_escapes;
    Alcotest.test_case "covering: minimal system n=2" `Quick
      covering_minimal_n;
    Alcotest.test_case "covering: correct mixed implementation not refuted"
      `Quick covering_jp_not_refuted;
    Alcotest.test_case "weak runner: replay is deterministic" `Quick
      weak_runner_replay_deterministic;
    Alcotest.test_case "wraparound: directed search nails the tag bound"
      `Quick wraparound_directed_flawed;
    Alcotest.test_case "wraparound: correct implementations never miss"
      `Quick wraparound_directed_correct;
    Alcotest.test_case "wraparound: randomized search" `Quick
      wraparound_randomized;
    Alcotest.test_case "wraparound: stale-tag adversary beats plain tags"
      `Quick wraparound_stale_tag_plain;
    Alcotest.test_case "wraparound: announced tags defeat the adversary"
      `Quick wraparound_stale_tag_announced;
    Alcotest.test_case "tradeoff: LL/SC implementations" `Quick tradeoff_llsc;
    Alcotest.test_case "tradeoff: ABA-register implementations" `Quick
      tradeoff_aba;
    Alcotest.test_case "figure 3 worst-case LL is exactly 2n+1" `Quick
      fig3_steps_grow_linearly;
  ]
