(** The ingress tier: the bounded MPMC ring queue ({!Aba_queue.Ring_queue}
    and its runtime instantiation {!Aba_queue.Rt_ring}), the blocking
    backpressure wrapper, and the two-lock baseline.

    The load-bearing tests here are the sequence-wraparound regression —
    the ring's per-slot sequence numbers are bounded ABA tags, and with a
    deliberately tiny [seq_bits] the slot words wrap many times over a
    run that must stay exactly FIFO — and the 4-domain [Bounded]-mix
    churn audits, which catch duplicated or invented values (the ABA
    corruption signature) under real contention. *)

open Aba_primitives
module Obs = Aba_obs.Obs
module Ring = Aba_queue.Ring_queue
module Rt_ring = Aba_queue.Rt_ring
module Blocking = Aba_queue.Blocking
module Two_lock = Aba_queue.Two_lock_queue
module Seq_ring = Ring.Make ((val Seq_mem.make ()))

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Sequential semantics (seq backend) ----- *)

let fifo_and_bounds () =
  let q = Seq_ring.create ~capacity:3 ~n:1 () in
  check_int "empty length" 0 (Seq_ring.length q);
  check_bool "deq on empty" true (Seq_ring.try_dequeue q ~pid:0 = None);
  check_bool "enq 1" true (Seq_ring.try_enqueue q ~pid:0 1);
  check_bool "enq 2" true (Seq_ring.try_enqueue q ~pid:0 2);
  check_bool "enq 3" true (Seq_ring.try_enqueue q ~pid:0 3);
  check_bool "enq on full fails" false (Seq_ring.try_enqueue q ~pid:0 4);
  check_int "full length" 3 (Seq_ring.length q);
  check_bool "deq 1" true (Seq_ring.try_dequeue q ~pid:0 = Some 1);
  check_bool "enq after deq" true (Seq_ring.try_enqueue q ~pid:0 4);
  check_bool "deq 2" true (Seq_ring.try_dequeue q ~pid:0 = Some 2);
  check_bool "deq 3" true (Seq_ring.try_dequeue q ~pid:0 = Some 3);
  check_bool "deq 4" true (Seq_ring.try_dequeue q ~pid:0 = Some 4);
  check_bool "deq on drained" true (Seq_ring.try_dequeue q ~pid:0 = None);
  check_int "dequeue_or default" 42 (Seq_ring.dequeue_or q ~pid:0 ~default:42)

let create_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "capacity 0 rejected" true
    (bad (fun () -> Seq_ring.create ~capacity:0 ~n:1 ()));
  check_bool "n 0 rejected" true
    (bad (fun () -> Seq_ring.create ~capacity:1 ~n:0 ()));
  check_bool "seq_bits 1 rejected" true
    (bad (fun () -> Seq_ring.create ~seq_bits:1 ~capacity:1 ~n:1 ()));
  check_bool "seq_bits 62 rejected" true
    (bad (fun () -> Seq_ring.create ~seq_bits:62 ~capacity:1 ~n:1 ()));
  check_bool "capacity >= 2^(seq_bits-1) rejected" true
    (bad (fun () -> Seq_ring.create ~seq_bits:4 ~capacity:8 ~n:1 ()));
  check_bool "capacity just under the bound accepted" true
    (match Seq_ring.create ~seq_bits:4 ~capacity:7 ~n:1 () with
    | q -> Seq_ring.capacity q = 7 && Seq_ring.seq_bits q = 4)

(* ----- Sequence wraparound regression ----- *)

(* With [seq_bits = 4] the slot sequence words live in [0, 15]: every 16
   positions through a slot wraps its tag.  Drive a capacity-3 ring
   through 400 enqueue/dequeue pairs — ~133 laps, ~25 wraps of every
   slot word — against a reference FIFO.  The signed-window comparison
   must keep the transcript exactly FIFO through every wrap; a naive
   [seq >= pos] comparison dies at the first one. *)
let wraparound_fifo () =
  let q = Seq_ring.create ~seq_bits:4 ~capacity:3 ~n:1 () in
  let model = Queue.create () in
  let mismatch = ref None in
  for i = 1 to 400 do
    check_bool
      (Printf.sprintf "enq %d accepted" i)
      true
      (Seq_ring.try_enqueue q ~pid:0 i);
    Queue.push i model;
    (* Alternate 1- and 2-deep drains so the ring visits different
       occupancies (and therefore different head/tail offsets) each lap. *)
    let drains = 1 + (i land 1) in
    for _ = 1 to min drains (Queue.length model) do
      let expected = Queue.pop model in
      match Seq_ring.try_dequeue q ~pid:0 with
      | Some v when v = expected -> ()
      | got ->
          if !mismatch = None then
            mismatch :=
              Some
                (Printf.sprintf "at op %d: expected Some %d, got %s" i expected
                   (match got with
                   | Some v -> Printf.sprintf "Some %d" v
                   | None -> "None"))
    done
  done;
  (match !mismatch with
  | Some msg -> Alcotest.fail ("FIFO transcript diverged across wraps: " ^ msg)
  | None -> ());
  check_int "model and ring drain together" (Queue.length model)
    (Seq_ring.length q)

(* The same adversarial tag width on the runtime instantiation, under
   4-domain bounded churn: wrapping tags must not let the audit catch a
   duplicated or invented value. *)
let wraparound_churn_rt () =
  let n = 4 in
  let q = Rt_ring.create ~seq_bits:6 ~capacity:4 ~n () in
  let report =
    Aba_runtime.Harness.churn ~mix:Aba_runtime.Harness.Bounded ~n ~ops:2000
      ~push:(fun ~pid v -> Rt_ring.try_enqueue q ~pid v)
      ~pop:(fun ~pid -> Rt_ring.try_dequeue q ~pid)
      ()
  in
  (match report.Aba_runtime.Harness.outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("wraparound churn audit: " ^ msg));
  check_int "conservation" report.Aba_runtime.Harness.pushed
    (report.Aba_runtime.Harness.popped + report.Aba_runtime.Harness.remaining)

(* ----- Bounded churn audits (the acceptance workload) ----- *)

let churn_audit name push pop () =
  let report =
    Aba_runtime.Harness.churn ~mix:Aba_runtime.Harness.Bounded ~n:4 ~ops:5000
      ~push ~pop ()
  in
  (match report.Aba_runtime.Harness.outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (name ^ " audit: " ^ msg));
  check_bool (name ^ ": made progress") true
    (report.Aba_runtime.Harness.popped > 0);
  check_int
    (name ^ ": conservation")
    report.Aba_runtime.Harness.pushed
    (report.Aba_runtime.Harness.popped + report.Aba_runtime.Harness.remaining)

let ring_churn =
  let q = lazy (Rt_ring.create ~capacity:64 ~n:4 ()) in
  churn_audit "rt ring"
    (fun ~pid v -> Rt_ring.try_enqueue (Lazy.force q) ~pid v)
    (fun ~pid -> Rt_ring.try_dequeue (Lazy.force q) ~pid)

let blocking_churn =
  let q = lazy (Blocking.create ~max_polls:4 ~capacity:64 ~n:4 ()) in
  churn_audit "blocking ring"
    (fun ~pid v -> Blocking.enqueue (Lazy.force q) ~pid v)
    (fun ~pid -> Rt_ring.try_dequeue (Blocking.ring (Lazy.force q)) ~pid)

let two_lock_churn =
  let q = lazy (Two_lock.create ~capacity:64 ~n:4 ()) in
  churn_audit "two-lock"
    (fun ~pid v -> Two_lock.try_enqueue (Lazy.force q) ~pid v)
    (fun ~pid -> Two_lock.try_dequeue (Lazy.force q) ~pid)

(* ----- Blocking wrapper ----- *)

let blocking_bounds_and_obs () =
  let obs = Obs.create ~n:1 () in
  let q = Blocking.create ~obs ~max_polls:3 ~capacity:2 ~n:1 () in
  check_bool "enq 1" true (Blocking.enqueue q ~pid:0 1);
  check_bool "enq 2" true (Blocking.enqueue q ~pid:0 2);
  (* Nobody will drain: the wait window must expire against the bound. *)
  check_bool "enq on full times out" false (Blocking.enqueue q ~pid:0 3);
  check_bool "deq 1" true (Blocking.dequeue q ~pid:0 = Some 1);
  check_bool "deq 2" true (Blocking.dequeue q ~pid:0 = Some 2);
  check_bool "deq on empty times out" true (Blocking.dequeue q ~pid:0 = None);
  (* The wait phase is recorded separately from the ring's own events:
     exactly one full-side and one empty-side wait, both timeouts, each
     charged max_polls retries. *)
  check_int "one wait-full event" 1 (Obs.op_count obs Obs.Wait_full);
  check_int "one wait-empty event" 1 (Obs.op_count obs Obs.Wait_empty);
  check_int "wait-full polls" 3 (Obs.retry_count obs Obs.Wait_full);
  check_int "wait-empty polls" 3 (Obs.retry_count obs Obs.Wait_empty);
  let timeouts =
    List.filter
      (fun (e : Obs.event) ->
        (e.kind = Obs.Wait_full || e.kind = Obs.Wait_empty)
        && e.outcome = Obs.Timeout)
      (Obs.timeline obs)
  in
  check_int "both waits timed out" 2 (List.length timeouts)

(* Producer/consumer across the bound: a capacity-2 queue moves 500
   values intact because full-side waits find space when the consumer
   drains.  [max_polls] is large enough that a descheduled counterparty
   cannot starve the window on one core. *)
let blocking_producer_consumer () =
  let q = Blocking.create ~max_polls:1_000_000 ~capacity:2 ~n:2 () in
  let total = 500 in
  let results =
    Aba_runtime.Harness.run_domains ~n:2 (fun d ->
        if d = 0 then begin
          let sent = ref 0 in
          for v = 1 to total do
            if Blocking.enqueue q ~pid:0 v then incr sent
          done;
          !sent
        end
        else begin
          let got = ref 0 and last = ref 0 and ordered = ref true in
          while !got < total do
            match Blocking.dequeue q ~pid:1 with
            | Some v ->
                if v <= !last then ordered := false;
                last := v;
                incr got
            | None -> ()
          done;
          if !ordered then !got else -1
        end)
  in
  check_int "all values sent" total results.(0);
  check_int "all values received in order" total results.(1)

(* Wait-phase pacing discipline: the per-pid backoff window must read
   its base value between operations — in particular after a timed-out
   wait, which walks the window all the way up to its max.  The
   regression was a timeout path that left the window inflated, so the
   next operation's first polls were paced as if it had already been
   waiting. *)
let blocking_wait_window_reset () =
  let q =
    Blocking.create
      ~backoff:(Backoff.Exp { min_spins = 1; max_spins = 64 })
      ~max_polls:8 ~capacity:2 ~n:1 ()
  in
  check_int "base window before any wait" 1 (Blocking.wait_spins q ~pid:0);
  check_bool "enq 1" true (Blocking.enqueue q ~pid:0 1);
  check_bool "enq 2" true (Blocking.enqueue q ~pid:0 2);
  check_int "fast-path enqueues leave the window untouched" 1
    (Blocking.wait_spins q ~pid:0);
  (* Single domain, full queue: the wait can only time out, and its 8
     backoff-paced polls double the window well past the base. *)
  check_bool "enq on full times out" false (Blocking.enqueue q ~pid:0 3);
  check_int "post-timeout window is back at base" 1
    (Blocking.wait_spins q ~pid:0);
  check_bool "deq 1" true (Blocking.dequeue q ~pid:0 = Some 1);
  check_bool "deq 2" true (Blocking.dequeue q ~pid:0 = Some 2);
  check_bool "deq on empty times out" true (Blocking.dequeue q ~pid:0 = None);
  check_int "post-empty-timeout window is back at base" 1
    (Blocking.wait_spins q ~pid:0)

let blocking_validation () =
  check_bool "max_polls 0 rejected" true
    (try
       ignore (Blocking.create ~max_polls:0 ~capacity:1 ~n:1 ());
       false
     with Invalid_argument _ -> true)

(* ----- Two-lock baseline ----- *)

let two_lock_fifo () =
  let q = Two_lock.create ~capacity:2 ~n:1 () in
  check_bool "deq on empty" true (Two_lock.try_dequeue q ~pid:0 = None);
  check_bool "enq 1" true (Two_lock.try_enqueue q ~pid:0 1);
  check_bool "enq 2" true (Two_lock.try_enqueue q ~pid:0 2);
  check_bool "enq on full fails" false (Two_lock.try_enqueue q ~pid:0 3);
  check_int "length" 2 (Two_lock.length q);
  check_bool "deq 1" true (Two_lock.try_dequeue q ~pid:0 = Some 1);
  check_bool "deq 2" true (Two_lock.try_dequeue q ~pid:0 = Some 2);
  check_bool "drained" true (Two_lock.try_dequeue q ~pid:0 = None);
  check_int "dequeue_or default" 7 (Two_lock.dequeue_or q ~pid:0 ~default:7)

(* ----- Observability integration ----- *)

let ring_obs_counts () =
  let obs = Obs.create ~n:1 () in
  let q = Rt_ring.create ~obs ~capacity:2 ~n:1 () in
  ignore (Rt_ring.try_enqueue q ~pid:0 1 : bool);
  ignore (Rt_ring.try_enqueue q ~pid:0 2 : bool);
  ignore (Rt_ring.try_enqueue q ~pid:0 3 : bool);
  ignore (Rt_ring.try_dequeue q ~pid:0 : int option);
  ignore (Rt_ring.dequeue_or q ~pid:0 ~default:0 : int);
  ignore (Rt_ring.try_dequeue q ~pid:0 : int option);
  check_int "three enqueue events" 3 (Obs.op_count obs Obs.Enqueue);
  check_int "three dequeue events" 3 (Obs.op_count obs Obs.Dequeue);
  let by outcome kind =
    List.length
      (List.filter
         (fun (e : Obs.event) -> e.kind = kind && e.outcome = outcome)
         (Obs.timeline obs))
  in
  check_int "one full enqueue" 1 (by Obs.Fail Obs.Enqueue);
  check_int "one empty dequeue" 1 (by Obs.Empty Obs.Dequeue)

let ring_space_accounting () =
  (* One CAS word per end plus one seq and one value register per slot:
     the measured space is 2 + 2*capacity base objects — the m the DESIGN
     note compares against the paper's per-operation bounds.  A fresh
     memory instance, because [space] reports every object the instance
     ever created and [Seq_ring] is shared across the tests above. *)
  let module M = (val Seq_mem.make ()) in
  let module Q = Ring.Make (M) in
  let q = Q.create ~capacity:3 ~n:1 () in
  let entries = Q.space q in
  let count prefix =
    List.length
      (List.filter
         (fun (name, _) -> String.length name >= String.length prefix
                           && String.sub name 0 (String.length prefix) = prefix)
         entries)
  in
  check_int "one head" 1 (count "ring.head");
  check_int "one tail" 1 (count "ring.tail");
  check_int "capacity seq words" 3 (count "ring.seq[");
  check_int "capacity value words" 3 (count "ring.val[")

let suite =
  [
    Alcotest.test_case "ring FIFO and capacity bounds (seq)" `Quick
      fifo_and_bounds;
    Alcotest.test_case "ring create validation" `Quick create_validation;
    Alcotest.test_case "4-bit slot tags: FIFO across ~25 wraps" `Quick
      wraparound_fifo;
    Alcotest.test_case "6-bit slot tags: 4-domain churn audit" `Quick
      wraparound_churn_rt;
    Alcotest.test_case "rt ring: 4-domain bounded churn audit" `Quick
      ring_churn;
    Alcotest.test_case "blocking ring: 4-domain bounded churn audit" `Quick
      blocking_churn;
    Alcotest.test_case "two-lock: 4-domain bounded churn audit" `Quick
      two_lock_churn;
    Alcotest.test_case "blocking waits: bounds, timeouts, wait obs" `Quick
      blocking_bounds_and_obs;
    Alcotest.test_case "blocking producer/consumer across the bound" `Quick
      blocking_producer_consumer;
    Alcotest.test_case "blocking wait window resets to base" `Quick
      blocking_wait_window_reset;
    Alcotest.test_case "blocking create validation" `Quick blocking_validation;
    Alcotest.test_case "two-lock FIFO and bounds" `Quick two_lock_fifo;
    Alcotest.test_case "ring obs: outcomes per kind" `Quick ring_obs_counts;
    Alcotest.test_case "ring space accounting" `Quick ring_space_accounting;
  ]
