(** Directed unit tests for the primitives layer: pids, bounded domains,
    the direct memory instance, and history utilities. *)

open Aba_primitives

let pid_basics () =
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all ~n:3);
  Alcotest.(check (list int)) "readers" [ 1; 2 ] (Pid.readers ~n:3);
  Alcotest.(check int) "writer" 0 Pid.writer;
  Alcotest.(check bool) "valid" true (Pid.is_valid ~n:3 2);
  Alcotest.(check bool) "invalid high" false (Pid.is_valid ~n:3 3);
  Alcotest.(check bool) "invalid negative" false (Pid.is_valid ~n:3 (-1));
  Alcotest.check_raises "check raises"
    (Invalid_argument "Pid.check: pid 5 out of range [0,3)") (fun () ->
      Pid.check ~n:3 5)

let bounded_composites () =
  let d = Bounded.triple (Bounded.int_mod 3) Bounded.bool
      (Bounded.option (Bounded.int_mod 2)) in
  Alcotest.(check (option int)) "size 3*2*3" (Some 18) (Bounded.size d);
  Alcotest.(check bool) "member" true (Bounded.mem d (2, true, Some 1));
  Alcotest.(check bool) "non-member" false (Bounded.mem d (3, true, None));
  let u = Bounded.unbounded ~describe:"anything" in
  Alcotest.(check (option int)) "unbounded size" None (Bounded.size u);
  Alcotest.(check bool) "unbounded membership" true (Bounded.mem u max_int);
  Alcotest.(check string) "bits describe" "4-bit mask"
    (Bounded.describe (Bounded.bits ~width:4));
  Alcotest.(check bool) "bits member" true (Bounded.mem (Bounded.bits ~width:4) 15);
  Alcotest.(check bool) "bits non-member" false
    (Bounded.mem (Bounded.bits ~width:4) 16)

let seq_mem_llsc_convention () =
  let module M = (val Seq_mem.make ()) in
  let l = M.make_llsc ~name:"l" ~show:string_of_int 5 in
  (* Appendix A: VL by a never-linked process is true until the first
     successful SC. *)
  Alcotest.(check bool) "vl before" true (M.vl l ~pid:2);
  Alcotest.(check bool) "sc without ll (fresh object)" true (M.sc l ~pid:1 6);
  Alcotest.(check bool) "vl after" false (M.vl l ~pid:2);
  Alcotest.(check bool) "second blind sc fails" false (M.sc l ~pid:1 7)

let seq_mem_space_accounting () =
  let module M = (val Seq_mem.make ()) in
  let _ = M.make_register ~name:"r1" ~show:string_of_int 0 in
  let _ =
    M.make_cas ~bound:(Bounded.int_mod 4) ~name:"c1" ~show:string_of_int 1
  in
  Alcotest.(check (list (pair string string)))
    "names and domains"
    [ ("r1", "unbounded"); ("c1", "[0..3]") ]
    (M.space ())

let seq_mem_writable_guard () =
  let module M = (val Seq_mem.make ()) in
  let c = M.make_cas ~name:"c" ~show:string_of_int 0 in
  Alcotest.check_raises "cas_write on plain CAS"
    (Invalid_argument "Seq_mem.cas_write: c is not a writable CAS object")
    (fun () -> M.cas_write c 1);
  let w = M.make_cas ~writable:true ~name:"w" ~show:string_of_int 0 in
  M.cas_write w 9;
  Alcotest.(check int) "written" 9 (M.cas_read w)

let seq_mem_bound_guard () =
  let module M = (val Seq_mem.make ()) in
  let r =
    M.make_register ~bound:(Bounded.int_mod 4) ~name:"r" ~show:string_of_int 0
  in
  M.write r 3;
  Alcotest.(check bool) "out-of-domain write rejected" true
    (match M.write r 4 with
    | () -> false
    | exception Invalid_argument _ -> true)

let event_utilities () =
  let h =
    [
      Event.Invoke (0, "a");
      Event.Invoke (1, "b");
      Event.Response (0, 1);
      Event.Invoke (0, "c");
      Event.Response (1, 2);
    ]
  in
  Alcotest.(check bool) "well formed" true (Event.well_formed h);
  let ops = Event.ops_of h in
  Alcotest.(check int) "three ops" 3 (List.length ops);
  Alcotest.(check bool) "pending op has no result" true
    (List.exists (fun (_, op, r) -> op = "c" && r = None) ops);
  let c = Event.complete h in
  Alcotest.(check int) "complete drops the pending invoke" 4 (List.length c);
  Alcotest.(check bool) "double response is malformed" false
    (Event.well_formed [ Event.Response (0, 1) ])

(* ----- Rand ----- *)

(* The first slot a pid probes through {!Rand} is
   [(xorshift_step (seed_of_pid i)) land max_int mod range].  A linear
   seeding like [(i * 2) + 1] makes that first pick periodic in the pid
   (period 8 over a 16-slot array, odd slots only), so neighbouring pids
   collide systematically.  The splitmix64 seeding must (a) give distinct
   nonzero seeds and (b) spread the first picks over most of the slot
   range, both parities included. *)
let rand_seeding_disperses_first_picks () =
  let pids = List.init 64 Fun.id in
  let seeds = List.map Rand.seed_of_pid pids in
  Alcotest.(check bool)
    "seeds are nonzero" true
    (List.for_all (fun s -> s > 0) seeds);
  Alcotest.(check int)
    "seeds are pairwise distinct" 64
    (List.length (List.sort_uniq compare seeds));
  let range = 16 in
  let first_pick i =
    Rand.xorshift_step (Rand.seed_of_pid i) land max_int mod range
  in
  let picks = List.map first_pick (List.init 16 Fun.id) in
  let distinct = List.length (List.sort_uniq compare picks) in
  Alcotest.(check bool)
    (Printf.sprintf "16 pids spread over >8 of 16 slots (got %d)" distinct)
    true (distinct > 8);
  Alcotest.(check bool)
    "both parities are picked" true
    (List.exists (fun p -> p mod 2 = 0) picks
    && List.exists (fun p -> p mod 2 = 1) picks)

let rand_state_api () =
  let r = Rand.create ~pid:3 in
  (* The boxed state must agree with the raw step on the same seed. *)
  let s0 = Rand.seed_of_pid 3 in
  let s1 = Rand.xorshift_step s0 in
  Alcotest.(check int) "next matches raw step" s1 (Rand.next r);
  let b = 10 in
  let ok = ref true in
  for _ = 1 to 1000 do
    let v = Rand.next_int r b in
    if v < 0 || v >= b then ok := false
  done;
  Alcotest.(check bool) "next_int stays in range" true !ok;
  Alcotest.check_raises "next_int rejects bound 0"
    (Invalid_argument "Rand.next_int: bound must be positive") (fun () ->
      ignore (Rand.next_int r 0))

let suite =
  [
    Alcotest.test_case "pid basics" `Quick pid_basics;
    Alcotest.test_case "splitmix64 seeding disperses first picks" `Quick
      rand_seeding_disperses_first_picks;
    Alcotest.test_case "rand state api" `Quick rand_state_api;
    Alcotest.test_case "bounded composites" `Quick bounded_composites;
    Alcotest.test_case "seq_mem LL/SC convention" `Quick
      seq_mem_llsc_convention;
    Alcotest.test_case "seq_mem space accounting" `Quick
      seq_mem_space_accounting;
    Alcotest.test_case "seq_mem writable guard" `Quick seq_mem_writable_guard;
    Alcotest.test_case "seq_mem bound guard" `Quick seq_mem_bound_guard;
    Alcotest.test_case "event utilities" `Quick event_utilities;
  ]
