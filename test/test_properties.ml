(** Property-based tests (qcheck) for the supporting machinery: bounded
    domains, the GetSeq pool, histories, and the linearizability checker
    itself (validated against a brute-force reference on tiny histories). *)

open Aba_primitives

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* --- Bounded domains --- *)

let bounded_int_range =
  qtest "int_range membership matches bounds"
    QCheck2.Gen.(triple (int_range (-20) 20) (int_range (-20) 20) small_int)
    (fun (a, b, v) ->
      let lo = min a b and hi = max a b in
      let d = Bounded.int_range ~lo ~hi in
      Bounded.mem d v = (lo <= v && v <= hi)
      && Bounded.size d = Some (hi - lo + 1))

let bounded_pair_size =
  qtest "pair size is the product"
    QCheck2.Gen.(pair (int_range 1 20) (int_range 1 20))
    (fun (a, b) ->
      let d = Bounded.pair (Bounded.int_mod a) (Bounded.int_mod b) in
      Bounded.size d = Some (a * b))

let bounded_option =
  qtest "option adds exactly bottom"
    QCheck2.Gen.(pair (int_range 1 30) small_int)
    (fun (m, v) ->
      let d = Bounded.option (Bounded.int_mod m) in
      Bounded.size d = Some (m + 1)
      && Bounded.mem d None
      && Bounded.mem d (Some v) = (0 <= v && v < m))

(* --- Univ --- *)

let univ_roundtrip =
  qtest "embed/project roundtrip; foreign projection fails"
    QCheck2.Gen.(pair small_int small_int)
    (fun (x, y) ->
      let e1 = Univ.create () and e2 = Univ.create () in
      let u1 = e1.Univ.inj x and u2 = e2.Univ.inj y in
      e1.Univ.prj u1 = Some x
      && e2.Univ.prj u2 = Some y
      && e1.Univ.prj u2 = None
      && e2.Univ.prj u1 = None
      && Univ.equal u1 u1
      && not (Univ.equal u1 u2))

(* --- Seq_pool: the Figure 4 GetSeq guarantees --- *)

(* Whatever the announce array says, the returned number is in range and
   avoids both the announced-own numbers and the last n+1 returns. *)
let seq_pool_fresh =
  let gen =
    QCheck2.Gen.(
      pair (int_range 2 8) (list_size (int_range 1 60) (int_range 0 100)))
  in
  qtest "pool avoids announced and recent numbers" gen (fun (n, noise) ->
      let pool = Aba_core.Seq_pool.create ~n () in
      let announce = Array.make n None in
      let recent = ref [] in
      let ok = ref true in
      List.iteri
        (fun i nz ->
          (* Adversarially mutate the announce array between calls. *)
          let slot = nz mod n in
          announce.(slot) <-
            (if nz mod 3 = 0 then None
             else Some ((if nz mod 2 = 0 then 0 else 1), nz mod (2 * n + 2)));
          let seen = ref None in
          let s =
            Aba_core.Seq_pool.next pool ~me:0 ~read_announce:(fun c ->
                seen := Some c;
                announce.(c))
          in
          (* In range. *)
          if s < 0 || s > 2 * n + 1 then ok := false;
          (* Exactly one announce entry was read. *)
          if !seen = None then ok := false;
          (* Not among the last n returns (usedQ guarantee). *)
          let last_n =
            List.filteri (fun j _ -> j < n) !recent
          in
          if List.mem s last_n then ok := false;
          recent := s :: !recent;
          ignore i)
        noise;
      !ok)

(* The pool never returns a number currently announced for it, when the
   announce array is stable: scan a full round first, then check. *)
let seq_pool_avoids_announced =
  qtest "stable announcements are avoided after one round"
    QCheck2.Gen.(int_range 2 8)
    (fun n ->
      let pool = Aba_core.Seq_pool.create ~n () in
      let blocked = 3 mod (2 * n + 2) in
      let announce = Array.make n (Some (0, blocked)) in
      (* One full scan so [na] is fully populated... *)
      for _ = 1 to n do
        ignore (Aba_core.Seq_pool.next pool ~me:0 ~read_announce:(fun c -> announce.(c)))
      done;
      (* ...then every further number avoids the announced one. *)
      let ok = ref true in
      for _ = 1 to 3 * n do
        let s =
          Aba_core.Seq_pool.next pool ~me:0 ~read_announce:(fun c -> announce.(c))
        in
        if s = blocked then ok := false
      done;
      !ok)

(* --- The Figure 3 (value, mask) codec --- *)

(* The packed representation must be injective: the runtime backend CASes
   the encoded int directly, so any two distinct (value, mask) pairs that
   collided would make hardware CAS succeed where the structural CAS of the
   seq/sim backends fails. *)
module F3 = Aba_core.Llsc_from_cas

let gen_codec_case =
  (* n processes (1..40 as in the runtime wrappers), a value in the packed
     domain including the default bound's -1, and an n-bit mask. *)
  QCheck2.Gen.(
    int_range 1 40 >>= fun n ->
    triple (return n)
      (int_range (-1) ((1 lsl min 30 (62 - n)) - 1))
      (int_range 0 ((1 lsl n) - 1)))

let codec_roundtrip =
  qtest "fig3 codec: decode (encode v) = v" gen_codec_case
    (fun (n, value, mask) ->
      let c = F3.codec ~n in
      let v = { F3.value; mask } in
      c.Mem_intf.decode (c.Mem_intf.encode v) = v)

let codec_roundtrip_packed =
  qtest "fig3 codec: encode (decode p) = p"
    QCheck2.Gen.(pair (int_range 1 40) (int_range min_int max_int))
    (fun (n, p) ->
      let c = F3.codec ~n in
      c.Mem_intf.encode (c.Mem_intf.decode p) = p)

let codec_respects_bound =
  (* Encoding stays within one immediate int without overflowing into the
     sign bit: ordering of encoded words follows the (value, mask) pairs
     lexicographically, so in particular encode is monotone in value. *)
  qtest "fig3 codec: packing isolates value and mask bits" gen_codec_case
    (fun (n, value, mask) ->
      let c = F3.codec ~n in
      let p = c.Mem_intf.encode { F3.value; mask } in
      p asr n = value && p land ((1 lsl n) - 1) = mask)

(* --- Event histories --- *)

let gen_history =
  (* Random well-formed-ish event list over 3 pids, ops/res are ints. *)
  QCheck2.Gen.(
    list_size (int_range 0 20) (pair (int_range 0 2) bool))

let history_of raw =
  (* Build a well-formed history: invoke if idle, respond if pending. *)
  let pending = Array.make 3 false in
  List.filter_map
    (fun (p, _) ->
      if pending.(p) then begin
        pending.(p) <- false;
        Some (Event.Response (p, p))
      end
      else begin
        pending.(p) <- true;
        Some (Event.Invoke (p, p))
      end)
    raw

let event_well_formed =
  qtest "constructed histories are well-formed" gen_history (fun raw ->
      Event.well_formed (history_of raw))

let event_complete =
  qtest "complete drops exactly the pending invocations" gen_history
    (fun raw ->
      let h = history_of raw in
      let c = Event.complete h in
      Event.well_formed c
      && List.for_all
           (fun (_, _, res) -> res <> None)
           (Event.ops_of c)
      && List.length c <= List.length h)

let event_ops_pairing =
  qtest "ops_of pairs every response" gen_history (fun raw ->
      let h = history_of raw in
      let ops = Event.ops_of h in
      let responses =
        List.length (List.filter (fun e -> not (Event.is_invoke e)) h)
      in
      List.length (List.filter (fun (_, _, r) -> r <> None) ops) = responses)

(* --- Lin_check vs. brute force --- *)

module RSpec = Aba_spec.Register_spec
module RCheck = Aba_spec.Lin_check.Make (RSpec)

(* Reference: enumerate all permutations of completed ops. *)
let rec insertions x = function
  | [] -> [ [ x ] ]
  | y :: rest as l ->
      (x :: l) :: List.map (fun r -> y :: r) (insertions x rest)

let rec permutations = function
  | [] -> [ [] ]
  | x :: rest -> List.concat_map (insertions x) (permutations rest)

(* One record per completed operation: pid, op, result, invocation and
   response positions.  Operation k is the k-th response in the history;
   per-pid FIFO pairing recovers its operation. *)
type brute_op = {
  b_pid : int;
  b_op : RSpec.op;
  b_res : RSpec.res;
  b_inv : int;
  b_rsp : int;
}

let brute_ops h =
  let per_pid_ops : (int, (RSpec.op * int) Queue.t) Hashtbl.t =
    Hashtbl.create 4
  in
  let out = ref [] in
  List.iteri
    (fun time e ->
      match e with
      | Event.Invoke (p, op) ->
          let q =
            match Hashtbl.find_opt per_pid_ops p with
            | Some q -> q
            | None ->
                let q = Queue.create () in
                Hashtbl.replace per_pid_ops p q;
                q
          in
          Queue.add (op, time) q
      | Event.Response (p, r) ->
          let op, inv = Queue.pop (Hashtbl.find per_pid_ops p) in
          out :=
            { b_pid = p; b_op = op; b_res = r; b_inv = inv; b_rsp = time }
            :: !out)
    h;
  List.rev !out

let brute_force_linearizable h =
  let ops = brute_ops h in
  let respects_real_time order =
    (* If a responds before b is invoked, a must precede b. *)
    let rec check = function
      | [] -> true
      | x :: rest ->
          List.for_all (fun y -> not (y.b_rsp < x.b_inv)) rest && check rest
    in
    check order
  in
  let replays order =
    let st = ref (RSpec.init ~n:3) in
    List.for_all
      (fun o ->
        let st', r' = RSpec.apply !st o.b_pid o.b_op in
        st := st';
        RSpec.equal_res o.b_res r')
      order
  in
  List.exists
    (fun order -> respects_real_time order && replays order)
    (permutations ops)

let gen_register_history =
  (* Short histories on a register with small values so brute force is
     feasible. *)
  QCheck2.Gen.(
    list_size (int_range 0 10)
      (triple (int_range 0 2) bool (int_range 0 2)))

let checker_matches_brute_force =
  qtest ~count:300 "Lin_check agrees with brute force (register)"
    gen_register_history (fun raw ->
      (* Build a random complete history with plausible-but-possibly-wrong
         results so both verdicts get exercised. *)
      let pending : (int, RSpec.op) Hashtbl.t = Hashtbl.create 4 in
      let h =
        List.filter_map
          (fun (p, is_write, v) ->
            match Hashtbl.find_opt pending p with
            | Some op ->
                Hashtbl.remove pending p;
                let res =
                  match op with
                  | RSpec.Read -> RSpec.Read_result (v - 1)
                  | RSpec.Write _ -> RSpec.Write_done
                in
                Some (Event.Response (p, res))
            | None ->
                let op = if is_write then RSpec.Write v else RSpec.Read in
                Hashtbl.replace pending p op;
                Some (Event.Invoke (p, op)))
          raw
      in
      let h = Event.complete h in
      if List.length (Event.ops_of h) > 6 then true
      else
        let fast = RCheck.check_ok ~n:3 h in
        let slow = brute_force_linearizable h in
        fast = slow)

(* --- Explore.count_schedules --- *)

let count_schedules_props =
  qtest "count_schedules is the multinomial"
    QCheck2.Gen.(pair (int_range 0 6) (int_range 0 6))
    (fun (a, b) ->
      let rec fact k = if k <= 1 then 1 else k * fact (k - 1) in
      Aba_sim.Explore.count_schedules ~n_actions:[| a; b |]
      = fact (a + b) / (fact a * fact b))

let suite =
  [
    bounded_int_range;
    bounded_pair_size;
    bounded_option;
    univ_roundtrip;
    codec_roundtrip;
    codec_roundtrip_packed;
    codec_respects_bound;
    seq_pool_fresh;
    seq_pool_avoids_announced;
    event_well_formed;
    event_complete;
    event_ops_pairing;
    checker_matches_brute_force;
    count_schedules_props;
  ]
