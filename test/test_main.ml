let () =
  Alcotest.run "aba"
    [
      ("aba-implementations", Test_aba_impls.suite);
      ("llsc-implementations", Test_llsc_impls.suite);
      ("exhaustive-exploration", Test_explore.suite);
      ("dpor", Test_dpor.suite);
      ("lower-bounds", Test_lowerbound.suite);
      ("applications", Test_apps.suite);
      ("primitives", Test_primitives.suite);
      ("simulator", Test_sim.suite);
      ("lin-check", Test_lin_check.suite);
      ("weak-condition", Test_weak_cond.suite);
      ("properties", Test_properties.suite);
      ("runtime", Test_runtime.suite);
      ("reclamation", Test_reclaim.suite);
      ("ablations", Test_ablation.suite);
      ("differential", Test_differential.suite);
      ("backends", Test_backends.suite);
      ("contention", Test_contention.suite);
      ("elimination", Test_elimination.suite);
      ("queue", Test_queue.suite);
      ("observability", Test_obs.suite);
      ("service", Test_service.suite);
      ("detectable", Test_detectable.suite);
    ]
