(** The sharded service tier: key routing, sequential transparency of a
    1-shard service, deterministic and churning steal paths under all
    three head protections, spill-on-full, the flat-combining submit
    protocol (differential against the direct path, plus a concurrent
    counter audit), and the per-domain churn split.

    The load-bearing checks are the multiset audits: a steal moves items
    by ordinary pop-then-push under the victim's own protection scheme,
    so whatever the interleaving, nothing may be duplicated, lost or
    invented — the same ABA-corruption signature the bare structures are
    audited for, now across shard boundaries. *)

module Sv = Aba_apps.Service
module H = Aba_runtime.Harness
module T = Aba_runtime.Rt_treiber
module C = Aba_core.Combining

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A key that routes to shard [s] of [nshards] — found by search; the
   splitmix64 dispersion makes the expected search length ~ [nshards]. *)
let key_for ~nshards s =
  let rec find k =
    if Sv.hash_key k mod nshards = s then k else find (k + 1)
  in
  find 0

(* ----- Routing ----- *)

let routing_in_range =
  qtest "shard_of_key lands in [0, nshards) and is stable"
    QCheck2.Gen.(pair (int_range 1 16) (int_range 0 1_000_000))
    (fun (nshards, key) ->
      let t =
        Sv.Stack_service.create ~steal:false ~shards:nshards ~capacity:4 ~n:1
          ()
      in
      let s = Sv.Stack_service.shard_of_key t key in
      s >= 0 && s < nshards && s = Sv.Stack_service.shard_of_key t key)

let routing_disperses () =
  (* 4 shards, keys 0..999: splitmix64 must not collapse a dense key
     range onto a few shards — every shard sees a reasonable share. *)
  let nshards = 4 in
  let counts = Array.make nshards 0 in
  let t = Sv.Stack_service.create ~steal:false ~shards:nshards ~capacity:4 ~n:1 () in
  for k = 0 to 999 do
    let s = Sv.Stack_service.shard_of_key t k in
    counts.(s) <- counts.(s) + 1
  done;
  Array.iteri
    (fun s c ->
      check_bool (Printf.sprintf "shard %d share %d in [150, 350]" s c) true
        (c >= 150 && c <= 350))
    counts

(* ----- Sequential transparency ----- *)

(* A 1-shard service is the bare structure plus a modulo-1 hash: any
   sequential op sequence must replay the bare Treiber transcript word
   for word, steal or no steal (with one shard there is nobody to steal
   from or spill to). *)
let one_shard_transparency =
  let gen =
    QCheck2.Gen.(
      pair bool
        (list_size (int_range 1 100)
           (triple (int_range 0 1) (int_range 0 100) (int_range 0 1_000_000))))
  in
  qtest ~count:60 "1-shard service replays the bare stack transcript" gen
    (fun (steal, ops) ->
      let bare = T.create ~protection:(T.Tag_bits 16) ~capacity:16 ~n:1 () in
      let svc = Sv.Stack_service.create ~steal ~shards:1 ~capacity:16 ~n:1 () in
      List.for_all
        (fun (op, v, key) ->
          if op = 0 then T.push bare ~pid:0 v = Sv.Stack_service.push svc ~pid:0 ~key v
          else T.pop bare ~pid:0 = Sv.Stack_service.pop svc ~pid:0 ~key)
        ops)

(* ----- Deterministic steal path ----- *)

let forced_steal () =
  let nshards = 2 in
  let k0 = key_for ~nshards 0 and k1 = key_for ~nshards 1 in
  let t =
    Sv.Stack_service.create ~steal:true ~steal_batch:4 ~shards:nshards
      ~capacity:64 ~n:1 ()
  in
  for v = 1 to 10 do
    check_bool "seed push" true (Sv.Stack_service.push t ~pid:0 ~key:k0 v)
  done;
  check_int "victim depth before" 10 (Sv.Stack_service.depths t).(0);
  (* Pop through the other shard's key: home is empty, the steal must
     deliver one of the seeded values and rebalance up to batch-1 more. *)
  (match Sv.Stack_service.pop t ~pid:0 ~key:k1 with
  | Some v -> check_bool "stolen value is a seeded one" true (v >= 1 && v <= 10)
  | None -> Alcotest.fail "steal found nothing despite a deep victim");
  let st = Sv.Stack_service.stats t in
  check_int "one steal" 1 st.Sv.Stack_router.steals;
  check_int "batch moved" 4 st.Sv.Stack_router.stolen;
  let d = Sv.Stack_service.depths t in
  check_int "items conserved" 9 (d.(0) + d.(1));
  check_int "rebalanced into home" 3 d.(1);
  (* Drain everything through both keys: the multiset must be exactly
     the unpopped seeds, each exactly once. *)
  let seen = ref [] in
  let rec drain key =
    match Sv.Stack_service.pop t ~pid:0 ~key with
    | Some v ->
        seen := v :: !seen;
        drain key
    | None -> ()
  in
  drain k0;
  drain k1;
  check_int "drained the rest" 9 (List.length !seen);
  check_bool "no duplicates, no inventions" true
    (List.sort_uniq compare !seen = List.sort compare !seen
    && List.for_all (fun v -> v >= 1 && v <= 10) !seen)

let steal_disabled_is_local () =
  let nshards = 2 in
  let k0 = key_for ~nshards 0 and k1 = key_for ~nshards 1 in
  let t = Sv.Stack_service.create ~steal:false ~shards:nshards ~capacity:64 ~n:1 () in
  for v = 1 to 10 do
    ignore (Sv.Stack_service.push t ~pid:0 ~key:k0 v : bool)
  done;
  check_bool "no steal: other key sees empty" true
    (Sv.Stack_service.pop t ~pid:0 ~key:k1 = None);
  let st = Sv.Stack_service.stats t in
  check_int "no steals counted" 0 st.Sv.Stack_router.steals;
  check_int "no items moved" 0 st.Sv.Stack_router.stolen

let spill_on_full () =
  let nshards = 2 in
  let k0 = key_for ~nshards 0 in
  let t =
    Sv.Stack_service.create ~steal:true ~shards:nshards ~capacity:4 ~n:1 ()
  in
  (* Fill the home shard, then keep pushing the same key: the spill path
     must land the overflow on the other shard until it too is full. *)
  for v = 1 to 8 do
    check_bool (Printf.sprintf "push %d accepted" v) true
      (Sv.Stack_service.push t ~pid:0 ~key:k0 v)
  done;
  check_bool "9th push fails: every pool exhausted" false
    (Sv.Stack_service.push t ~pid:0 ~key:k0 9);
  let st = Sv.Stack_service.stats t in
  check_int "spills counted" 4 st.Sv.Stack_router.spills;
  let d = Sv.Stack_service.depths t in
  check_int "home full" 4 d.(0);
  check_int "spill target full" 4 d.(1)

(* ----- Concurrent steal churn, all three protections ----- *)

(* Skewed-key churn: every value is pushed under a key of shard 0, pops
   alternate between the hot key and a cold one, so pops through the
   cold key exercise the steal path constantly while pushes keep the
   victim deep.  Whatever interleaves, the multiset audit must stay
   clean — steals move values, never mint them. *)
let steal_churn protection () =
  let nshards = 4 and n = 4 in
  let hot = key_for ~nshards 0 and cold = key_for ~nshards 1 in
  let obs = Aba_obs.Obs.create ~n ~trace:0 () in
  let t =
    Sv.Stack_service.create ~protection ~steal:true ~steal_batch:4
      ~shards:nshards ~capacity:256 ~n ~obs ()
  in
  let flip = Array.init n (fun _ -> ref true) in
  let report =
    H.churn ~n ~ops:2_000
      ~push:(fun ~pid v -> Sv.Stack_service.push t ~pid ~key:hot v)
      ~pop:(fun ~pid ->
        let f = flip.(pid) in
        f := not !f;
        Sv.Stack_service.pop t ~pid ~key:(if !f then hot else cold))
      ()
  in
  (match report.H.outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("multiset audit: " ^ msg));
  check_int "pushed = popped + remaining" report.H.pushed
    (report.H.popped + report.H.remaining);
  let st = Sv.Stack_service.stats t in
  check_bool "cold-key pops stole" true (st.Sv.Stack_router.steals > 0);
  (* Every steal attempt (successful or empty-handed) lands one [Steal]
     event on the service handle; successes are a subset. *)
  check_bool "steal events observed" true
    (Aba_obs.Obs.op_count obs Aba_obs.Obs.Steal >= st.Sv.Stack_router.steals)

(* ----- Flat combining ----- *)

(* Differential: a sequential op sequence through a combining service
   must produce exactly the direct service's results — sequentially
   every submit wins the claim and applies its own op, so the two paths
   run the same underlying operations in the same order. *)
let combining_differential =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 120)
        (triple (int_range 0 1) (int_range (-50) 50) (int_range 0 1_000)))
  in
  qtest ~count:60 "combining service replays the direct transcript" gen
    (fun ops ->
      let mk combining =
        Sv.Stack_service.create ~steal:false ~combining ~shards:2 ~capacity:32
          ~n:1 ()
      in
      let direct = mk false and combined = mk true in
      List.for_all
        (fun (op, v, key) ->
          if op = 0 then
            Sv.Stack_service.push direct ~pid:0 ~key v
            = Sv.Stack_service.push combined ~pid:0 ~key v
          else
            Sv.Stack_service.pop direct ~pid:0 ~key
            = Sv.Stack_service.pop combined ~pid:0 ~key)
        ops)

let combining_sequential_stats () =
  let t = Sv.Stack_service.create ~steal:false ~combining:true ~shards:2 ~capacity:8 ~n:2 () in
  check_bool "stats absent without combining" true
    (Sv.Stack_service.combining_stats
       (Sv.Stack_service.create ~steal:false ~shards:2 ~capacity:8 ~n:2 ())
    = None);
  let k = key_for ~nshards:2 0 in
  for v = 1 to 6 do
    ignore (Sv.Stack_service.push t ~pid:0 ~key:k v : bool)
  done;
  for _ = 1 to 6 do
    ignore (Sv.Stack_service.pop t ~pid:1 ~key:k : int option)
  done;
  match Sv.Stack_service.combining_stats t with
  | None -> Alcotest.fail "combining stats missing"
  | Some s ->
      check_int "every sequential submit led its own round" 12 s.C.scans;
      check_int "nothing adopted sequentially" 0 s.C.adopted;
      check_int "nothing fell back sequentially" 0 s.C.fallbacks;
      check_int "no batching without contention" 0 s.C.batched

(* The submit protocol on a bare combining instance: n domains hammer
   increments through one flat-combining cell; the applied total must be
   exact, every call must be accounted to exactly one of the three
   outcomes, and batched counts only others' ops. *)
let combining_concurrent_counter () =
  let n = 4 and per = 5_000 in
  let counter = Atomic.make 0 in
  let c =
    C.create ~n ~apply:(fun ~pid:_ d -> Atomic.fetch_and_add counter d) ()
  in
  ignore
    (H.run_domains ~n (fun pid ->
         for _ = 1 to per do
           ignore (C.submit c ~pid 1 : int)
         done)
      : unit array);
  check_int "every increment applied exactly once" (n * per)
    (Atomic.get counter);
  let s = C.stats c in
  check_int "calls conserved across outcomes" (n * per)
    (s.C.scans + s.C.adopted + s.C.fallbacks);
  check_int "batched = ops served for others = adopted" s.C.adopted s.C.batched

let combining_concurrent_service () =
  let n = 4 in
  let hot = key_for ~nshards:2 0 in
  let t =
    Sv.Stack_service.create ~steal:false ~combining:true ~shards:2
      ~capacity:256 ~n ()
  in
  let report =
    H.churn ~n ~ops:2_000
      ~push:(fun ~pid v -> Sv.Stack_service.push t ~pid ~key:hot v)
      ~pop:(fun ~pid -> Sv.Stack_service.pop t ~pid ~key:hot)
      ()
  in
  (match report.H.outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("multiset audit: " ^ msg));
  check_int "pushed = popped + remaining" report.H.pushed
    (report.H.popped + report.H.remaining)

(* ----- Combining create validation ----- *)

let role_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "neither scan nor apply rejected" true
    (bad (fun () -> C.create ~n:1 ()));
  check_bool "both scan and apply rejected" true
    (bad (fun () ->
         C.create ~n:1
           ~scan:(fun ~pid:_ -> (0, false))
           ~apply:(fun ~pid:_ d -> d)
           ()));
  let read = C.create ~n:1 ~scan:(fun ~pid:_ -> (7, false)) () in
  let flat = C.create ~n:1 ~apply:(fun ~pid:_ d -> d + 1) () in
  check_bool "submit on a read instance rejected" true
    (bad (fun () -> C.submit read ~pid:0 3));
  check_bool "dread on a flat instance rejected" true
    (bad (fun () -> C.dread flat ~pid:0));
  check_bool "read instance reads" true (C.dread read ~pid:0 = (7, false));
  check_int "flat instance applies" 4 (C.submit flat ~pid:0 3)

(* ----- Queue service sanity ----- *)

let queue_service_fifo_per_shard () =
  let t = Sv.Queue_service.create ~steal:false ~shards:2 ~capacity:16 ~n:1 () in
  let k = key_for ~nshards:2 1 in
  for v = 1 to 5 do
    check_bool "enq" true (Sv.Queue_service.push t ~pid:0 ~key:k v)
  done;
  for v = 1 to 5 do
    check_bool (Printf.sprintf "deq %d in FIFO order" v) true
      (Sv.Queue_service.pop t ~pid:0 ~key:k = Some v)
  done;
  check_bool "drained" true (Sv.Queue_service.pop t ~pid:0 ~key:k = None)

(* ----- Harness per-domain split ----- *)

let churn_by_domain () =
  let s = T.create ~protection:(T.Tag_bits 16) ~capacity:128 ~n:4 () in
  let report =
    H.churn ~n:4 ~ops:1_000
      ~push:(fun ~pid v -> T.push s ~pid v)
      ~pop:(fun ~pid -> T.pop s ~pid)
      ()
  in
  check_int "one row per domain" 4 (Array.length report.H.by_domain);
  let sp = Array.fold_left (fun a (p, _) -> a + p) 0 report.H.by_domain in
  let sq = Array.fold_left (fun a (_, q) -> a + q) 0 report.H.by_domain in
  check_int "per-domain pushes sum to the aggregate" report.H.pushed sp;
  check_int "per-domain pops sum to the aggregate" report.H.popped sq

let suite =
  [
    routing_in_range;
    Alcotest.test_case "dense keys disperse over shards" `Quick
      routing_disperses;
    one_shard_transparency;
    Alcotest.test_case "forced steal: delivery, rebalance, conservation"
      `Quick forced_steal;
    Alcotest.test_case "steal disabled: pops stay local" `Quick
      steal_disabled_is_local;
    Alcotest.test_case "spill on full home shard" `Quick spill_on_full;
    Alcotest.test_case "skewed steal churn, 4 domains: tag16" `Quick
      (steal_churn (T.Tag_bits 16));
    Alcotest.test_case "skewed steal churn, 4 domains: llsc" `Quick
      (steal_churn T.Llsc);
    Alcotest.test_case "skewed steal churn, 4 domains: hazard-reclaimed"
      `Quick
      (steal_churn (T.Reclaimed Aba_runtime.Rt_reclaim.Hazard));
    Alcotest.test_case "skewed steal churn, 4 domains: announced"
      `Quick
      (steal_churn (T.Announced 8));
    combining_differential;
    Alcotest.test_case "combining service: sequential stats" `Quick
      combining_sequential_stats;
    Alcotest.test_case "flat combining: concurrent counter exact" `Quick
      combining_concurrent_counter;
    Alcotest.test_case "combining service churn audit, 4 domains" `Quick
      combining_concurrent_service;
    Alcotest.test_case "combining role validation" `Quick role_validation;
    Alcotest.test_case "queue service: per-shard FIFO" `Quick
      queue_service_fifo_per_shard;
    Alcotest.test_case "churn reports per-domain splits" `Quick
      churn_by_domain;
  ]
