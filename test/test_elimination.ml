(** The elimination/combining layer: the slot-protocol codec, the adaptive
    range transition, Noop inertness, timeout behaviour, a real two-domain
    rendezvous, multi-domain churn audits of the elimination-backed stack
    under all three head protections, and the read-combining cache's
    sequential transparency.

    Like the contention layer, elimination is invisible to the seq/sim
    differential suites by design (sequential runs never fail a head CAS,
    so the exchanger is never consulted, and a sequential combining read
    always wins the claim and runs the real scan) — so the layer gets its
    own direct properties here, plus the sequential-equivalence checks
    that pin that invisibility down. *)

module E = Aba_runtime.Elimination
module H = Aba_runtime.Harness
module T = Aba_runtime.Rt_treiber

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ----- Slot codec ----- *)

let gen_state =
  QCheck2.Gen.(
    let v = int_range (-1000) 1000 in
    oneof
      [
        return E.Slot.Empty;
        map (fun v -> E.Slot.Waiting_push v) v;
        return E.Slot.Waiting_pop;
        map (fun v -> E.Slot.Exchanged v) v;
      ])

let slot_roundtrip =
  qtest "slot codec: decode (encode s) = s (incl. negative payloads)"
    gen_state (fun s -> E.Slot.decode (E.Slot.encode s) = s)

let slot_empty_is_zero () =
  check_int "Empty encodes to 0 (fresh Atomic array is all-Empty)" 0
    (E.Slot.encode E.Slot.Empty)

(* ----- Adaptive range ----- *)

let adapt_transitions =
  qtest "adapt: collision doubles (clamped), timeout halves (floor 1)"
    QCheck2.Gen.(pair (int_range 1 64) (int_range 1 64))
    (fun (slots, r) ->
      let range = min r slots in
      E.adapt ~slots ~range `Collision = min slots (range * 2)
      && E.adapt ~slots ~range `Timeout = max 1 (range / 2)
      && E.adapt ~slots ~range `Exchange = range
      && E.adapt ~slots ~range `Collision <= slots
      && E.adapt ~slots ~range `Timeout >= 1)

(* ----- Noop inertness ----- *)

let noop_inert () =
  let e = E.create ~spec:E.Noop ~n:4 () in
  check_bool "disabled" false (E.enabled e);
  check_int "no slots" 0 (E.slot_count e);
  check_bool "push falls through" false (E.exchange_push e ~pid:0 42);
  check_bool "pop falls through" true (E.exchange_pop e ~pid:0 = None);
  check_int "range reads 0" 0 (E.range e ~pid:0);
  let s = E.stats e in
  check_int "no attempts counted" 0 s.E.attempts

(* ----- Sequential timeouts ----- *)

(* With no counterparty an offer must be parked, time out, and be fully
   withdrawn: the array is all-Empty again, so an abandoned offer can
   never satisfy (or corrupt) a later exchange. *)
let sequential_timeout () =
  let spec =
    E.Exchanger
      { slots = 2; window = 2; backoff = Aba_primitives.Backoff.Noop }
  in
  let e = E.create ~spec ~n:1 () in
  check_bool "enabled" true (E.enabled e);
  check_int "slot count" 2 (E.slot_count e);
  for i = 1 to 10 do
    check_bool
      (Printf.sprintf "push attempt %d times out" i)
      false
      (E.exchange_push e ~pid:0 i);
    check_bool
      (Printf.sprintf "pop attempt %d times out" i)
      true
      (E.exchange_pop e ~pid:0 = None)
  done;
  for i = 0 to E.slot_count e - 1 do
    check_bool
      (Printf.sprintf "slot %d left Empty" i)
      true
      (E.peek e i = E.Slot.Empty)
  done;
  let s = E.stats e in
  check_int "attempts" 20 s.E.attempts;
  check_int "all timed out" 20 s.E.timeouts;
  check_int "none exchanged" 0 s.E.exchanges;
  (* Timeouts halve the range with floor 1, so it must sit at the floor. *)
  check_int "range concentrated at 1" 1 (E.range e ~pid:0)

let create_validation () =
  let bad slots window n =
    try
      ignore
        (E.create
           ~spec:
             (E.Exchanger
                { slots; window; backoff = Aba_primitives.Backoff.Noop })
           ~n ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "slots 0 rejected" true (bad 0 1 1);
  check_bool "window 0 rejected" true (bad 1 0 1);
  check_bool "n 0 rejected" true (bad 1 1 0)

(* ----- A real rendezvous ----- *)

(* Two domains, one slot, a wait window long enough to span an OS
   timeslice (this must pass on a single-core host, where the partner
   only runs when the waiter is preempted mid-window).  The exchange must
   deliver exactly the offered value and be counted on both sides. *)
let two_domain_exchange () =
  let spec =
    E.Exchanger
      {
        slots = 1;
        window = 200_000;
        backoff = Aba_primitives.Backoff.Exp { min_spins = 1; max_spins = 512 };
      }
  in
  let e = E.create ~spec ~n:2 () in
  let results =
    H.run_domains ~n:2 (fun pid ->
        if pid = 0 then begin
          let rec go tries =
            if tries > 10_000 then None
            else if E.exchange_push e ~pid 4242 then Some tries
            else go (tries + 1)
          in
          Option.is_some (go 1)
        end
        else begin
          let rec go tries =
            if tries > 10_000 then false
            else
              match E.exchange_pop e ~pid with
              | Some v -> v = 4242
              | None -> go (tries + 1)
          in
          go 1
        end)
  in
  check_bool "push eliminated" true results.(0);
  check_bool "pop received the offered value" true results.(1);
  let s = E.stats e in
  check_int "both sides counted one exchange" 2 s.E.exchanges;
  check_bool "slot released" true (E.peek e 0 = E.Slot.Empty)

(* ----- Elimination-backed Treiber stack ----- *)

(* Sequentially a head CAS never fails, so the exchanger is never
   consulted: the elimination-on stack must replay the elimination-off
   stack exactly, stats staying at zero.  This is the stack-level
   analogue of [Backoff.Noop] inertness. *)
let sequential_transparency () =
  let run elimination =
    let s =
      T.create ~elimination ~protection:(T.Tag_bits 16) ~capacity:16 ~n:2 ()
    in
    let log = ref [] in
    for i = 1 to 40 do
      log := Printf.sprintf "push %d=%b" i (T.push s ~pid:0 i) :: !log;
      if i mod 3 = 0 then
        log :=
          (match T.pop s ~pid:1 with
          | Some v -> Printf.sprintf "pop=%d" v
          | None -> "pop=empty")
          :: !log
    done;
    (List.rev !log, T.elimination_stats s)
  in
  let log_off, stats_off = run E.Noop in
  let log_on, stats_on = run E.default_spec in
  Alcotest.(check (list string)) "same transcript" log_off log_on;
  check_bool "no stats without the layer" true (stats_off = None);
  (match stats_on with
  | None -> Alcotest.fail "elimination stats missing"
  | Some s ->
      check_int "exchanger never consulted sequentially" 0 s.E.attempts)

(* Paired churn: every domain pops right after pushing, so the stack
   hovers near empty and push/pop pairs constantly meet — maximal
   elimination traffic.  The multiset audit must stay clean under all
   three head protections: elimination must never duplicate, lose or
   invent a value, whichever word is the correctness backbone. *)
let paired_churn protection needs_finish () =
  let s =
    T.create ~protection ~elimination:E.default_spec ~capacity:64 ~n:4 ()
  in
  let finish =
    if needs_finish then
      let rc = Option.get (T.reclaimer s) in
      fun ~pid ->
        Aba_runtime.Rt_reclaim.release rc ~pid;
        Aba_runtime.Rt_reclaim.flush rc ~pid
    else fun ~pid:_ -> ()
  in
  let report =
    H.churn ~mix:H.Paired ~n:4 ~ops:2_000
      ~push:(fun ~pid v -> T.push s ~pid v)
      ~pop:(fun ~pid -> T.pop s ~pid)
      ~finish ()
  in
  (match report.H.outcome with
  | Ok () -> ()
  | Error msg -> Alcotest.fail ("multiset audit: " ^ msg));
  check_int "pushed = popped + remaining" report.H.pushed
    (report.H.popped + report.H.remaining)

(* ----- Read combining ----- *)

module C = Aba_core.Combining
module I = Aba_core.Instances

(* Sequentially every combining read wins the claim and runs the real
   scan, so an [aba_rt ~combining:true] instance must replay the plain
   sequential reference word for word — the combining analogue of the
   transparency test above, through the Instances threading. *)
let combining_sequential_transparency =
  let gen =
    QCheck2.Gen.(
      list_size (int_range 1 80)
        (triple (int_range 0 3) (int_range 0 1) (int_range 0 100)))
  in
  qtest ~count:40 "combining: sequential rt transcript matches plain seq" gen
    (fun ops ->
      let transcript (inst : I.aba) =
        List.map
          (fun (p, op, v) ->
            if op = 0 then
              let value, flag = inst.I.dread p in
              Printf.sprintf "p%d:dread=%d,%b" p value flag
            else begin
              inst.I.dwrite p v;
              Printf.sprintf "p%d:dwrite %d" p v
            end)
          ops
      in
      let reference = transcript (I.aba_seq I.aba_fig4 ~n:4) in
      let combined = transcript (I.aba_rt ~combining:true I.aba_fig4 ~n:4) in
      reference = combined)

let combining_sequential_stats () =
  let r = Aba_runtime.Rt_aba.Fig4.create ~combining:true ~n:2 0 in
  check_bool "stats absent without combining" true
    (Aba_runtime.Rt_aba.Fig4.combining_stats
       (Aba_runtime.Rt_aba.Fig4.create ~n:2 0)
    = None);
  for i = 1 to 25 do
    Aba_runtime.Rt_aba.Fig4.dwrite r ~pid:0 i;
    let v, _ = Aba_runtime.Rt_aba.Fig4.dread r ~pid:1 in
    check_int "read returns the just-written value" i v
  done;
  match Aba_runtime.Rt_aba.Fig4.combining_stats r with
  | None -> Alcotest.fail "combining stats missing"
  | Some s ->
      check_int "every sequential read is a scan" 25 s.C.scans;
      check_int "no adoptions" 0 s.C.adopted;
      check_int "no fallbacks" 0 s.C.fallbacks

(* Concurrent smoke: one writer sweeping values upward, three combined
   readers.  Every read must return a value the writer actually wrote
   (monotonicity of the written stream makes staleness visible as a
   value, not just a flag), whether scanned, adopted or fallen back. *)
let combining_concurrent_values () =
  let ops = 5_000 in
  let r = Aba_runtime.Rt_aba.Fig4.create ~combining:true ~n:4 0 in
  let results =
    H.run_domains ~n:4 (fun pid ->
        if pid = 0 then begin
          for i = 1 to ops do
            Aba_runtime.Rt_aba.Fig4.dwrite r ~pid i
          done;
          true
        end
        else begin
          let ok = ref true in
          let last = ref 0 in
          for _ = 1 to ops do
            let v, _ = Aba_runtime.Rt_aba.Fig4.dread r ~pid in
            (* Values are written in increasing order by the one writer,
               so any in [0, ops] is legal, but a reader adopting a
               snapshot from the future of its own interval would still
               be in range — the real invariant we can check here is
               range membership. *)
            if v < 0 || v > ops then ok := false;
            last := v
          done;
          !ok && !last >= 0
        end)
  in
  Array.iteri
    (fun i ok ->
      check_bool (Printf.sprintf "domain %d saw legal values" i) true ok)
    results;
  match Aba_runtime.Rt_aba.Fig4.combining_stats r with
  | None -> Alcotest.fail "combining stats missing"
  | Some s ->
      check_int "every read accounted for" (3 * ops)
        (s.C.scans + s.C.adopted + s.C.fallbacks)

let combining_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "window 0 rejected" true
    (bad (fun () ->
         C.create ~window:0 ~n:1 ~scan:(fun ~pid:_ -> (0, false)) ()));
  check_bool "n 0 rejected" true
    (bad (fun () -> C.create ~n:0 ~scan:(fun ~pid:_ -> (0, false)) ()))

let suite =
  [
    slot_roundtrip;
    Alcotest.test_case "slot Empty encodes to 0" `Quick slot_empty_is_zero;
    adapt_transitions;
    Alcotest.test_case "noop exchanger is inert" `Quick noop_inert;
    Alcotest.test_case "partnerless offers time out clean" `Quick
      sequential_timeout;
    Alcotest.test_case "create validation" `Quick create_validation;
    Alcotest.test_case "two-domain rendezvous delivers the value" `Quick
      two_domain_exchange;
    Alcotest.test_case "elimination is sequentially transparent" `Quick
      sequential_transparency;
    Alcotest.test_case "paired churn, 4 domains: tag16" `Quick
      (paired_churn (T.Tag_bits 16) false);
    Alcotest.test_case "paired churn, 4 domains: llsc" `Quick
      (paired_churn T.Llsc false);
    Alcotest.test_case "paired churn, 4 domains: hazard-reclaimed" `Quick
      (paired_churn (T.Reclaimed Aba_runtime.Rt_reclaim.Hazard) true);
    combining_sequential_transparency;
    Alcotest.test_case "combining is sequentially transparent (stats)" `Quick
      combining_sequential_stats;
    Alcotest.test_case "combining under concurrency: legal values, counted"
      `Quick combining_concurrent_values;
    Alcotest.test_case "combining create validation" `Quick
      combining_validation;
  ]
