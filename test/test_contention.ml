(** The contention-management layer: backoff bounds, padded-array layout,
    the start barrier, and the JSON helper the benchmark emits results
    with.  These are infrastructure the differential suites deliberately
    cannot see (seq/sim run with [Backoff.Noop] and no padding), so they
    get their own direct properties here. *)

open Aba_primitives

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ----- Backoff ----- *)

(* The spin count must stay inside [min, max] no matter how many failures
   are recorded, and reset must restore the floor exactly. *)
let backoff_bounds =
  qtest "backoff: current stays within [min, max]; reset restores min"
    QCheck2.Gen.(
      triple (int_range 1 64) (int_range 0 512) (int_range 0 64))
    (fun (min_spins, extra, failures) ->
      let max_spins = min_spins + extra in
      let bo = Backoff.create ~min:min_spins ~max:max_spins () in
      let ok = ref (Backoff.current bo = min_spins) in
      for _ = 1 to failures do
        Backoff.once bo;
        let c = Backoff.current bo in
        if c < min_spins || c > max_spins then ok := false
      done;
      Backoff.reset bo;
      !ok && Backoff.current bo = min_spins)

let backoff_doubles () =
  let bo = Backoff.create ~min:2 ~max:16 () in
  let observed =
    List.map
      (fun () ->
        let c = Backoff.current bo in
        Backoff.once bo;
        c)
      [ (); (); (); (); (); () ]
  in
  Alcotest.(check (list int)) "doubling clamps at max" [ 2; 4; 8; 16; 16; 16 ]
    observed

let backoff_invalid () =
  Alcotest.check_raises "min 0 rejected"
    (Invalid_argument "Backoff.create: min must be at least 1") (fun () ->
      ignore (Backoff.create ~min:0 ~max:4 ()));
  Alcotest.check_raises "max < min rejected"
    (Invalid_argument "Backoff.create: max must be at least min") (fun () ->
      ignore (Backoff.create ~min:8 ~max:4 ()))

(* The Noop singleton is shared across domains, so once/reset must never
   mutate it. *)
let backoff_noop_inert () =
  let bo = Backoff.make Backoff.Noop in
  Backoff.once bo;
  Backoff.once bo;
  Alcotest.(check int) "noop never spins" 0 (Backoff.current bo);
  Backoff.reset bo;
  Alcotest.(check int) "noop reset is inert" 0 (Backoff.current bo)

(* ----- Padded ----- *)

let padded_copy_roundtrip () =
  Alcotest.(check int) "immediates pass through" 42 (Padded.copy 42);
  let a = Padded.atomic 7 in
  Alcotest.(check int) "padded atomic holds its value" 7 (Atomic.get a);
  Atomic.set a 9;
  Alcotest.(check int) "padded atomic is mutable" 9 (Atomic.get a);
  let s = Padded.copy "hello" in
  Alcotest.(check string) "strings (no-scan blocks) pass through" "hello" s;
  let arr = Padded.atomic_array 5 (-1) in
  Array.iteri
    (fun i c ->
      Alcotest.(check int)
        (Printf.sprintf "atomic_array.(%d) init" i)
        (-1) (Atomic.get c))
    arr

(* Every slot of a strided array is independent: writing a permutation and
   reading it back must round-trip for both strides. *)
let padded_array_roundtrip =
  qtest "padded array: set/get round-trips at both strides"
    QCheck2.Gen.(pair bool (list_size (int_range 0 40) small_int))
    (fun (padded, xs) ->
      let n = List.length xs in
      let t = Padded.make_array ~padded n (-1) in
      List.iteri (fun i x -> Padded.set t i x) xs;
      Padded.length t = n
      && Padded.stride t = (if padded then Padded.line_words else 1)
      && List.for_all2 ( = ) xs (List.init n (Padded.get t)))

let padded_array_bounds () =
  let t = Padded.make_array ~padded:true 3 0 in
  Alcotest.check_raises "get past length"
    (Invalid_argument "Padded.get: index out of bounds") (fun () ->
      ignore (Padded.get t 3));
  Alcotest.check_raises "negative set"
    (Invalid_argument "Padded.set: index out of bounds") (fun () ->
      Padded.set t (-1) 0)

(* ----- Barrier ----- *)

let barrier_releases_all () =
  let n = 4 in
  let barrier = Aba_runtime.Harness.Barrier.create ~parties:n in
  let after = Atomic.make 0 in
  let _ =
    Aba_runtime.Harness.run_domains ~n (fun _ ->
        Aba_runtime.Harness.Barrier.wait barrier;
        Atomic.incr after)
  in
  Alcotest.(check int) "all parties pass the barrier" n (Atomic.get after)

let barrier_invalid () =
  Alcotest.check_raises "parties 0 rejected"
    (Invalid_argument "Harness.Barrier.create: parties < 1") (fun () ->
      ignore (Aba_runtime.Harness.Barrier.create ~parties:0))

(* The old barrier was single-shot (the arrival count never reset), so a
   second wait on the same instance deadlocked.  The generation-based
   barrier must release every round. *)
let barrier_single_party_reuse () =
  let barrier = Aba_runtime.Harness.Barrier.create ~parties:1 in
  for round = 1 to 5 do
    Aba_runtime.Harness.Barrier.wait barrier;
    Alcotest.(check pass) (Printf.sprintf "round %d releases" round) () ()
  done

(* Two-round exerciser: the first barrier separates the [a] increments
   from the reads (every domain must see all [n]), the second separates
   phase 1 from the [b] increments, the third the [b] increments from
   their reads.  Any failed release deadlocks the run; a premature
   release shows up as a torn count. *)
let barrier_reuse_across_rounds () =
  let n = 4 in
  let barrier = Aba_runtime.Harness.Barrier.create ~parties:n in
  let a = Atomic.make 0 and b = Atomic.make 0 in
  let a_seen = Atomic.make 0 and b_seen = Atomic.make 0 in
  let _ =
    Aba_runtime.Harness.run_domains ~n (fun _ ->
        Atomic.incr a;
        Aba_runtime.Harness.Barrier.wait barrier;
        if Atomic.get a = n then Atomic.incr a_seen;
        Aba_runtime.Harness.Barrier.wait barrier;
        Atomic.incr b;
        Aba_runtime.Harness.Barrier.wait barrier;
        if Atomic.get b = n then Atomic.incr b_seen)
  in
  Alcotest.(check int) "every domain saw all of round 1" n (Atomic.get a_seen);
  Alcotest.(check int) "every domain saw all of round 2" n (Atomic.get b_seen)

(* ----- Json ----- *)

module Json = Aba_experiments.Json

let json_escaping () =
  Alcotest.(check string)
    "quotes and backslashes" "a\\\"b\\\\c"
    (Json.escape_string "a\"b\\c");
  Alcotest.(check string)
    "control characters" "tab\\there\\nnl\\u0001"
    (Json.escape_string "tab\there\nnl\001")

let json_structure () =
  let doc =
    Json.Obj
      [
        ("name", Json.Str "fig3 \"packed\"");
        ("ok", Json.Bool true);
        ("none", Json.Null);
        ("rows", Json.Arr [ Json.Int 1; Json.Float 2.5 ]);
        ("empty", Json.Arr []);
      ]
  in
  Alcotest.(check string)
    "nested document serialises"
    "{\n\
    \  \"name\": \"fig3 \\\"packed\\\"\",\n\
    \  \"ok\": true,\n\
    \  \"none\": null,\n\
    \  \"rows\": [\n\
    \    1,\n\
    \    2.5\n\
    \  ],\n\
    \  \"empty\": []\n\
     }\n"
    (Json.to_string doc)

let json_non_finite () =
  Alcotest.(check string)
    "nan and infinity become null" "[\n  null,\n  null,\n  1\n]\n"
    (Json.to_string
       (Json.Arr [ Json.Float Float.nan; Json.Float Float.infinity; Json.Int 1 ]))

let suite =
  [
    backoff_bounds;
    Alcotest.test_case "backoff doubling sequence" `Quick backoff_doubles;
    Alcotest.test_case "backoff argument validation" `Quick backoff_invalid;
    Alcotest.test_case "noop backoff is inert" `Quick backoff_noop_inert;
    Alcotest.test_case "padded copy round-trips" `Quick padded_copy_roundtrip;
    padded_array_roundtrip;
    Alcotest.test_case "padded array bounds checks" `Quick padded_array_bounds;
    Alcotest.test_case "barrier releases all parties" `Quick
      barrier_releases_all;
    Alcotest.test_case "barrier argument validation" `Quick barrier_invalid;
    Alcotest.test_case "barrier reuse, single party" `Quick
      barrier_single_party_reuse;
    Alcotest.test_case "barrier reuse across rounds, 4 domains" `Quick
      barrier_reuse_across_rounds;
    Alcotest.test_case "json string escaping" `Quick json_escaping;
    Alcotest.test_case "json document structure" `Quick json_structure;
    Alcotest.test_case "json non-finite floats" `Quick json_non_finite;
  ]
