(** Detectable (crash-recoverable) operations — experiment E19.

    Three layers of the same exactly-once claim: a qcheck sweep of the
    detectable counter over randomized crash points on the sequential
    backend (with a deterministic scan showing the naive mutant really
    does duplicate at some crash point), the multicore crash-churn audit
    of the detectable stack under all three head protections, and the
    DPOR crash-move certification of the simulator scenarios. *)

open Aba_primitives
module H = Aba_runtime.Harness
module Obs = Aba_obs.Obs
module Detectable = Aba_core.Detectable
module S = Aba_experiments.Scenarios
module Explore = Aba_sim.Explore

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* A single-process fuse for the seq backend: arm with a step budget and
   the shared access that burns it raises {!H.Injected_crash}, disarming
   itself first so recovery runs crash-free — the same discipline as
   {!H.Fuse} without the per-domain array. *)
let seq_fuse () =
  let fuse = ref max_int in
  let on_step (_ : Pid.t) =
    let c = !fuse in
    if c <> max_int then
      if c <= 1 then begin
        fuse := max_int;
        raise H.Injected_crash
      end
      else fuse := c - 1
  in
  (fuse, on_step)

(* ----- Counter: exactly-once on the seq backend ----- *)

(* Run a crash plan against a fresh detectable counter: [None] entries
   are plain increments, [Some steps] arms the fuse so the increment
   dies at its [steps]-th shared access and is resolved by [recover].
   With one process every effective increment is sequential, so both
   the running results and the final read are fully determined. *)
let counter_exactly_once_seq =
  qtest ~count:150
    "detectable counter: exactly-once under randomized crash points (seq)"
    QCheck2.Gen.(list_size (int_range 1 40) (option (int_range 1 20)))
    (fun plan ->
      let module M = (val Seq_mem.make ()) in
      let module D = Detectable.Make (M) in
      let fuse, on_step = seq_fuse () in
      let c = D.Counter.create ~on_step ~name:"qc" ~n:1 () in
      let eff = ref 0 in
      let ok = ref true in
      List.iter
        (fun crash ->
          match crash with
          | None ->
              let r = D.Counter.inc c ~pid:0 in
              incr eff;
              if r <> !eff then ok := false
          | Some steps -> (
              fuse := steps;
              try
                let r = D.Counter.inc c ~pid:0 in
                (* The budget outlived the operation: no crash. *)
                fuse := max_int;
                incr eff;
                if r <> !eff then ok := false
              with H.Injected_crash -> (
                match D.Counter.recover c ~pid:0 with
                | Some r ->
                    (* Resolved exactly once — whether it had landed
                       pre-crash or recovery re-ran it, its result is
                       the next value in the sequential history. *)
                    incr eff;
                    if r <> !eff then ok := false
                | None ->
                    (* No shared step had executed; no effect. *)
                    ())))
        plan;
      !ok && D.Counter.read c = !eff)

(* Deterministic scan of every crash point of one increment (budgets
   1..20 cover all its shared accesses): the detectable counter must
   read exactly its effective count at each, the naive mutant must
   overcount at some point — the window between its successful CAS and
   its Done descriptor write, where its recovery guesses "not landed"
   and re-runs. *)
let counter_scan_exact () =
  List.iter
    (fun steps ->
      let module M = (val Seq_mem.make ()) in
      let module D = Detectable.Make (M) in
      let fuse, on_step = seq_fuse () in
      let c = D.Counter.create ~on_step ~name:"sc" ~n:1 () in
      ignore (D.Counter.inc c ~pid:0 : int);
      let eff = ref 1 in
      fuse := steps;
      (try
         ignore (D.Counter.inc c ~pid:0 : int);
         fuse := max_int;
         incr eff
       with H.Injected_crash -> (
         match D.Counter.recover c ~pid:0 with
         | Some _ -> incr eff
         | None -> ()));
      check_int
        (Printf.sprintf "exactly-once with a crash at access %d" steps)
        !eff (D.Counter.read c))
    (List.init 20 (fun i -> i + 1))

let naive_counter_duplicates () =
  let duplicated = ref false in
  List.iter
    (fun steps ->
      let module M = (val Seq_mem.make ()) in
      let module D = Detectable.Make (M) in
      let fuse, on_step = seq_fuse () in
      let c = D.Naive_counter.create ~on_step ~name:"nc" ~n:1 () in
      ignore (D.Naive_counter.inc c ~pid:0 : int);
      let eff = ref 1 in
      fuse := steps;
      (try
         ignore (D.Naive_counter.inc c ~pid:0 : int);
         fuse := max_int;
         incr eff
       with H.Injected_crash -> (
         match D.Naive_counter.recover c ~pid:0 with
         | Some _ -> incr eff
         | None -> ()));
      if D.Naive_counter.read c > !eff then duplicated := true)
    (List.init 20 (fun i -> i + 1));
  check_bool "some crash point makes the naive recovery duplicate" true
    !duplicated

(* ----- Stack: crash-churn exactly-once audit (multicore) ----- *)

let stack_plan ~fuse ~crash_every
    ~(recover : pid:int -> Detectable.stack_recovery) : H.crash_plan =
  {
    H.fuse;
    crash_every;
    fuse_steps = H.default_fuse_steps;
    recover =
      (fun ~pid ->
        match recover ~pid with
        | Detectable.R_none ->
            { H.completed = false; r_pushed = []; r_popped = [] }
        | Detectable.R_pushed v ->
            { H.completed = true; r_pushed = [ v ]; r_popped = [] }
        | Detectable.R_popped (Some v) ->
            { H.completed = true; r_pushed = []; r_popped = [ v ] }
        | Detectable.R_popped None ->
            { H.completed = true; r_pushed = []; r_popped = [] });
  }

(* 2 domains only: crash-churn over-subscribed on few cores degrades
   badly (a crashed domain's stale state is spin-helped against until
   the OS reschedules it), and CI runners have 2. *)
let stack_crash_churn protection () =
  let domains = 2 and ops = 120 and crash_every = 5 in
  let m = Rt_mem.make ~n:domains () in
  let module M = (val m : Mem_intf.S) in
  let module D = Detectable.Make (M) in
  let fuse = H.Fuse.create ~n:domains in
  let st =
    D.Stack.create ~protection ~tag_bits:8 ~on_step:(H.Fuse.on_step fuse)
      ~name:"dstk" ~n:domains
      ~capacity:(((domains + 2) * ops) + 8)
      ()
  in
  let plan =
    stack_plan ~fuse ~crash_every ~recover:(fun ~pid ->
        D.Stack.recover st ~pid)
  in
  let obs = Obs.create ~trace:0 ~n:domains () in
  let report =
    H.churn ~mix:H.Paired ~obs ~crashes:plan ~n:domains ~ops
      ~push:(fun ~pid v ->
        D.Stack.push st ~pid v;
        true)
      ~pop:(fun ~pid -> D.Stack.pop st ~pid)
      ()
  in
  (match report.H.outcome with
  | Ok () -> ()
  | Error e -> Alcotest.failf "exactly-once audit failed: %s" e);
  check_bool "crashes were injected" true (report.H.crashed > 0);
  check_bool "recoveries cannot outnumber crashes" true
    (report.H.recovered <= report.H.crashed);
  check_int "every crash recorded a Crash event" report.H.crashed
    (Obs.op_count obs Obs.Crash);
  check_int "every crash recorded a Recover event" report.H.crashed
    (Obs.op_count obs Obs.Recover)

let stack_churn_no_crashes () =
  (* Control: without a crash plan the counters stay zero and the audit
     is the ordinary sub-multiset check. *)
  let domains = 2 and ops = 120 in
  let m = Rt_mem.make ~n:domains () in
  let module M = (val m : Mem_intf.S) in
  let module D = Detectable.Make (M) in
  let st =
    D.Stack.create ~name:"dstk0" ~n:domains
      ~capacity:(((domains + 2) * ops) + 8)
      ()
  in
  let report =
    H.churn ~mix:H.Paired ~n:domains ~ops
      ~push:(fun ~pid v ->
        D.Stack.push st ~pid v;
        true)
      ~pop:(fun ~pid -> D.Stack.pop st ~pid)
      ()
  in
  check_bool "audit holds" true (Result.is_ok report.H.outcome);
  check_int "no crashes without a plan" 0 report.H.crashed;
  check_int "no recoveries without a plan" 0 report.H.recovered;
  check_int "every push landed" report.H.attempted report.H.pushed

(* ----- DPOR crash-move certification ----- *)

let run_scenario id =
  match S.find id with
  | None -> Alcotest.failf "missing scenario %s" id
  | Some s -> s.S.run ()

let dpor_crash_pair () =
  let dc = run_scenario "detectable-counter-crash" in
  Alcotest.(check string)
    "detectable counter verdict" "ok" dc.S.verdict;
  check_bool "detectable counter passed" true dc.S.passed;
  check_bool "crash moves were explored" true
    (dc.S.stats.Explore.crashes_injected > 0);
  let nc = run_scenario "naive-counter-crash" in
  Alcotest.(check string) "naive counter verdict" "violation" nc.S.verdict;
  check_bool "the violation was expected" true nc.S.passed;
  check_bool "violation comes with a schedule" true
    (nc.S.violation_schedule <> None);
  check_bool "the violating run crashed" true
    (nc.S.stats.Explore.crashes_injected > 0)

let dpor_stack_crash () =
  let ds = run_scenario "detectable-stack-crash" in
  Alcotest.(check string) "detectable stack verdict" "ok" ds.S.verdict;
  check_bool "detectable stack passed" true ds.S.passed;
  check_bool "crash moves were explored" true
    (ds.S.stats.Explore.crashes_injected > 0)

let dpor_crashes_default_off () =
  (* Scenarios without a crash plan run with [crash_bound = 0]: the
     explorer injects nothing and the schedule bound stays in force. *)
  let r = run_scenario "fig4-3proc" in
  check_bool "legacy scenario still passes" true r.S.passed;
  check_int "no crash moves without a crash bound" 0
    r.S.stats.Explore.crashes_injected;
  check_bool "schedule bound still computed" true
    (r.S.stats.Explore.schedule_bound <> None)

let suite =
  [
    counter_exactly_once_seq;
    Alcotest.test_case "counter crash-point scan is exactly-once" `Quick
      counter_scan_exact;
    Alcotest.test_case "naive counter duplicates at some crash point"
      `Quick naive_counter_duplicates;
    Alcotest.test_case "stack crash-churn audit (tag bits)" `Quick
      (stack_crash_churn Detectable.Tag_bits);
    Alcotest.test_case "stack crash-churn audit (llsc)" `Quick
      (stack_crash_churn Detectable.Llsc);
    Alcotest.test_case "stack crash-churn audit (announced)" `Quick
      (stack_crash_churn Detectable.Announced);
    Alcotest.test_case "stack churn control run (no crashes)" `Quick
      stack_churn_no_crashes;
    Alcotest.test_case "dpor certifies the counter crash pair" `Quick
      dpor_crash_pair;
    Alcotest.test_case "dpor certifies the detectable stack" `Quick
      dpor_stack_crash;
    Alcotest.test_case "dpor crash moves default off" `Quick
      dpor_crashes_default_off;
  ]
