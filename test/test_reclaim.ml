(** Tests for the reclamation subsystem ([lib/reclaim]) through its
    canonical runtime instance {!Aba_runtime.Rt_reclaim}.

    Every property is checked for all three schemes — [Hazard], [Epoch]
    and the paper-built [Guarded] — since they share one interface:

    - allocation is exhaustible and distinct up to capacity;
    - a node retired while another pid announces it is never reclaimed;
    - after [release] + [flush], every retired node is reclaimed and
      allocatable again;
    - [recycle] returns a node immediately (no grace period);
    - multi-domain churn on the Treiber stack and the MS queue forces
      cross-domain node reuse and must lose or duplicate nothing. *)

module R = Aba_runtime.Rt_reclaim
module H = Aba_runtime.Harness
module T = Aba_runtime.Rt_treiber
module Q = Aba_runtime.Rt_ms_queue

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The GC-safe boxed stack backing the Hazard/Epoch free pools. *)
let boxed_pool () =
  let p = Aba_reclaim.Boxed_pool.create () in
  Alcotest.(check (option int)) "empty" None (Aba_reclaim.Boxed_pool.take p);
  Aba_reclaim.Boxed_pool.put p 1;
  Aba_reclaim.Boxed_pool.put p 2;
  Alcotest.(check (option int)) "LIFO 1" (Some 2) (Aba_reclaim.Boxed_pool.take p);
  Alcotest.(check (option int)) "LIFO 2" (Some 1) (Aba_reclaim.Boxed_pool.take p);
  Alcotest.(check (option int)) "drained" None (Aba_reclaim.Boxed_pool.take p)

let alloc_exhaust scheme () =
  let r = R.create ~n:2 ~capacity:8 scheme in
  check_int "capacity" 8 (R.capacity r);
  let seen = Array.make 8 false in
  for _ = 1 to 8 do
    match R.alloc r ~pid:0 with
    | None -> Alcotest.fail "alloc returned None before capacity"
    | Some i ->
        check_bool "index in range" true (i >= 0 && i < 8);
        check_bool "index distinct" false seen.(i);
        seen.(i) <- true
  done;
  Alcotest.(check (option int)) "exhausted" None (R.alloc r ~pid:0);
  R.recycle r ~pid:0 3;
  Alcotest.(check (option int))
    "recycle is immediate" (Some 3) (R.alloc r ~pid:1)

let protected_not_reclaimed scheme () =
  let r = R.create ~slots:1 ~n:2 ~capacity:4 scheme in
  let i =
    match R.alloc r ~pid:0 with Some i -> i | None -> Alcotest.fail "alloc"
  in
  (* pid 1 announces [i] before pid 0 retires it — the reclaimer must
     hold the node in limbo across any number of flushes. *)
  R.protect r ~pid:1 ~slot:0 i;
  R.retire r ~pid:0 i;
  for _ = 1 to 3 do
    R.flush r ~pid:0
  done;
  let s = R.stats r in
  check_int "retired" 1 s.R.retired;
  check_int "nothing reclaimed while protected" 0 s.R.reclaimed;
  check_int "node held in limbo" 1 s.R.in_limbo;
  R.release r ~pid:1;
  R.flush r ~pid:0;
  let s = R.stats r in
  check_int "reclaimed after release" 1 s.R.reclaimed;
  check_int "limbo empty" 0 s.R.in_limbo

let all_reclaimed_after_flush scheme () =
  let r = R.create ~n:2 ~capacity:16 scheme in
  let nodes = List.init 16 (fun _ -> Option.get (R.alloc r ~pid:0)) in
  List.iter (fun i -> R.retire r ~pid:0 i) nodes;
  R.release r ~pid:0;
  R.release r ~pid:1;
  R.flush r ~pid:0;
  R.flush r ~pid:1;
  let s = R.stats r in
  check_int "all retired" 16 s.R.retired;
  check_int "all reclaimed" 16 s.R.reclaimed;
  check_int "limbo empty" 0 s.R.in_limbo;
  check_bool "peak limbo bounded" true
    (s.R.peak_in_limbo >= 1 && s.R.peak_in_limbo <= 16);
  for _ = 1 to 16 do
    if R.alloc r ~pid:0 = None then Alcotest.fail "node lost after reclamation"
  done

(* Shared churn driver: [n] domains hammer a structure at its capacity
   ceiling so nodes are constantly retired and reused across domains,
   then the multiset audit looks for lost, duplicated or invented
   values — the signature of a reclamation (ABA) bug. *)
let churn_structure ~push ~pop ~reclaimer ~capacity () =
  let n = 4 and ops = 2_000 in
  let rc = Option.get reclaimer in
  let report =
    H.churn ~n ~ops ~push ~pop
      ~finish:(fun ~pid ->
        R.release rc ~pid;
        R.flush rc ~pid)
      ()
  in
  (match report.H.outcome with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("multiset audit failed: " ^ e));
  check_bool "made progress" true (report.H.pushed > 0 && report.H.popped > 0);
  check_int "no value lost" report.H.pushed
    (report.H.popped + report.H.remaining);
  let s = R.stats rc in
  check_int "limbo drained after finish" 0 s.R.in_limbo;
  check_bool "peak limbo bounded by capacity" true
    (s.R.peak_in_limbo <= capacity)

let treiber_churn scheme () =
  let capacity = 32 in
  let s = T.create ~protection:(T.Reclaimed scheme) ~capacity ~n:4 () in
  churn_structure
    ~push:(fun ~pid v -> T.push s ~pid v)
    ~pop:(fun ~pid -> T.pop s ~pid)
    ~reclaimer:(T.reclaimer s) ~capacity ()

let msqueue_churn scheme () =
  let capacity = 32 in
  let q = Q.create ~protection:(Q.Reclaimed scheme) ~capacity ~n:4 () in
  churn_structure
    ~push:(fun ~pid v -> Q.enqueue q ~pid v)
    ~pop:(fun ~pid -> Q.dequeue q ~pid)
    ~reclaimer:(Q.reclaimer q) ~capacity ()

let suite =
  Alcotest.test_case "boxed-pool LIFO" `Quick boxed_pool
  :: List.concat_map
       (fun scheme ->
         let nm = R.scheme_name scheme in
         [
           Alcotest.test_case
             (nm ^ ": alloc/exhaust/recycle")
             `Quick (alloc_exhaust scheme);
           Alcotest.test_case
             (nm ^ ": protected node survives flush")
             `Quick
             (protected_not_reclaimed scheme);
           Alcotest.test_case
             (nm ^ ": retired nodes reclaimed after release+flush")
             `Quick
             (all_reclaimed_after_flush scheme);
           Alcotest.test_case
             (nm ^ ": treiber churn, 4 domains")
             `Quick (treiber_churn scheme);
           Alcotest.test_case
             (nm ^ ": ms-queue churn, 4 domains")
             `Quick (msqueue_churn scheme);
         ])
       R.all_schemes
