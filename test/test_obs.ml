(** The observability subsystem: histogram bucket geometry and the
    percentile extraction against a naive-sort oracle, the packed trace
    codec (including its saturation rules) and ring wraparound, counter
    merging, clock monotonicity, the inertness of {!Aba_obs.Obs.noop},
    and the JSON export shape the benchmark's schema-4 consumers rely
    on. *)

module Obs = Aba_obs.Obs
module Histogram = Aba_obs.Histogram
module Trace = Aba_obs.Trace
module Counter = Aba_obs.Counter
module Clock = Aba_obs.Clock

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ----- Histogram ----- *)

(* The bucket bounds must bracket every non-negative value, and bucket
   indices must tile: the value one past a bucket's hi lands in the next
   bucket. *)
let histogram_bucket_roundtrip =
  qtest "histogram: bucket_lo <= v <= bucket_hi at bucket_of v"
    QCheck2.Gen.(oneof [ int_range (-5) 5; nat; int_bound max_int ])
    (fun v ->
      let b = Histogram.bucket_of v in
      0 <= b
      && b < Histogram.buckets
      && (v > 0 || b = 0)
      && Histogram.bucket_lo b <= max v 0
      && max v 0 <= Histogram.bucket_hi b
      && (b = 0 || Histogram.bucket_of (Histogram.bucket_hi (b - 1) + 1) = b))

(* The oracle: sort the samples, take the rank-th smallest, report its
   bucket's upper bound.  [percentile] must agree exactly — it is the
   same computation run over bucket counts instead of raw samples. *)
let histogram_percentile_oracle =
  qtest "histogram: percentile agrees with the naive-sort oracle"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 80) (int_bound 100_000))
        (list_size (int_range 1 6) (float_bound_inclusive 1.0)))
    (fun (samples, qs) ->
      let h = Histogram.create ~n:3 () in
      List.iteri
        (fun i v -> Histogram.record h ~pid:(i mod 3) v)
        samples;
      let sorted = List.sort compare samples in
      let total = List.length samples in
      List.for_all
        (fun q ->
          let rank =
            max 1 (int_of_float (Float.ceil (q *. float_of_int total)))
          in
          let oracle =
            Histogram.bucket_hi
              (Histogram.bucket_of (List.nth sorted (rank - 1)))
          in
          Histogram.percentile h q = oracle)
        qs)

let histogram_percentiles_monotone =
  qtest "histogram: p50 <= p90 <= p99 <= p999"
    QCheck2.Gen.(list_size (int_range 1 60) (int_bound 1_000_000))
    (fun samples ->
      let h = Histogram.create ~n:1 () in
      List.iter (fun v -> Histogram.record h ~pid:0 v) samples;
      let s = Histogram.summarize h in
      s.Histogram.count = List.length samples
      && s.Histogram.p50 <= s.Histogram.p90
      && s.Histogram.p90 <= s.Histogram.p99
      && s.Histogram.p99 <= s.Histogram.p999)

let histogram_edges () =
  let h = Histogram.create ~n:2 () in
  Alcotest.(check int) "empty percentile is 0" 0 (Histogram.percentile h 0.5);
  Alcotest.check_raises "q > 1 rejected"
    (Invalid_argument "Obs.Histogram.percentile: q outside [0, 1]") (fun () ->
      ignore (Histogram.percentile h 1.5));
  Alcotest.check_raises "q < 0 rejected"
    (Invalid_argument "Obs.Histogram.percentile: q outside [0, 1]") (fun () ->
      ignore (Histogram.percentile h (-0.1)));
  Histogram.record h ~pid:0 0;
  Histogram.record h ~pid:1 (-7);
  Alcotest.(check int) "non-positive samples land in bucket 0" 2
    (Histogram.merged h).(0);
  Alcotest.(check int) "their percentile is 0" 0 (Histogram.percentile h 1.0)

(* Cross-instance merge: splitting a sample stream over several
   histograms and merging must be indistinguishable — counts, every
   percentile, and the SLO fraction at arbitrary budgets — from having
   recorded the whole stream into one histogram.  This is the property
   the service tier's end-to-end percentiles stand on. *)
let histogram_merge_equiv =
  qtest ~count:100 "merge of split streams = single-histogram recording"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 200)
           (pair (int_range 0 3) (int_range (-10) 1_000_000)))
        (int_range 0 1_000_000))
    (fun (samples, budget) ->
      let parts = Array.init 4 (fun _ -> Histogram.create ~n:2 ()) in
      let whole = Histogram.create ~n:1 () in
      List.iteri
        (fun i (part, v) ->
          Histogram.record parts.(part) ~pid:(i land 1) v;
          Histogram.record whole ~pid:0 v)
        samples;
      let m = Histogram.merge (Array.to_list parts) in
      Histogram.count m = Histogram.count whole
      && List.for_all
           (fun q -> Histogram.percentile m q = Histogram.percentile whole q)
           [ 0.; 0.5; 0.9; 0.99; 0.999; 1. ]
      && Histogram.fraction_le m budget = Histogram.fraction_le whole budget)

(* The top bucket's upper bound is explicitly [max_int]: the naive
   [(1 lsl i) - 1] overflows the 63-bit native int into a negative
   number at the top index, which silently broke any percentile or SLO
   check over a sample near [max_int]. *)
let histogram_top_bucket () =
  let top = Histogram.buckets - 1 in
  Alcotest.(check int)
    "max_int lands in the top bucket" top
    (Histogram.bucket_of max_int);
  Alcotest.(check int)
    "top bucket hi is max_int, not a shift wraparound" max_int
    (Histogram.bucket_hi top);
  Alcotest.(check bool)
    "every bucket's upper bound is non-negative" true
    (List.for_all
       (fun b -> Histogram.bucket_hi b >= 0)
       (List.init Histogram.buckets Fun.id));
  let h = Histogram.create ~n:1 () in
  Histogram.record h ~pid:0 max_int;
  Alcotest.(check int)
    "p100 of a max_int sample is max_int" max_int
    (Histogram.percentile h 1.0);
  Alcotest.(check (float 0.))
    "a max_int sample fits a max_int budget" 1.0
    (Histogram.fraction_le h max_int)

(* SLO self-consistency: at least a [q] fraction of samples must fit a
   budget of [percentile t q] — every bucket at or below the rank-th
   bucket is entirely within its own upper bound.  The extreme samples
   (0, 1, near max_int) pin the regression above: with a negative top
   bucket bound the near-max samples fell out of every budget. *)
let histogram_slo_vs_percentile =
  qtest "histogram: fraction_le at percentile q covers at least q"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 60)
           (oneof
              [
                return 0; return 1; int_range (max_int - 1000) max_int;
                int_bound 1_000_000;
              ]))
        (oneof [ return 0.; return 1.; float_bound_inclusive 1.0 ]))
    (fun (samples, q) ->
      let h = Histogram.create ~n:2 () in
      List.iteri (fun i v -> Histogram.record h ~pid:(i land 1) v) samples;
      Histogram.fraction_le h (Histogram.percentile h q) >= q)

let histogram_fraction_le () =
  let h = Histogram.create ~n:1 () in
  Alcotest.(check (float 0.)) "empty histogram: vacuously in budget" 1.
    (Histogram.fraction_le h 0);
  List.iter (fun v -> Histogram.record h ~pid:0 v) [ 1; 2; 3; 4; 100 ];
  (* Buckets: 1 -> [1,1], 2..3 -> [2,3], 4 -> [4,7], 100 -> [64,127].
     A budget of 3 covers the first two buckets whole (3 samples); the
     conservative rule excludes the [4,7] bucket even at budget 4. *)
  Alcotest.(check (float 0.)) "budget 3 covers 3 of 5" 0.6
    (Histogram.fraction_le h 3);
  Alcotest.(check (float 0.)) "budget 4 is conservative" 0.6
    (Histogram.fraction_le h 4);
  Alcotest.(check (float 0.)) "budget 7 covers 4 of 5" 0.8
    (Histogram.fraction_le h 7);
  Alcotest.(check (float 0.)) "budget 127 covers all" 1.
    (Histogram.fraction_le h 127);
  (* Agreement with percentile: at a percentile's reported bound, at
     least that fraction of samples is within budget. *)
  List.iter
    (fun q ->
      Alcotest.(check bool)
        (Printf.sprintf "fraction_le at p%g >= %g" (q *. 100.) q)
        true
        (Histogram.fraction_le h (Histogram.percentile h q) >= q))
    [ 0.5; 0.9; 0.99 ]

(* ----- Trace codec ----- *)

let trace_codec_roundtrip =
  qtest "trace: pack/unpack round-trips in-range fields"
    QCheck2.Gen.(
      let field bits = int_bound ((1 lsl bits) - 1) in
      tup5
        (field Trace.Event.ts_bits)
        (field Trace.Event.kind_bits)
        (field Trace.Event.outcome_bits)
        (field Trace.Event.pid_bits)
        (field Trace.Event.retries_bits))
    (fun (ts, kind, outcome, pid, retries) ->
      let e =
        Trace.Event.unpack (Trace.Event.pack ~ts ~kind ~outcome ~pid ~retries)
      in
      e.Trace.Event.ts = ts
      && e.Trace.Event.kind = kind
      && e.Trace.Event.outcome = outcome
      && e.Trace.Event.pid = pid
      && e.Trace.Event.retries = retries)

let trace_codec_saturates () =
  let e =
    Trace.Event.unpack
      (Trace.Event.pack ~ts:0 ~kind:1 ~outcome:2 ~pid:300 ~retries:5000)
  in
  Alcotest.(check int) "pid saturates at max_pid" Trace.Event.max_pid
    e.Trace.Event.pid;
  Alcotest.(check int) "retries saturate at max_retries"
    Trace.Event.max_retries e.Trace.Event.retries;
  let wrapped =
    Trace.Event.unpack
      (Trace.Event.pack ~ts:(Trace.Event.max_ts + 5) ~kind:0 ~outcome:0
         ~pid:0 ~retries:0)
  in
  Alcotest.(check int) "ts wraps modulo 2^ts_bits" 4 wrapped.Trace.Event.ts

(* Words must sort by timestamp as plain ints: the merge relies on it. *)
let trace_words_sort_by_ts =
  qtest "trace: packed words compare in timestamp order"
    QCheck2.Gen.(
      pair
        (pair (int_bound Trace.Event.max_ts) (int_bound Trace.Event.max_ts))
        (pair (int_bound Trace.Event.max_pid) (int_bound Trace.Event.max_pid)))
    (fun ((ts1, ts2), (pid1, pid2)) ->
      let w1 = Trace.Event.pack ~ts:ts1 ~kind:3 ~outcome:1 ~pid:pid1 ~retries:9
      and w2 =
        Trace.Event.pack ~ts:ts2 ~kind:0 ~outcome:0 ~pid:pid2 ~retries:0
      in
      ts1 = ts2 || compare w1 w2 = compare ts1 ts2)

let trace_ring_wraps () =
  let t = Trace.create ~capacity:4 ~n:2 () in
  for ts = 1 to 10 do
    Trace.record t ~pid:0 (Trace.Event.pack ~ts ~kind:0 ~outcome:0 ~pid:0 ~retries:0)
  done;
  Trace.record t ~pid:1
    (Trace.Event.pack ~ts:6 ~kind:1 ~outcome:0 ~pid:1 ~retries:0);
  Alcotest.(check int) "recorded counts overwrites" 11 (Trace.recorded t);
  Alcotest.(check int) "retained is capped per pid" 5 (Trace.retained t);
  let merged = Trace.merged t in
  Alcotest.(check (list int))
    "ring keeps the newest events, merged in time order" [ 6; 7; 8; 9; 10 ]
    (List.map (fun e -> e.Trace.Event.ts) merged);
  (* pid 0's ring (capacity 4) dropped its own ts=6 event, so the ts=6
     survivor is pid 1's, merged ahead of pid 0's ts=7..10 window. *)
  Alcotest.(check (list int))
    "pid 1's event interleaves at its timestamp" [ 1; 0; 0; 0; 0 ]
    (List.map (fun e -> e.Trace.Event.pid) merged)

(* ----- Counter ----- *)

let counter_merges =
  qtest "counter: total is the sum of per-pid cells"
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 4))
    (fun pids ->
      let c = Counter.create ~n:5 () in
      List.iter (fun pid -> Counter.incr c ~pid) pids;
      Counter.add c ~pid:0 10;
      Counter.total c = List.length pids + 10
      && List.for_all
           (fun pid ->
             Counter.get c ~pid
             = 10 * (if pid = 0 then 1 else 0)
               + List.length (List.filter (( = ) pid) pids))
           [ 0; 1; 2; 3; 4 ])

(* ----- Clock ----- *)

(* Epoch-seconds floats carry exactly microsecond resolution near the
   mantissa limit; the regression was [int_of_float (t *. 1e9)], which
   quantizes epoch nanoseconds to ~256 ns so adjacent microsecond stamps
   could tie or regress.  The cases straddle a microsecond boundary at
   epoch scale, where the naive conversion is wrong. *)
let clock_unix_ns () =
  let s = 1_754_700_000 in
  Alcotest.(check int)
    "whole seconds convert exactly"
    (s * 1_000_000_000)
    (Clock.ns_of_unix_time (float_of_int s));
  Alcotest.(check int)
    "the last microsecond of a second holds its value"
    ((s * 1_000_000_000) + 999_999_000)
    (Clock.ns_of_unix_time (float_of_int s +. 0.999999));
  Alcotest.(check int)
    "the next tick lands exactly on the following second"
    ((s + 1) * 1_000_000_000)
    (Clock.ns_of_unix_time (float_of_int (s + 1)));
  Alcotest.(check int)
    "adjacent microsecond stamps differ by exactly 1000 ns" 1_000
    (Clock.ns_of_unix_time (float_of_int s +. 0.123457)
    - Clock.ns_of_unix_time (float_of_int s +. 0.123456))

let clock_us_exact =
  qtest "clock: epoch stamps convert with exact microsecond resolution"
    QCheck2.Gen.(
      pair (int_range 1_000_000_000 2_000_000_000) (int_range 0 999_999))
    (fun (s, us) ->
      Clock.ns_of_unix_time (float_of_int s +. (float_of_int us /. 1e6))
      = (s * 1_000_000_000) + (us * 1_000))

let clock_monotone () =
  let a = Clock.now_ns () in
  let b = Clock.now_ns () in
  let c = Clock.now_ns () in
  Alcotest.(check bool) "now_ns never decreases" true (a <= b && b <= c);
  Alcotest.(check bool) "elapsed_ns is non-negative" true
    (Clock.elapsed_ns a >= 0)

(* ----- Obs handle ----- *)

let obs_noop_inert () =
  Alcotest.(check bool) "noop is disabled" false (Obs.enabled Obs.noop);
  Alcotest.(check int) "start reads no clock" 0 (Obs.start Obs.noop);
  Obs.record Obs.noop ~pid:3 ~kind:Obs.Push ~outcome:Obs.Ok ~retries:7 0;
  Alcotest.(check int) "record leaves counts at zero" 0
    (Obs.op_count Obs.noop Obs.Push);
  Alcotest.(check bool) "no histogram" true
    (Obs.histogram Obs.noop Obs.Push = None);
  Alcotest.(check int) "no trace" 0 (Obs.trace_recorded Obs.noop);
  Alcotest.(check (list unit)) "empty timeline" []
    (List.map ignore (Obs.timeline Obs.noop))

let obs_records_all_channels () =
  let obs = Obs.create ~trace:8 ~n:2 () in
  let t0 = Obs.start obs in
  Obs.record obs ~pid:0 ~kind:Obs.Push ~outcome:Obs.Ok ~retries:2 t0;
  Obs.record obs ~pid:1 ~kind:Obs.Push ~outcome:Obs.Eliminated ~retries:0 t0;
  Obs.record obs ~pid:1 ~kind:Obs.Pop ~outcome:Obs.Empty ~retries:1 t0;
  Alcotest.(check int) "push ops merged over pids" 2
    (Obs.op_count obs Obs.Push);
  Alcotest.(check int) "push retries summed" 2 (Obs.retry_count obs Obs.Push);
  Alcotest.(check int) "pop ops" 1 (Obs.op_count obs Obs.Pop);
  Alcotest.(check int) "untouched kind is zero" 0 (Obs.op_count obs Obs.Ll);
  (match Obs.histogram obs Obs.Push with
  | None -> Alcotest.fail "expected a push histogram"
  | Some h -> Alcotest.(check int) "histogram saw both pushes" 2
      (Histogram.count h));
  Alcotest.(check int) "trace saw all three" 3 (Obs.trace_recorded obs);
  let tl = Obs.timeline obs in
  Alcotest.(check int) "timeline decodes all three" 3 (List.length tl);
  Alcotest.(check bool) "timeline is time-ordered" true
    (let rec ordered = function
       | a :: (b :: _ as rest) -> a.Obs.at_ns <= b.Obs.at_ns && ordered rest
       | _ -> true
     in
     ordered tl);
  List.iter
    (fun (e : Obs.event) ->
      if e.Obs.kind = Obs.Pop then begin
        Alcotest.(check int) "pop event pid" 1 e.Obs.pid;
        Alcotest.(check int) "pop event retries" 1 e.Obs.retries;
        Alcotest.(check string) "pop event outcome" "empty"
          (Obs.outcome_name e.Obs.outcome)
      end)
    tl

let obs_validation () =
  Alcotest.check_raises "n < 1 rejected"
    (Invalid_argument "Obs.create: n must be positive") (fun () ->
      ignore (Obs.create ~n:0 ()))

(* ----- Export ----- *)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec at i = i + nl <= hl && (String.sub haystack i nl = needle || at (i + 1)) in
  at 0

let export_shape () =
  let obs = Obs.create ~trace:8 ~n:1 () in
  let t0 = Obs.start obs in
  Obs.record obs ~pid:0 ~kind:Obs.Enqueue ~outcome:Obs.Ok ~retries:3 t0;
  let summary = Aba_obs.Json.to_string (Aba_obs.Export.summary obs) in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "summary mentions %s" key)
        true
        (contains summary ("\"" ^ key ^ "\"")))
    [ "enqueue"; "ops"; "retries"; "count"; "p50_ns"; "p90_ns"; "p99_ns";
      "p999_ns"; "recorded"; "retained" ];
  let timeline = Aba_obs.Json.to_string (Aba_obs.Export.timeline obs) in
  List.iter
    (fun key ->
      Alcotest.(check bool)
        (Printf.sprintf "timeline mentions %s" key)
        true
        (contains timeline ("\"" ^ key ^ "\"")))
    [ "t_ns"; "kind"; "outcome"; "pid"; "retries" ]

(* Kind/outcome enumerations and the index maps the codec relies on. *)
let obs_enums () =
  Alcotest.(check int) "kind_count matches all_kinds" Obs.kind_count
    (List.length Obs.all_kinds);
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "kind %s fits the trace field" (Obs.kind_name k))
        true
        (Obs.kind_index k <= Trace.Event.max_kind))
    Obs.all_kinds;
  List.iter
    (fun o ->
      Alcotest.(check bool)
        (Printf.sprintf "outcome %s fits the trace field" (Obs.outcome_name o))
        true
        (Obs.outcome_index o <= Trace.Event.max_outcome))
    Obs.all_outcomes

let suite =
  [
    histogram_bucket_roundtrip;
    histogram_percentile_oracle;
    histogram_percentiles_monotone;
    Alcotest.test_case "histogram edge cases" `Quick histogram_edges;
    histogram_merge_equiv;
    Alcotest.test_case "histogram top bucket bounds" `Quick
      histogram_top_bucket;
    histogram_slo_vs_percentile;
    Alcotest.test_case "histogram SLO fraction" `Quick histogram_fraction_le;
    trace_codec_roundtrip;
    Alcotest.test_case "trace codec saturation and wrap" `Quick
      trace_codec_saturates;
    trace_words_sort_by_ts;
    Alcotest.test_case "trace ring wraparound" `Quick trace_ring_wraps;
    counter_merges;
    Alcotest.test_case "clock epoch conversion straddles microseconds"
      `Quick clock_unix_ns;
    clock_us_exact;
    Alcotest.test_case "clock is monotone" `Quick clock_monotone;
    Alcotest.test_case "noop handle is inert" `Quick obs_noop_inert;
    Alcotest.test_case "live handle feeds all channels" `Quick
      obs_records_all_channels;
    Alcotest.test_case "create validation" `Quick obs_validation;
    Alcotest.test_case "export JSON shape" `Quick export_shape;
    Alcotest.test_case "kind/outcome enumerations" `Quick obs_enums;
  ]
