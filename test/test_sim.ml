(** Unit tests for the simulator itself: stepping, poisedness, quiescence,
    register configurations, solo runs, tracing, and the step semantics of
    each base-object kind. *)

open Aba_primitives

let make_mem () =
  let sim = Aba_sim.Sim.create ~n:3 in
  let m = Aba_sim.Sim_mem.make sim in
  (sim, m)

let basic_register_stepping () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r = M.make_register ~name:"r" ~show:string_of_int 0 in
  (* A write is exactly one step. *)
  let w = Aba_sim.Sim.invoke sim 0 (fun () -> M.write r 42) in
  Alcotest.(check bool) "not yet done" true (Aba_sim.Sim.result w = None);
  Alcotest.(check bool) "poised at a write" true
    (match Aba_sim.Sim.poised sim 0 with
    | Some (Aba_sim.Step.Write _) -> true
    | _ -> false);
  Aba_sim.Sim.step sim 0;
  Alcotest.(check bool) "done after one step" true
    (Aba_sim.Sim.result w = Some ());
  Alcotest.(check int) "step counted" 1 (Aba_sim.Sim.steps_of w);
  (* A read observes it. *)
  let rd = Aba_sim.Sim.invoke sim 1 (fun () -> M.read r) in
  Aba_sim.Sim.step sim 1;
  Alcotest.(check (option int)) "read value" (Some 42)
    (Aba_sim.Sim.result rd)

let interleaving_is_real () =
  (* Two increments interleaved read-read-write-write lose one update:
     the simulator really interleaves at step granularity. *)
  let sim, m = make_mem () in
  let module M = (val m) in
  let r = M.make_register ~name:"r" ~show:string_of_int 0 in
  let incr () = M.write r (M.read r + 1) in
  ignore (Aba_sim.Sim.invoke sim 0 incr);
  ignore (Aba_sim.Sim.invoke sim 1 incr);
  Aba_sim.Sim.run_schedule sim [ 0; 1; 0; 1 ];
  let rd = Aba_sim.Sim.invoke sim 2 (fun () -> M.read r) in
  Aba_sim.Sim.step sim 2;
  Alcotest.(check (option int)) "lost update" (Some 1)
    (Aba_sim.Sim.result rd)

let cas_semantics () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let c = M.make_cas ~name:"c" ~show:string_of_int 5 in
  let do_op p f =
    let pr = Aba_sim.Sim.invoke sim p f in
    Aba_sim.Sim.run_solo sim p;
    Option.get (Aba_sim.Sim.result pr)
  in
  Alcotest.(check bool) "cas succeeds on match" true
    (do_op 0 (fun () -> M.cas c ~expect:5 ~update:6));
  Alcotest.(check bool) "cas fails on mismatch" false
    (do_op 1 (fun () -> M.cas c ~expect:5 ~update:7));
  Alcotest.(check int) "value is the successful update" 6
    (do_op 2 (fun () -> M.cas_read c));
  (* ABA at the base-object level is possible by design. *)
  Alcotest.(check bool) "back to 5" true
    (do_op 0 (fun () -> M.cas c ~expect:6 ~update:5));
  Alcotest.(check bool) "stale expect now matches again" true
    (do_op 1 (fun () -> M.cas c ~expect:5 ~update:8))

let poised_would_succeed () =
  (* [Step.would_succeed] is what P-successful schedules (Lemma 2/3) are
     built from: CASes succeed only when the expected value is current;
     unconditional steps (writes, reads) are [None], not [Some false]. *)
  let sim, m = make_mem () in
  let module M = (val m) in
  let c = M.make_cas ~writable:true ~name:"c" ~show:string_of_int 5 in
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> M.cas c ~expect:5 ~update:6));
  ignore (Aba_sim.Sim.invoke sim 1 (fun () -> M.cas c ~expect:9 ~update:7));
  ignore (Aba_sim.Sim.invoke sim 2 (fun () -> M.cas_write c 8));
  let would p =
    match Aba_sim.Sim.poised sim p with
    | Some s -> Aba_sim.Step.would_succeed ~pid:p s
    | None -> Alcotest.fail "expected a poised step"
  in
  let opt_bool = Alcotest.(option bool) in
  Alcotest.check opt_bool "matching CAS would succeed" (Some true) (would 0);
  Alcotest.check opt_bool "mismatched CAS would fail" (Some false) (would 1);
  Alcotest.check opt_bool "a write is unconditional" None (would 2);
  (* Executing p2's write changes the picture for p0. *)
  Aba_sim.Sim.step sim 2;
  Alcotest.check opt_bool "CAS invalidated by the write" (Some false) (would 0)

let sc_would_succeed () =
  (* The other conditional step: a poised SC reports link validity for the
     process that will execute it — per-pid, unlike a CAS. *)
  let sim, m = make_mem () in
  let module M = (val m) in
  let o = M.make_llsc ~name:"o" ~show:string_of_int 0 in
  let run p f =
    let pr = Aba_sim.Sim.invoke sim p f in
    Aba_sim.Sim.run_solo sim p;
    Option.get (Aba_sim.Sim.result pr)
  in
  ignore (run 0 (fun () -> M.ll o ~pid:0));
  ignore (run 1 (fun () -> M.ll o ~pid:1));
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> M.sc o ~pid:0 1));
  ignore (Aba_sim.Sim.invoke sim 1 (fun () -> M.sc o ~pid:1 2));
  let would p =
    match Aba_sim.Sim.poised sim p with
    | Some s -> Aba_sim.Step.would_succeed ~pid:p s
    | None -> Alcotest.fail "expected a poised step"
  in
  let opt_bool = Alcotest.(option bool) in
  Alcotest.check opt_bool "p0's linked SC would succeed" (Some true) (would 0);
  Alcotest.check opt_bool "p1's linked SC would succeed" (Some true) (would 1);
  (* p0's SC lands first and invalidates p1's link. *)
  Aba_sim.Sim.step sim 0;
  Alcotest.check opt_bool "p1's SC is now doomed" (Some false) (would 1)

let footprints_and_conflicts () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r = M.make_register ~name:"r" ~show:string_of_int 0 in
  let c = M.make_cas ~name:"c" ~show:string_of_int 0 in
  let o = M.make_llsc ~name:"o" ~show:string_of_int 0 in
  let poise p f =
    ignore (Aba_sim.Sim.invoke sim p f);
    match Aba_sim.Sim.poised sim p with
    | Some s -> Aba_sim.Step.footprint s
    | None -> Alcotest.fail "expected a poised step"
  in
  let read_r = poise 0 (fun () -> M.read r) in
  let write_r = poise 1 (fun () -> M.write r 1) in
  let cas_c = poise 2 (fun () -> M.cas c ~expect:0 ~update:1) in
  Aba_sim.Sim.step sim 2;
  let ll_o = poise 2 (fun () -> M.ll o ~pid:2) in
  let check = Alcotest.(check bool) in
  let conflicts = Aba_sim.Step.conflicts in
  check "read/write on the same cell conflict" true (conflicts read_r write_r);
  check "conflict is symmetric" true (conflicts write_r read_r);
  check "read/read never conflicts" false (conflicts read_r read_r);
  check "different cells never conflict" false (conflicts write_r cas_c);
  check "a failed CAS still counts as mutating" true (conflicts cas_c cas_c);
  check "LL is a load: two LLs commute" false (conflicts ll_o ll_o);
  check "write and CAS on different cells commute" false
    (conflicts write_r cas_c)

let writable_cas () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let c = M.make_cas ~writable:true ~name:"wc" ~show:string_of_int 0 in
  let pr = Aba_sim.Sim.invoke sim 0 (fun () -> M.cas_write c 9) in
  Aba_sim.Sim.run_solo sim 0;
  Alcotest.(check bool) "write applied" true
    (Aba_sim.Sim.result pr = Some ());
  let c2 = M.make_cas ~name:"nc" ~show:string_of_int 0 in
  let pr2 = Aba_sim.Sim.invoke sim 1 (fun () -> M.cas_write c2 9) in
  Alcotest.check_raises "write on plain CAS object rejected"
    (Aba_sim.Sim.Process_crashed
       (1, Invalid_argument "Step.execute: Write on CAS nc"))
    (fun () -> Aba_sim.Sim.run_solo sim 1);
  ignore pr2

let llsc_base_object () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let l = M.make_llsc ~name:"l" ~show:string_of_int 0 in
  let do_op p f =
    let pr = Aba_sim.Sim.invoke sim p f in
    Aba_sim.Sim.run_solo sim p;
    Option.get (Aba_sim.Sim.result pr)
  in
  Alcotest.(check int) "ll initial" 0 (do_op 0 (fun () -> M.ll l ~pid:0));
  Alcotest.(check bool) "vl before any sc (other pid)" true
    (do_op 1 (fun () -> M.vl l ~pid:1));
  Alcotest.(check bool) "sc succeeds" true
    (do_op 0 (fun () -> M.sc l ~pid:0 3));
  Alcotest.(check bool) "other pid's vl now fails" false
    (do_op 1 (fun () -> M.vl l ~pid:1));
  Alcotest.(check bool) "sc without fresh ll fails" false
    (do_op 0 (fun () -> M.sc l ~pid:0 4))

let boundedness_enforced () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r =
    M.make_register ~bound:(Bounded.int_range ~lo:0 ~hi:3) ~name:"b"
      ~show:string_of_int 0
  in
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> M.write r 2));
  Aba_sim.Sim.run_solo sim 0;
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> M.write r 17));
  Alcotest.(check bool) "out-of-domain write crashes the process" true
    (match Aba_sim.Sim.run_solo sim 0 with
    | () -> false
    | exception Aba_sim.Sim.Process_crashed (0, Invalid_argument _) -> true)

let quiescence_and_config () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r1 = M.make_register ~name:"r1" ~show:string_of_int 1 in
  let _r2 = M.make_register ~name:"r2" ~show:string_of_int 2 in
  Alcotest.(check bool) "initially quiescent" true (Aba_sim.Sim.quiescent sim);
  Alcotest.(check (list string)) "reg config" [ "1"; "2" ]
    (Aba_sim.Sim.reg_config sim);
  ignore (Aba_sim.Sim.invoke sim 1 (fun () -> M.write r1 5));
  Alcotest.(check bool) "not quiescent with pending op" false
    (Aba_sim.Sim.quiescent sim);
  Aba_sim.Sim.run_solo sim 1;
  Alcotest.(check bool) "quiescent again" true (Aba_sim.Sim.quiescent sim);
  Alcotest.(check (list string)) "updated config" [ "5"; "2" ]
    (Aba_sim.Sim.reg_config sim);
  Alcotest.(check int) "registers counted" 2
    (List.length (Aba_sim.Sim.registers sim))

let signatures_distinguish () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r = M.make_register ~name:"r" ~show:string_of_int 0 in
  let s0 = Aba_sim.Sim.signature sim in
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> M.write r 1));
  let s1 = Aba_sim.Sim.signature sim in
  Alcotest.(check bool) "poised step changes the signature" true (s0 <> s1);
  Aba_sim.Sim.run_solo sim 0;
  let s2 = Aba_sim.Sim.signature sim in
  Alcotest.(check bool) "register value changes the signature" true
    (s1 <> s2 && s0 <> s2)

let tracing () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r = M.make_register ~name:"r" ~show:string_of_int 0 in
  Aba_sim.Sim.set_recording sim true;
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> M.write r (M.read r + 1)));
  Aba_sim.Sim.run_solo sim 0;
  let t = Aba_sim.Sim.trace sim in
  Alcotest.(check int) "two steps traced" 2 (List.length t);
  Alcotest.(check (list string)) "descriptions" [ "read r"; "write r := 1" ]
    (List.map (fun (e : Aba_sim.Sim.trace_entry) -> e.Aba_sim.Sim.descr) t);
  Aba_sim.Sim.clear_trace sim;
  Alcotest.(check int) "cleared" 0 (List.length (Aba_sim.Sim.trace sim))

let zero_step_calls () =
  let sim, _ = make_mem () in
  let p = Aba_sim.Sim.invoke sim 0 (fun () -> 1 + 1) in
  Alcotest.(check (option int)) "local-only call completes at invoke"
    (Some 2) (Aba_sim.Sim.result p);
  Alcotest.(check int) "zero steps" 0 (Aba_sim.Sim.steps_of p)

let driver_history_shape () =
  let sim, m = make_mem () in
  let module M = (val m) in
  let r = M.make_register ~name:"r" ~show:string_of_int 0 in
  let driver =
    Aba_sim.Driver.create ~sim ~apply:(fun _ op () ->
        match op with
        | `Read -> `Got (M.read r)
        | `Write v ->
            M.write r v;
            `Done)
  in
  Aba_sim.Driver.invoke driver 0 (`Write 3);
  Aba_sim.Driver.invoke driver 1 `Read;
  Aba_sim.Driver.step driver 1;
  (* reader finished before writer took any step: must read 0 *)
  Alcotest.(check bool) "reader result" true
    (Aba_sim.Driver.last_result driver 1 = Some (`Got 0));
  Aba_sim.Driver.finish driver 0;
  let h = Aba_sim.Driver.history driver in
  Alcotest.(check int) "four events" 4 (List.length h);
  Alcotest.(check bool) "well-formed" true (Event.well_formed h)

let suite =
  [
    Alcotest.test_case "register stepping" `Quick basic_register_stepping;
    Alcotest.test_case "interleaving loses updates" `Quick
      interleaving_is_real;
    Alcotest.test_case "CAS semantics (incl. base-level ABA)" `Quick
      cas_semantics;
    Alcotest.test_case "poised steps and would_succeed" `Quick
      poised_would_succeed;
    Alcotest.test_case "SC would_succeed is per-pid" `Quick sc_would_succeed;
    Alcotest.test_case "footprints and the dependence relation" `Quick
      footprints_and_conflicts;
    Alcotest.test_case "writable CAS" `Quick writable_cas;
    Alcotest.test_case "LL/SC/VL base object" `Quick llsc_base_object;
    Alcotest.test_case "bounded domains enforced" `Quick boundedness_enforced;
    Alcotest.test_case "quiescence and reg(C)" `Quick quiescence_and_config;
    Alcotest.test_case "signatures" `Quick signatures_distinguish;
    Alcotest.test_case "step tracing" `Quick tracing;
    Alcotest.test_case "zero-step calls" `Quick zero_step_calls;
    Alcotest.test_case "driver histories" `Quick driver_history_shape;
  ]
