(** DPOR soundness: the reduced search must agree with the naive
    exhaustive oracle on every seeded small workload — same verdict kind,
    never more schedules — and a deliberately ABA-unsafe configuration
    must still be caught after reduction. *)

open Aba_core
module Aba_op = Aba_spec.Aba_register_spec
module Llsc_op = Aba_spec.Llsc_spec
module Explore = Aba_sim.Explore

let dpor_aba ?preemption_bound builder scripts =
  let n = Array.length scripts in
  Explore.dpor
    ~make:(Test_explore.make_aba_instance builder n)
    ~scripts
    ~check:(Test_support.Aba_check.check_ok ~n)
    ?preemption_bound ()

let dpor_llsc builder scripts =
  let n = Array.length scripts in
  Explore.dpor
    ~make:(Test_explore.make_llsc_instance builder n)
    ~scripts
    ~check:(Test_support.Llsc_check.check_ok ~n)
    ()

let verdict_kind = function
  | Explore.Ok _ -> "ok"
  | Explore.Violation _ -> "violation"
  | Explore.Budget_exhausted _ -> "budget"

(* Differential check of one workload: same verdict as the oracle and a
   schedule count that never exceeds the oracle's. *)
let differential_aba label builder scripts =
  let naive = Test_explore.explore_aba builder scripts in
  let { Explore.verdict; stats } = dpor_aba builder scripts in
  Alcotest.(check string)
    (label ^ ": verdict agrees with exhaustive")
    (verdict_kind naive) (verdict_kind verdict);
  (match naive with
  | Explore.Ok k ->
      if stats.Explore.explored > k then
        Alcotest.failf "%s: dpor explored %d > exhaustive %d" label
          stats.Explore.explored k
  | _ -> ());
  stats

let differential_llsc label builder scripts =
  let naive = Test_explore.explore_llsc builder scripts in
  let { Explore.verdict; stats } = dpor_llsc builder scripts in
  Alcotest.(check string)
    (label ^ ": verdict agrees with exhaustive")
    (verdict_kind naive) (verdict_kind verdict);
  (match naive with
  | Explore.Ok k ->
      if stats.Explore.explored > k then
        Alcotest.failf "%s: dpor explored %d > exhaustive %d" label
          stats.Explore.explored k
  | _ -> ())

let aba_differential (label, builder) =
  let test () =
    ignore
      (differential_aba (label ^ "/writer-reader") builder
         Test_explore.aba_workload_writer_reader);
    ignore
      (differential_aba (label ^ "/two-writers") builder
         Test_explore.aba_workload_two_writers);
    ignore
      (differential_aba (label ^ "/all-roles") builder
         Test_explore.aba_workload_all_roles)
  in
  Alcotest.test_case (label ^ " dpor = exhaustive") `Quick test

let llsc_differential (label, builder) =
  let test () =
    differential_llsc (label ^ "/contention") builder
      Test_explore.llsc_workload_contention;
    differential_llsc (label ^ "/three") builder
      Test_explore.llsc_workload_three
  in
  Alcotest.test_case (label ^ " dpor = exhaustive") `Quick test

(* The acceptance workload: a seeded 3-process Fig. 4 run where the
   reduction must bite — same Ok verdict as the oracle, strictly fewer
   schedules than the multinomial bound. *)
let reduction_bites () =
  let stats =
    differential_aba "fig4/3proc" Instances.aba_fig4
      Test_explore.aba_workload_two_writers
  in
  match stats.Explore.schedule_bound with
  | None -> Alcotest.fail "3-process workload overflowed the bound"
  | Some bound ->
      if stats.Explore.explored >= bound then
        Alcotest.failf "no reduction: explored %d >= bound %d"
          stats.Explore.explored bound

(* Mutation test: the tag-wraparound flaw (2-bit... here 2-value tag) must
   survive the reduction — a checker that only visits representative
   schedules still visits one violating trace. *)
let mutation_still_caught () =
  let builder = Instances.aba_bounded_tag ~tag_bound:2 in
  let scripts =
    [| [ Aba_op.DWrite 1; Aba_op.DWrite 1; Aba_op.DWrite 1 ];
       [ Aba_op.DRead; Aba_op.DRead ] |]
  in
  match dpor_aba builder scripts with
  | { Explore.verdict = Explore.Violation (_, h); _ } ->
      Alcotest.(check bool)
        "violating history rejected by checker" false
        (Test_support.Aba_check.check_ok ~n:2 h)
  | { Explore.verdict = Explore.Ok k; _ } ->
      Alcotest.failf "ABA-unsafe tag survived %d reduced schedules" k
  | { Explore.verdict = Explore.Budget_exhausted _; _ } ->
      Alcotest.fail "budget exhausted"

(* A preemption bound of zero leaves only the non-preemptive schedules; the
   search stays sound for them and visits no more than the full search. *)
let preemption_bound () =
  let full = dpor_aba Instances.aba_fig4 Test_explore.aba_workload_all_roles in
  let bounded =
    dpor_aba ~preemption_bound:0 Instances.aba_fig4
      Test_explore.aba_workload_all_roles
  in
  (match bounded.Explore.verdict with
  | Explore.Ok k when k >= 1 -> ()
  | v -> Alcotest.failf "bounded search: unexpected verdict %s" (verdict_kind v));
  if
    bounded.Explore.stats.Explore.explored
    > full.Explore.stats.Explore.explored
  then Alcotest.fail "bounded search explored more than unbounded";
  if full.Explore.stats.Explore.preemption_prunes <> 0 then
    Alcotest.fail "unbounded search reported preemption prunes"

(* Incremental re-execution: rewinding to a prefix and replaying a
   different suffix must reproduce exactly what a fresh instance yields,
   and the replay cost must be the prefix, not the whole path. *)
let incremental_replay () =
  let n = 2 in
  let scripts = Test_explore.aba_workload_all_roles in
  let make () =
    (Test_explore.make_aba_instance Instances.aba_fig4 n ()).Explore.driver
  in
  let u = Aba_sim.Driver.Incremental.create ~make ~scripts () in
  let run_all u schedule =
    List.iter
      (fun p -> ignore (Aba_sim.Driver.Incremental.advance u p))
      schedule;
    let rec drain () =
      match Aba_sim.Driver.Incremental.enabled u with
      | [] -> ()
      | p :: _ ->
          ignore (Aba_sim.Driver.Incremental.advance u p);
          drain ()
    in
    drain ();
    Aba_sim.Driver.history (Aba_sim.Driver.Incremental.driver u)
  in
  let h1 = run_all u [ 0; 0; 1; 1 ] in
  Aba_sim.Driver.Incremental.rewind u ~depth:2;
  Alcotest.(check int) "depth after rewind" 2
    (Aba_sim.Driver.Incremental.depth u);
  Alcotest.(check (list int))
    "path after rewind" [ 0; 0 ]
    (Aba_sim.Driver.Incremental.path u);
  let h2 = run_all u [ 1; 1; 0; 0 ] in
  let stats = Aba_sim.Driver.Incremental.stats u in
  Alcotest.(check int) "one rebuild" 1 stats.Aba_sim.Driver.Incremental.rebuilds;
  Alcotest.(check int)
    "replayed exactly the common prefix" 2
    stats.Aba_sim.Driver.Incremental.actions_replayed;
  (* The same suffix from a fresh instance gives the same history. *)
  let u' = Aba_sim.Driver.Incremental.create ~make ~scripts () in
  let h2' = run_all u' [ 0; 0; 1; 1; 0; 0 ] in
  ignore h2';
  (* Both complete runs linearize; the rewound one is a real history. *)
  Alcotest.(check bool)
    "history before rewind linearizes" true
    (Test_support.Aba_check.check_ok ~n h1);
  Alcotest.(check bool)
    "history after rewind linearizes" true
    (Test_support.Aba_check.check_ok ~n h2)

(* Satellite 1: the multinomial either computes exactly or says so. *)
let count_schedules_boundary () =
  Alcotest.(check (option int))
    "C(4,2) exact" (Some 6)
    (Explore.count_schedules_opt ~n_actions:[| 2; 2 |]);
  Alcotest.(check (option int))
    "12!/(2!8!2!) exact" (Some 2970)
    (Explore.count_schedules_opt ~n_actions:[| 2; 8; 2 |]);
  (* C(62,31) = 916312070471295267 fits in 63-bit ints... *)
  Alcotest.(check bool)
    "C(62,31) computes" true
    (Explore.count_schedules_opt ~n_actions:[| 31; 31 |] <> None);
  (* ...while C(70,35) ~ 1.1e20 does not: option is [None] and the plain
     version saturates instead of returning a wrapped-around value. *)
  Alcotest.(check (option int))
    "C(70,35) overflows to None" None
    (Explore.count_schedules_opt ~n_actions:[| 35; 35 |]);
  Alcotest.(check int)
    "saturating version returns max_int" max_int
    (Explore.count_schedules ~n_actions:[| 35; 35 |]);
  Alcotest.(check int)
    "saturation is monotone" max_int
    (Explore.count_schedules ~n_actions:[| 40; 40; 40 |])

let suite =
  List.concat
    [
      List.map aba_differential (Instances.all_aba ());
      List.map llsc_differential (Instances.all_llsc ());
      [
        Alcotest.test_case "fig4 3-process reduction bites" `Quick
          reduction_bites;
        Alcotest.test_case "ABA-unsafe tag caught after reduction" `Quick
          mutation_still_caught;
        Alcotest.test_case "preemption bound" `Quick preemption_bound;
        Alcotest.test_case "incremental replay equivalence" `Quick
          incremental_replay;
        Alcotest.test_case "count_schedules overflow boundary" `Quick
          count_schedules_boundary;
      ];
    ]
