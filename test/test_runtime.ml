(** Tests for the multicore (Atomic-based) runtime ports: sequential
    semantics, and domain-based stress tests with invariant audits.
    On a single-core host the stress tests still exercise atomicity via
    preemptive systhread scheduling, just with fewer real interleavings. *)

let domains_for_test = 4
let ops_per_domain = 5_000

(* --- LL/SC ports --- *)

(* Uniform closure view over the two ports, one fresh instance per call. *)
type llsc_inst = {
  ll : int -> int;
  sc : int -> int -> bool;
  vl : int -> bool;
}

let boxed_ops =
  ( "boxed",
    fun () ->
      let t = Aba_runtime.Rt_llsc.Boxed.create ~n:domains_for_test ~init:0 in
      {
        ll = (fun p -> Aba_runtime.Rt_llsc.Boxed.ll t ~pid:p);
        sc = (fun p v -> Aba_runtime.Rt_llsc.Boxed.sc t ~pid:p v);
        vl = (fun p -> Aba_runtime.Rt_llsc.Boxed.vl t ~pid:p);
      } )

let packed_ops =
  ( "packed-fig3",
    fun () ->
      let t =
        Aba_runtime.Rt_llsc.Packed_fig3.create ~n:domains_for_test ~init:0 ()
      in
      {
        ll = (fun p -> Aba_runtime.Rt_llsc.Packed_fig3.ll t ~pid:p);
        sc = (fun p v -> Aba_runtime.Rt_llsc.Packed_fig3.sc t ~pid:p v);
        vl = (fun p -> Aba_runtime.Rt_llsc.Packed_fig3.vl t ~pid:p);
      } )

let llsc_sequential (label, mk) =
  let test () =
    let i = mk () in
    Alcotest.(check int) "initial" 0 (i.ll 1);
    Alcotest.(check bool) "fresh vl" true (i.vl 1);
    Alcotest.(check bool) "sc succeeds" true (i.sc 1 42);
    Alcotest.(check int) "new value" 42 (i.ll 2);
    Alcotest.(check bool) "own link consumed" false (i.vl 1);
    Alcotest.(check bool) "repeat sc fails" false (i.sc 1 43);
    ignore (i.ll 1);
    Alcotest.(check bool) "sc after re-ll" true (i.sc 1 44);
    Alcotest.(check int) "readback" 44 (i.ll 0)
  in
  Alcotest.test_case (label ^ " sequential") `Quick test

let llsc_interference (label, mk) =
  let test () =
    let i = mk () in
    ignore (i.ll 1);
    ignore (i.ll 2);
    Alcotest.(check bool) "p1 wins" true (i.sc 1 7);
    Alcotest.(check bool) "p2 loses" false (i.sc 2 8);
    Alcotest.(check int) "p1's value stands" 7 (i.ll 0)
  in
  Alcotest.test_case (label ^ " interference") `Quick test

(* A shared counter via LL/SC retry loops: no increment may be lost. *)
let llsc_counter (label, mk) =
  let test () =
    let i = mk () in
    let increments = ops_per_domain in
    let _ =
      Aba_runtime.Harness.run_domains ~n:domains_for_test (fun d ->
          for _ = 1 to increments do
            let rec retry () =
              let v = i.ll d in
              if not (i.sc d (v + 1)) then retry ()
            in
            retry ()
          done)
    in
    Alcotest.(check int) "no lost increments"
      (domains_for_test * increments)
      (i.ll 0)
  in
  Alcotest.test_case (label ^ " multicore counter") `Quick test

(* Figure 3's SC can fail spuriously-looking (flag b poisoned) only after a
   real intervening SC, so the counter above must still terminate: the
   retry re-LLs.  The packed port bounds values; check the guards. *)
let packed_bounds () =
  (* Assert on the validation behaviour (exception type), not on exact
     message strings, which are an implementation detail. *)
  let rejects what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  in
  rejects "n too large" (fun () ->
      Aba_runtime.Rt_llsc.Packed_fig3.create ~n:41 ~init:0 ());
  rejects "init out of range" (fun () ->
      Aba_runtime.Rt_llsc.Packed_fig3.create ~n:40 ~init:(1 lsl 23) ());
  (* The boundary cases must be accepted. *)
  ignore (Aba_runtime.Rt_llsc.Packed_fig3.create ~n:40 ~init:((1 lsl 22) - 1) ());
  ignore (Aba_runtime.Rt_llsc.Packed_fig3.create ~n:1 ~init:0 ())

(* --- ABA-detecting register ports --- *)

type aba_inst = { dread : int -> int * bool; dwrite : int -> int -> unit }

let rt_aba_sequential (label, mk) =
  let test () =
    let (t : aba_inst) = mk () in
    let v, f = t.dread 1 in
    Alcotest.(check int) "initial" 0 v;
    Alcotest.(check bool) "quiet" false f;
    t.dwrite 0 7;
    let v, f = t.dread 1 in
    Alcotest.(check int) "value" 7 v;
    Alcotest.(check bool) "detected" true f;
    let _, f = t.dread 1 in
    Alcotest.(check bool) "quiet again" false f;
    t.dwrite 0 7;
    let v, f = t.dread 1 in
    Alcotest.(check int) "same value" 7 v;
    Alcotest.(check bool) "ABA detected" true f
  in
  Alcotest.test_case (label ^ " sequential") `Quick test

(* Phased writer/reader ping-pong: in each round the writer performs a
   burst of same-value writes strictly before the reader's poll (turn
   tokens order them), so the poll MUST report a write; a second poll with
   no writes in between must stay quiet.  This is the runtime counterpart
   of the weak-condition checks — sound because the phases never overlap. *)
let rt_aba_no_missed_writes (label, mk) =
  let test () =
    let (t : aba_inst) = mk () in
    let rounds = 2_000 in
    let turn = Atomic.make 0 (* 0 = writer's turn, 1 = reader's *) in
    let missed = Atomic.make 0 in
    let spurious = Atomic.make 0 in
    let _ =
      Aba_runtime.Harness.run_domains ~n:2 (fun d ->
          if d = 0 then
            for _ = 1 to rounds do
              while Atomic.get turn <> 0 do
                Domain.cpu_relax ()
              done;
              (* A same-value burst: tag wraparound territory. *)
              for _ = 1 to 3 do
                t.dwrite 0 1
              done;
              Atomic.set turn 1
            done
          else
            for _ = 1 to rounds do
              while Atomic.get turn <> 1 do
                Domain.cpu_relax ()
              done;
              let _, flag = t.dread 1 in
              if not flag then Atomic.incr missed;
              let _, flag = t.dread 1 in
              if flag then Atomic.incr spurious;
              Atomic.set turn 0
            done)
    in
    Alcotest.(check int) (label ^ ": missed bursts") 0 (Atomic.get missed);
    Alcotest.(check int) (label ^ ": spurious flags") 0 (Atomic.get spurious)
  in
  Alcotest.test_case (label ^ " phased no-miss (2 domains)") `Quick test

let stamped_ops =
  ( "stamped",
    fun () ->
      let t = Aba_runtime.Rt_aba.Stamped.create ~n:domains_for_test 0 in
      {
        dread = (fun p -> Aba_runtime.Rt_aba.Stamped.dread t ~pid:p);
        dwrite = (fun p v -> Aba_runtime.Rt_aba.Stamped.dwrite t ~pid:p v);
      } )

let fig4_ops =
  ( "fig4",
    fun () ->
      let t = Aba_runtime.Rt_aba.Fig4.create ~n:domains_for_test 0 in
      {
        dread = (fun p -> Aba_runtime.Rt_aba.Fig4.dread t ~pid:p);
        dwrite = (fun p v -> Aba_runtime.Rt_aba.Fig4.dwrite t ~pid:p v);
      } )

let from_llsc_ops =
  ( "thm2",
    fun () ->
      let t = Aba_runtime.Rt_aba.From_llsc.create ~n:domains_for_test ~init:0 () in
      {
        dread = (fun p -> Aba_runtime.Rt_aba.From_llsc.dread t ~pid:p);
        dwrite = (fun p v -> Aba_runtime.Rt_aba.From_llsc.dwrite t ~pid:p v);
      } )

(* --- Treiber stack port --- *)

let rt_treiber_sequential () =
  let s =
    Aba_runtime.Rt_treiber.create ~protection:(Tag_bits 16) ~capacity:4 ~n:2 ()
  in
  Alcotest.(check (option int)) "empty" None (Aba_runtime.Rt_treiber.pop s ~pid:0);
  Alcotest.(check bool) "push" true (Aba_runtime.Rt_treiber.push s ~pid:0 1);
  Alcotest.(check bool) "push" true (Aba_runtime.Rt_treiber.push s ~pid:1 2);
  Alcotest.(check (option int)) "LIFO" (Some 2)
    (Aba_runtime.Rt_treiber.pop s ~pid:0);
  Alcotest.(check (option int)) "LIFO" (Some 1)
    (Aba_runtime.Rt_treiber.pop s ~pid:1);
  for i = 1 to 4 do
    Alcotest.(check bool) "fill" true (Aba_runtime.Rt_treiber.push s ~pid:0 i)
  done;
  Alcotest.(check bool) "exhausted" false
    (Aba_runtime.Rt_treiber.push s ~pid:0 9)

let rt_treiber_stress protection label =
  let test () =
    let s =
      Aba_runtime.Rt_treiber.create ~protection ~capacity:64
        ~n:domains_for_test ()
    in
    let results =
      Aba_runtime.Harness.run_domains ~n:domains_for_test (fun d ->
          let pushed = ref [] and popped = ref [] in
          for i = 1 to ops_per_domain do
            let v = (d * ops_per_domain * 2) + i in
            if Aba_runtime.Rt_treiber.push s ~pid:d v then
              pushed := v :: !pushed;
            match Aba_runtime.Rt_treiber.pop s ~pid:d with
            | Some v -> popped := v :: !popped
            | None -> ()
          done;
          (!pushed, !popped))
    in
    let pushed = List.concat_map fst (Array.to_list results) in
    let popped = List.concat_map snd (Array.to_list results) in
    let remaining = ref [] in
    let rec drain () =
      match Aba_runtime.Rt_treiber.pop s ~pid:0 with
      | Some v ->
          remaining := v :: !remaining;
          drain ()
      | None -> ()
    in
    drain ();
    match
      Aba_runtime.Rt_treiber.check_multiset ~pushed ~popped
        ~remaining:!remaining
    with
    | Result.Ok () -> ()
    | Result.Error msg -> Alcotest.failf "%s corrupted: %s" label msg
  in
  Alcotest.test_case (label ^ " stress multiset audit") `Quick test

(* --- Michael–Scott queue port --- *)

let rt_msqueue_sequential protection () =
  let q =
    Aba_runtime.Rt_ms_queue.create ~protection ~capacity:4 ~n:2 ()
  in
  let enqueue v = Aba_runtime.Rt_ms_queue.enqueue q ~pid:0 v in
  let dequeue () = Aba_runtime.Rt_ms_queue.dequeue q ~pid:1 in
  Alcotest.(check (option int)) "empty" None (dequeue ());
  Alcotest.(check bool) "enq 1" true (enqueue 1);
  Alcotest.(check bool) "enq 2" true (enqueue 2);
  Alcotest.(check bool) "enq 3" true (enqueue 3);
  Alcotest.(check (option int)) "FIFO 1" (Some 1) (dequeue ());
  Alcotest.(check (option int)) "FIFO 2" (Some 2) (dequeue ());
  Alcotest.(check bool) "enq 4" true (enqueue 4);
  Alcotest.(check (option int)) "FIFO 3" (Some 3) (dequeue ());
  Alcotest.(check (option int)) "FIFO 4" (Some 4) (dequeue ());
  Alcotest.(check (option int)) "empty again" None (dequeue ());
  (* Exhaustion and recycling through the free list.  Reclaimed
     variants park retired dummies in limbo, so give them their grace
     period back before expecting free nodes. *)
  let flush () =
    match Aba_runtime.Rt_ms_queue.reclaimer q with
    | None -> ()
    | Some rc ->
        for p = 0 to 1 do
          Aba_runtime.Rt_reclaim.release rc ~pid:p;
          Aba_runtime.Rt_reclaim.flush rc ~pid:p
        done
  in
  flush ();
  for i = 1 to 4 do
    Alcotest.(check bool) "fill" true (enqueue i)
  done;
  Alcotest.(check bool) "exhausted" false (enqueue 9);
  Alcotest.(check (option int)) "drain head" (Some 1) (dequeue ());
  flush ();
  Alcotest.(check bool) "slot recycled" true (enqueue 100)

let rt_msqueue_stress protection () =
  let q =
    Aba_runtime.Rt_ms_queue.create ~protection ~capacity:64
      ~n:domains_for_test ()
  in
  let results =
    Aba_runtime.Harness.run_domains ~n:domains_for_test (fun d ->
        let enqueued = ref [] and dequeued = ref [] in
        for i = 1 to ops_per_domain do
          let v = (d * ops_per_domain * 2) + i in
          if Aba_runtime.Rt_ms_queue.enqueue q ~pid:d v then
            enqueued := v :: !enqueued;
          match Aba_runtime.Rt_ms_queue.dequeue q ~pid:d with
          | Some v -> dequeued := v :: !dequeued
          | None -> ()
        done;
        (!enqueued, !dequeued))
  in
  let pushed = List.concat_map fst (Array.to_list results) in
  let popped = List.concat_map snd (Array.to_list results) in
  let remaining = ref [] in
  let rec drain () =
    match Aba_runtime.Rt_ms_queue.dequeue q ~pid:0 with
    | Some v ->
        remaining := v :: !remaining;
        drain ()
    | None -> ()
  in
  drain ();
  match
    Aba_runtime.Rt_treiber.check_multiset ~pushed ~popped
      ~remaining:!remaining
  with
  | Result.Ok () -> ()
  | Result.Error msg -> Alcotest.failf "ms-queue corrupted: %s" msg

let multiset_checker () =
  let check = Aba_runtime.Rt_treiber.check_multiset in
  Alcotest.(check bool) "balanced ok" true
    (Result.is_ok (check ~pushed:[ 1; 2; 3 ] ~popped:[ 2 ] ~remaining:[ 3; 1 ]));
  Alcotest.(check bool) "duplicate pop caught" true
    (Result.is_error
       (check ~pushed:[ 1; 2 ] ~popped:[ 1; 1 ] ~remaining:[ 2 ]));
  Alcotest.(check bool) "phantom value caught" true
    (Result.is_error (check ~pushed:[ 1 ] ~popped:[ 5 ] ~remaining:[]))

let llsc_variants = [ boxed_ops; packed_ops ]
let aba_variants = [ stamped_ops; fig4_ops; from_llsc_ops ]

let suite =
  List.concat
    [
      List.map llsc_sequential llsc_variants;
      List.map llsc_interference llsc_variants;
      List.map llsc_counter llsc_variants;
      [ Alcotest.test_case "packed-fig3 bounds" `Quick packed_bounds ];
      List.map rt_aba_sequential aba_variants;
      List.map rt_aba_no_missed_writes aba_variants;
      [
        Alcotest.test_case "rt-treiber sequential" `Quick
          rt_treiber_sequential;
        rt_treiber_stress (Aba_runtime.Rt_treiber.Tag_bits 16) "tag-16";
        rt_treiber_stress Aba_runtime.Rt_treiber.Llsc "llsc";
        Alcotest.test_case "rt-msqueue sequential FIFO (tagged)" `Quick
          (rt_msqueue_sequential (Aba_runtime.Rt_ms_queue.Tag_bits 16));
        Alcotest.test_case "rt-msqueue sequential FIFO (hazard)" `Quick
          (rt_msqueue_sequential
             (Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Hazard));
        Alcotest.test_case "rt-msqueue stress multiset audit" `Quick
          (rt_msqueue_stress (Aba_runtime.Rt_ms_queue.Tag_bits 16));
        Alcotest.test_case "multiset checker" `Quick multiset_checker;
      ];
    ]
