(** Cross-backend differential testing: the same functor, instantiated over
    the three {!Aba_primitives.Mem_intf.S} backends — direct sequential
    memory ([Seq_mem]), the effect-handler simulator ([Sim_mem]) and the
    multicore runtime memory ([Rt_mem], OCaml 5 [Atomic]) — must produce
    identical results on identical operation sequences when driven
    sequentially.

    This is the tentpole check of the unified backend stack: seq and sim
    are the verified reference semantics, and [Rt_mem] is what the runtime
    layer and the benchmarks actually run.  Any divergence (e.g. the packed
    codec round-tripping differently, or the boxed ABA-free CAS fallback
    failing where structural CAS would succeed) shows up as a mismatched
    transcript. *)

open Aba_core

let qtest ?(count = 40) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 120)
      (triple (int_range 0 100) (int_range 0 100) (int_range 0 7)))

let n = 4

(* Under Sim_mem every shared access is an effect that must reach the
   scheduler; drive each operation to completion solo, which realizes the
   same sequential semantics as the other two backends. *)
type wrap = { run : 'a. int -> (unit -> 'a) -> 'a }

let solo sim =
  {
    run =
      (fun p f ->
        let pr = Aba_sim.Sim.invoke sim p f in
        Aba_sim.Sim.run_solo sim p;
        Option.get (Aba_sim.Sim.result pr));
  }

let direct = { run = (fun _p f -> f ()) }

(* Transcripts as strings: trivially comparable and readable on failure. *)
let aba_transcript ~wrap (inst : Instances.aba) ops =
  List.map
    (fun (p_sel, op_sel, v) ->
      let p = p_sel mod n in
      if op_sel mod 2 = 0 then
        let value, flag = wrap.run p (fun () -> inst.Instances.dread p) in
        Printf.sprintf "p%d:dread=%d,%b" p value flag
      else begin
        wrap.run p (fun () -> inst.Instances.dwrite p v);
        Printf.sprintf "p%d:dwrite %d" p v
      end)
    ops

let llsc_transcript ~wrap (inst : Instances.llsc) ops =
  List.map
    (fun (p_sel, op_sel, v) ->
      let p = p_sel mod n in
      match op_sel mod 3 with
      | 0 -> Printf.sprintf "p%d:ll=%d" p (wrap.run p (fun () -> inst.Instances.ll p))
      | 1 ->
          Printf.sprintf "p%d:sc %d=%b" p v
            (wrap.run p (fun () -> inst.Instances.sc p v))
      | _ -> Printf.sprintf "p%d:vl=%b" p (wrap.run p (fun () -> inst.Instances.vl p)))
    ops

let agree label t_seq t_sim t_rt =
  let pp ts = String.concat "; " ts in
  if t_seq <> t_sim then
    QCheck2.Test.fail_reportf "%s: seq vs sim\nseq: %s\nsim: %s" label
      (pp t_seq) (pp t_sim)
  else if t_seq <> t_rt then
    QCheck2.Test.fail_reportf "%s: seq vs rt\nseq: %s\nrt:  %s" label
      (pp t_seq) (pp t_rt)
  else true

let aba_cross (label, builder) =
  qtest (label ^ ": seq, sim and rt backends agree") gen_ops (fun ops ->
      let t_seq = aba_transcript ~wrap:direct (Instances.aba_seq builder ~n) ops in
      let sim = Aba_sim.Sim.create ~n in
      let t_sim =
        aba_transcript ~wrap:(solo sim) (Instances.aba_in_sim builder sim ~n) ops
      in
      let t_rt = aba_transcript ~wrap:direct (Instances.aba_rt builder ~n) ops in
      agree label t_seq t_sim t_rt)

let llsc_cross (label, builder) =
  qtest (label ^ ": seq, sim and rt backends agree") gen_ops (fun ops ->
      let t_seq =
        llsc_transcript ~wrap:direct (Instances.llsc_seq builder ~n) ops
      in
      let sim = Aba_sim.Sim.create ~n in
      let t_sim =
        llsc_transcript ~wrap:(solo sim)
          (Instances.llsc_in_sim builder sim ~n)
          ops
      in
      let t_rt =
        llsc_transcript ~wrap:direct (Instances.llsc_rt builder ~n) ops
      in
      agree label t_seq t_sim t_rt)

(* The contention-management options are semantically invisible: padding
   only changes heap layout and backoff only paces retries, so the rt
   backend with both enabled must still replay the seq transcripts
   exactly.  (Backoff is capped low here so a failing property would not
   hide behind long spins.) *)
let contended_spec =
  Aba_primitives.Backoff.Exp { min_spins = 1; max_spins = 8 }

let aba_contended (label, builder) =
  qtest (label ^ ": padded+backoff rt matches seq") gen_ops (fun ops ->
      let t_seq = aba_transcript ~wrap:direct (Instances.aba_seq builder ~n) ops in
      let t_rt =
        aba_transcript ~wrap:direct
          (Instances.aba_rt ~padded:true ~backoff:contended_spec builder ~n)
          ops
      in
      agree (label ^ " contended") t_seq t_seq t_rt)

let llsc_contended (label, builder) =
  qtest (label ^ ": padded+backoff rt matches seq") gen_ops (fun ops ->
      let t_seq =
        llsc_transcript ~wrap:direct (Instances.llsc_seq builder ~n) ops
      in
      let t_rt =
        llsc_transcript ~wrap:direct
          (Instances.llsc_rt ~padded:true ~backoff:contended_spec builder ~n)
          ops
      in
      agree (label ^ " contended") t_seq t_seq t_rt)

(* Read combining sits above the builder as a [dread] wrapper; driven
   sequentially every read wins the claim and runs the real protocol, so
   the combined rt instance (with the other contention options on too)
   must still replay the seq transcripts exactly. *)
let aba_combined (label, builder) =
  qtest (label ^ ": combining rt matches seq") gen_ops (fun ops ->
      let t_seq = aba_transcript ~wrap:direct (Instances.aba_seq builder ~n) ops in
      let t_rt =
        aba_transcript ~wrap:direct
          (Instances.aba_rt ~padded:true ~backoff:contended_spec
             ~combining:true builder ~n)
          ops
      in
      agree (label ^ " combined") t_seq t_seq t_rt)

(* The ring queue is the one functor in lib/queue; same discipline as the
   ABA/LL-SC builders above: identical transcripts across the three
   backends when driven sequentially.  Capacity 3 against up-to-120 op
   sequences exercises both the full and the empty boundary, and the
   4-bit variant wraps every slot's sequence word several times, so the
   signed-window tag comparison is differentially checked across
   wraparound too (capacity must stay < 2^(seq_bits-1) = 8). *)
let ring_transcript ~wrap ?seq_bits mem ops =
  let module M = (val mem : Aba_primitives.Mem_intf.S) in
  let module Q = Aba_queue.Ring_queue.Make (M) in
  let q = Q.create ?seq_bits ~capacity:3 ~n () in
  List.map
    (fun (p_sel, op_sel, v) ->
      let p = p_sel mod n in
      if op_sel mod 2 = 0 then
        Printf.sprintf "p%d:enq %d=%b" p v
          (wrap.run p (fun () -> Q.try_enqueue q ~pid:p v))
      else
        Printf.sprintf "p%d:deq=%s" p
          (match wrap.run p (fun () -> Q.try_dequeue q ~pid:p) with
          | Some x -> string_of_int x
          | None -> "empty"))
    ops

let ring_cross ?seq_bits label =
  qtest (label ^ ": seq, sim and rt backends agree") gen_ops (fun ops ->
      let t_seq =
        ring_transcript ~wrap:direct ?seq_bits (Aba_primitives.Seq_mem.make ())
          ops
      in
      let sim = Aba_sim.Sim.create ~n in
      let t_sim =
        ring_transcript ~wrap:(solo sim) ?seq_bits (Aba_sim.Sim_mem.make sim)
          ops
      in
      let t_rt =
        ring_transcript ~wrap:direct ?seq_bits
          (Aba_primitives.Rt_mem.make ~n ())
          ops
      in
      agree label t_seq t_sim t_rt)

let ring_contended =
  qtest "ring queue: padded+backoff rt matches seq" gen_ops (fun ops ->
      let t_seq =
        ring_transcript ~wrap:direct (Aba_primitives.Seq_mem.make ()) ops
      in
      let module M =
        (val Aba_primitives.Rt_mem.make ~n () : Aba_primitives.Mem_intf.S)
      in
      let module Q = Aba_queue.Ring_queue.Make (M) in
      let q = Q.create ~padded:true ~backoff:contended_spec ~capacity:3 ~n () in
      let t_rt =
        List.map
          (fun (p_sel, op_sel, v) ->
            let p = p_sel mod n in
            if op_sel mod 2 = 0 then
              Printf.sprintf "p%d:enq %d=%b" p v (Q.try_enqueue q ~pid:p v)
            else
              Printf.sprintf "p%d:deq=%s" p
                (match Q.try_dequeue q ~pid:p with
                | Some x -> string_of_int x
                | None -> "empty"))
          ops
      in
      agree "ring contended" t_seq t_seq t_rt)

(* --- Double-word CAS (cas2) ---

   The same discipline for the pair-CAS objects: identical transcripts
   across the three backends, with and without a codec (with one, the rt
   backend packs the pair into a single atomic int; without, it emulates
   over a boxed pair — both must be observationally identical to the
   structural reference).  3-bit tags wrap every 8 advances, so a 120-op
   sequence differentially checks tag wraparound arithmetic too. *)

let id_codec = { Aba_primitives.Mem_intf.encode = Fun.id; decode = Fun.id }

let cas2_transcript ~wrap ~codec mem ops =
  let module M = (val mem : Aba_primitives.Mem_intf.S) in
  let codec = if codec then Some id_codec else None in
  let o =
    M.make_cas2 ?codec
      ~bound:(Aba_primitives.Bounded.int_range ~lo:0 ~hi:100)
      ~tag_bits:3 ~name:"w2" ~show:string_of_int 0 0
  in
  List.map
    (fun (p_sel, op_sel, v) ->
      let p = p_sel mod n in
      match op_sel mod 3 with
      | 0 ->
          let value, tag = wrap.run p (fun () -> M.cas2_read o) in
          Printf.sprintf "p%d:read=%d,t%d" p value tag
      | 1 ->
          (* advance: CAS from the current pair, bumping the tag *)
          let v0, t0 = wrap.run p (fun () -> M.cas2_read o) in
          let ok =
            wrap.run p (fun () ->
                M.cas2 o ~expect:v0 ~expect_tag:t0 ~update:(v mod 100)
                  ~update_tag:(t0 + 1))
          in
          Printf.sprintf "p%d:adv %d=%b" p (v mod 100) ok
      | _ ->
          (* stale: right value, wrong tag — must fail in every backend *)
          let v0, t0 = wrap.run p (fun () -> M.cas2_read o) in
          let ok =
            wrap.run p (fun () ->
                M.cas2 o ~expect:v0 ~expect_tag:(t0 + 1) ~update:(v mod 100)
                  ~update_tag:(t0 + 2))
          in
          Printf.sprintf "p%d:stale=%b" p ok)
    ops

let cas2_cross ~codec label =
  qtest (label ^ ": seq, sim and rt backends agree") gen_ops (fun ops ->
      let t_seq =
        cas2_transcript ~wrap:direct ~codec (Aba_primitives.Seq_mem.make ())
          ops
      in
      let sim = Aba_sim.Sim.create ~n in
      let t_sim =
        cas2_transcript ~wrap:(solo sim) ~codec (Aba_sim.Sim_mem.make sim) ops
      in
      let t_rt =
        cas2_transcript ~wrap:direct ~codec
          (Aba_primitives.Rt_mem.make ~n ())
          ops
      in
      agree label t_seq t_sim t_rt)

let cas2_packed_vs_emulated =
  qtest "cas2: packed and boxed rt representations agree" gen_ops (fun ops ->
      let t_packed =
        cas2_transcript ~wrap:direct ~codec:true
          (Aba_primitives.Rt_mem.make ~n ())
          ops
      in
      let t_boxed =
        cas2_transcript ~wrap:direct ~codec:false
          (Aba_primitives.Rt_mem.make ~n ())
          ops
      in
      agree "cas2 packed vs boxed" t_packed t_packed t_boxed)

(* The packed accessors — the allocation-free hot path of the announced
   protections — against the same three backends. *)
let cas2_packed_transcript ~wrap mem ops =
  let module M = (val mem : Aba_primitives.Mem_intf.S) in
  let o =
    M.make_cas2 ~codec:id_codec
      ~bound:(Aba_primitives.Bounded.int_range ~lo:0 ~hi:100)
      ~tag_bits:3 ~name:"w2p" ~show:string_of_int 0 0
  in
  List.map
    (fun (p_sel, op_sel, v) ->
      let p = p_sel mod n in
      if op_sel mod 2 = 0 then
        Printf.sprintf "p%d:readp=%d" p
          (wrap.run p (fun () -> M.cas2_read_packed o))
      else begin
        let w0 = wrap.run p (fun () -> M.cas2_read_packed o) in
        let t0 = Aba_primitives.Mem_intf.unpack2_tag ~tag_bits:3 w0 in
        let upd = M.cas2_pack o (v mod 100) (t0 + 1) in
        Printf.sprintf "p%d:casp %d=%b" p upd
          (wrap.run p (fun () -> M.cas2_packed o ~expect:w0 ~update:upd))
      end)
    ops

let cas2_packed_cross =
  qtest "cas2 packed accessors: seq, sim and rt backends agree" gen_ops
    (fun ops ->
      let t_seq =
        cas2_packed_transcript ~wrap:direct (Aba_primitives.Seq_mem.make ())
          ops
      in
      let sim = Aba_sim.Sim.create ~n in
      let t_sim =
        cas2_packed_transcript ~wrap:(solo sim) (Aba_sim.Sim_mem.make sim) ops
      in
      let t_rt =
        cas2_packed_transcript ~wrap:direct
          (Aba_primitives.Rt_mem.make ~n ())
          ops
      in
      agree "cas2 packed accessors" t_seq t_sim t_rt)

(* The wide packed codec itself: [pack2] must round-trip any value that
   fits in [63 - tag_bits] bits and saturate the tag modulo [2^tag_bits]
   (tags beyond the mask alias, which is exactly the wraparound the
   announced protection guards against). *)
let pack2_roundtrip =
  qtest ~count:200 "pack2/unpack2: roundtrip and tag saturation"
    QCheck2.Gen.(
      triple (int_range 1 40) (int_range 0 0xFFFFF) (int_range 0 (1 lsl 30)))
    (fun (tag_bits, v, t) ->
      let open Aba_primitives.Mem_intf in
      let w = pack2 ~tag_bits v t in
      unpack2_value ~tag_bits w = v
      && unpack2_tag ~tag_bits w = t land ((1 lsl tag_bits) - 1)
      && pack2 ~tag_bits v (t + (1 lsl tag_bits)) = w)

(* The runtime wrappers in [lib/runtime] are the same functors over the
   same backend; spot-check that they too match the sequential reference,
   through their own (packed, validated) [create] paths. *)
let runtime_wrappers_match () =
  let ops =
    [ (0, 0, 0); (1, 1, 3); (1, 0, 0); (2, 1, 5); (0, 2, 0); (3, 0, 0) ]
  in
  let reference =
    llsc_transcript ~wrap:direct
      (Instances.llsc_with_mem
         ~value_bound:(Aba_primitives.Bounded.int_range ~lo:0 ~hi:255)
         ~init:0 Instances.llsc_fig3
         (Aba_primitives.Seq_mem.make ())
         ~n)
      ops
  in
  let rt = Aba_runtime.Rt_llsc.Packed_fig3.create ~n ~init:0 () in
  let wrapped =
    {
      Instances.llsc_name = "rt";
      ll = (fun p -> Aba_runtime.Rt_llsc.Packed_fig3.ll rt ~pid:p);
      sc = (fun p v -> Aba_runtime.Rt_llsc.Packed_fig3.sc rt ~pid:p v);
      vl = (fun p -> Aba_runtime.Rt_llsc.Packed_fig3.vl rt ~pid:p);
      llsc_space = (fun () -> []);
      llsc_initial = 0;
    }
  in
  let actual = llsc_transcript ~wrap:direct wrapped ops in
  Alcotest.(check (list string)) "Rt_llsc.Packed_fig3 matches seq fig3"
    reference actual

let suite =
  List.concat
    [
      List.map aba_cross (Instances.all_aba ());
      List.map llsc_cross (Instances.all_llsc ());
      List.map aba_contended (Instances.all_aba ());
      List.map llsc_contended (Instances.all_llsc ());
      List.map aba_combined (Instances.all_aba ());
      [
        ring_cross "ring queue";
        ring_cross ~seq_bits:4 "ring queue, 4-bit tags (wrapping)";
        ring_contended;
      ];
      [
        cas2_cross ~codec:true "cas2 (packed)";
        cas2_cross ~codec:false "cas2 (boxed emulation)";
        cas2_packed_vs_emulated;
        cas2_packed_cross;
        pack2_roundtrip;
      ];
      [
        Alcotest.test_case "runtime wrapper transcripts" `Quick
          runtime_wrappers_match;
      ];
    ]
