(** Benchmark harness.

    Two parts, together regenerating every paper-derived table and figure:

    1. The experiment tables (E1..E7 from DESIGN.md) — step counts, space,
       covering adversary, wraparound, tradeoff products — printed by the
       shared {!Aba_experiments.Experiments} runners.  These are the
       quantities the paper's theorems are about, measured in the
       simulator's step model where they are exact.
    2. Bechamel wall-clock benchmarks of the runtime ([Atomic]-based)
       ports — one group per theorem/figure — plus a multicore throughput
       table for the Treiber stack variants.  Wall-clock numbers depend on
       the host; the step-model tables above are the primary result. *)

open Bechamel
open Toolkit

(* ----- Bechamel plumbing ----- *)

(* The one bechamel reporter: OLS over the run predictor, monotonic clock
   always, minor-heap words on request — for the groups whose claim is "no
   allocation on the hot path". *)
let benchmark_report ?(alloc = false) name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances =
    if alloc then Instance.[ monotonic_clock; minor_allocated ]
    else Instance.[ monotonic_clock ]
  in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let estimate results key =
    match Hashtbl.find_opt results key with
    | None -> nan
    | Some ols -> (
        match Analyze.OLS.estimates ols with
        | Some [ t ] -> t
        | Some _ | None -> nan)
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let keys =
    List.sort compare (Hashtbl.fold (fun key _ acc -> key :: acc) times [])
  in
  if alloc then begin
    let allocs = Analyze.all ols Instance.minor_allocated raw in
    Printf.printf "\n%s (ns/op, minor words/op):\n" name;
    List.iter
      (fun key ->
        Printf.printf "  %-44s %10.1f %10.2f\n" key (estimate times key)
          (estimate allocs key))
      keys
  end
  else begin
    Printf.printf "\n%s (ns/op):\n" name;
    List.iter
      (fun key -> Printf.printf "  %-44s %10.1f\n" key (estimate times key))
      keys
  end

let staged f = Staged.stage f

(* ----- Runtime micro-benchmarks, one group per theorem/figure ----- *)

(* Theorem 3 / Figure 4: O(1) DRead/DWrite, flat across n. *)
let thm3_fig4_tests =
  List.concat_map
    (fun n ->
      let r = Aba_runtime.Rt_aba.Fig4.create ~n 0 in
      ignore (Aba_runtime.Rt_aba.Fig4.dread r ~pid:1);
      [
        Test.make
          ~name:(Printf.sprintf "fig4.dread n=%d" n)
          (staged (fun () -> ignore (Aba_runtime.Rt_aba.Fig4.dread r ~pid:1)));
        Test.make
          ~name:(Printf.sprintf "fig4.dwrite n=%d" n)
          (staged (fun () -> Aba_runtime.Rt_aba.Fig4.dwrite r ~pid:0 7));
      ])
    [ 2; 8; 32 ]

(* Theorem 2 / Figure 3: one bounded CAS word; uncontended ops are cheap,
   the O(n) loops only bite under contention (shown in the step tables). *)
let thm2_fig3_tests =
  List.concat_map
    (fun n ->
      let l = Aba_runtime.Rt_llsc.Packed_fig3.create ~n ~init:0 () in
      [
        Test.make
          ~name:(Printf.sprintf "fig3.ll+sc n=%d" n)
          (staged (fun () ->
               ignore (Aba_runtime.Rt_llsc.Packed_fig3.ll l ~pid:1);
               ignore (Aba_runtime.Rt_llsc.Packed_fig3.sc l ~pid:1 5)));
        Test.make
          ~name:(Printf.sprintf "fig3.vl n=%d" n)
          (staged (fun () ->
               ignore (Aba_runtime.Rt_llsc.Packed_fig3.vl l ~pid:1)));
      ])
    [ 2; 8; 32 ]

(* Moir-style boxed LL/SC (the unbounded comparison point, [26]). *)
let moir_tests =
  let l = Aba_runtime.Rt_llsc.Boxed.create ~n:8 ~init:0 in
  [
    Test.make ~name:"moir.ll+sc n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_llsc.Boxed.ll l ~pid:1);
           ignore (Aba_runtime.Rt_llsc.Boxed.sc l ~pid:1 5)));
  ]

(* Theorem 4 / Figure 5 + intro: ABA-detecting register flavours. *)
let aba_register_tests =
  let stamped = Aba_runtime.Rt_aba.Stamped.create ~n:8 0 in
  let from_llsc = Aba_runtime.Rt_aba.From_llsc.create ~n:8 ~init:0 () in
  [
    Test.make ~name:"stamped.dread n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_aba.Stamped.dread stamped ~pid:1)));
    Test.make ~name:"stamped.dwrite n=8"
      (staged (fun () -> Aba_runtime.Rt_aba.Stamped.dwrite stamped ~pid:0 7));
    Test.make ~name:"thm2.dread n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_aba.From_llsc.dread from_llsc ~pid:1)));
    Test.make ~name:"thm2.dwrite n=8"
      (staged (fun () ->
           Aba_runtime.Rt_aba.From_llsc.dwrite from_llsc ~pid:0 7));
  ]

(* ----- Unified vs. hand-written hot paths ----- *)

(* The pre-unification hand-written runtime ports, kept verbatim here as
   baselines: since PR 2, [Rt_llsc.Packed_fig3] and [Rt_aba.Fig4] are the
   lib/core functors instantiated over [Rt_mem], and this group checks the
   unified hot paths cost no more time and allocate no more than the
   direct ports they replaced. *)
module Handwritten = struct
  module Packed_fig3 = struct
    type t = { n : int; x : int Atomic.t; b : bool array }

    let create ~n ~init = { n; x = Atomic.make (init lsl n); b = Array.make n false }
    let mask_of t packed = packed land ((1 lsl t.n) - 1)
    let value_of t packed = packed lsr t.n
    let bit_set t packed p = (mask_of t packed lsr p) land 1 = 1
    let all_set t = (1 lsl t.n) - 1

    let ll t ~pid:p =
      let packed = Atomic.get t.x in
      if not (bit_set t packed p) then begin
        t.b.(p) <- false;
        value_of t packed
      end
      else begin
        let rec attempt i =
          if i > t.n then begin
            t.b.(p) <- true;
            value_of t packed
          end
          else begin
            let seen = Atomic.get t.x in
            if Atomic.compare_and_set t.x seen (seen - (1 lsl p)) then begin
              t.b.(p) <- false;
              value_of t seen
            end
            else attempt (i + 1)
          end
        in
        attempt 1
      end

    let sc t ~pid:p y =
      if t.b.(p) then false
      else begin
        let rec attempt i =
          if i > t.n then false
          else begin
            let seen = Atomic.get t.x in
            if bit_set t seen p then false
            else if
              Atomic.compare_and_set t.x seen ((y lsl t.n) lor all_set t)
            then true
            else attempt (i + 1)
          end
        in
        attempt 1
      end
  end

  module Fig4 = struct
    type 'a xval = { value : 'a; writer : int; seq : int }
    type 'a local = { mutable b : bool; pool : Aba_core.Seq_pool.t }

    type 'a t = {
      x : 'a xval option Atomic.t;
      announce : (int * int) option Atomic.t array;
      locals : 'a local array;
      initial : 'a;
    }

    let create ~n init =
      {
        x = Atomic.make None;
        announce = Array.init n (fun _ -> Atomic.make None);
        locals =
          Array.init n (fun _ ->
              { b = false; pool = Aba_core.Seq_pool.create ~n () });
        initial = init;
      }

    let dwrite t ~pid v =
      let l = t.locals.(pid) in
      let s =
        Aba_core.Seq_pool.next l.pool ~me:pid ~read_announce:(fun c ->
            Atomic.get t.announce.(c))
      in
      Atomic.set t.x (Some { value = v; writer = pid; seq = s })

    let key = function
      | None -> None
      | Some { writer; seq; _ } -> Some (writer, seq)

    let dread t ~pid:q =
      let l = t.locals.(q) in
      let xv = Atomic.get t.x in
      let old_announcement = Atomic.get t.announce.(q) in
      Atomic.set t.announce.(q) (key xv);
      let xv' = Atomic.get t.x in
      let flag = if key xv = old_announcement then l.b else true in
      l.b <- xv <> xv';
      let value =
        match xv with None -> t.initial | Some { value; _ } -> value
      in
      (value, flag)
  end
end

let unified_vs_handwritten_tests =
  let n = 8 in
  (* Padding enabled: the claim is that the contention-management layout
     costs nothing per operation — still 0 words/op on ll+sc. *)
  let u_llsc = Aba_runtime.Rt_llsc.Packed_fig3.create ~padded:true ~n ~init:0 () in
  let h_llsc = Handwritten.Packed_fig3.create ~n ~init:0 in
  let u_fig4 = Aba_runtime.Rt_aba.Fig4.create ~n 0 in
  let h_fig4 = Handwritten.Fig4.create ~n 0 in
  ignore (Aba_runtime.Rt_aba.Fig4.dread u_fig4 ~pid:1);
  ignore (Handwritten.Fig4.dread h_fig4 ~pid:1);
  [
    Test.make ~name:"fig3.ll+sc unified-padded n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_llsc.Packed_fig3.ll u_llsc ~pid:1);
           ignore (Aba_runtime.Rt_llsc.Packed_fig3.sc u_llsc ~pid:1 5)));
    Test.make ~name:"fig3.ll+sc handwritten n=8"
      (staged (fun () ->
           ignore (Handwritten.Packed_fig3.ll h_llsc ~pid:1);
           ignore (Handwritten.Packed_fig3.sc h_llsc ~pid:1 5)));
    Test.make ~name:"fig4.dread unified n=8"
      (staged (fun () -> ignore (Aba_runtime.Rt_aba.Fig4.dread u_fig4 ~pid:1)));
    Test.make ~name:"fig4.dread handwritten n=8"
      (staged (fun () -> ignore (Handwritten.Fig4.dread h_fig4 ~pid:1)));
    Test.make ~name:"fig4.dwrite unified n=8"
      (staged (fun () -> Aba_runtime.Rt_aba.Fig4.dwrite u_fig4 ~pid:0 7));
    Test.make ~name:"fig4.dwrite handwritten n=8"
      (staged (fun () -> Handwritten.Fig4.dwrite h_fig4 ~pid:0 7));
  ]

(* Motivation: Treiber stack push+pop latency per protection, including
   the three reclaimer-backed variants (uncontended cost of a protect +
   retire per pop). *)
let treiber_tests =
  List.map
    (fun (name, protection) ->
      let s = Aba_runtime.Rt_treiber.create ~protection ~capacity:64 ~n:8 () in
      Test.make ~name:(Printf.sprintf "treiber.%s push+pop" name)
        (staged (fun () ->
             ignore (Aba_runtime.Rt_treiber.push s ~pid:1 42);
             ignore (Aba_runtime.Rt_treiber.pop s ~pid:1))))
    [
      ("naive", Aba_runtime.Rt_treiber.Tag_bits 0);
      ("tag16", Aba_runtime.Rt_treiber.Tag_bits 16);
      ("announced", Aba_runtime.Rt_treiber.Announced 12);
      ("llsc", Aba_runtime.Rt_treiber.Llsc);
      ("hazard", Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Hazard);
      ("epoch", Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Epoch);
      ( "guarded",
        Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Guarded );
    ]

(* Elimination & combining hot paths, single-domain.  With no counterparty
   every exchange attempt times out after its bounded spin window — the
   price a lightly-contended operation pays for visiting the exchanger —
   and every combining read wins the claim and runs the real scan.  The
   two exchange rows are the allocation claim of the layer: 0.00 minor
   words/op (the slot protocol is raw-int CAS, the per-pid state is
   mutable fields, the retry loops are module-level recursion).  The
   treiber and dread rows allocate only their result ([Some v] / the
   flag pair), same as their elimination-free counterparts. *)
let elimination_hotpath_tests =
  let spec =
    Aba_runtime.Elimination.Exchanger
      { slots = 1; window = 4; backoff = Aba_primitives.Backoff.Noop }
  in
  let e = Aba_runtime.Elimination.create ~spec ~n:2 () in
  let stack =
    Aba_runtime.Rt_treiber.create
      ~protection:(Aba_runtime.Rt_treiber.Tag_bits 16) ~elimination:spec
      ~capacity:64 ~n:2 ()
  in
  let combined = Aba_runtime.Rt_aba.Fig4.create ~combining:true ~n:8 0 in
  ignore (Aba_runtime.Rt_aba.Fig4.dread combined ~pid:1);
  [
    Test.make ~name:"elim.exchange_push timeout"
      (staged (fun () ->
           ignore (Aba_runtime.Elimination.exchange_push e ~pid:0 42)));
    Test.make ~name:"elim.exchange_pop timeout"
      (staged (fun () ->
           ignore (Aba_runtime.Elimination.exchange_pop e ~pid:0)));
    Test.make ~name:"treiber+elim push+pop uncontended"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_treiber.push stack ~pid:1 42);
           ignore (Aba_runtime.Rt_treiber.pop stack ~pid:1)));
    Test.make ~name:"fig4.dread combining claim path"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_aba.Fig4.dread combined ~pid:1)));
  ]

(* Motivation: MS queue enqueue+dequeue latency, counted pointers vs the
   hazard-protocol reclaimed variants. *)
let msqueue_tests =
  List.map
    (fun (name, protection) ->
      let q = Aba_runtime.Rt_ms_queue.create ~protection ~capacity:64 ~n:8 () in
      Test.make ~name:(Printf.sprintf "msqueue.%s enq+deq" name)
        (staged (fun () ->
             ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid:1 42);
             ignore (Aba_runtime.Rt_ms_queue.dequeue q ~pid:1))))
    [
      ("naive", Aba_runtime.Rt_ms_queue.Tag_bits 0);
      ("tag16", Aba_runtime.Rt_ms_queue.Tag_bits 16);
      ("announced", Aba_runtime.Rt_ms_queue.Announced 12);
      ( "hazard",
        Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Hazard );
      ("epoch", Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Epoch);
      ( "guarded",
        Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Guarded );
    ]

(* Ablation: Figure 3's O(n) retry loops under interference, as exact
   simulator step counts (the wall clock cannot see scheduling). *)
let ablation_fig3 () =
  print_endline "\nAblation: figure 3 under interference (simulator steps)";
  Printf.printf "%-6s %14s %14s\n" "n" "LL worst steps" "SC worst steps";
  List.iter
    (fun n ->
      let m =
        Aba_lowerbound.Tradeoff.measure_llsc ~label:"fig3"
          Aba_core.Instances.llsc_fig3 ~n
      in
      Printf.printf "%-6d %14d %14d\n" n m.Aba_lowerbound.Tradeoff.worst_ll
        m.Aba_lowerbound.Tradeoff.worst_sc)
    [ 3; 4; 8; 16; 24; 32 ]

(* Multicore throughput (ops/s) for the stack variants; returns the rows
   so they can be emitted as JSON alongside the reclamation table. *)
let multicore_treiber ~domains ~ops () =
  Printf.printf
    "\nMulticore Treiber throughput (%d domains x %d ops, %d cores):\n"
    domains ops (Aba_runtime.Harness.available_parallelism ());
  List.map
    (fun (name, protection) ->
      let s =
        Aba_runtime.Rt_treiber.create ~protection ~capacity:1024 ~n:domains ()
      in
      let t0 = Aba_obs.Clock.now_ns () in
      let _ =
        Aba_runtime.Harness.run_domains ~n:domains (fun d ->
            for i = 1 to ops do
              ignore (Aba_runtime.Rt_treiber.push s ~pid:d i);
              ignore (Aba_runtime.Rt_treiber.pop s ~pid:d)
            done)
      in
      let dt = Aba_obs.Clock.elapsed_s t0 in
      let throughput = float_of_int (2 * domains * ops) /. dt in
      Printf.printf "  %-8s %10.0f ops/s\n" name throughput;
      (name, domains, ops, throughput))
    [
      ("naive", Aba_runtime.Rt_treiber.Tag_bits 0);
      ("tag16", Aba_runtime.Rt_treiber.Tag_bits 16);
      ("llsc", Aba_runtime.Rt_treiber.Llsc);
    ]

(* ----- Domain-scalability sweep -----

   The contention-management layer (padding + backoff) only shows up
   under real parallelism, which bechamel's single-domain harness cannot
   see.  This sweep runs the contended hot paths at every domain count
   from 1 to [max_domains], on both ends of the padded and backoff axes,
   so the JSON output carries the full scalability curves. *)

type sweep_row = {
  sw_bench : string;
  sw_config : string;
  sw_padded : bool;
  sw_backoff : bool;
  sw_elim : bool;  (** elimination (stacks) / combining (fig4) enabled *)
  sw_domains : int;
  sw_ops : int;  (** per-domain operation count *)
  sw_throughput : float;
  sw_ns_per_op : float;
  sw_exchanges : int;  (** eliminated pairs, or adopted snapshots (fig4) *)
  sw_collisions : int;  (** busy-slot collisions, or scan fallbacks (fig4) *)
}

(* Monotonic: wall time (gettimeofday) is subject to NTP slew, which can
   corrupt ns/op mid-run or even send an interval negative. *)
let time_domains ~domains body =
  let t0 = Aba_obs.Clock.now_ns () in
  let _ = Aba_runtime.Harness.run_domains ~n:domains body in
  Aba_obs.Clock.elapsed_s t0

(* The 2x2 cross of the two contention axes. *)
let sweep_configs =
  [
    ("bare", false, false);
    ("padded", true, false);
    ("backoff", false, true);
    ("padded+backoff", true, true);
  ]

let scalability_sweep ~max_domains ~ops ~elimination () =
  Printf.printf "\nDomain-scalability sweep (1..%d domains, %d ops/domain):\n"
    max_domains ops;
  let rows = ref [] in
  let record ?(elim = false) ?(exchanges = 0) ?(collisions = 0) sw_bench
      sw_config sw_padded sw_backoff sw_domains total_ops dt =
    let sw_throughput = float_of_int total_ops /. dt in
    let sw_ns_per_op = dt *. 1e9 /. float_of_int total_ops in
    Printf.printf "  %-18s %-22s d=%-3d %12.0f ops/s %9.1f ns/op\n" sw_bench
      sw_config sw_domains sw_throughput sw_ns_per_op;
    rows :=
      {
        sw_bench;
        sw_config;
        sw_padded;
        sw_backoff;
        sw_elim = elim;
        sw_domains;
        sw_ops = ops;
        sw_throughput;
        sw_ns_per_op;
        sw_exchanges = exchanges;
        sw_collisions = collisions;
      }
      :: !rows
  in
  (* Time a paired push/pop loop over a stack and record its row together
     with the elimination counters (zero when the stack has no exchanger).
     The paired mix keeps the stack near empty, so with several domains
     pushers and poppers actually meet — the workload the exchanger is
     for. *)
  let treiber_case ~bench ~config ~padded ~backoff ~elim ~protection d =
    let espec =
      if elim then Aba_runtime.Elimination.default_spec
      else Aba_runtime.Elimination.Noop
    in
    let s =
      Aba_runtime.Rt_treiber.create ~padded ~backoff ~elimination:espec
        ~protection ~capacity:1024 ~n:d ()
    in
    let dt =
      time_domains ~domains:d (fun pid ->
          for i = 1 to ops do
            ignore (Aba_runtime.Rt_treiber.push s ~pid i);
            ignore (Aba_runtime.Rt_treiber.pop s ~pid)
          done)
    in
    let exchanges, collisions =
      match Aba_runtime.Rt_treiber.elimination_stats s with
      | None -> (0, 0)
      | Some st ->
          (st.Aba_runtime.Elimination.exchanges,
           st.Aba_runtime.Elimination.collisions)
    in
    let config = if elim then config ^ "+elim" else config in
    record ~elim ~exchanges ~collisions bench config padded backoff d
      (2 * d * ops) dt
  in
  for d = 1 to max_domains do
    List.iter
      (fun (config, padded, backoff) ->
        let spec =
          if backoff then Aba_primitives.Backoff.default_spec
          else Aba_primitives.Backoff.Noop
        in
        (* Figure 3: every domain hammers the one bounded-CAS word. *)
        let l =
          Aba_runtime.Rt_llsc.Packed_fig3.create ~padded ~backoff:spec ~n:d
            ~init:0 ()
        in
        let dt =
          time_domains ~domains:d (fun pid ->
              for i = 1 to ops do
                ignore (Aba_runtime.Rt_llsc.Packed_fig3.ll l ~pid);
                ignore (Aba_runtime.Rt_llsc.Packed_fig3.sc l ~pid i)
              done)
        in
        record "fig3.ll+sc" config padded backoff d (2 * d * ops) dt;
        (* Treiber over the Figure-3 LL/SC word: contended head plus the
           free-list traffic.  With [--elimination] each cell is run on
           both ends of the elimination axis — the full 2x2x2 cross. *)
        treiber_case ~bench:"treiber.push+pop" ~config ~padded ~backoff
          ~elim:false ~protection:Aba_runtime.Rt_treiber.Llsc d;
        if elimination then
          treiber_case ~bench:"treiber.push+pop" ~config ~padded ~backoff
            ~elim:true ~protection:Aba_runtime.Rt_treiber.Llsc d;
        (* MS queue, counted-pointer variant: head, tail and the link
           words are all contended. *)
        let q =
          Aba_runtime.Rt_ms_queue.create ~padded ~backoff
            ~protection:(Aba_runtime.Rt_ms_queue.Tag_bits 16) ~capacity:1024
            ~n:d ()
        in
        let dt =
          time_domains ~domains:d (fun pid ->
              for i = 1 to ops do
                ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid i);
                ignore (Aba_runtime.Rt_ms_queue.dequeue q ~pid)
              done)
        in
        record "msqueue.enq+deq" config padded backoff d (2 * d * ops) dt;
        (* Figure 4 is wait-free — no retry loop for backoff to pace — so
           only the padding axis is swept; the combining axis rides on the
           elimination flag (read-side analogue of the exchanger). *)
        if not backoff then begin
          let fig4_case ~combining =
            let r =
              Aba_runtime.Rt_aba.Fig4.create ~padded ~combining ~n:d 0
            in
            let dt =
              time_domains ~domains:d (fun pid ->
                  for i = 1 to ops do
                    Aba_runtime.Rt_aba.Fig4.dwrite r ~pid i
                  done)
            in
            if not combining then
              record "fig4.dwrite" config padded backoff d (d * ops) dt;
            let dt =
              time_domains ~domains:d (fun pid ->
                  for _ = 1 to ops do
                    ignore (Aba_runtime.Rt_aba.Fig4.dread r ~pid)
                  done)
            in
            let exchanges, collisions =
              match Aba_runtime.Rt_aba.Fig4.combining_stats r with
              | None -> (0, 0)
              | Some st ->
                  (st.Aba_core.Combining.adopted,
                   st.Aba_core.Combining.fallbacks)
            in
            let config = if combining then config ^ "+combining" else config in
            record ~elim:combining ~exchanges ~collisions "fig4.dread" config
              padded backoff d (d * ops) dt
          in
          fig4_case ~combining:false;
          if elimination then fig4_case ~combining:true
        end)
      sweep_configs;
    (* The other two head protections, at the production config only
       (padded+backoff), on both ends of the elimination axis: the
       exchanger is protection-agnostic and the claim is it helps all
       three. *)
    if elimination then
      List.iter
        (fun (bench, protection) ->
          List.iter
            (fun elim ->
              treiber_case ~bench ~config:"padded+backoff" ~padded:true
                ~backoff:true ~elim ~protection d)
            [ false; true ])
        [
          ("treiber-tag16.push+pop", Aba_runtime.Rt_treiber.Tag_bits 16);
          ( "treiber-hazard.push+pop",
            Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Hazard );
        ]
  done;
  List.rev !rows

(* ----- Latency percentiles (Obs-instrumented contended runs) -----

   The sweep above reports means; tail latency is where contention
   actually hurts.  Each case here runs a contended workload with a live
   {!Aba_obs.Obs} handle (histograms only, no trace) and reports the
   per-kind log2-bucket percentiles.  Percentile values are bucket upper
   bounds, so p50 <= p90 <= p99 <= p999 by construction. *)

module Obs = Aba_obs.Obs

type percentile_row = {
  lp_bench : string;
  lp_kind : string;
  lp_domains : int;
  lp_ops : int;  (** per-domain operation count of the driving loop *)
  lp_count : int;  (** events recorded for this kind *)
  lp_retries : int;
  lp_p50 : int;
  lp_p90 : int;
  lp_p99 : int;
  lp_p999 : int;
}

let latency_percentiles ~domains ~ops () =
  Printf.printf "\nLatency percentiles (%d domains x %d ops/domain, ns):\n"
    domains ops;
  Printf.printf "  %-16s %-8s %9s %9s %8s %8s %8s %8s\n" "bench" "kind"
    "count" "retries" "p50" "p90" "p99" "p999";
  let rows = ref [] in
  let case lp_bench setup body =
    let obs = Obs.create ~trace:0 ~n:domains () in
    let st = setup obs in
    let _ = Aba_runtime.Harness.run_domains ~n:domains (fun pid -> body st pid) in
    List.iter
      (fun kind ->
        let count = Obs.op_count obs kind in
        match Obs.histogram obs kind with
        | Some h when count > 0 ->
            let s = Aba_obs.Histogram.summarize h in
            let row =
              {
                lp_bench;
                lp_kind = Obs.kind_name kind;
                lp_domains = domains;
                lp_ops = ops;
                lp_count = count;
                lp_retries = Obs.retry_count obs kind;
                lp_p50 = s.Aba_obs.Histogram.p50;
                lp_p90 = s.Aba_obs.Histogram.p90;
                lp_p99 = s.Aba_obs.Histogram.p99;
                lp_p999 = s.Aba_obs.Histogram.p999;
              }
            in
            Printf.printf "  %-16s %-8s %9d %9d %8d %8d %8d %8d\n" row.lp_bench
              row.lp_kind row.lp_count row.lp_retries row.lp_p50 row.lp_p90
              row.lp_p99 row.lp_p999;
            rows := row :: !rows
        | Some _ | None -> ())
      Obs.all_kinds
  in
  let paired_stack s pid =
    for i = 1 to ops do
      ignore (Aba_runtime.Rt_treiber.push s ~pid i);
      ignore (Aba_runtime.Rt_treiber.pop s ~pid)
    done
  in
  case "treiber-llsc"
    (fun obs ->
      Aba_runtime.Rt_treiber.create ~obs
        ~protection:Aba_runtime.Rt_treiber.Llsc ~capacity:1024 ~n:domains ())
    paired_stack;
  (* The hazard variant also reports [Retire]: the latency spike of the
     amortised scan shows up in its p99/p999. *)
  case "treiber-hazard"
    (fun obs ->
      Aba_runtime.Rt_treiber.create ~obs
        ~protection:
          (Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Hazard)
        ~capacity:1024 ~n:domains ())
    paired_stack;
  case "msqueue-tag16"
    (fun obs ->
      Aba_runtime.Rt_ms_queue.create ~obs
        ~protection:(Aba_runtime.Rt_ms_queue.Tag_bits 16) ~capacity:1024
        ~n:domains ())
    (fun q pid ->
      for i = 1 to ops do
        ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid i);
        ignore (Aba_runtime.Rt_ms_queue.dequeue q ~pid)
      done);
  case "fig3"
    (fun obs ->
      Aba_runtime.Rt_llsc.Packed_fig3.create ~padded:true
        ~backoff:Aba_primitives.Backoff.default_spec ~obs ~n:domains ~init:0 ())
    (fun l pid ->
      for i = 1 to ops do
        ignore (Aba_runtime.Rt_llsc.Packed_fig3.ll l ~pid);
        ignore (Aba_runtime.Rt_llsc.Packed_fig3.sc l ~pid i)
      done);
  case "fig4"
    (fun obs -> Aba_runtime.Rt_aba.Fig4.create ~padded:true ~obs ~n:domains 0)
    (fun r pid ->
      for i = 1 to ops do
        Aba_runtime.Rt_aba.Fig4.dwrite r ~pid i;
        ignore (Aba_runtime.Rt_aba.Fig4.dread r ~pid)
      done);
  List.rev !rows

(* ----- Part 6: bounded-queue capacity sweep -----

   The ingress tier: the lock-free ring, its blocking (backpressure)
   wrapper and the two-lock baseline, across a producers x consumers x
   capacity grid.  The skewed cells put the queue under the two boundary
   pressures — more producers than consumers against a tiny capacity
   keeps it full (enqueue [Fail] / [Wait_full] traffic), the converse
   keeps it empty ([Empty] / [Wait_empty]) — and each cell's Obs
   histograms become per-kind latency percentile rows.  The blocking
   wrapper's wait phase is recorded separately from the ring's own
   operations, so the rows distinguish "the CAS was contended" from "the
   queue was at its bound". *)

type capacity_row = {
  cs_impl : string;  (** ring-lf | ring-blocking | two-lock *)
  cs_producers : int;
  cs_consumers : int;
  cs_capacity : int;
  cs_kind : string;
  cs_count : int;  (** events recorded for this kind *)
  cs_retries : int;
  cs_ops : int;  (** enqueues per producer *)
  cs_throughput : float;  (** transferred items per second, whole cell *)
  cs_p50 : int;
  cs_p90 : int;
  cs_p99 : int;
  cs_p999 : int;
}

(* One bounded queue reduced to the two closures the workload needs. *)
let queue_impls =
  [
    ( "ring-lf",
      fun obs ~capacity ~n ->
        let q = Aba_queue.Rt_ring.create ~obs ~capacity ~n () in
        ( (fun ~pid v -> Aba_queue.Rt_ring.try_enqueue q ~pid v),
          fun ~pid -> Aba_queue.Rt_ring.try_dequeue q ~pid ) );
    ( "ring-blocking",
      fun obs ~capacity ~n ->
        let q = Aba_queue.Blocking.create ~obs ~capacity ~n () in
        ( (fun ~pid v -> Aba_queue.Blocking.enqueue q ~pid v),
          fun ~pid -> Aba_queue.Blocking.dequeue q ~pid ) );
    ( "two-lock",
      fun obs ~capacity ~n ->
        let q = Aba_queue.Two_lock_queue.create ~obs ~capacity ~n () in
        ( (fun ~pid v -> Aba_queue.Two_lock_queue.try_enqueue q ~pid v),
          fun ~pid -> Aba_queue.Two_lock_queue.try_dequeue q ~pid ) );
  ]

let capacity_sweep ~grid ~capacities ~ops () =
  Printf.printf "\nCapacity sweep (bounded queues, %d enqueues/producer):\n" ops;
  Printf.printf "  %-14s %5s %3s %3s %-10s %9s %9s %8s %8s %8s %8s %12s\n"
    "impl" "cap" "p" "c" "kind" "count" "retries" "p50" "p90" "p99" "p999"
    "items/s";
  let rows = ref [] in
  let cell ~producers ~consumers ~capacity (cs_impl, build) =
    let n = producers + consumers in
    let obs = Obs.create ~trace:0 ~n () in
    let enq, deq = build obs ~capacity ~n in
    let total = producers * ops in
    let consumed = Atomic.make 0 in
    let t0 = Aba_obs.Clock.now_ns () in
    let _ =
      Aba_runtime.Harness.run_domains ~n (fun pid ->
          if pid < producers then
            (* Producers push a fixed quota; a Fail/Timeout verdict is
               recorded by the queue itself, then retried here. *)
            for i = 1 to ops do
              while not (enq ~pid i) do
                Domain.cpu_relax ()
              done
            done
          else
            (* Consumers drain until every produced item is accounted
               for; the blocking dequeue's bounded wait window keeps the
               final laps from hanging once producers are done. *)
            while Atomic.get consumed < total do
              match deq ~pid with
              | Some _ -> Atomic.incr consumed
              | None -> Domain.cpu_relax ()
            done)
    in
    let dt = Aba_obs.Clock.elapsed_s t0 in
    let cs_throughput = float_of_int total /. dt in
    List.iter
      (fun kind ->
        let count = Obs.op_count obs kind in
        match Obs.histogram obs kind with
        | Some h when count > 0 ->
            let s = Aba_obs.Histogram.summarize h in
            let row =
              {
                cs_impl;
                cs_producers = producers;
                cs_consumers = consumers;
                cs_capacity = capacity;
                cs_kind = Obs.kind_name kind;
                cs_count = count;
                cs_retries = Obs.retry_count obs kind;
                cs_ops = ops;
                cs_throughput;
                cs_p50 = s.Aba_obs.Histogram.p50;
                cs_p90 = s.Aba_obs.Histogram.p90;
                cs_p99 = s.Aba_obs.Histogram.p99;
                cs_p999 = s.Aba_obs.Histogram.p999;
              }
            in
            Printf.printf
              "  %-14s %5d %3d %3d %-10s %9d %9d %8d %8d %8d %8d %12.0f\n"
              row.cs_impl row.cs_capacity row.cs_producers row.cs_consumers
              row.cs_kind row.cs_count row.cs_retries row.cs_p50 row.cs_p90
              row.cs_p99 row.cs_p999 row.cs_throughput;
            rows := row :: !rows
        | Some _ | None -> ())
      Obs.all_kinds
  in
  List.iter
    (fun (producers, consumers) ->
      List.iter
        (fun capacity ->
          List.iter (cell ~producers ~consumers ~capacity) queue_impls)
        capacities)
    grid;
  List.rev !rows

(* The ring's hot-path allocation claim: 0.00 minor words/op on an
   uncontended enqueue + [dequeue_or] pair (the counters are immediate-int
   hardware CAS words, the retry loops are module-level recursion, and
   [dequeue_or] returns the bare int — [try_dequeue]'s only allocation
   would be its [Some] box).  The two-lock baseline rides along for the
   time column: what a Mutex pair per op costs even uncontended. *)
let ring_hotpath_tests =
  let ring = Aba_queue.Rt_ring.create ~capacity:64 ~n:2 () in
  let tl = Aba_queue.Two_lock_queue.create ~capacity:64 ~n:2 () in
  (* One resident element: both ends of each pair always succeed. *)
  ignore (Aba_queue.Rt_ring.try_enqueue ring ~pid:0 1);
  ignore (Aba_queue.Two_lock_queue.try_enqueue tl ~pid:0 1);
  [
    Test.make ~name:"ring.enq+deq_or n=2"
      (staged (fun () ->
           ignore (Aba_queue.Rt_ring.try_enqueue ring ~pid:1 42);
           ignore (Aba_queue.Rt_ring.dequeue_or ring ~pid:1 ~default:0)));
    Test.make ~name:"two_lock.enq+deq_or n=2"
      (staged (fun () ->
           ignore (Aba_queue.Two_lock_queue.try_enqueue tl ~pid:1 42);
           ignore (Aba_queue.Two_lock_queue.dequeue_or tl ~pid:1 ~default:0)));
  ]

(* The announced protection's hot-path claim: an uncontended push +
   [pop_or] pair costs {e zero} minor words and no per-op retire or scan
   — the head is one packed atomic int, the announcement a strided-array
   write of an immediate, and [pop_or] returns the bare int.  The tag16
   row is the baseline it must match (same packed word, no announcement);
   the plain [pop] rows allocate only their [Some] box.  Crossing scans
   are amortised away entirely here: 2^11 installs per scan at k = 12,
   invisible at bechamel's sample sizes. *)
let announced_hotpath_tests =
  let tag =
    Aba_runtime.Rt_treiber.create
      ~protection:(Aba_runtime.Rt_treiber.Tag_bits 16) ~capacity:64 ~n:2 ()
  in
  let ann =
    Aba_runtime.Rt_treiber.create
      ~protection:(Aba_runtime.Rt_treiber.Announced 12) ~capacity:64 ~n:2 ()
  in
  let q =
    Aba_runtime.Rt_ms_queue.create
      ~protection:(Aba_runtime.Rt_ms_queue.Announced 12) ~capacity:64 ~n:2 ()
  in
  (* One resident element: both ends of every pair always succeed. *)
  ignore (Aba_runtime.Rt_treiber.push tag ~pid:0 1 : bool);
  ignore (Aba_runtime.Rt_treiber.push ann ~pid:0 1 : bool);
  ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid:0 1 : bool);
  [
    Test.make ~name:"treiber-tag16.push+pop_or baseline"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_treiber.push tag ~pid:1 42 : bool);
           ignore (Aba_runtime.Rt_treiber.pop_or tag ~pid:1 ~default:0 : int)));
    Test.make ~name:"treiber-announced.push+pop"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_treiber.push ann ~pid:1 42 : bool);
           ignore (Aba_runtime.Rt_treiber.pop ann ~pid:1 : int option)));
    Test.make ~name:"treiber-announced.push+pop_or"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_treiber.push ann ~pid:1 42 : bool);
           ignore (Aba_runtime.Rt_treiber.pop_or ann ~pid:1 ~default:0 : int)));
    Test.make ~name:"msqueue-announced.enq+deq_or"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid:1 42 : bool);
           ignore
             (Aba_runtime.Rt_ms_queue.dequeue_or q ~pid:1 ~default:0 : int)));
  ]

(* ----- Part 8: protection sweep (wraparound-safe tags vs reclaimers) -----

   The head-to-head the [Announced] protection exists for: the same
   contended paired churn as the percentile cases, across every
   protection regime of both structures, with throughput and per-kind
   tail latency in one table.  The announced rows run at k = 8 (half
   window 128) so the crossing scans actually fire at smoke op counts
   and show up as [scan] rows — their count per op is the "no per-op
   scan" claim made measurable.  Reclaimer rows must have no scan rows
   at all (their cost shows as [retire] events instead); CI validates
   exactly that shape. *)

type protection_row = {
  pv_structure : string;
  pv_protection : string;
  pv_domains : int;
  pv_ops : int;  (** per-domain operation pairs of the driving loop *)
  pv_kind : string;
  pv_count : int;
  pv_retries : int;
  pv_throughput : float;  (** total ops/s of the whole churn *)
  pv_p50 : int;
  pv_p90 : int;
  pv_p99 : int;
  pv_p999 : int;
}

let protection_sweep ~domains ~ops () =
  Printf.printf "\nProtection sweep (%d domains x %d op-pairs/domain, ns):\n"
    domains ops;
  Printf.printf "  %-9s %-11s %-8s %9s %8s %12s %8s %8s %8s %8s\n" "struct"
    "protection" "kind" "count" "retries" "ops/s" "p50" "p90" "p99" "p999";
  let rows = ref [] in
  let case pv_structure pv_protection setup body =
    let obs = Obs.create ~trace:0 ~n:domains () in
    let st = setup obs in
    let t0 = Aba_obs.Clock.now_ns () in
    let _ =
      Aba_runtime.Harness.run_domains ~n:domains (fun pid -> body st pid)
    in
    let dt = Aba_obs.Clock.elapsed_s t0 in
    let pv_throughput = float_of_int (2 * domains * ops) /. dt in
    List.iter
      (fun kind ->
        let count = Obs.op_count obs kind in
        match Obs.histogram obs kind with
        | Some h when count > 0 ->
            let s = Aba_obs.Histogram.summarize h in
            let row =
              {
                pv_structure;
                pv_protection;
                pv_domains = domains;
                pv_ops = ops;
                pv_kind = Obs.kind_name kind;
                pv_count = count;
                pv_retries = Obs.retry_count obs kind;
                pv_throughput;
                pv_p50 = s.Aba_obs.Histogram.p50;
                pv_p90 = s.Aba_obs.Histogram.p90;
                pv_p99 = s.Aba_obs.Histogram.p99;
                pv_p999 = s.Aba_obs.Histogram.p999;
              }
            in
            Printf.printf
              "  %-9s %-11s %-8s %9d %8d %12.0f %8d %8d %8d %8d\n"
              row.pv_structure row.pv_protection row.pv_kind row.pv_count
              row.pv_retries row.pv_throughput row.pv_p50 row.pv_p90
              row.pv_p99 row.pv_p999;
            rows := row :: !rows
        | Some _ | None -> ())
      Obs.all_kinds
  in
  List.iter
    (fun (name, protection) ->
      case "treiber" name
        (fun obs ->
          Aba_runtime.Rt_treiber.create ~obs ~protection ~capacity:1024
            ~n:domains ())
        (fun s pid ->
          for i = 1 to ops do
            ignore (Aba_runtime.Rt_treiber.push s ~pid i);
            ignore (Aba_runtime.Rt_treiber.pop s ~pid)
          done))
    [
      ("tag16", Aba_runtime.Rt_treiber.Tag_bits 16);
      ("announced8", Aba_runtime.Rt_treiber.Announced 8);
      ("hazard", Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Hazard);
      ("epoch", Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Epoch);
      ( "guarded",
        Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Guarded );
    ];
  List.iter
    (fun (name, protection) ->
      case "msqueue" name
        (fun obs ->
          Aba_runtime.Rt_ms_queue.create ~obs ~protection ~capacity:1024
            ~n:domains ())
        (fun q pid ->
          for i = 1 to ops do
            ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid i);
            ignore (Aba_runtime.Rt_ms_queue.dequeue q ~pid)
          done))
    [
      ("tag16", Aba_runtime.Rt_ms_queue.Tag_bits 16);
      ("announced8", Aba_runtime.Rt_ms_queue.Announced 8);
      ( "hazard",
        Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Hazard );
      ("epoch", Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Epoch);
      ( "guarded",
        Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Guarded );
    ];
  List.rev !rows

(* ----- Part 9: recovery sweep (detectable stack crash-churn) -----

   The cost of detectability under fire: the detectable Treiber stack
   ({!Aba_core.Detectable}) churned with the harness's crash plan — every
   [crash_every]-th round per domain is killed at a randomized shared
   access and resolved by the stack's recovery protocol — across the
   three head protections, with the exactly-once multiset audit as the
   pass/fail and the new [crash]/[recover] Obs kinds in the same
   per-kind percentile table as every other sweep.  A crash-free control
   row set (crash_period 0) pins the baseline; CI asserts its crash and
   recover counters are exactly zero. *)

type recovery_row = {
  rv_structure : string;
  rv_protection : string;
  rv_domains : int;
  rv_ops : int;
  rv_crash_every : int;  (** 0 = crash injection disabled (control) *)
  rv_kind : string;
  rv_count : int;
  rv_retries : int;
  rv_throughput : float;
  rv_p50 : int;
  rv_p90 : int;
  rv_p99 : int;
  rv_p999 : int;
  rv_crashes : int;
  rv_recoveries : int;
  rv_audit_ok : bool;
}

let recovery_sweep ~domains ~ops ~crash_every () =
  Printf.printf
    "\nRecovery sweep (detectable stack, %d domains x %d rounds/domain, \
     crash every %d, ns):\n"
    domains ops crash_every;
  Printf.printf "  %-11s %6s %-8s %9s %12s %8s %8s %8s %8s %7s %7s %6s\n"
    "protection" "period" "kind" "count" "ops/s" "p50" "p90" "p99" "p999"
    "crashes" "recover" "audit";
  let rows = ref [] in
  let case rv_protection protection rv_crash_every =
    let m = Aba_primitives.Rt_mem.make ~n:domains () in
    let module M = (val m : Aba_primitives.Mem_intf.S) in
    let module D = Aba_core.Detectable.Make (M) in
    let fuse = Aba_runtime.Harness.Fuse.create ~n:domains in
    let st =
      D.Stack.create ~protection ~tag_bits:8
        ~on_step:(Aba_runtime.Harness.Fuse.on_step fuse)
        ~name:"dstk" ~n:domains
        ~capacity:(((domains + 2) * ops) + 8)
        ()
    in
    let crashes =
      if rv_crash_every = 0 then None
      else
        Some
          {
            Aba_runtime.Harness.fuse;
            crash_every = rv_crash_every;
            fuse_steps = Aba_runtime.Harness.default_fuse_steps;
            recover =
              (fun ~pid ->
                match D.Stack.recover st ~pid with
                | Aba_core.Detectable.R_none ->
                    {
                      Aba_runtime.Harness.completed = false;
                      r_pushed = [];
                      r_popped = [];
                    }
                | Aba_core.Detectable.R_pushed v ->
                    {
                      Aba_runtime.Harness.completed = true;
                      r_pushed = [ v ];
                      r_popped = [];
                    }
                | Aba_core.Detectable.R_popped (Some v) ->
                    {
                      Aba_runtime.Harness.completed = true;
                      r_pushed = [];
                      r_popped = [ v ];
                    }
                | Aba_core.Detectable.R_popped None ->
                    {
                      Aba_runtime.Harness.completed = true;
                      r_pushed = [];
                      r_popped = [];
                    });
          }
    in
    let obs = Obs.create ~trace:0 ~n:domains () in
    let t0 = Aba_obs.Clock.now_ns () in
    let report =
      Aba_runtime.Harness.churn ~mix:Aba_runtime.Harness.Paired ~obs ?crashes
        ~n:domains ~ops
        ~push:(fun ~pid v ->
          D.Stack.push st ~pid v;
          true)
        ~pop:(fun ~pid -> D.Stack.pop st ~pid)
        ()
    in
    let dt = Aba_obs.Clock.elapsed_s t0 in
    let rv_throughput = float_of_int (2 * domains * ops) /. dt in
    let rv_audit_ok = Result.is_ok report.Aba_runtime.Harness.outcome in
    (match report.Aba_runtime.Harness.outcome with
    | Ok () -> ()
    | Error e -> Printf.printf "  AUDIT FAILURE (%s): %s\n" rv_protection e);
    List.iter
      (fun kind ->
        let count = Obs.op_count obs kind in
        match Obs.histogram obs kind with
        | Some h when count > 0 ->
            let s = Aba_obs.Histogram.summarize h in
            let row =
              {
                rv_structure = "dstack";
                rv_protection;
                rv_domains = domains;
                rv_ops = ops;
                rv_crash_every;
                rv_kind = Obs.kind_name kind;
                rv_count = count;
                rv_retries = Obs.retry_count obs kind;
                rv_throughput;
                rv_p50 = s.Aba_obs.Histogram.p50;
                rv_p90 = s.Aba_obs.Histogram.p90;
                rv_p99 = s.Aba_obs.Histogram.p99;
                rv_p999 = s.Aba_obs.Histogram.p999;
                rv_crashes = report.Aba_runtime.Harness.crashed;
                rv_recoveries = report.Aba_runtime.Harness.recovered;
                rv_audit_ok;
              }
            in
            Printf.printf
              "  %-11s %6d %-8s %9d %12.0f %8d %8d %8d %8d %7d %7d %6s\n"
              row.rv_protection row.rv_crash_every row.rv_kind row.rv_count
              row.rv_throughput row.rv_p50 row.rv_p90 row.rv_p99 row.rv_p999
              row.rv_crashes row.rv_recoveries
              (if row.rv_audit_ok then "ok" else "FAIL");
            rows := row :: !rows
        | Some _ | None -> ())
      Obs.all_kinds
  in
  List.iter
    (fun (name, protection) ->
      (* Crash-free control first, then the crash-churn run. *)
      case name protection 0;
      case name protection crash_every)
    [
      ("tag8", Aba_core.Detectable.Tag_bits);
      ("llsc", Aba_core.Detectable.Llsc);
      ("announced8", Aba_core.Detectable.Announced);
    ];
  List.rev !rows

(* ----- Part 7: sharded service tier (open-loop SLO sweep) -----

   The sweep itself lives in {!Aba_experiments.Service_bench} (shared
   with the [aba_lab service] subcommand); this file contributes the
   hot-path allocation group.  The claim mirrors [ring-hotpath]: with
   combining disabled the router adds {e zero} minor words per op over
   the bare structure — the key hash is an int mix, the depth estimate
   an owner-only strided-array bump, and a pop hands back the shard's
   own [Some] box unopened.  The flat-combined row allocates the same 2
   words (the decoded pop's [Some]): the publication protocol itself is
   raw-int CAS on immediate-tagged words. *)
let service_hotpath_tests =
  let module Svc = Aba_apps.Service in
  let bare =
    Aba_runtime.Rt_treiber.create
      ~protection:(Aba_runtime.Rt_treiber.Tag_bits 16) ~capacity:64 ~n:2 ()
  in
  let direct = Svc.Stack_service.create ~steal:true ~shards:4 ~capacity:64 ~n:2 () in
  let combined =
    Svc.Stack_service.create ~steal:true ~combining:true ~shards:4
      ~capacity:64 ~n:2 ()
  in
  (* One resident element under the benched key: both ends of every
     push+pop pair succeed and the steal path stays cold. *)
  ignore (Aba_runtime.Rt_treiber.push bare ~pid:0 1 : bool);
  ignore (Svc.Stack_service.push direct ~pid:0 ~key:7 1 : bool);
  ignore (Svc.Stack_service.push combined ~pid:0 ~key:7 1 : bool);
  [
    Test.make ~name:"treiber-tag16.push+pop bare baseline"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_treiber.push bare ~pid:1 42 : bool);
           ignore (Aba_runtime.Rt_treiber.pop bare ~pid:1 : int option)));
    Test.make ~name:"service.push+pop 4-shard direct"
      (staged (fun () ->
           ignore (Svc.Stack_service.push direct ~pid:1 ~key:7 42 : bool);
           ignore (Svc.Stack_service.pop direct ~pid:1 ~key:7 : int option)));
    Test.make ~name:"service.push+pop 4-shard flat-combined"
      (staged (fun () ->
           ignore (Svc.Stack_service.push combined ~pid:1 ~key:7 42 : bool);
           ignore (Svc.Stack_service.pop combined ~pid:1 ~key:7 : int option)));
  ]

(* ----- Command line ----- *)

type options = {
  json : string option;
  domains : int;  (** multicore treiber table + reclaim comparison *)
  treiber_ops : int;
  reclaim_ops : int;
  max_domains : int;  (** sweep upper bound *)
  sweep_ops : int;
  smoke : bool;  (** sweep + JSON only: CI-sized smoke run *)
  elimination : bool;  (** add the elimination/combining axis to the sweep *)
  service : bool;  (** part 7: the sharded-service open-loop sweep *)
  protections : bool;  (** part 8: the protection head-to-head sweep *)
  recovery : bool;  (** part 9: the detectable-stack crash-churn sweep *)
  crash_every : int;  (** crash period of the recovery sweep *)
  slo_ns : int;
  arrival_ns : int;
}

let default_options () =
  {
    json = None;
    domains = 4;
    treiber_ops = 50_000;
    reclaim_ops = 20_000;
    max_domains = Aba_runtime.Harness.available_parallelism ();
    sweep_ops = 10_000;
    smoke = false;
    elimination = false;
    service = false;
    protections = false;
    recovery = false;
    crash_every = 7;
    slo_ns = 10_000;
    arrival_ns = 1_000;
  }

let usage_and_exit code =
  prerr_endline
    "usage: bench [--json FILE] [--domains N] [--ops N] [--max-domains N]\n\
    \             [--sweep-ops N] [--smoke] [--elimination] [--service]\n\
    \             [--protections] [--recovery] [--crash-every N]\n\
    \             [--slo-ns N] [--arrival-ns N]\n\n\
    \  --json FILE     write machine-readable results to FILE\n\
    \  --domains N     domain count for the treiber/reclaim tables \
     (default 4)\n\
    \  --ops N         per-domain ops for the treiber and reclaim tables\n\
    \  --max-domains N scalability sweep upper bound (default: all cores)\n\
    \  --sweep-ops N   per-domain ops per sweep cell (default 10000)\n\
    \  --smoke         only the sweeps + percentiles (plus JSON): CI smoke\n\
    \  --elimination   sweep the elimination/combining axis too (2x2x2)\n\
    \  --service       part 7: the sharded service tier open-loop sweep\n\
    \  --protections   part 8: protection head-to-head sweep (announced \
     vs reclaimers)\n\
    \  --recovery      part 9: detectable-stack crash-churn sweep \
     (exactly-once audit)\n\
    \  --crash-every N recovery sweep crash period in rounds (default 7)\n\
    \  --slo-ns N      service SLO budget in ns (default 10000)\n\
    \  --arrival-ns N  service mean inter-arrival in ns (default 1000)";
  exit code

let parse_options () =
  let o = ref (default_options ()) in
  let argc = Array.length Sys.argv in
  let value i =
    if i + 1 >= argc then usage_and_exit 2 else Sys.argv.(i + 1)
  in
  let int_value i =
    match int_of_string_opt (value i) with
    | Some n when n > 0 -> n
    | Some _ | None ->
        Printf.eprintf "bench: %s needs a positive integer\n" Sys.argv.(i);
        usage_and_exit 2
  in
  let rec go i =
    if i < argc then
      match Sys.argv.(i) with
      | "--json" -> o := { !o with json = Some (value i) }; go (i + 2)
      | "--domains" -> o := { !o with domains = int_value i }; go (i + 2)
      | "--ops" ->
          let n = int_value i in
          o := { !o with treiber_ops = n; reclaim_ops = n };
          go (i + 2)
      | "--max-domains" -> o := { !o with max_domains = int_value i }; go (i + 2)
      | "--sweep-ops" -> o := { !o with sweep_ops = int_value i }; go (i + 2)
      | "--smoke" -> o := { !o with smoke = true }; go (i + 1)
      | "--elimination" -> o := { !o with elimination = true }; go (i + 1)
      | "--service" -> o := { !o with service = true }; go (i + 1)
      | "--protections" -> o := { !o with protections = true }; go (i + 1)
      | "--recovery" -> o := { !o with recovery = true }; go (i + 1)
      | "--crash-every" -> o := { !o with crash_every = int_value i }; go (i + 2)
      | "--slo-ns" -> o := { !o with slo_ns = int_value i }; go (i + 2)
      | "--arrival-ns" -> o := { !o with arrival_ns = int_value i }; go (i + 2)
      | "--help" | "-h" -> usage_and_exit 0
      | arg ->
          Printf.eprintf "bench: unknown argument %s\n" arg;
          usage_and_exit 2
  in
  go 1;
  !o

(* ----- JSON emission ----- *)

module Json = Aba_experiments.Json

(* Provenance for archived result files: enough to re-run the benchmark on
   the same code and know what produced the numbers. *)
let git_commit () =
  try
    let ic = Unix.open_process_in "git rev-parse HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
  with _ -> "unknown"

let meta_json () =
  let tm = Unix.gmtime (Unix.time ()) in
  Json.Obj
    [
      ("schema_version", Json.Int 8);
      ("git_commit", Json.Str (git_commit ()));
      ("ocaml_version", Json.Str Sys.ocaml_version);
      ( "available_domains",
        Json.Int (Aba_runtime.Harness.available_parallelism ()) );
      ( "timestamp_utc",
        Json.Str
          (Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ"
             (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1) tm.Unix.tm_mday
             tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec) );
    ]

let treiber_row_json (name, domains, ops, throughput) =
  Json.Obj
    [
      ("variant", Json.Str name);
      ("domains", Json.Int domains);
      ("ops", Json.Int ops);
      ("ops_per_sec", Json.Float throughput);
    ]

let reclaim_row_json (r : Aba_experiments.Experiments.reclaim_row) =
  Json.Obj
    [
      ("structure", Json.Str r.structure);
      ("scheme", Json.Str r.scheme);
      ("domains", Json.Int r.domains);
      ("ops", Json.Int r.ops);
      ("capacity", Json.Int r.capacity);
      ("ops_per_sec", Json.Float r.throughput);
      ("retired", Json.Int r.retired);
      ("reclaimed", Json.Int r.reclaimed);
      ("peak_in_limbo", Json.Int r.peak_in_limbo);
      ("ok", Json.Bool r.ok);
    ]

let sweep_row_json r =
  Json.Obj
    [
      ("bench", Json.Str r.sw_bench);
      ("config", Json.Str r.sw_config);
      ("padded", Json.Bool r.sw_padded);
      ("backoff", Json.Bool r.sw_backoff);
      ("elim", Json.Bool r.sw_elim);
      ("domains", Json.Int r.sw_domains);
      ("ops", Json.Int r.sw_ops);
      ("ops_per_sec", Json.Float r.sw_throughput);
      ("ns_per_op", Json.Float r.sw_ns_per_op);
      ("exchanges", Json.Int r.sw_exchanges);
      ("collisions", Json.Int r.sw_collisions);
    ]

let percentile_row_json r =
  Json.Obj
    [
      ("bench", Json.Str r.lp_bench);
      ("kind", Json.Str r.lp_kind);
      ("domains", Json.Int r.lp_domains);
      ("ops", Json.Int r.lp_ops);
      ("count", Json.Int r.lp_count);
      ("retries", Json.Int r.lp_retries);
      ("p50_ns", Json.Int r.lp_p50);
      ("p90_ns", Json.Int r.lp_p90);
      ("p99_ns", Json.Int r.lp_p99);
      ("p999_ns", Json.Int r.lp_p999);
    ]

let protection_row_json r =
  Json.Obj
    [
      ("structure", Json.Str r.pv_structure);
      ("protection", Json.Str r.pv_protection);
      ("domains", Json.Int r.pv_domains);
      ("ops", Json.Int r.pv_ops);
      ("kind", Json.Str r.pv_kind);
      ("count", Json.Int r.pv_count);
      ("retries", Json.Int r.pv_retries);
      ("ops_per_sec", Json.Float r.pv_throughput);
      ("p50_ns", Json.Int r.pv_p50);
      ("p90_ns", Json.Int r.pv_p90);
      ("p99_ns", Json.Int r.pv_p99);
      ("p999_ns", Json.Int r.pv_p999);
    ]

let recovery_row_json r =
  Json.Obj
    [
      ("structure", Json.Str r.rv_structure);
      ("protection", Json.Str r.rv_protection);
      ("domains", Json.Int r.rv_domains);
      ("ops", Json.Int r.rv_ops);
      ("crash_period", Json.Int r.rv_crash_every);
      ("kind", Json.Str r.rv_kind);
      ("count", Json.Int r.rv_count);
      ("retries", Json.Int r.rv_retries);
      ("ops_per_sec", Json.Float r.rv_throughput);
      ("p50_ns", Json.Int r.rv_p50);
      ("p90_ns", Json.Int r.rv_p90);
      ("p99_ns", Json.Int r.rv_p99);
      ("p999_ns", Json.Int r.rv_p999);
      ("crashes", Json.Int r.rv_crashes);
      ("recoveries", Json.Int r.rv_recoveries);
      ("audit_ok", Json.Bool r.rv_audit_ok);
    ]

let capacity_row_json r =
  Json.Obj
    [
      ("impl", Json.Str r.cs_impl);
      ("producers", Json.Int r.cs_producers);
      ("consumers", Json.Int r.cs_consumers);
      ("capacity", Json.Int r.cs_capacity);
      ("kind", Json.Str r.cs_kind);
      ("count", Json.Int r.cs_count);
      ("retries", Json.Int r.cs_retries);
      ("ops", Json.Int r.cs_ops);
      ("items_per_sec", Json.Float r.cs_throughput);
      ("p50_ns", Json.Int r.cs_p50);
      ("p90_ns", Json.Int r.cs_p90);
      ("p99_ns", Json.Int r.cs_p99);
      ("p999_ns", Json.Int r.cs_p999);
    ]

let write_json path ~treiber_rows ~reclaim_rows ~sweep_rows ~percentile_rows
    ~capacity_rows ~service_rows ~protection_rows ~recovery_rows =
  let doc =
    Json.Obj
      [
        ("meta", meta_json ());
        ("multicore_treiber", Json.Arr (List.map treiber_row_json treiber_rows));
        ("reclamation", Json.Arr (List.map reclaim_row_json reclaim_rows));
        ("scalability_sweep", Json.Arr (List.map sweep_row_json sweep_rows));
        ( "latency_percentiles",
          Json.Arr (List.map percentile_row_json percentile_rows) );
        ("capacity_sweep", Json.Arr (List.map capacity_row_json capacity_rows));
        ( "service_sweep",
          Json.Arr
            (List.map Aba_experiments.Service_bench.row_to_json service_rows) );
        ( "protection_sweep",
          Json.Arr (List.map protection_row_json protection_rows) );
        ( "recovery_sweep",
          Json.Arr (List.map recovery_row_json recovery_rows) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  close_out oc;
  Printf.printf "\nWrote JSON results to %s\n" path

let () =
  let o = parse_options () in
  if not o.smoke then begin
    (* Part 1: the paper-derived experiment tables (exact, step-model). *)
    Aba_experiments.Experiments.run_space [ 3; 4; 6; 8 ];
    Aba_experiments.Experiments.run_covering [ 3; 4 ];
    Aba_experiments.Experiments.run_wraparound ();
    Aba_experiments.Experiments.run_tradeoff [ 4; 8 ];
    Aba_experiments.Experiments.run_steps [ 3; 4; 6; 8; 12; 16 ];
    Aba_experiments.Experiments.run_explore ();
    Aba_experiments.Experiments.run_ablation ();
    Aba_experiments.Experiments.run_stack ~domains:o.domains ~ops:5_000 ();
    ablation_fig3 ();
    (* Part 2: wall-clock benchmarks of the runtime ports. *)
    print_endline "\n=== Wall-clock micro-benchmarks (Bechamel) ===";
    benchmark_report "thm3-figure4-runtime" thm3_fig4_tests;
    benchmark_report "thm2-figure3-runtime" thm2_fig3_tests;
    benchmark_report "moir-unbounded-runtime" moir_tests;
    benchmark_report "aba-registers-runtime" aba_register_tests;
    benchmark_report ~alloc:true "unified-vs-handwritten"
      unified_vs_handwritten_tests;
    benchmark_report "treiber-runtime" treiber_tests;
    benchmark_report ~alloc:true "elimination-hotpath"
      elimination_hotpath_tests;
    benchmark_report "msqueue-runtime" msqueue_tests;
    benchmark_report ~alloc:true "ring-hotpath" ring_hotpath_tests
  end;
  let treiber_rows =
    if o.smoke then []
    else multicore_treiber ~domains:o.domains ~ops:o.treiber_ops ()
  in
  (* Part 3: reclamation-scheme comparison (throughput + peak space). *)
  let reclaim_rows =
    if o.smoke then []
    else
      Aba_experiments.Experiments.run_reclaim ~domains:o.domains
        ~ops:o.reclaim_ops ()
  in
  (* Part 4: the contention-management scalability sweep. *)
  let sweep_rows =
    scalability_sweep ~max_domains:o.max_domains ~ops:o.sweep_ops
      ~elimination:o.elimination ()
  in
  (* Part 5: tail-latency percentiles (runs in --smoke too: with the
     capacity sweep below it is the schema-5 surface CI validates). *)
  let percentile_rows =
    latency_percentiles ~domains:(min o.domains o.max_domains)
      ~ops:o.sweep_ops ()
  in
  (* Part 6: the bounded-queue capacity sweep (also part of the smoke
     surface, on a reduced grid). *)
  let grid, capacities =
    if o.smoke then ([ (1, 1); (2, 1); (1, 2) ], [ 2; 64 ])
    else ([ (1, 1); (2, 1); (1, 2); (2, 2) ], [ 2; 64; 1024 ])
  in
  let capacity_rows = capacity_sweep ~grid ~capacities ~ops:o.sweep_ops () in
  (* Part 7: the sharded service tier, opt-in via --service.  Smoke keeps
     one structure and the two shard counts the CI assertions compare
     (the 1-shard baseline and the 4-shard sharded cells). *)
  let service_rows =
    if not o.service then []
    else begin
      if not o.smoke then
        benchmark_report ~alloc:true "service-hotpath" service_hotpath_tests;
      let dedup l = List.sort_uniq compare l in
      let structures = if o.smoke then [ "stack" ] else [ "stack"; "queue" ] in
      let shards = if o.smoke then [ 1; 4 ] else [ 1; 2; 4 ] in
      let domains =
        dedup [ 1; min 2 o.max_domains; min 4 o.max_domains; o.max_domains ]
      in
      Aba_experiments.Service_bench.sweep ~slo_ns:o.slo_ns
        ~arrival_ns:o.arrival_ns ~structures ~shards ~domains ~ops:o.sweep_ops
        ()
    end
  in
  (* Part 8: the protection head-to-head, opt-in via --protections.  The
     announced-hotpath allocation group carries the 0-words/op claim; the
     sweep carries throughput and tail latency against the reclaimers. *)
  let protection_rows =
    if not o.protections then []
    else begin
      if not o.smoke then
        benchmark_report ~alloc:true "announced-hotpath"
          announced_hotpath_tests;
      protection_sweep
        ~domains:(min o.domains o.max_domains)
        ~ops:o.sweep_ops ()
    end
  in
  (* Part 9: the detectable-stack crash-churn sweep, opt-in via
     --recovery.  Every row carries the exactly-once audit verdict; a
     failed audit fails the whole bench run. *)
  let recovery_rows =
    if not o.recovery then []
    else
      recovery_sweep
        ~domains:(min o.domains o.max_domains)
        ~ops:(min o.sweep_ops 5_000)
        ~crash_every:o.crash_every ()
  in
  if List.exists (fun r -> not r.rv_audit_ok) recovery_rows then begin
    prerr_endline "bench: recovery sweep exactly-once audit FAILED";
    exit 1
  end;
  (match o.json with
  | None -> ()
  | Some path ->
      write_json path ~treiber_rows ~reclaim_rows ~sweep_rows ~percentile_rows
        ~capacity_rows ~service_rows ~protection_rows ~recovery_rows)
