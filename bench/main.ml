(** Benchmark harness.

    Two parts, together regenerating every paper-derived table and figure:

    1. The experiment tables (E1..E7 from DESIGN.md) — step counts, space,
       covering adversary, wraparound, tradeoff products — printed by the
       shared {!Aba_experiments.Experiments} runners.  These are the
       quantities the paper's theorems are about, measured in the
       simulator's step model where they are exact.
    2. Bechamel wall-clock benchmarks of the runtime ([Atomic]-based)
       ports — one group per theorem/figure — plus a multicore throughput
       table for the Treiber stack variants.  Wall-clock numbers depend on
       the host; the step-model tables above are the primary result. *)

open Bechamel
open Toolkit

(* ----- Bechamel plumbing ----- *)

let benchmark_and_print name tests =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances (Test.make_grouped ~name tests) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "\n%s (ns/op):\n" name;
  let rows =
    Hashtbl.fold
      (fun key ols acc ->
        let nanos =
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> t
          | Some _ | None -> nan
        in
        (key, nanos) :: acc)
      results []
  in
  List.iter
    (fun (key, nanos) -> Printf.printf "  %-44s %10.1f\n" key nanos)
    (List.sort compare rows)

let staged f = Staged.stage f

(* ----- Runtime micro-benchmarks, one group per theorem/figure ----- *)

(* Theorem 3 / Figure 4: O(1) DRead/DWrite, flat across n. *)
let thm3_fig4_tests =
  List.concat_map
    (fun n ->
      let r = Aba_runtime.Rt_aba.Fig4.create ~n 0 in
      ignore (Aba_runtime.Rt_aba.Fig4.dread r ~pid:1);
      [
        Test.make
          ~name:(Printf.sprintf "fig4.dread n=%d" n)
          (staged (fun () -> ignore (Aba_runtime.Rt_aba.Fig4.dread r ~pid:1)));
        Test.make
          ~name:(Printf.sprintf "fig4.dwrite n=%d" n)
          (staged (fun () -> Aba_runtime.Rt_aba.Fig4.dwrite r ~pid:0 7));
      ])
    [ 2; 8; 32 ]

(* Theorem 2 / Figure 3: one bounded CAS word; uncontended ops are cheap,
   the O(n) loops only bite under contention (shown in the step tables). *)
let thm2_fig3_tests =
  List.concat_map
    (fun n ->
      let l = Aba_runtime.Rt_llsc.Packed_fig3.create ~n ~init:0 in
      [
        Test.make
          ~name:(Printf.sprintf "fig3.ll+sc n=%d" n)
          (staged (fun () ->
               ignore (Aba_runtime.Rt_llsc.Packed_fig3.ll l ~pid:1);
               ignore (Aba_runtime.Rt_llsc.Packed_fig3.sc l ~pid:1 5)));
        Test.make
          ~name:(Printf.sprintf "fig3.vl n=%d" n)
          (staged (fun () ->
               ignore (Aba_runtime.Rt_llsc.Packed_fig3.vl l ~pid:1)));
      ])
    [ 2; 8; 32 ]

(* Moir-style boxed LL/SC (the unbounded comparison point, [26]). *)
let moir_tests =
  let l = Aba_runtime.Rt_llsc.Boxed.create ~n:8 ~init:0 in
  [
    Test.make ~name:"moir.ll+sc n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_llsc.Boxed.ll l ~pid:1);
           ignore (Aba_runtime.Rt_llsc.Boxed.sc l ~pid:1 5)));
  ]

(* Theorem 4 / Figure 5 + intro: ABA-detecting register flavours. *)
let aba_register_tests =
  let stamped = Aba_runtime.Rt_aba.Stamped.create ~n:8 0 in
  let from_llsc = Aba_runtime.Rt_aba.From_llsc.create ~n:8 ~init:0 in
  [
    Test.make ~name:"stamped.dread n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_aba.Stamped.dread stamped ~pid:1)));
    Test.make ~name:"stamped.dwrite n=8"
      (staged (fun () -> Aba_runtime.Rt_aba.Stamped.dwrite stamped ~pid:0 7));
    Test.make ~name:"thm2.dread n=8"
      (staged (fun () ->
           ignore (Aba_runtime.Rt_aba.From_llsc.dread from_llsc ~pid:1)));
    Test.make ~name:"thm2.dwrite n=8"
      (staged (fun () ->
           Aba_runtime.Rt_aba.From_llsc.dwrite from_llsc ~pid:0 7));
  ]

(* Motivation: Treiber stack push+pop latency per protection, including
   the three reclaimer-backed variants (uncontended cost of a protect +
   retire per pop). *)
let treiber_tests =
  List.map
    (fun (name, protection) ->
      let s = Aba_runtime.Rt_treiber.create ~protection ~capacity:64 ~n:8 in
      Test.make ~name:(Printf.sprintf "treiber.%s push+pop" name)
        (staged (fun () ->
             ignore (Aba_runtime.Rt_treiber.push s ~pid:1 42);
             ignore (Aba_runtime.Rt_treiber.pop s ~pid:1))))
    [
      ("naive", Aba_runtime.Rt_treiber.Tag_bits 0);
      ("tag16", Aba_runtime.Rt_treiber.Tag_bits 16);
      ("llsc", Aba_runtime.Rt_treiber.Llsc);
      ("hazard", Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Hazard);
      ("epoch", Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Epoch);
      ( "guarded",
        Aba_runtime.Rt_treiber.Reclaimed Aba_runtime.Rt_reclaim.Guarded );
    ]

(* Motivation: MS queue enqueue+dequeue latency, counted pointers vs the
   hazard-protocol reclaimed variants. *)
let msqueue_tests =
  List.map
    (fun (name, protection) ->
      let q = Aba_runtime.Rt_ms_queue.create ~protection ~capacity:64 ~n:8 in
      Test.make ~name:(Printf.sprintf "msqueue.%s enq+deq" name)
        (staged (fun () ->
             ignore (Aba_runtime.Rt_ms_queue.enqueue q ~pid:1 42);
             ignore (Aba_runtime.Rt_ms_queue.dequeue q ~pid:1))))
    [
      ("naive", Aba_runtime.Rt_ms_queue.Tag_bits 0);
      ("tag16", Aba_runtime.Rt_ms_queue.Tag_bits 16);
      ( "hazard",
        Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Hazard );
      ("epoch", Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Epoch);
      ( "guarded",
        Aba_runtime.Rt_ms_queue.Reclaimed Aba_runtime.Rt_reclaim.Guarded );
    ]

(* Ablation: Figure 3's O(n) retry loops under interference, as exact
   simulator step counts (the wall clock cannot see scheduling). *)
let ablation_fig3 () =
  print_endline "\nAblation: figure 3 under interference (simulator steps)";
  Printf.printf "%-6s %14s %14s\n" "n" "LL worst steps" "SC worst steps";
  List.iter
    (fun n ->
      let m =
        Aba_lowerbound.Tradeoff.measure_llsc ~label:"fig3"
          Aba_core.Instances.llsc_fig3 ~n
      in
      Printf.printf "%-6d %14d %14d\n" n m.Aba_lowerbound.Tradeoff.worst_ll
        m.Aba_lowerbound.Tradeoff.worst_sc)
    [ 3; 4; 8; 16; 24; 32 ]

(* Multicore throughput (ops/s) for the stack variants; returns the rows
   so they can be emitted as JSON alongside the reclamation table. *)
let multicore_treiber ~domains ~ops () =
  Printf.printf
    "\nMulticore Treiber throughput (%d domains x %d ops, %d cores):\n"
    domains ops (Aba_runtime.Harness.available_parallelism ());
  List.map
    (fun (name, protection) ->
      let s =
        Aba_runtime.Rt_treiber.create ~protection ~capacity:1024 ~n:domains
      in
      let t0 = Unix.gettimeofday () in
      let _ =
        Aba_runtime.Harness.run_domains ~n:domains (fun d ->
            for i = 1 to ops do
              ignore (Aba_runtime.Rt_treiber.push s ~pid:d i);
              ignore (Aba_runtime.Rt_treiber.pop s ~pid:d)
            done)
      in
      let dt = Unix.gettimeofday () -. t0 in
      let throughput = float_of_int (2 * domains * ops) /. dt in
      Printf.printf "  %-8s %10.0f ops/s\n" name throughput;
      (name, domains, ops, throughput))
    [
      ("naive", Aba_runtime.Rt_treiber.Tag_bits 0);
      ("tag16", Aba_runtime.Rt_treiber.Tag_bits 16);
      ("llsc", Aba_runtime.Rt_treiber.Llsc);
    ]

(* ----- JSON emission (hand-rolled; no JSON dependency in the image) ----- *)

let json_path () =
  let path = ref None in
  Array.iteri
    (fun i arg ->
      if arg = "--json" && i + 1 < Array.length Sys.argv then
        path := Some Sys.argv.(i + 1))
    Sys.argv;
  !path

let write_json path ~treiber_rows ~reclaim_rows =
  let buf = Buffer.create 4096 in
  let sep buf = function true -> () | false -> Buffer.add_string buf ",\n" in
  Buffer.add_string buf "{\n  \"multicore_treiber\": [\n";
  List.iteri
    (fun i (name, domains, ops, throughput) ->
      sep buf (i = 0);
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"variant\": %S, \"domains\": %d, \"ops\": %d, \
            \"ops_per_sec\": %.1f}"
           name domains ops throughput))
    treiber_rows;
  Buffer.add_string buf "\n  ],\n  \"reclamation\": [\n";
  List.iteri
    (fun i (r : Aba_experiments.Experiments.reclaim_row) ->
      sep buf (i = 0);
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"structure\": %S, \"scheme\": %S, \"domains\": %d, \"ops\": \
            %d, \"capacity\": %d, \"ops_per_sec\": %.1f, \"retired\": %d, \
            \"reclaimed\": %d, \"peak_in_limbo\": %d, \"ok\": %b}"
           r.structure r.scheme r.domains r.ops r.capacity r.throughput
           r.retired r.reclaimed r.peak_in_limbo r.ok))
    reclaim_rows;
  Buffer.add_string buf "\n  ]\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nWrote JSON results to %s\n" path

let () =
  (* Part 1: the paper-derived experiment tables (exact, step-model). *)
  Aba_experiments.Experiments.run_space [ 3; 4; 6; 8 ];
  Aba_experiments.Experiments.run_covering [ 3; 4 ];
  Aba_experiments.Experiments.run_wraparound ();
  Aba_experiments.Experiments.run_tradeoff [ 4; 8 ];
  Aba_experiments.Experiments.run_steps [ 3; 4; 6; 8; 12; 16 ];
  Aba_experiments.Experiments.run_explore ();
  Aba_experiments.Experiments.run_ablation ();
  Aba_experiments.Experiments.run_stack ~domains:4 ~ops:5_000 ();
  ablation_fig3 ();
  (* Part 2: wall-clock benchmarks of the runtime ports. *)
  print_endline "\n=== Wall-clock micro-benchmarks (Bechamel) ===";
  benchmark_and_print "thm3-figure4-runtime" thm3_fig4_tests;
  benchmark_and_print "thm2-figure3-runtime" thm2_fig3_tests;
  benchmark_and_print "moir-unbounded-runtime" moir_tests;
  benchmark_and_print "aba-registers-runtime" aba_register_tests;
  benchmark_and_print "treiber-runtime" treiber_tests;
  benchmark_and_print "msqueue-runtime" msqueue_tests;
  let treiber_rows = multicore_treiber ~domains:4 ~ops:50_000 () in
  (* Part 3: reclamation-scheme comparison (throughput + peak space). *)
  let reclaim_rows =
    Aba_experiments.Experiments.run_reclaim ~domains:4 ~ops:20_000 ()
  in
  match json_path () with
  | None -> ()
  | Some path -> write_json path ~treiber_rows ~reclaim_rows
