(** Directed unit tests for the linearizability checker on hand-crafted
    histories whose verdicts are known. *)

open Aba_primitives
module R = Aba_spec.Register_spec
module RC = Aba_spec.Lin_check.Make (R)
module A = Aba_spec.Aba_register_spec
module AC = Aba_spec.Lin_check.Make (A)
module L = Aba_spec.Llsc_spec
module LC = Aba_spec.Lin_check.Make (L)

let ok = Alcotest.(check bool) "linearizable" true
let bad = Alcotest.(check bool) "not linearizable" false

let empty_history () = ok (RC.check_ok ~n:2 [])

let sequential_register () =
  ok
    (RC.check_ok ~n:2
       [
         Event.Invoke (0, R.Write 1);
         Event.Response (0, R.Write_done);
         Event.Invoke (1, R.Read);
         Event.Response (1, R.Read_result 1);
       ])

let stale_read_rejected () =
  bad
    (RC.check_ok ~n:2
       [
         Event.Invoke (0, R.Write 1);
         Event.Response (0, R.Write_done);
         Event.Invoke (1, R.Read);
         Event.Response (1, R.Read_result (-1));
       ])

let overlapping_read_may_be_stale () =
  (* The read overlaps the write, so either result linearizes. *)
  let h result =
    [
      Event.Invoke (1, R.Read);
      Event.Invoke (0, R.Write 1);
      Event.Response (0, R.Write_done);
      Event.Response (1, R.Read_result result);
    ]
  in
  ok (RC.check_ok ~n:2 (h (-1)));
  ok (RC.check_ok ~n:2 (h 1))

let pending_op_may_have_taken_effect () =
  (* The write never responds, yet the read may observe it. *)
  ok
    (RC.check_ok ~n:2
       [
         Event.Invoke (0, R.Write 7);
         Event.Invoke (1, R.Read);
         Event.Response (1, R.Read_result 7);
       ])

let pending_op_need_not_take_effect () =
  ok
    (RC.check_ok ~n:2
       [
         Event.Invoke (0, R.Write 7);
         Event.Invoke (1, R.Read);
         Event.Response (1, R.Read_result (-1));
       ])

let real_time_order_enforced () =
  (* Two sequential writes then a read of the first one: invalid. *)
  bad
    (RC.check_ok ~n:2
       [
         Event.Invoke (0, R.Write 1);
         Event.Response (0, R.Write_done);
         Event.Invoke (0, R.Write 2);
         Event.Response (0, R.Write_done);
         Event.Invoke (1, R.Read);
         Event.Response (1, R.Read_result 1);
       ])

(* --- ABA-detecting register specifics --- *)

let aba_flag_must_fire () =
  bad
    (AC.check_ok ~n:2
       [
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (-1, false));
         Event.Invoke (0, A.DWrite 1);
         Event.Response (0, A.Write_done);
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (1, false));
       ])

let aba_flag_must_not_fire () =
  bad
    (AC.check_ok ~n:2
       [
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (-1, false));
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (-1, true));
       ])

let aba_flags_are_per_process () =
  (* Both readers must see the single write once each. *)
  ok
    (AC.check_ok ~n:3
       [
         Event.Invoke (0, A.DWrite 5);
         Event.Response (0, A.Write_done);
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (5, true));
         Event.Invoke (2, A.DRead);
         Event.Response (2, A.Read_result (5, true));
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (5, false));
       ])

let aba_same_value_write_detected () =
  ok
    (AC.check_ok ~n:2
       [
         Event.Invoke (0, A.DWrite 1);
         Event.Response (0, A.Write_done);
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (1, true));
         Event.Invoke (0, A.DWrite 1);
         Event.Response (0, A.Write_done);
         Event.Invoke (1, A.DRead);
         Event.Response (1, A.Read_result (1, true));
       ])

(* --- LL/SC specifics --- *)

let llsc_interference () =
  ok
    (LC.check_ok ~n:2
       [
         Event.Invoke (0, L.Ll);
         Event.Response (0, L.Ll_result 0);
         Event.Invoke (1, L.Ll);
         Event.Response (1, L.Ll_result 0);
         Event.Invoke (0, L.Sc 1);
         Event.Response (0, L.Sc_result true);
         Event.Invoke (1, L.Sc 2);
         Event.Response (1, L.Sc_result false);
       ])

let llsc_both_succeed_rejected () =
  bad
    (LC.check_ok ~n:2
       [
         Event.Invoke (0, L.Ll);
         Event.Response (0, L.Ll_result 0);
         Event.Invoke (1, L.Ll);
         Event.Response (1, L.Ll_result 0);
         Event.Invoke (0, L.Sc 1);
         Event.Response (0, L.Sc_result true);
         Event.Invoke (1, L.Sc 2);
         Event.Response (1, L.Sc_result true);
       ])

let llsc_overlapping_scs () =
  (* Concurrent SCs: exactly one may win, either one. *)
  let h first_wins =
    [
      Event.Invoke (0, L.Ll);
      Event.Response (0, L.Ll_result 0);
      Event.Invoke (1, L.Ll);
      Event.Response (1, L.Ll_result 0);
      Event.Invoke (0, L.Sc 1);
      Event.Invoke (1, L.Sc 2);
      Event.Response (0, L.Sc_result first_wins);
      Event.Response (1, L.Sc_result (not first_wins));
    ]
  in
  ok (LC.check_ok ~n:2 (h true));
  ok (LC.check_ok ~n:2 (h false))

let witness_is_a_linearization () =
  let h =
    [
      Event.Invoke (1, R.Read);
      Event.Invoke (0, R.Write 1);
      Event.Response (0, R.Write_done);
      Event.Response (1, R.Read_result 1);
    ]
  in
  match RC.witness ~n:2 h with
  | Some order ->
      Alcotest.(check int) "both ops linearized" 2 (List.length order);
      (* The write must precede the read in the produced order. *)
      let kinds = List.map (fun (_, op, _) -> op) order in
      Alcotest.(check bool) "write before read" true
        (kinds = [ R.Write 1; R.Read ])
  | None -> Alcotest.fail "expected a witness"

let malformed_history_rejected () =
  Alcotest.check_raises "double invoke"
    (Invalid_argument "Lin_check: history is not well formed") (fun () ->
      ignore
        (RC.check_ok ~n:2
           [ Event.Invoke (0, R.Read); Event.Invoke (0, R.Read) ]))

let suite =
  [
    Alcotest.test_case "empty history" `Quick empty_history;
    Alcotest.test_case "sequential register" `Quick sequential_register;
    Alcotest.test_case "stale read rejected" `Quick stale_read_rejected;
    Alcotest.test_case "overlapping read has both options" `Quick
      overlapping_read_may_be_stale;
    Alcotest.test_case "pending op may take effect" `Quick
      pending_op_may_have_taken_effect;
    Alcotest.test_case "pending op may be dropped" `Quick
      pending_op_need_not_take_effect;
    Alcotest.test_case "real-time order enforced" `Quick
      real_time_order_enforced;
    Alcotest.test_case "ABA flag must fire" `Quick aba_flag_must_fire;
    Alcotest.test_case "ABA flag must not fire" `Quick aba_flag_must_not_fire;
    Alcotest.test_case "ABA flags are per process" `Quick
      aba_flags_are_per_process;
    Alcotest.test_case "same-value write detected" `Quick
      aba_same_value_write_detected;
    Alcotest.test_case "LL/SC interference" `Quick llsc_interference;
    Alcotest.test_case "LL/SC double success rejected" `Quick
      llsc_both_succeed_rejected;
    Alcotest.test_case "LL/SC overlapping SCs" `Quick llsc_overlapping_scs;
    Alcotest.test_case "witness is a linearization" `Quick
      witness_is_a_linearization;
    Alcotest.test_case "malformed history rejected" `Quick
      malformed_history_rejected;
  ]
