(** Unit tests for the Section 2 weak condition checker. *)

open Aba_primitives
open Aba_spec

let inv p op = Event.Invoke (p, op)
let res p r = Event.Response (p, r)
let read p = inv p Weak_cond.Weak_read
let write p = inv p Weak_cond.Weak_write
let flag p b = res p (Weak_cond.Flag b)
let wrote p = res p Weak_cond.Write_done

let expect_ok h =
  match Weak_cond.check h with
  | Result.Ok () -> ()
  | Result.Error v ->
      Alcotest.failf "unexpected violation: %s"
        (Format.asprintf "%a" Weak_cond.pp_violation v)

let expect_violation h =
  match Weak_cond.check h with
  | Result.Ok () -> Alcotest.fail "expected a violation"
  | Result.Error _ -> ()

let first_read_no_writes () =
  expect_ok [ read 1; flag 1 false ];
  expect_violation [ read 1; flag 1 true ]

let read_after_write () =
  expect_ok [ write 0; wrote 0; read 1; flag 1 true ];
  expect_violation [ write 0; wrote 0; read 1; flag 1 false ]

let second_read_quiet () =
  expect_ok
    [ write 0; wrote 0; read 1; flag 1 true; read 1; flag 1 false ];
  expect_violation
    [ write 0; wrote 0; read 1; flag 1 true; read 1; flag 1 true ]

let write_between_reads () =
  expect_ok
    [
      write 0; wrote 0; read 1; flag 1 true; write 0; wrote 0; read 1;
      flag 1 true;
    ];
  expect_violation
    [
      write 0; wrote 0; read 1; flag 1 true; write 0; wrote 0; read 1;
      flag 1 false;
    ]

let overlapping_write_is_undetermined () =
  (* The write overlaps the read: both flags acceptable. *)
  let h b = [ write 0; read 1; flag 1 b; wrote 0 ] in
  expect_ok (h true);
  expect_ok (h false)

let per_process_windows () =
  (* p2's first read must still see the write even though p1 read twice. *)
  expect_violation
    [
      write 0; wrote 0;
      read 1; flag 1 true;
      read 1; flag 1 false;
      read 2; flag 2 false;
    ]

let suite =
  [
    Alcotest.test_case "first read, no writes" `Quick first_read_no_writes;
    Alcotest.test_case "read after write" `Quick read_after_write;
    Alcotest.test_case "second read quiet" `Quick second_read_quiet;
    Alcotest.test_case "write between reads" `Quick write_between_reads;
    Alcotest.test_case "overlapping write undetermined" `Quick
      overlapping_write_is_undetermined;
    Alcotest.test_case "per-process windows" `Quick per_process_windows;
  ]
