(** Correctness tests for every ABA-detecting register implementation:
    sequential behaviour, and linearizability under random schedules in the
    simulator (experiment E9). *)

open Aba_core
module Spec = Aba_spec.Aba_register_spec

let correct_builders = Instances.all_aba ()

(* --- Sequential behaviour (direct memory, no scheduling) --- *)

let sequential_basics (label, builder) =
  let test () =
    let n = 3 in
    let inst = Instances.aba_seq builder ~n in
    let v, f = inst.Instances.dread 1 in
    Alcotest.(check int) "initial value" inst.Instances.aba_initial v;
    Alcotest.(check bool) "no write yet" false f;
    inst.Instances.dwrite 0 7;
    let v, f = inst.Instances.dread 1 in
    Alcotest.(check int) "sees written value" 7 v;
    Alcotest.(check bool) "detects the write" true f;
    let v, f = inst.Instances.dread 1 in
    Alcotest.(check int) "value stable" 7 v;
    Alcotest.(check bool) "no new write" false f;
    (* A write of the same value must still be detected: that is the whole
       point of ABA detection. *)
    inst.Instances.dwrite 0 7;
    let v, f = inst.Instances.dread 1 in
    Alcotest.(check int) "same value" 7 v;
    Alcotest.(check bool) "ABA detected" true f
  in
  Alcotest.test_case (label ^ " sequential basics") `Quick test

let sequential_aba_storm (label, builder) =
  let test () =
    (* Many writes cycling through few values; every read between writes
       must raise the flag, reads without intervening writes must not. *)
    let n = 4 in
    let inst = Instances.aba_seq builder ~n in
    for round = 1 to 100 do
      let writer = round mod n in
      let reader = (round + 1) mod n in
      inst.Instances.dwrite writer (round mod 2);
      let v, f = inst.Instances.dread reader in
      Alcotest.(check int) "value" (round mod 2) v;
      Alcotest.(check bool) "flag after write" true f;
      let _, f = inst.Instances.dread reader in
      Alcotest.(check bool) "flag without write" false f
    done
  in
  Alcotest.test_case (label ^ " sequential ABA storm") `Quick test

let sequential_multi_reader (label, builder) =
  let test () =
    let n = 5 in
    let inst = Instances.aba_seq builder ~n in
    inst.Instances.dwrite 0 1;
    (* Every reader independently detects the same write. *)
    List.iter
      (fun q ->
        let _, f = inst.Instances.dread q in
        Alcotest.(check bool) (Printf.sprintf "reader %d detects" q) true f)
      [ 1; 2; 3; 4 ];
    List.iter
      (fun q ->
        let _, f = inst.Instances.dread q in
        Alcotest.(check bool) (Printf.sprintf "reader %d quiet" q) false f)
      [ 1; 2; 3; 4 ]
  in
  Alcotest.test_case (label ^ " sequential multi-reader") `Quick test

(* --- Linearizability under random schedules --- *)

let random_linearizable ?(n = 3) ?(ops_per_pid = 4) ?(seeds = 60)
    (label, builder) =
  let test () =
    for seed = 1 to seeds do
      let h =
        Test_support.aba_random_history builder ~n ~ops_per_pid ~seed
      in
      Test_support.check_linearizable_aba ~n h
    done
  in
  Alcotest.test_case
    (Printf.sprintf "%s linearizable (n=%d, %d ops/pid, %d seeds)" label n
       ops_per_pid seeds)
    `Quick test

let random_linearizable_wide (label, builder) =
  random_linearizable ~n:5 ~ops_per_pid:3 ~seeds:25 (label, builder)

(* --- The flawed bounded-tag implementation must fail --- *)

let bounded_tag_is_flawed () =
  (* Directed sequential scenario: the writer writes exactly [tag_bound]
     times between two reads, cycling back to the same value and tag; the
     reader misses all of them. *)
  let tag_bound = 4 in
  let builder = Instances.aba_bounded_tag ~tag_bound in
  let n = 2 in
  let inst = Instances.aba_seq builder ~n in
  inst.Instances.dwrite 0 1;
  let _, f = inst.Instances.dread 1 in
  Alcotest.(check bool) "first write detected" true f;
  for _ = 1 to tag_bound do
    inst.Instances.dwrite 0 1
  done;
  let v, f = inst.Instances.dread 1 in
  Alcotest.(check int) "value unchanged" 1 v;
  Alcotest.(check bool) "ABA missed — the flaw" false f

let space_counts () =
  let n = 6 in
  let space builder =
    let sim = Aba_sim.Sim.create ~n in
    let inst = Instances.aba_in_sim builder sim ~n in
    List.length (inst.Instances.aba_space ())
  in
  (* Theorem 3: Figure 4 uses exactly n+1 registers. *)
  Alcotest.(check int) "fig4 uses n+1 objects" (n + 1) (space Instances.aba_fig4);
  (* Theorem 2: one CAS object. *)
  Alcotest.(check int) "thm2 uses 1 object" 1 (space Instances.aba_thm2);
  Alcotest.(check int) "fig5 uses 1 object" 1 (space Instances.aba_fig5);
  Alcotest.(check int) "unbounded uses 1 object" 1
    (space Instances.aba_unbounded);
  (* JP machinery: 1 CAS + n registers. *)
  Alcotest.(check int) "fig5-jp uses n+1 objects" (n + 1)
    (space Instances.aba_fig5_jp)

let fig4_registers_only () =
  let n = 4 in
  let sim = Aba_sim.Sim.create ~n in
  let _inst = Instances.aba_in_sim Instances.aba_fig4 sim ~n in
  List.iter
    (fun (c : Aba_sim.Cell.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s is a register" c.Aba_sim.Cell.name)
        true
        (Aba_sim.Cell.is_register c))
    (Aba_sim.Sim.cells sim)

let suite =
  List.concat
    [
      List.map sequential_basics correct_builders;
      List.map sequential_aba_storm correct_builders;
      List.map sequential_multi_reader correct_builders;
      List.map random_linearizable correct_builders;
      List.map random_linearizable_wide correct_builders;
      [
        Alcotest.test_case "bounded-tag misses ABA (sequential)" `Quick
          bounded_tag_is_flawed;
        Alcotest.test_case "space usage matches the theorems" `Quick
          space_counts;
        Alcotest.test_case "figure 4 uses registers only" `Quick
          fig4_registers_only;
      ];
    ]
