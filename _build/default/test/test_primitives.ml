(** Directed unit tests for the primitives layer: pids, bounded domains,
    the direct memory instance, and history utilities. *)

open Aba_primitives

let pid_basics () =
  Alcotest.(check (list int)) "all" [ 0; 1; 2 ] (Pid.all ~n:3);
  Alcotest.(check (list int)) "readers" [ 1; 2 ] (Pid.readers ~n:3);
  Alcotest.(check int) "writer" 0 Pid.writer;
  Alcotest.(check bool) "valid" true (Pid.is_valid ~n:3 2);
  Alcotest.(check bool) "invalid high" false (Pid.is_valid ~n:3 3);
  Alcotest.(check bool) "invalid negative" false (Pid.is_valid ~n:3 (-1));
  Alcotest.check_raises "check raises"
    (Invalid_argument "Pid.check: pid 5 out of range [0,3)") (fun () ->
      Pid.check ~n:3 5)

let bounded_composites () =
  let d = Bounded.triple (Bounded.int_mod 3) Bounded.bool
      (Bounded.option (Bounded.int_mod 2)) in
  Alcotest.(check (option int)) "size 3*2*3" (Some 18) (Bounded.size d);
  Alcotest.(check bool) "member" true (Bounded.mem d (2, true, Some 1));
  Alcotest.(check bool) "non-member" false (Bounded.mem d (3, true, None));
  let u = Bounded.unbounded ~describe:"anything" in
  Alcotest.(check (option int)) "unbounded size" None (Bounded.size u);
  Alcotest.(check bool) "unbounded membership" true (Bounded.mem u max_int);
  Alcotest.(check string) "bits describe" "4-bit mask"
    (Bounded.describe (Bounded.bits ~width:4));
  Alcotest.(check bool) "bits member" true (Bounded.mem (Bounded.bits ~width:4) 15);
  Alcotest.(check bool) "bits non-member" false
    (Bounded.mem (Bounded.bits ~width:4) 16)

let seq_mem_llsc_convention () =
  let module M = (val Seq_mem.make ()) in
  let l = M.make_llsc ~name:"l" ~show:string_of_int 5 in
  (* Appendix A: VL by a never-linked process is true until the first
     successful SC. *)
  Alcotest.(check bool) "vl before" true (M.vl l ~pid:2);
  Alcotest.(check bool) "sc without ll (fresh object)" true (M.sc l ~pid:1 6);
  Alcotest.(check bool) "vl after" false (M.vl l ~pid:2);
  Alcotest.(check bool) "second blind sc fails" false (M.sc l ~pid:1 7)

let seq_mem_space_accounting () =
  let module M = (val Seq_mem.make ()) in
  let _ = M.make_register ~name:"r1" ~show:string_of_int 0 in
  let _ =
    M.make_cas ~bound:(Bounded.int_mod 4) ~name:"c1" ~show:string_of_int 1
  in
  Alcotest.(check (list (pair string string)))
    "names and domains"
    [ ("r1", "unbounded"); ("c1", "[0..3]") ]
    (M.space ())

let seq_mem_writable_guard () =
  let module M = (val Seq_mem.make ()) in
  let c = M.make_cas ~name:"c" ~show:string_of_int 0 in
  Alcotest.check_raises "cas_write on plain CAS"
    (Invalid_argument "Seq_mem.cas_write: c is not a writable CAS object")
    (fun () -> M.cas_write c 1);
  let w = M.make_cas ~writable:true ~name:"w" ~show:string_of_int 0 in
  M.cas_write w 9;
  Alcotest.(check int) "written" 9 (M.cas_read w)

let seq_mem_bound_guard () =
  let module M = (val Seq_mem.make ()) in
  let r =
    M.make_register ~bound:(Bounded.int_mod 4) ~name:"r" ~show:string_of_int 0
  in
  M.write r 3;
  Alcotest.(check bool) "out-of-domain write rejected" true
    (match M.write r 4 with
    | () -> false
    | exception Invalid_argument _ -> true)

let event_utilities () =
  let h =
    [
      Event.Invoke (0, "a");
      Event.Invoke (1, "b");
      Event.Response (0, 1);
      Event.Invoke (0, "c");
      Event.Response (1, 2);
    ]
  in
  Alcotest.(check bool) "well formed" true (Event.well_formed h);
  let ops = Event.ops_of h in
  Alcotest.(check int) "three ops" 3 (List.length ops);
  Alcotest.(check bool) "pending op has no result" true
    (List.exists (fun (_, op, r) -> op = "c" && r = None) ops);
  let c = Event.complete h in
  Alcotest.(check int) "complete drops the pending invoke" 4 (List.length c);
  Alcotest.(check bool) "double response is malformed" false
    (Event.well_formed [ Event.Response (0, 1) ])

let suite =
  [
    Alcotest.test_case "pid basics" `Quick pid_basics;
    Alcotest.test_case "bounded composites" `Quick bounded_composites;
    Alcotest.test_case "seq_mem LL/SC convention" `Quick
      seq_mem_llsc_convention;
    Alcotest.test_case "seq_mem space accounting" `Quick
      seq_mem_space_accounting;
    Alcotest.test_case "seq_mem writable guard" `Quick seq_mem_writable_guard;
    Alcotest.test_case "seq_mem bound guard" `Quick seq_mem_bound_guard;
    Alcotest.test_case "event utilities" `Quick event_utilities;
  ]
