test/test_sim.ml: Aba_primitives Aba_sim Alcotest Bounded Event List Option
