test/test_properties.ml: Aba_core Aba_primitives Aba_sim Aba_spec Array Bounded Event Hashtbl List QCheck2 QCheck_alcotest Queue Univ
