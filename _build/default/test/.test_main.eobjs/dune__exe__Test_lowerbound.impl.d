test/test_lowerbound.ml: Aba_core Aba_lowerbound Alcotest Covering Format Instances List Printf Tradeoff Weak_runner Wraparound
