test/test_support.ml: Aba_experiments Aba_spec Alcotest Format
