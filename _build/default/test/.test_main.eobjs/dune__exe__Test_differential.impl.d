test/test_differential.ml: Aba_core Aba_spec Alcotest Instances List QCheck2 QCheck_alcotest
