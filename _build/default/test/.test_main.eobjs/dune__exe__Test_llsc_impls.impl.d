test/test_llsc_impls.ml: Aba_core Aba_primitives Aba_sim Aba_spec Alcotest Instances List Printf Test_support
