test/test_apps.ml: Aba_apps Aba_core Aba_primitives Aba_sim Aba_spec Alcotest Array Format Instances List Pid Random String
