test/test_runtime.ml: Aba_runtime Alcotest Array Atomic Domain List Result
