test/test_primitives.ml: Aba_primitives Alcotest Bounded Event List Pid Seq_mem
