test/test_explore.ml: Aba_core Aba_sim Aba_spec Alcotest Array Instances List String Test_support
