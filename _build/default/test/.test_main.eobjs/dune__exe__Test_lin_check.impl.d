test/test_lin_check.ml: Aba_primitives Aba_spec Alcotest Event List
