test/test_aba_impls.ml: Aba_core Aba_sim Aba_spec Alcotest Instances List Printf Test_support
