test/test_ablation.ml: Aba_core Aba_experiments Aba_sim Aba_spec Alcotest Array Instances List Printf Seq_pool
