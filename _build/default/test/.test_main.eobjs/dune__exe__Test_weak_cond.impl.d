test/test_weak_cond.ml: Aba_primitives Aba_spec Alcotest Event Format Result Weak_cond
