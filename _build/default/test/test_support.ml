(** Shared helpers for the test suites — thin wrappers over the
    {!Aba_experiments.Workloads} harness plus Alcotest-flavoured checks. *)

module Workloads = Aba_experiments.Workloads

module Aba_check = Aba_spec.Lin_check.Make (Aba_spec.Aba_register_spec)
module Llsc_check = Aba_spec.Lin_check.Make (Aba_spec.Llsc_spec)

let apply_aba = Workloads.apply_aba
let apply_llsc = Workloads.apply_llsc
let aba_random_history = Workloads.aba_random_history
let llsc_random_history = Workloads.llsc_random_history

let pp_aba_history h = Format.asprintf "%a" Aba_check.pp_history h
let pp_llsc_history h = Format.asprintf "%a" Llsc_check.pp_history h

let check_linearizable_aba ~n h =
  if not (Aba_check.check_ok ~n h) then
    Alcotest.failf "history not linearizable:@.%s" (pp_aba_history h)

let check_linearizable_llsc ~n h =
  if not (Llsc_check.check_ok ~n h) then
    Alcotest.failf "history not linearizable:@.%s" (pp_llsc_history h)
