(** Application-level ABA tests (experiments E7, E8): the index-based
    Treiber stack and Michael–Scott queue corrupt under node reuse when
    unprotected, and are linearizable when protected by tagging or LL/SC;
    the plain event flag misses events, the detecting one does not. *)

open Aba_primitives
open Aba_core
module Stack_check = Aba_spec.Lin_check.Make (Aba_spec.Stack_spec)
module Queue_check = Aba_spec.Lin_check.Make (Aba_spec.Queue_spec)

(* --- Harness: stack/queue over the simulator --- *)

type stack_instance = {
  s_push : Pid.t -> int -> bool;
  s_pop : Pid.t -> int option;
  s_driver : (Aba_spec.Stack_spec.op, Aba_spec.Stack_spec.res) Aba_sim.Driver.t;
}

let make_stack ~protection ~capacity ~n ~initial () =
  let sim = Aba_sim.Sim.create ~n in
  let module M = (val Aba_sim.Sim_mem.make sim) in
  let module S = Aba_apps.Treiber_stack.Make (M) in
  let stack = S.create ~protection ~capacity ~n ~initial in
  let apply p op () =
    match op with
    | Aba_spec.Stack_spec.Push v ->
        if not (S.push stack ~pid:p v) then failwith "pool exhausted";
        Aba_spec.Stack_spec.Push_done
    | Aba_spec.Stack_spec.Pop -> Aba_spec.Stack_spec.Popped (S.pop stack ~pid:p)
  in
  {
    s_push = (fun p v -> S.push stack ~pid:p v);
    s_pop = (fun p -> S.pop stack ~pid:p);
    s_driver = Aba_sim.Driver.create ~sim ~apply;
  }

(* The checker's initial stack is empty, so pre-filled elements are
   presented as synthetic pushes that happen before everything else
   (bottom first). *)
let with_prefill initial h =
  let prefix =
    List.concat_map
      (fun v ->
        [
          Aba_primitives.Event.Invoke (0, Aba_spec.Stack_spec.Push v);
          Aba_primitives.Event.Response (0, Aba_spec.Stack_spec.Push_done);
        ])
      (List.rev initial)
  in
  prefix @ h

let stack_linearizable ~n ~initial h =
  Stack_check.check_ok ~n (with_prefill initial h)

(* --- Deterministic naive-Treiber ABA (directed schedule) --- *)

(* p0's pop reads the head [i0] and its successor [i1], then stalls; p1
   drains the stack (recycling both nodes) and pushes a new value, which
   lands on the recycled [i0]; p0's CAS then succeeds against the
   reincarnated head and installs the long-freed [i1] as top of stack. *)
let treiber_aba_schedule protection =
  let initial = [ 1; 2 ] in
  let inst = make_stack ~protection ~capacity:2 ~n:2 ~initial () in
  let d = inst.s_driver in
  Aba_sim.Driver.invoke d 0 Aba_spec.Stack_spec.Pop;
  Aba_sim.Driver.step d 0;
  (* read head = node0 *)
  Aba_sim.Driver.step d 0;
  (* read next[node0] = node1 *)
  List.iter
    (fun op ->
      Aba_sim.Driver.invoke d 1 op;
      Aba_sim.Driver.finish d 1)
    [
      Aba_spec.Stack_spec.Pop;
      Aba_spec.Stack_spec.Pop;
      Aba_spec.Stack_spec.Push 9;
    ];
  (* p0's stale CAS fires now, while the recycled node0 is head again. *)
  Aba_sim.Driver.finish d 0;
  (* The long-freed node1 is now "top of stack": the next pop re-delivers
     a value that was already popped. *)
  Aba_sim.Driver.invoke d 1 Aba_spec.Stack_spec.Pop;
  Aba_sim.Driver.finish d 1;
  (stack_linearizable ~n:2 ~initial (Aba_sim.Driver.history d),
   Aba_sim.Driver.history d)

let treiber_naive_corrupts () =
  let ok, h = treiber_aba_schedule Aba_apps.Treiber_stack.Naive in
  if ok then
    Alcotest.failf "naive stack survived the ABA schedule:@.%s"
      (Format.asprintf "%a" Stack_check.pp_history h)

let treiber_protected_survive () =
  List.iter
    (fun (label, protection) ->
      let ok, h = treiber_aba_schedule protection in
      if not ok then
        Alcotest.failf "%s stack corrupted:@.%s" label
          (Format.asprintf "%a" Stack_check.pp_history h))
    [
      ("tagged-unbounded", Aba_apps.Treiber_stack.Tagged_unbounded);
      ("llsc-fig3", Aba_apps.Treiber_stack.Llsc Instances.llsc_fig3);
      ("llsc-moir", Aba_apps.Treiber_stack.Llsc Instances.llsc_moir);
      ("llsc-jp", Aba_apps.Treiber_stack.Llsc Instances.llsc_jp);
      ("hazard", Aba_apps.Treiber_stack.Hazard);
    ]

let treiber_small_tag_wraps () =
  (* A mod-1 tag never changes: exactly as unprotected. *)
  let ok, _ = treiber_aba_schedule (Aba_apps.Treiber_stack.Tagged 1) in
  Alcotest.(check bool) "tag mod 1 is no protection" false ok;
  (* A big-enough tag bound survives this particular schedule. *)
  let ok, _ = treiber_aba_schedule (Aba_apps.Treiber_stack.Tagged 64) in
  Alcotest.(check bool) "tag mod 64 survives here" true ok

(* --- Exhaustive exploration of the stack (small workload) --- *)

let explore_stack ?(capacity = 2) ~scripts protection =
  let initial = [ 1; 2 ] in
  let make () =
    let inst = make_stack ~protection ~capacity ~n:2 ~initial () in
    { Aba_sim.Explore.driver = inst.s_driver }
  in
  Aba_sim.Explore.exhaustive ~make ~scripts
    ~check:(stack_linearizable ~n:2 ~initial)
    ~max_schedules:2_000_000 ()

(* The full recycle workload, under which the naive stack has a corrupting
   schedule (found early by the DFS). *)
let aba_scripts =
  [|
    [ Aba_spec.Stack_spec.Pop ];
    [
      Aba_spec.Stack_spec.Pop;
      Aba_spec.Stack_spec.Pop;
      Aba_spec.Stack_spec.Push 9;
      Aba_spec.Stack_spec.Pop;
    ];
  |]

(* A smaller workload for the variants that must be exhausted completely:
   CAS-retry interleavings multiply the schedule count, so full enumeration
   of the big workload is out of reach for replay-based DFS. *)
let small_scripts =
  [|
    [ Aba_spec.Stack_spec.Pop ];
    [ Aba_spec.Stack_spec.Pop; Aba_spec.Stack_spec.Push 9 ];
  |]

let treiber_exploration () =
  (match explore_stack ~scripts:aba_scripts Aba_apps.Treiber_stack.Naive with
  | Aba_sim.Explore.Violation _ -> ()
  | Aba_sim.Explore.Ok k ->
      Alcotest.failf "naive stack survived all %d schedules" k
  | Aba_sim.Explore.Budget_exhausted _ -> Alcotest.fail "budget exhausted");
  List.iter
    (fun (label, protection) ->
      (* The hazard variant needs one spare node: a node announced by a
         stalled pop cannot be recycled, so a 2-node pool can legitimately
         exhaust mid-schedule. *)
      let capacity =
        match protection with Aba_apps.Treiber_stack.Hazard -> 3 | _ -> 2
      in
      match explore_stack ~capacity ~scripts:small_scripts protection with
      | Aba_sim.Explore.Ok _ -> ()
      | Aba_sim.Explore.Violation (sched, _) ->
          Alcotest.failf "%s corrupted under schedule %s" label
            (String.concat "," (List.map string_of_int sched))
      | Aba_sim.Explore.Budget_exhausted _ ->
          Alcotest.failf "%s: budget exhausted" label)
    (* The LL/SC-protected variants are excluded here: their multi-step
       pops multiply the interleaving count beyond replay-based DFS; they
       are covered by the directed ABA schedule and the random sweep. *)
    [
      ("naive-small", Aba_apps.Treiber_stack.Naive);
      ("tagged-unbounded", Aba_apps.Treiber_stack.Tagged_unbounded);
      ("hazard", Aba_apps.Treiber_stack.Hazard);
    ]

(* --- Sequential stack sanity --- *)

let treiber_sequential () =
  (* Direct (Seq_mem) semantics: no scheduler involved. *)
  let module M = (val Aba_primitives.Seq_mem.make ()) in
  let module S = Aba_apps.Treiber_stack.Make (M) in
  let stack =
    S.create ~protection:Aba_apps.Treiber_stack.Tagged_unbounded ~capacity:8
      ~n:2 ~initial:[]
  in
  let pop p = S.pop stack ~pid:p and push p v = S.push stack ~pid:p v in
  Alcotest.(check (option int)) "empty pop" None (pop 0);
  Alcotest.(check bool) "push 1" true (push 0 1);
  Alcotest.(check bool) "push 2" true (push 1 2);
  Alcotest.(check (option int)) "LIFO" (Some 2) (pop 0);
  Alcotest.(check (option int)) "LIFO again" (Some 1) (pop 1);
  Alcotest.(check (option int)) "empty again" None (pop 0);
  (* Fill the pool, exhaust it, then recycle. *)
  for i = 1 to 8 do
    Alcotest.(check bool) "fill" true (push 0 i)
  done;
  Alcotest.(check bool) "pool exhausted" false (push 0 99);
  Alcotest.(check (option int)) "still works" (Some 8) (pop 1);
  Alcotest.(check bool) "slot recycled" true (push 0 100)

(* --- Michael–Scott queue --- *)

type queue_instance = {
  q_enq : Pid.t -> int -> bool;
  q_deq : Pid.t -> int option;
  q_driver : (Aba_spec.Queue_spec.op, Aba_spec.Queue_spec.res) Aba_sim.Driver.t;
}

let make_queue ~protection ~capacity ~n ~initial () =
  let sim = Aba_sim.Sim.create ~n in
  let module M = (val Aba_sim.Sim_mem.make sim) in
  let module Q = Aba_apps.Ms_queue.Make (M) in
  let q = Q.create ~protection ~capacity ~initial in
  let apply p op () =
    match op with
    | Aba_spec.Queue_spec.Enqueue v ->
        if not (Q.enqueue q ~pid:p v) then failwith "pool exhausted";
        Aba_spec.Queue_spec.Enqueue_done
    | Aba_spec.Queue_spec.Dequeue ->
        Aba_spec.Queue_spec.Dequeued (Q.dequeue q ~pid:p)
  in
  {
    q_enq = (fun p v -> Q.enqueue q ~pid:p v);
    q_deq = (fun p -> Q.dequeue q ~pid:p);
    q_driver = Aba_sim.Driver.create ~sim ~apply;
  }

let queue_prefill initial h =
  let prefix =
    List.concat_map
      (fun v ->
        [
          Aba_primitives.Event.Invoke (0, Aba_spec.Queue_spec.Enqueue v);
          Aba_primitives.Event.Response (0, Aba_spec.Queue_spec.Enqueue_done);
        ])
      initial
  in
  prefix @ h

let queue_linearizable ~n ~initial h =
  Queue_check.check_ok ~n (queue_prefill initial h)

let ms_sequential () =
  let module M = (val Aba_primitives.Seq_mem.make ()) in
  let module Q = Aba_apps.Ms_queue.Make (M) in
  let q =
    Q.create ~protection:Aba_apps.Ms_queue.Tagged_unbounded ~capacity:8
      ~initial:[]
  in
  let deq p = Q.dequeue q ~pid:p and enq p v = Q.enqueue q ~pid:p v in
  Alcotest.(check (option int)) "empty deq" None (deq 0);
  Alcotest.(check bool) "enq 1" true (enq 0 1);
  Alcotest.(check bool) "enq 2" true (enq 1 2);
  Alcotest.(check bool) "enq 3" true (enq 0 3);
  Alcotest.(check (option int)) "FIFO 1" (Some 1) (deq 1);
  Alcotest.(check (option int)) "FIFO 2" (Some 2) (deq 0);
  Alcotest.(check bool) "enq 4" true (enq 1 4);
  Alcotest.(check (option int)) "FIFO 3" (Some 3) (deq 0);
  Alcotest.(check (option int)) "FIFO 4" (Some 4) (deq 0);
  Alcotest.(check (option int)) "empty again" None (deq 1)

(* Directed MS-queue ABA: p0's dequeue reads head (the dummy, node 0), the
   tail and its successor's value, then stalls before the CAS; p1 cycles
   the queue so node 0 is recycled and becomes the dummy again; p0's CAS
   then succeeds and re-dequeues a long-gone value. *)
let ms_aba_schedule protection =
  let initial = [ 1; 2 ] in
  let inst = make_queue ~protection ~capacity:2 ~n:2 ~initial () in
  let d = inst.q_driver in
  Aba_sim.Driver.invoke d 0 Aba_spec.Queue_spec.Dequeue;
  (* reads: head, tail, next[head], value — stall just before the CAS *)
  for _ = 1 to 4 do
    Aba_sim.Driver.step d 0
  done;
  List.iter
    (fun op ->
      Aba_sim.Driver.invoke d 1 op;
      Aba_sim.Driver.finish d 1)
    [
      Aba_spec.Queue_spec.Dequeue;
      Aba_spec.Queue_spec.Enqueue 9;
      Aba_spec.Queue_spec.Dequeue;
      Aba_spec.Queue_spec.Dequeue;
    ];
  Aba_sim.Driver.finish d 0;
  (queue_linearizable ~n:2 ~initial (Aba_sim.Driver.history d),
   Aba_sim.Driver.history d)

let ms_naive_corrupts () =
  let ok, h = ms_aba_schedule Aba_apps.Ms_queue.Naive in
  if ok then
    Alcotest.failf "naive queue survived the ABA schedule:@.%s"
      (Format.asprintf "%a" Queue_check.pp_history h)

let ms_tagged_survives () =
  List.iter
    (fun (label, protection) ->
      let ok, h = ms_aba_schedule protection in
      if not ok then
        Alcotest.failf "%s queue corrupted:@.%s" label
          (Format.asprintf "%a" Queue_check.pp_history h))
    [
      ("tagged-unbounded", Aba_apps.Ms_queue.Tagged_unbounded);
      ("tagged-64", Aba_apps.Ms_queue.Tagged 64);
    ]

(* --- Random-schedule linearizability for the protected variants --- *)

let stack_random_linearizable () =
  let initial = [ 1; 2 ] in
  List.iter
    (fun (label, protection) ->
      for seed = 1 to 25 do
        let inst = make_stack ~protection ~capacity:16 ~n:3 ~initial () in
        let rng = Random.State.make [| seed |] in
        let scripts =
          Array.init 3 (fun _ ->
              List.init 4 (fun _ ->
                  if Random.State.bool rng then
                    Aba_spec.Stack_spec.Push (Random.State.int rng 10)
                  else Aba_spec.Stack_spec.Pop))
        in
        Aba_sim.Driver.run_random inst.s_driver ~scripts ~seed ();
        let h = Aba_sim.Driver.history inst.s_driver in
        if not (stack_linearizable ~n:3 ~initial h) then
          Alcotest.failf "%s stack not linearizable at seed %d" label seed
      done)
    [
      ("tagged-unbounded", Aba_apps.Treiber_stack.Tagged_unbounded);
      ("llsc-fig3", Aba_apps.Treiber_stack.Llsc Instances.llsc_fig3);
      ("llsc-jp", Aba_apps.Treiber_stack.Llsc Instances.llsc_jp);
      ("hazard", Aba_apps.Treiber_stack.Hazard);
    ]

let queue_random_linearizable () =
  let initial = [ 1; 2 ] in
  List.iter
    (fun (label, protection) ->
      for seed = 1 to 25 do
        let inst = make_queue ~protection ~capacity:16 ~n:3 ~initial () in
        let rng = Random.State.make [| seed |] in
        let scripts =
          Array.init 3 (fun _ ->
              List.init 4 (fun _ ->
                  if Random.State.bool rng then
                    Aba_spec.Queue_spec.Enqueue (Random.State.int rng 10)
                  else Aba_spec.Queue_spec.Dequeue))
        in
        Aba_sim.Driver.run_random inst.q_driver ~scripts ~seed ();
        let h = Aba_sim.Driver.history inst.q_driver in
        if not (queue_linearizable ~n:3 ~initial h) then
          Alcotest.failf "%s queue not linearizable at seed %d" label seed
      done)
    [ ("tagged-unbounded", Aba_apps.Ms_queue.Tagged_unbounded) ]

(* --- Event flag (E8) --- *)

let event_flag_straddle flavour =
  (* waiter polls, then signal+reset straddle, then waiter polls again *)
  let module M = (val Aba_primitives.Seq_mem.make ()) in
  let module F = Aba_apps.Event_flag.Make (M) in
  let f = F.create ~flavour ~n:2 in
  let first = F.poll f ~pid:1 in
  F.signal f ~pid:0;
  F.reset f ~pid:0;
  let second = F.poll f ~pid:1 in
  (first, second)

let event_flag_plain_misses () =
  let first, second = event_flag_straddle Aba_apps.Event_flag.Plain in
  Alcotest.(check bool) "nothing before" false first;
  Alcotest.(check bool) "event MISSED — the ABA" false second

let event_flag_detecting_catches () =
  List.iter
    (fun (label, builder) ->
      let first, second =
        event_flag_straddle (Aba_apps.Event_flag.Detecting builder)
      in
      Alcotest.(check bool) (label ^ ": nothing before") false first;
      Alcotest.(check bool) (label ^ ": event caught") true second)
    (Instances.all_aba ())

let suite =
  [
    Alcotest.test_case "treiber: sequential behaviour" `Quick
      treiber_sequential;
    Alcotest.test_case "treiber: naive CAS corrupts (directed ABA)" `Quick
      treiber_naive_corrupts;
    Alcotest.test_case "treiber: protected variants survive" `Quick
      treiber_protected_survive;
    Alcotest.test_case "treiber: tag bound matters" `Quick
      treiber_small_tag_wraps;
    Alcotest.test_case "treiber: exhaustive exploration" `Quick
      treiber_exploration;
    Alcotest.test_case "treiber: random schedules linearizable" `Quick
      stack_random_linearizable;
    Alcotest.test_case "ms-queue: sequential FIFO" `Quick ms_sequential;
    Alcotest.test_case "ms-queue: naive CAS corrupts (directed ABA)" `Quick
      ms_naive_corrupts;
    Alcotest.test_case "ms-queue: tagged variants survive" `Quick
      ms_tagged_survives;
    Alcotest.test_case "ms-queue: random schedules linearizable" `Quick
      queue_random_linearizable;
    Alcotest.test_case "event flag: plain register misses events" `Quick
      event_flag_plain_misses;
    Alcotest.test_case "event flag: ABA-detecting registers catch them"
      `Quick event_flag_detecting_catches;
  ]
