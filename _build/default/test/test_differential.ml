(** Sequential differential testing: under sequential execution the
    implementations must agree with the specification state machines
    {e exactly}, operation by operation.  Long random sequences (hundreds of
    operations, all processes interleaved at method granularity) catch
    bookkeeping bugs — sequence-pool cycling, announce staleness, local
    flag management — that short concurrent histories cannot reach. *)

open Aba_core
module Aba_spec_m = Aba_spec.Aba_register_spec
module Llsc_spec_m = Aba_spec.Llsc_spec

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let gen_ops =
  (* (pid selector, op selector, value) triples; lengths up to ~300. *)
  QCheck2.Gen.(
    list_size (int_range 1 300)
      (triple (int_range 0 100) (int_range 0 100) (int_range 0 7)))

let aba_differential (label, builder) =
  qtest (label ^ " agrees with the spec sequentially") gen_ops (fun ops ->
      let n = 4 in
      let inst = Instances.aba_seq builder ~n in
      let spec = ref (Aba_spec_m.init ~n) in
      List.for_all
        (fun (p_sel, op_sel, v) ->
          let p = p_sel mod n in
          if op_sel mod 2 = 0 then begin
            let st', expected = Aba_spec_m.apply !spec p Aba_spec_m.DRead in
            spec := st';
            let value, flag = inst.Instances.dread p in
            Aba_spec_m.equal_res expected (Aba_spec_m.Read_result (value, flag))
          end
          else begin
            let st', expected =
              Aba_spec_m.apply !spec p (Aba_spec_m.DWrite v)
            in
            spec := st';
            inst.Instances.dwrite p v;
            Aba_spec_m.equal_res expected Aba_spec_m.Write_done
          end)
        ops)

let llsc_differential (label, builder) =
  qtest (label ^ " agrees with the spec sequentially") gen_ops (fun ops ->
      let n = 4 in
      let inst = Instances.llsc_seq builder ~n in
      let spec = ref (Llsc_spec_m.init ~n) in
      List.for_all
        (fun (p_sel, op_sel, v) ->
          let p = p_sel mod n in
          let op =
            match op_sel mod 3 with
            | 0 -> Llsc_spec_m.Ll
            | 1 -> Llsc_spec_m.Sc v
            | _ -> Llsc_spec_m.Vl
          in
          let st', expected = Llsc_spec_m.apply !spec p op in
          spec := st';
          let actual =
            match op with
            | Llsc_spec_m.Ll -> Llsc_spec_m.Ll_result (inst.Instances.ll p)
            | Llsc_spec_m.Sc x ->
                Llsc_spec_m.Sc_result (inst.Instances.sc p x)
            | Llsc_spec_m.Vl -> Llsc_spec_m.Vl_result (inst.Instances.vl p)
          in
          Llsc_spec_m.equal_res expected actual)
        ops)

(* The flawed implementations must FAIL differential testing — this guards
   the tests themselves against becoming vacuous. *)
let flawed_aba_diverges () =
  let n = 2 in
  let tag_bound = 2 in
  let inst = Instances.aba_seq (Instances.aba_bounded_tag ~tag_bound) ~n in
  let spec = ref (Aba_spec_m.init ~n) in
  let diverged = ref false in
  (* write; read; write x tag_bound; read — the read must flag, the flawed
     register does not. *)
  let step p op =
    let st', expected = Aba_spec_m.apply !spec p op in
    spec := st';
    let actual =
      match op with
      | Aba_spec_m.DRead ->
          let v, f = inst.Instances.dread p in
          Aba_spec_m.Read_result (v, f)
      | Aba_spec_m.DWrite v ->
          inst.Instances.dwrite p v;
          Aba_spec_m.Write_done
    in
    if not (Aba_spec_m.equal_res expected actual) then diverged := true
  in
  step 0 (Aba_spec_m.DWrite 1);
  step 1 Aba_spec_m.DRead;
  for _ = 1 to tag_bound do
    step 0 (Aba_spec_m.DWrite 1)
  done;
  step 1 Aba_spec_m.DRead;
  Alcotest.(check bool) "flawed register diverges from the spec" true
    !diverged

let suite =
  List.concat
    [
      List.map aba_differential (Instances.all_aba ());
      List.map llsc_differential (Instances.all_llsc ());
      [
        Alcotest.test_case "flawed register caught by differential test"
          `Quick flawed_aba_diverges;
      ];
    ]
