(** Exhaustive schedule exploration (experiment E9): every interleaving of
    small workloads is checked for linearizability.  This is the executable
    counterpart of the paper's "for all schedules" quantification — at these
    sizes the algorithms are {e verified}, not merely tested. *)

open Aba_core
module Aba_op = Aba_spec.Aba_register_spec
module Llsc_op = Aba_spec.Llsc_spec

let make_aba_instance builder n () =
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.aba_in_sim builder sim ~n in
  {
    Aba_sim.Explore.driver =
      Aba_sim.Driver.create ~sim ~apply:(Test_support.apply_aba inst);
  }

let make_llsc_instance builder n () =
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.llsc_in_sim builder sim ~n in
  {
    Aba_sim.Explore.driver =
      Aba_sim.Driver.create ~sim ~apply:(Test_support.apply_llsc inst);
  }

let explore_aba ?(max_schedules = 500_000) builder scripts =
  let n = Array.length scripts in
  Aba_sim.Explore.exhaustive
    ~make:(make_aba_instance builder n)
    ~scripts
    ~check:(Test_support.Aba_check.check_ok ~n)
    ~max_schedules ()

let explore_llsc ?(max_schedules = 500_000) builder scripts =
  let n = Array.length scripts in
  Aba_sim.Explore.exhaustive
    ~make:(make_llsc_instance builder n)
    ~scripts
    ~check:(Test_support.Llsc_check.check_ok ~n)
    ~max_schedules ()

let expect_ok label = function
  | Aba_sim.Explore.Ok k ->
      if k < 1 then Alcotest.failf "%s: no schedules explored" label
  | Aba_sim.Explore.Violation (sched, _) ->
      Alcotest.failf "%s: violation under schedule %s" label
        (String.concat "," (List.map string_of_int sched))
  | Aba_sim.Explore.Budget_exhausted k ->
      Alcotest.failf "%s: exploration budget exhausted after %d schedules"
        label k

(* Workloads.  Same-value writes are deliberate: they are the ABA cases. *)

let aba_workload_writer_reader =
  [| [ Aba_op.DWrite 1; Aba_op.DWrite 1 ];
     [ Aba_op.DRead; Aba_op.DRead ] |]

let aba_workload_two_writers =
  [| [ Aba_op.DWrite 1 ];
     [ Aba_op.DRead; Aba_op.DRead ];
     [ Aba_op.DWrite 1 ] |]

let aba_workload_all_roles =
  [| [ Aba_op.DWrite 2; Aba_op.DRead ];
     [ Aba_op.DRead; Aba_op.DWrite 2 ] |]

let llsc_workload_contention =
  [| [ Llsc_op.Ll; Llsc_op.Sc 1 ];
     [ Llsc_op.Ll; Llsc_op.Sc 2; Llsc_op.Vl ] |]

let llsc_workload_three =
  (* Three-way contention, kept small enough that even the step-heavy
     implementations (LL is 3 steps for JP, up to 2n+1 for Figure 3) stay
     within a few thousand interleavings. *)
  [| [ Llsc_op.Ll; Llsc_op.Sc 1 ];
     [ Llsc_op.Ll; Llsc_op.Sc 1 ];
     [ Llsc_op.Sc 2 ] |]

let aba_exhaustive (label, builder) =
  let test () =
    expect_ok (label ^ "/writer-reader")
      (explore_aba builder aba_workload_writer_reader);
    expect_ok (label ^ "/two-writers")
      (explore_aba builder aba_workload_two_writers);
    expect_ok (label ^ "/all-roles")
      (explore_aba builder aba_workload_all_roles)
  in
  Alcotest.test_case (label ^ " exhaustive (all schedules)") `Quick test

let llsc_exhaustive (label, builder) =
  let test () =
    expect_ok (label ^ "/contention")
      (explore_llsc builder llsc_workload_contention);
    expect_ok (label ^ "/three")
      (explore_llsc builder llsc_workload_three)
  in
  Alcotest.test_case (label ^ " exhaustive (all schedules)") `Quick test

(* The flawed bounded-tag register is caught by exploration: with tag bound
   2, two same-value writes wrap the tag and a read in the right place
   misses them.  Even the sequential schedule exhibits it, so exploration
   must find a violation. *)
let exploration_catches_flaw () =
  let builder = Instances.aba_bounded_tag ~tag_bound:2 in
  let scripts =
    [| [ Aba_op.DWrite 1; Aba_op.DWrite 1; Aba_op.DWrite 1 ];
       [ Aba_op.DRead; Aba_op.DRead ] |]
  in
  match explore_aba builder scripts with
  | Aba_sim.Explore.Violation (_, h) ->
      (* The history really is non-linearizable. *)
      Alcotest.(check bool)
        "violating history rejected by checker" false
        (Test_support.Aba_check.check_ok ~n:2 h)
  | Aba_sim.Explore.Ok k ->
      Alcotest.failf
        "flawed implementation survived all %d schedules — finder broken" k
  | Aba_sim.Explore.Budget_exhausted _ ->
      Alcotest.fail "exploration budget exhausted"

let schedule_counting () =
  Alcotest.(check int) "C(4,2)" 6
    (Aba_sim.Explore.count_schedules ~n_actions:[| 2; 2 |]);
  Alcotest.(check int) "multinomial 12!/(2!8!2!)" 2970
    (Aba_sim.Explore.count_schedules ~n_actions:[| 2; 8; 2 |])

let suite =
  List.concat
    [
      List.map aba_exhaustive (Instances.all_aba ());
      List.map llsc_exhaustive (Instances.all_llsc ());
      [
        Alcotest.test_case "exploration catches the bounded-tag flaw" `Quick
          exploration_catches_flaw;
        Alcotest.test_case "schedule counting" `Quick schedule_counting;
      ];
    ]
