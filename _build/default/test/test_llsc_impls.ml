(** Correctness tests for every LL/SC/VL implementation: sequential
    behaviour, and linearizability under random schedules in the simulator
    (experiments E2, E5, E9). *)

open Aba_core

let builders = Instances.all_llsc ()

(* --- Sequential behaviour --- *)

let sequential_basics (label, builder) =
  let test () =
    let n = 3 in
    let inst = Instances.llsc_seq builder ~n in
    let v = inst.Instances.ll 1 in
    Alcotest.(check int) "initial value" inst.Instances.llsc_initial v;
    Alcotest.(check bool) "fresh link is valid" true (inst.Instances.vl 1);
    Alcotest.(check bool) "sc succeeds on fresh link" true
      (inst.Instances.sc 1 42);
    Alcotest.(check int) "ll sees new value" 42 (inst.Instances.ll 2);
    (* p1's link was consumed by its own SC. *)
    Alcotest.(check bool) "link invalid after own sc" false
      (inst.Instances.vl 1);
    Alcotest.(check bool) "second sc without ll fails" false
      (inst.Instances.sc 1 43);
    Alcotest.(check int) "failed sc left value" 42 (inst.Instances.ll 0)
  in
  Alcotest.test_case (label ^ " sequential basics") `Quick test

let sequential_interference (label, builder) =
  let test () =
    let n = 3 in
    let inst = Instances.llsc_seq builder ~n in
    ignore (inst.Instances.ll 1);
    ignore (inst.Instances.ll 2);
    Alcotest.(check bool) "p1 sc succeeds" true (inst.Instances.sc 1 10);
    (* p2's link is now stale. *)
    Alcotest.(check bool) "p2 vl fails" false (inst.Instances.vl 2);
    Alcotest.(check bool) "p2 sc fails" false (inst.Instances.sc 2 20);
    Alcotest.(check int) "value is p1's" 10 (inst.Instances.ll 0);
    (* After re-linking, p2 can succeed. *)
    ignore (inst.Instances.ll 2);
    Alcotest.(check bool) "p2 sc succeeds after re-ll" true
      (inst.Instances.sc 2 20);
    Alcotest.(check int) "value is p2's" 20 (inst.Instances.ll 0)
  in
  Alcotest.test_case (label ^ " sequential interference") `Quick test

let sequential_vl_convention (label, builder) =
  let test () =
    (* Appendix A convention: VL by a process that never called LL returns
       true as long as no successful SC has been executed. *)
    let n = 3 in
    let inst = Instances.llsc_seq builder ~n in
    Alcotest.(check bool) "vl before any ll/sc" true (inst.Instances.vl 2);
    ignore (inst.Instances.ll 1);
    Alcotest.(check bool) "still true (no sc yet)" true (inst.Instances.vl 2);
    ignore (inst.Instances.sc 1 5);
    Alcotest.(check bool) "false after a successful sc" false
      (inst.Instances.vl 2)
  in
  Alcotest.test_case (label ^ " VL convention") `Quick test

let sequential_long_run (label, builder) =
  let test () =
    let n = 4 in
    let inst = Instances.llsc_seq builder ~n in
    (* Alternating LL/SC by rotating processes; every SC must succeed since
       each process re-links just before storing. *)
    for i = 1 to 200 do
      let p = i mod n in
      ignore (inst.Instances.ll p);
      Alcotest.(check bool) "uncontended sc succeeds" true
        (inst.Instances.sc p i);
      Alcotest.(check int) "readback" i (inst.Instances.ll ((p + 1) mod n))
    done
  in
  Alcotest.test_case (label ^ " sequential long run") `Quick test

(* --- Linearizability under random schedules --- *)

let random_linearizable ?(n = 3) ?(ops_per_pid = 4) ?(seeds = 60)
    (label, builder) =
  let test () =
    for seed = 1 to seeds do
      let h =
        Test_support.llsc_random_history builder ~n ~ops_per_pid ~seed
      in
      Test_support.check_linearizable_llsc ~n h
    done
  in
  Alcotest.test_case
    (Printf.sprintf "%s linearizable (n=%d, %d ops/pid, %d seeds)" label n
       ops_per_pid seeds)
    `Quick test

let random_linearizable_wide (label, builder) =
  random_linearizable ~n:5 ~ops_per_pid:3 ~seeds:25 (label, builder)

(* --- Space usage (Corollary 1's upper-bound side) --- *)

let space_counts () =
  let n = 6 in
  let space builder =
    let sim = Aba_sim.Sim.create ~n in
    let inst = Instances.llsc_in_sim builder sim ~n in
    List.length (inst.Instances.llsc_space ())
  in
  Alcotest.(check int) "fig3 uses 1 CAS" 1 (space Instances.llsc_fig3);
  Alcotest.(check int) "moir uses 1 CAS" 1 (space Instances.llsc_moir);
  Alcotest.(check int) "jp uses 1 CAS + n registers" (n + 1)
    (space Instances.llsc_jp)

(* --- The flawed bounded-tag LL/SC must fail (Corollary 1's naive
   counter-attempt) --- *)

let bounded_tag_llsc_is_flawed () =
  let tag_bound = 4 in
  let n = 2 in
  let inst =
    Instances.llsc_seq (Instances.llsc_bounded_tag ~tag_bound) ~n
  in
  (* p1 links, then p0 performs exactly [tag_bound] successful SCs that
     cycle the value back: the tag wraps and p1's stale SC succeeds — two
     SCs succeeding in one link window. *)
  let v0 = inst.Instances.ll 1 in
  for _ = 1 to tag_bound do
    ignore (inst.Instances.ll 0);
    Alcotest.(check bool) "interfering sc succeeds" true
      (inst.Instances.sc 0 v0)
  done;
  Alcotest.(check bool) "stale sc WRONGLY succeeds — the flaw" true
    (inst.Instances.sc 1 9);
  (* The same story as a checked history: non-linearizable. *)
  let module Spec = Aba_spec.Llsc_spec in
  let h = ref [] in
  let record e = h := e :: !h in
  let inst =
    Instances.llsc_seq (Instances.llsc_bounded_tag ~tag_bound) ~n
  in
  record (Aba_primitives.Event.Invoke (1, Spec.Ll));
  record (Aba_primitives.Event.Response (1, Spec.Ll_result (inst.Instances.ll 1)));
  for _ = 1 to tag_bound do
    record (Aba_primitives.Event.Invoke (0, Spec.Ll));
    record
      (Aba_primitives.Event.Response (0, Spec.Ll_result (inst.Instances.ll 0)));
    record (Aba_primitives.Event.Invoke (0, Spec.Sc 0));
    record
      (Aba_primitives.Event.Response (0, Spec.Sc_result (inst.Instances.sc 0 0)))
  done;
  record (Aba_primitives.Event.Invoke (1, Spec.Sc 9));
  record
    (Aba_primitives.Event.Response (1, Spec.Sc_result (inst.Instances.sc 1 9)));
  Alcotest.(check bool) "history is rejected by the checker" false
    (Test_support.Llsc_check.check_ok ~n (List.rev !h))

(* --- Figure 3 specifics --- *)

let fig3_bounded () =
  (* The Figure 3 CAS object stores (value, n-bit mask): its domain is
     finite — this is what distinguishes it from Moir's construction. *)
  let n = 4 in
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.llsc_in_sim Instances.llsc_fig3 sim ~n in
  match inst.Instances.llsc_space () with
  | [ (_, domain) ] ->
      Alcotest.(check bool) "domain is described as bounded" true
        (domain <> "unbounded")
  | l -> Alcotest.failf "expected one object, got %d" (List.length l)

let suite =
  List.concat
    [
      List.map sequential_basics builders;
      List.map sequential_interference builders;
      List.map sequential_vl_convention builders;
      List.map sequential_long_run builders;
      List.map random_linearizable builders;
      List.map random_linearizable_wide builders;
      [
        Alcotest.test_case "space usage matches corollary 1" `Quick
          space_counts;
        Alcotest.test_case "figure 3 CAS object is bounded" `Quick
          fig3_bounded;
        Alcotest.test_case "bounded-tag LL/SC is flawed (corollary 1)" `Quick
          bounded_tag_llsc_is_flawed;
      ];
    ]
