(** Ablation tests: removing the constants the proofs rely on breaks the
    algorithms in observable ways.

    - Figure 3 retries its CAS up to [n] times; Claim 6's counting argument
      is exactly why [n] suffices to conclude an SC linearized.  With the
      bound lowered to 1 the explorer exhibits a linearizability violation
      (a link poisoned with no intervening SC).
    - Figure 4 draws sequence numbers from [{0..2n+1}]; [|usedQ| = n+1] and
      [|na| <= n] can exclude up to [2n+1] values, so the domain is the
      smallest that keeps [GetSeq] total.  Shrinking it cannot break
      {e safety} (the pool refuses to reuse an announced number) but loses
      {e wait-freedom}: the pool exhausts. *)

open Aba_core
module Llsc_check = Aba_spec.Lin_check.Make (Aba_spec.Llsc_spec)
module Workloads = Aba_experiments.Workloads

let fig3_scripts =
  [|
    [ Aba_spec.Llsc_spec.Ll; Aba_spec.Llsc_spec.Sc 1 ];
    [ Aba_spec.Llsc_spec.Ll; Aba_spec.Llsc_spec.Sc 1 ];
    [ Aba_spec.Llsc_spec.Sc 2 ];
  |]

let explore_fig3_with_retries r =
  let n = Array.length fig3_scripts in
  let builder = Instances.llsc_fig3_retries ~retries:(fun ~n:_ -> r) in
  Aba_sim.Explore.exhaustive
    ~make:(Workloads.llsc_explore_instance builder ~n)
    ~scripts:fig3_scripts
    ~check:(Llsc_check.check_ok ~n)
    ~max_schedules:2_000_000 ()

let fig3_full_bound_verified () =
  match explore_fig3_with_retries 3 with
  | Aba_sim.Explore.Ok _ -> ()
  | o ->
      Alcotest.failf "retries=n should verify, got %s"
        (match o with
        | Aba_sim.Explore.Violation _ -> "violation"
        | _ -> "budget")

let fig3_starved_bound_breaks () =
  List.iter
    (fun r ->
      match explore_fig3_with_retries r with
      | Aba_sim.Explore.Violation (_, h) ->
          Alcotest.(check bool)
            (Printf.sprintf "retries=%d counterexample is real" r)
            false
            (Llsc_check.check_ok ~n:3 h)
      | Aba_sim.Explore.Ok k ->
          Alcotest.failf "retries=%d survived all %d schedules" r k
      | Aba_sim.Explore.Budget_exhausted _ ->
          Alcotest.fail "exploration budget exhausted")
    [ 1; 0 ]

let fig4_pool_run builder ~rounds =
  let n = 3 in
  let inst = Instances.aba_seq builder ~n in
  try
    for _ = 1 to rounds do
      inst.Instances.dwrite 0 1;
      let _, f1 = inst.Instances.dread 1 in
      if not f1 then failwith "missed write";
      let _, f2 = inst.Instances.dread 1 in
      if f2 then failwith "spurious flag"
    done;
    `Clean
  with
  | Seq_pool.Exhausted -> `Exhausted
  | Failure msg -> `Violation msg

let fig4_full_domain_clean () =
  match fig4_pool_run Instances.aba_fig4 ~rounds:500 with
  | `Clean -> ()
  | `Exhausted -> Alcotest.fail "full domain must never exhaust"
  | `Violation msg -> Alcotest.failf "full domain violated: %s" msg

let fig4_shrunk_domain_exhausts () =
  (* At n = 3 the domain is {0..7}; removing 4 values leaves fewer numbers
     than |usedQ| + |na| can exclude, and the pool eventually dries up.
     Crucially it NEVER silently misses a write. *)
  List.iter
    (fun slack ->
      match fig4_pool_run (Instances.aba_fig4_shrunk ~slack) ~rounds:500 with
      | `Exhausted -> ()
      | `Clean ->
          Alcotest.failf "slack=%d unexpectedly survived 500 rounds" slack
      | `Violation msg ->
          Alcotest.failf "slack=%d broke SAFETY (%s) — must only break \
                          liveness"
            slack msg)
    [ 4; 5; 6 ]

let fig4_small_slack_safe () =
  (* Mild shrinking may or may not exhaust, but must never be unsafe. *)
  List.iter
    (fun slack ->
      match fig4_pool_run (Instances.aba_fig4_shrunk ~slack) ~rounds:500 with
      | `Clean | `Exhausted -> ()
      | `Violation msg ->
          Alcotest.failf "slack=%d broke safety: %s" slack msg)
    [ 1; 2; 3 ]

let suite =
  [
    Alcotest.test_case "fig3: retry bound n verifies" `Quick
      fig3_full_bound_verified;
    Alcotest.test_case "fig3: starved retry bound is refuted" `Quick
      fig3_starved_bound_breaks;
    Alcotest.test_case "fig4: full sequence domain stays clean" `Quick
      fig4_full_domain_clean;
    Alcotest.test_case "fig4: shrunk domain exhausts (liveness only)" `Quick
      fig4_shrunk_domain_exhausts;
    Alcotest.test_case "fig4: mild shrinking never breaks safety" `Quick
      fig4_small_slack_safe;
  ]
