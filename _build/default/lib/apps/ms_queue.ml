open Aba_primitives

type protection = Naive | Tagged of int | Tagged_unbounded

module Make (M : Mem_intf.S) = struct
  (* Every pointer (head, tail, each next) is an (index, tag) pair.  The
     protection variant only changes how tags evolve: [Naive] never bumps
     them (so the tag is inert and the CAS is an untagged index CAS),
     [Tagged m] bumps modulo [m], [Tagged_unbounded] bumps forever —
     Michael and Scott's counted pointers. *)
  type t = {
    bump : int -> int;
    head : (int * int) M.cas;
    tail : (int * int) M.cas;
    nexts : (int * int) M.cas array;
    values : int M.register array;
    free : int Queue.t;
  }

  let show_ptr (i, tag) = Printf.sprintf "(%d,#%d)" i tag

  let create ~protection ~capacity ~initial =
    let k = List.length initial in
    if k > capacity then invalid_arg "Ms_queue.create: initial exceeds capacity";
    let slots = capacity + 1 in
    let bump =
      match protection with
      | Naive -> fun _ -> 0
      | Tagged m -> fun t -> (t + 1) mod m
      | Tagged_unbounded -> fun t -> t + 1
    in
    let ptr_bound =
      match protection with
      | Naive -> Some (Bounded.pair (Bounded.int_range ~lo:(-1) ~hi:(slots - 1))
                         (Bounded.int_mod 1))
      | Tagged m ->
          Some
            (Bounded.pair
               (Bounded.int_range ~lo:(-1) ~hi:(slots - 1))
               (Bounded.int_mod m))
      | Tagged_unbounded -> None
    in
    let value_bound = Bounded.int_range ~lo:(-1) ~hi:4095 in
    (* Node 0 is the initial dummy; nodes 1..k hold [initial]. *)
    let values =
      Array.init slots (fun i ->
          let v =
            if 1 <= i && i <= k then List.nth initial (i - 1) else -1
          in
          M.make_register ~bound:value_bound
            ~name:(Printf.sprintf "val[%d]" i)
            ~show:string_of_int v)
    in
    let nexts =
      Array.init slots (fun i ->
          let nxt = if i < k then i + 1 else -1 in
          M.make_cas ?bound:ptr_bound ~writable:true
            ~name:(Printf.sprintf "nxt[%d]" i)
            ~show:show_ptr (nxt, 0))
    in
    let head =
      M.make_cas ?bound:ptr_bound ~name:"head" ~show:show_ptr (0, 0)
    in
    let tail =
      M.make_cas ?bound:ptr_bound ~name:"tail" ~show:show_ptr (k, 0)
    in
    let free = Queue.create () in
    for i = k + 1 to slots - 1 do
      Queue.add i free
    done;
    { bump; head; tail; nexts; values; free }

  let enqueue t ~pid:_ v =
    match Queue.take_opt t.free with
    | None -> false
    | Some i ->
        M.write t.values.(i) v;
        (* Reset the fresh node's link, bumping its tag so that CASes armed
           against the node's previous life fail (counted pointers). *)
        let _, old_tag = M.cas_read t.nexts.(i) in
        M.cas_write t.nexts.(i) (-1, t.bump old_tag);
        let rec attempt () =
          let (t_idx, t_tag) as tail_seen = M.cas_read t.tail in
          let (n_idx, n_tag) as next_seen = M.cas_read t.nexts.(t_idx) in
          if n_idx = -1 then begin
            if
              M.cas t.nexts.(t_idx) ~expect:next_seen
                ~update:(i, t.bump n_tag)
            then begin
              (* Swing the tail; failure means someone helped already. *)
              ignore (M.cas t.tail ~expect:tail_seen ~update:(i, t.bump t_tag));
              true
            end
            else attempt ()
          end
          else begin
            (* Tail is lagging: help it forward, then retry. *)
            ignore
              (M.cas t.tail ~expect:tail_seen ~update:(n_idx, t.bump t_tag));
            attempt ()
          end
        in
        attempt ()

  let dequeue t ~pid:_ =
    let rec attempt () =
      let (h_idx, h_tag) as head_seen = M.cas_read t.head in
      let (t_idx, t_tag) as tail_seen = M.cas_read t.tail in
      let n_idx, _ = M.cas_read t.nexts.(h_idx) in
      if h_idx = t_idx then
        if n_idx = -1 then None
        else begin
          ignore (M.cas t.tail ~expect:tail_seen ~update:(n_idx, t.bump t_tag));
          attempt ()
        end
      else begin
        (* Read the value before the CAS: afterwards the new dummy [n_idx]
           may be dequeued and recycled by others. *)
        let v = M.read t.values.(n_idx) in
        if M.cas t.head ~expect:head_seen ~update:(n_idx, t.bump h_tag)
        then begin
          Queue.add h_idx t.free;
          Some v
        end
        else attempt ()
      end
    in
    attempt ()

  let space _ = M.space ()
end
