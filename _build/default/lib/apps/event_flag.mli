(** Reusable event flags — the busy-waiting motivation of the paper's
    introduction.

    Mutual-exclusion and barrier algorithms signal events by changing a
    register's value; waiters poll the register.  Resetting the register for
    reuse re-creates the old value, and a waiter whose poll straddles the
    signal/reset pair misses the event — an ABA.  Built on an ABA-detecting
    register the poll cannot miss: the detection flag reports the
    intervening writes regardless of the value.

    [poll] returns [true] iff a signal (or reset) happened since the calling
    process's previous poll.  The [Plain] flavour compares values and
    exhibits the lost-event ABA; any correct ABA-detecting register flavour
    does not. *)

open Aba_primitives

type flavour =
  | Plain  (** value comparison on an ordinary register: misses events *)
  | Detecting of Aba_core.Instances.aba_builder

module Make (M : Mem_intf.S) : sig
  type t

  val create : flavour:flavour -> n:int -> t

  val signal : t -> pid:Pid.t -> unit
  (** Set the flag (write 1). *)

  val reset : t -> pid:Pid.t -> unit
  (** Clear the flag for reuse (write 0 — the initial value again). *)

  val poll : t -> pid:Pid.t -> bool
  (** Did anything happen since my previous poll? *)

  val space : t -> (string * string) list
end
