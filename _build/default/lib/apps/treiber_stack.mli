(** Index-based Treiber stack with node reuse — the introduction's
    motivating ABA hazard, made deterministic.

    The classic lock-free stack [pop] reads the head node [h] and its
    successor, then tries [CAS(head, h, next)].  When popped nodes are
    recycled through a free list (as any allocator must eventually do), the
    head can return to [h] with a {e different} successor while the [CAS]
    is in flight — the CAS succeeds and the stack is corrupted: values are
    lost or popped twice ([24, 29, 31] in the paper).

    Nodes live in a fixed pool and are addressed by index, so the hazard is
    exactly the bounded-base-object situation the paper studies: the head
    word cannot hide an unbounded tag.  Four head protections are provided:

    - [Naive] — plain CAS on the node index: ABA-prone;
    - [Tagged m] — index + tag modulo [m] packed in the CAS object: safe
      until the tag wraps (the folklore mitigation);
    - [Tagged_unbounded] — index + unbounded tag: safe, but needs an
      unbounded base object;
    - [Llsc b] — head accessed through an LL/SC implementation (e.g.
      Figure 3 over one bounded CAS): safe with bounded objects, the
      paper's recommended methodology;
    - [Hazard] — the plain index CAS of [Naive], made safe by hazard
      pointers (Michael [20, 21] in the paper's related work): a popper
      announces the node it is about to detach in a single-writer register
      and re-validates the head, and the allocator never re-issues an
      announced node.  Detection is replaced by {e reclamation control};
      the price is an announce/validate pair on every pop and an
      [n]-register scan when recycling — application-specific machinery,
      exactly as the paper characterizes it.

    The allocator itself is deliberately {e not} part of the shared-memory
    game (it is an atomic FIFO free list): the observable ABA belongs to the
    stack's head, not to the allocator.  (The [Hazard] variant's hazard
    scan, in contrast, {e is} shared-memory work, since that is the cost
    the technique pays.) *)

open Aba_primitives

type protection =
  | Naive
  | Tagged of int
  | Tagged_unbounded
  | Llsc of Aba_core.Instances.llsc_builder
  | Hazard

module Make (M : Mem_intf.S) : sig
  type t

  val create :
    protection:protection -> capacity:int -> n:int -> initial:int list -> t
  (** A stack over a pool of [capacity] nodes, pre-filled with [initial]
      (first element on top).  [n] is the number of processes (needed by
      the LL/SC protection). *)

  val push : t -> pid:Pid.t -> int -> bool
  (** [false] if the pool is exhausted. *)

  val pop : t -> pid:Pid.t -> int option

  val space : t -> (string * string) list
end
