open Aba_primitives
open Aba_core

type protection =
  | Naive
  | Tagged of int
  | Tagged_unbounded
  | Llsc of Instances.llsc_builder
  | Hazard

module Make (M : Mem_intf.S) = struct
  (* All head variants are driven through the same witness-based interface:
     [read_head] returns the top index plus an opaque witness, and
     [cas_head] succeeds only if the head is "unchanged since the witness" —
     where each protection has its own (possibly ABA-prone) meaning of
     unchanged. *)
  type head_ops = {
    read_head : Pid.t -> int * (int * int);  (* index, witness *)
    cas_head : Pid.t -> witness:int * int -> update:int -> bool;
    head_space : unit -> (string * string) list;
  }

  (* Hazard-pointer state (Michael [20,21]): [announce.(q)] is written only
     by process [q] and holds the node its in-flight pop protects; retired
     nodes wait until a scan finds them unannounced. *)
  type hazard_state = {
    announce : int M.register array;
    retired : int Queue.t;
  }

  type t = {
    head : head_ops;
    values : int M.register array;
    nexts : int M.register array;
    free : int Queue.t;  (* FIFO recycling, model-atomic (see .mli) *)
    hazard : hazard_state option;
  }

  let show_pair (i, tag) = Printf.sprintf "(%d,#%d)" i tag

  let naive_head ~capacity init =
    let bound = Bounded.int_range ~lo:(-1) ~hi:(capacity - 1) in
    let cell = M.make_cas ~bound ~name:"head" ~show:string_of_int init in
    {
      read_head =
        (fun _ ->
          let i = M.cas_read cell in
          (i, (i, 0)));
      cas_head =
        (fun _ ~witness:(expect, _) ~update ->
          M.cas cell ~expect ~update);
      head_space = (fun () -> M.space ());
    }

  let tagged_head ~capacity ~modulus init =
    let bound =
      match modulus with
      | Some m ->
          Some
            (Bounded.pair
               (Bounded.int_range ~lo:(-1) ~hi:(capacity - 1))
               (Bounded.int_mod m))
      | None -> None
    in
    let cell = M.make_cas ?bound ~name:"head" ~show:show_pair (init, 0) in
    let bump tag =
      match modulus with Some m -> (tag + 1) mod m | None -> tag + 1
    in
    {
      read_head =
        (fun _ ->
          let i, tag = M.cas_read cell in
          (i, (i, tag)));
      cas_head =
        (fun _ ~witness:(i, tag) ~update ->
          M.cas cell ~expect:(i, tag) ~update:(update, bump tag));
      head_space = (fun () -> M.space ());
    }

  let llsc_head ~capacity ~n builder init =
    let value_bound = Bounded.int_range ~lo:(-1) ~hi:(capacity - 1) in
    let inst =
      Instances.llsc_with_mem ~value_bound ~init builder
        (module M : Mem_intf.S) ~n
    in
    {
      read_head = (fun pid -> (inst.Instances.ll pid, (0, 0)));
      cas_head =
        (fun pid ~witness:_ ~update -> inst.Instances.sc pid update);
      head_space = inst.Instances.llsc_space;
    }

  let create ~protection ~capacity ~n ~initial =
    if List.length initial > capacity then
      invalid_arg "Treiber_stack.create: initial list exceeds capacity";
    let k = List.length initial in
    let value_bound = Bounded.int_range ~lo:(-1) ~hi:4095 in
    let next_bound = Bounded.int_range ~lo:(-1) ~hi:(capacity - 1) in
    let values =
      Array.init capacity (fun i ->
          let v = match List.nth_opt initial i with Some v -> v | None -> -1 in
          M.make_register ~bound:value_bound
            ~name:(Printf.sprintf "val[%d]" i)
            ~show:string_of_int v)
    in
    let nexts =
      Array.init capacity (fun i ->
          let nxt = if i < k - 1 then i + 1 else -1 in
          M.make_register ~bound:next_bound
            ~name:(Printf.sprintf "nxt[%d]" i)
            ~show:string_of_int nxt)
    in
    let free = Queue.create () in
    for i = k to capacity - 1 do
      Queue.add i free
    done;
    let init_head = if k = 0 then -1 else 0 in
    let head =
      match protection with
      | Naive | Hazard -> naive_head ~capacity init_head
      | Tagged m -> tagged_head ~capacity ~modulus:(Some m) init_head
      | Tagged_unbounded -> tagged_head ~capacity ~modulus:None init_head
      | Llsc builder -> llsc_head ~capacity ~n builder init_head
    in
    let hazard =
      match protection with
      | Hazard ->
          Some
            {
              announce =
                Array.init n (fun q ->
                    M.make_register ~bound:next_bound
                      ~name:(Printf.sprintf "H[%d]" q)
                      ~show:string_of_int (-1));
              retired = Queue.create ();
            }
      | Naive | Tagged _ | Tagged_unbounded | Llsc _ -> None
    in
    { head; values; nexts; free; hazard }

  (* Allocation: prefer known-safe nodes; otherwise scan the hazard
     announcements (n shared reads — the price of the technique) and move
     every unannounced retired node back to the safe pool. *)
  let alloc t =
    match Queue.take_opt t.free with
    | Some i -> Some i
    | None -> (
        match t.hazard with
        | None -> None
        | Some hz ->
            let announced =
              Array.to_list (Array.map M.read hz.announce)
            in
            for _ = 1 to Queue.length hz.retired do
              let i = Queue.pop hz.retired in
              if List.mem i announced then Queue.add i hz.retired
              else Queue.add i t.free
            done;
            Queue.take_opt t.free)

  let retire t ~pid i =
    match t.hazard with
    | None -> Queue.add i t.free
    | Some hz ->
        M.write hz.announce.(pid) (-1);
        Queue.add i hz.retired

  (* Hazard-protected pop: announce the observed head, re-validate it, and
     only then read through it.  The allocator never re-issues an announced
     node, so a successful CAS cannot be an ABA even without tags. *)
  let pop_hazard t ~pid hz =
    let rec attempt () =
      let h, _ = t.head.read_head pid in
      if h = -1 then None
      else begin
        M.write hz.announce.(pid) h;
        let h', w' = t.head.read_head pid in
        if h' <> h then attempt ()
        else begin
          let nxt = M.read t.nexts.(h) in
          if t.head.cas_head pid ~witness:w' ~update:nxt then begin
            let v = M.read t.values.(h) in
            retire t ~pid h;
            Some v
          end
          else attempt ()
        end
      end
    in
    attempt ()

  let push t ~pid v =
    match alloc t with
    | None -> false
    | Some i ->
        M.write t.values.(i) v;
        let rec attempt () =
          let h, w = t.head.read_head pid in
          M.write t.nexts.(i) h;
          if t.head.cas_head pid ~witness:w ~update:i then true else attempt ()
        in
        attempt ()

  let pop t ~pid =
    match t.hazard with
    | Some hz -> pop_hazard t ~pid hz
    | None ->
        let rec attempt () =
          let h, w = t.head.read_head pid in
          if h = -1 then None
          else begin
            let nxt = M.read t.nexts.(h) in
            if t.head.cas_head pid ~witness:w ~update:nxt then begin
              let v = M.read t.values.(h) in
              Queue.add h t.free;
              Some v
            end
            else attempt ()
          end
        in
        attempt ()

  let space t = t.head.head_space ()
end
