lib/apps/treiber_stack.ml: Aba_core Aba_primitives Array Bounded Instances List Mem_intf Pid Printf Queue
