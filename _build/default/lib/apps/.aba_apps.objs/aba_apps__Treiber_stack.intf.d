lib/apps/treiber_stack.mli: Aba_core Aba_primitives Mem_intf Pid
