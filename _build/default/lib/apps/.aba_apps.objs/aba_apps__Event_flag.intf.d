lib/apps/event_flag.mli: Aba_core Aba_primitives Mem_intf Pid
