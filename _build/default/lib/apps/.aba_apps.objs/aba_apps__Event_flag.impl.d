lib/apps/event_flag.ml: Aba_core Aba_primitives Array Bounded Instances Mem_intf
