lib/apps/ms_queue.ml: Aba_primitives Array Bounded List Mem_intf Printf Queue
