lib/apps/ms_queue.mli: Aba_primitives Mem_intf Pid
