open Aba_primitives
open Aba_core

type flavour = Plain | Detecting of Instances.aba_builder

module Make (M : Mem_intf.S) = struct
  type impl =
    | I_plain of { cell : int M.register; last : int array }
    | I_detecting of Instances.aba

  type t = impl

  let create ~flavour ~n =
    match flavour with
    | Plain ->
        I_plain
          {
            cell =
              M.make_register
                ~bound:(Bounded.int_range ~lo:0 ~hi:1)
                ~name:"flag" ~show:string_of_int 0;
            last = Array.make n 0;
          }
    | Detecting builder ->
        I_detecting
          (Instances.aba_with_mem
             ~value_bound:(Bounded.int_range ~lo:(-1) ~hi:1)
             builder
             (module M : Mem_intf.S)
             ~n)

  let write t ~pid v =
    match t with
    | I_plain { cell; _ } -> M.write cell v
    | I_detecting inst -> inst.Instances.dwrite pid v

  let signal t ~pid = write t ~pid 1
  let reset t ~pid = write t ~pid 0

  let poll t ~pid =
    match t with
    | I_plain { cell; last } ->
        let v = M.read cell in
        let changed = v <> last.(pid) in
        last.(pid) <- v;
        changed
    | I_detecting inst ->
        let _, flag = inst.Instances.dread pid in
        flag

  let space _ = M.space ()
end
