(** Index-based Michael–Scott queue with node reuse ([24] in the paper).

    The classic lock-free FIFO queue with a dummy node.  As with the
    Treiber stack, nodes are recycled through a free list, so the [CAS]es
    on [head], [tail] and the [next] pointers are all exposed to ABA when
    indices repeat.  Michael and Scott's original algorithm pairs every
    pointer with a modification counter — the "tagging" technique whose
    bounded variant the paper's introduction critiques; both the bounded
    and unbounded forms are provided, along with the unprotected one.

    The LL/SC methodology (Figure 3) is demonstrated on the Treiber stack;
    it applies to the queue pointwise in the same way. *)

open Aba_primitives

type protection =
  | Naive
  | Tagged of int  (** tag modulo the given bound on every pointer *)
  | Tagged_unbounded

module Make (M : Mem_intf.S) : sig
  type t

  val create : protection:protection -> capacity:int -> initial:int list -> t
  (** [capacity] counts payload nodes; the dummy node is extra.  [initial]
      is enqueued left-to-right at creation time. *)

  val enqueue : t -> pid:Pid.t -> int -> bool
  (** [false] if the pool is exhausted. *)

  val dequeue : t -> pid:Pid.t -> int option

  val space : t -> (string * string) list
end
