(** Simulator instance of {!Aba_primitives.Mem_intf.S}.

    [make sim] builds a memory instance whose objects are cells of [sim] and
    whose operations suspend the calling process at the corresponding
    {!Step.t}.  Algorithms instantiated with this memory can therefore be
    driven step-by-step under arbitrary (including adversarial) schedules.

    The [pid] arguments of [ll]/[sc]/[vl] are ignored by this instance: the
    scheduler knows which process executes each step and uses that identity,
    so a method call cannot impersonate another process. *)

val make : Sim.t -> (module Aba_primitives.Mem_intf.S)
