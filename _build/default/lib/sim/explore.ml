open Aba_primitives

type ('op, 'res) instance = { driver : ('op, 'res) Driver.t }

type ('op, 'res) outcome =
  | Ok of int
  | Violation of Pid.t list * ('op, 'res) Event.history
  | Budget_exhausted of int

exception Stop of int
exception Found of Pid.t list

(* One action of process [p]: lazily invoke its next scripted operation if
   it is idle, then execute one shared-memory step (unless the invocation
   completed with zero steps). *)
let act driver remaining p =
  if Driver.pending driver p then Driver.step driver p
  else
    match remaining.(p) with
    | [] -> invalid_arg "Explore.act: process has no work"
    | op :: rest ->
        remaining.(p) <- rest;
        Driver.invoke driver p op;
        if Driver.pending driver p then Driver.step driver p

let replay make scripts rev_path =
  let ({ driver } : _ instance) = make () in
  let remaining = Array.copy scripts in
  List.iter (act driver remaining) (List.rev rev_path);
  (driver, remaining)

let exhaustive ~make ~scripts ~check ?(max_schedules = 2_000_000)
    ?(max_depth = 10_000) () =
  let n = Array.length scripts in
  let leaves = ref 0 in
  let rec dfs rev_path depth =
    (* A branch exceeding [max_depth] actions indicates a livelocked
       implementation (e.g. a retry loop that can never succeed): better a
       loud failure than a silent hang. *)
    if depth > max_depth then
      failwith "Explore.exhaustive: branch exceeded max_depth";
    let driver, remaining = replay make scripts rev_path in
    let enabled =
      List.filter
        (fun p -> Driver.pending driver p || remaining.(p) <> [])
        (Pid.all ~n)
    in
    match enabled with
    | [] ->
        incr leaves;
        if not (check (Driver.history driver)) then
          raise (Found (List.rev rev_path));
        if !leaves >= max_schedules then raise (Stop !leaves)
    | _ -> List.iter (fun p -> dfs (p :: rev_path) (depth + 1)) enabled
  in
  match dfs [] 0 with
  | () -> Ok !leaves
  | exception Stop k -> Budget_exhausted k
  | exception Found path ->
      let driver, remaining = replay make scripts (List.rev path) in
      ignore remaining;
      Violation (path, Driver.history driver)

let count_schedules ~n_actions =
  (* Multinomial coefficient; saturates at max_int on overflow. *)
  let total = Array.fold_left ( + ) 0 n_actions in
  let result = ref 1 in
  let remaining = ref total in
  Array.iter
    (fun k ->
      (* multiply by C(remaining, k) *)
      for i = 1 to k do
        let c = (!result * (!remaining - k + i)) / i in
        result := if c < !result then max_int else c
      done;
      remaining := !remaining - k)
    n_actions;
  !result
