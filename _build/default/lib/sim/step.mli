(** Shared-memory steps.

    A step is one atomic operation on one base object — the unit of
    scheduling in the paper's model.  A suspended process is {e poised} at
    exactly one step; the lower-bound adversaries inspect poised steps to
    decide covering sets ([WCov], [CCov]) and block-writes. *)

open Aba_primitives

type t =
  | Read of Cell.t
  | Write of Cell.t * Univ.t
  | Cas of Cell.t * Univ.t * Univ.t  (** expected, update *)
  | Ll of Cell.t
  | Sc of Cell.t * Univ.t
  | Vl of Cell.t

type outcome = Value of Univ.t | Bool of bool | Unit

val cell : t -> Cell.t
(** The base object the step operates on. *)

val is_write : t -> bool
(** True for [Write] steps — membership in [WCov] (Section 2.2). *)

val is_cas : t -> bool
(** True for [Cas] steps — membership in [CCov] (Section 2.2). *)

val would_succeed : t -> bool
(** For a [Cas] step, whether it would succeed if executed in the current
    configuration; [Write] steps always "succeed"; other steps are not
    conditional and return [false].  Used to build [P]-successful schedules
    (Lemma 2/3). *)

val execute : pid:Pid.t -> t -> outcome
(** Atomically apply the step to its cell.  Raises [Invalid_argument] if the
    step is ill-kinded for the cell (e.g. [Write] on a non-writable CAS
    object) or the written value is outside the cell's domain. *)

val describe : t -> string
(** Stable rendering (used in signatures and traces), e.g.
    ["write X := (1,p0,3)"]. *)
