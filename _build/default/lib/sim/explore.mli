(** Bounded exhaustive schedule exploration (stateless model checking).

    Because the algorithms are deterministic and the simulator replayable, a
    schedule prefix — a sequence of process IDs — determines a configuration
    exactly.  [exhaustive] therefore enumerates {e all} schedules of a fixed
    workload by depth-first search, rebuilding the configuration of each
    node by replaying its prefix against a fresh instance.

    An action of process [p] means: if [p] is idle, lazily invoke its next
    scripted operation and run to its first shared-memory step; then execute
    one step.  Operations that take zero shared-memory steps complete within
    the action.  Histories are built with invoke-at-first-step and
    respond-at-last-step, the tightest sound real-time order, so a workload
    that passes [check] on every leaf is correct under {e every} schedule of
    that workload (at this size).

    This realizes, in the small, the quantification over all schedules used
    throughout Section 2. *)

open Aba_primitives

type ('op, 'res) instance = {
  driver : ('op, 'res) Driver.t;
}

type ('op, 'res) outcome =
  | Ok of int  (** number of complete schedules explored *)
  | Violation of Pid.t list * ('op, 'res) Event.history
      (** offending schedule and its history *)
  | Budget_exhausted of int  (** schedules explored before giving up *)

val exhaustive :
  make:(unit -> ('op, 'res) instance) ->
  scripts:'op list array ->
  check:(('op, 'res) Event.history -> bool) ->
  ?max_schedules:int ->
  ?max_depth:int ->
  unit ->
  ('op, 'res) outcome
(** [exhaustive ~make ~scripts ~check ()] replays every interleaving of the
    scripted operations.  [make] must build a fresh, deterministic instance
    (same initial configuration every time).  [check] is applied to the
    complete history at every leaf; the first failing leaf aborts the search
    with its schedule.  [max_schedules] (default [2_000_000]) bounds the
    number of leaves visited; a branch longer than [max_depth] (default
    [10_000]) actions raises [Failure] — it indicates a livelocked
    implementation. *)

val count_schedules : n_actions:int array -> int
(** Number of interleavings of the given per-process action counts
    (multinomial coefficient) — useful to size workloads before exploring. *)
