(** History-recording driver.

    A driver connects an implementation under test to the simulator: it
    invokes operations on processes, steps them, and records the resulting
    invocation/response history in the format consumed by the
    linearizability checker.

    Responses are recorded immediately after an operation's final step and
    invocations when [invoke] is called, so drivers that invoke lazily (as
    {!Explore} does) produce the tightest sound real-time order. *)

open Aba_primitives

type ('op, 'res) t

val create :
  sim:Sim.t -> apply:(Pid.t -> 'op -> unit -> 'res) -> ('op, 'res) t
(** [apply p op] is the thunk that executes [op] as process [p] against the
    implementation under test. *)

val sim : ('op, 'res) t -> Sim.t

val invoke : ('op, 'res) t -> Pid.t -> 'op -> unit
(** Begin [op] on idle process [p], recording the invocation event.  If the
    operation completes without any shared-memory step its response is
    recorded immediately.  Raises [Invalid_argument] if [p] has a pending
    operation. *)

val step : ('op, 'res) t -> Pid.t -> unit
(** One shared-memory step of [p]'s pending operation; records the response
    event if this step completed the operation. *)

val finish : ('op, 'res) t -> Pid.t -> unit
(** Step [p] until its pending operation (if any) completes. *)

val pending : ('op, 'res) t -> Pid.t -> bool

val last_result : ('op, 'res) t -> Pid.t -> 'res option
(** Result of [p]'s most recently completed operation. *)

val last_steps : ('op, 'res) t -> Pid.t -> int
(** Shared-memory step count of [p]'s most recently completed operation —
    the measured step complexity. *)

val max_op_steps : ('op, 'res) t -> int
(** Largest step count over all completed operations so far (worst-case
    step complexity observed). *)

val history : ('op, 'res) t -> ('op, 'res) Event.history

(** {1 Randomized runs} *)

val run_random :
  ('op, 'res) t ->
  scripts:'op list array ->
  seed:int ->
  ?max_actions:int ->
  unit ->
  unit
(** Run every operation of [scripts] (array indexed by pid) to completion
    under a uniformly random schedule drawn from [seed].  Invocations are
    lazy: an idle process's next operation is invoked only when the random
    schedule picks that process. *)
