lib/sim/sim.ml: Aba_primitives Array Buffer Cell Effect Fun List Pid Printf Step
