lib/sim/sim_mem.ml: Aba_primitives Bounded Cell List Mem_intf Printf Sim Step Univ
