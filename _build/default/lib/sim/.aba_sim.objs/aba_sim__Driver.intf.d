lib/sim/driver.mli: Aba_primitives Event Pid Sim
