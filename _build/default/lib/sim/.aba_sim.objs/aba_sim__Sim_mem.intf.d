lib/sim/sim_mem.mli: Aba_primitives Sim
