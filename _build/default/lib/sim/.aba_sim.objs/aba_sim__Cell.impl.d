lib/sim/cell.ml: Aba_primitives Hashtbl Pid Univ
