lib/sim/step.ml: Aba_primitives Cell Hashtbl Printf Univ
