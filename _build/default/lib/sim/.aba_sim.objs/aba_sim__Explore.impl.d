lib/sim/explore.ml: Aba_primitives Array Driver Event List Pid
