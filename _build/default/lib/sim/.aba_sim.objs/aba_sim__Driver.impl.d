lib/sim/driver.ml: Aba_primitives Array Event List Option Pid Printf Random Sim
