lib/sim/explore.mli: Aba_primitives Driver Event Pid
