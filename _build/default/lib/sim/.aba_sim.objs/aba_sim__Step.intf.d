lib/sim/step.mli: Aba_primitives Cell Pid Univ
