lib/sim/sim.mli: Aba_primitives Cell Pid Step Univ
