lib/sim/cell.mli: Aba_primitives Hashtbl Pid Univ
