open Aba_primitives

type ('op, 'res) pending_call = { promise : 'res Sim.promise }

type ('op, 'res) t = {
  sim : Sim.t;
  apply : Pid.t -> 'op -> unit -> 'res;
  pending : ('op, 'res) pending_call option array;
  last_result : 'res option array;
  last_steps : int array;
  mutable max_op_steps : int;
  mutable events_rev : ('op, 'res) Event.t list;
}

let create ~sim ~apply =
  let n = Sim.n sim in
  {
    sim;
    apply;
    pending = Array.make n None;
    last_result = Array.make n None;
    last_steps = Array.make n 0;
    max_op_steps = 0;
    events_rev = [];
  }

let sim d = d.sim

let record d e = d.events_rev <- e :: d.events_rev

let complete d p (c : ('op, 'res) pending_call) =
  match Sim.result c.promise with
  | None -> ()
  | Some r ->
      d.pending.(p) <- None;
      d.last_result.(p) <- Some r;
      let steps = Sim.steps_of c.promise in
      d.last_steps.(p) <- steps;
      if steps > d.max_op_steps then d.max_op_steps <- steps;
      record d (Event.Response (p, r))

let invoke d p op =
  (match d.pending.(p) with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Driver.invoke: process %d has a pending operation" p)
  | None -> ());
  record d (Event.Invoke (p, op));
  let promise = Sim.invoke d.sim p (d.apply p op) in
  let call = { promise } in
  d.pending.(p) <- Some call;
  complete d p call

let step d p =
  match d.pending.(p) with
  | None ->
      invalid_arg
        (Printf.sprintf "Driver.step: process %d has no pending operation" p)
  | Some call ->
      Sim.step d.sim p;
      complete d p call

let finish d p =
  let rec go () =
    match d.pending.(p) with
    | None -> ()
    | Some _ ->
        step d p;
        go ()
  in
  go ()

let pending d p = Option.is_some d.pending.(p)
let last_result d p = d.last_result.(p)
let last_steps d p = d.last_steps.(p)
let max_op_steps d = d.max_op_steps
let history d = List.rev d.events_rev

let run_random d ~scripts ~seed ?(max_actions = 1_000_000) () =
  let n = Sim.n d.sim in
  if Array.length scripts <> n then
    invalid_arg "Driver.run_random: scripts array must have length n";
  let remaining = Array.map (fun l -> ref l) scripts in
  let rng = Random.State.make [| seed |] in
  let has_work p = pending d p || !(remaining.(p)) <> [] in
  let act p =
    if pending d p then step d p
    else
      match !(remaining.(p)) with
      | [] -> assert false
      | op :: rest ->
          remaining.(p) := rest;
          invoke d p op
  in
  let rec go budget =
    let workers = List.filter has_work (Pid.all ~n) in
    match workers with
    | [] -> ()
    | _ ->
        if budget = 0 then
          failwith "Driver.run_random: exceeded action budget"
        else begin
          let k = Random.State.int rng (List.length workers) in
          act (List.nth workers k);
          go (budget - 1)
        end
  in
  go max_actions
