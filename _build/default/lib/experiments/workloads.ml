open Aba_primitives
open Aba_core

let apply_aba (inst : Instances.aba) (p : Pid.t)
    (op : Aba_spec.Aba_register_spec.op) () : Aba_spec.Aba_register_spec.res =
  match op with
  | Aba_spec.Aba_register_spec.DRead ->
      let v, f = inst.Instances.dread p in
      Aba_spec.Aba_register_spec.Read_result (v, f)
  | Aba_spec.Aba_register_spec.DWrite x ->
      inst.Instances.dwrite p x;
      Aba_spec.Aba_register_spec.Write_done

let apply_llsc (inst : Instances.llsc) (p : Pid.t) (op : Aba_spec.Llsc_spec.op)
    () : Aba_spec.Llsc_spec.res =
  match op with
  | Aba_spec.Llsc_spec.Ll -> Aba_spec.Llsc_spec.Ll_result (inst.Instances.ll p)
  | Aba_spec.Llsc_spec.Sc x ->
      Aba_spec.Llsc_spec.Sc_result (inst.Instances.sc p x)
  | Aba_spec.Llsc_spec.Vl -> Aba_spec.Llsc_spec.Vl_result (inst.Instances.vl p)

let aba_driver builder ~n =
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.aba_in_sim builder sim ~n in
  Aba_sim.Driver.create ~sim ~apply:(apply_aba inst)

let llsc_driver builder ~n =
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.llsc_in_sim builder sim ~n in
  Aba_sim.Driver.create ~sim ~apply:(apply_llsc inst)

let aba_explore_instance builder ~n () =
  { Aba_sim.Explore.driver = aba_driver builder ~n }

let llsc_explore_instance builder ~n () =
  { Aba_sim.Explore.driver = llsc_driver builder ~n }

let random_aba_scripts rng ~n ~ops_per_pid =
  Array.init n (fun _ ->
      List.init ops_per_pid (fun _ ->
          if Random.State.bool rng then Aba_spec.Aba_register_spec.DRead
          else Aba_spec.Aba_register_spec.DWrite (Random.State.int rng 4)))

let random_llsc_scripts rng ~n ~ops_per_pid =
  Array.init n (fun _ ->
      List.init ops_per_pid (fun _ ->
          match Random.State.int rng 3 with
          | 0 -> Aba_spec.Llsc_spec.Ll
          | 1 -> Aba_spec.Llsc_spec.Sc (Random.State.int rng 4)
          | _ -> Aba_spec.Llsc_spec.Vl))

let aba_random_history builder ~n ~ops_per_pid ~seed =
  let rng = Random.State.make [| seed |] in
  let driver = aba_driver builder ~n in
  let scripts = random_aba_scripts rng ~n ~ops_per_pid in
  Aba_sim.Driver.run_random driver ~scripts ~seed:(seed * 7919 + 1) ();
  Aba_sim.Driver.history driver

let llsc_random_history builder ~n ~ops_per_pid ~seed =
  let rng = Random.State.make [| seed |] in
  let driver = llsc_driver builder ~n in
  let scripts = random_llsc_scripts rng ~n ~ops_per_pid in
  Aba_sim.Driver.run_random driver ~scripts ~seed:(seed * 7919 + 1) ();
  Aba_sim.Driver.history driver
