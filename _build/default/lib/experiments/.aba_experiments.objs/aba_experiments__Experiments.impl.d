lib/experiments/experiments.ml: Aba_apps Aba_core Aba_lowerbound Aba_primitives Aba_runtime Aba_sim Aba_spec Array Covering Format Instances List Printf Result String Tradeoff Workloads Wraparound
