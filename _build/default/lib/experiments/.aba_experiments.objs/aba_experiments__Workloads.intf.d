lib/experiments/workloads.mli: Aba_core Aba_primitives Aba_sim Aba_spec Event Instances Pid Random
