(** Shared harness: wiring object instances into the simulator driver and
    generating random workloads.  Used by the experiment runners, the
    benchmark executable and the test suites. *)

open Aba_primitives
open Aba_core

val apply_aba :
  Instances.aba ->
  Pid.t ->
  Aba_spec.Aba_register_spec.op ->
  unit ->
  Aba_spec.Aba_register_spec.res

val apply_llsc :
  Instances.llsc ->
  Pid.t ->
  Aba_spec.Llsc_spec.op ->
  unit ->
  Aba_spec.Llsc_spec.res

val aba_driver :
  Instances.aba_builder ->
  n:int ->
  (Aba_spec.Aba_register_spec.op, Aba_spec.Aba_register_spec.res)
  Aba_sim.Driver.t
(** Fresh simulator + instance + driver. *)

val llsc_driver :
  Instances.llsc_builder ->
  n:int ->
  (Aba_spec.Llsc_spec.op, Aba_spec.Llsc_spec.res) Aba_sim.Driver.t

val aba_explore_instance :
  Instances.aba_builder ->
  n:int ->
  unit ->
  (Aba_spec.Aba_register_spec.op, Aba_spec.Aba_register_spec.res)
  Aba_sim.Explore.instance

val llsc_explore_instance :
  Instances.llsc_builder ->
  n:int ->
  unit ->
  (Aba_spec.Llsc_spec.op, Aba_spec.Llsc_spec.res) Aba_sim.Explore.instance

val random_aba_scripts :
  Random.State.t -> n:int -> ops_per_pid:int ->
  Aba_spec.Aba_register_spec.op list array

val random_llsc_scripts :
  Random.State.t -> n:int -> ops_per_pid:int ->
  Aba_spec.Llsc_spec.op list array

val aba_random_history :
  Instances.aba_builder ->
  n:int ->
  ops_per_pid:int ->
  seed:int ->
  (Aba_spec.Aba_register_spec.op, Aba_spec.Aba_register_spec.res)
  Event.history
(** One random schedule over a fresh instance. *)

val llsc_random_history :
  Instances.llsc_builder ->
  n:int ->
  ops_per_pid:int ->
  seed:int ->
  (Aba_spec.Llsc_spec.op, Aba_spec.Llsc_spec.res) Event.history
