(** Multicore test/benchmark harness: spawn one domain per simulated
    process, synchronize their start so contention actually overlaps, and
    join their results. *)

val run_domains : n:int -> (int -> 'a) -> 'a array
(** [run_domains ~n body] spawns [n] domains; domain [i] runs [body i]
    after all domains have reached a common start barrier.  Returns their
    results indexed by domain. *)

val available_parallelism : unit -> int
