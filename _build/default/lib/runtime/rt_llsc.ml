module Boxed = struct
  (* Each successful SC installs a freshly allocated record; LL remembers
     the record itself.  compare_and_set's physical equality then means
     "no successful SC since my LL" — the held pointer keeps the record
     alive, so the GC cannot make two distinct generations physically
     equal. *)
  type cell = { value : int }

  type t = {
    x : cell Atomic.t;
    invalid : cell;  (** sentinel never stored in [x] *)
    link : cell array;
  }

  let create ~n ~init =
    let first = { value = init } in
    (* Every process starts linked to the first cell, which realizes the
       Appendix A convention: SC/VL by a process that never performed LL
       behave as if it had linked at the initial state. *)
    { x = Atomic.make first; invalid = { value = min_int }; link = Array.make n first }

  let ll t ~pid =
    let c = Atomic.get t.x in
    t.link.(pid) <- c;
    c.value

  let sc t ~pid v =
    let c = t.link.(pid) in
    (* Consume the link: a process's own successful SC must invalidate it,
       and [invalid] is never in [x], so a repeated SC fails. *)
    t.link.(pid) <- t.invalid;
    c != t.invalid && Atomic.compare_and_set t.x c { value = v }

  let vl t ~pid = Atomic.get t.x == t.link.(pid)
end

module Packed_fig3 = struct
  (* X packs (value, mask): bits [0, n) are the mask, bits [n, 62) the
     value.  CAS on an immediate int is exact value comparison — precisely
     a bounded hardware CAS word, ABAs included. *)
  type t = { n : int; x : int Atomic.t; b : bool array }

  let create ~n ~init =
    if n < 1 || n > 40 then invalid_arg "Packed_fig3.create: n must be 1..40";
    if init < 0 || init >= 1 lsl (62 - n) then
      invalid_arg "Packed_fig3.create: init out of range";
    { n; x = Atomic.make (init lsl n); b = Array.make n false }

  let mask_of t packed = packed land ((1 lsl t.n) - 1)
  let value_of t packed = packed lsr t.n
  let bit_set t packed p = (mask_of t packed lsr p) land 1 = 1
  let all_set t = (1 lsl t.n) - 1

  let ll t ~pid:p =
    let packed = Atomic.get t.x in
    if not (bit_set t packed p) then begin
      t.b.(p) <- false;
      value_of t packed
    end
    else begin
      let rec attempt i =
        if i > t.n then begin
          t.b.(p) <- true;
          value_of t packed
        end
        else begin
          let seen = Atomic.get t.x in
          if Atomic.compare_and_set t.x seen (seen - (1 lsl p)) then begin
            t.b.(p) <- false;
            value_of t seen
          end
          else attempt (i + 1)
        end
      in
      attempt 1
    end

  let sc t ~pid:p y =
    if t.b.(p) then false
    else begin
      let rec attempt i =
        if i > t.n then false
        else begin
          let seen = Atomic.get t.x in
          if bit_set t seen p then false
          else if Atomic.compare_and_set t.x seen ((y lsl t.n) lor all_set t)
          then true
          else attempt (i + 1)
        end
      in
      attempt 1
    end

  let vl t ~pid:p =
    let packed = Atomic.get t.x in
    (not (bit_set t packed p)) && not t.b.(p)
end
