type t = {
  tag_bits : int;
  head : int Atomic.t;
  tail : int Atomic.t;
  nexts : int Atomic.t array;
  values : int array;
  free : Rt_free_list.t;
}

(* Pointer layout: index + 1 (so null = -1 maps to 0) shifted past the
   tag bits; the tag wraps at [2^tag_bits]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

let create ~tag_bits ~capacity =
  if tag_bits < 0 || tag_bits > 40 then
    invalid_arg "Rt_ms_queue.create: bad tag_bits";
  let slots = capacity + 1 in
  let free = Rt_free_list.create () in
  for i = capacity downto 1 do
    Rt_free_list.put free i
  done;
  {
    tag_bits;
    (* Node 0 is the initial dummy. *)
    head = Atomic.make (pack ~tag_bits 0 0);
    tail = Atomic.make (pack ~tag_bits 0 0);
    nexts = Array.init slots (fun _ -> Atomic.make (pack ~tag_bits (-1) 0));
    values = Array.make slots 0;
    free;
  }

let enqueue t v =
  let tag_bits = t.tag_bits in
  match Rt_free_list.take t.free with
  | None -> false
  | Some i ->
      t.values.(i) <- v;
      (* Reset the link, bumping its counter so CASes armed against the
         node's previous life fail. *)
      let _, old_tag = unpack ~tag_bits (Atomic.get t.nexts.(i)) in
      Atomic.set t.nexts.(i) (pack ~tag_bits (-1) (old_tag + 1));
      let rec attempt () =
        let tail_seen = Atomic.get t.tail in
        let t_idx, t_tag = unpack ~tag_bits tail_seen in
        let next_seen = Atomic.get t.nexts.(t_idx) in
        let n_idx, n_tag = unpack ~tag_bits next_seen in
        if n_idx = -1 then
          if
            Atomic.compare_and_set t.nexts.(t_idx) next_seen
              (pack ~tag_bits i (n_tag + 1))
          then begin
            ignore
              (Atomic.compare_and_set t.tail tail_seen
                 (pack ~tag_bits i (t_tag + 1)));
            true
          end
          else attempt ()
        else begin
          (* Help the lagging tail forward. *)
          ignore
            (Atomic.compare_and_set t.tail tail_seen
               (pack ~tag_bits n_idx (t_tag + 1)));
          attempt ()
        end
      in
      attempt ()

let dequeue t =
  let tag_bits = t.tag_bits in
  let rec attempt () =
    let head_seen = Atomic.get t.head in
    let h_idx, h_tag = unpack ~tag_bits head_seen in
    let tail_seen = Atomic.get t.tail in
    let t_idx, t_tag = unpack ~tag_bits tail_seen in
    let n_idx, _ = unpack ~tag_bits (Atomic.get t.nexts.(h_idx)) in
    if h_idx = t_idx then
      if n_idx = -1 then None
      else begin
        ignore
          (Atomic.compare_and_set t.tail tail_seen
             (pack ~tag_bits n_idx (t_tag + 1)));
        attempt ()
      end
    else if n_idx = -1 then
      (* Stale snapshot: the observed dummy was recycled (its link reset)
         between our reads.  Retry with a fresh head. *)
      attempt ()
    else begin
      (* Read the value before the CAS: afterwards the new dummy may be
         dequeued and recycled by others. *)
      let v = t.values.(n_idx) in
      if
        Atomic.compare_and_set t.head head_seen
          (pack ~tag_bits n_idx (h_tag + 1))
      then begin
        Rt_free_list.put t.free h_idx;
        Some v
      end
      else attempt ()
    end
  in
  attempt ()
