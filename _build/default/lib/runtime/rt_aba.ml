module Stamped = struct
  (* The stamp record is freshly allocated on every write; holding the
     previously seen stamp pins it, so physical inequality is exactly
     "somebody wrote since then". *)
  type 'a stamp = { value : 'a }

  type 'a t = { x : 'a stamp Atomic.t; last : 'a stamp array }

  let create ~n init =
    let first = { value = init } in
    { x = Atomic.make first; last = Array.make n first }

  let dwrite t ~pid:_ v = Atomic.set t.x { value = v }

  let dread t ~pid =
    let s = Atomic.get t.x in
    let changed = s != t.last.(pid) in
    t.last.(pid) <- s;
    (s.value, changed)
end

module Fig4 = struct
  type 'a xval = { value : 'a; writer : int; seq : int }

  type 'a local = { mutable b : bool; pool : Aba_core.Seq_pool.t }

  type 'a t = {
    x : 'a xval option Atomic.t;
    announce : (int * int) option Atomic.t array;
    locals : 'a local array;
    initial : 'a;
  }

  let create ~n init =
    {
      x = Atomic.make None;
      announce = Array.init n (fun _ -> Atomic.make None);
      locals =
        Array.init n (fun _ ->
            { b = false; pool = Aba_core.Seq_pool.create ~n () });
      initial = init;
    }

  let dwrite t ~pid v =
    let l = t.locals.(pid) in
    let s =
      Aba_core.Seq_pool.next l.pool ~me:pid ~read_announce:(fun c ->
          Atomic.get t.announce.(c))
    in
    Atomic.set t.x (Some { value = v; writer = pid; seq = s })

  let key = function
    | None -> None
    | Some { writer; seq; _ } -> Some (writer, seq)

  let dread t ~pid:q =
    let l = t.locals.(q) in
    let xv = Atomic.get t.x in
    let old_announcement = Atomic.get t.announce.(q) in
    Atomic.set t.announce.(q) (key xv);
    let xv' = Atomic.get t.x in
    let flag = if key xv = old_announcement then l.b else true in
    l.b <- xv <> xv';
    let value = match xv with None -> t.initial | Some { value; _ } -> value in
    (value, flag)
end

module From_llsc = struct
  (* Figure 5 over the Figure 3 port: Theorem 2's register from a single
     bounded CAS word. *)
  type t = { obj : Rt_llsc.Packed_fig3.t; old : int array }

  let create ~n ~init =
    { obj = Rt_llsc.Packed_fig3.create ~n ~init; old = Array.make n init }

  let dwrite t ~pid v =
    ignore (Rt_llsc.Packed_fig3.ll t.obj ~pid);
    ignore (Rt_llsc.Packed_fig3.sc t.obj ~pid v)

  let dread t ~pid =
    if Rt_llsc.Packed_fig3.vl t.obj ~pid then (t.old.(pid), false)
    else begin
      t.old.(pid) <- Rt_llsc.Packed_fig3.ll t.obj ~pid;
      (t.old.(pid), true)
    end
end
