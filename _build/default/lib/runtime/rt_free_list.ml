type cell = Nil | Cons of { index : int; rest : cell }

type t = cell Atomic.t

let create () = Atomic.make Nil

let rec put t index =
  let old = Atomic.get t in
  if not (Atomic.compare_and_set t old (Cons { index; rest = old })) then
    put t index

let rec take t =
  match Atomic.get t with
  | Nil -> None
  | Cons { index; rest } as old ->
      if Atomic.compare_and_set t old rest then Some index else take t
