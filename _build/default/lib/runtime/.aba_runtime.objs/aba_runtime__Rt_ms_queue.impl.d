lib/runtime/rt_ms_queue.ml: Array Atomic Rt_free_list
