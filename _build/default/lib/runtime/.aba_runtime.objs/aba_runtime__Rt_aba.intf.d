lib/runtime/rt_aba.mli:
