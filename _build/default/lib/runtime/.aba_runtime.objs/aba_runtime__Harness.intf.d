lib/runtime/harness.mli:
