lib/runtime/rt_free_list.mli:
