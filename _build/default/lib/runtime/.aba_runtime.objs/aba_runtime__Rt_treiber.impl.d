lib/runtime/rt_treiber.ml: Array Atomic Int List Map Option Printf Result Rt_free_list Rt_llsc String
