lib/runtime/rt_aba.ml: Aba_core Array Atomic Rt_llsc
