lib/runtime/rt_free_list.ml: Atomic
