lib/runtime/harness.ml: Array Atomic Domain List
