lib/runtime/rt_llsc.mli:
