lib/runtime/rt_ms_queue.mli:
