lib/runtime/rt_llsc.ml: Array Atomic
