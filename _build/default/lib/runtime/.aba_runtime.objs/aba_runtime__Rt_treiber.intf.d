lib/runtime/rt_treiber.mli:
