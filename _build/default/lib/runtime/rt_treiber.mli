(** Runtime (multicore) index-based Treiber stack with node recycling.

    Same hazard as {!Aba_apps.Treiber_stack}, on real hardware words: the
    head is a single [int Atomic.t] packing (node index, k-bit tag); the
    nodes live in flat arrays and recycle through a lock-free free list.

    - [tag_bits = 0] — the unprotected stack: pure index CAS, ABA-prone;
    - [tag_bits = k] — folklore tagging: safe until [2^k] operations race
      past a stalled pop;
    - {!Llsc} — head driven through {!Rt_llsc.Packed_fig3}: the paper's
      LL/SC methodology, bounded and ABA-immune.

    The free list is a GC-safe boxed Treiber stack (physical CAS on live
    cons cells cannot ABA), so observed corruption is attributable to the
    main stack's head word alone.

    Use [check_multiset] to audit an execution: with unique pushed values,
    any duplicate pop or pop of a never-pushed value is an ABA corruption. *)

type t

type protection = Tag_bits of int | Llsc

val create : protection:protection -> capacity:int -> n:int -> t

val push : t -> pid:int -> int -> bool
(** [false] when the pool is exhausted. *)

val pop : t -> pid:int -> int option

val check_multiset :
  pushed:int list -> popped:int list -> remaining:int list ->
  (unit, string) result
(** Verifies that [popped @ remaining] is a sub-multiset-equal partition of
    [pushed] with no duplicates created. *)
