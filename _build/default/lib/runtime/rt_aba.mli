(** Runtime (multicore) ABA-detecting registers over OCaml 5 [Atomic].

    - {!Stamped} — the trivial construction from one "unbounded" register:
      each write installs a fresh stamp record and readers compare stamps
      physically (allocation is the unbounded tag; the GC keeps held stamps
      unique).  One atomic operation per call.
    - {!Fig4} — Figure 4 ported directly: [n + 1] atomic registers holding
      immutable triples, plain loads and stores only (no CAS anywhere),
      four loads/stores per [DRead], two per [DWrite].
    - {!From_llsc} — Figure 5 over {!Rt_llsc.Packed_fig3}: the Theorem 2
      register from a single (63-bit-bounded) CAS word. *)

module Stamped : sig
  type 'a t

  val create : n:int -> 'a -> 'a t
  val dwrite : 'a t -> pid:int -> 'a -> unit
  val dread : 'a t -> pid:int -> 'a * bool
end

module Fig4 : sig
  type 'a t

  val create : n:int -> 'a -> 'a t
  val dwrite : 'a t -> pid:int -> 'a -> unit
  val dread : 'a t -> pid:int -> 'a * bool
end

module From_llsc : sig
  type t

  val create : n:int -> init:int -> t
  (** Values are integers in [0 .. 2^(62-n))]. *)

  val dwrite : t -> pid:int -> int -> unit
  val dread : t -> pid:int -> int * bool
end
