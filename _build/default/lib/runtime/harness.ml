let run_domains ~n body =
  let ready = Atomic.make 0 in
  let spawn i =
    Domain.spawn (fun () ->
        Atomic.incr ready;
        (* Start barrier: spin until everyone is up, so the workload
           actually overlaps even on few cores. *)
        while Atomic.get ready < n do
          Domain.cpu_relax ()
        done;
        body i)
  in
  let domains = List.init n spawn in
  Array.of_list (List.map Domain.join domains)

let available_parallelism () = Domain.recommended_domain_count ()
