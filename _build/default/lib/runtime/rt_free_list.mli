(** GC-safe lock-free free list of node indices.

    A Treiber stack of freshly allocated cons cells, CASed by physical
    equality: the holder of the expected cell keeps it alive, so the GC can
    never re-issue its address — physical CAS on live pointers cannot ABA.
    Used as the allocator substrate of the runtime index-based structures,
    so any corruption observed in them is attributable to their own packed
    words, not to the allocator. *)

type t

val create : unit -> t

val put : t -> int -> unit

val take : t -> int option
