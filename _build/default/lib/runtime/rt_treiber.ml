type protection = Tag_bits of int | Llsc

module Free_list = Rt_free_list

type head_impl =
  | Packed of { cell : int Atomic.t; tag_bits : int }
  | Via_llsc of Rt_llsc.Packed_fig3.t

type t = {
  head : head_impl;
  values : int array;
  nexts : int array;
  free : Free_list.t;
}

(* Packed head layout: low [tag_bits] bits are the tag, the rest the node
   index shifted by one so that index [-1] (empty) maps to [0]. *)
let pack ~tag_bits index tag =
  ((index + 1) lsl tag_bits) lor (tag land ((1 lsl tag_bits) - 1))

let unpack ~tag_bits packed =
  ((packed lsr tag_bits) - 1, packed land ((1 lsl tag_bits) - 1))

let create ~protection ~capacity ~n =
  let head =
    match protection with
    | Tag_bits k ->
        if k < 0 || k > 40 then invalid_arg "Rt_treiber.create: bad tag_bits";
        Packed { cell = Atomic.make (pack ~tag_bits:k (-1) 0); tag_bits = k }
    | Llsc ->
        (* The LL/SC object stores index + 1 so the empty stack is 0. *)
        Via_llsc (Rt_llsc.Packed_fig3.create ~n ~init:0)
  in
  let free = Free_list.create () in
  for i = capacity - 1 downto 0 do
    Free_list.put free i
  done;
  {
    head;
    values = Array.make capacity 0;
    nexts = Array.make capacity (-1);
    free;
  }

let read_head t ~pid =
  match t.head with
  | Packed { cell; tag_bits } ->
      let packed = Atomic.get cell in
      let index, _ = unpack ~tag_bits packed in
      (index, packed)
  | Via_llsc obj -> (Rt_llsc.Packed_fig3.ll obj ~pid - 1, 0)

let cas_head t ~pid ~witness ~update =
  match t.head with
  | Packed { cell; tag_bits } ->
      let _, tag = unpack ~tag_bits witness in
      Atomic.compare_and_set cell witness (pack ~tag_bits update (tag + 1))
  | Via_llsc obj -> Rt_llsc.Packed_fig3.sc obj ~pid (update + 1)

let push t ~pid v =
  match Free_list.take t.free with
  | None -> false
  | Some i ->
      t.values.(i) <- v;
      let rec attempt () =
        let h, witness = read_head t ~pid in
        t.nexts.(i) <- h;
        if cas_head t ~pid ~witness ~update:i then true else attempt ()
      in
      attempt ()

let pop t ~pid =
  let rec attempt () =
    let h, witness = read_head t ~pid in
    if h = -1 then None
    else begin
      let nxt = t.nexts.(h) in
      if cas_head t ~pid ~witness ~update:nxt then begin
        let v = t.values.(h) in
        Free_list.put t.free h;
        Some v
      end
      else attempt ()
    end
  in
  attempt ()

let check_multiset ~pushed ~popped ~remaining =
  let module Counts = Map.Make (Int) in
  let count l =
    List.fold_left
      (fun m v ->
        Counts.update v (fun c -> Some (1 + Option.value ~default:0 c)) m)
      Counts.empty l
  in
  let available = count pushed in
  let consumed = count (popped @ remaining) in
  let bad =
    Counts.fold
      (fun v c acc ->
        let have = Option.value ~default:0 (Counts.find_opt v available) in
        if c > have then
          Printf.sprintf "value %d consumed %d times but pushed %d times" v c
            have
          :: acc
        else acc)
      consumed []
  in
  match bad with
  | [] -> Result.Ok ()
  | msgs -> Result.Error (String.concat "; " msgs)
