(** Runtime (multicore) LL/SC/VL implementations over OCaml 5 [Atomic].

    Two constructions, mirroring the two sides of the paper's boundedness
    divide:

    - {!Boxed} — Moir-style [26]: the CAS object holds a freshly allocated
      (value, generation) record and [compare_and_set] compares physically.
      Because the expected record is held live by the process, the GC cannot
      recycle its address, so physical comparison cannot suffer an ABA: the
      allocator plays the role of the unbounded tag.  One atomic operation
      per LL/SC/VL.
    - {!Packed_fig3} — Figure 3 ported to a single [int Atomic.t]: the low
      [n] bits are the process mask, the remaining bits the value.  This is
      the genuinely {e bounded} construction (a 63-bit word!), with the
      [O(n)] retry loops of Theorem 2.

    Both are linearizable for up to [n] concurrent users with distinct
    process ids. *)

module Boxed : sig
  type t

  val create : n:int -> init:int -> t

  val ll : t -> pid:int -> int
  val sc : t -> pid:int -> int -> bool
  val vl : t -> pid:int -> bool
end

module Packed_fig3 : sig
  type t

  val create : n:int -> init:int -> t
  (** Requires [0 <= n <= 40] and [0 <= init < 2^(62-n)]. *)

  val ll : t -> pid:int -> int
  val sc : t -> pid:int -> int -> bool
  val vl : t -> pid:int -> bool
end
