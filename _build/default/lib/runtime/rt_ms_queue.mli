(** Runtime (multicore) index-based Michael–Scott queue with node reuse.

    The runtime counterpart of {!Aba_apps.Ms_queue}: head, tail and every
    [next] link are single [int Atomic.t] words packing (node index,
    [tag_bits]-bit counter).  [tag_bits = 0] is the unprotected queue;
    Michael and Scott's counted pointers are any positive [tag_bits]
    (their original algorithm; wraps after [2^tag_bits] fast updates race
    past a stalled dequeuer).

    Nodes recycle through the GC-safe {!Rt_free_list}, so observed
    corruption is attributable to the packed words alone.  Audit
    executions with {!Rt_treiber.check_multiset}. *)

type t

val create : tag_bits:int -> capacity:int -> t
(** [capacity] payload nodes plus one internal dummy. *)

val enqueue : t -> int -> bool
(** [false] when the pool is exhausted. *)

val dequeue : t -> int option
