(** Sequential specification of a plain multi-writer read/write register —
    the degenerate object an ABA-detecting register extends; used as a
    sanity baseline for the checker and the simulator. *)

(* record fields use Pid.t via Seq_spec *)

type op = Read | Write of int
type res = Read_result of int | Write_done

include Seq_spec.S with type op := op and type res := res
