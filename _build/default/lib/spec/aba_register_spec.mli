(** Sequential specification of the multi-writer ABA-detecting register
    (Section 1, "Results").

    [DWrite x] stores [x].  [DRead] by process [p] returns the current value
    together with a flag that is [true] iff some [DWrite] occurred since
    [p]'s previous [DRead] — or, for [p]'s first [DRead], since the
    beginning of the execution (the convention realized by the paper's own
    Figure 5 construction). *)

(* record fields use Pid.t via Seq_spec *)

type op = DRead | DWrite of int
type res = Read_result of int * bool | Write_done

include Seq_spec.S with type op := op and type res := res

val initial_value : int
(** The value a [DRead] preceding every [DWrite] observes ([-1], standing in
    for the paper's bottom). *)
