(** Sequential object specifications.

    A specification gives the meaning of an object type as a deterministic
    sequential state machine.  Linearizability (Herlihy & Wing, used as the
    correctness condition for all the paper's algorithms) of a concurrent
    history is then: some total order of its operations, consistent with the
    happens-before order, replays through [apply] producing exactly the
    responses observed.

    [state] must be immutable — the checker explores many interleavings and
    shares states between branches. *)

open Aba_primitives

module type S = sig
  type state
  type op
  type res

  val init : n:int -> state
  (** Initial state for a system of [n] processes. *)

  val apply : state -> Pid.t -> op -> state * res
  (** Sequential semantics of one operation by one process. *)

  val equal_res : res -> res -> bool

  val pp_op : Format.formatter -> op -> unit
  val pp_res : Format.formatter -> res -> unit
end
