(** Sequential specification of a stack — used when checking the lock-free
    Treiber stack application of the introduction's motivation. *)

(* record fields use Pid.t via Seq_spec *)

type op = Push of int | Pop
type res = Push_done | Popped of int option

include Seq_spec.S with type op := op and type res := res
