(** Linearizability checker (Wing–Gong style search with memoization).

    Given a concurrent history and a sequential specification, decides
    whether some total order of the operations (a) respects the
    happens-before order of the history, and (b) replays through the
    specification producing exactly the observed responses.

    Pending operations (invocations without responses) are handled per the
    standard definition: each may either be dropped or be linearized with an
    arbitrary response.

    Complexity is exponential in the number of overlapping operations, with
    memoization on (set of linearized operations, specification state).
    Histories of up to a few dozen operations with moderate concurrency
    check in milliseconds; drivers keep workloads within that envelope. *)

open Aba_primitives

module Make (S : Seq_spec.S) : sig
  type verdict =
    | Linearizable
    | Not_linearizable
    | Too_large  (** more than 62 operations — not supported *)

  val check : n:int -> (S.op, S.res) Event.history -> verdict
  (** [check ~n h] decides linearizability of [h] against [S] with initial
      state [S.init ~n].  Raises [Invalid_argument] if [h] is not well
      formed (per-process alternation of invocations and responses). *)

  val check_ok : n:int -> (S.op, S.res) Event.history -> bool
  (** [true] iff [check] returns [Linearizable]. *)

  val witness :
    n:int -> (S.op, S.res) Event.history -> (Pid.t * S.op * S.res) list option
  (** A linearization order, if one exists: the operations in the order in
      which they linearize, with the response each produces.  Pending
      operations that were dropped do not appear. *)

  val pp_history : Format.formatter -> (S.op, S.res) Event.history -> unit
end
