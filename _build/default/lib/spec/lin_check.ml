open Aba_primitives

module Make (S : Seq_spec.S) = struct
  type verdict = Linearizable | Not_linearizable | Too_large

  type op_record = {
    id : int;
    pid : Pid.t;
    op : S.op;
    res : S.res option;  (** [None] for pending operations *)
    inv : int;
    rsp : int;  (** [max_int] for pending operations *)
  }

  let parse h =
    if not (Event.well_formed h) then
      invalid_arg "Lin_check: history is not well formed";
    let pending : (Pid.t, op_record) Hashtbl.t = Hashtbl.create 16 in
    let ops = ref [] in
    let next_id = ref 0 in
    List.iteri
      (fun time e ->
        match e with
        | Event.Invoke (p, op) ->
            let r =
              { id = !next_id; pid = p; op; res = None; inv = time;
                rsp = max_int }
            in
            incr next_id;
            Hashtbl.replace pending p r;
            ops := r :: !ops
        | Event.Response (p, res) ->
            let r = Hashtbl.find pending p in
            Hashtbl.remove pending p;
            ops :=
              { r with res = Some res; rsp = time }
              :: List.filter (fun o -> o.id <> r.id) !ops)
      h;
    List.sort (fun a b -> compare a.id b.id) !ops

  (* [blocked_by.(i)] is the set (bitmask) of operations that must linearize
     before operation [i]: those whose response precedes [i]'s invocation. *)
  let precedence ops =
    let arr = Array.of_list ops in
    let k = Array.length arr in
    let blocked = Array.make k 0 in
    Array.iteri
      (fun i oi ->
        Array.iteri
          (fun j oj -> if j <> i && oj.rsp < oi.inv then
              blocked.(i) <- blocked.(i) lor (1 lsl j))
          arr)
      arr;
    (arr, blocked)

  let search ~n ops =
    let arr, blocked = precedence ops in
    let k = Array.length arr in
    if k > 62 then None
    else begin
      let completed_mask =
        Array.fold_left
          (fun m o -> if o.res = None then m else m lor (1 lsl o.id))
          0 arr
      in
      let memo : (int * S.state, unit) Hashtbl.t = Hashtbl.create 1024 in
      (* Returns the linearization suffix if one exists from (mask, st). *)
      let rec go mask st =
        if mask land completed_mask = completed_mask then Some []
        else if Hashtbl.mem memo (mask, st) then None
        else begin
          let result = ref None in
          let try_op i =
            if !result = None then begin
              let o = arr.(i) in
              let bit = 1 lsl i in
              if mask land bit = 0 && blocked.(i) land lnot mask = 0 then begin
                let st', r' = S.apply st o.pid o.op in
                let ok =
                  match o.res with
                  | Some r -> S.equal_res r r'
                  | None -> true  (* pending: any response is acceptable *)
                in
                if ok then
                  match go (mask lor bit) st' with
                  | Some rest -> result := Some ((o.pid, o.op, r') :: rest)
                  | None -> ()
              end
            end
          in
          for i = 0 to k - 1 do
            try_op i
          done;
          if !result = None then Hashtbl.add memo (mask, st) ();
          !result
        end
      in
      match go 0 (S.init ~n) with
      | Some w -> Some (Some w)
      | None -> Some None
    end

  let witness ~n h =
    match search ~n (parse h) with
    | None -> None
    | Some w -> w

  let check ~n h =
    match search ~n (parse h) with
    | None -> Too_large
    | Some (Some _) -> Linearizable
    | Some None -> Not_linearizable

  let check_ok ~n h = check ~n h = Linearizable

  let pp_history ppf h = Event.pp ~op:S.pp_op ~res:S.pp_res ppf h
end
