(** Sequential specification of the LL/SC/VL object (Section 1).

    [LL] returns the current value and establishes a link for the calling
    process.  [SC x] succeeds — writing [x] — iff no successful [SC]
    occurred since the caller's last [LL]; [VL] reports that same validity
    without changing state.  Following the paper's Appendix A convention, a
    process that never performed [LL] holds a valid link as long as no
    successful [SC] has been executed. *)

(* record fields use Pid.t via Seq_spec *)

type op = Ll | Sc of int | Vl
type res = Ll_result of int | Sc_result of bool | Vl_result of bool

include Seq_spec.S with type op := op and type res := res

val initial_value : int
