lib/spec/lin_check.ml: Aba_primitives Array Event Hashtbl List Pid Seq_spec
