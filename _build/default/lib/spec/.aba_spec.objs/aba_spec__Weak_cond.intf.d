lib/spec/weak_cond.mli: Aba_primitives Event Format Pid
