lib/spec/llsc_spec.mli: Seq_spec
