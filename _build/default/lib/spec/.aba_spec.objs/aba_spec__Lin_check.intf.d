lib/spec/lin_check.mli: Aba_primitives Event Format Pid Seq_spec
