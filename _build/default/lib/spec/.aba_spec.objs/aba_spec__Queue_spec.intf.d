lib/spec/queue_spec.mli: Seq_spec
