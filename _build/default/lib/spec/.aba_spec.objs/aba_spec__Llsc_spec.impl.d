lib/spec/llsc_spec.ml: Aba_primitives Format Int Map Pid
