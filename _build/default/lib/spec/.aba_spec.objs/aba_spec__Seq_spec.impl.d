lib/spec/seq_spec.ml: Aba_primitives Format Pid
