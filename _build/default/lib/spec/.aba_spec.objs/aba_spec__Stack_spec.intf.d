lib/spec/stack_spec.mli: Seq_spec
