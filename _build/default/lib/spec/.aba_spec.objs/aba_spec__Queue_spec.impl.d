lib/spec/queue_spec.ml: Aba_primitives Format List Pid
