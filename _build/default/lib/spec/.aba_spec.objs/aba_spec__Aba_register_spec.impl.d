lib/spec/aba_register_spec.ml: Aba_primitives Format Int Map Option Pid
