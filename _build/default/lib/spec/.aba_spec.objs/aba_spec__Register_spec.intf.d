lib/spec/register_spec.mli: Seq_spec
