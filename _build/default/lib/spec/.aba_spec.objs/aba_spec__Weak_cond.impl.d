lib/spec/weak_cond.ml: Aba_primitives Event Format Hashtbl List Pid Result
