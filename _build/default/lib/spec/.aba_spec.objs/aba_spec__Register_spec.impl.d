lib/spec/register_spec.ml: Aba_primitives Format Pid
