lib/spec/stack_spec.ml: Aba_primitives Format Pid
