lib/spec/aba_register_spec.mli: Seq_spec
