open Aba_primitives

type op = Push of int | Pop
type res = Push_done | Popped of int option
type state = int list

let init ~n:_ = []

let apply st (_ : Pid.t) = function
  | Push x -> (x :: st, Push_done)
  | Pop -> (
      match st with
      | [] -> ([], Popped None)
      | x :: rest -> (rest, Popped (Some x)))

let equal_res (a : res) (b : res) = a = b

let pp_op ppf = function
  | Push x -> Format.fprintf ppf "Push(%d)" x
  | Pop -> Format.pp_print_string ppf "Pop"

let pp_res ppf = function
  | Push_done -> Format.pp_print_string ppf "ok"
  | Popped None -> Format.pp_print_string ppf "->empty"
  | Popped (Some x) -> Format.fprintf ppf "->%d" x
