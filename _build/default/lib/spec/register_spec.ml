open Aba_primitives

type op = Read | Write of int
type res = Read_result of int | Write_done
type state = int

let init ~n:_ = -1

let apply st (_ : Pid.t) = function
  | Read -> (st, Read_result st)
  | Write x -> (x, Write_done)

let equal_res (a : res) (b : res) = a = b

let pp_op ppf = function
  | Read -> Format.pp_print_string ppf "Read"
  | Write x -> Format.fprintf ppf "Write(%d)" x

let pp_res ppf = function
  | Read_result v -> Format.fprintf ppf "->%d" v
  | Write_done -> Format.pp_print_string ppf "ok"
