open Aba_primitives

module Int_map = Map.Make (Int)

type op = Ll | Sc of int | Vl
type res = Ll_result of int | Sc_result of bool | Vl_result of bool

type state = {
  value : int;
  version : int;  (** successful-SC count *)
  link : int Int_map.t;  (** per pid: [version] at its last LL *)
}

let initial_value = 0

let init ~n:_ = { value = initial_value; version = 0; link = Int_map.empty }

let link_valid st p =
  match Int_map.find_opt p st.link with
  | Some v -> v = st.version
  | None -> st.version = 0

let apply st (p : Pid.t) = function
  | Ll -> ({ st with link = Int_map.add p st.version st.link },
           Ll_result st.value)
  | Sc x ->
      if link_valid st p then
        ({ st with value = x; version = st.version + 1 }, Sc_result true)
      else (st, Sc_result false)
  | Vl -> (st, Vl_result (link_valid st p))

let equal_res (a : res) (b : res) = a = b

let pp_op ppf = function
  | Ll -> Format.pp_print_string ppf "LL"
  | Sc x -> Format.fprintf ppf "SC(%d)" x
  | Vl -> Format.pp_print_string ppf "VL"

let pp_res ppf = function
  | Ll_result v -> Format.fprintf ppf "LL->%d" v
  | Sc_result b -> Format.fprintf ppf "SC->%b" b
  | Vl_result b -> Format.fprintf ppf "VL->%b" b
