(** Sequential specification of a FIFO queue — used when checking the
    Michael–Scott queue application of the introduction's motivation. *)

(* record fields use Pid.t via Seq_spec *)

type op = Enqueue of int | Dequeue
type res = Enqueue_done | Dequeued of int option

include Seq_spec.S with type op := op and type res := res
