(** The weak correctness condition of Section 2.

    The lower bounds do not require linearizability.  Instead they use two
    argument-less methods [WeakWrite] and [WeakRead], where a [WeakRead]
    operation [r] by process [p] must return [true] iff there exists a
    [WeakWrite] operation [w] such that [w] happens before [r] and every
    other [WeakRead] by [p] happens before [w].

    This module checks that condition on a recorded history.  The condition
    determines the required return value only when no [WeakWrite] overlaps
    the read in question; the histories produced by the lower-bound
    adversaries are of exactly that shape (reads under scrutiny run solo),
    and [check] reports [Undetermined] in the remaining cases rather than
    guessing.

    Any linearizable ABA-detecting register yields correct [WeakRead] /
    [WeakWrite] methods by taking [DRead]'s flag and discarding values
    (the reduction at the start of Section 2), which is how the adversaries
    drive the implementations under test. *)

open Aba_primitives

type op = Weak_read | Weak_write
type res = Flag of bool | Write_done

type violation = {
  read_index : int;  (** position of the offending read's response *)
  pid : Pid.t;
  got : bool;
  expected : bool;
  reason : string;
}

val check : (op, res) Event.history -> (unit, violation) result
(** Checks every completed [WeakRead] whose required flag is determined by
    the happens-before order; ignores the rest. *)

val pp_violation : Format.formatter -> violation -> unit
