open Aba_primitives

module Int_map = Map.Make (Int)

type op = DRead | DWrite of int
type res = Read_result of int * bool | Write_done

type state = {
  value : int;
  writes : int;  (** number of DWrites so far *)
  seen : int Int_map.t;  (** per pid: [writes] at its last DRead *)
}

let initial_value = -1

let init ~n:_ = { value = initial_value; writes = 0; seen = Int_map.empty }

let apply st (p : Pid.t) = function
  | DWrite x -> ({ st with value = x; writes = st.writes + 1 }, Write_done)
  | DRead ->
      let last = Option.value ~default:0 (Int_map.find_opt p st.seen) in
      let flag = st.writes > last in
      ({ st with seen = Int_map.add p st.writes st.seen },
       Read_result (st.value, flag))

let equal_res (a : res) (b : res) = a = b

let pp_op ppf = function
  | DRead -> Format.pp_print_string ppf "DRead"
  | DWrite x -> Format.fprintf ppf "DWrite(%d)" x

let pp_res ppf = function
  | Read_result (v, f) -> Format.fprintf ppf "(%d,%b)" v f
  | Write_done -> Format.pp_print_string ppf "ok"
