open Aba_primitives

type op = Weak_read | Weak_write
type res = Flag of bool | Write_done

type violation = {
  read_index : int;
  pid : Pid.t;
  got : bool;
  expected : bool;
  reason : string;
}

type op_record = {
  pid : Pid.t;
  kind : op;
  flag : bool option;  (** for completed reads *)
  inv : int;
  rsp : int;  (** [max_int] when pending *)
}

let parse h =
  if not (Event.well_formed h) then
    invalid_arg "Weak_cond: history is not well formed";
  let pending : (Pid.t, op * int) Hashtbl.t = Hashtbl.create 16 in
  let out = ref [] in
  List.iteri
    (fun time e ->
      match e with
      | Event.Invoke (p, o) -> Hashtbl.replace pending p (o, time)
      | Event.Response (p, r) ->
          let kind, inv = Hashtbl.find pending p in
          Hashtbl.remove pending p;
          let flag =
            match r with Flag b -> Some b | Write_done -> None
          in
          out := { pid = p; kind; flag; inv; rsp = time } :: !out)
    h;
  Hashtbl.iter
    (fun p (kind, inv) ->
      out := { pid = p; kind; flag = None; inv; rsp = max_int } :: !out)
    pending;
  List.sort (fun a b -> compare a.inv b.inv) !out

let check h =
  let ops = parse h in
  let writes = List.filter (fun o -> o.kind = Weak_write) ops in
  let reads_by p =
    List.filter (fun o -> o.kind = Weak_read && o.pid = p) ops
  in
  let violation = ref None in
  let check_read (r : op_record) got =
    let others = List.filter (fun r' -> r'.inv <> r.inv) (reads_by r.pid) in
    (* The flag is forced to [true] when some completed write happens before
       [r] and after every other read by the same process. *)
    let forced_true =
      List.exists
        (fun w ->
          w.rsp < r.inv
          && List.for_all (fun r' -> r'.rsp < w.inv) others)
        writes
    in
    (* The flag is forced to [false] when no write can linearize between the
       previous read by this process and [r]: every write either completed
       before the previous read was invoked, or was invoked after [r]
       responded.  (For a first read the window opens at the start of the
       execution.) *)
    let prev_inv =
      List.fold_left
        (fun acc r' -> if r'.rsp < r.inv then max acc r'.inv else acc)
        (-1) others
    in
    let forced_false =
      List.for_all
        (fun w -> (prev_inv >= 0 && w.rsp < prev_inv) || w.inv > r.rsp)
        writes
    in
    if forced_true && not got then
      violation :=
        Some
          {
            read_index = r.rsp;
            pid = r.pid;
            got;
            expected = true;
            reason =
              "a WeakWrite happens before this read and after every other \
               read by this process, yet the flag is false";
          }
    else if forced_false && got then
      violation :=
        Some
          {
            read_index = r.rsp;
            pid = r.pid;
            got;
            expected = false;
            reason =
              "no WeakWrite can linearize since this process's previous \
               read, yet the flag is true";
          }
  in
  List.iter
    (fun o ->
      if !violation = None then
        match (o.kind, o.flag) with
        | Weak_read, Some got -> check_read o got
        | Weak_read, None | Weak_write, _ -> ())
    ops;
  match !violation with None -> Result.Ok () | Some v -> Result.Error v

let pp_violation ppf (v : violation) =
  Format.fprintf ppf
    "@[WeakRead by %a (response at event %d) returned %b but must return \
     %b:@ %s@]"
    Pid.pp v.pid v.read_index v.got v.expected v.reason
