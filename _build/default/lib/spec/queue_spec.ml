open Aba_primitives

type op = Enqueue of int | Dequeue
type res = Enqueue_done | Dequeued of int option

(* Front list, reversed back list; amortized functional queue. *)
type state = int list * int list

let init ~n:_ = ([], [])

let apply st (_ : Pid.t) = function
  | Enqueue x ->
      let front, back = st in
      ((front, x :: back), Enqueue_done)
  | Dequeue -> (
      match st with
      | [], [] -> (([], []), Dequeued None)
      | [], back -> (
          match List.rev back with
          | x :: front -> ((front, []), Dequeued (Some x))
          | [] -> assert false)
      | x :: front, back -> ((front, back), Dequeued (Some x)))

let equal_res (a : res) (b : res) = a = b

let pp_op ppf = function
  | Enqueue x -> Format.fprintf ppf "Enq(%d)" x
  | Dequeue -> Format.pp_print_string ppf "Deq"

let pp_res ppf = function
  | Enqueue_done -> Format.pp_print_string ppf "ok"
  | Dequeued None -> Format.pp_print_string ppf "->empty"
  | Dequeued (Some x) -> Format.fprintf ppf "->%d" x
