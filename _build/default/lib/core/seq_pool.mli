(** The [GetSeq] sequence-number pool of Figure 4 (lines 28–37).

    Each process owns one pool.  A call to [next] performs exactly one
    shared-memory read (of one announce-array entry, through the supplied
    callback) and returns a sequence number in [{0 .. 2n+1}] satisfying the
    freshness property of Claim 3: if at some point the main object holds
    [(., p, s)] while [A[q] = (p, s)], then [p] does not use [s] again until
    [A[q]] changes.

    The pool scans one announce entry per call (cursor), remembers which of
    its own numbers are announced ([na]), and delays reuse of returned
    numbers through a queue of length [n + 1] ([usedQ]); since at most
    [2n + 1] numbers are excluded, a free one always exists in the
    [2n + 2]-element pool.

    Figure 4 builds its ABA-detecting register on this, and the
    Jayanti–Petrovic-style LL/SC ({!Llsc_jp}) reuses it for its write
    tags — the paper notes Figure 4's idea comes from that construction. *)

open Aba_primitives

type t

exception Exhausted
(** Raised by {!next} when every number in the domain is excluded — can
    only happen when a [ceiling] below the safe [2n + 1] is forced (the
    ablation experiments do this on purpose). *)

val create : ?ceiling:int -> n:int -> unit -> t
(** [ceiling] defaults to [2n + 1], the smallest value for which {!next}
    can never raise. *)

val ceiling : t -> int
(** Largest sequence number the pool can return. *)

val next :
  t -> me:Pid.t -> read_announce:(int -> (Pid.t * int) option) -> int
(** [next pool ~me ~read_announce] — [read_announce c] must perform the
    (single) shared read of announce entry [c] and return its content. *)
