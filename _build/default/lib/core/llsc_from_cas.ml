(** Figure 3: LL/SC/VL from a {e single} bounded CAS object, with [O(n)]
    step complexity (Theorem 2).

    The CAS object [X] stores a pair [(x, a)] where [x] is the value of the
    implemented object and [a] is an [n]-bit mask; bit [p] of [a] set means
    "a successful SC may have linearized since [p]'s last LL".  A successful
    [SC] writes [(y, 2^n - 1)], setting every process's bit; an [LL] by [p]
    tries to clear its own bit with a CAS.

    The key counting argument (Claim 6): if [p]'s CAS fails [n] times in a
    row, [X] changed [n] times, and at most [n - 1] of those changes can be
    bit-clearing CAS's of LL operations (each clears a distinct bit from 1
    to 0 and only [SC] sets bits back) — so at least one change was a
    successful [SC], which justifies giving up: [LL] sets the local flag
    [b], which forces the next [SC]/[VL] of [p] to report an invalid link.

    Step complexity: [LL] at most [2n + 1] steps, [SC] at most [2n] steps,
    [VL] one step — all [O(n)], matching Corollary 1's lower bound
    [m >= (n-1)/t] at [m = 1]. *)

open Aba_primitives

(** The CAS retry loops run [Retries.retries ~n] times; Figure 3 uses [n],
    which Claim 6's counting argument needs — after [n] failures a
    successful SC must have linearized.  The ablation experiments lower the
    bound to watch LL give up too early (a VL/SC failing with no
    intervening SC: a linearizability violation). *)
module Make_with_retries (Retries : sig
  val retries : n:int -> int
end)
(M : Mem_intf.S) : Llsc_intf.S = struct
  let algorithm_name = "figure-3 (1 bounded CAS, O(n) steps)"
  let initial_value = 0

  type xval = { value : int; mask : int }

  type t = {
    n : int;
    retries : int;
    x : xval M.cas;
    b : bool array;  (** local flag of each process *)
  }

  let show { value; mask } = Printf.sprintf "(%d,%#x)" value mask

  let create ?(value_bound = Bounded.int_range ~lo:(-1) ~hi:255)
      ?(init = initial_value) ~n () =
    if n > 61 then invalid_arg "Llsc_from_cas: n must be at most 61";
    let bound =
      Bounded.make
        ~describe:
          (Printf.sprintf "(%s * %d-bit mask)" (Bounded.describe value_bound)
             n)
        (fun { value; mask } ->
          Bounded.mem value_bound value && 0 <= mask && mask < 1 lsl n)
    in
    {
      n;
      retries = Retries.retries ~n;
      x = M.make_cas ~bound ~name:"X" ~show { value = init; mask = 0 };
      b = Array.make n false;
    }

  let bit_set mask p = (mask lsr p) land 1 = 1
  let all_set n = (1 lsl n) - 1

  (* Lines 14–25. *)
  let ll t ~pid:p =
    let { value = x; mask = a } = M.cas_read t.x in
    if not (bit_set a p) then begin
      t.b.(p) <- false;
      x
    end
    else begin
      let rec attempt i =
        if i > t.retries then begin
          (* n failed CAS's: a successful SC linearized during this LL
             (Claim 6); linearize at the initial read and poison the link. *)
          t.b.(p) <- true;
          x
        end
        else begin
          let ({ value = x'; mask = a' } as seen) = M.cas_read t.x in
          (* Only p clears its own bit, so it is still set here. *)
          assert (bit_set a' p);
          if
            M.cas t.x ~expect:seen
              ~update:{ value = x'; mask = a' - (1 lsl p) }
          then begin
            t.b.(p) <- false;
            x'
          end
          else attempt (i + 1)
        end
      in
      attempt 1
    end

  (* Lines 1–8. *)
  let sc t ~pid:p y =
    if t.b.(p) then false
    else begin
      let rec attempt i =
        if i > t.retries then false
        else begin
          let ({ value = _; mask = a } as seen) = M.cas_read t.x in
          if bit_set a p then false
          else if
            M.cas t.x ~expect:seen ~update:{ value = y; mask = all_set t.n }
          then true
          else attempt (i + 1)
        end
      in
      attempt 1
    end

  (* Lines 9–13. *)
  let vl t ~pid:p =
    let { value = _; mask = a } = M.cas_read t.x in
    (not (bit_set a p)) && not t.b.(p)

  let space _ = M.space ()
end

(** Figure 3 as published. *)
module Make (M : Mem_intf.S) : Llsc_intf.S =
  Make_with_retries
    (struct
      let retries ~n = n
    end)
    (M)
