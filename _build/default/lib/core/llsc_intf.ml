(** Interface of LL/SC/VL implementations.

    [ll] returns the object's value and links the calling process; [sc x]
    succeeds — writing [x] — iff no successful [sc] occurred since the
    caller's last [ll]; [vl] reports link validity without changing state.
    A process that never performed [ll] holds a valid link until the first
    successful [sc] (Appendix A convention). *)

open Aba_primitives

module type S = sig
  val algorithm_name : string

  type t

  val create : ?value_bound:int Bounded.t -> ?init:int -> n:int -> unit -> t
  (** [init] defaults to {!initial_value}. *)

  val ll : t -> pid:Pid.t -> int

  val sc : t -> pid:Pid.t -> int -> bool

  val vl : t -> pid:Pid.t -> bool

  val space : t -> (string * string) list
  (** Base objects used, as [(name, domain)] pairs. *)

  val initial_value : int
end

module type MAKER = functor (M : Mem_intf.S) -> S
