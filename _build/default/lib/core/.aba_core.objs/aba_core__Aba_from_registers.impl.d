lib/core/aba_from_registers.ml: Aba_primitives Aba_register_intf Array Bounded Mem_intf Pid Printf Seq_pool
