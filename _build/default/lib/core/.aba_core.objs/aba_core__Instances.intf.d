lib/core/instances.mli: Aba_primitives Aba_register_intf Aba_sim Bounded Llsc_intf Mem_intf Pid
