lib/core/llsc_unbounded.ml: Aba_primitives Array Llsc_intf Mem_intf Printf
