lib/core/llsc_native.ml: Aba_primitives Bounded Llsc_intf Mem_intf
