lib/core/llsc_bounded_tag.ml: Aba_primitives Array Bounded Llsc_intf Mem_intf Printf
