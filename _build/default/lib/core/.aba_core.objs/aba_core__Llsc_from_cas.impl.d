lib/core/llsc_from_cas.ml: Aba_primitives Array Bounded Llsc_intf Mem_intf Printf
