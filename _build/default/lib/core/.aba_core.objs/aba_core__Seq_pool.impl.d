lib/core/seq_pool.ml: Array Queue
