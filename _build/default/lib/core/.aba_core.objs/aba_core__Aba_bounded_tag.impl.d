lib/core/aba_bounded_tag.ml: Aba_primitives Aba_register_intf Array Bounded Mem_intf Pid Printf
