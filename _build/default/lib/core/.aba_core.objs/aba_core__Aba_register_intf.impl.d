lib/core/aba_register_intf.ml: Aba_primitives Bounded Mem_intf Pid
