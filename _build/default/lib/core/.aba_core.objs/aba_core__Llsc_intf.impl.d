lib/core/llsc_intf.ml: Aba_primitives Bounded Mem_intf Pid
