lib/core/aba_from_llsc.ml: Aba_primitives Aba_register_intf Array Llsc_intf Printf
