lib/core/aba_unbounded.ml: Aba_primitives Aba_register_intf Array Mem_intf Pid Printf
