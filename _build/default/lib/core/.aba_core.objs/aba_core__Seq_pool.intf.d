lib/core/seq_pool.mli: Aba_primitives Pid
