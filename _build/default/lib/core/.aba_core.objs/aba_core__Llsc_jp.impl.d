lib/core/llsc_jp.ml: Aba_primitives Array Bounded Llsc_intf Mem_intf Pid Printf Seq_pool
