lib/core/aba_from_cas.ml: Aba_from_llsc Aba_primitives Aba_register_intf Llsc_from_cas
