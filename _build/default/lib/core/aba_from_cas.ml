(** Theorem 2, second half: a bounded multi-writer ABA-detecting register
    from a {e single} bounded CAS object with [O(n)] step complexity —
    Figure 5 running over Figure 3. *)

module Make (M : Aba_primitives.Mem_intf.S) : Aba_register_intf.S = struct
  include Aba_from_llsc.Make (Llsc_from_cas.Make (M))

  let algorithm_name = "theorem-2 (1 bounded CAS, O(n) steps; fig5 over fig3)"
end
