
type t = {
  n : int;
  ceiling : int;
  mutable cursor : int;
  not_available : int option array;
      (** per announce index: own seq currently announced there *)
  used_queue : int Queue.t;  (** [n+1] entries; [-1] stands for bottom *)
}

exception Exhausted

let create ?ceiling ~n () =
  if n <= 0 then invalid_arg "Seq_pool.create: n must be positive";
  let ceiling = match ceiling with Some c -> c | None -> (2 * n) + 1 in
  if ceiling < 0 then invalid_arg "Seq_pool.create: negative ceiling";
  let used_queue = Queue.create () in
  for _ = 1 to n + 1 do
    Queue.add (-1) used_queue
  done;
  { n; ceiling; cursor = 0; not_available = Array.make n None; used_queue }

let ceiling t = t.ceiling

let next t ~me ~read_announce =
  let c = t.cursor in
  (match read_announce c with
  | Some (r, s_r) when r = me -> t.not_available.(c) <- Some s_r
  | Some _ | None -> t.not_available.(c) <- None);
  t.cursor <- (c + 1) mod t.n;
  (* |na| <= n and |usedQ| = n+1 exclude at most 2n+1 of the 2n+2
     candidates, so a free number always exists.  One pass over both
     exclusion sets keeps the call linear in n. *)
  let excluded = Array.make (ceiling t + 1) false in
  Queue.iter (fun u -> if u >= 0 then excluded.(u) <- true) t.used_queue;
  Array.iter
    (function Some s -> excluded.(s) <- true | None -> ())
    t.not_available;
  let rec first_free s =
    if s > ceiling t then raise Exhausted
    else if excluded.(s) then first_free (s + 1)
    else s
  in
  let s = first_free 0 in
  Queue.add s t.used_queue;
  ignore (Queue.pop t.used_queue);
  s
