(** Replayable driver for the [WeakRead]/[WeakWrite] workload of Section 2.

    The lower-bound constructions run a fixed program shape: process [0]
    repeatedly calls [WeakWrite] and every other process repeatedly calls
    [WeakRead] (each [WeakRead] is a [DRead] whose value is discarded, each
    [WeakWrite] a [DWrite] of a constant).  The adversary interleaves these
    calls step by step and — crucially — must be able to {e jump back} to an
    earlier configuration (the proof of Lemma 1 backtracks to [C_i] once a
    register configuration repeats).

    Because implementations are deterministic, a configuration is determined
    by the sequence of adversary actions that produced it, so backtracking
    is realized by replaying a prefix of the recorded action log against a
    fresh instance. *)

open Aba_primitives

type action = Invoke_read of Pid.t | Invoke_write of Pid.t | Step of Pid.t

type t

val create : Aba_core.Instances.aba_builder -> n:int -> t
(** Fresh instance in its initial (quiescent) configuration. *)

val n : t -> int

val sim : t -> Aba_sim.Sim.t

(** {1 Actions} — each is recorded in the log. *)

val invoke_read : t -> Pid.t -> unit

val invoke_write : t -> Pid.t -> unit
(** [WeakWrite]: a [DWrite 1]. *)

val step : t -> Pid.t -> unit

val run_solo : t -> Pid.t -> unit
(** Step the process until its pending call completes (recording each
    step). *)

val complete_read : t -> Pid.t -> bool
(** Invoke a [WeakRead] and run it solo; returns the detection flag. *)

val complete_write : t -> Pid.t -> unit

(** {1 Inspection} *)

val is_idle : t -> Pid.t -> bool

val poised : t -> Pid.t -> Aba_sim.Step.t option

val last_flag : t -> Pid.t -> bool option
(** Flag returned by [p]'s most recently completed [WeakRead]. *)

val reg_config : t -> string
(** Rendered [reg(C)] of the current configuration. *)

val quiescent : t -> bool

(** {1 Log and replay} *)

val mark : t -> int
(** Current position in the action log. *)

val log_slice : t -> from:int -> upto:int -> action list
(** Actions in log positions [from, upto) — used to capture the [sigma]
    segment between two configurations before truncating. *)

val replay_prefix : t -> upto:int -> t
(** A fresh instance on which log positions [0, upto) have been replayed —
    the configuration the original instance had at mark [upto]. *)

val apply : t -> action -> unit
(** Re-issue a captured action (used to replay [sigma] segments). *)

val total_steps : t -> int
