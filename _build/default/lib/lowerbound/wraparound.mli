(** Bounded-tag wraparound experiments (experiment E6).

    The introduction discusses the folklore tagging technique and why
    bounded tags do not solve the ABA problem: tag values wrap around.
    This module quantifies that:

    - [directed_search] finds, for a given implementation, the smallest
      number of same-value writes between two reads of one process that
      goes undetected.  For the mod-[T] tagging scheme the answer is
      exactly [T]; for the correct implementations there is none.
    - [randomized_search] drives random concurrent schedules through the
      simulator and checks every history against the weak condition and
      the linearizability checker, reporting the first violating seed.

    Together with the exhaustive exploration of the test suite this gives
    the empirical side of "bounded tags fail, detection needs real space"
    (Theorem 1 vs. the unbounded escape hatch). *)

type directed_result =
  | Missed_after of int
      (** smallest number of writes between two reads that went undetected *)
  | Detected_up_to of int  (** all probed counts were detected *)

val directed_search :
  Aba_core.Instances.aba_builder -> n:int -> max_writes:int -> directed_result

type randomized_result = {
  histories_checked : int;
  violation_seed : int option;
      (** seed of the first history that failed the checks, if any *)
}

val randomized_search :
  Aba_core.Instances.aba_builder ->
  n:int ->
  ops_per_pid:int ->
  seeds:int ->
  randomized_result
