open Aba_core

type measurement = {
  label : string;
  n : int;
  space : int;
  bounded : bool;
  worst_ll : int;
  worst_sc : int;
  worst_vl : int;
  worst_op : int;
  product : int;
  bound : int;
}

type aba_measurement = {
  a_label : string;
  a_n : int;
  a_space : int;
  a_bounded : bool;
  worst_dread : int;
  worst_dwrite : int;
  a_worst_op : int;
  a_product : int;
  a_bound : int;
}

(* Drive one operation of process [q] to completion, one shared-memory step
   at a time, invoking [interfere] between consecutive steps; returns the
   operation's step count. *)
let run_contended sim q call ~interfere =
  let promise = Aba_sim.Sim.invoke sim q call in
  let rec go () =
    match Aba_sim.Sim.result promise with
    | Some _ -> Aba_sim.Sim.steps_of promise
    | None ->
        Aba_sim.Sim.step sim q;
        (match Aba_sim.Sim.result promise with
        | Some _ -> ()
        | None -> interfere ());
        go ()
  in
  go ()

let run_solo_op sim p call =
  let promise = Aba_sim.Sim.invoke sim p call in
  Aba_sim.Sim.run_solo sim p;
  match Aba_sim.Sim.result promise with Some r -> r | None -> assert false

let all_bounded space_list =
  List.for_all (fun (_, domain) -> domain <> "unbounded") space_list

let threshold n = (n - 1 + 1) / 2 (* ceil((n-1)/2), Theorem 1(c) *)

let measure_llsc ~label builder ~n =
  if n < 3 then invalid_arg "Tradeoff.measure_llsc: need n >= 3";
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.llsc_in_sim builder sim ~n in
  let q = 1 in
  let others = List.filter (fun p -> p <> q) (Aba_primitives.Pid.all ~n) in
  (* Interfering SCs must store pairwise-distinct values: an LL/SC pair that
     restores the object to its previous contents is an ABA on the CAS
     object itself, and the measured process's CAS would (correctly!)
     succeed early. *)
  let fresh_value = ref 2 in
  let full_sc_by p =
    fresh_value := 3 + ((!fresh_value + 1) mod 200);
    let v = !fresh_value in
    ignore (run_solo_op sim p (fun () -> inst.Instances.ll p));
    ignore (run_solo_op sim p (fun () -> inst.Instances.sc p v))
  in
  let bare_ll_by p = ignore (run_solo_op sim p (fun () -> inst.Instances.ll p)) in
  (* Worst LL: every step of [q] is followed by a complete successful SC of
     a rotating other process, so the object keeps changing and [q]'s bit
     (for Figure 3) keeps being re-set. *)
  let rotation = ref others in
  let rotate () =
    match !rotation with
    | [] ->
        rotation := others;
        List.hd others
    | p :: rest ->
        rotation := rest;
        p
  in
  full_sc_by 0;
  let worst_ll =
    run_contended sim q (fun () -> inst.Instances.ll q) ~interfere:(fun () ->
        full_sc_by (rotate ()))
  in
  (* Worst SC: re-arm (successful SC by another process, then a solo LL by
     [q]), then between [q]'s steps the other processes perform bare LLs —
     these keep changing the object (clearing their own Figure 3 bits)
     without invalidating [q]'s link. *)
  full_sc_by 0;
  bare_ll_by q;
  let pending = ref others in
  let worst_sc =
    run_contended sim q (fun () -> inst.Instances.sc q 2) ~interfere:(fun () ->
        match !pending with
        | [] -> ()
        | p :: rest ->
            pending := rest;
            bare_ll_by p)
  in
  (* Worst VL, measured under the same churn as LL. *)
  full_sc_by 0;
  bare_ll_by q;
  let worst_vl =
    run_contended sim q (fun () -> inst.Instances.vl q) ~interfere:(fun () ->
        full_sc_by (rotate ()))
  in
  let space_list = inst.Instances.llsc_space () in
  let space = List.length space_list in
  let worst_op = max worst_ll (max worst_sc worst_vl) in
  {
    label;
    n;
    space;
    bounded = all_bounded space_list;
    worst_ll;
    worst_sc;
    worst_vl;
    worst_op;
    product = space * worst_op;
    bound = threshold n;
  }

let measure_aba ~label builder ~n =
  if n < 3 then invalid_arg "Tradeoff.measure_aba: need n >= 3";
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.aba_in_sim builder sim ~n in
  let q = 1 in
  let others = List.filter (fun p -> p <> q) (Aba_primitives.Pid.all ~n) in
  let rotation = ref others in
  let rotate () =
    match !rotation with
    | [] ->
        rotation := others;
        List.hd others
    | p :: rest ->
        rotation := rest;
        p
  in
  (* As in [measure_llsc], interfering writes use distinct values so they
     cannot cancel out through a CAS-level ABA. *)
  let fresh_value = ref 2 in
  let churn () =
    fresh_value := 3 + ((!fresh_value + 1) mod 200);
    let v = !fresh_value in
    let p = rotate () in
    ignore (run_solo_op sim p (fun () -> inst.Instances.dwrite p v));
    ignore (run_solo_op sim p (fun () -> inst.Instances.dread p))
  in
  (* Warm up so local caches and announce entries are populated. *)
  churn ();
  ignore (run_solo_op sim q (fun () -> inst.Instances.dread q));
  let measure call =
    (* Repeat a few times and keep the max: the worst path may need the
       right starting state (e.g. the reader's Figure 3 bit set), and that
       state is produced by churning *between* operations — an operation
       whose first step completes it never sees in-operation
       interference. *)
    let worst = ref 0 in
    for _ = 1 to 4 do
      churn ();
      let steps = run_contended sim q call ~interfere:churn in
      if steps > !worst then worst := steps
    done;
    !worst
  in
  let worst_dread = measure (fun () -> ignore (inst.Instances.dread q)) in
  let worst_dwrite = measure (fun () -> inst.Instances.dwrite q 2) in
  let space_list = inst.Instances.aba_space () in
  let space = List.length space_list in
  let a_worst_op = max worst_dread worst_dwrite in
  {
    a_label = label;
    a_n = n;
    a_space = space;
    a_bounded = all_bounded space_list;
    worst_dread;
    worst_dwrite;
    a_worst_op;
    a_product = space * a_worst_op;
    a_bound = threshold n;
  }
