(** The Lemma 1 covering adversary, executable (experiment E1, Theorem 1(a)).

    The proof of Lemma 1 constructs, for every [k <= n-1], a reachable
    configuration in which [k] reader processes are poised to write to [k]
    {e distinct} registers while the writer is idle — which forces any
    solo-terminating implementation of [WeakRead]/[WeakWrite] from bounded
    registers to use at least [n-1] of them.  This module {e runs} that
    construction against an implementation:

    + inductively reach a configuration [C_i] where pids [1..k-1] cover
      [k-1] distinct registers;
    + execute the block-write, record [reg(D_i)], finish the readers, let
      the writer complete one [WeakWrite], and iterate;
    + when a register configuration repeats ([reg(D_i) = reg(D_j)]), jump
      back to [C_i] (deterministic replay of the action log) and run the
      next reader solo.

    For a correct implementation the solo reader must get poised to write
    {e outside} the covered set before finishing — extending the covering,
    exactly as the proof guarantees.  If instead it finishes its [WeakRead],
    the adversary completes the proof's contradiction {e concretely}: it
    re-executes the block-write and the recorded segment [sigma] (which
    contains at least one complete [WeakWrite]) and lets the reader read
    again.  A reader that cannot distinguish [D'_i] from [D'_j] returns a
    [false] flag — a machine-checkable violation of the weak condition.

    Outcomes over the implementation zoo map exactly onto the theory:
    - Figure 4 → [Covered] with [k = n-1] distinct registers;
    - bounded-tag → [Violation] (wrong flag exhibited);
    - CAS-based implementations → [Escaped] (conditional primitives break
      the hiding step — they are outside Theorem 1(a)'s hypothesis, and
      need the Lemma 2/3 tradeoff instead);
    - unbounded-register implementations → [No_repetition] (register
      configurations never repeat — the other escape hatch). *)

open Aba_primitives

type violation = {
  at_level : int;  (** the [k] at which the confusion was exhibited *)
  flag : bool;  (** the flag the dirty read returned (always [false]) *)
  writes_missed : int;  (** complete WeakWrites inside [sigma] *)
}

type outcome =
  | Covered of (Pid.t * string) list
      (** pids and the distinct registers they cover, length [n-1] *)
  | Violation of violation
  | Escaped of { at_level : int }
  | No_repetition of { at_level : int; iterations : int }

type stats = {
  total_steps : int;
  total_iterations : int;  (** loop iterations summed over levels *)
  replays : int;
}

val run :
  ?max_iterations_per_level:int ->
  Aba_core.Instances.aba_builder ->
  n:int ->
  outcome * stats
(** [run builder ~n] executes the adversary up to coverage [n - 1].
    [max_iterations_per_level] (default [2000]) bounds the search for a
    repeated register configuration at each level. *)

val pp_outcome : Format.formatter -> outcome -> unit
