(** Time–space tradeoff measurements (experiments E2, E3, E5; Theorem 1(b,c)
    and Corollary 1).

    For each implementation the harness measures the number of base objects
    [m] (exactly, from the instance's space accounting) and the worst
    per-operation step count [t] observed under a {e contention adversary}:
    the measured process is advanced one shared-memory step at a time, and
    between its steps the remaining processes complete whole operations
    chosen to invalidate its work (successful SCs set its Figure 3 bit;
    bare LLs keep the CAS object churning while its bit stays clear).

    The lower bounds say [m·t >= (n-1)/2] for implementations from bounded
    writable CAS objects ([m·t >= n-1] when objects are CAS-only or
    registers); the table produced here shows Figure 3 ([m = 1],
    [t = Theta(n)]) and the Jayanti–Petrovic construction ([m = n+1],
    [t = O(1)]) sitting on that curve, and Moir's unbounded construction
    ([m = 1], [t = O(1)]) beneath it — possible only because its tag is
    unbounded. *)

type measurement = {
  label : string;
  n : int;
  space : int;  (** m: number of base objects *)
  bounded : bool;  (** every base object has a finite domain *)
  worst_ll : int;
  worst_sc : int;
  worst_vl : int;
  worst_op : int;  (** t: max of the above *)
  product : int;  (** m * t *)
  bound : int;  (** the Theorem 1(c) threshold, (n-1+1)/2 rounded up *)
}

val measure_llsc :
  label:string -> Aba_core.Instances.llsc_builder -> n:int -> measurement

type aba_measurement = {
  a_label : string;
  a_n : int;
  a_space : int;
  a_bounded : bool;
  worst_dread : int;
  worst_dwrite : int;
  a_worst_op : int;
  a_product : int;
  a_bound : int;
}

val measure_aba :
  label:string -> Aba_core.Instances.aba_builder -> n:int -> aba_measurement
