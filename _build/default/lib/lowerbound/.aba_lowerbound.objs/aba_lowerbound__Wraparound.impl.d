lib/lowerbound/wraparound.ml: Aba_core Aba_primitives Aba_sim Aba_spec Array Instances List Random Result
