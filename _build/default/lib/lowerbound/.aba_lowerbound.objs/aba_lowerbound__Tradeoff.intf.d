lib/lowerbound/tradeoff.mli: Aba_core
