lib/lowerbound/covering.ml: Aba_primitives Aba_sim Format Hashtbl List Pid Printf String Weak_runner
