lib/lowerbound/tradeoff.ml: Aba_core Aba_primitives Aba_sim Instances List
