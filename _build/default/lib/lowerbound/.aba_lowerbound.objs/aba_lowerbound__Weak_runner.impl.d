lib/lowerbound/weak_runner.ml: Aba_core Aba_primitives Aba_sim Array Instances List Option Pid String
