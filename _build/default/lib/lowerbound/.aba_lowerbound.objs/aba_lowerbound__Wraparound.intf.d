lib/lowerbound/wraparound.mli: Aba_core
