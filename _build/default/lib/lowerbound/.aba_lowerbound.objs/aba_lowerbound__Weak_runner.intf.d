lib/lowerbound/weak_runner.mli: Aba_core Aba_primitives Aba_sim Pid
