lib/lowerbound/covering.mli: Aba_core Aba_primitives Format Pid
