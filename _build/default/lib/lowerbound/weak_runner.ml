open Aba_primitives
open Aba_core

type action = Invoke_read of Pid.t | Invoke_write of Pid.t | Step of Pid.t

type pending = Read of (int * bool) Aba_sim.Sim.promise | Write of unit Aba_sim.Sim.promise

type t = {
  builder : Instances.aba_builder;
  n : int;
  sim : Aba_sim.Sim.t;
  inst : Instances.aba;
  pending : pending option array;
  last_flag : bool option array;
  mutable log_rev : action list;
  mutable log_len : int;
}

let create builder ~n =
  let sim = Aba_sim.Sim.create ~n in
  let inst = Instances.aba_in_sim builder sim ~n in
  {
    builder;
    n;
    sim;
    inst;
    pending = Array.make n None;
    last_flag = Array.make n None;
    log_rev = [];
    log_len = 0;
  }

let n t = t.n
let sim t = t.sim

let record t a =
  t.log_rev <- a :: t.log_rev;
  t.log_len <- t.log_len + 1

let settle t p =
  match t.pending.(p) with
  | None -> ()
  | Some (Read promise) -> (
      match Aba_sim.Sim.result promise with
      | Some (_, flag) ->
          t.pending.(p) <- None;
          t.last_flag.(p) <- Some flag
      | None -> ())
  | Some (Write promise) -> (
      match Aba_sim.Sim.result promise with
      | Some () -> t.pending.(p) <- None
      | None -> ())

let invoke_read t p =
  (match t.pending.(p) with
  | Some _ -> invalid_arg "Weak_runner.invoke_read: operation pending"
  | None -> ());
  record t (Invoke_read p);
  let promise = Aba_sim.Sim.invoke t.sim p (fun () -> t.inst.Instances.dread p) in
  t.pending.(p) <- Some (Read promise);
  settle t p

let invoke_write t p =
  (match t.pending.(p) with
  | Some _ -> invalid_arg "Weak_runner.invoke_write: operation pending"
  | None -> ());
  record t (Invoke_write p);
  let promise =
    Aba_sim.Sim.invoke t.sim p (fun () -> t.inst.Instances.dwrite p 1)
  in
  t.pending.(p) <- Some (Write promise);
  settle t p

let step t p =
  record t (Step p);
  Aba_sim.Sim.step t.sim p;
  settle t p

let is_idle t p = t.pending.(p) = None

let run_solo t p =
  let rec go budget =
    if is_idle t p then ()
    else if budget = 0 then failwith "Weak_runner.run_solo: no termination"
    else begin
      step t p;
      go (budget - 1)
    end
  in
  go 100_000

let complete_read t p =
  invoke_read t p;
  run_solo t p;
  match t.last_flag.(p) with
  | Some f -> f
  | None -> assert false

let complete_write t p =
  invoke_write t p;
  run_solo t p

let poised t p = Aba_sim.Sim.poised t.sim p
let last_flag t p = t.last_flag.(p)
let reg_config t = String.concat ";" (Aba_sim.Sim.reg_config t.sim)
let quiescent t = Array.for_all Option.is_none t.pending
let mark t = t.log_len

let log_slice t ~from ~upto =
  (* log_rev is newest-first; positions are 0-based from the start. *)
  let all = List.rev t.log_rev in
  List.filteri (fun i _ -> from <= i && i < upto) all

let apply t = function
  | Invoke_read p -> invoke_read t p
  | Invoke_write p -> invoke_write t p
  | Step p -> step t p

let replay_prefix t ~upto =
  let fresh = create t.builder ~n:t.n in
  List.iter (apply fresh) (log_slice t ~from:0 ~upto);
  fresh

let total_steps t = Aba_sim.Sim.total_steps t.sim
