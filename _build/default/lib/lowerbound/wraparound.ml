open Aba_core

type directed_result = Missed_after of int | Detected_up_to of int

(* Write once and read (arming the reader's stamp), then perform [k] writes
   of the same value and read again: the second read must report the
   intervening writes.  Sequential schedules suffice — wraparound is not a
   concurrency bug. *)
let directed_search builder ~n ~max_writes =
  let reader = 1 in
  let writer = 0 in
  let miss k =
    let inst = Instances.aba_seq builder ~n in
    inst.Instances.dwrite writer 1;
    let _, _ = inst.Instances.dread reader in
    for _ = 1 to k do
      inst.Instances.dwrite writer 1
    done;
    let _, flag = inst.Instances.dread reader in
    not flag
  in
  let rec probe k =
    if k > max_writes then Detected_up_to max_writes
    else if miss k then Missed_after k
    else probe (k + 1)
  in
  probe 1

type randomized_result = {
  histories_checked : int;
  violation_seed : int option;
}

module Check = Aba_spec.Lin_check.Make (Aba_spec.Aba_register_spec)

(* Forget the values: a DRead/DWrite history is a WeakRead/WeakWrite
   history, so the Section 2 weak condition applies as a second, cheaper
   validator alongside full linearizability. *)
let weak_view h =
  List.map
    (fun e ->
      match e with
      | Aba_primitives.Event.Invoke (p, Aba_spec.Aba_register_spec.DRead) ->
          Aba_primitives.Event.Invoke (p, Aba_spec.Weak_cond.Weak_read)
      | Aba_primitives.Event.Invoke (p, Aba_spec.Aba_register_spec.DWrite _)
        ->
          Aba_primitives.Event.Invoke (p, Aba_spec.Weak_cond.Weak_write)
      | Aba_primitives.Event.Response
          (p, Aba_spec.Aba_register_spec.Read_result (_, flag)) ->
          Aba_primitives.Event.Response (p, Aba_spec.Weak_cond.Flag flag)
      | Aba_primitives.Event.Response
          (p, Aba_spec.Aba_register_spec.Write_done) ->
          Aba_primitives.Event.Response (p, Aba_spec.Weak_cond.Write_done))
    h

let passes_weak_condition h =
  match Aba_spec.Weak_cond.check (weak_view h) with
  | Result.Ok () -> true
  | Result.Error _ -> false

let randomized_search builder ~n ~ops_per_pid ~seeds =
  (* Workloads biased towards same-value writes, the ABA-prone case. *)
  let scripts rng =
    Array.init n (fun p ->
        List.init ops_per_pid (fun _ ->
            if p = 0 || Random.State.int rng 3 = 0 then
              Aba_spec.Aba_register_spec.DWrite 1
            else Aba_spec.Aba_register_spec.DRead))
  in
  let run_one seed =
    let rng = Random.State.make [| seed |] in
    let sim = Aba_sim.Sim.create ~n in
    let inst = Instances.aba_in_sim builder sim ~n in
    let driver =
      Aba_sim.Driver.create ~sim ~apply:(fun p op () ->
          match op with
          | Aba_spec.Aba_register_spec.DRead ->
              let v, f = inst.Instances.dread p in
              Aba_spec.Aba_register_spec.Read_result (v, f)
          | Aba_spec.Aba_register_spec.DWrite x ->
              inst.Instances.dwrite p x;
              Aba_spec.Aba_register_spec.Write_done)
    in
    Aba_sim.Driver.run_random driver ~scripts:(scripts rng) ~seed ();
    let h = Aba_sim.Driver.history driver in
    Check.check_ok ~n h && passes_weak_condition h
  in
  let rec go seed checked =
    if seed > seeds then { histories_checked = checked; violation_seed = None }
    else if run_one seed then go (seed + 1) (checked + 1)
    else { histories_checked = checked + 1; violation_seed = Some seed }
  in
  go 1 0
