(** Universal values.

    The simulator stores the contents of base objects in a single untyped
    store so that schedules, traces and register configurations can be
    manipulated uniformly.  Each typed base object owns an embedding that
    injects its values into — and projects them back out of — the universal
    type.  Projection through the wrong embedding returns [None], so type
    confusion is impossible.

    Equality of universal values (needed by CAS semantics and by the
    register-configuration comparisons of Lemma 1) is structural equality of
    the embedded values; embedded values must therefore be pure data (ints,
    tuples, options, strings), which all the paper's algorithms satisfy. *)

type t

type 'a embed = private { inj : 'a -> t; prj : t -> 'a option }

val create : unit -> 'a embed
(** [create ()] makes a fresh embedding.  Two embeddings created separately
    never project each other's values. *)

val equal : t -> t -> bool
(** Structural equality on the embedded payloads.  [equal u v] is [false]
    whenever [u] and [v] come from different embeddings. *)
