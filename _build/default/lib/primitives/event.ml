type ('op, 'res) t =
  | Invoke of Pid.t * 'op
  | Response of Pid.t * 'res

type ('op, 'res) history = ('op, 'res) t list

let pid = function Invoke (p, _) -> p | Response (p, _) -> p
let is_invoke = function Invoke _ -> true | Response _ -> false

let well_formed h =
  (* [pending] maps each pid to whether it has an open invocation. *)
  let tbl = Hashtbl.create 16 in
  let ok = ref true in
  let check_event = function
    | Invoke (p, _) ->
        if Hashtbl.mem tbl p then ok := false else Hashtbl.add tbl p ()
    | Response (p, _) ->
        if Hashtbl.mem tbl p then Hashtbl.remove tbl p else ok := false
  in
  List.iter check_event h;
  !ok

let complete h =
  let responded = Hashtbl.create 16 in
  List.iter
    (function Response (p, _) -> Hashtbl.add responded p () | Invoke _ -> ())
    h;
  (* Walk backwards: an invocation is kept only if a response by the same
     process occurs later; we consume one pending response per kept
     invocation. *)
  let rec keep rev_h acc =
    match rev_h with
    | [] -> acc
    | (Response (p, _) as e) :: rest ->
        Hashtbl.add responded p ();
        keep rest (e :: acc)
    | (Invoke (p, _) as e) :: rest ->
        if Hashtbl.mem responded p then begin
          Hashtbl.remove responded p;
          keep rest (e :: acc)
        end
        else keep rest acc
  in
  Hashtbl.reset responded;
  keep (List.rev h) []

let ops_of h =
  (* Pair each invocation with the next response by the same process. *)
  let rec result_for p = function
    | [] -> None
    | Response (q, r) :: _ when q = p -> Some r
    | _ :: rest -> result_for p rest
  in
  let rec walk = function
    | [] -> []
    | Invoke (p, op) :: rest -> (p, op, result_for p rest) :: walk rest
    | Response _ :: rest -> walk rest
  in
  walk h

let pp ~op ~res ppf h =
  let pp_event ppf = function
    | Invoke (p, o) -> Format.fprintf ppf "@[inv %a %a@]" Pid.pp p op o
    | Response (p, r) -> Format.fprintf ppf "@[res %a %a@]" Pid.pp p res r
  in
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_event) h
