(** Shared-memory base-object interface.

    The paper's algorithms (Figures 3, 4 and 5) are expressed over three
    kinds of atomic base objects: read/write registers, (writable) CAS
    objects, and LL/SC/VL objects.  We write each algorithm once, as a
    functor over this signature, and instantiate it with:

    - {!Aba_sim.Sim_mem} — the deterministic simulator, where every operation
      is one scheduler step (used for linearizability checking, adversarial
      schedules and the lower-bound experiments);
    - {!Seq_mem} — a direct, single-threaded instance (used for fast
      sequential unit tests of algorithm-internal invariants).

    Creation functions are not shared-memory steps; they model the initial
    configuration.  Every object takes a [name] (used in traces, register
    configurations and space accounting), a [show] function rendering values,
    and an optional {!Bounded.t} domain.  Objects with a domain refuse values
    outside it — this is how the boundedness hypothesis of Theorem 1 is
    enforced at runtime. *)

module type S = sig
  val mem_name : string
  (** Identifies the instance in experiment output. *)

  (** {1 Read/write registers} *)

  type 'a register

  val make_register :
    ?bound:'a Bounded.t -> name:string -> show:('a -> string) -> 'a ->
    'a register

  val read : 'a register -> 'a

  val write : 'a register -> 'a -> unit

  (** {1 CAS objects}

      A CAS object supports [Read()] and [CAS(x, y)].  A {e writable} CAS
      object additionally supports [Write()] — the paper states its
      Theorem 1(c) lower bound for this stronger primitive, which can
      simulate any conditional read-modify-write operation. *)

  type 'a cas

  val make_cas :
    ?bound:'a Bounded.t -> ?writable:bool -> name:string ->
    show:('a -> string) -> 'a -> 'a cas
  (** [writable] defaults to [false]. *)

  val cas_read : 'a cas -> 'a

  val cas : 'a cas -> expect:'a -> update:'a -> bool
  (** [cas o ~expect ~update] atomically replaces the value [v] of [o] by
      [update] and returns [true] if [v = expect] (structurally); otherwise
      leaves [o] unchanged and returns [false]. *)

  val cas_write : 'a cas -> 'a -> unit
  (** Unconditional write; raises [Invalid_argument] on a non-writable CAS
      object. *)

  (** {1 LL/SC/VL objects}

      Used as the {e source} object of Figure 5.  [sc ~pid o v] succeeds iff
      no successful [sc] on [o] occurred since [pid]'s last [ll]; [vl]
      reports whether [pid]'s link is still valid without changing state. *)

  type 'a llsc

  val make_llsc :
    ?bound:'a Bounded.t -> name:string -> show:('a -> string) -> 'a ->
    'a llsc

  val ll : 'a llsc -> pid:Pid.t -> 'a

  val sc : 'a llsc -> pid:Pid.t -> 'a -> bool

  val vl : 'a llsc -> pid:Pid.t -> bool
  (** Per the paper's Appendix A convention, [vl] by a process that has never
      performed [ll] returns [true] as long as no successful [sc] has been
      executed. *)

  (** {1 Space accounting} *)

  val space : unit -> (string * string) list
  (** All base objects created through this instance so far, as
      [(name, domain description)] pairs, in creation order.  This is the
      measured "m" of the theorems. *)
end
