(** Bounded value domains.

    The lower bounds of the paper (Theorem 1, Corollary 1) apply only when
    base objects are {e bounded}: each base object can store values from a
    finite domain, however large.  We make that hypothesis machine-checked:
    every simulated base object carries a domain, and writing a value outside
    the domain raises.  A domain combines a membership predicate with an
    (optional) cardinality, so experiments can report how many distinct
    register configurations are possible. *)

type 'a t

val mem : 'a t -> 'a -> bool
(** [mem d v] tests whether [v] belongs to domain [d]. *)

val size : 'a t -> int option
(** [size d] is the cardinality of [d] if finite and known, [None] for
    unbounded domains. *)

val describe : 'a t -> string
(** Human-readable description used in space-accounting tables. *)

val check : what:string -> 'a t -> 'a -> unit
(** [check ~what d v] raises [Invalid_argument] mentioning [what] if
    [not (mem d v)].  Used by the simulator to enforce boundedness. *)

(** {1 Constructors} *)

val make : ?size:int -> describe:string -> ('a -> bool) -> 'a t

val unbounded : describe:string -> 'a t
(** A domain accepting every value, with [size = None].  Base objects over
    an unbounded domain model the "unbounded tag" constructions that the
    paper uses to show the boundedness hypothesis is necessary. *)

val bool : bool t

val int_range : lo:int -> hi:int -> int t
(** Integers in [lo..hi] inclusive. *)

val int_mod : int -> int t
(** [int_mod m] is [int_range ~lo:0 ~hi:(m-1)]. *)

val option : 'a t -> 'a option t

val pair : 'a t -> 'b t -> ('a * 'b) t

val triple : 'a t -> 'b t -> 'c t -> ('a * 'b * 'c) t

val bits : width:int -> int t
(** Bitmasks of [width] bits, i.e. integers in [0 .. 2^width - 1].  Used for
    the second component of the Figure 3 CAS object. *)
