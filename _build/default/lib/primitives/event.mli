(** Histories of method calls on implemented objects.

    A {e history} is the sequence of invocation and response events occurring
    in an execution (Herlihy & Wing).  Histories are what the
    linearizability checker consumes, and what the weak correctness
    condition of Section 2 ([WeakRead]/[WeakWrite]) is defined over.

    Events are polymorphic in the operation and result types, which are
    supplied by each sequential specification. *)

type ('op, 'res) t =
  | Invoke of Pid.t * 'op
  | Response of Pid.t * 'res

type ('op, 'res) history = ('op, 'res) t list
(** Events in the temporal order in which they occurred. *)

val pid : ('op, 'res) t -> Pid.t

val is_invoke : ('op, 'res) t -> bool

val well_formed : ('op, 'res) history -> bool
(** A history is well formed when, per process, invocations and responses
    strictly alternate starting with an invocation (each process is
    sequential). *)

val complete : ('op, 'res) history -> ('op, 'res) history
(** [complete h] removes pending invocations (invocations without a matching
    response).  The checker treats pending calls conservatively by also
    trying to linearize them; [complete] gives the minimal completion. *)

val ops_of : ('op, 'res) history -> (Pid.t * 'op * 'res option) list
(** Matched calls in invocation order: each invocation paired with its
    response result, or [None] if pending at the end of the history. *)

val pp :
  op:(Format.formatter -> 'op -> unit) ->
  res:(Format.formatter -> 'res -> unit) ->
  Format.formatter ->
  ('op, 'res) history ->
  unit
