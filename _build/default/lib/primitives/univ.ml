type t = exn

type 'a embed = { inj : 'a -> t; prj : t -> 'a option }

let create (type a) () =
  let module M = struct
    exception E of a
  end in
  { inj = (fun x -> M.E x); prj = (function M.E x -> Some x | _ -> None) }

(* Structural comparison of exceptions compares the constructor (physically)
   and then the arguments structurally, which is exactly the semantics we
   want: values from distinct embeddings are never equal, values from the
   same embedding are equal iff their payloads are. *)
let equal (u : t) (v : t) = Stdlib.compare u v = 0
