type 'a t = { mem : 'a -> bool; size : int option; describe : string }

let mem d v = d.mem v
let size d = d.size
let describe d = d.describe

let check ~what d v =
  if not (d.mem v) then
    invalid_arg
      (Printf.sprintf "Bounded.check: %s received a value outside domain %s"
         what d.describe)

let make ?size ~describe mem = { mem; size; describe }
let unbounded ~describe = { mem = (fun _ -> true); size = None; describe }
let bool = { mem = (fun _ -> true); size = Some 2; describe = "bool" }

let int_range ~lo ~hi =
  if hi < lo then invalid_arg "Bounded.int_range: hi < lo";
  {
    mem = (fun v -> lo <= v && v <= hi);
    size = Some (hi - lo + 1);
    describe = Printf.sprintf "[%d..%d]" lo hi;
  }

let int_mod m =
  if m <= 0 then invalid_arg "Bounded.int_mod: modulus must be positive";
  int_range ~lo:0 ~hi:(m - 1)

let opt_size = function None -> None | Some s -> Some (s + 1)

let option d =
  {
    mem = (function None -> true | Some v -> d.mem v);
    size = opt_size d.size;
    describe = d.describe ^ " option";
  }

let mul_size a b =
  match (a, b) with Some a, Some b -> Some (a * b) | _ -> None

let pair da db =
  {
    mem = (fun (a, b) -> da.mem a && db.mem b);
    size = mul_size da.size db.size;
    describe = Printf.sprintf "(%s * %s)" da.describe db.describe;
  }

let triple da db dc =
  {
    mem = (fun (a, b, c) -> da.mem a && db.mem b && dc.mem c);
    size = mul_size da.size (mul_size db.size dc.size);
    describe =
      Printf.sprintf "(%s * %s * %s)" da.describe db.describe dc.describe;
  }

let bits ~width =
  if width < 0 || width > 61 then invalid_arg "Bounded.bits: bad width";
  {
    mem = (fun v -> 0 <= v && v < 1 lsl width);
    size = Some (1 lsl width);
    describe = Printf.sprintf "%d-bit mask" width;
  }
