type t = int

let is_valid ~n p = 0 <= p && p < n

let check ~n p =
  if not (is_valid ~n p) then
    invalid_arg (Printf.sprintf "Pid.check: pid %d out of range [0,%d)" p n)

let all ~n = List.init n Fun.id
let readers ~n = List.init (max 0 (n - 1)) (fun i -> i + 1)
let writer = 0
let pp ppf p = Format.fprintf ppf "p%d" p
