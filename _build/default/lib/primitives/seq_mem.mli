(** Direct (single-threaded) instance of {!Mem_intf.S}.

    Every operation executes immediately with the obvious sequential
    semantics.  This instance is used by fast unit tests that exercise
    algorithm-internal logic (e.g. the [GetSeq] bookkeeping of Figure 4)
    without scheduling, and as the reference when differential-testing the
    simulator instance. *)

val make : unit -> (module Mem_intf.S)
(** [make ()] returns a fresh instance with its own space accounting. *)
