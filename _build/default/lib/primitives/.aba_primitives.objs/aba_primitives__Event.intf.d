lib/primitives/event.mli: Format Pid
