lib/primitives/pid.mli: Format
