lib/primitives/bounded.ml: Printf
