lib/primitives/univ.mli:
