lib/primitives/mem_intf.ml: Bounded Pid
