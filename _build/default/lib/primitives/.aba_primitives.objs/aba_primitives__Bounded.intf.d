lib/primitives/bounded.mli:
