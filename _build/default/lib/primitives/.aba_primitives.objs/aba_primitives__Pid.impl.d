lib/primitives/pid.ml: Format Fun List Printf
