lib/primitives/seq_mem.ml: Bounded Hashtbl Mem_intf Pid Printf
