lib/primitives/seq_mem.mli: Mem_intf
