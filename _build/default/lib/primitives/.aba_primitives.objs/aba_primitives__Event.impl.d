lib/primitives/event.ml: Format Hashtbl List Pid
