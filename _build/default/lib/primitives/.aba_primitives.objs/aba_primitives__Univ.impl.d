lib/primitives/univ.ml: Stdlib
