(** Process identifiers.

    The paper considers a system of [n] processes with unique IDs in
    [{0, ..., n-1}].  Throughout the lower-bound constructions process [0]
    plays the writer role and processes [1 .. n-1] the reader roles, so we
    keep IDs as plain integers but validate them against the system size. *)

type t = int

val is_valid : n:int -> t -> bool
(** [is_valid ~n p] holds iff [0 <= p < n]. *)

val check : n:int -> t -> unit
(** [check ~n p] raises [Invalid_argument] unless [is_valid ~n p]. *)

val all : n:int -> t list
(** [all ~n] is [[0; 1; ...; n-1]]. *)

val readers : n:int -> t list
(** [readers ~n] is [[1; ...; n-1]] — the processes that repeatedly call
    [WeakRead] in the lower-bound executions of Section 2. *)

val writer : t
(** The dedicated writer process, [0]. *)

val pp : Format.formatter -> t -> unit
