(* Reusable event flags (the paper's busy-waiting motivation).

   A waiter polls a flag register; a signaller raises it and later resets
   it for reuse.  If the waiter's polls straddle the signal/reset pair, the
   register looks unchanged — the event is lost.  That is an ABA, and the
   introduction of the paper explains that algorithm designers work around
   it with ad-hoc machinery.  An ABA-detecting register solves it directly:
   the poll's flag says "somebody wrote since your last poll" regardless of
   the value.

   Run with: dune exec examples/event_signal.exe *)

open Aba_core

let scenario label flavour =
  let module M = (val Aba_primitives.Seq_mem.make ()) in
  let module F = Aba_apps.Event_flag.Make (M) in
  Printf.printf "\n-- %s --\n" label;
  let f = F.create ~flavour ~n:2 in
  let waiter = 1 and signaller = 0 in
  let poll tag =
    let seen = F.poll f ~pid:waiter in
    Printf.printf "  waiter polls %-22s -> %s\n" tag
      (if seen then "EVENT SEEN" else "nothing");
    seen
  in
  ignore (poll "(before anything)");
  Printf.printf "  signaller: signal\n";
  F.signal f ~pid:signaller;
  Printf.printf "  signaller: reset (reuse the flag)\n";
  F.reset f ~pid:signaller;
  let seen = poll "(after signal+reset)" in
  Printf.printf "  => %s\n"
    (if seen then "event delivered despite the reset"
     else "EVENT LOST - the ABA the paper describes")

let () =
  print_endline
    "One event is signalled and the flag immediately reset for reuse.\n\
     The waiter polls before and after.";
  scenario "plain register (value comparison)" Aba_apps.Event_flag.Plain;
  scenario "figure 4 ABA-detecting register"
    (Aba_apps.Event_flag.Detecting Instances.aba_fig4);
  scenario "theorem 2 register (one bounded CAS)"
    (Aba_apps.Event_flag.Detecting Instances.aba_thm2)
