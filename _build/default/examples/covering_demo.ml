(* The Lemma 1 covering adversary, live.

   Theorem 1(a) says an ABA-detecting register built from bounded plain
   registers needs at least n-1 of them.  The proof is a covering argument;
   this executable RUNS that argument:

   - against Figure 4 (a correct implementation) the adversary drives the
     system into a configuration where each reader process is poised to
     write to a distinct register — producing the covering whose existence
     the proof guarantees;
   - against a register that "cheats" on space by using a wrap-around tag,
     the adversary instead corners it into a machine-checked wrong answer:
     a read that must report intervening writes but does not;
   - the two escape hatches — unbounded base objects, or conditional
     (CAS) primitives — are also exhibited.

   Run with: dune exec examples/covering_demo.exe *)

open Aba_core
open Aba_lowerbound

let run label builder ~n =
  Printf.printf "\n-- %s (n = %d) --\n" label n;
  let outcome, stats = Covering.run ~max_iterations_per_level:4000 builder ~n in
  Format.printf "  %a@." Covering.pp_outcome outcome;
  Printf.printf "  (%d shared-memory steps, %d adversary iterations, %d \
                 replays)\n"
    stats.Covering.total_steps stats.Covering.total_iterations
    stats.Covering.replays

let () =
  print_endline
    "Running the Lemma 1 adversary: block-writes, register-configuration\n\
     repetition detection, deterministic replay, solo reads.";
  run "figure 4 (honest: n+1 registers)" Instances.aba_fig4 ~n:4;
  run "figure 4, larger system" Instances.aba_fig4 ~n:5;
  run "bounded tag mod 3 (cheats on space)"
    (Instances.aba_bounded_tag ~tag_bound:3)
    ~n:3;
  run "unbounded tag (escape hatch #1)" Instances.aba_unbounded ~n:3;
  run "theorem 2 / CAS-based (escape hatch #2)" Instances.aba_thm2 ~n:3;
  print_endline
    "\nReading the outcomes: a covering of n-1 distinct registers is the\n\
     lower bound made tangible; the VIOLATION is the clean/dirty confusion\n\
     from the proof, exhibited as a concrete wrong flag; the escapes show\n\
     why the theorem needs its hypotheses (bounded, register-only)."
