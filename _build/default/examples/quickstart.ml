(* Quickstart: ABA-detecting registers in three flavours.

   1. Direct use: create the Figure 4 register (n+1 bounded registers,
      Theorem 3) with the sequential memory and watch DRead's flag detect a
      same-value rewrite that a plain register would miss.
   2. The same register driven inside the deterministic simulator, where
      every shared-memory access is one scheduler step.
   3. Swapping the implementation for Theorem 2's single-CAS register
      without changing the calling code.

   Run with: dune exec examples/quickstart.exe *)

open Aba_core

let banner title =
  Printf.printf "\n== %s ==\n" title

let demo_direct builder label =
  banner (Printf.sprintf "%s, direct (sequential) use" label)
  ;
  let n = 3 in
  let reg = Instances.aba_seq builder ~n in
  let show_read q =
    let v, flag = reg.Instances.dread q in
    Printf.printf "  p%d: DRead -> value %d, written-since-my-last-read: %b\n"
      q v flag
  in
  Printf.printf "  p0: DWrite 7\n";
  reg.Instances.dwrite 0 7;
  show_read 1;
  show_read 1;
  (* The ABA: the value is written back to what p1 already saw.  A plain
     register read could not tell; the detecting register can. *)
  Printf.printf "  p0: DWrite 7   (same value again - an ABA)\n";
  reg.Instances.dwrite 0 7;
  show_read 1;
  Printf.printf "  base objects used: %d\n"
    (List.length (reg.Instances.aba_space ()))

let demo_simulated () =
  banner "figure 4 under the step simulator";
  let n = 2 in
  let sim = Aba_sim.Sim.create ~n in
  let reg = Instances.aba_in_sim Instances.aba_fig4 sim ~n in
  (* p1's DRead runs concurrently with p0's DWrite of the same value: we
     interleave them by hand, one shared-memory step at a time. *)
  Aba_sim.Sim.set_recording sim true;
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> reg.Instances.dwrite 0 5));
  Aba_sim.Sim.run_solo sim 0;
  let read1 = Aba_sim.Sim.invoke sim 1 (fun () -> reg.Instances.dread 1) in
  Aba_sim.Sim.run_solo sim 1;
  (* Now overlap: p1 starts a DRead; p0 writes 5 again mid-read. *)
  let read2 = Aba_sim.Sim.invoke sim 1 (fun () -> reg.Instances.dread 1) in
  Aba_sim.Sim.step sim 1;
  ignore (Aba_sim.Sim.invoke sim 0 (fun () -> reg.Instances.dwrite 0 5));
  Aba_sim.Sim.run_solo sim 0;
  Aba_sim.Sim.run_solo sim 1;
  let pp_result label promise =
    match Aba_sim.Sim.result promise with
    | Some (v, flag) ->
        Printf.printf "  %s -> (%d, %b) in %d shared steps\n" label v flag
          (Aba_sim.Sim.steps_of promise)
    | None -> assert false
  in
  pp_result "first DRead " read1;
  pp_result "second DRead (overlapping same-value DWrite)" read2;
  Printf.printf "  executed steps:\n";
  List.iter
    (fun (e : Aba_sim.Sim.trace_entry) ->
      Printf.printf "    %3d. p%d  %s\n" e.Aba_sim.Sim.index e.Aba_sim.Sim.pid
        e.Aba_sim.Sim.descr)
    (Aba_sim.Sim.trace sim)

let () =
  demo_direct Instances.aba_fig4 "figure 4 (n+1 bounded registers)";
  demo_direct Instances.aba_thm2 "theorem 2 (one bounded CAS)";
  demo_simulated ();
  print_endline "\nSee examples/event_signal.ml and examples/treiber_reuse.ml\n\
                 for what detection buys in real algorithms."
