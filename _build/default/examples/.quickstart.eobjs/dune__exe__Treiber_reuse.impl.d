examples/treiber_reuse.ml: Aba_apps Aba_core Aba_primitives Aba_runtime Aba_sim Aba_spec Array Format Instances List Printf Result String
