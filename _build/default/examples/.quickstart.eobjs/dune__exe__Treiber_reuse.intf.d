examples/treiber_reuse.mli:
