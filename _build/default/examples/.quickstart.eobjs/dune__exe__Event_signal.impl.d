examples/event_signal.ml: Aba_apps Aba_core Aba_primitives Instances Printf
