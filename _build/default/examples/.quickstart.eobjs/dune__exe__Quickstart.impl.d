examples/quickstart.ml: Aba_core Aba_sim Instances List Printf
