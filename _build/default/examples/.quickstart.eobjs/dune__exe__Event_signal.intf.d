examples/event_signal.mli:
