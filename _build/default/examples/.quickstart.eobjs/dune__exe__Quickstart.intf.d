examples/quickstart.mli:
