examples/covering_demo.ml: Aba_core Aba_lowerbound Covering Format Instances Printf
