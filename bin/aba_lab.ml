(** aba-lab — experiment driver.

    Each subcommand regenerates one of the paper-derived experiment tables
    listed in DESIGN.md (E1..E8); [all] runs the full battery that
    EXPERIMENTS.md records. *)

open Aba_experiments.Experiments
(* ----- command line ----- *)

open Cmdliner

let ns_arg =
  let doc = "Process counts to sweep (comma separated)." in
  Arg.(value & opt (list int) [ 3; 4; 6; 8 ] & info [ "n" ] ~doc)

let cmd_of name doc run =
  Cmd.v (Cmd.info name ~doc) Term.(const run $ const ())

let space_cmd =
  Cmd.v (Cmd.info "space" ~doc:"Space usage table (E3/E5).")
    Term.(const run_space $ ns_arg)

let covering_cmd =
  let ns = Arg.(value & opt (list int) [ 3; 4 ] & info [ "n" ] ~doc:"sizes") in
  Cmd.v (Cmd.info "covering" ~doc:"Lemma 1 covering adversary (E1).")
    Term.(const run_covering $ ns)

let wraparound_cmd = cmd_of "wraparound" "Tag wraparound search (E6)."
    run_wraparound

let tradeoff_cmd =
  Cmd.v (Cmd.info "tradeoff" ~doc:"Time-space tradeoff table (E2/E5).")
    Term.(const run_tradeoff $ ns_arg)

let steps_cmd =
  let ns =
    Arg.(value & opt (list int) [ 3; 4; 6; 8; 12; 16 ] & info [ "n" ]
           ~doc:"sizes")
  in
  Cmd.v (Cmd.info "steps" ~doc:"Step complexity growth series (E2).")
    Term.(const run_steps $ ns)

let stack_cmd =
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~doc:"concurrent domains")
  in
  let ops =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~doc:"operations per domain")
  in
  Cmd.v (Cmd.info "stack" ~doc:"Treiber stack reuse corruption (E7).")
    Term.(const (fun domains ops -> run_stack ~domains ~ops ()) $ domains $ ops)

let reclaim_cmd =
  let domains =
    Arg.(value & opt int 4 & info [ "domains" ] ~doc:"concurrent domains")
  in
  let ops =
    Arg.(value & opt int 20_000 & info [ "ops" ] ~doc:"operations per domain")
  in
  let capacity =
    Arg.(value & opt int 32 & info [ "capacity" ] ~doc:"node pool size")
  in
  Cmd.v
    (Cmd.info "reclaim"
       ~doc:"Reclamation schemes: throughput vs peak limbo space (E10).")
    Term.(
      const (fun domains ops capacity ->
          ignore (run_reclaim ~capacity ~domains ~ops ()))
      $ domains $ ops $ capacity)

let explore_cmd =
  cmd_of "explore" "Exhaustive schedule exploration summary (E9)." run_explore

let ablate_cmd =
  cmd_of "ablate" "Ablations: fig3 retry bound, fig4 sequence domain."
    run_ablation

let all_cmd =
  let run () =
    run_space [ 3; 4; 6; 8 ];
    run_covering [ 3; 4 ];
    run_wraparound ();
    run_tradeoff [ 4; 8 ];
    run_steps [ 3; 4; 6; 8; 12; 16 ];
    run_explore ();
    run_ablation ();
    run_stack ~domains:4 ~ops:20_000 ();
    ignore (run_reclaim ~domains:4 ~ops:20_000 ())
  in
  cmd_of "all" "Run the full experiment battery." run

let main =
  Cmd.group
    (Cmd.info "aba-lab" ~version:"1.0"
       ~doc:"Experiments for the PODC 2015 ABA prevention/detection paper.")
    [
      space_cmd; covering_cmd; wraparound_cmd; tradeoff_cmd; steps_cmd;
      explore_cmd; ablate_cmd; stack_cmd; reclaim_cmd; all_cmd;
    ]

let () = exit (Cmd.eval main)
